// Package allegro is the public facade of the Go reproduction of
// "Scaling the leading accuracy of deep equivariant models to biomolecular
// simulations of realistic size" (Musaelian, Johansson, Batzner, Kozinsky —
// SC 2023).
//
// It re-exports the high-level workflow — build a potential, train it on
// labeled frames, run (optionally domain-decomposed) molecular dynamics,
// and regenerate the paper's tables and figures — on top of the internal
// packages:
//
//	internal/core        the Allegro model (the paper's contribution) and
//	                     the EvalScratch/Evaluator reusable-buffer pipeline
//	internal/o3          O(3) representation theory and the fused tensor product
//	internal/ad          reverse-mode autodiff over geometric ops, backed by
//	                     a reusable tensor arena in steady-state loops
//	internal/md          molecular dynamics engine
//	internal/domain      persistent rank runtime: LAMMPS-style spatial
//	                     decomposition with incremental ghost exchange and
//	                     Verlet-skin neighbor reuse on long-lived goroutines
//	internal/neighbor    parallel, allocation-free cell-list neighbor builds
//	internal/par         bounded persistent worker pools
//	internal/baselines   classical / GAP / BP / SchNet / NequIP comparators
//	internal/groundtruth the synthetic DFT oracle that labels every dataset
//	internal/data        structure and dataset builders
//	internal/perfmodel   A100 + allocator models and measured calibration
//	internal/cluster     Perlmutter-scale throughput simulation
//	internal/experiments per-table/figure reproduction harnesses
//
// Molecular dynamics runs through one entry point, NewSimulation, whose
// functional options pick the force backend — the serial zero-allocation
// Evaluator by default; the persistent decomposed Runtime under
// WithGrid/WithAutoDecompose — behind one uniform lifecycle: Step,
// Run(ctx), Report, Checkpoint/Resume, idempotent Close, and observer
// hooks (WithObserver, WithTrajectoryWriter). Trajectories are
// bit-identical across backends, rank grids, skins, and worker counts.
// See README.md for the options table and the migration guide from the
// deprecated NewSim/NewDecomposedSim constructors.
package allegro

import (
	"io"
	"math/rand/v2"

	"repro/internal/atoms"
	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/experiments"
	"repro/internal/groundtruth"
	"repro/internal/md"
	"repro/internal/units"
)

// Re-exported core types.
type (
	// Model is a trained or trainable Allegro potential.
	Model = core.Model
	// Config specifies an Allegro architecture.
	Config = core.Config
	// TrainConfig controls training.
	TrainConfig = core.TrainConfig
	// Evaluator runs the parallel zero-allocation force pipeline for one
	// simulation loop (see the EvalScratch ownership contract).
	Evaluator = core.Evaluator
	// EvalScratch is the reusable buffer arena owned by one evaluation loop.
	EvalScratch = core.EvalScratch
	// Runtime is the persistent domain-decomposed force engine: long-lived
	// rank workers with incremental ghost exchange and Verlet-skin neighbor
	// reuse (the paper's LAMMPS production pattern).
	Runtime = domain.Runtime
	// RuntimeOptions configures the rank grid, Verlet skin, halo, and
	// per-rank worker pools of a Runtime.
	RuntimeOptions = domain.RuntimeOptions
	// DecomposedSim is an MD simulation driven by a persistent Runtime.
	DecomposedSim = md.DecomposedSim
	// Frame is a labeled structure (system + reference energy/forces).
	Frame = atoms.Frame
	// System is a collection of atoms, optionally periodic.
	System = atoms.System
	// Species is a chemical species (atomic number).
	Species = units.Species
)

// Common species.
const (
	H = units.H
	C = units.C
	N = units.N
	O = units.O
	P = units.P
	S = units.S
)

// NewModel constructs a randomly initialized Allegro model from cfg.
func NewModel(cfg Config, seed uint64) (*Model, error) {
	return core.New(cfg, nil, rand.New(rand.NewPCG(seed, 0xA11E)))
}

// DefaultConfig returns a small but complete Allegro configuration for the
// given species set.
func DefaultConfig(species []Species) Config { return core.DefaultConfig(species) }

// Train fits model to the labeled frames and returns the final loss.
func Train(model *Model, frames []*Frame, cfg TrainConfig) float64 {
	return core.NewTrainer(model, cfg).Train(frames)
}

// DefaultTrainConfig mirrors the paper's training setup at reduced scale.
func DefaultTrainConfig() TrainConfig { return core.DefaultTrainConfig() }

// LoadModel reads a model saved with (*Model).Save.
func LoadModel(path string) (*Model, error) { return core.Load(path) }

// NewSim prepares an MD simulation of sys under the model with timestep dt
// (fs). The model is wrapped in an Evaluator, so every force call runs the
// parallel evaluation pipeline and reuses the same buffer arena: after the
// first step the force path performs (almost) no heap allocations, the
// single-node analogue of the paper's padded, allocator-stable LAMMPS
// plugin. Size the worker pool with Config.Workers (default: all cores).
//
// Deprecated: use NewSimulation, which runs the identical serial backend
// (default-option trajectories are bit-for-bit the same) behind the
// uniform lifecycle — Run(ctx), Report, observers, Checkpoint/Resume,
// Close — and scales to the decomposed backend by options alone.
func NewSim(sys *System, model *Model, dt float64) *md.Sim {
	return md.NewSim(sys, core.NewEvaluator(model), dt)
}

// NewEvaluator wraps a model in the reusable-buffer evaluation pipeline for
// callers that drive force calls directly instead of through NewSim.
func NewEvaluator(model *Model) *Evaluator { return core.NewEvaluator(model) }

// NewDecomposedSim prepares a spatially decomposed MD simulation: the box
// is split across opts.Grid rank workers, each owning its subdomain's atoms
// plus a ghost halo of one cutoff (+ Verlet skin), and every Step runs the
// persistent runtime's incremental exchange instead of a global force call.
// Trajectories are bit-identical to the single-rank path for any grid and
// skin; steady-state steps (no rebuild) allocate nothing. Call Close on the
// returned simulation when done.
//
// Deprecated: use NewSimulation with WithGrid (or WithAutoDecompose),
// which runs the identical persistent runtime (trajectories are
// bit-for-bit the same for equal grid/skin/workers) behind the uniform
// lifecycle shared with the serial backend.
func NewDecomposedSim(sys *System, model *Model, dt float64, opts RuntimeOptions) (*DecomposedSim, error) {
	rt, err := domain.NewRuntime(model, sys, opts)
	if err != nil {
		return nil, err
	}
	return md.NewDecomposedSim(sys, rt, dt), nil
}

// NewWaterLongRange returns the Wolf-summation long-range electrostatics
// extension for water, composable with a model via WithExtraPotential
// (the paper's Sec. VI-A strict-locality extension).
func NewWaterLongRange() *core.LongRange { return core.NewWaterLongRange() }

// Oracle returns the synthetic reference potential used to label datasets.
func Oracle() *groundtruth.Oracle { return groundtruth.New() }

// RunExperiment regenerates one of the paper's tables/figures by ID (see
// Experiments) and prints the report to w.
func RunExperiment(w io.Writer, id string, full bool, seed uint64) error {
	scale := experiments.Quick
	if full {
		scale = experiments.Full
	}
	r, err := experiments.Run(id, scale, seed)
	if err != nil {
		return err
	}
	r.Print(w)
	return nil
}

// Experiments lists the available experiment IDs.
func Experiments() []string { return experiments.All() }
