// Command allegro-rankd hosts one domain-decomposition rank in its own OS
// process: the multi-node execution mode, with TCP frames standing in for
// MPI. A fleet of rankd processes (one per subdomain) plus one driver
// (`allegro-md -transport tcp`) forms a run; rendezvous is a shared host
// list, with the driver's address last.
//
// The daemon is stateless across runs: it blocks until a driver ships a
// configuration (model weights travel inside the config frame, so rank
// hosts need no model file), serves that run's rebuild/step traffic, and
// exits on the driver's shutdown frame. Trajectories computed this way are
// bit-identical to the in-process runtime — see docs/distributed.md.
//
// Usage:
//
//	allegro-rankd -rank 0 -hosts 127.0.0.1:7301,127.0.0.1:7302,127.0.0.1:7300
//	allegro-rankd -rank 1 -hosts 127.0.0.1:7301,127.0.0.1:7302,127.0.0.1:7300
//	allegro-md -transport tcp -hosts 127.0.0.1:7301,127.0.0.1:7302,127.0.0.1:7300 ...
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/domain"
	"repro/internal/transport"
)

func main() {
	var (
		rank       = flag.Int("rank", -1, "this process's rank in [0, ranks); the driver holds the last host-list slot")
		hosts      = flag.String("hosts", "", "comma-separated host:port per transport rank, driver last")
		quiet      = flag.Bool("quiet", false, "suppress progress logging")
		generation = flag.Uint64("generation", 0, "fleet generation stamped on the transport hello; a replacement for a dead rank rejoins with a higher generation so the fleet fences its predecessor's stale frames")
		hbEvery    = flag.Duration("hb-interval", 0, "transport heartbeat probe period (0: transport default 250ms)")
		hbTimeout  = flag.Duration("hb-timeout", 0, "peer silence threshold before a death notice is synthesized (0: transport default 5s)")
	)
	flag.Parse()
	list := strings.Split(*hosts, ",")
	if *hosts == "" || len(list) < 2 {
		log.Fatal("allegro-rankd: -hosts needs at least two comma-separated host:port entries (ranks then driver)")
	}
	if *rank < 0 || *rank >= len(list)-1 {
		log.Fatalf("allegro-rankd: -rank %d outside [0, %d) (the last host is the driver's)", *rank, len(list)-1)
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "rankd %d: %s\n", *rank, fmt.Sprintf(format, args...))
	}
	if *quiet {
		logf = nil
	}

	tr, err := transport.NewTCP(transport.TCPConfig{
		Rank: *rank, Hosts: list, Generation: *generation,
		HeartbeatEvery: *hbEvery, HeartbeatTimeout: *hbTimeout,
	})
	if err != nil {
		log.Fatalf("allegro-rankd: %v", err)
	}
	defer tr.Close()
	ep, err := tr.Endpoint(*rank)
	if err != nil {
		log.Fatalf("allegro-rankd: %v", err)
	}

	if logf != nil {
		logf("listening on %s, waiting for a driver at %s", list[*rank], list[len(list)-1])
	}
	srv, err := domain.NewRankServer(ep, logf)
	if err != nil {
		log.Fatalf("allegro-rankd: %v", err)
	}
	defer srv.Close()
	if err := srv.Serve(); err != nil {
		log.Fatalf("allegro-rankd: %v", err)
	}
}
