// Command allegro-md runs molecular dynamics with a trained Allegro model,
// optionally spatially decomposed over persistent goroutine ranks (the
// LAMMPS pattern): each rank keeps its subdomain's atoms, a ghost halo of
// one cutoff plus the Verlet skin, and reusable exchange buffers alive
// across steps, rebuilding only when an atom has moved skin/2.
//
// Usage:
//
//	allegro-md -model model.json -system water -steps 200 -temp 300
//	allegro-md -model model.json -system water -steps 200 -grid 2x1x1 -skin 0.5
//	allegro-md -model model.json -grid 2x2x1 -skin 0.5 -workers-per-rank 2 -measure
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"strings"
	"time"

	"repro/internal/atoms"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/domain"
	"repro/internal/groundtruth"
	"repro/internal/md"
	"repro/internal/perfmodel"
)

func main() {
	var (
		modelPath = flag.String("model", "allegro-model.json", "trained model file")
		system    = flag.String("system", "water", "system: water | protein")
		steps     = flag.Int("steps", 100, "MD steps")
		dt        = flag.Float64("dt", 0.5, "timestep (fs)")
		temp      = flag.Float64("temp", 300, "thermostat temperature (K); 0 = NVE")
		seed      = flag.Uint64("seed", 1, "RNG seed")
		grid      = flag.String("grid", "", "spatial decomposition grid, e.g. 2x1x1 (empty = serial)")
		skin      = flag.Float64("skin", 0.5, "Verlet skin (A) for the decomposed path; 0 rebuilds every step")
		wpr       = flag.Int("workers-per-rank", 1, "worker pool size inside each rank")
		measure   = flag.Bool("measure", false, "measure steady-state throughput and exchange volume of the decomposed path")
	)
	flag.Parse()
	model, err := core.Load(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(*seed, 7))
	oracle := groundtruth.New()

	var sys *atoms.System
	switch *system {
	case "water":
		sys = data.WaterBox(rng, 3, 3, 3)
		data.Relax(oracle, sys, 40, 0.05)
	case "protein":
		prot := data.ProteinChain(4)
		sys = data.Solvate(prot, 4.0, rng)
		data.Relax(oracle, sys, 60, 0.05)
	default:
		log.Fatalf("unknown system %q", *system)
	}
	fmt.Println("system:", sys)

	var sim *md.Sim
	var rt *domain.Runtime
	if *measure && *grid == "" {
		log.Fatal("-measure requires a decomposition grid (-grid), e.g. -grid 2x1x1")
	}
	if *grid != "" {
		var g [3]int
		if _, err := fmt.Sscanf(strings.ReplaceAll(*grid, "x", " "), "%d %d %d", &g[0], &g[1], &g[2]); err != nil {
			log.Fatalf("bad -grid %q: %v", *grid, err)
		}
		opts := domain.RuntimeOptions{Grid: g, Skin: *skin, WorkersPerRank: *wpr}
		if *measure {
			meas, err := perfmodel.MeasureDecomposed(model, sys, opts, *steps)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(meas)
			return
		}
		rt, err = domain.NewRuntime(model, sys, opts)
		if err != nil {
			log.Fatal(err)
		}
		dec := md.NewDecomposedSim(sys, rt, *dt)
		defer dec.Close()
		sim = dec.Sim
		fmt.Printf("spatial decomposition: %d ranks, halo %.1f A + skin %.1f A, %d workers/rank\n",
			rt.NumRanks(), model.Cuts.Max(), *skin, *wpr)
	} else {
		sim = md.NewSim(sys, core.NewEvaluator(model), *dt)
	}

	if *temp > 0 {
		sim.Thermostat = &md.Langevin{TempK: *temp, Gamma: 0.05, Rng: rng}
		sim.InitVelocities(*temp, rng)
	}
	start := time.Now()
	report := *steps / 10
	if report < 1 {
		report = 1
	}
	for s := 0; s < *steps; s++ {
		sim.Step()
		if (s+1)%report == 0 {
			fmt.Println(sim)
		}
	}
	el := time.Since(start).Seconds()
	fmt.Printf("done: %d steps in %.2f s (%.2f steps/s, %.3f ns/day at this dt)\n",
		*steps, el, float64(*steps)/el, float64(*steps)/el*(*dt)*1e-6*86400)
	if rt != nil {
		st := rt.Stats()
		fmt.Printf("runtime: %d rebuilds over %d steps (%.1f steps/rebuild), %d migrations, ghost exchange %d B/step forward + %d B/step reverse\n",
			st.Rebuilds, st.Steps, float64(st.Steps)/float64(st.Rebuilds), st.Migrations,
			st.ForwardBytesPerStep, st.ReverseBytesPerStep)
	}
}
