// Command allegro-md runs molecular dynamics with a trained Allegro model
// through the one simulation API: the same allegro.NewSimulation call
// serves the serial zero-allocation evaluator and the spatially decomposed
// persistent rank runtime (the LAMMPS pattern) — the backend is picked by
// flags, not by a different code path.
//
// Usage:
//
//	allegro-md -model model.json -system water -steps 200 -temp 300
//	allegro-md -model model.json -system water -steps 200 -grid 2x1x1 -skin 0.5
//	allegro-md -model model.json -auto-grid -overlap -steps 200
//	allegro-md -model model.json -grid 2x2x1 -skin 0.5 -workers-per-rank 2 -measure
//	allegro-md -model model.json -traj traj.xyz -traj-every 10
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"os/signal"
	"strings"
	"time"

	allegro "repro"
	"repro/internal/atoms"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/groundtruth"
)

func main() {
	var (
		modelPath = flag.String("model", "allegro-model.json", "trained model file")
		system    = flag.String("system", "water", "system: water | protein")
		steps     = flag.Int("steps", 100, "MD steps")
		dt        = flag.Float64("dt", 0.5, "timestep (fs)")
		temp      = flag.Float64("temp", 300, "thermostat temperature (K); 0 = NVE")
		seed      = flag.Uint64("seed", 1, "RNG seed")
		grid      = flag.String("grid", "", "spatial decomposition grid, e.g. 2x1x1 (empty = serial)")
		autoGrid  = flag.Bool("auto-grid", false, "let the performance model pick the rank grid")
		skin      = flag.Float64("skin", 0.5, "Verlet skin (A) for the decomposed path; 0 rebuilds every step")
		overlap   = flag.Bool("overlap", false, "hide the ghost exchange behind interior-block evaluation (decomposed path)")
		compiled  = flag.Bool("compiled", true, "replay compiled inference plans (false: interpreted autodiff tape; trajectories are bit-identical)")
		wpr       = flag.Int("workers-per-rank", 1, "worker pool size inside each rank")
		measure   = flag.Bool("measure", false, "measure steady-state throughput and exchange volume, then exit")
		traj      = flag.String("traj", "", "write an XYZ trajectory to this file")
		trajEvery = flag.Int("traj-every", 10, "steps between trajectory frames")
	)
	flag.Parse()
	model, err := core.Load(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(*seed, 7))
	oracle := groundtruth.New()

	var sys *atoms.System
	switch *system {
	case "water":
		sys = data.WaterBox(rng, 3, 3, 3)
		data.Relax(oracle, sys, 40, 0.05)
	case "protein":
		prot := data.ProteinChain(4)
		sys = data.Solvate(prot, 4.0, rng)
		data.Relax(oracle, sys, 60, 0.05)
	default:
		log.Fatalf("unknown system %q", *system)
	}
	fmt.Println("system:", sys)

	report := *steps / 10
	if report < 1 {
		report = 1
	}
	opts := []allegro.Option{
		allegro.WithTimestep(*dt),
		allegro.WithSeed(*seed),
		allegro.WithSkin(*skin),
		allegro.WithObserver(report, func(r allegro.Report) { fmt.Println(r) }),
	}
	if *temp > 0 {
		opts = append(opts, allegro.WithTemperature(*temp))
	}
	if *grid != "" && *autoGrid {
		log.Fatal("-grid and -auto-grid are mutually exclusive")
	}
	switch {
	case *grid != "":
		var g [3]int
		if _, err := fmt.Sscanf(strings.ReplaceAll(*grid, "x", " "), "%d %d %d", &g[0], &g[1], &g[2]); err != nil {
			log.Fatalf("bad -grid %q: %v", *grid, err)
		}
		opts = append(opts, allegro.WithGrid(g[0], g[1], g[2]), allegro.WithWorkers(*wpr))
	case *autoGrid:
		opts = append(opts, allegro.WithAutoDecompose(), allegro.WithWorkers(*wpr))
	}
	if *overlap {
		opts = append(opts, allegro.WithOverlap())
	}
	opts = append(opts, allegro.WithCompiled(*compiled))
	if *traj != "" {
		f, err := os.Create(*traj)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		opts = append(opts, allegro.WithTrajectoryWriter(f, *trajEvery))
	}

	sim, err := allegro.NewSimulation(sys, model, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Close()
	fmt.Printf("backend: %s, %s (%d ranks, halo %.1f A + skin %.1f A)\n",
		sim.Backend(), sim.ExecMode(), sim.NumRanks(), model.Cuts.Max(), *skin)

	if *measure {
		meas := sim.Measure(*steps)
		fmt.Println(meas)
		// Reference run in the other execution mode: the tape-vs-compiled
		// speedup of this backend on this system.
		refOpts := append(opts[:len(opts):len(opts)], allegro.WithCompiled(!*compiled))
		ref, err := allegro.NewSimulation(sys, model, refOpts...)
		if err != nil {
			log.Fatal(err)
		}
		refMeas := ref.Measure(*steps)
		ref.Close()
		fmt.Println(refMeas)
		tapeRate, compRate := meas.PairsPerSec, refMeas.PairsPerSec
		if *compiled {
			tapeRate, compRate = refMeas.PairsPerSec, meas.PairsPerSec
		}
		if tapeRate > 0 {
			fmt.Printf("tape -> compiled speedup: %.2fx pairs/s\n", compRate/tapeRate)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	start := time.Now()
	if err := sim.Run(ctx, *steps); err != nil {
		log.Fatal(err)
	}
	el := time.Since(start).Seconds()
	fmt.Printf("done: %d steps in %.2f s (%.2f steps/s, %.3f ns/day at this dt)\n",
		*steps, el, float64(*steps)/el, float64(*steps)/el*(*dt)*1e-6*86400)
	if st, ok := sim.Stats(); ok {
		fmt.Printf("runtime: %d rebuilds over %d steps (%.1f steps/rebuild), %d migrations, ghost exchange %d B/step forward + %d B/step reverse\n",
			st.Rebuilds, st.Steps, float64(st.Steps)/float64(st.Rebuilds), st.Migrations,
			st.ForwardBytesPerStep, st.ReverseBytesPerStep)
		perStep := func(ns int64) float64 { return float64(ns) / float64(st.Steps) / 1e3 }
		fmt.Printf("phases: exchange %.1f us exposed, interior %.1f us (%d pairs), frontier %.1f us (%d pairs), reduce %.1f us per step; overlap fraction %.0f%%\n",
			perStep(st.ExchangeWaitNs), perStep(st.InteriorNs), st.InteriorPairs,
			perStep(st.FrontierNs), st.PairWork-st.InteriorPairs,
			perStep(st.ReduceNs), 100*st.OverlapFraction())
	}
}
