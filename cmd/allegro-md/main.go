// Command allegro-md runs molecular dynamics with a trained Allegro model
// through the one simulation API: the same allegro.NewSimulation call
// serves the serial zero-allocation evaluator and the spatially decomposed
// persistent rank runtime (the LAMMPS pattern) — the backend is picked by
// flags, not by a different code path.
//
// Usage:
//
//	allegro-md -model model.json -system water -steps 200 -temp 300
//	allegro-md -model model.json -system water -steps 200 -grid 2x1x1 -skin 0.5
//	allegro-md -model model.json -auto-grid -overlap -steps 200
//	allegro-md -model model.json -grid 2x2x1 -skin 0.5 -workers-per-rank 2 -measure
//	allegro-md -model model.json -traj traj.xyz -traj-every 10
//
// Multi-process mode: with -transport tcp the ranks run as allegro-rankd
// processes (one per subdomain, possibly on other hosts) and this process
// is the driver — it ships the model over the wire, drives the trajectory,
// re-runs it in-process as a reference, and asserts the two agree bit for
// bit (drift 0):
//
//	allegro-md -transport tcp -hosts r0:7301,r1:7302,driver:7300 -grid 2x1x1 -demo-model -steps 50
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand/v2"
	"os"
	"os/signal"
	"strings"
	"time"

	allegro "repro"
	"repro/internal/atoms"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/domain"
	"repro/internal/groundtruth"
	"repro/internal/md"
	"repro/internal/perfmodel"
	"repro/internal/transport"
	"repro/internal/units"
)

func main() {
	var (
		modelPath = flag.String("model", "allegro-model.json", "trained model file")
		system    = flag.String("system", "water", "system: water | protein")
		steps     = flag.Int("steps", 100, "MD steps")
		dt        = flag.Float64("dt", 0.5, "timestep (fs)")
		temp      = flag.Float64("temp", 300, "thermostat temperature (K); 0 = NVE")
		seed      = flag.Uint64("seed", 1, "RNG seed")
		grid      = flag.String("grid", "", "spatial decomposition grid, e.g. 2x1x1 (empty = serial)")
		autoGrid  = flag.Bool("auto-grid", false, "let the performance model pick the rank grid")
		skin      = flag.Float64("skin", 0.5, "Verlet skin (A) for the decomposed path; 0 rebuilds every step")
		overlap   = flag.Bool("overlap", false, "hide the ghost exchange behind interior-block evaluation (decomposed path)")
		compiled  = flag.Bool("compiled", true, "replay compiled inference plans (false: interpreted autodiff tape; trajectories are bit-identical)")
		wpr       = flag.Int("workers-per-rank", 1, "worker pool size inside each rank")
		measure   = flag.Bool("measure", false, "measure steady-state throughput and exchange volume, then exit")
		traj      = flag.String("traj", "", "write an XYZ trajectory to this file")
		trajEvery = flag.Int("traj-every", 10, "steps between trajectory frames")
		transp    = flag.String("transport", "", "rank transport: empty = in-process goroutines, tcp = drive an allegro-rankd fleet")
		hosts     = flag.String("hosts", "", "tcp transport: comma-separated host:port per rank, driver (this process) last")
		demoModel = flag.Bool("demo-model", false, "use a small deterministic randomly-initialized model instead of -model (smoke tests)")
		benchOut  = flag.String("bench-out", "", "tcp transport: write a perfmodel.TransportReport (BENCH_transport.json) here")
		reuseEps  = flag.Float64("reuse-eps", 0, "temporal-reuse displacement tolerance (A); centers whose accumulated environment drift stays under it replay cached force rows (0: exact engine)")
		respa     = flag.Int("respa", 1, "r-RESPA inner sub-steps per outer step: the stiff ZBL core integrates at dt/k between full network evaluations (1: single-timestep)")

		hbEvery     = flag.Duration("hb-interval", 0, "tcp transport: heartbeat probe period (0: transport default 250ms)")
		hbTimeout   = flag.Duration("hb-timeout", 0, "tcp transport: peer silence threshold before a death notice is synthesized (0: transport default 5s)")
		replEvery   = flag.Int("replicate-every", 10, "tcp transport: steps between fleet replication points (peer-redundant in-memory state; 0 disables elastic recovery)")
		rejoinWait  = flag.Duration("rejoin-timeout", 30*time.Second, "tcp transport: how long the driver waits for a replacement rankd after a rank death")
		recoveryOut = flag.String("recovery-out", "", "tcp transport: write a perfmodel.RecoveryReport (BENCH_recovery.json) here")
	)
	flag.Parse()
	model, err := loadModel(*modelPath, *demoModel, *seed)
	if err != nil {
		log.Fatal(err)
	}

	if *transp != "" {
		if *transp != "tcp" {
			log.Fatalf("unknown -transport %q (want tcp or empty)", *transp)
		}
		runDistributed(model, *system, *grid, *hosts, *steps, *dt, *temp, *seed, *skin, distOpts{
			benchOut: *benchOut, recoveryOut: *recoveryOut,
			hbEvery: *hbEvery, hbTimeout: *hbTimeout,
			replicateEvery: *replEvery, rejoinTimeout: *rejoinWait,
		})
		return
	}

	sys := buildSystem(*system, *seed)
	fmt.Println("system:", sys)

	report := *steps / 10
	if report < 1 {
		report = 1
	}
	opts := []allegro.Option{
		allegro.WithTimestep(*dt),
		allegro.WithSeed(*seed),
		allegro.WithSkin(*skin),
		allegro.WithObserver(report, func(r allegro.Report) { fmt.Println(r) }),
	}
	if *temp > 0 {
		opts = append(opts, allegro.WithTemperature(*temp))
	}
	if *grid != "" && *autoGrid {
		log.Fatal("-grid and -auto-grid are mutually exclusive")
	}
	switch {
	case *grid != "":
		var g [3]int
		if _, err := fmt.Sscanf(strings.ReplaceAll(*grid, "x", " "), "%d %d %d", &g[0], &g[1], &g[2]); err != nil {
			log.Fatalf("bad -grid %q: %v", *grid, err)
		}
		opts = append(opts, allegro.WithGrid(g[0], g[1], g[2]), allegro.WithWorkers(*wpr))
	case *autoGrid:
		opts = append(opts, allegro.WithAutoDecompose(), allegro.WithWorkers(*wpr))
	}
	if *overlap {
		opts = append(opts, allegro.WithOverlap())
	}
	opts = append(opts, allegro.WithCompiled(*compiled))
	if *reuseEps > 0 {
		opts = append(opts, allegro.WithReuse(*reuseEps))
	}
	if *respa > 1 {
		opts = append(opts, allegro.WithRESPA(*respa))
	}
	if *traj != "" {
		f, err := os.Create(*traj)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		opts = append(opts, allegro.WithTrajectoryWriter(f, *trajEvery))
	}

	sim, err := allegro.NewSimulation(sys, model, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Close()
	fmt.Printf("backend: %s, %s (%d ranks, halo %.1f A + skin %.1f A)\n",
		sim.Backend(), sim.ExecMode(), sim.NumRanks(), model.Cuts.Max(), *skin)

	if *measure {
		meas := sim.Measure(*steps)
		fmt.Println(meas)
		if *reuseEps > 0 || *respa > 1 {
			if rs, ok := sim.ReuseStats(); ok {
				fmt.Printf("reuse: fraction %.1f%% of pair work cached, %.1f active centers/step of %d, %d full evals over %d calls\n",
					100*rs.ReuseFraction(), avgPerStep(rs.ActiveCenters, rs.Steps), sys.NumAtoms(), rs.FullEvals, rs.Steps)
			}
			// The measurement window holds positions fixed, so it overstates
			// steady-trajectory reuse; what eps actually costs is probed on
			// a moving trajectory — exact re-evaluation at the states the
			// approximate engine visited.
			maxF, dE := reuseDrift(model, *system, *seed, *steps, *dt, *temp, *skin, *compiled, *reuseEps, *respa)
			fmt.Printf("drift vs exact over %d steps: max force error %.3g eV/A, energy error %.3g eV/atom\n", *steps, maxF, dE)
			return
		}
		// Reference run in the other execution mode: the tape-vs-compiled
		// speedup of this backend on this system.
		refOpts := append(opts[:len(opts):len(opts)], allegro.WithCompiled(!*compiled))
		ref, err := allegro.NewSimulation(sys, model, refOpts...)
		if err != nil {
			log.Fatal(err)
		}
		refMeas := ref.Measure(*steps)
		ref.Close()
		fmt.Println(refMeas)
		tapeRate, compRate := meas.PairsPerSec, refMeas.PairsPerSec
		if *compiled {
			tapeRate, compRate = refMeas.PairsPerSec, meas.PairsPerSec
		}
		if tapeRate > 0 {
			fmt.Printf("tape -> compiled speedup: %.2fx pairs/s\n", compRate/tapeRate)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	start := time.Now()
	if err := sim.Run(ctx, *steps); err != nil {
		log.Fatal(err)
	}
	el := time.Since(start).Seconds()
	fmt.Printf("done: %d steps in %.2f s (%.2f steps/s, %.3f ns/day at this dt)\n",
		*steps, el, float64(*steps)/el, float64(*steps)/el*(*dt)*1e-6*86400)
	if st, ok := sim.Stats(); ok {
		fmt.Printf("runtime: %d rebuilds over %d steps (%.1f steps/rebuild), %d migrations, ghost exchange %d B/step forward + %d B/step reverse\n",
			st.Rebuilds, st.Steps, float64(st.Steps)/float64(st.Rebuilds), st.Migrations,
			st.ForwardBytesPerStep, st.ReverseBytesPerStep)
		perStep := func(ns int64) float64 { return float64(ns) / float64(st.Steps) / 1e3 }
		fmt.Printf("phases: exchange %.1f us exposed, interior %.1f us (%d pairs), frontier %.1f us (%d pairs), reduce %.1f us per step; overlap fraction %.0f%%\n",
			perStep(st.ExchangeWaitNs), perStep(st.InteriorNs), st.InteriorPairs,
			perStep(st.FrontierNs), st.PairWork-st.InteriorPairs,
			perStep(st.ReduceNs), 100*st.OverlapFraction())
	}
	if rs, ok := sim.ReuseStats(); ok {
		fmt.Printf("reuse: fraction %.1f%% of pair work cached, %.1f active centers/step of %d, %d full evals over %d force calls\n",
			100*rs.ReuseFraction(), avgPerStep(rs.ActiveCenters, rs.Steps), sys.NumAtoms(), rs.FullEvals, rs.Steps)
	}
}

// avgPerStep divides a cumulative counter by the step count (0 when no
// steps ran yet).
func avgPerStep(total, steps int64) float64 {
	if steps == 0 {
		return 0
	}
	return float64(total) / float64(steps)
}

// reuseDrift runs a short thermostatted trajectory on the approximate
// engine (reuse and/or RESPA) and probes every few steps: the exact model
// re-evaluates the configurations the engine actually visited, and the
// numbers are the worst force and per-atom energy deviation against what
// the engine used there. The comparison is at identical positions, so it
// measures the approximation itself — not the chaotic trajectory
// divergence that any perturbation, however small, grows exponentially.
// With eps = 0 and k = 1 both numbers are exactly zero.
func reuseDrift(model *core.Model, system string, seed uint64, steps int, dt, temp, skin float64, compiled bool, eps float64, k int) (maxForceErr, energyErrPerAtom float64) {
	sys := buildSystem(system, seed)
	opts := []allegro.Option{
		allegro.WithTimestep(dt),
		allegro.WithSeed(seed),
		allegro.WithSkin(skin),
		allegro.WithCompiled(compiled),
	}
	if temp > 0 {
		opts = append(opts, allegro.WithTemperature(temp))
	}
	if eps > 0 {
		opts = append(opts, allegro.WithReuse(eps))
	}
	if k > 1 {
		opts = append(opts, allegro.WithRESPA(k))
	}
	sim, err := allegro.NewSimulation(sys, model, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Close()
	probe := perfmodel.NewDriftProbe(model)
	defer probe.Close()
	burst := steps / 10
	if burst < 1 {
		burst = 1
	}
	for done := 0; done < steps; done += burst {
		if err := sim.Run(context.Background(), burst); err != nil {
			log.Fatal(err)
		}
		s := probe.Measure(sys, sim.Forces(), sim.Report().PotentialEnergy)
		maxForceErr = math.Max(maxForceErr, s.MaxForceErrEvA)
		energyErrPerAtom = math.Max(energyErrPerAtom, s.EnergyErrEvAtom)
	}
	return maxForceErr, energyErrPerAtom
}

// loadModel loads the trained model, or builds the small deterministic
// demo model (no file required; rankd fleets receive whatever the driver
// ships, so smoke tests run model-free end to end).
func loadModel(path string, demo bool, seed uint64) (*core.Model, error) {
	if !demo {
		return core.Load(path)
	}
	cfg := core.DefaultConfig([]units.Species{units.H, units.O})
	cfg.LMax = 1
	cfg.NumLayers = 2
	cfg.NumChannels = 2
	cfg.LatentDim = 8
	cfg.TwoBodyHidden = []int{8}
	cfg.LatentHidden = []int{8}
	cfg.EdgeHidden = 4
	cfg.NumBessel = 4
	cfg.DefaultCutoff = 3.0
	cfg.AvgNumNeighbors = 10
	m, err := core.New(cfg, nil, rand.New(rand.NewPCG(seed, 0xA11E)))
	if err != nil {
		return nil, err
	}
	m.SetScaleShift(1.5, []float64{-0.5, -1.5})
	return m, nil
}

// buildSystem constructs the named benchmark system deterministically from
// the seed (two calls with the same arguments yield bit-identical systems —
// the distributed drift check depends on that).
func buildSystem(system string, seed uint64) *atoms.System {
	rng := rand.New(rand.NewPCG(seed, 7))
	oracle := groundtruth.New()
	var sys *atoms.System
	switch system {
	case "water":
		sys = data.WaterBox(rng, 3, 3, 3)
		data.Relax(oracle, sys, 40, 0.05)
	case "protein":
		prot := data.ProteinChain(4)
		sys = data.Solvate(prot, 4.0, rng)
		data.Relax(oracle, sys, 60, 0.05)
	default:
		log.Fatalf("unknown system %q", system)
	}
	return sys
}

// parseGrid parses a AxBxC decomposition spec.
func parseGrid(spec string) [3]int {
	var g [3]int
	if _, err := fmt.Sscanf(strings.ReplaceAll(spec, "x", " "), "%d %d %d", &g[0], &g[1], &g[2]); err != nil {
		log.Fatalf("bad -grid %q: %v", spec, err)
	}
	return g
}

// distOpts bundles the distributed driver's robustness knobs.
type distOpts struct {
	benchOut, recoveryOut string
	hbEvery, hbTimeout    time.Duration
	replicateEvery        int
	rejoinTimeout         time.Duration
}

// runDistributed is the -transport tcp driver path: drive an allegro-rankd
// fleet through the remote protocol, then replay the identical trajectory
// on the in-process channel transport and assert the two agree bit for bit.
// The driver is also the fleet supervisor: it records a replication point
// every -replicate-every steps, and when a rank dies it quiesces the
// survivors, waits for a replacement rankd, reships the configuration,
// rewinds to the last replication point when the death poisoned a step, and
// resumes — the final trajectory must still be bit-identical (drift 0).
// The wall-time ratio of the two runs and the transport's measured per-link
// statistics are written as a perfmodel.TransportReport for allegro-scale;
// recovery timings go into a perfmodel.RecoveryReport.
func runDistributed(model *core.Model, system, gridSpec, hostList string, steps int, dt, temp float64, seed uint64, skin float64, opt distOpts) {
	if gridSpec == "" {
		log.Fatal("-transport tcp requires -grid")
	}
	g := parseGrid(gridSpec)
	nr := g[0] * g[1] * g[2]
	list := strings.Split(hostList, ",")
	if hostList == "" || len(list) != nr+1 {
		log.Fatalf("-transport tcp with grid %s needs %d -hosts entries (%d ranks + driver last), got %d",
			gridSpec, nr+1, nr, len(list))
	}

	// In-process reference first: same system, same velocity seeds, chan
	// transport — the bits the wire run must reproduce.
	refSys := buildSystem(system, seed)
	rt, err := domain.NewRuntime(model, refSys, domain.RuntimeOptions{Grid: g, Skin: skin})
	if err != nil {
		log.Fatal(err)
	}
	refSim := md.NewDecomposedSim(refSys, rt, dt)
	refSim.InitVelocities(temp, rand.New(rand.NewPCG(seed, 33)))
	refStart := time.Now()
	refSim.Run(steps)
	chanNs := time.Since(refStart).Nanoseconds() / int64(steps)
	refSim.Close()
	fmt.Printf("reference (chan, in-process): %d steps, E = %.10f eV, %.2f ms/step\n",
		steps, refSim.Energy, float64(chanNs)/1e6)

	// The wire run: this process takes the last transport rank (the driver).
	tr, err := transport.NewTCP(transport.TCPConfig{
		Rank: nr, Hosts: list,
		HeartbeatEvery: opt.hbEvery, HeartbeatTimeout: opt.hbTimeout,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys := buildSystem(system, seed)
	fmt.Printf("driver: connecting to %d rank processes\n", nr)
	rr, err := domain.NewRemoteRuntime(model, sys, domain.RemoteOptions{Grid: g, Skin: skin, Transport: tr})
	if err != nil {
		log.Fatal(err)
	}
	sim := md.NewDecomposedSim(sys, rr, dt)
	sim.InitVelocities(temp, rand.New(rand.NewPCG(seed, 33)))

	report := steps / 10
	if report < 1 {
		report = 1
	}
	start := time.Now()
	if opt.replicateEvery > 0 {
		// A replication point at step 0: a death before the first cadence
		// point must still be recoverable.
		superviseCall(rr, sim, opt, func() error {
			return rr.Replicate(uint64(sim.StepNum), sys.Pos, sim.Vel)
		})
	}
	for sim.StepNum < steps {
		sim.Step()
		if rr.Err() != nil {
			superviseRecovery(rr, sim, opt)
			continue
		}
		if opt.replicateEvery > 0 && sim.StepNum%opt.replicateEvery == 0 {
			superviseCall(rr, sim, opt, func() error {
				return rr.Replicate(uint64(sim.StepNum), sys.Pos, sim.Vel)
			})
		}
		if sim.StepNum%report == 0 {
			fmt.Printf("driver: step %d/%d, E = %.6f eV\n", sim.StepNum, steps, sim.Energy)
		}
	}
	wireNs := time.Since(start).Nanoseconds() / int64(steps)
	links := rr.LinkStats()
	recoveries := rr.Recoveries()
	rr.Close()
	fmt.Printf("distributed (tcp, %d ranks): %d steps, E = %.10f eV, %.2f ms/step\n",
		nr, steps, sim.Energy, float64(wireNs)/1e6)

	// Bitwise drift: any nonzero count means the wire perturbed the physics.
	drift := 0
	for i := range refSys.Pos {
		if sys.Pos[i] != refSys.Pos[i] {
			drift++
		}
	}
	if sim.Energy != refSim.Energy {
		drift++
	}
	fmt.Printf("drift %d (positions and energy vs in-process reference, bitwise)\n", drift)
	fmt.Printf("recoveries: %d\n", len(recoveries))
	for _, rec := range recoveries {
		fmt.Printf("  rank %d (%s phase, generation %d): detect %.0f ms, quiesce %.0f ms, restore %.0f ms, resume %.0f ms, rewound %d steps\n",
			rec.DeadRank, rec.Phase, rec.Generation,
			float64(rec.DetectNs)/1e6, float64(rec.QuiesceNs)/1e6,
			float64(rec.RestoreNs)/1e6, float64(rec.ResumeNs)/1e6, rec.RewindSteps)
	}

	lat, bw := perfmodel.SummarizeLinks(links)
	fmt.Printf("links: %d measured, worst latency %.1f us, worst bandwidth %.2f MB/s\n",
		len(links), lat*1e6, bw/1e6)
	if opt.benchOut != "" {
		rep := perfmodel.TransportReport{
			Transport: "tcp", Ranks: nr, Steps: steps, Atoms: len(sys.Pos),
			ChanNsOp: chanNs, WireNsOp: wireNs, Links: links,
			LinkLatencySec: lat, LinkBandwidthBps: bw,
		}
		buf, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(opt.benchOut, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", opt.benchOut)
	}
	if opt.recoveryOut != "" {
		rep := perfmodel.RecoveryReport{
			Transport: "tcp", Ranks: nr, Atoms: len(sys.Pos), Steps: steps,
			ReplicateEvery: opt.replicateEvery,
			Drift:          float64(drift),
			Recoveries:     recoveries,
		}
		fo, err := os.Create(opt.recoveryOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.WriteJSON(fo); err != nil {
			log.Fatal(err)
		}
		fo.Close()
		fmt.Println("wrote", opt.recoveryOut)
	}
	if drift != 0 {
		os.Exit(1)
	}
}

// superviseCall runs a fleet operation and, when it latches a failure,
// drives recovery and retries until the call succeeds. Used for replication
// points, which are retriable without touching integrator state.
func superviseCall(rr *domain.RemoteRuntime, sim *md.DecomposedSim, opt distOpts, call func() error) {
	for err := call(); err != nil; err = call() {
		if rr.Err() == nil {
			log.Fatalf("fleet call failed: %v", err)
		}
		superviseRecovery(rr, sim, opt)
	}
}

// superviseRecovery repairs the fleet after a latched rank failure: quiesce
// the survivors into a new generation, wait for a replacement rankd for the
// dead rank (a fresh process started with -generation > its predecessor's),
// reship the configuration, and — when the failure poisoned a step — rewind
// the integrator to the last replication point reassembled from the
// survivors' buddy shards. Unrecoverable situations are fatal.
func superviseRecovery(rr *domain.RemoteRuntime, sim *md.DecomposedSim, opt distOpts) {
	rf, ok := domain.AsRankFailure(rr.Err())
	if !ok {
		log.Fatalf("distributed run failed: %v", rr.Err())
	}
	if rf.Rank < 0 {
		log.Fatalf("distributed run failed in %s phase with no identified rank: %v", rf.Phase, rf.Err)
	}
	if opt.replicateEvery <= 0 {
		log.Fatalf("rank %d died and -replicate-every is 0 (recovery disabled): %v", rf.Rank, rf.Err)
	}
	fmt.Printf("driver: rank %d failed during %s phase (%v); recovering\n", rf.Rank, rf.Phase, rf.Err)
	if err := rr.Quiesce(rf.Rank); err != nil {
		log.Fatalf("quiesce after rank %d death: %v", rf.Rank, err)
	}
	fmt.Printf("driver: fleet quiesced into generation %d; waiting %v for a replacement rank %d\n",
		rr.Generation(), opt.rejoinTimeout, rf.Rank)
	if err := rr.Rejoin(rf.Rank, opt.rejoinTimeout); err != nil {
		log.Fatalf("rank %d did not rejoin: %v", rf.Rank, err)
	}
	fmt.Printf("driver: rank %d rejoined at generation %d\n", rf.Rank, rr.Generation())
	// Failures inside a force call (step or the rebuild it triggered) left
	// the integrator advanced on stale forces: rewind to the newest complete
	// replication point. Failures outside (replication itself) left the
	// integrator untouched.
	if rf.Phase == domain.PhaseStep || rf.Phase == domain.PhaseRebuild {
		sys := sim.Sys
		pos := make([][3]float64, len(sys.Pos))
		vel := make([][3]float64, len(sim.Vel))
		step, err := rr.RecoverState(rf.Rank, pos, vel)
		if err != nil {
			log.Fatalf("recovering replicated state: %v", err)
		}
		rewind := sim.StepNum - int(step)
		rr.ClearFailure(rewind)
		sim.SetState(int(step), pos, vel)
		fmt.Printf("driver: rewound %d steps to replication point %d; resuming\n", rewind, step)
	} else {
		rr.ClearFailure(0)
		fmt.Printf("driver: %s phase failure needs no rewind; resuming\n", rf.Phase)
	}
}
