// Command allegro-loadgen drives allegro-serve with concurrent multi-tenant
// load and reports latency percentiles, throughput, and plan-sharing
// statistics (BENCH_serve.json — see docs/benchmarks.md).
//
// Usage:
//
//	allegro-loadgen -tenants 4 -requests 50 -verify -out BENCH_serve.json
//	allegro-loadgen -addr http://127.0.0.1:8080 -tenants 8 -requests 100
//
// Without -addr it starts an in-process daemon over the deterministic demo
// model (matching `allegro-serve -demo` with the same -seed), so one binary
// exercises the whole wire path. -verify re-evaluates every request shape
// on a fresh serial evaluator and requires bit-identical responses; it
// needs the in-process daemon (or a remote daemon running the same -seed
// demo model).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/atoms"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/serve"
	"repro/internal/units"
)

type benchReport struct {
	Tenants       int                    `json:"tenants"`
	Requests      int                    `json:"requests_per_tenant"`
	Trajectories  int                    `json:"trajectory_requests"`
	Total         int                    `json:"total_requests"`
	Completed     int                    `json:"completed"`
	Retries       int                    `json:"backpressure_retries"`
	P50Ms         float64                `json:"p50_ms"`
	P95Ms         float64                `json:"p95_ms"`
	P99Ms         float64                `json:"p99_ms"`
	ThroughputRPS float64                `json:"throughput_rps"`
	WallSeconds   float64                `json:"wall_seconds"`
	Verified      bool                   `json:"verified"`
	Stats         serve.Stats            `json:"server_stats"`
	Shapes        []serve.Shape          `json:"observed_shapes"`
	Registry      core.PlanRegistryStats `json:"-"`
}

func main() {
	var (
		addr     = flag.String("addr", "", "daemon base URL (empty: start in-process)")
		tenants  = flag.Int("tenants", 4, "concurrent tenants")
		requests = flag.Int("requests", 25, "energy/forces requests per tenant")
		trajEach = flag.Int("traj", 2, "trajectory requests per tenant")
		seed     = flag.Uint64("seed", 5, "demo model seed (must match the daemon)")
		verify   = flag.Bool("verify", false, "assert responses bit-identical to a fresh serial evaluator")
		out      = flag.String("out", "", "write the JSON report to this file (default: stdout only)")
		workers  = flag.Int("workers", 0, "in-process daemon workers (0: all cores)")
	)
	flag.Parse()
	if err := run(*addr, *tenants, *requests, *trajEach, *seed, *verify, *out, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "allegro-loadgen:", err)
		os.Exit(1)
	}
}

func run(addr string, tenants, requests, trajEach int, seed uint64, verify bool, out string, workers int) error {
	cfg := core.DefaultConfig([]units.Species{units.H, units.O})
	model, err := core.New(cfg, nil, rand.New(rand.NewPCG(seed, 0xA11E)))
	if err != nil {
		return err
	}

	base := addr
	var svc *serve.Service
	if base == "" {
		svc, err = serve.NewService(serve.Config{
			Model: model, Workers: workers,
			TenantInFlight: 8, QueueDepth: 1024,
		})
		if err != nil {
			return err
		}
		defer svc.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: serve.NewHTTPHandler(svc)}
		go srv.Serve(ln)
		defer srv.Close()
		base = "http://" + ln.Addr().String()
		fmt.Printf("allegro-loadgen: in-process daemon at %s\n", base)
	}

	// Mixed request shapes: three periodic water boxes and one open cluster.
	rng := rand.New(rand.NewPCG(7, 9))
	systems := []*atoms.System{
		data.WaterBox(rng, 2, 2, 2),
		data.WaterBox(rng, 3, 2, 2),
		data.WaterBox(rng, 3, 3, 3),
	}
	cluster := data.WaterBox(rng, 2, 2, 1).Clone()
	cluster.PBC = false
	systems = append(systems, cluster)

	type ref struct {
		e float64
		f [][3]float64
	}
	var refs []ref
	if verify {
		for _, sys := range systems {
			es := core.NewEvalScratch()
			es.Workers = 1
			r := model.EvaluateInto(es, sys)
			f := make([][3]float64, len(r.Forces))
			copy(f, r.Forces)
			refs = append(refs, ref{r.Energy, f})
			es.Close()
		}
	}

	var (
		mu        sync.Mutex
		latencies []float64
		retries   int
		completed int
		shapeSet  = map[serve.Shape]bool{}
	)
	record := func(d time.Duration, shape serve.Shape, nRetries int) {
		mu.Lock()
		latencies = append(latencies, float64(d.Microseconds())/1000)
		retries += nRetries
		completed++
		shapeSet[shape] = true
		mu.Unlock()
	}

	errCh := make(chan error, tenants)
	start := time.Now()
	var wg sync.WaitGroup
	for tn := 0; tn < tenants; tn++ {
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			client := &serve.Client{Base: base, Tenant: fmt.Sprintf("tenant-%d", tn)}
			for i := 0; i < requests; i++ {
				si := (tn + i) % len(systems)
				req := serve.EnergyForcesRequest{System: specFromSystem(systems[si])}
				t0 := time.Now()
				resp, n, err := withBackoff(func() (*serve.EnergyForcesResponse, error) {
					return client.EnergyForces(context.Background(), &req)
				})
				if err != nil {
					errCh <- fmt.Errorf("tenant %d: %w", tn, err)
					return
				}
				record(time.Since(t0), resp.Shape, n)
				if verify {
					if resp.Energy != refs[si].e {
						errCh <- fmt.Errorf("verify: system %d energy %v != serial %v", si, resp.Energy, refs[si].e)
						return
					}
					for a := range refs[si].f {
						if resp.Forces[a] != refs[si].f[a] {
							errCh <- fmt.Errorf("verify: system %d atom %d force mismatch", si, a)
							return
						}
					}
				}
			}
			for i := 0; i < trajEach; i++ {
				req := serve.TrajectoryRequest{
					System: specFromSystem(systems[i%len(systems)]),
					Steps:  10, Dt: 0.25, TempK: 200, Seed: uint64(i),
				}
				t0 := time.Now()
				resp, n, err := withBackoff(func() (*serve.TrajectoryResponse, error) {
					return client.Trajectory(context.Background(), &req)
				})
				if err != nil {
					errCh <- fmt.Errorf("tenant %d trajectory: %w", tn, err)
					return
				}
				record(time.Since(t0), resp.Shape, n)
			}
		}(tn)
	}
	wg.Wait()
	wall := time.Since(start)
	close(errCh)
	for err := range errCh {
		return err
	}

	client := &serve.Client{Base: base}
	stats, err := client.Stats(context.Background())
	if err != nil {
		return err
	}

	sort.Float64s(latencies)
	shapes := make([]serve.Shape, 0, len(shapeSet))
	for s := range shapeSet {
		shapes = append(shapes, s)
	}
	sort.Slice(shapes, func(i, j int) bool {
		if shapes[i].Atoms != shapes[j].Atoms {
			return shapes[i].Atoms < shapes[j].Atoms
		}
		return shapes[i].Pairs < shapes[j].Pairs
	})
	rep := benchReport{
		Tenants: tenants, Requests: requests, Trajectories: trajEach * tenants,
		Total: tenants * (requests + trajEach), Completed: completed,
		Retries:       retries,
		P50Ms:         percentile(latencies, 0.50),
		P95Ms:         percentile(latencies, 0.95),
		P99Ms:         percentile(latencies, 0.99),
		ThroughputRPS: float64(completed) / wall.Seconds(),
		WallSeconds:   wall.Seconds(),
		Verified:      verify,
		Stats:         *stats,
		Shapes:        shapes,
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(blob))
	if out != "" {
		if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("allegro-loadgen: wrote %s\n", out)
	}

	if stats.Registry.Hits == 0 {
		return fmt.Errorf("no cross-tenant plan-pool hits recorded (registry: %+v)", stats.Registry)
	}
	if verify {
		fmt.Println("allegro-loadgen: all responses bit-identical to the serial evaluator")
	}
	return nil
}

// withBackoff retries backpressure rejections (429/503) with a short delay,
// returning the retry count alongside the response.
func withBackoff[T any](do func() (T, error)) (T, int, error) {
	var zero T
	for n := 0; ; n++ {
		resp, err := do()
		if err == nil {
			return resp, n, nil
		}
		if !serve.IsBackpressure(err) || n >= 100 {
			return zero, n, err
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

func specFromSystem(sys *atoms.System) serve.SystemSpec {
	spec := serve.SystemSpec{
		Species: make([]int, sys.NumAtoms()),
		Pos:     make([][3]float64, sys.NumAtoms()),
		Cell:    sys.Cell,
		PBC:     sys.PBC,
	}
	for i, sp := range sys.Species {
		spec.Species[i] = int(sp)
	}
	copy(spec.Pos, sys.Pos)
	return spec
}
