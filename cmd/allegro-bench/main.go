// Command allegro-bench regenerates the paper's tables and figures, and
// measures this node's achieved evaluation throughput.
//
// Usage:
//
//	allegro-bench -exp all            # run every experiment
//	allegro-bench -exp table2,fig6    # run a subset
//	allegro-bench -list               # list experiment IDs
//	allegro-bench -exp fig4 -full     # full (slower) scale
//	allegro-bench -measure            # measure single-node pairs/sec and
//	                                  # allocs/op of the parallel pipeline
//	                                  # in both execution modes (tape and
//	                                  # compiled plans, with the speedup),
//	                                  # then print a cluster model
//	                                  # calibrated from the measurement
//	allegro-bench -measure -compiled=false  # anchor the cluster model on
//	                                  # the tape path instead
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"strings"
	"time"

	allegro "repro"
	"repro/internal/atoms"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/groundtruth"
	"repro/internal/perfmodel"
	"repro/internal/units"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		full     = flag.Bool("full", false, "run at full scale (slower, larger datasets)")
		seed     = flag.Uint64("seed", 1, "experiment seed")
		list     = flag.Bool("list", false, "list available experiments and exit")
		measure  = flag.Bool("measure", false, "measure single-node throughput and exit")
		workers  = flag.Int("workers", 0, "worker pool size for -measure (0: all cores)")
		steps    = flag.Int("steps", 5, "timed force calls for -measure")
		compiled = flag.Bool("compiled", true, "anchor -measure on the compiled inference plans (false: autodiff tape)")
		kernels  = flag.Bool("kernels", false, "print a per-kernel wall-time breakdown of the compiled replay (serial, one worker)")
		reuse    = flag.Bool("reuse", false, "sweep the temporal-reuse engine over eps on a thermostatted water trajectory and emit BENCH_reuse.json")
		reuseOut = flag.String("reuse-out", "BENCH_reuse.json", "output path of the -reuse sweep report")
	)
	flag.Parse()
	if *reuse {
		if err := runReuseSweep(*reuseOut, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "allegro-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *kernels {
		if err := runKernels(*steps, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "allegro-bench:", err)
			os.Exit(1)
		}
		if !*measure {
			return
		}
	}
	if *list {
		for _, id := range experiments.All() {
			fmt.Println(id)
		}
		return
	}
	if *measure {
		if err := runMeasure(*workers, *steps, *seed, *compiled); err != nil {
			fmt.Fprintln(os.Stderr, "allegro-bench:", err)
			os.Exit(1)
		}
		return
	}
	scale := experiments.Quick
	if *full {
		scale = experiments.Full
	}
	ids := experiments.All()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		r, err := experiments.Run(strings.TrimSpace(id), scale, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "allegro-bench:", err)
			os.Exit(1)
		}
		r.Print(os.Stdout)
	}
}

// runKernels replays the compiled plans on one worker with per-op timing
// enabled and prints where each replay's wall time goes, kernel class by
// kernel class — the CPU analogue of the paper's per-kernel GPU profile. The
// per-op timers cost a few percent, so the breakdown is for attribution, not
// absolute throughput (use -measure for that).
func runKernels(steps int, seed uint64) error {
	cfg := core.DefaultConfig([]units.Species{units.H, units.O})
	model, err := core.New(cfg, nil, rand.New(rand.NewPCG(seed, 0xBE9C)))
	if err != nil {
		return err
	}
	sys := data.WaterBox(rand.New(rand.NewPCG(seed, 2)), 3, 3, 3)
	var kp core.KernelProfile
	sim, err := allegro.NewSimulation(sys, model,
		allegro.WithWorkers(1), allegro.WithCompiled(true),
		allegro.WithKernelProfile(&kp))
	if err != nil {
		return err
	}
	defer sim.Close()
	sim.Measure(steps) // warm-up happens inside; kp accumulates every replay
	if kp.Replays == 0 {
		return fmt.Errorf("no compiled replays recorded (tape fallback active?)")
	}
	total := kp.Total()
	perReplay := func(d time.Duration) time.Duration {
		return d / time.Duration(kp.Replays)
	}
	share := func(d time.Duration) float64 {
		return 100 * float64(d) / float64(total)
	}
	fmt.Printf("kernel breakdown (compiled replay, 1 worker, %d replays):\n", kp.Replays)
	for _, row := range []struct {
		name string
		d    time.Duration
	}{
		{"linear (fwd, fused tiles)", kp.Linear},
		{"tensor product (fwd)", kp.TP},
		{"linear (bwd)", kp.BwdLin},
		{"tensor product (bwd)", kp.BwdTP},
		{"env rows (scatter/gather/outer)", kp.EnvRows},
		{"radial basis (norm/cutoff/Bessel/Ylm)", kp.Radial},
		{"other (broadcast/copy/reduce)", kp.Other},
	} {
		fmt.Printf("  %-40s %12v/replay  %5.1f%%\n", row.name, perReplay(row.d), share(row.d))
	}
	fmt.Printf("  %-40s %12v/replay\n", "total", perReplay(total))
	return nil
}

// runMeasure times the force backend behind the one simulation API on a
// water box — in both execution modes, so the tape-vs-compiled speedup is
// visible — and prints the cluster throughput model re-anchored at the
// selected mode's per-atom time (instead of the frozen A100 calibration
// constants). The same allegro.NewSimulation + Measure pair serves the
// decomposed backend in allegro-md -measure.
func runMeasure(workers, steps int, seed uint64, compiled bool) error {
	cfg := core.DefaultConfig([]units.Species{units.H, units.O})
	model, err := core.New(cfg, nil, rand.New(rand.NewPCG(seed, 0xBE9C)))
	if err != nil {
		return err
	}
	sys := data.WaterBox(rand.New(rand.NewPCG(seed, 2)), 3, 3, 3)
	var meas perfmodel.Measurement
	modes := []bool{false, true} // tape first, then the compiled replay
	rates := map[bool]float64{}
	for _, on := range modes {
		sim, err := allegro.NewSimulation(sys, model,
			allegro.WithWorkers(workers), allegro.WithCompiled(on))
		if err != nil {
			return err
		}
		m := sim.Measure(steps).Measurement
		sim.Close()
		rates[on] = m.PairsPerSec
		fmt.Println(m)
		fmt.Printf("  atoms/s            %12.4g\n", m.AtomsPerSec)
		fmt.Printf("  bytes/op           %12.0f\n", m.BytesPerOp)
		if on == compiled {
			meas = m
		}
	}
	if rates[false] > 0 {
		fmt.Printf("tape -> compiled speedup: %.2fx pairs/s\n", rates[true]/rates[false])
	}

	mach := perfmodel.CalibrateMachine(cluster.Perlmutter(), meas)
	fmt.Printf("calibrated cluster model (measured %s compute, configured interconnect):\n", mach.AnchorMode)
	for _, w := range []cluster.Workload{
		cluster.Water("water-1M", 1_000_000),
		cluster.Biosystem("Capsid", 44_000_000),
	} {
		nodes := mach.MinNodes(w)
		fmt.Printf("  %-12s %9d atoms  >= %4d nodes  %8.3g steps/s\n",
			w.Name, w.Atoms, nodes, mach.StepsPerSecond(w, nodes))
	}
	return nil
}

// runReuseSweep measures what displacement-gated temporal reuse actually
// buys on a moving system. Fixed-position measurement loops cannot see it
// (nothing moves, so after warm-up every center reuses and the speedup is
// fictitious); the honest experiment is trajectory A/B — the same
// thermostatted water trajectory, same velocity seed, same thermostat RNG
// stream, run once exactly and once per (eps, RESPA k) setting — timing the
// post-equilibration window and recording the final-state drift the
// approximation introduced. The sweep is the BENCH_reuse.json artifact; CI
// gates on the report's GatedSpeedup (best drift-bounded eps point).
func runReuseSweep(out string, seed uint64) error {
	const (
		equil = 30   // thermostatted steps before the timed window
		timed = 100  // timed MD steps per point
		dt    = 0.25 // fs: resolves the stiff H motion, halves per-step drift
		temp  = 300  // K
		skin  = 0.5  // A
	)
	cfg := core.DefaultConfig([]units.Species{units.H, units.O})
	model, err := core.New(cfg, nil, rand.New(rand.NewPCG(seed, 0xBE9C)))
	if err != nil {
		return err
	}
	buildWater := func() *atoms.System {
		sys := data.WaterBox(rand.New(rand.NewPCG(seed, 2)), 3, 3, 3)
		data.Relax(groundtruth.New(), sys, 40, 0.05)
		return sys
	}

	type setting struct {
		eps float64
		k   int
	}
	settings := []setting{{0, 1}, {0.05, 1}, {0.1, 1}, {0.2, 1}, {0.1, 4}}

	rep := perfmodel.ReuseReport{
		System:            "water 3x3x3",
		EquilSteps:        equil,
		TimestepFs:        dt,
		TempK:             temp,
		RMSForceBoundEvA:  0.2,
		EnergyBoundEvAtom: 0.002,
	}
	probe := perfmodel.NewDriftProbe(model)
	defer probe.Close()
	for _, st := range settings {
		sys := buildWater()
		rep.Atoms = sys.NumAtoms()
		opts := []allegro.Option{
			allegro.WithWorkers(1),
			allegro.WithCompiled(true),
			allegro.WithTimestep(dt),
			allegro.WithTemperature(temp),
			allegro.WithSeed(seed),
			allegro.WithSkin(skin),
		}
		if st.eps > 0 {
			opts = append(opts, allegro.WithReuse(st.eps))
		}
		if st.k > 1 {
			opts = append(opts, allegro.WithRESPA(st.k))
		}
		sim, err := allegro.NewSimulation(sys, model, opts...)
		if err != nil {
			return err
		}
		if err := sim.Run(context.Background(), equil); err != nil {
			sim.Close()
			return err
		}
		start := time.Now()
		if err := sim.Run(context.Background(), timed); err != nil {
			sim.Close()
			return err
		}
		wall := time.Since(start)
		p := perfmodel.ReusePoint{
			Eps:    st.eps,
			RespaK: st.k,
			Steps:  timed,
			StepNs: wall.Nanoseconds() / timed,
		}
		p.StepsPerSec = float64(timed) / wall.Seconds()
		if rs, ok := sim.ReuseStats(); ok {
			p.ReuseFraction = rs.ReuseFraction()
			p.FullEvals = rs.FullEvals
			if rs.Steps > 0 {
				p.ActivePerStep = float64(rs.ActiveCenters) / float64(rs.Steps)
			}
		}
		// Probe drift outside the timed window: after each short burst the
		// engine's Forces/PotentialEnergy describe the current positions,
		// so the exact re-evaluation at those same positions isolates the
		// approximation error from chaotic trajectory divergence.
		if st.eps > 0 || st.k > 1 {
			var worst perfmodel.DriftSample
			for j := 0; j < 10; j++ {
				if err := sim.Run(context.Background(), 2); err != nil {
					sim.Close()
					return err
				}
				worst.Max(probe.Measure(sys, sim.Forces(), sim.Report().PotentialEnergy))
			}
			p.MaxForceErrEvA = worst.MaxForceErrEvA
			p.RMSForceErrEvA = worst.RMSForceErrEvA
			p.EnergyErrEvAtom = worst.EnergyErrEvAtom
		}
		if len(rep.Points) > 0 {
			p.Speedup = float64(rep.Points[0].StepNs) / float64(p.StepNs)
		} else {
			p.Speedup = 1
		}
		sim.Close()
		rep.Points = append(rep.Points, p)
		fmt.Printf("eps %.2f k %d: %.2f steps/s (%.2fx), reuse %.0f%%, err rms %.3g / max %.3g eV/A, %.3g eV/atom\n",
			p.Eps, p.RespaK, p.StepsPerSec, p.Speedup, 100*p.ReuseFraction, p.RMSForceErrEvA, p.MaxForceErrEvA, p.EnergyErrEvAtom)
	}
	rep.Gate()
	fmt.Printf("gated speedup %.2fx at eps %.2f (bounds rms %.2f eV/A, %.4f eV/atom)\n",
		rep.GatedSpeedup, rep.GatedEps, rep.RMSForceBoundEvA, rep.EnergyBoundEvAtom)
	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}
