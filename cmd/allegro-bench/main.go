// Command allegro-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	allegro-bench -exp all            # run every experiment
//	allegro-bench -exp table2,fig6    # run a subset
//	allegro-bench -list               # list experiment IDs
//	allegro-bench -exp fig4 -full     # full (slower) scale
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		exp  = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		full = flag.Bool("full", false, "run at full scale (slower, larger datasets)")
		seed = flag.Uint64("seed", 1, "experiment seed")
		list = flag.Bool("list", false, "list available experiments and exit")
	)
	flag.Parse()
	if *list {
		for _, id := range experiments.All() {
			fmt.Println(id)
		}
		return
	}
	scale := experiments.Quick
	if *full {
		scale = experiments.Full
	}
	ids := experiments.All()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		r, err := experiments.Run(strings.TrimSpace(id), scale, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "allegro-bench:", err)
			os.Exit(1)
		}
		r.Print(os.Stdout)
	}
}
