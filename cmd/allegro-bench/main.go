// Command allegro-bench regenerates the paper's tables and figures, and
// measures this node's achieved evaluation throughput.
//
// Usage:
//
//	allegro-bench -exp all            # run every experiment
//	allegro-bench -exp table2,fig6    # run a subset
//	allegro-bench -list               # list experiment IDs
//	allegro-bench -exp fig4 -full     # full (slower) scale
//	allegro-bench -measure            # measure single-node pairs/sec and
//	                                  # allocs/op of the parallel pipeline
//	                                  # in both execution modes (tape and
//	                                  # compiled plans, with the speedup),
//	                                  # then print a cluster model
//	                                  # calibrated from the measurement
//	allegro-bench -measure -compiled=false  # anchor the cluster model on
//	                                  # the tape path instead
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"strings"

	allegro "repro"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/perfmodel"
	"repro/internal/units"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		full     = flag.Bool("full", false, "run at full scale (slower, larger datasets)")
		seed     = flag.Uint64("seed", 1, "experiment seed")
		list     = flag.Bool("list", false, "list available experiments and exit")
		measure  = flag.Bool("measure", false, "measure single-node throughput and exit")
		workers  = flag.Int("workers", 0, "worker pool size for -measure (0: all cores)")
		steps    = flag.Int("steps", 5, "timed force calls for -measure")
		compiled = flag.Bool("compiled", true, "anchor -measure on the compiled inference plans (false: autodiff tape)")
	)
	flag.Parse()
	if *list {
		for _, id := range experiments.All() {
			fmt.Println(id)
		}
		return
	}
	if *measure {
		if err := runMeasure(*workers, *steps, *seed, *compiled); err != nil {
			fmt.Fprintln(os.Stderr, "allegro-bench:", err)
			os.Exit(1)
		}
		return
	}
	scale := experiments.Quick
	if *full {
		scale = experiments.Full
	}
	ids := experiments.All()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		r, err := experiments.Run(strings.TrimSpace(id), scale, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "allegro-bench:", err)
			os.Exit(1)
		}
		r.Print(os.Stdout)
	}
}

// runMeasure times the force backend behind the one simulation API on a
// water box — in both execution modes, so the tape-vs-compiled speedup is
// visible — and prints the cluster throughput model re-anchored at the
// selected mode's per-atom time (instead of the frozen A100 calibration
// constants). The same allegro.NewSimulation + Measure pair serves the
// decomposed backend in allegro-md -measure.
func runMeasure(workers, steps int, seed uint64, compiled bool) error {
	cfg := core.DefaultConfig([]units.Species{units.H, units.O})
	model, err := core.New(cfg, nil, rand.New(rand.NewPCG(seed, 0xBE9C)))
	if err != nil {
		return err
	}
	sys := data.WaterBox(rand.New(rand.NewPCG(seed, 2)), 3, 3, 3)
	var meas perfmodel.Measurement
	modes := []bool{false, true} // tape first, then the compiled replay
	rates := map[bool]float64{}
	for _, on := range modes {
		sim, err := allegro.NewSimulation(sys, model,
			allegro.WithWorkers(workers), allegro.WithCompiled(on))
		if err != nil {
			return err
		}
		m := sim.Measure(steps).Measurement
		sim.Close()
		rates[on] = m.PairsPerSec
		fmt.Println(m)
		fmt.Printf("  atoms/s            %12.4g\n", m.AtomsPerSec)
		fmt.Printf("  bytes/op           %12.0f\n", m.BytesPerOp)
		if on == compiled {
			meas = m
		}
	}
	if rates[false] > 0 {
		fmt.Printf("tape -> compiled speedup: %.2fx pairs/s\n", rates[true]/rates[false])
	}

	mach := perfmodel.CalibrateMachine(cluster.Perlmutter(), meas)
	fmt.Printf("calibrated cluster model (measured %s compute, configured interconnect):\n", mach.AnchorMode)
	for _, w := range []cluster.Workload{
		cluster.Water("water-1M", 1_000_000),
		cluster.Biosystem("Capsid", 44_000_000),
	} {
		nodes := mach.MinNodes(w)
		fmt.Printf("  %-12s %9d atoms  >= %4d nodes  %8.3g steps/s\n",
			w.Name, w.Atoms, nodes, mach.StepsPerSecond(w, nodes))
	}
	return nil
}
