// Command allegro-bench regenerates the paper's tables and figures, and
// measures this node's achieved evaluation throughput.
//
// Usage:
//
//	allegro-bench -exp all            # run every experiment
//	allegro-bench -exp table2,fig6    # run a subset
//	allegro-bench -list               # list experiment IDs
//	allegro-bench -exp fig4 -full     # full (slower) scale
//	allegro-bench -measure            # measure single-node pairs/sec and
//	                                  # allocs/op of the parallel pipeline
//	                                  # in both execution modes (tape and
//	                                  # compiled plans, with the speedup),
//	                                  # then print a cluster model
//	                                  # calibrated from the measurement
//	allegro-bench -measure -compiled=false  # anchor the cluster model on
//	                                  # the tape path instead
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"strings"
	"time"

	allegro "repro"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/perfmodel"
	"repro/internal/units"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		full     = flag.Bool("full", false, "run at full scale (slower, larger datasets)")
		seed     = flag.Uint64("seed", 1, "experiment seed")
		list     = flag.Bool("list", false, "list available experiments and exit")
		measure  = flag.Bool("measure", false, "measure single-node throughput and exit")
		workers  = flag.Int("workers", 0, "worker pool size for -measure (0: all cores)")
		steps    = flag.Int("steps", 5, "timed force calls for -measure")
		compiled = flag.Bool("compiled", true, "anchor -measure on the compiled inference plans (false: autodiff tape)")
		kernels  = flag.Bool("kernels", false, "print a per-kernel wall-time breakdown of the compiled replay (serial, one worker)")
	)
	flag.Parse()
	if *kernels {
		if err := runKernels(*steps, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "allegro-bench:", err)
			os.Exit(1)
		}
		if !*measure {
			return
		}
	}
	if *list {
		for _, id := range experiments.All() {
			fmt.Println(id)
		}
		return
	}
	if *measure {
		if err := runMeasure(*workers, *steps, *seed, *compiled); err != nil {
			fmt.Fprintln(os.Stderr, "allegro-bench:", err)
			os.Exit(1)
		}
		return
	}
	scale := experiments.Quick
	if *full {
		scale = experiments.Full
	}
	ids := experiments.All()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		r, err := experiments.Run(strings.TrimSpace(id), scale, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "allegro-bench:", err)
			os.Exit(1)
		}
		r.Print(os.Stdout)
	}
}

// runKernels replays the compiled plans on one worker with per-op timing
// enabled and prints where each replay's wall time goes, kernel class by
// kernel class — the CPU analogue of the paper's per-kernel GPU profile. The
// per-op timers cost a few percent, so the breakdown is for attribution, not
// absolute throughput (use -measure for that).
func runKernels(steps int, seed uint64) error {
	cfg := core.DefaultConfig([]units.Species{units.H, units.O})
	model, err := core.New(cfg, nil, rand.New(rand.NewPCG(seed, 0xBE9C)))
	if err != nil {
		return err
	}
	sys := data.WaterBox(rand.New(rand.NewPCG(seed, 2)), 3, 3, 3)
	var kp core.KernelProfile
	sim, err := allegro.NewSimulation(sys, model,
		allegro.WithWorkers(1), allegro.WithCompiled(true),
		allegro.WithKernelProfile(&kp))
	if err != nil {
		return err
	}
	defer sim.Close()
	sim.Measure(steps) // warm-up happens inside; kp accumulates every replay
	if kp.Replays == 0 {
		return fmt.Errorf("no compiled replays recorded (tape fallback active?)")
	}
	total := kp.Total()
	perReplay := func(d time.Duration) time.Duration {
		return d / time.Duration(kp.Replays)
	}
	share := func(d time.Duration) float64 {
		return 100 * float64(d) / float64(total)
	}
	fmt.Printf("kernel breakdown (compiled replay, 1 worker, %d replays):\n", kp.Replays)
	for _, row := range []struct {
		name string
		d    time.Duration
	}{
		{"linear (fwd, fused tiles)", kp.Linear},
		{"tensor product (fwd)", kp.TP},
		{"linear (bwd)", kp.BwdLin},
		{"tensor product (bwd)", kp.BwdTP},
		{"env rows (scatter/gather/outer)", kp.EnvRows},
		{"radial basis (norm/cutoff/Bessel/Ylm)", kp.Radial},
		{"other (broadcast/copy/reduce)", kp.Other},
	} {
		fmt.Printf("  %-40s %12v/replay  %5.1f%%\n", row.name, perReplay(row.d), share(row.d))
	}
	fmt.Printf("  %-40s %12v/replay\n", "total", perReplay(total))
	return nil
}

// runMeasure times the force backend behind the one simulation API on a
// water box — in both execution modes, so the tape-vs-compiled speedup is
// visible — and prints the cluster throughput model re-anchored at the
// selected mode's per-atom time (instead of the frozen A100 calibration
// constants). The same allegro.NewSimulation + Measure pair serves the
// decomposed backend in allegro-md -measure.
func runMeasure(workers, steps int, seed uint64, compiled bool) error {
	cfg := core.DefaultConfig([]units.Species{units.H, units.O})
	model, err := core.New(cfg, nil, rand.New(rand.NewPCG(seed, 0xBE9C)))
	if err != nil {
		return err
	}
	sys := data.WaterBox(rand.New(rand.NewPCG(seed, 2)), 3, 3, 3)
	var meas perfmodel.Measurement
	modes := []bool{false, true} // tape first, then the compiled replay
	rates := map[bool]float64{}
	for _, on := range modes {
		sim, err := allegro.NewSimulation(sys, model,
			allegro.WithWorkers(workers), allegro.WithCompiled(on))
		if err != nil {
			return err
		}
		m := sim.Measure(steps).Measurement
		sim.Close()
		rates[on] = m.PairsPerSec
		fmt.Println(m)
		fmt.Printf("  atoms/s            %12.4g\n", m.AtomsPerSec)
		fmt.Printf("  bytes/op           %12.0f\n", m.BytesPerOp)
		if on == compiled {
			meas = m
		}
	}
	if rates[false] > 0 {
		fmt.Printf("tape -> compiled speedup: %.2fx pairs/s\n", rates[true]/rates[false])
	}

	mach := perfmodel.CalibrateMachine(cluster.Perlmutter(), meas)
	fmt.Printf("calibrated cluster model (measured %s compute, configured interconnect):\n", mach.AnchorMode)
	for _, w := range []cluster.Workload{
		cluster.Water("water-1M", 1_000_000),
		cluster.Biosystem("Capsid", 44_000_000),
	} {
		nodes := mach.MinNodes(w)
		fmt.Printf("  %-12s %9d atoms  >= %4d nodes  %8.3g steps/s\n",
			w.Name, w.Atoms, nodes, mach.StepsPerSecond(w, nodes))
	}
	return nil
}
