// Command allegro-scale runs the Perlmutter-scale throughput model: strong
// scaling (Fig. 6), weak scaling (Fig. 7), and the tight-binding comparison
// (Table III) for arbitrary systems and node counts.
//
// The -overlap flag feeds a measured overlap fraction (for example the one
// `allegro-md -measure` or Simulation.Measure reports for the
// communication-hiding step pipeline) into the analytic cluster model: the
// strong-scaling table then prints synchronous and overlapped step-time
// columns side by side, showing how much of the halo-exchange term hiding
// the communication recovers at scale.
//
// Usage:
//
//	allegro-scale -mode strong -system Capsid -max-nodes 1280
//	allegro-scale -mode strong -system all -overlap 0.9
//	allegro-scale -mode strong -atoms 5000000
//	allegro-scale -mode weak -atoms-per-node 100000
//
// The -transport-stats flag anchors the machine model's interconnect terms
// at measured links instead of the frozen Perlmutter constants: point it at
// the BENCH_transport.json a distributed run wrote (`allegro-md -transport
// tcp -bench-out ...`) and predictions use that fleet's worst measured
// latency and bandwidth.
//
//	allegro-scale -mode strong -atoms 1000000 -transport-stats BENCH_transport.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cluster"
	"repro/internal/data"
	"repro/internal/perfmodel"
)

func main() {
	var (
		mode         = flag.String("mode", "strong", "strong | weak")
		system       = flag.String("system", "", "named system (DHFR, FactorIX, Cellulose, STMV, 10STMV, Capsid) or 'all'")
		atoms        = flag.Int("atoms", 0, "water system size (used when -system is empty)")
		atomsPerNode = flag.Int("atoms-per-node", 100_000, "weak scaling: atoms per node")
		maxNodes     = flag.Int("max-nodes", 1280, "largest node count")
		overlap      = flag.Float64("overlap", 0, "measured overlap fraction in [0,1]: hide that share of the halo exchange and print sync vs overlapped columns")
		statsPath    = flag.String("transport-stats", "", "BENCH_transport.json from a distributed run: calibrate link latency/bandwidth from its measured links")
	)
	flag.Parse()
	if *overlap < 0 || *overlap > 1 {
		log.Fatalf("-overlap must be in [0,1], got %g", *overlap)
	}
	m := cluster.Perlmutter()
	if *statsPath != "" {
		buf, err := os.ReadFile(*statsPath)
		if err != nil {
			log.Fatal(err)
		}
		var rep perfmodel.TransportReport
		if err := json.Unmarshal(buf, &rep); err != nil {
			log.Fatalf("decode %s: %v", *statsPath, err)
		}
		m = perfmodel.CalibrateMachineTransport(m, rep.Links)
		if m.LinkLatency > 0 || m.LinkBandwidth > 0 {
			fmt.Printf("interconnect calibrated from %s (%d links over %s): latency %.1f us, bandwidth %.2f MB/s\n",
				*statsPath, len(rep.Links), rep.Transport, m.LinkLatency*1e6, m.LinkBandwidth/1e6)
		} else {
			fmt.Printf("warning: %s carries no measured links; using frozen interconnect constants\n", *statsPath)
		}
	}
	switch *mode {
	case "strong":
		var workloads []cluster.Workload
		switch {
		case *system == "all":
			for _, s := range data.PaperSystems() {
				workloads = append(workloads, cluster.Biosystem(s.Name, s.Atoms))
			}
		case *system != "":
			found := false
			for _, s := range data.PaperSystems() {
				if s.Name == *system {
					workloads = append(workloads, cluster.Biosystem(s.Name, s.Atoms))
					found = true
				}
			}
			if !found {
				log.Fatalf("unknown system %q", *system)
			}
		case *atoms > 0:
			workloads = append(workloads, cluster.Water(fmt.Sprintf("water-%d", *atoms), *atoms))
		default:
			log.Fatal("need -system or -atoms")
		}
		for _, w := range workloads {
			printStrong(m, w, *maxNodes, *overlap)
		}
	case "weak":
		fmt.Printf("weak scaling: %d atoms/node\n", *atomsPerNode)
		fmt.Printf("%8s %10s %12s\n", "nodes", "steps/s", "efficiency")
		for _, p := range m.WeakScaling(*atomsPerNode, *maxNodes) {
			fmt.Printf("%8d %10.2f %11.1f%%\n", p.Nodes, p.StepsPerSec, p.WeakEffPct)
		}
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}

// printStrong renders one strong-scaling sweep; with a nonzero overlap
// fraction, a synchronous (bulk-synchronous exchange) and an overlapped
// (communication-hiding pipeline) column are printed side by side.
func printStrong(m cluster.Machine, w cluster.Workload, maxNodes int, overlap float64) {
	fmt.Printf("strong scaling: %s (%d atoms)\n", w.Name, w.Atoms)
	if overlap <= 0 {
		fmt.Printf("%8s %12s %10s %10s\n", "nodes", "atoms/GPU", "steps/s", "ns/day")
		for _, p := range m.StrongScaling(w, maxNodes) {
			fmt.Printf("%8d %12.0f %10.2f %10.2f\n", p.Nodes, p.AtomsPerGPU, p.StepsPerSec, p.NsPerDay)
		}
		return
	}
	ov := m
	ov.Overlap = overlap
	// Both sweeps start at the same MinNodes (memory, not overlap, sets
	// the floor), so the rows zip one to one.
	syncPts := m.StrongScaling(w, maxNodes)
	ovPts := ov.StrongScaling(w, maxNodes)
	fmt.Printf("%8s %12s %12s %14s %10s %10s\n",
		"nodes", "atoms/GPU", "sync ms/step", "ovl ms/step", "steps/s", "ns/day")
	for i, p := range ovPts {
		fmt.Printf("%8d %12.0f %12.3f %14.3f %10.2f %10.2f\n",
			p.Nodes, p.AtomsPerGPU, 1e3/syncPts[i].StepsPerSec, 1e3/p.StepsPerSec,
			p.StepsPerSec, p.NsPerDay)
	}
}
