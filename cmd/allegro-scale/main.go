// Command allegro-scale runs the Perlmutter-scale throughput model: strong
// scaling (Fig. 6), weak scaling (Fig. 7), and the tight-binding comparison
// (Table III) for arbitrary systems and node counts.
//
// Usage:
//
//	allegro-scale -mode strong -system Capsid -max-nodes 1280
//	allegro-scale -mode strong -atoms 5000000
//	allegro-scale -mode weak -atoms-per-node 100000
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/data"
)

func main() {
	var (
		mode         = flag.String("mode", "strong", "strong | weak")
		system       = flag.String("system", "", "named system (DHFR, FactorIX, Cellulose, STMV, 10STMV, Capsid)")
		atoms        = flag.Int("atoms", 0, "water system size (used when -system is empty)")
		atomsPerNode = flag.Int("atoms-per-node", 100_000, "weak scaling: atoms per node")
		maxNodes     = flag.Int("max-nodes", 1280, "largest node count")
	)
	flag.Parse()
	m := cluster.Perlmutter()
	switch *mode {
	case "strong":
		var w cluster.Workload
		if *system != "" {
			found := false
			for _, s := range data.PaperSystems() {
				if s.Name == *system {
					w = cluster.Biosystem(s.Name, s.Atoms)
					found = true
				}
			}
			if !found {
				log.Fatalf("unknown system %q", *system)
			}
		} else if *atoms > 0 {
			w = cluster.Water(fmt.Sprintf("water-%d", *atoms), *atoms)
		} else {
			log.Fatal("need -system or -atoms")
		}
		fmt.Printf("strong scaling: %s (%d atoms)\n", w.Name, w.Atoms)
		fmt.Printf("%8s %12s %10s %10s\n", "nodes", "atoms/GPU", "steps/s", "ns/day")
		for _, p := range m.StrongScaling(w, *maxNodes) {
			fmt.Printf("%8d %12.0f %10.2f %10.2f\n", p.Nodes, p.AtomsPerGPU, p.StepsPerSec, p.NsPerDay)
		}
	case "weak":
		fmt.Printf("weak scaling: %d atoms/node\n", *atomsPerNode)
		fmt.Printf("%8s %10s %12s\n", "nodes", "steps/s", "efficiency")
		for _, p := range m.WeakScaling(*atomsPerNode, *maxNodes) {
			fmt.Printf("%8d %10.2f %11.1f%%\n", p.Nodes, p.StepsPerSec, p.WeakEffPct)
		}
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}
