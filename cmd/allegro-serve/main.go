// Command allegro-serve runs the multi-tenant batched inference daemon:
// an HTTP/JSON service that evaluates energy/force and short-trajectory
// requests from many concurrent clients through one shared compiled-plan
// registry (see docs/serving.md for the API and tuning guide).
//
// Usage:
//
//	allegro-serve -model model.json -addr 127.0.0.1:8080
//	allegro-serve -demo -workers 8 -queue-depth 512
//
// With -demo (or an empty -model) the daemon serves a randomly initialized
// H/O model — useful for smoke tests and load generation without a training
// run. The daemon drains gracefully on SIGINT/SIGTERM: admission stops,
// in-flight and queued requests complete, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand/v2"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/units"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		modelPath  = flag.String("model", "", "trained model file (empty: -demo model)")
		demo       = flag.Bool("demo", false, "serve a randomly initialized H/O demo model")
		seed       = flag.Uint64("seed", 5, "demo model seed")
		workers    = flag.Int("workers", 0, "evaluation workers (0: all cores)")
		queueDepth = flag.Int("queue-depth", 0, "admission queue bound (0: default 256)")
		tenantCap  = flag.Int("tenant-inflight", 0, "per-tenant in-flight cap (0: default 4)")
		maxAtoms   = flag.Int("max-atoms", 0, "largest admitted system (0: default 8192)")
		maxSteps   = flag.Int("max-steps", 0, "longest admitted trajectory (0: default 1000)")
	)
	flag.Parse()

	model, err := loadOrDemoModel(*modelPath, *demo, *seed)
	if err != nil {
		fail(err)
	}
	svc, err := serve.NewService(serve.Config{
		Model: model, Workers: *workers, QueueDepth: *queueDepth,
		TenantInFlight: *tenantCap, MaxAtoms: *maxAtoms, MaxSteps: *maxSteps,
	})
	if err != nil {
		fail(err)
	}

	srv := &http.Server{Addr: *addr, Handler: serve.NewHTTPHandler(svc)}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("allegro-serve: listening on %s\n", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("allegro-serve: %v, draining\n", s)
	case err := <-errCh:
		fail(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "allegro-serve: http shutdown:", err)
	}
	if err := svc.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "allegro-serve: drain:", err)
		os.Exit(1)
	}
	fmt.Println("allegro-serve: drained")
}

// loadOrDemoModel loads a trained model, or builds the deterministic demo
// model (the same construction allegro-loadgen uses for -verify).
func loadOrDemoModel(path string, demo bool, seed uint64) (*core.Model, error) {
	if path != "" && !demo {
		return core.Load(path)
	}
	cfg := core.DefaultConfig([]units.Species{units.H, units.O})
	return core.New(cfg, nil, rand.New(rand.NewPCG(seed, 0xA11E)))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "allegro-serve:", err)
	os.Exit(1)
}
