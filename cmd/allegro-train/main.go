// Command allegro-train trains an Allegro potential on a synthetic
// oracle-labeled dataset and writes the model to a JSON file.
//
// Usage:
//
//	allegro-train -dataset water -frames 12 -epochs 10 -out model.json
//
// Datasets: water (liquid water cells), molecules (SPICE-like organic mix),
// protein (solvated synthetic protein).
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand/v2"

	"repro/internal/atoms"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/groundtruth"
	"repro/internal/units"
)

func main() {
	var (
		dataset  = flag.String("dataset", "water", "training dataset: water | molecules | protein")
		frames   = flag.Int("frames", 10, "number of training frames")
		epochs   = flag.Int("epochs", 10, "training epochs")
		lr       = flag.Float64("lr", 4e-3, "Adam learning rate")
		seed     = flag.Uint64("seed", 1, "RNG seed")
		out      = flag.String("out", "allegro-model.json", "output model path")
		layers   = flag.Int("layers", 2, "Allegro layers")
		channels = flag.Int("channels", 2, "tensor channels")
		lmax     = flag.Int("lmax", 1, "maximum rotation order")
	)
	flag.Parse()
	rng := rand.New(rand.NewPCG(*seed, 42))
	oracle := groundtruth.New()

	var train []*atoms.Frame
	var species []units.Species
	switch *dataset {
	case "water":
		species = []units.Species{units.H, units.O}
		liquid := data.WaterBox(rng, 3, 3, 3)
		data.Relax(oracle, liquid, 40, 0.05)
		train = data.MDSampledFrames(oracle, liquid, *frames, 12, 0.25, 330, rng)
	case "molecules":
		species = []units.Species{units.H, units.C, units.N, units.O, units.S}
		train = data.SPICELikeSet(oracle, *frames, rng)
	case "protein":
		species = []units.Species{units.H, units.C, units.N, units.O}
		prot := data.ProteinChain(4)
		solv := data.Solvate(prot, 4.0, rng)
		data.Relax(oracle, solv, 60, 0.05)
		train = data.MDSampledFrames(oracle, solv, *frames, 8, 0.25, 320, rng)
	default:
		log.Fatalf("unknown dataset %q", *dataset)
	}

	cfg := core.DefaultConfig(species)
	cfg.NumLayers = *layers
	cfg.NumChannels = *channels
	cfg.LMax = *lmax
	cfg.LatentDim = 16
	cfg.TwoBodyHidden = []int{16}
	cfg.LatentHidden = []int{16}
	cfg.EdgeHidden = 8
	cfg.NumBessel = 6
	cfg.AvgNumNeighbors = 12
	model, err := core.New(cfg, nil, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training Allegro (%d weights) on %d %s frames (%d atoms each)\n",
		model.NumWeights(), len(train), *dataset, train[0].NumAtoms())

	tc := core.DefaultTrainConfig()
	tc.Epochs = *epochs
	tc.BatchSize = 2
	tc.LR = *lr
	tc.Seed = *seed
	tc.Logf = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	trainer := core.NewTrainer(model, tc)
	trainer.Train(train)
	fmt.Println("train-set metrics:", trainer.Evaluate(train))

	if err := model.Save(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Println("model written to", *out)
}
