package allegro

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links and images: [text](target). The
// target is captured up to the closing paren; titles ("...") are not used
// in this repo's docs.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// TestDocsLinks is the docs lint gate (CI build job): every relative link
// in README.md and the docs/ tree must resolve to a file inside the
// repository. External (scheme-qualified) links and pure in-page anchors
// are skipped; a relative link's optional #fragment is stripped before the
// existence check.
func TestDocsLinks(t *testing.T) {
	pages := []string{"README.md"}
	entries, err := os.ReadDir("docs")
	if err != nil {
		t.Fatalf("reading docs/: %v", err)
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".md") {
			pages = append(pages, filepath.Join("docs", e.Name()))
		}
	}
	if len(pages) < 4 {
		t.Fatalf("expected README.md + >=3 docs pages, found %v", pages)
	}

	root, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, page := range pages {
		blob, err := os.ReadFile(page)
		if err != nil {
			t.Fatalf("reading %s: %v", page, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(blob), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external; not checked offline
			}
			if strings.HasPrefix(target, "#") {
				continue // in-page anchor
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			resolved := filepath.Join(filepath.Dir(page), target)
			abs, err := filepath.Abs(resolved)
			if err != nil || !strings.HasPrefix(abs, root+string(filepath.Separator)) {
				t.Errorf("%s: link %q escapes the repository", page, m[1])
				continue
			}
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: dead link %q (%s does not exist)", page, m[1], resolved)
			}
		}
	}
}
