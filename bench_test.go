package allegro

import (
	"fmt"
	"io"
	"math/rand/v2"
	"testing"

	"repro/internal/atoms"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/md"
	"repro/internal/neighbor"
	"repro/internal/o3"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

// One benchmark per table/figure of the paper's evaluation. Heavy training
// experiments run once per benchmark iteration at Quick scale; the scaling
// benchmarks exercise the cluster model and are fast.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Run(id, experiments.Quick, 1)
		if err != nil {
			b.Fatal(err)
		}
		r.Print(io.Discard)
	}
}

// BenchmarkTableI regenerates the rMD17-like model-family comparison.
func BenchmarkTableI(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTableII regenerates the water/ice sample-efficiency comparison.
func BenchmarkTableII(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTableIII regenerates the tight-binding time-to-solution table.
func BenchmarkTableIII(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkTableIV regenerates the mixed-precision ablation.
func BenchmarkTableIV(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkFigure1 regenerates the system inventory.
func BenchmarkFigure1(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFigure3 regenerates the fused-vs-separated tensor product
// measurement.
func BenchmarkFigure3(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFigure4 regenerates the protein-stability MD experiment.
func BenchmarkFigure4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFigure5 regenerates the allocator-padding experiment.
func BenchmarkFigure5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFigure6 regenerates the strong-scaling sweeps.
func BenchmarkFigure6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFigure7 regenerates the weak-scaling sweeps.
func BenchmarkFigure7(b *testing.B) { benchExperiment(b, "fig7") }

// --- kernel micro-benchmarks underlying the figures ---

// BenchmarkFusedTensorProduct measures the paper's central fused contraction
// at the production lmax=2 over a realistic pair batch.
func BenchmarkFusedTensorProduct(b *testing.B) {
	tp := o3.NewTensorProduct(o3.FullIrreps(2), o3.SphericalIrreps(2), o3.FullIrreps(2))
	rng := rand.New(rand.NewPCG(1, 2))
	z, u := 256, 4
	x := tensor.New(z, u, tp.In1.Width)
	y := tensor.New(z, u, tp.In2.Width)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range y.Data {
		y.Data[i] = rng.NormFloat64()
	}
	w := make([]float64, tp.NumPaths())
	for i := range w {
		w[i] = 1
	}
	tp.Fuse(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp.ApplyFused(x, y, nil, tensor.F64)
	}
}

// BenchmarkFusedTensorProductInto measures the steady-state inner loop of
// the force evaluation — the fused contraction writing into a preallocated
// output: 0 allocs/op.
func BenchmarkFusedTensorProductInto(b *testing.B) {
	tp := o3.NewTensorProduct(o3.FullIrreps(2), o3.SphericalIrreps(2), o3.FullIrreps(2))
	rng := rand.New(rand.NewPCG(1, 2))
	z, u := 256, 4
	x := tensor.New(z, u, tp.In1.Width)
	y := tensor.New(z, u, tp.In2.Width)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range y.Data {
		y.Data[i] = rng.NormFloat64()
	}
	w := make([]float64, tp.NumPaths())
	for i := range w {
		w[i] = 1
	}
	tp.Fuse(w)
	out := tensor.New(z, u, tp.Out.Width)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Zero()
		tp.ApplyFusedInto(out, x, y, nil, tensor.F64, nil)
	}
}

// BenchmarkSeparatedTensorProduct measures the per-path reference kernel
// (the Fig. 3 comparison baseline).
func BenchmarkSeparatedTensorProduct(b *testing.B) {
	tp := o3.NewTensorProduct(o3.FullIrreps(2), o3.SphericalIrreps(2), o3.FullIrreps(2))
	rng := rand.New(rand.NewPCG(1, 2))
	z, u := 256, 4
	x := tensor.New(z, u, tp.In1.Width)
	y := tensor.New(z, u, tp.In2.Width)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range y.Data {
		y.Data[i] = rng.NormFloat64()
	}
	w := make([]float64, tp.NumPaths())
	for i := range w {
		w[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp.ApplySeparated(x, y, w, tensor.F64)
	}
}

// BenchmarkNeighborBuild measures cell-list neighbor construction on the
// 192-atom water cell with the paper's per-species cutoffs.
func BenchmarkNeighborBuild(b *testing.B) {
	rng := rand.New(rand.NewPCG(3, 4))
	sys := data.WaterBox(rng, 4, 4, 4)
	cuts := neighbor.PaperBioCutoffs(atoms.NewSpeciesIndex([]Species{H, O}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		neighbor.Build(sys, cuts)
	}
}

// BenchmarkNeighborBuildSteadyState measures the reusable Builder (the MD
// steady-state path): 0 allocs/op after warm-up at any worker count, with
// achieved pairs/s reported — the number the CI benchmark-smoke job guards.
func BenchmarkNeighborBuildSteadyState(b *testing.B) {
	rng := rand.New(rand.NewPCG(3, 4))
	sys := data.WaterBox(rng, 4, 4, 4)
	cuts := neighbor.PaperBioCutoffs(atoms.NewSpeciesIndex([]Species{H, O}))
	for _, workers := range []int{1, 0} {
		name := "workers=1"
		if workers == 0 {
			name = "workers=max"
		}
		b.Run(name, func(b *testing.B) {
			bld := neighbor.Builder{Workers: workers}
			defer bld.Close()
			var p neighbor.Pairs
			bld.BuildInto(&p, sys, cuts)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bld.BuildInto(&p, sys, cuts)
			}
			b.ReportMetric(float64(p.NumReal)*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
		})
	}
}

// BenchmarkEvaluatorSteadyState measures the full zero-allocation force
// pipeline — parallel neighbor build, arena-backed tape, sharded force
// reduction — against the allocating Evaluate path. The backend is wired
// through allegro.NewSimulation (the one simulation API), so the guard
// covers exactly what production MD runs. Steady-state allocs/op stay fixed
// and small regardless of system size.
func BenchmarkEvaluatorSteadyState(b *testing.B) {
	cfg := DefaultConfig([]Species{H, O})
	rng := rand.New(rand.NewPCG(7, 9))
	sys := data.WaterBox(rng, 2, 2, 2)
	for _, workers := range []int{1, 0} {
		name := "workers=1"
		if workers == 0 {
			name = "workers=max"
		}
		b.Run(name, func(b *testing.B) {
			model, err := NewModel(cfg, 5)
			if err != nil {
				b.Fatal(err)
			}
			sim, err := NewSimulation(sys.Clone(), model, WithWorkers(workers))
			if err != nil {
				b.Fatal(err)
			}
			defer sim.Close()
			pot := sim.Potential().(perfmodel.InstrumentedPotential)
			run := sim.System()
			forces := make([][3]float64, run.NumAtoms())
			pot.EnergyForcesInto(run, forces)
			pot.EnergyForcesInto(run, forces)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pot.EnergyForcesInto(run, forces)
			}
			b.ReportMetric(float64(pot.PairWork())*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
		})
	}
}

// BenchmarkCompiledEvaluatorSteadyState measures the compiled inference
// engine against the interpreted tape on the identical serial workload at
// the paper's production mixed precision (F64 final, F32 weights, TF32
// compute) and production tensor multiplicity (64 channels, so the fused
// tensor product carries its production share of the step) — the regime
// where the tape pays per-call weight re-rounding and TPEntry re-folding,
// rounding-scratch allocations, dead weight-adjoint accumulation, and
// per-element precision dispatch that the record-once/replay plans fold
// away at compile time. The two modes are bit-identical in outputs;
// mode=compiled must stay 0 allocs/op and its pairs/s must exceed
// mode=tape by >= 1.3x (both guarded in CI, ratio recorded in
// BENCH_compiled.json).
func BenchmarkCompiledEvaluatorSteadyState(b *testing.B) {
	cfg := DefaultConfig([]Species{H, O})
	cfg.Precision = core.ProductionPrecision()
	cfg.NumChannels = 64
	rng := rand.New(rand.NewPCG(7, 9))
	sys := data.WaterBox(rng, 2, 2, 2)
	for _, mode := range []string{"tape", "compiled"} {
		b.Run("mode="+mode, func(b *testing.B) {
			model, err := NewModel(cfg, 5)
			if err != nil {
				b.Fatal(err)
			}
			sim, err := NewSimulation(sys.Clone(), model,
				WithWorkers(1), WithCompiled(mode == "compiled"))
			if err != nil {
				b.Fatal(err)
			}
			defer sim.Close()
			pot := sim.Potential().(perfmodel.InstrumentedPotential)
			run := sim.System()
			forces := make([][3]float64, run.NumAtoms())
			pot.EnergyForcesInto(run, forces)
			pot.EnergyForcesInto(run, forces)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pot.EnergyForcesInto(run, forces)
			}
			b.ReportMetric(float64(pot.PairWork())*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
		})
	}
}

// BenchmarkKernelEvaluatorSteadyState measures the register-blocked
// microkernel layer (internal/tensor/kern + the blocked o3 contractions)
// against the pre-kern reference kernels on the identical compiled-plan
// workload as BenchmarkCompiledEvaluatorSteadyState: production mixed
// precision, 64 channels, serial steady state. Both modes replay the same
// plans and are bit-identical in outputs; mode=kern must stay 0 allocs/op
// and its pairs/s must reach >= 1.25x mode=ref (the PR's BENCH_simd gate —
// mode=ref is the PR-5 compiled evaluator measured on the same machine).
func BenchmarkKernelEvaluatorSteadyState(b *testing.B) {
	cfg := DefaultConfig([]Species{H, O})
	cfg.Precision = core.ProductionPrecision()
	cfg.NumChannels = 64
	rng := rand.New(rand.NewPCG(7, 9))
	sys := data.WaterBox(rng, 2, 2, 2)
	for _, mode := range []string{"ref", "kern"} {
		b.Run("mode="+mode, func(b *testing.B) {
			model, err := NewModel(cfg, 5)
			if err != nil {
				b.Fatal(err)
			}
			sim, err := NewSimulation(sys.Clone(), model,
				WithWorkers(1), WithCompiled(true), WithRefKernels(mode == "ref"))
			if err != nil {
				b.Fatal(err)
			}
			defer sim.Close()
			pot := sim.Potential().(perfmodel.InstrumentedPotential)
			run := sim.System()
			forces := make([][3]float64, run.NumAtoms())
			pot.EnergyForcesInto(run, forces)
			pot.EnergyForcesInto(run, forces)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pot.EnergyForcesInto(run, forces)
			}
			b.ReportMetric(float64(pot.PairWork())*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
		})
	}
}

// BenchmarkCompiledRuntimeStep measures the same tape-vs-compiled pair on
// the decomposed persistent-rank runtime (every rank replays its own
// per-shape plan cache) at production precision: the steady-state 2x2x2
// step with warm Verlet lists. mode=compiled must stay 0 allocs/op
// (CI-guarded alongside the evaluator benchmark).
func BenchmarkCompiledRuntimeStep(b *testing.B) {
	cfg := DefaultConfig([]Species{H, O})
	cfg.Workers = 1
	cfg.DefaultCutoff = 3.0
	cfg.AvgNumNeighbors = 10
	cfg.Precision = core.ProductionPrecision()
	rng := rand.New(rand.NewPCG(7, 9))
	sys := data.WaterBox(rng, 3, 3, 3)
	for _, mode := range []string{"tape", "compiled"} {
		b.Run("mode="+mode, func(b *testing.B) {
			model, err := NewModel(cfg, 5)
			if err != nil {
				b.Fatal(err)
			}
			sim, err := NewSimulation(sys.Clone(), model,
				WithGrid(2, 2, 2), WithSkin(0.5), WithCompiled(mode == "compiled"))
			if err != nil {
				b.Fatal(err)
			}
			defer sim.Close()
			pot := sim.Potential().(perfmodel.InstrumentedPotential)
			run := sim.System()
			forces := make([][3]float64, run.NumAtoms())
			pot.EnergyForcesInto(run, forces)
			pot.EnergyForcesInto(run, forces)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pot.EnergyForcesInto(run, forces)
			}
			st, _ := sim.Stats()
			b.ReportMetric(float64(st.PairWork)*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
		})
	}
}

// BenchmarkReuseSteadyState measures the displacement-gated temporal-reuse
// engine in its replay steady state: positions alternate between two fixed
// configurations (a subset of atoms displaced well past eps, the rest
// still), so every timed call advances the bounds, gathers the active
// sub-chunk, replays it through the compiled plans, scatters it back, and
// reduces — the full partial-replay cycle, with a recurring active-set
// shape. mode=reuse must stay 0 allocs/op — the gather/pad/scatter
// machinery runs entirely from preallocated scratch — alongside the exact
// mode=off baseline evaluating the identical alternation (the CI
// bench-smoke job enforces both). The trajectory-level A/B speedup is
// measured separately by allegro-bench -reuse (BENCH_reuse.json).
func BenchmarkReuseSteadyState(b *testing.B) {
	cfg := DefaultConfig([]Species{H, O})
	cfg.Workers = 1
	cfg.DefaultCutoff = 3.0
	cfg.AvgNumNeighbors = 10
	rng := rand.New(rand.NewPCG(7, 9))
	sys := data.WaterBox(rng, 3, 3, 3)
	for _, mode := range []string{"off", "reuse"} {
		b.Run("mode="+mode, func(b *testing.B) {
			model, err := NewModel(cfg, 5)
			if err != nil {
				b.Fatal(err)
			}
			opts := []Option{WithWorkers(1), WithCompiled(true)}
			if mode == "reuse" {
				opts = append(opts, WithReuse(0.05))
			}
			sim, err := NewSimulation(sys.Clone(), model, opts...)
			if err != nil {
				b.Fatal(err)
			}
			defer sim.Close()
			pot := sim.Potential().(perfmodel.InstrumentedPotential)
			run := sim.System()
			posA := make([][3]float64, len(run.Pos))
			posB := make([][3]float64, len(run.Pos))
			copy(posA, run.Pos)
			copy(posB, run.Pos)
			for i := 0; i < len(posB); i += 32 {
				posB[i][0] += 0.06 // past eps, far under the skin trigger
			}
			forces := make([][3]float64, run.NumAtoms())
			step := func(i int) {
				if i%2 == 0 {
					copy(run.Pos, posB)
				} else {
					copy(run.Pos, posA)
				}
				pot.EnergyForcesInto(run, forces)
			}
			for i := 0; i < 4; i++ {
				step(i) // warm both configurations and the active-set shape
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				step(i)
			}
			b.StopTimer()
			if mode == "reuse" {
				st, ok := sim.ReuseStats()
				if !ok {
					b.Fatal("reuse stats missing")
				}
				if st.ActivePairs >= st.PairSteps {
					b.Fatal("alternation never hit the cache: reuse path unexercised")
				}
				b.ReportMetric(st.ReuseFraction(), "reuse-frac")
			}
		})
	}
}

// BenchmarkEvaluateAllocating is the pre-pipeline baseline (fresh neighbor
// list, heap tape, fresh force buffers every call) for comparison with
// BenchmarkEvaluatorSteadyState.
func BenchmarkEvaluateAllocating(b *testing.B) {
	model, err := NewModel(DefaultConfig([]Species{H, O}), 5)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(7, 9))
	sys := data.WaterBox(rng, 2, 2, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Evaluate(sys)
	}
}

// BenchmarkClusterStepTime measures the throughput model itself.
func BenchmarkClusterStepTime(b *testing.B) {
	m := cluster.Perlmutter()
	w := cluster.Biosystem("Capsid", 44_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.StepTime(w, 1280)
	}
}

// BenchmarkMixedPrecisionMatmul compares the emulated precisions on a GEMM.
func BenchmarkMixedPrecisionMatmul(b *testing.B) {
	rng := rand.New(rand.NewPCG(5, 6))
	a := tensor.New(64, 64)
	c := tensor.New(64, 64)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
		c.Data[i] = rng.NormFloat64()
	}
	for _, p := range []tensor.Precision{tensor.F64, tensor.F32, tensor.TF32} {
		b.Run(p.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tensor.MatMul(a, c, p)
			}
		})
	}
	_ = perfmodel.PeakTF32
}

// BenchmarkRuntimeStep measures the steady-state decomposed MD step: warm
// Verlet lists, no rebuild, incremental ghost exchange and canonical
// reduction across persistent rank workers — 0 allocs/op (the CI bench-smoke
// job enforces this), with achieved pairs/s reported. The runtime is wired
// through allegro.NewSimulation, the one simulation API.
func BenchmarkRuntimeStep(b *testing.B) {
	cfg := DefaultConfig([]Species{H, O})
	cfg.Workers = 1
	cfg.DefaultCutoff = 3.0
	cfg.AvgNumNeighbors = 10
	rng := rand.New(rand.NewPCG(7, 9))
	sys := data.WaterBox(rng, 3, 3, 3)
	for _, grid := range [][3]int{{1, 1, 1}, {2, 2, 2}} {
		b.Run(fmt.Sprintf("ranks=%d", grid[0]*grid[1]*grid[2]), func(b *testing.B) {
			model, err := NewModel(cfg, 5)
			if err != nil {
				b.Fatal(err)
			}
			sim, err := NewSimulation(sys.Clone(), model,
				WithGrid(grid[0], grid[1], grid[2]), WithSkin(0.5))
			if err != nil {
				b.Fatal(err)
			}
			defer sim.Close()
			pot := sim.Potential().(perfmodel.InstrumentedPotential)
			run := sim.System()
			forces := make([][3]float64, run.NumAtoms())
			pot.EnergyForcesInto(run, forces)
			pot.EnergyForcesInto(run, forces)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pot.EnergyForcesInto(run, forces)
			}
			st, _ := sim.Stats()
			b.ReportMetric(float64(st.PairWork)*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
		})
	}
}

// BenchmarkRuntimeStepOverlap measures the same steady-state decomposed
// step with the communication-hiding pipeline enabled: asynchronous ghost
// exchange hidden behind the interior block, split force reduction, and
// the pipelined ready path (driven with a live callback, so batch delivery
// is inside the timed, allocation-guarded loop). Compare against
// BenchmarkRuntimeStep/ranks=8 (the bulk-synchronous schedule of the
// identical workload): overlapped step time must not exceed synchronous.
// The measured overlap fraction is reported as a metric, and the step must
// stay 0 allocs/op (the CI bench-smoke job enforces this).
func BenchmarkRuntimeStepOverlap(b *testing.B) {
	cfg := DefaultConfig([]Species{H, O})
	cfg.Workers = 1
	cfg.DefaultCutoff = 3.0
	cfg.AvgNumNeighbors = 10
	rng := rand.New(rand.NewPCG(7, 9))
	sys := data.WaterBox(rng, 3, 3, 3)
	for _, grid := range [][3]int{{2, 2, 2}} {
		b.Run(fmt.Sprintf("ranks=%d", grid[0]*grid[1]*grid[2]), func(b *testing.B) {
			model, err := NewModel(cfg, 5)
			if err != nil {
				b.Fatal(err)
			}
			sim, err := NewSimulation(sys.Clone(), model,
				WithGrid(grid[0], grid[1], grid[2]), WithSkin(0.5), WithOverlap())
			if err != nil {
				b.Fatal(err)
			}
			defer sim.Close()
			pot := sim.Potential().(interface {
				perfmodel.InstrumentedPotential
				md.PipelinedPotential
			})
			run := sim.System()
			forces := make([][3]float64, run.NumAtoms())
			delivered := 0
			ready := func(atoms []int32) { delivered += len(atoms) }
			pot.EnergyForcesOverlap(run, forces, ready)
			pot.EnergyForcesOverlap(run, forces, ready)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pot.EnergyForcesOverlap(run, forces, ready)
			}
			b.StopTimer()
			if want := (b.N + 2) * run.NumAtoms(); delivered != want {
				b.Fatalf("ready delivered %d atom entries, want %d", delivered, want)
			}
			st, _ := sim.Stats()
			b.ReportMetric(float64(st.PairWork)*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
			b.ReportMetric(st.OverlapFraction(), "overlap-frac")
		})
	}
}

// BenchmarkSimulationStep measures the one-API engine loop end to end —
// NewSimulation, observers detached, Step driving integration plus the
// backend force call — on both backends. Positions and velocities are
// restored after every step so the trajectory stays in the runtime's
// steady state (no Verlet rebuilds, stable pair counts): what remains is
// the engine's own overhead, which must be 0 allocs/op (CI-enforced).
func BenchmarkSimulationStep(b *testing.B) {
	cfg := DefaultConfig([]Species{H, O})
	cfg.Workers = 1
	cfg.DefaultCutoff = 3.0
	cfg.AvgNumNeighbors = 10
	rng := rand.New(rand.NewPCG(7, 9))
	sys := data.WaterBox(rng, 3, 3, 3)
	for _, bk := range []struct {
		name string
		opts []Option
	}{
		{"serial", nil},
		{"ranks=8", []Option{WithGrid(2, 2, 2), WithSkin(0.5)}},
	} {
		b.Run(bk.name, func(b *testing.B) {
			model, err := NewModel(cfg, 5)
			if err != nil {
				b.Fatal(err)
			}
			sim, err := NewSimulation(sys.Clone(), model, bk.opts...)
			if err != nil {
				b.Fatal(err)
			}
			defer sim.Close()
			run := sim.System()
			pos0 := make([][3]float64, len(run.Pos))
			copy(pos0, run.Pos)
			vel := sim.Velocities()
			reset := func() {
				copy(run.Pos, pos0)
				for j := range vel {
					vel[j] = [3]float64{}
				}
			}
			sim.Step()
			reset()
			sim.Step()
			reset()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Step()
				reset()
			}
		})
	}
}
