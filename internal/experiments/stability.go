package experiments

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/analysis"
	"repro/internal/atoms"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/groundtruth"
	"repro/internal/md"
	"repro/internal/units"
)

// StabilityResult carries the Fig. 4 series for programmatic checks.
type StabilityResult struct {
	Report *Report
	RMSD   map[string]*analysis.Series
	Temp   map[string]*analysis.Series
}

// Figure4 reproduces the stability experiment: NVT dynamics of two solvated
// synthetic proteins under a *trained Allegro potential*, tracking backbone
// RMSD (which must plateau, not diverge) and temperature (which must hold
// at the thermostat setting). Scaled down from the paper's 23k/91k-atom
// proteins and 3+ ns to CPU-tractable sizes and times; the claim under test
// — bounded RMSD and stable temperature under the learned potential — is
// unchanged.
func Figure4(scale Scale, seed uint64) *StabilityResult {
	oracle := groundtruth.New()
	rng := rand.New(rand.NewPCG(seed, 51))
	resA, resB := 3, 5
	nTrain, epochs := 5, 4
	steps, sample := 150, 10
	if scale == Full {
		resA, resB = 6, 10
		nTrain, epochs = 12, 10
		steps, sample = 600, 20
	}
	species := []units.Species{units.H, units.C, units.N, units.O}

	build := func(nRes int) (*atoms.System, []int) {
		prot := data.ProteinChain(nRes)
		solv := data.Solvate(prot, 4.0, rng)
		data.Relax(oracle, solv, 60, 0.05)
		return solv, data.BackboneIndices(nRes)
	}
	sysA, bbA := build(resA)
	sysB, bbB := build(resB)

	// Train a biomolecular Allegro on MD-sampled frames of the smaller
	// system (the paper trains one SPICE potential for all its systems).
	train := data.MDSampledFrames(oracle, sysA, nTrain, 8, 0.25, 320, rng)
	model := tinyAllegro(species, 2, seed)
	tc := core.DefaultTrainConfig()
	tc.Epochs = epochs
	tc.BatchSize = 2
	tc.Seed = seed
	core.NewTrainer(model, tc).Train(train)

	out := &StabilityResult{
		RMSD: map[string]*analysis.Series{},
		Temp: map[string]*analysis.Series{},
	}
	r := &Report{
		ID:     "fig4",
		Title:  "Stability: backbone RMSD plateau and temperature under trained Allegro NVT",
		Header: []string{"system", "atoms", "time (fs)", "RMSD (A)", "T (K)"},
	}
	runs := []struct {
		name string
		sys  *atoms.System
		bb   []int
	}{
		{"DHFR-like", sysA, bbA},
		{"FactorIX-like", sysB, bbB},
	}
	for _, run := range runs {
		sim := md.NewSim(run.sys.Clone(), model, 0.5)
		// Strong coupling: the demo potential trains for minutes rather than
		// the paper's 7 days, so its equilibrium differs more from the
		// starting structure and the thermostat must absorb the relaxation.
		sim.Thermostat = &md.Langevin{TempK: 300, Gamma: 0.3, Rng: rng}
		sim.InitVelocities(300, rng)
		// Burn-in before recording (the paper likewise discards the initial
		// equilibration before measuring).
		sim.Run(steps / 3)
		ref := make([][3]float64, len(run.bb))
		for t, i := range run.bb {
			ref[t] = sim.Sys.Pos[i]
		}
		rmsdSeries := &analysis.Series{Label: run.name + "/rmsd"}
		tempSeries := &analysis.Series{Label: run.name + "/temp"}
		cur := make([][3]float64, len(run.bb))
		for s := 0; s < steps; s++ {
			sim.Step()
			if (s+1)%sample == 0 {
				for t, i := range run.bb {
					cur[t] = sim.Sys.Pos[i]
				}
				tFs := float64(s+1) * sim.Dt
				rmsdSeries.Append(tFs, analysis.RMSD(ref, cur))
				tempSeries.Append(tFs, sim.Temperature())
			}
		}
		out.RMSD[run.name] = rmsdSeries
		out.Temp[run.name] = tempSeries
		for p := 0; p < len(rmsdSeries.X); p += maxI(1, len(rmsdSeries.X)/5) {
			r.AddRow(run.name, fmt.Sprintf("%d", run.sys.NumAtoms()),
				f2(rmsdSeries.X[p]), f2(rmsdSeries.Y[p]), f2(tempSeries.Y[p]))
		}
		r.AddNote("%s: RMSD plateau %.2f A (tail mean), temperature %.0f +- %.0f K (thermostat 300 K)",
			run.name, rmsdSeries.TailMean(0.3), tempSeries.Mean(), tempSeries.Std())
	}
	r.AddNote("paper: RMSD of both proteins stable over >3 ns, T stable at 300 K (Fig. 4); here at reduced scale the same boundedness holds")
	out.Report = r
	return out
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
