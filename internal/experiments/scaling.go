package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/data"
)

// Figure1 reports the benchmark system inventory (composition and size).
func Figure1(scale Scale) *Report {
	r := &Report{
		ID:     "fig1",
		Title:  "Biomolecular benchmark systems (atom counts as in the AMBER20 suite / HIV capsid)",
		Header: []string{"system", "atoms", "paper"},
	}
	paper := map[string]string{
		"DHFR": "23k", "FactorIX": "91k", "Cellulose": "409k",
		"STMV": "1M", "10STMV": "10M", "Capsid": "44M",
	}
	for _, s := range data.PaperSystems() {
		r.AddRow(s.Name, fmt.Sprintf("%d", s.Atoms), paper[s.Name])
	}
	if scale == Full {
		// Materialize scaled-down builders to verify composition plumbing.
		capsid := data.CapsidShell(20, 4, 30)
		cell := data.CelluloseChains(4, 6)
		r.AddNote("scaled-down builders: capsid shell %d atoms, cellulose fragment %d atoms (full-size systems are represented by atom-count specs for the throughput model)",
			capsid.NumAtoms(), cell.NumAtoms())
	}
	return r
}

// TableIII compares Allegro time-to-solution with the tight-binding
// reference on ~1M-atom water.
func TableIII(scale Scale) *Report {
	m := cluster.Perlmutter()
	w := cluster.Water("water", 1_119_744)
	r := &Report{
		ID:     "table3",
		Title:  "Timesteps/s on ~1M-atom water vs semi-empirical tight binding",
		Header: []string{"nodes", "TB (paper [32])", "Allegro (paper)", "Allegro (model)", "speedup(model)"},
	}
	paperAllegro := map[int]float64{16: 6.28, 32: 11.9, 64: 20.3, 1024: 104.2}
	paperTB := map[int]string{16: "0.010", 32: "0.012", 64: "0.020", 1024: "-"}
	for _, nodes := range []int{16, 32, 64, 1024} {
		tb := cluster.TightBindingStepsPerSec(1_022_208, nodes)
		al := m.StepsPerSecond(w, nodes)
		r.AddRow(fmt.Sprintf("%d", nodes), paperTB[nodes],
			f2(paperAllegro[nodes]), f2(al), fmt.Sprintf("%.0fx", al/tb))
	}
	r.AddNote("paper claims >1000x time-to-solution improvement; model reproduces the ordering and magnitude")
	return r
}

// Figure6 reproduces the strong-scaling curves for biomolecular systems and
// replicated water.
func Figure6(scale Scale) *Report {
	m := cluster.Perlmutter()
	r := &Report{
		ID:     "fig6",
		Title:  "Strong scaling, 1..1280 nodes (steps/s)",
		Header: []string{"system", "atoms", "nodes", "atoms/GPU", "steps/s"},
	}
	maxNodes := 1280
	var loads []cluster.Workload
	for _, s := range data.PaperSystems() {
		loads = append(loads, cluster.Biosystem(s.Name, s.Atoms))
	}
	for _, s := range data.WaterStrongScalingSizes() {
		loads = append(loads, cluster.Water(s.Name, s.Atoms))
	}
	for _, w := range loads {
		pts := m.StrongScaling(w, maxNodes)
		step := 1
		if scale == Quick && len(pts) > 4 {
			step = len(pts) / 4
		}
		for i := 0; i < len(pts); i += step {
			p := pts[i]
			r.AddRow(w.Name, fmt.Sprintf("%d", w.Atoms), fmt.Sprintf("%d", p.Nodes),
				fmt.Sprintf("%.0f", p.AtomsPerGPU), f2(p.StepsPerSec))
		}
	}
	// Anchor summary.
	anchors := []struct {
		name  string
		w     cluster.Workload
		nodes int
		paper float64
	}{
		{"STMV peak", cluster.Biosystem("STMV", 1_066_628), 1280, 106},
		{"10STMV peak", cluster.Biosystem("10STMV", 10_666_280), 1280, 23.0},
		{"Capsid peak", cluster.Biosystem("Capsid", 44_000_000), 1280, 8.73},
		{"water 10M peak", cluster.Water("w", 10_536_192), 1280, 36.3},
		{"water 100M peak", cluster.Water("w", 102_036_672), 1280, 4.32},
	}
	for _, a := range anchors {
		got := m.StepsPerSecond(a.w, a.nodes)
		r.AddNote("%s: paper %.2f steps/s, model %.2f (%.0f%%)", a.name, a.paper, got, 100*got/a.paper)
	}
	r.AddNote("Desmond single-GPU reference: STMV 268, 10STMV 24 steps/s (classical FF)")
	return r
}

// Figure7 reproduces the weak-scaling curves.
func Figure7(scale Scale) *Report {
	m := cluster.Perlmutter()
	r := &Report{
		ID:     "fig7",
		Title:  "Weak scaling of water, 1..1280 nodes",
		Header: []string{"atoms/node", "nodes", "steps/s", "efficiency %"},
	}
	for _, apn := range []int{25_000, 50_000, 75_000, 100_000} {
		pts := m.WeakScaling(apn, 1280)
		step := 1
		if scale == Quick && len(pts) > 4 {
			step = len(pts) / 4
		}
		for i := 0; i < len(pts); i += step {
			p := pts[i]
			r.AddRow(fmt.Sprintf("%d", apn), fmt.Sprintf("%d", p.Nodes),
				f2(p.StepsPerSec), f2(p.WeakEffPct))
		}
		last := pts[len(pts)-1]
		r.AddNote("%dk atoms/node: %.0f%% efficiency at %d nodes (paper: >70%% for the larger sizes)",
			apn/1000, last.WeakEffPct, last.Nodes)
	}
	return r
}
