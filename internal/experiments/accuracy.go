package experiments

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/atoms"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/groundtruth"
	"repro/internal/neighbor"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
	"repro/internal/units"
)

// molSpecies covers the organic benchmark molecules.
func molSpecies() []units.Species {
	return []units.Species{units.H, units.C, units.N, units.O, units.S}
}

// tinyAllegro builds a small trainable Allegro configuration.
func tinyAllegro(species []units.Species, layers int, seed uint64) *core.Model {
	cfg := core.DefaultConfig(species)
	cfg.LMax = 1
	cfg.NumLayers = layers
	cfg.NumChannels = 2
	cfg.LatentDim = 16
	cfg.TwoBodyHidden = []int{16}
	cfg.LatentHidden = []int{16}
	cfg.EdgeHidden = 8
	cfg.NumBessel = 6
	cfg.AvgNumNeighbors = 12
	m, err := core.New(cfg, nil, rand.New(rand.NewPCG(seed, 3)))
	if err != nil {
		panic(err)
	}
	return m
}

// evalForces computes force MAE/RMSE of any evaluator over frames.
func evalForces(ev core.ForceEvaluator, frames []*atoms.Frame) core.EvalMetrics {
	return core.EvaluateModel(ev, frames)
}

// TableI compares the model families on rMD17-like per-molecule force
// benchmarks and a QM9-like energy benchmark.
func TableI(scale Scale, seed uint64) *Report {
	oracle := groundtruth.New()
	rng := rand.New(rand.NewPCG(seed, 11))
	nMol := 2
	nTrain, nTest := 20, 5
	epochs := 50
	if scale == Full {
		nMol = len(data.AllNamedMolecules())
		nTrain, nTest = 30, 10
		epochs = 60
	}
	sets := data.RMD17LikeSet(oracle, nTrain, nTest, rng)
	mols := data.AllNamedMolecules()[:nMol]

	r := &Report{
		ID:     "table1",
		Title:  "Force MAE on rMD17-like per-molecule benchmarks (meV/A), averaged over molecules",
		Header: []string{"model", "F MAE (meas)", "paper MAE", "equivariant", "strictly local"},
	}
	paperRef := map[string]string{
		"classical-ff": "227.2", "gap-kernel": "22.5 (GAP)", "bp-invariant": "25.9 (ANI)",
		"schnet-mpnn": "(SchNet, see QM9)", "nequip-mpnn": "3.52 (NequIP)", "allegro": "2.81",
	}
	type family struct {
		name      string
		equivar   string
		local     string
		trainEval func(train, test []*atoms.Frame) float64
	}
	bcfg := baselines.DefaultTrainConfig()
	bcfg.Epochs = epochs
	bcfg.LR = 1e-2
	bcfg.Seed = seed
	families := []family{
		{"classical-ff", "no", "pairwise", func(train, test []*atoms.Frame) float64 {
			ff := baselines.NewClassicalFF(molSpecies(), 4.0, 14)
			if err := ff.Fit(train, 1e-6); err != nil {
				return -1
			}
			return evalForces(ff, test).ForceMAE * 1000
		}},
		{"gap-kernel", "no", "yes", func(train, test []*atoms.Frame) float64 {
			gap := baselines.NewGAPModel(baselines.DefaultACSF(molSpecies()), 4.0)
			if err := gap.Fit(train, 32, 1e-6, rand.New(rand.NewPCG(seed, 21))); err != nil {
				return -1
			}
			return evalForces(gap, test).ForceMAE * 1000
		}},
		{"bp-invariant", "no", "yes", func(train, test []*atoms.Frame) float64 {
			bp := baselines.NewBPModel(baselines.DefaultACSF(molSpecies()), []int{24, 24}, rand.New(rand.NewPCG(seed, 22)))
			bp.FitWhitening(train)
			cfg := bcfg
			cfg.LR = 3e-3 // whitened descriptor nets diverge at the shared rate
			baselines.Train(bp, train, cfg)
			return evalForces(bp, test).ForceMAE * 1000
		}},
		{"schnet-mpnn", "no", "no (MPNN)", func(train, test []*atoms.Frame) float64 {
			sn := baselines.NewSchNetModel(molSpecies(), 4.0, 2, 16, 6, rand.New(rand.NewPCG(seed, 23)))
			baselines.Train(sn, train, bcfg)
			return evalForces(sn, test).ForceMAE * 1000
		}},
		{"nequip-mpnn", "yes", "no (MPNN)", func(train, test []*atoms.Frame) float64 {
			nq := baselines.NewNequIPModel(molSpecies(), 4.0, 2, 2, 1, 6, rand.New(rand.NewPCG(seed, 24)))
			baselines.Train(nq, train, bcfg)
			return evalForces(nq, test).ForceMAE * 1000
		}},
		{"allegro", "yes", "yes", func(train, test []*atoms.Frame) float64 {
			m := tinyAllegro(molSpecies(), 2, seed)
			tc := core.DefaultTrainConfig()
			tc.Epochs = epochs
			tc.LR = 1e-2
			tc.Seed = seed
			core.NewTrainer(m, tc).Train(train)
			return evalForces(m, test).ForceMAE * 1000
		}},
	}
	for _, fam := range families {
		total, n := 0.0, 0
		for _, mol := range mols {
			set := sets[mol]
			mae := fam.trainEval(set.Train, set.Test)
			if mae >= 0 {
				total += mae
				n++
			}
		}
		avg := -1.0
		if n > 0 {
			avg = total / float64(n)
		}
		r.AddRow(fam.name, f2(avg), paperRef[fam.name], fam.equivar, fam.local)
	}
	r.AddNote("absolute values differ (synthetic oracle, reduced scale); the ordering classical >> invariant-local > message-passing/equivariant, with Allegro equivariant AND strictly local, is the reproduced claim")
	return r
}

// TableII reproduces the sample-efficiency comparison: Allegro trained on a
// small fraction of the frames a DeepMD-style invariant model gets, on
// liquid water and three ices.
func TableII(scale Scale, seed uint64) *Report {
	oracle := groundtruth.New()
	rng := rand.New(rand.NewPCG(seed, 31))
	boxN, nSmall, factor, nTest := 3, 8, 6, 3
	epochsA, epochsB := 18, 5
	if scale == Full {
		boxN, nSmall, factor, nTest = 4, 16, 10, 6
		epochsA, epochsB = 30, 10
	}
	sets := data.BuildWaterIceN(oracle, boxN, nSmall*factor, nTest, rng)
	species := []units.Species{units.H, units.O}

	// Allegro on the small set (paper: N=133 vs DeepMD N=133,500; the
	// 1:1000 ratio is reduced to 1:factor at this scale).
	allegro := tinyAllegro(species, 2, seed)
	tc := core.DefaultTrainConfig()
	tc.Epochs = epochsA
	tc.BatchSize = 2
	tc.LR = 4e-3
	tc.Seed = seed
	core.NewTrainer(allegro, tc).Train(sets.TrainPool[:nSmall])

	// DeepMD-style invariant model on the full pool.
	bp := baselines.NewBPModel(baselines.DefaultACSF(species), []int{24, 24}, rand.New(rand.NewPCG(seed, 32)))
	bp.FitWhitening(sets.TrainPool)
	bcfg := baselines.DefaultTrainConfig()
	bcfg.Epochs = epochsB
	bcfg.BatchSize = 4
	bcfg.LR = 4e-3
	bcfg.Seed = seed
	baselines.Train(bp, sets.TrainPool, bcfg)

	r := &Report{
		ID:    "table2",
		Title: "Sample efficiency: force RMSE (meV/A) on water and ices",
		Header: []string{"test set", fmt.Sprintf("Allegro (N=%d)", nSmall),
			fmt.Sprintf("DeepMD-style (N=%d)", nSmall*factor), "paper (133 vs 133,500)"},
	}
	paper := map[string]string{
		"liquid": "29.1 vs 40.4", "ice-b": "30.7 vs 43.3", "ice-c": "21.0 vs 26.8", "ice-d": "18.0 vs 25.4",
	}
	tests := []struct {
		name   string
		frames []*atoms.Frame
	}{
		{"liquid", sets.Liquid}, {"ice-b", sets.IceB}, {"ice-c", sets.IceC}, {"ice-d", sets.IceD},
	}
	for _, ts := range tests {
		ra := evalForces(allegro, ts.frames).ForceRMSE * 1000
		rb := evalForces(bp, ts.frames).ForceRMSE * 1000
		r.AddRow(ts.name, f2(ra), f2(rb), paper[ts.name])
	}
	r.AddNote("claim under test: the equivariant model with %dx fewer frames matches or beats the invariant model", factor)
	return r
}

// TableIV reproduces the mixed-precision ablation: force RMSE is unaffected
// across schemes while speed varies strongly.
func TableIV(scale Scale, seed uint64) *Report {
	oracle := groundtruth.New()
	rng := rand.New(rand.NewPCG(seed, 41))
	nTrain, nTest, epochs := 6, 3, 12
	if scale == Full {
		nTrain, nTest, epochs = 14, 6, 25
	}
	liquid := data.WaterBox(rng, 3, 3, 3)
	data.Relax(oracle, liquid, 40, 0.05)
	train := data.MDSampledFrames(oracle, liquid, nTrain, 12, 0.25, 330, rng)
	test := data.MDSampledFrames(oracle, liquid, nTest, 20, 0.25, 300, rng)

	species := []units.Species{units.H, units.O}
	base := tinyAllegro(species, 2, seed)
	tc := core.DefaultTrainConfig()
	tc.Epochs = epochs
	tc.LR = 4e-3
	tc.BatchSize = 2
	tc.Seed = seed
	core.NewTrainer(base, tc).Train(train)

	r := &Report{
		ID:     "table4",
		Title:  "Mixed precision (Final,Weights,Compute): force RMSE and relative speed",
		Header: []string{"precision", "F RMSE (meV/A)", "speed vs F64,F32,TF32", "paper speed"},
	}
	configs := []struct {
		pc    core.PrecisionConfig
		paper string
	}{
		{core.PrecisionConfig{Final: tensor.F32, Weights: tensor.F32, Compute: tensor.TF32}, "0.98"},
		{core.PrecisionConfig{Final: tensor.F32, Weights: tensor.F32, Compute: tensor.F32}, "0.37"},
		{core.PrecisionConfig{Final: tensor.F64, Weights: tensor.F32, Compute: tensor.TF32}, "1.00"},
		{core.PrecisionConfig{Final: tensor.F64, Weights: tensor.F32, Compute: tensor.F32}, "0.37"},
		{core.PrecisionConfig{Final: tensor.F64, Weights: tensor.F64, Compute: tensor.F64}, "0.26"},
	}
	for _, c := range configs {
		m := withPrecision(base, c.pc, seed)
		rm := evalForces(m, test).ForceRMSE * 1000
		r.AddRow(c.pc.String(), f2(rm), f2(perfmodel.SpeedFactor(c.pc)), c.paper)
	}
	r.AddNote("accuracy column must be flat across schemes (paper Table IV); speed from the A100 pipeline model")
	return r
}

// withPrecision clones a trained model under a different precision config.
func withPrecision(src *core.Model, pc core.PrecisionConfig, seed uint64) *core.Model {
	cfg := src.Cfg
	cfg.Precision = pc
	dst, err := core.New(cfg, nil, rand.New(rand.NewPCG(seed, 3)))
	if err != nil {
		panic(err)
	}
	for _, p := range src.Params.List() {
		copy(dst.Params.Get(p.Name).Data, p.T.Data)
	}
	dst.Params.Quantize(pc.Weights)
	dst.EnergyScale = src.EnergyScale
	copy(dst.EnergyShift, src.EnergyShift)
	for i, row := range src.Cuts.Rc {
		copy(dst.Cuts.Rc[i], row)
	}
	return dst
}

// pairCount is shared by the cutoff ablation.
func pairCount(sys *atoms.System, cuts *neighbor.CutoffTable) int {
	return neighbor.Build(sys, cuts).NumReal
}
