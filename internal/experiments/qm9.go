package experiments

import (
	"math"
	"math/rand/v2"

	"repro/internal/atoms"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/groundtruth"
	"repro/internal/tensor"
)

// TableIQM9 reproduces the left column of Table I: internal-energy (U0) MAE
// on a QM9-like set of random small organic molecules, including the paper's
// Allegro 1-layer vs deeper comparison ("Allegro, 1 layer: 5.7; 3 layers:
// 4.7"). Energy-only training makes this the cheapest learned benchmark.
func TableIQM9(scale Scale, seed uint64) *Report {
	oracle := groundtruth.New()
	rng := rand.New(rand.NewPCG(seed, 111))
	nTrain, nTest, epochs := 24, 8, 25
	if scale == Full {
		nTrain, nTest, epochs = 80, 20, 80
	}
	all := data.QM9LikeSet(oracle, nTrain+nTest, rng)
	train, test := all[:nTrain], all[nTrain:]

	energyMAE := func(ev core.ForceEvaluator) float64 {
		s := 0.0
		for _, f := range test {
			e, _ := ev.EnergyForces(f.Sys)
			s += math.Abs(e - f.Energy)
		}
		return s / float64(len(test)) * 1000 // meV
	}

	r := &Report{
		ID:     "table1-qm9",
		Title:  "U0 energy MAE on QM9-like molecules (meV per molecule)",
		Header: []string{"model", "U0 MAE (meas)", "paper MAE", "strictly local"},
	}
	// Composition baseline: least-squares per-species atomic energies. At
	// CPU-scale sample counts the U0 task is dominated by this baseline for
	// every family; reporting it makes the data-starved regime explicit
	// (the paper's QM9 models see ~100k molecules).
	r.AddRow("composition-baseline", f2(compositionBaselineMAE(train, test)), "-", "trivially")
	// Energy-only training configs (the paper's QM9 models are energy-trained).
	bcfg := baselines.DefaultTrainConfig()
	bcfg.Epochs = epochs
	bcfg.LR = 5e-3
	bcfg.ForceWeight = 0.3 // force supervision regularizes the energy fit
	bcfg.EnergyWeight = 1
	bcfg.Seed = seed

	trainAllegro := func(layers int) *core.Model {
		m := tinyAllegro(molSpecies(), layers, seed)
		tc := core.DefaultTrainConfig()
		tc.Epochs = epochs
		tc.LR = 5e-3
		tc.ForceWeight = 0.3
		tc.EnergyWeight = 1
		tc.Seed = seed
		core.NewTrainer(m, tc).Train(train)
		return m
	}

	bp := baselines.NewBPModel(baselines.DefaultACSF(molSpecies()), []int{24, 24}, rand.New(rand.NewPCG(seed, 112)))
	bp.FitWhitening(train)
	cfgBP := bcfg
	cfgBP.LR = 3e-3
	baselines.Train(bp, train, cfgBP)
	r.AddRow("bp-invariant", f2(energyMAE(bp)), "(cf. SchNet 14)", "yes")

	sn := baselines.NewSchNetModel(molSpecies(), 4.0, 2, 16, 6, rand.New(rand.NewPCG(seed, 113)))
	baselines.Train(sn, train, bcfg)
	r.AddRow("schnet-mpnn", f2(energyMAE(sn)), "14", "no (MPNN)")

	a1 := trainAllegro(1)
	r.AddRow("allegro-1-layer", f2(energyMAE(a1)), "5.7", "yes")
	a2 := trainAllegro(2)
	r.AddRow("allegro-2-layer", f2(energyMAE(a2)), "4.7 (3 layers)", "yes")

	r.AddNote("paper claim: Allegro outperforms message passing on QM9 (5.7/4.7 vs 14 meV) while being the only strictly local equivariant entry")
	r.AddNote("honest negative at this scale: with %d training molecules every family sits at the composition baseline; the family ordering resolves on the per-molecule force benchmark (table1) instead", nTrain)
	r.AddNote("test molecules: %d unseen random organics of %d-%d atoms",
		len(test), minAtoms(test), maxAtoms(test))
	return r
}

// compositionBaselineMAE fits per-species atomic energies on train by least
// squares and evaluates the energy MAE (meV) on test.
func compositionBaselineMAE(train, test []*atoms.Frame) float64 {
	idx := atoms.NewSpeciesIndex(molSpecies())
	s := idx.Len()
	a := tensor.New(len(train), s)
	b := tensor.New(len(train), 1)
	for fi, f := range train {
		for _, sp := range f.Sys.Species {
			a.Data[fi*s+idx.Index(sp)]++
		}
		b.Data[fi] = f.Energy
	}
	mu, err := tensor.LeastSquares(a, b, 1e-8)
	if err != nil {
		return -1
	}
	sum := 0.0
	for _, f := range test {
		pred := 0.0
		for _, sp := range f.Sys.Species {
			pred += mu.Data[idx.Index(sp)]
		}
		sum += math.Abs(pred - f.Energy)
	}
	return sum / float64(len(test)) * 1000
}

func minAtoms(fs []*atoms.Frame) int {
	m := fs[0].NumAtoms()
	for _, f := range fs {
		if f.NumAtoms() < m {
			m = f.NumAtoms()
		}
	}
	return m
}

func maxAtoms(fs []*atoms.Frame) int {
	m := 0
	for _, f := range fs {
		if f.NumAtoms() > m {
			m = f.NumAtoms()
		}
	}
	return m
}
