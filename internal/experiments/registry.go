package experiments

import (
	"fmt"
	"sort"
)

// Runner produces a report for one experiment.
type Runner func(scale Scale, seed uint64) *Report

// registry maps experiment IDs (table/figure numbers and ablations) to
// their harnesses.
var registry = map[string]Runner{
	"table1":           TableI,
	"table2":           TableII,
	"table3":           func(s Scale, _ uint64) *Report { return TableIII(s) },
	"table4":           TableIV,
	"fig1":             func(s Scale, _ uint64) *Report { return Figure1(s) },
	"fig3":             func(s Scale, _ uint64) *Report { return Figure3(s) },
	"fig4":             func(s Scale, seed uint64) *Report { return Figure4(s, seed).Report },
	"fig5":             func(s Scale, _ uint64) *Report { return Figure5(s) },
	"fig6":             func(s Scale, _ uint64) *Report { return Figure6(s) },
	"fig7":             func(s Scale, _ uint64) *Report { return Figure7(s) },
	"ablate-cutoffs":   AblateCutoffs,
	"ablate-locality":  AblateLocality,
	"ablate-receptive": func(s Scale, _ uint64) *Report { return AblateReceptiveField(s) },
	"active-learning":  ActiveLearning,
	"table1-qm9":       TableIQM9,
}

// All returns the sorted experiment IDs.
func All() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by ID.
func Run(id string, scale Scale, seed uint64) (*Report, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, All())
	}
	return r(scale, seed), nil
}
