package experiments

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/atoms"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/groundtruth"
	"repro/internal/units"
)

// ActiveLearning demonstrates the uncertainty-driven training-set
// construction the paper projects ("use it to perform active learning for
// automatic construction of training sets", Sec. VIII): starting from a
// small seed set, each round either (a) selects the candidate frames whose
// GMM latent uncertainty is highest, or (b) selects randomly; new frames
// are labeled by the oracle and the model is retrained. The report compares
// the two selection policies' test-error trajectories.
func ActiveLearning(scale Scale, seed uint64) *Report {
	oracle := groundtruth.New()
	rng := rand.New(rand.NewPCG(seed, 91))
	nSeed, nPool, nTest, rounds, perRound := 3, 12, 3, 2, 3
	epochs := 8
	if scale == Full {
		nSeed, nPool, nTest, rounds, perRound = 4, 24, 6, 3, 4
		epochs = 14
	}
	species := []units.Species{units.H, units.O}
	box := data.WaterBox(rng, 3, 3, 3)
	data.Relax(oracle, box, 40, 0.05)
	// Candidate pool mixes in-distribution frames with hotter (harder) ones
	// that an uncertainty signal should prioritize.
	pool := data.MDSampledFrames(oracle, box, nPool/2, 10, 0.25, 320, rng)
	pool = append(pool, data.MDSampledFrames(oracle, box, nPool-nPool/2, 10, 0.25, 450, rng)...)
	seedFrames := data.MDSampledFrames(oracle, box, nSeed, 10, 0.25, 320, rng)
	test := data.MDSampledFrames(oracle, box, nTest, 15, 0.25, 360, rng)

	train := func(frames []*atoms.Frame, s uint64) *core.Model {
		m := tinyAllegro(species, 2, s)
		tc := core.DefaultTrainConfig()
		tc.Epochs = epochs
		tc.BatchSize = 2
		tc.LR = 4e-3
		tc.Seed = s
		core.NewTrainer(m, tc).Train(frames)
		return m
	}

	r := &Report{
		ID:     "active-learning",
		Title:  "Uncertainty-driven active learning vs random selection (Sec. VIII extension)",
		Header: []string{"round", "frames", "active F-RMSE (meV/A)", "random F-RMSE (meV/A)"},
	}
	runPolicy := func(active bool) []float64 {
		cur := append([]*atoms.Frame(nil), seedFrames...)
		remaining := append([]*atoms.Frame(nil), pool...)
		policyRng := rand.New(rand.NewPCG(seed, 92))
		var errs []float64
		for round := 0; round <= rounds; round++ {
			m := train(cur, seed+uint64(round))
			errs = append(errs, evalForces(m, test).ForceRMSE*1000)
			if round == rounds {
				break
			}
			if active {
				u := core.FitUncertainty(m, cur, 4, seed)
				// Rank remaining candidates by structure uncertainty.
				type scored struct {
					i int
					s float64
				}
				var sc []scored
				for i, f := range remaining {
					sc = append(sc, scored{i, u.StructureUncertainty(f.Sys)})
				}
				for a := 0; a < len(sc); a++ {
					for b := a + 1; b < len(sc); b++ {
						if sc[b].s > sc[a].s {
							sc[a], sc[b] = sc[b], sc[a]
						}
					}
				}
				take := perRound
				if take > len(sc) {
					take = len(sc)
				}
				picked := map[int]bool{}
				for _, s := range sc[:take] {
					cur = append(cur, remaining[s.i])
					picked[s.i] = true
				}
				var rest []*atoms.Frame
				for i, f := range remaining {
					if !picked[i] {
						rest = append(rest, f)
					}
				}
				remaining = rest
			} else {
				for t := 0; t < perRound && len(remaining) > 0; t++ {
					i := policyRng.IntN(len(remaining))
					cur = append(cur, remaining[i])
					remaining = append(remaining[:i], remaining[i+1:]...)
				}
			}
		}
		return errs
	}
	activeErrs := runPolicy(true)
	randomErrs := runPolicy(false)
	for round := range activeErrs {
		r.AddRow(fmt.Sprintf("%d", round), fmt.Sprintf("%d", nSeed+round*perRound),
			f2(activeErrs[round]), f2(randomErrs[round]))
	}
	r.AddNote("both policies must improve with data; uncertainty-driven selection prioritizes the hot (450 K) candidates")
	return r
}
