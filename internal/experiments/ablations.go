package experiments

import (
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"
	"time"

	"repro/internal/atoms"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/domain"
	"repro/internal/groundtruth"
	"repro/internal/neighbor"
	"repro/internal/units"
)

// AblateCutoffs quantifies the per-ordered-species-pair cutoff optimization
// (Sec. V-B4): pair count reduction in water and the accuracy cost.
func AblateCutoffs(scale Scale, seed uint64) *Report {
	oracle := groundtruth.New()
	rng := rand.New(rand.NewPCG(seed, 61))
	liquid := data.WaterCell(rng)
	data.Relax(oracle, liquid, 40, 0.05)

	idx := atoms.NewSpeciesIndex([]units.Species{units.H, units.O})
	full := neighbor.NewCutoffTable(idx, 4.0)
	reduced := neighbor.PaperBioCutoffs(idx)
	nFull := pairCount(liquid, full)
	nRed := pairCount(liquid, reduced)

	r := &Report{
		ID:     "ablate-cutoffs",
		Title:  "Per-ordered-species-pair cutoffs: pair reduction and accuracy cost",
		Header: []string{"quantity", "full 4.0 A", "reduced (paper table)", "ratio/delta"},
	}
	r.AddRow("ordered pairs (192-atom water)", fmt.Sprintf("%d", nFull), fmt.Sprintf("%d", nRed),
		fmt.Sprintf("%.2fx fewer", float64(nFull)/float64(nRed)))

	nTrain, nTest, epochs := 6, 3, 14
	if scale == Full {
		nTrain, nTest, epochs = 12, 6, 25
	}
	// The pair-count row above uses the paper's 192-atom cell; accuracy
	// training runs on smaller 81-atom boxes to stay CPU-tractable.
	small := data.WaterBox(rng, 3, 3, 3)
	data.Relax(oracle, small, 40, 0.05)
	train := data.MDSampledFrames(oracle, small, nTrain, 10, 0.25, 330, rng)
	test := data.MDSampledFrames(oracle, small, nTest, 15, 0.25, 300, rng)
	rmse := func(cuts *neighbor.CutoffTable) float64 {
		cfg := tinyAllegro([]units.Species{units.H, units.O}, 2, seed).Cfg
		m, err := core.New(cfg, cuts, rand.New(rand.NewPCG(seed, 62)))
		if err != nil {
			panic(err)
		}
		tc := core.DefaultTrainConfig()
		tc.Epochs = epochs
		tc.BatchSize = 2
		tc.LR = 4e-3
		tc.Seed = seed
		core.NewTrainer(m, tc).Train(train)
		return evalForces(m, test).ForceRMSE * 1000
	}
	rFull := rmse(neighbor.NewCutoffTable(idx, 4.0))
	rRed := rmse(neighbor.PaperBioCutoffs(idx))
	r.AddRow("force RMSE (meV/A)", f2(rFull), f2(rRed), f2(rRed-rFull))
	r.AddNote("paper: ~3x fewer ordered pairs at <2 meV/A validation cost; Allegro cost is linear in pair count")
	return r
}

// AblateLocality demonstrates that domain-decomposed evaluation is exact
// (strict locality) and actually parallelizes on this machine's cores.
func AblateLocality(scale Scale, seed uint64) *Report {
	rng := rand.New(rand.NewPCG(seed, 71))
	n := 3
	if scale == Full {
		n = 4
	}
	sys := data.WaterBox(rng, n, n, n)
	cfg := core.DefaultConfig([]units.Species{units.H, units.O})
	cfg.LMax = 1
	cfg.NumLayers = 2
	cfg.NumChannels = 2
	cfg.LatentDim = 8
	cfg.TwoBodyHidden = []int{8}
	cfg.LatentHidden = []int{8}
	cfg.EdgeHidden = 4
	cfg.NumBessel = 4
	cfg.DefaultCutoff = 3.0
	cfg.AvgNumNeighbors = 10
	m, err := core.New(cfg, nil, rand.New(rand.NewPCG(seed, 72)))
	if err != nil {
		panic(err)
	}

	t0 := time.Now()
	eSerial, fSerial := m.EnergyForces(sys)
	serialTime := time.Since(t0)

	opts := domain.Options{Grid: [3]int{2, 1, 1}, Halo: 3.0}
	t1 := time.Now()
	ePar, fPar, st, err := domain.Evaluate(sys, m, opts)
	parTime := time.Since(t1)
	if err != nil {
		panic(err)
	}
	maxDiff := math.Abs(ePar - eSerial)
	var maxF float64
	for i := range fSerial {
		for k := 0; k < 3; k++ {
			if d := math.Abs(fPar[i][k] - fSerial[i][k]); d > maxF {
				maxF = d
			}
		}
	}
	r := &Report{
		ID:     "ablate-locality",
		Title:  "Strict locality: decomposed evaluation vs serial (goroutine ranks on this machine)",
		Header: []string{"quantity", "value"},
	}
	r.AddRow("atoms", fmt.Sprintf("%d", sys.NumAtoms()))
	r.AddRow("ranks", fmt.Sprintf("%d (GOMAXPROCS=%d)", opts.NumRanks(), runtime.GOMAXPROCS(0)))
	r.AddRow("|dE| serial vs decomposed", fmt.Sprintf("%.3g eV", maxDiff))
	r.AddRow("max |dF| serial vs decomposed", fmt.Sprintf("%.3g eV/A", maxF))
	r.AddRow("serial wall time", fmt.Sprintf("%.1f ms", serialTime.Seconds()*1e3))
	r.AddRow("decomposed wall time", fmt.Sprintf("%.1f ms", parTime.Seconds()*1e3))
	r.AddRow("ghost imports (max/rank)", fmt.Sprintf("%d", st.MaxGhosts))
	r.AddNote("exactness (dE, dF ~ 0 up to float64 roundoff) is the property that lets LAMMPS scale Allegro; an MPNN requires L x cutoff halos instead")
	return r
}

// AblateReceptiveField quantifies the MPNN-vs-Allegro ghost cost the paper
// motivates with its bulk-water example (96 atoms at 6 A vs 20,834 at 36 A).
func AblateReceptiveField(scale Scale) *Report {
	r := &Report{
		ID:     "ablate-receptive",
		Title:  "Receptive field and ghost cost: strictly local vs message passing",
		Header: []string{"model", "layers", "halo (A)", "receptive atoms", "ghost/owned volume (20 A subdomain)"},
	}
	const rho = 0.1 // atoms/A^3, condensed matter
	cutoff := 6.0
	for _, layers := range []int{1, 2, 4, 6} {
		haloMPNN := domain.RequiredHalo(cutoff, layers)
		r.AddRow(fmt.Sprintf("MPNN-%dL", layers), fmt.Sprintf("%d", layers),
			f2(haloMPNN), fmt.Sprintf("%.0f", domain.ReceptiveAtoms(haloMPNN, rho)),
			f2(domain.HaloVolumeFraction(20, haloMPNN)))
	}
	r.AddRow("Allegro (any depth)", "-", f2(cutoff),
		fmt.Sprintf("%.0f", domain.ReceptiveAtoms(cutoff, rho)),
		f2(domain.HaloVolumeFraction(20, cutoff)))
	r.AddNote("paper: at 6 A cutoff each atom has ~96 neighbors; a 6-layer MPNN reaches 36 A and 20,834 atoms — Allegro's halo stays one cutoff regardless of depth")
	return r
}
