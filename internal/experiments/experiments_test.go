package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func mustFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		t.Fatalf("cannot parse %q as float", s)
	}
	return v
}

func TestReportPrinting(t *testing.T) {
	r := &Report{ID: "x", Title: "t", Header: []string{"a", "b"}}
	r.AddRow("1", "2")
	r.AddNote("hello %d", 7)
	var buf bytes.Buffer
	r.Print(&buf)
	out := buf.String()
	for _, want := range []string{"== x: t ==", "a", "hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("printed report missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryCoversAllExperiments(t *testing.T) {
	ids := All()
	// Every table and figure with data in the paper must be present.
	for _, want := range []string{"table1", "table2", "table3", "table4",
		"fig1", "fig3", "fig4", "fig5", "fig6", "fig7"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("registry missing %s", want)
		}
	}
	if _, err := Run("nope", Quick, 1); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestFigure1SystemSizes(t *testing.T) {
	r := Figure1(Quick)
	if len(r.Rows) != 6 {
		t.Fatalf("fig1 rows = %d", len(r.Rows))
	}
	if r.Rows[0][0] != "DHFR" || r.Rows[0][1] != "23558" {
		t.Fatalf("fig1 first row %v", r.Rows[0])
	}
}

func TestTableIIIShape(t *testing.T) {
	r := TableIII(Quick)
	if len(r.Rows) != 4 {
		t.Fatalf("table3 rows = %d", len(r.Rows))
	}
	// Speedup over tight binding must exceed 300x everywhere it's defined.
	for _, row := range r.Rows[:3] {
		sp := mustFloat(t, row[4])
		if sp < 300 {
			t.Fatalf("TB speedup %v too small in row %v", sp, row)
		}
	}
}

func TestFigure6Anchors(t *testing.T) {
	r := Figure6(Quick)
	if len(r.Rows) == 0 || len(r.Notes) < 5 {
		t.Fatal("fig6 missing rows or anchor notes")
	}
	// All anchor notes should report within [65%, 135%] of paper.
	for _, n := range r.Notes[:5] {
		i := strings.LastIndex(n, "(")
		pct := strings.TrimSuffix(n[i+1:], "%)")
		v := mustFloat(t, pct)
		if v < 65 || v > 135 {
			t.Fatalf("anchor out of band: %s", n)
		}
	}
}

func TestFigure7Efficiencies(t *testing.T) {
	r := Figure7(Quick)
	if len(r.Rows) == 0 {
		t.Fatal("fig7 empty")
	}
	// Efficiency column within (0, 100]; the 100k/node sweep >= 70% at end.
	for _, row := range r.Rows {
		eff := mustFloat(t, row[3])
		if eff <= 0 || eff > 100.01 {
			t.Fatalf("bad efficiency %v in %v", eff, row)
		}
	}
}

func TestFigure3FusedFaster(t *testing.T) {
	r := Figure3(Quick)
	if len(r.Rows) != 3 {
		t.Fatalf("fig3 rows = %d", len(r.Rows))
	}
	// At lmax=3 (most paths) the fused kernel must win clearly even on a
	// noisy machine.
	last := r.Rows[len(r.Rows)-1]
	sp := mustFloat(t, last[5])
	if sp < 1.0 {
		t.Fatalf("fused tensor product slower than separated at lmax=3: %v", last)
	}
}

func TestFigure5PaddingStabilizesFaster(t *testing.T) {
	r := Figure5(Quick)
	if len(r.Rows) == 0 || len(r.Notes) == 0 {
		t.Fatal("fig5 empty")
	}
	if !strings.Contains(r.Notes[0], "stabilization") {
		t.Fatalf("fig5 note missing: %v", r.Notes)
	}
}

func TestAblateReceptiveFieldTable(t *testing.T) {
	r := AblateReceptiveField(Quick)
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// 6-layer MPNN receptive atoms ~ 216x Allegro's.
	mpnn6 := mustFloat(t, r.Rows[3][3])
	allegro := mustFloat(t, r.Rows[4][3])
	if mpnn6/allegro < 150 || mpnn6/allegro > 300 {
		t.Fatalf("receptive growth %v implausible", mpnn6/allegro)
	}
}

func TestTableIIQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	r := TableII(Quick, 3)
	if len(r.Rows) != 4 {
		t.Fatalf("table2 rows = %d", len(r.Rows))
	}
	// Sample efficiency: Allegro with far fewer frames must stay within 2x
	// of (and typically beat) the invariant model on every test set.
	for _, row := range r.Rows {
		al := mustFloat(t, row[1])
		bp := mustFloat(t, row[2])
		if al > 2*bp {
			t.Fatalf("sample efficiency inverted on %s: allegro %v vs deepmd-style %v", row[0], al, bp)
		}
	}
}

func TestTableIVQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	r := TableIV(Quick, 4)
	if len(r.Rows) != 5 {
		t.Fatalf("table4 rows = %d", len(r.Rows))
	}
	// Accuracy flat across precision schemes: max/min RMSE within 5%.
	lo, hi := 1e18, 0.0
	for _, row := range r.Rows {
		v := mustFloat(t, row[1])
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi/lo > 1.05 {
		t.Fatalf("mixed precision changed accuracy: RMSE range [%v, %v]", lo, hi)
	}
	// Speed column: TF32 rows fastest, F64 slowest.
	tf32 := mustFloat(t, r.Rows[2][2])
	f32 := mustFloat(t, r.Rows[3][2])
	f64 := mustFloat(t, r.Rows[4][2])
	if !(tf32 > f32 && f32 > f64) {
		t.Fatalf("speed ordering broken: %v %v %v", tf32, f32, f64)
	}
}

func TestAblateLocalityExact(t *testing.T) {
	if testing.Short() {
		t.Skip("evaluation experiment")
	}
	r := AblateLocality(Quick, 5)
	// The force mismatch row must be ~0.
	for _, row := range r.Rows {
		if strings.HasPrefix(row[0], "max |dF|") {
			v := mustFloat(t, strings.Fields(row[1])[0])
			if v > 1e-7 {
				t.Fatalf("decomposed forces differ: %v", row)
			}
		}
	}
}

func TestTableIQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	r := TableI(Quick, 7)
	if len(r.Rows) != 6 {
		t.Fatalf("table1 rows = %d", len(r.Rows))
	}
	vals := map[string]float64{}
	for _, row := range r.Rows {
		vals[row[0]] = mustFloat(t, row[1])
	}
	for name, v := range vals {
		if v < 0 {
			t.Fatalf("%s failed to fit", name)
		}
	}
	// The reproduced ordering: the deep models must clearly beat the
	// best-case pairwise classical FF; the shallow-descriptor families must
	// not be worse than it.
	classical := vals["classical-ff"]
	for _, name := range []string{"schnet-mpnn", "nequip-mpnn", "allegro"} {
		if vals[name] >= 0.9*classical {
			t.Fatalf("%s (%.1f meV/A) should clearly beat classical pairwise (%.1f)", name, vals[name], classical)
		}
	}
	for _, name := range []string{"gap-kernel", "bp-invariant"} {
		if vals[name] > 1.15*classical {
			t.Fatalf("%s (%.1f meV/A) should not be worse than classical (%.1f)", name, vals[name], classical)
		}
	}
	// Allegro must sit in the leading tier: no worse than 1.3x the best
	// family at this micro training budget.
	best := 1e18
	for _, v := range vals {
		if v < best {
			best = v
		}
	}
	if vals["allegro"] > 1.3*best {
		t.Fatalf("allegro (%.1f) far from leading tier (best %.1f)", vals["allegro"], best)
	}
}

func TestFigure4Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("training + MD experiment")
	}
	res := Figure4(Quick, 9)
	if len(res.RMSD) != 2 || len(res.Temp) != 2 {
		t.Fatalf("fig4 must track two systems")
	}
	for name, rmsd := range res.RMSD {
		plateau := rmsd.TailMean(0.3)
		if plateau <= 0 {
			t.Fatalf("%s: RMSD identically zero — dynamics did not run", name)
		}
		// Bounded: the backbone must not fly apart under the learned
		// potential (paper Fig. 4: stable over the full trajectory).
		if plateau > 5.0 {
			t.Fatalf("%s: RMSD plateau %.2f A — structure disintegrated", name, plateau)
		}
		last := rmsd.Y[len(rmsd.Y)-1]
		if last > 2.5*plateau+1 {
			t.Fatalf("%s: RMSD still diverging at end (%.2f vs plateau %.2f)", name, last, plateau)
		}
	}
	for name, temp := range res.Temp {
		m := temp.TailMean(0.5)
		if m < 180 || m > 450 {
			t.Fatalf("%s: temperature %.0f K far from thermostat setting 300 K", name, m)
		}
	}
}

func TestActiveLearningQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	r := ActiveLearning(Quick, 11)
	if len(r.Rows) < 3 {
		t.Fatalf("active-learning rows = %d", len(r.Rows))
	}
	firstA := mustFloat(t, r.Rows[0][2])
	lastA := mustFloat(t, r.Rows[len(r.Rows)-1][2])
	firstR := mustFloat(t, r.Rows[0][3])
	lastR := mustFloat(t, r.Rows[len(r.Rows)-1][3])
	if lastA >= firstA {
		t.Fatalf("active policy did not improve: %v -> %v", firstA, lastA)
	}
	if lastR >= firstR {
		t.Fatalf("random policy did not improve: %v -> %v", firstR, lastR)
	}
}
