package experiments

import (
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/o3"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

// Figure3 measures the strided fused tensor-product contraction against the
// per-path "separated" implementation — a real micro-benchmark of the
// paper's key kernel optimization (Sec. V-B1/2), run on this machine.
func Figure3(scale Scale) *Report {
	r := &Report{
		ID:     "fig3",
		Title:  "Strided fused tensor product vs per-path separated contraction (measured)",
		Header: []string{"lmax", "paths", "entries", "separated", "fused", "speedup"},
	}
	pairs := 64
	iters := 3
	if scale == Full {
		pairs = 256
		iters = 10
	}
	rng := rand.New(rand.NewPCG(1, 2))
	for lmax := 1; lmax <= 3; lmax++ {
		tp := o3.NewTensorProduct(o3.FullIrreps(lmax), o3.SphericalIrreps(lmax), o3.FullIrreps(lmax))
		u := 4
		x := tensor.New(pairs, u, tp.In1.Width)
		y := tensor.New(pairs, u, tp.In2.Width)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		for i := range y.Data {
			y.Data[i] = rng.NormFloat64()
		}
		weights := make([]float64, tp.NumPaths())
		for i := range weights {
			weights[i] = 1
		}
		entries := 0
		for _, p := range tp.Paths {
			entries += len(p.Entries)
		}
		sep := timeIt(iters, func() { tp.ApplySeparated(x, y, weights, tensor.F64) })
		tp.Fuse(weights)
		fus := timeIt(iters, func() { tp.ApplyFused(x, y, nil, tensor.F64) })
		tp.Unfuse()
		r.AddRow(fmt.Sprintf("%d", lmax), fmt.Sprintf("%d", tp.NumPaths()),
			fmt.Sprintf("%d", entries),
			fmt.Sprintf("%.3fms", sep*1e3), fmt.Sprintf("%.3fms", fus*1e3),
			fmt.Sprintf("%.1fx", sep/fus))
	}
	r.AddNote("the fused kernel eliminates per-path extraction/scatter overhead; the gap widens with lmax as path count grows")
	return r
}

func timeIt(iters int, fn func()) float64 {
	fn() // warmup
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	return time.Since(start).Seconds() / float64(iters)
}

// Figure5 reproduces the padding experiment with the allocator model.
func Figure5(scale Scale) *Report {
	steps := 400
	if scale == Full {
		steps = 1000
	}
	unpadded := perfmodel.NewAllocatorSim(1.0, 1).Series(steps)
	padded := perfmodel.NewAllocatorSim(1.05, 1).Series(steps)
	r := &Report{
		ID:     "fig5",
		Title:  "Effect of 5% input padding on steps/s vs step (allocator model)",
		Header: []string{"step", "without padding", "with padding"},
	}
	for i := 0; i < steps; i += steps / 10 {
		r.AddRow(fmt.Sprintf("%d", i), f2(unpadded[i]), f2(padded[i]))
	}
	r.AddRow(fmt.Sprintf("%d", steps-1), f2(unpadded[steps-1]), f2(padded[steps-1]))
	sU := perfmodel.StabilizationStep(unpadded, 0.10)
	sP := perfmodel.StabilizationStep(padded, 0.10)
	r.AddNote("stabilization step: unpadded %d, padded %d (paper: padding stabilizes performance 'much faster')", sU, sP)
	return r
}
