// Package experiments implements one reproduction harness per table and
// figure of the paper's evaluation, each returning a structured Report with
// measured values next to the paper's published numbers. The per-experiment
// index lives in DESIGN.md; EXPERIMENTS.md records outcomes.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Scale selects the experiment size: Quick runs in seconds-to-a-minute for
// tests and benchmarks; Full is the cmd/allegro-bench default.
type Scale int

// Experiment scales.
const (
	Quick Scale = iota
	Full
)

// Report is the structured outcome of one experiment.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// AddNote appends a free-form note line.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Print renders the report as an aligned text table.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	if len(r.Header) > 0 {
		line(r.Header)
		total := 0
		for _, wd := range widths {
			total += wd + 2
		}
		fmt.Fprintln(w, "  "+strings.Repeat("-", total))
	}
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// f formats a float compactly.
func f(v float64) string { return fmt.Sprintf("%.3g", v) }

// f2 formats with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
