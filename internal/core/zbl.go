package core

import (
	"math"

	"repro/internal/atoms"
	"repro/internal/neighbor"
	"repro/internal/units"
)

// ZBL universal screening function coefficients.
var zblC = [4]float64{0.18175, 0.50986, 0.28022, 0.02817}
var zblD = [4]float64{-3.19980, -0.94229, -0.40290, -0.20162}

// zblSwitchOn/Off bound the smooth fade-out of the ZBL term; it acts only at
// very short range, where the learned potential has no training data.
const (
	zblSwitchOn  = 0.6
	zblSwitchOff = 1.4
)

// addZBL accumulates the repulsive Ziegler-Biersack-Littmark pair energy and
// forces (Sec. VI-D adds this term to stabilize the potential against
// unphysically close approaches). Returns the total ZBL energy.
func addZBL(sys *atoms.System, pairs *neighbor.Pairs, forces [][3]float64) float64 {
	total := 0.0
	for z := 0; z < pairs.NumReal; z++ {
		i, j := pairs.I[z], pairs.J[z]
		r := pairs.Dist[z]
		if r >= zblSwitchOff {
			continue
		}
		zi := float64(sys.Species[i])
		zj := float64(sys.Species[j])
		a := 0.46850 / (math.Pow(zi, 0.23) + math.Pow(zj, 0.23))
		x := r / a
		var phi, dphi float64
		for t := 0; t < 4; t++ {
			e := zblC[t] * math.Exp(zblD[t]*x)
			phi += e
			dphi += zblD[t] * e
		}
		dphi /= a
		pref := units.CoulombConst * zi * zj
		e := pref / r * phi
		de := -pref/(r*r)*phi + pref/r*dphi
		// Smooth switch to zero before the learned region takes over.
		s, ds := switchDown(r)
		eSw := e * s
		deSw := de*s + e*ds
		// Ordered pairs visit each geometric pair twice: half weights.
		total += 0.5 * eSw
		fr := 0.5 * deSw / r
		v := pairs.Vec[z]
		for k := 0; k < 3; k++ {
			// Gradient dE/dr_j = fr*v, dE/dr_i = -fr*v; force is negative.
			forces[j][k] -= fr * v[k]
			forces[i][k] += fr * v[k]
		}
	}
	return total
}

// switchDown is 1 below zblSwitchOn and 0 above zblSwitchOff (C1 cubic).
func switchDown(r float64) (float64, float64) {
	if r <= zblSwitchOn {
		return 1, 0
	}
	if r >= zblSwitchOff {
		return 0, 0
	}
	t := (r - zblSwitchOn) / (zblSwitchOff - zblSwitchOn)
	v := 1 - t*t*(3-2*t)
	dv := -6 * t * (1 - t) / (zblSwitchOff - zblSwitchOn)
	return v, dv
}
