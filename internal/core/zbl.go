package core

import (
	"math"

	"repro/internal/atoms"
	"repro/internal/neighbor"
	"repro/internal/units"
)

// ZBL universal screening function coefficients.
var zblC = [4]float64{0.18175, 0.50986, 0.28022, 0.02817}
var zblD = [4]float64{-3.19980, -0.94229, -0.40290, -0.20162}

// zblSwitchOn/Off bound the smooth fade-out of the ZBL term; it acts only at
// very short range, where the learned potential has no training data.
const (
	zblSwitchOn  = 0.6
	zblSwitchOff = 1.4
)

// zblPair evaluates one ordered pair's ZBL contribution: half the switched
// pair energy and the radial force factor fr such that the force row is
// fr*Vec (added to the center, subtracted from the neighbor).
func zblPair(zi, zj, r float64) (eHalf, fr float64) {
	a := 0.46850 / (math.Pow(zi, 0.23) + math.Pow(zj, 0.23))
	x := r / a
	var phi, dphi float64
	for t := 0; t < 4; t++ {
		e := zblC[t] * math.Exp(zblD[t]*x)
		phi += e
		dphi += zblD[t] * e
	}
	dphi /= a
	pref := units.CoulombConst * zi * zj
	e := pref / r * phi
	de := -pref/(r*r)*phi + pref/r*dphi
	// Smooth switch to zero before the learned region takes over.
	s, ds := switchDown(r)
	eSw := e * s
	deSw := de*s + e*ds
	// Ordered pairs visit each geometric pair twice: half weights.
	return 0.5 * eSw, 0.5 * deSw / r
}

// zblActive gates the ZBL term to genuine in-cutoff close approaches. Pairs
// at or beyond their ordered cutoff — Verlet-skin shell entries and the
// fake padding pairs, both of which carry Dist >= Cut — must contribute
// exactly zero so that skin reuse and padding leave energies and forces
// bit-identical to an exact-cutoff rebuild.
func zblActive(pairs *neighbor.Pairs, z int) bool {
	return pairs.Dist[z] < zblSwitchOff && pairs.Dist[z] < pairs.Cut[z]
}

// addZBL accumulates the repulsive Ziegler-Biersack-Littmark pair energy and
// forces (Sec. VI-D adds this term to stabilize the potential against
// unphysically close approaches). Returns the total ZBL energy.
func addZBL(sys *atoms.System, pairs *neighbor.Pairs, forces [][3]float64) float64 {
	total := 0.0
	for z := 0; z < pairs.NumReal; z++ {
		if !zblActive(pairs, z) {
			continue
		}
		i, j := pairs.I[z], pairs.J[z]
		eHalf, fr := zblPair(float64(sys.Species[i]), float64(sys.Species[j]), pairs.Dist[z])
		total += eHalf
		v := pairs.Vec[z]
		for k := 0; k < 3; k++ {
			// Gradient dE/dr_j = fr*v, dE/dr_i = -fr*v; force is negative.
			forces[j][k] -= fr * v[k]
			forces[i][k] += fr * v[k]
		}
	}
	return total
}

// addZBLRows adds each pair's ZBL share to the raw per-pair outputs of a
// row-level evaluation: pairE[z] gains the half pair energy and rows[z] the
// force row (+row on the center, -row on the neighbor).
func addZBLRows(sys *atoms.System, pairs *neighbor.Pairs, rows [][3]float64, pairE []float64) {
	for z := 0; z < pairs.NumReal; z++ {
		if !zblActive(pairs, z) {
			continue
		}
		i, j := pairs.I[z], pairs.J[z]
		eHalf, fr := zblPair(float64(sys.Species[i]), float64(sys.Species[j]), pairs.Dist[z])
		pairE[z] += eHalf
		v := pairs.Vec[z]
		for k := 0; k < 3; k++ {
			rows[z][k] += fr * v[k]
		}
	}
}

// switchDown is 1 below zblSwitchOn and 0 above zblSwitchOff (C1 cubic).
func switchDown(r float64) (float64, float64) {
	if r <= zblSwitchOn {
		return 1, 0
	}
	if r >= zblSwitchOff {
		return 0, 0
	}
	t := (r - zblSwitchOn) / (zblSwitchOff - zblSwitchOn)
	v := 1 - t*t*(3-2*t)
	dv := -6 * t * (1 - t) / (zblSwitchOff - zblSwitchOn)
	return v, dv
}
