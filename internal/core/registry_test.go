package core

import (
	"testing"

	"repro/internal/atoms"
	"repro/internal/units"
)

// TestPlanRegistryLeaseCycle exercises the acquire/release contract: a
// released program is handed back on the next acquisition of its shape, a
// stale release (version bumped while leased) is dropped, and Invalidate
// empties the pool.
func TestPlanRegistryLeaseCycle(t *testing.T) {
	m := newTinyModel(t, 3)
	r := NewPlanRegistry(m)
	key := planKey{z: 64, n: 16}

	pg := r.acquire(m, key.z, key.n)
	if pg == nil {
		t.Fatal("acquire returned nil program")
	}
	st := r.Stats()
	if st.Misses != 1 || st.Compiles != 1 || st.Leased != 1 {
		t.Fatalf("after first acquire: %+v", st)
	}

	r.release(m, m.Params.Version(), m.Cfg.Precision, key, pg)
	if st = r.Stats(); st.Pooled != 1 || st.Leased != 0 {
		t.Fatalf("after release: %+v", st)
	}

	pg2 := r.acquire(m, key.z, key.n)
	if pg2 != pg {
		t.Fatal("second acquire did not reuse the pooled program")
	}
	if st = r.Stats(); st.Hits != 1 {
		t.Fatalf("expected a pool hit: %+v", st)
	}

	// A version bump while the program is leased: the release must drop it,
	// never pool it for a later acquirer.
	m.Params.Bump()
	r.release(m, m.Params.Version()-1, m.Cfg.Precision, key, pg2)
	if st = r.Stats(); st.Pooled != 0 || st.Evictions == 0 {
		t.Fatalf("stale release must evict: %+v", st)
	}

	pg3 := r.acquire(m, key.z, key.n)
	r.release(m, m.Params.Version(), m.Cfg.Precision, key, pg3)
	if st = r.Stats(); st.Pooled != 1 {
		t.Fatalf("fresh-version release should pool: %+v", st)
	}
	r.Invalidate()
	if st = r.Stats(); st.Pooled != 0 {
		t.Fatalf("Invalidate must empty the pool: %+v", st)
	}
}

// TestScratchSharedRegistryBitIdentical binds two scratches to one registry
// and checks (a) the second context replays the program the first compiled
// (a registry hit) and (b) shared-plan evaluation is bit-identical to a
// private scratch.
func TestScratchSharedRegistryBitIdentical(t *testing.T) {
	m := newTinyModel(t, 3)
	sys := waterDimer()

	private := NewEvalScratch()
	private.Workers = 1
	defer private.Close()
	want := m.EvaluateInto(private, sys)
	wantE := want.Energy
	wantF := append([][3]float64(nil), want.Forces...)

	r := NewPlanRegistry(m)
	a, b := NewEvalScratch(), NewEvalScratch()
	a.Workers, b.Workers = 1, 1
	a.UsePlanRegistry(r)
	b.UsePlanRegistry(r)
	defer a.Close()
	defer b.Close()

	ra := m.EvaluateInto(a, sys)
	if ra.Energy != wantE {
		t.Fatalf("shared-registry energy %v != private %v", ra.Energy, wantE)
	}
	a.ReleasePlans()

	rb := m.EvaluateInto(b, sys)
	if rb.Energy != wantE {
		t.Fatalf("second context energy %v != private %v", rb.Energy, wantE)
	}
	for i := range wantF {
		if rb.Forces[i] != wantF[i] {
			t.Fatalf("force %d: shared %v != private %v", i, rb.Forces[i], wantF[i])
		}
	}
	b.ReleasePlans()

	if st := r.Stats(); st.Hits == 0 {
		t.Fatalf("second context should lease the first context's program: %+v", st)
	}
}

// waterDimer builds a small non-periodic system for registry tests.
func waterDimer() *atoms.System {
	sys := atoms.NewSystem(6)
	sys.Species = []units.Species{units.O, units.H, units.H, units.O, units.H, units.H}
	sys.Pos = [][3]float64{
		{0, 0, 0}, {0.96, 0, 0}, {-0.24, 0.93, 0},
		{2.9, 0.1, 0.2}, {3.6, 0.6, -0.3}, {2.4, 0.8, 0.8},
	}
	return sys
}
