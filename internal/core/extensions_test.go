package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/atoms"
	"repro/internal/units"
)

// --- Wolf-summation long-range electrostatics (Sec. VI-A extension) ---

func TestWolfNeutralityTerm(t *testing.T) {
	// A single isolated charge has only the (negative) self term.
	lr := &LongRange{Charges: map[units.Species]float64{units.O: -0.8}, Alpha: 0.25, Cutoff: 9}
	sys := atoms.NewSystem(1)
	sys.Species[0] = units.O
	e, f := lr.EnergyForces(sys)
	if e >= 0 {
		t.Fatalf("self term must be negative, got %g", e)
	}
	if f[0] != [3]float64{} {
		t.Fatal("single charge must feel no force")
	}
}

func TestWolfForcesMatchFiniteDifference(t *testing.T) {
	lr := NewWaterLongRange()
	rng := rand.New(rand.NewPCG(1, 2))
	sys := atoms.NewSystem(6)
	for w := 0; w < 2; w++ {
		sys.Species[3*w] = units.O
		sys.Species[3*w+1] = units.H
		sys.Species[3*w+2] = units.H
		base := float64(w) * 3.0
		sys.Pos[3*w] = [3]float64{base, 0.1 * rng.Float64(), 0}
		sys.Pos[3*w+1] = [3]float64{base + 0.96, 0, 0.05}
		sys.Pos[3*w+2] = [3]float64{base - 0.25, 0.93, 0}
	}
	_, f := lr.EnergyForces(sys)
	const h = 1e-6
	for _, i := range []int{0, 2, 4} {
		for k := 0; k < 3; k++ {
			sp := sys.Clone()
			sm := sys.Clone()
			sp.Pos[i][k] += h
			sm.Pos[i][k] -= h
			ep, _ := lr.EnergyForces(sp)
			em, _ := lr.EnergyForces(sm)
			fd := -(ep - em) / (2 * h)
			if math.Abs(fd-f[i][k]) > 1e-5*(1+math.Abs(fd)) {
				t.Fatalf("Wolf force[%d][%d]: fd=%g analytic=%g", i, k, fd, f[i][k])
			}
		}
	}
}

func TestWolfApproachesMadelungNaCl(t *testing.T) {
	// Rock-salt lattice of +-1 charges: the Wolf energy per ion must
	// approach the Madelung energy -1.7476 * k e^2 / a within a few percent.
	const aNN = 2.82 // nearest-neighbor distance (A)
	const nCell = 6  // 6^3 ions
	sys := atoms.NewSystem(nCell * nCell * nCell)
	sys.PBC = true
	L := float64(nCell) * aNN
	sys.Cell = [3]float64{L, L, L}
	i := 0
	for x := 0; x < nCell; x++ {
		for y := 0; y < nCell; y++ {
			for z := 0; z < nCell; z++ {
				if (x+y+z)%2 == 0 {
					sys.Species[i] = units.N // stand-in cation, +1
				} else {
					sys.Species[i] = units.O // stand-in anion, -1
				}
				sys.Pos[i] = [3]float64{float64(x) * aNN, float64(y) * aNN, float64(z) * aNN}
				i++
			}
		}
	}
	lr := &LongRange{
		Charges: map[units.Species]float64{units.N: 1, units.O: -1},
		Alpha:   0.30,
		Cutoff:  8.4, // must stay below L/2 - epsilon for minimum image
	}
	if q := lr.TotalCharge(sys); q != 0 {
		t.Fatalf("lattice not neutral: %g", q)
	}
	e, _ := lr.EnergyForces(sys)
	perIon := e / float64(sys.NumAtoms())
	// Total lattice energy per ion is -M k e^2 / (2 a): each pair counted
	// once (the per-ion site potential -M k/a double-counts pairs).
	want := -1.7476 * units.CoulombConst / (2 * aNN)
	if math.Abs(perIon-want)/math.Abs(want) > 0.05 {
		t.Fatalf("Wolf per-ion energy %.4f eV, Madelung %.4f eV (>5%% off)", perIon, want)
	}
}

func TestWolfTranslationInvariance(t *testing.T) {
	lr := NewWaterLongRange()
	sys := atoms.NewSystem(3)
	sys.Species = []units.Species{units.O, units.H, units.H}
	sys.Pos[1] = [3]float64{0.96, 0, 0}
	sys.Pos[2] = [3]float64{-0.24, 0.93, 0}
	e0, _ := lr.EnergyForces(sys)
	tr := sys.Clone()
	for i := range tr.Pos {
		tr.Pos[i][1] += 11.3
	}
	e1, _ := lr.EnergyForces(tr)
	if math.Abs(e0-e1) > 1e-10 {
		t.Fatalf("Wolf energy not translation invariant: %g vs %g", e0, e1)
	}
}

// --- GMM uncertainty (Sec. VIII extension) ---

func TestUncertaintyFlagsOutOfDistribution(t *testing.T) {
	m := newTinyModel(t, 77)
	rng := rand.New(rand.NewPCG(78, 79))
	// Training distribution: near-equilibrium water clusters.
	var frames []*atoms.Frame
	for i := 0; i < 4; i++ {
		sys := waterCluster(rng, 2)
		frames = append(frames, &atoms.Frame{Sys: sys})
	}
	u := FitUncertainty(m, frames, 4, 80)

	inDist := waterCluster(rng, 2)
	sIn := u.StructureUncertainty(inDist)

	// Out of distribution: compress every O-H bond to 60%.
	ood := waterCluster(rng, 2)
	for w := 0; w < 2; w++ {
		o := ood.Pos[3*w]
		for hh := 1; hh <= 2; hh++ {
			for k := 0; k < 3; k++ {
				ood.Pos[3*w+hh][k] = o[k] + 0.6*(ood.Pos[3*w+hh][k]-o[k])
			}
		}
	}
	sOut := u.StructureUncertainty(ood)
	if sOut <= sIn {
		t.Fatalf("OOD structure should score higher uncertainty: in=%g out=%g", sIn, sOut)
	}
}

func TestUncertaintyPerAtomShape(t *testing.T) {
	m := newTinyModel(t, 81)
	rng := rand.New(rand.NewPCG(82, 83))
	frames := []*atoms.Frame{{Sys: waterCluster(rng, 2)}}
	u := FitUncertainty(m, frames, 2, 84)
	per := u.AtomUncertainty(frames[0].Sys)
	if len(per) != frames[0].Sys.NumAtoms() {
		t.Fatal("per-atom uncertainty length mismatch")
	}
	for _, v := range per {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("invalid uncertainty %v", v)
		}
	}
}

func TestPairLatentsShape(t *testing.T) {
	m := newTinyModel(t, 85)
	rng := rand.New(rand.NewPCG(86, 87))
	sys := waterCluster(rng, 2)
	lats := m.PairLatents(sys)
	if len(lats) == 0 {
		t.Fatal("no pair latents")
	}
	if len(lats[0]) != m.Cfg.LatentDim {
		t.Fatalf("latent width %d, want %d", len(lats[0]), m.Cfg.LatentDim)
	}
}
