package core

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/atoms"
	"repro/internal/neighbor"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// TrainConfig controls Allegro training (Sec. VI-D: Adam, batch 16,
// lr 1e-3, force-only MSE loss, EMA 0.99).
type TrainConfig struct {
	Epochs       int
	BatchSize    int
	LR           float64
	EMADecay     float64
	ForceWeight  float64 // weight of the force MSE term
	EnergyWeight float64 // weight of the per-atom energy MSE term
	GradClip     float64 // global norm clip (0 = off)
	Seed         uint64
	// Verbose enables per-epoch logging through Logf.
	Logf func(format string, args ...any)
}

// DefaultTrainConfig mirrors the paper's settings at reduced scale, with a
// small energy term added: the paper trains force-only, which works at SPICE
// scale, while at our reduced dataset sizes a weak energy anchor
// substantially stabilizes the absolute scale.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Epochs:       40,
		BatchSize:    4,
		LR:           1e-3,
		EMADecay:     0.99,
		ForceWeight:  1.0,
		EnergyWeight: 0.01,
		GradClip:     100,
	}
}

// Trainer fits an Allegro model to labeled frames.
type Trainer struct {
	Model *Model
	Cfg   TrainConfig
	opt   *nn.Adam
	ema   *nn.EMA
}

// NewTrainer builds a trainer for model.
func NewTrainer(model *Model, cfg TrainConfig) *Trainer {
	return &Trainer{
		Model: model,
		Cfg:   cfg,
		opt:   nn.NewAdam(cfg.LR),
		ema:   nn.NewEMA(model.Params, cfg.EMADecay),
	}
}

// effectiveEMADecay caps the decay so the averaging window fits the run:
// the paper's 0.99 assumes ~1e5 optimizer steps; at CPU-scale step counts a
// 0.99 average would still be dominated by the random initialization.
func effectiveEMADecay(configured float64, totalSteps int) float64 {
	if totalSteps <= 0 {
		return configured
	}
	cap := 1 - 4.0/float64(totalSteps)
	if cap < 0 {
		cap = 0
	}
	if configured > cap {
		return cap
	}
	return configured
}

// FitScaleShift sets the model's energy normalization from the training set:
// per-species shifts from a least-squares fit of total energies to species
// counts, and a global scale from the reference force RMS (the paper
// normalizes force targets by a training-set statistic).
func (t *Trainer) FitScaleShift(frames []*atoms.Frame) {
	m := t.Model
	s := m.Idx.Len()
	// Least squares: counts * mu = energies.
	a := tensor.New(len(frames), s)
	bvec := tensor.New(len(frames), 1)
	for fi, f := range frames {
		for _, sp := range f.Sys.Species {
			a.Data[fi*s+m.Idx.Index(sp)]++
		}
		bvec.Data[fi] = f.Energy
	}
	mu, err := tensor.LeastSquares(a, bvec, 1e-8)
	shift := make([]float64, s)
	if err == nil {
		for i := 0; i < s; i++ {
			shift[i] = mu.Data[i]
		}
	}
	// Force RMS over the training set.
	var sum float64
	var cnt int
	for _, f := range frames {
		for _, fc := range f.Forces {
			sum += fc[0]*fc[0] + fc[1]*fc[1] + fc[2]*fc[2]
			cnt += 3
		}
	}
	scale := 1.0
	if cnt > 0 && sum > 0 {
		scale = math.Sqrt(sum / float64(cnt))
	}
	m.SetScaleShift(scale, shift)
}

// residual holds one frame's prediction errors.
type residual struct {
	de  float64      // (E_pred - E_ref) / natoms
	du  [][3]float64 // F_pred - F_ref
	nat int
}

// Step runs one optimization step over a batch of frames and returns the
// batch loss. The force-loss parameter gradient uses the exact R-operator
// identity evaluated by central differences of two first-order backward
// passes at positions displaced along u = F_pred - F_ref (see package ad).
func (t *Trainer) Step(frames []*atoms.Frame) float64 {
	m := t.Model
	cfg := t.Cfg
	acc := nn.NewGradAccumulator()
	batchLoss := 0.0
	for _, f := range frames {
		pairs := neighbor.Build(f.Sys, m.Cuts)
		// Pass 1: forward+backward for energy, forces, and dE/dtheta.
		g, eNet := m.energyGradients(f.Sys, pairs, nil)
		nat := f.Sys.NumAtoms()
		ePred := eNet
		for _, sp := range f.Sys.Species {
			ePred += m.EnergyShift[m.Idx.Index(sp)]
		}
		forces := make([][3]float64, nat)
		grad := g.rvec.Grad()
		for z := 0; z < pairs.NumReal; z++ {
			i, j := pairs.I[z], pairs.J[z]
			row := grad.Row(z)
			for k := 0; k < 3; k++ {
				forces[i][k] += row[k]
				forces[j][k] -= row[k]
			}
		}
		if m.Cfg.ZBL {
			ePred += addZBL(f.Sys, pairs, forces)
		}
		res := residual{de: (ePred - f.Energy) / float64(nat), nat: nat}
		res.du = make([][3]float64, nat)
		var floss float64
		for i := 0; i < nat; i++ {
			for k := 0; k < 3; k++ {
				res.du[i][k] = forces[i][k] - f.Forces[i][k]
				floss += res.du[i][k] * res.du[i][k]
			}
		}
		floss /= float64(3 * nat)
		eloss := res.de * res.de
		batchLoss += cfg.ForceWeight*floss + cfg.EnergyWeight*eloss

		// Energy-term parameter gradients from pass 1:
		// dLe/dtheta = 2*de/nat * dE/dtheta.
		if cfg.EnergyWeight > 0 {
			coefE := cfg.EnergyWeight * 2 * res.de / float64(nat)
			for _, p := range m.Params.List() {
				if gp := g.binder.Grad(p.T); gp != nil {
					acc.AddScaled(p.T, gp, coefE)
				}
			}
		}

		// Force-term gradients: R-operator by central differences.
		if cfg.ForceWeight > 0 {
			maxU := 0.0
			for i := range res.du {
				for k := 0; k < 3; k++ {
					if a := math.Abs(res.du[i][k]); a > maxU {
						maxU = a
					}
				}
			}
			if maxU > 0 {
				h := 1e-4 / maxU
				disp := make([]float64, 3*nat)
				for i := range res.du {
					for k := 0; k < 3; k++ {
						disp[3*i+k] = h * res.du[i][k]
					}
				}
				gp, _ := m.energyGradients(f.Sys, pairs, disp)
				for i := range disp {
					disp[i] = -disp[i]
				}
				gm, _ := m.energyGradients(f.Sys, pairs, disp)
				// dLf/dtheta = -(2/3N) [grad_theta E(r+hu) - grad_theta E(r-hu)]/(2h)
				coefF := -cfg.ForceWeight * 2 / (3 * float64(nat)) / (2 * h)
				for _, p := range m.Params.List() {
					gpp := gp.binder.Grad(p.T)
					gmm := gm.binder.Grad(p.T)
					if gpp == nil || gmm == nil {
						continue
					}
					diff := gpp.Clone()
					for i := range diff.Data {
						diff.Data[i] -= gmm.Data[i]
					}
					acc.AddScaled(p.T, diff, coefF)
				}
			}
		}
	}
	acc.Scale(1 / float64(len(frames)))
	if cfg.GradClip > 0 {
		acc.ClipNorm(cfg.GradClip)
	}
	t.opt.Step(m.Params, acc.Grad)
	m.Params.Quantize(m.Cfg.Precision.Weights)
	t.ema.Update(m.Params)
	return batchLoss / float64(len(frames))
}

// Train runs the full loop: scale/shift fitting, epoch shuffling (the data
// set is "re-shuffled after each epoch"), batching, and final EMA weights.
// Returns the last epoch's mean loss.
func (t *Trainer) Train(frames []*atoms.Frame) float64 {
	if len(frames) == 0 {
		panic("core: Train with no frames")
	}
	t.FitScaleShift(frames)
	rng := rand.New(rand.NewPCG(t.Cfg.Seed, 0x5EED))
	order := make([]int, len(frames))
	for i := range order {
		order[i] = i
	}
	batches := (len(frames) + t.Cfg.BatchSize - 1) / t.Cfg.BatchSize
	t.ema.Decay = effectiveEMADecay(t.Cfg.EMADecay, t.Cfg.Epochs*batches)
	lastLoss := 0.0
	for epoch := 0; epoch < t.Cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		total := 0.0
		nb := 0
		for at := 0; at < len(order); at += t.Cfg.BatchSize {
			end := at + t.Cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			batch := make([]*atoms.Frame, 0, end-at)
			for _, i := range order[at:end] {
				batch = append(batch, frames[i])
			}
			total += t.Step(batch)
			nb++
		}
		lastLoss = total / float64(nb)
		if t.Cfg.Logf != nil {
			t.Cfg.Logf("epoch %3d loss %.6f", epoch, lastLoss)
		}
	}
	// Final model uses EMA weights (paper Sec. VI-D).
	t.ema.CopyTo(t.Model.Params)
	t.Model.Params.Quantize(t.Model.Cfg.Precision.Weights)
	return lastLoss
}

// EvalMetrics holds force/energy errors over a data set.
type EvalMetrics struct {
	ForceMAE  float64 // eV/A, per component
	ForceRMSE float64 // eV/A, per component
	EnergyMAE float64 // eV/atom
	Frames    int
}

// String renders the metrics compactly.
func (e EvalMetrics) String() string {
	return fmt.Sprintf("F_MAE=%.2f meV/A F_RMSE=%.2f meV/A E_MAE=%.2f meV/atom (%d frames)",
		e.ForceMAE*1000, e.ForceRMSE*1000, e.EnergyMAE*1000, e.Frames)
}

// Evaluate computes force MAE/RMSE and per-atom energy MAE over frames.
func (t *Trainer) Evaluate(frames []*atoms.Frame) EvalMetrics {
	return EvaluateModel(t.Model, frames)
}

// ForceEvaluator is any potential that returns energy and forces for a
// system (Allegro and all baselines implement it).
type ForceEvaluator interface {
	EnergyForces(sys *atoms.System) (float64, [][3]float64)
}

// EnergyForces implements ForceEvaluator for the Allegro model.
func (m *Model) EnergyForces(sys *atoms.System) (float64, [][3]float64) {
	r := m.Evaluate(sys)
	return r.Energy, r.Forces
}

// EvaluateModel computes the standard metrics for any ForceEvaluator.
func EvaluateModel(ev ForceEvaluator, frames []*atoms.Frame) EvalMetrics {
	var m EvalMetrics
	var sumAbs, sumSq, sumE float64
	var nf, ne int
	for _, f := range frames {
		e, forces := ev.EnergyForces(f.Sys)
		for i := range forces {
			for k := 0; k < 3; k++ {
				d := forces[i][k] - f.Forces[i][k]
				sumAbs += math.Abs(d)
				sumSq += d * d
				nf++
			}
		}
		sumE += math.Abs(e-f.Energy) / float64(f.NumAtoms())
		ne++
	}
	if nf > 0 {
		m.ForceMAE = sumAbs / float64(nf)
		m.ForceRMSE = math.Sqrt(sumSq / float64(nf))
	}
	if ne > 0 {
		m.EnergyMAE = sumE / float64(ne)
	}
	m.Frames = ne
	return m
}
