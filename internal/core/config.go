// Package core implements the Allegro model: a strictly local equivariant
// deep-learning interatomic potential (Musaelian et al., SC'23). Allegro
// assigns learned features to *ordered pairs* of neighboring atoms and keeps
// two coupled tracks per pair:
//
//   - a cheap, high-capacity scalar ("latent") track of dense MLPs, and
//   - an expensive equivariant tensor track whose only nonlinear operation
//     is a single fused tensor product with a weighted sum of the central
//     atom's neighbor spherical-harmonic embeddings (Eq. 1-2 of the paper).
//
// Because all interactions stay inside a finite cutoff around the central
// atom — the receptive field never grows with depth — the model drops into
// spatial domain decomposition unchanged, which is what the paper scales to
// 5120 GPUs. See internal/domain for the decomposed evaluation.
package core

import (
	"fmt"
	"math"

	"repro/internal/tensor"
	"repro/internal/units"
)

// PrecisionConfig mirrors the paper's (Final, Weights, Compute) triple of
// Table IV: the precision of the final energy scale/shift/sum stage, of the
// stored weights and activations, and of the matrix pipelines.
type PrecisionConfig struct {
	Final   tensor.Precision
	Weights tensor.Precision
	Compute tensor.Precision
}

// String renders e.g. "F64,F32,TF32".
func (p PrecisionConfig) String() string {
	return fmt.Sprintf("%s,%s,%s", p.Final, p.Weights, p.Compute)
}

// ProductionPrecision is the configuration used for the paper's production
// runs: double-precision final stage, float32 weights, TF32 tensor cores.
func ProductionPrecision() PrecisionConfig {
	return PrecisionConfig{Final: tensor.F64, Weights: tensor.F32, Compute: tensor.TF32}
}

// ExactPrecision runs everything in float64 (used by correctness tests).
func ExactPrecision() PrecisionConfig {
	return PrecisionConfig{Final: tensor.F64, Weights: tensor.F64, Compute: tensor.F64}
}

// CompiledMode selects how inference evaluations execute: via the compiled
// record-once/replay plans of internal/plan (the production default) or via
// the general autodiff tape. Training always uses the tape (it needs live
// parameter gradients); the two inference paths are bit-identical, so the
// toggle trades nothing but speed.
type CompiledMode int

const (
	// CompiledAuto defers to the default: compiled plans for inference.
	CompiledAuto CompiledMode = iota
	// CompiledOn forces the compiled replay path.
	CompiledOn
	// CompiledOff forces the interpreted autodiff tape.
	CompiledOff
)

// Enabled resolves the mode (Auto means on).
func (c CompiledMode) Enabled() bool { return c != CompiledOff }

// String renders the execution mode for logs and measurements.
func (c CompiledMode) String() string {
	if c.Enabled() {
		return "compiled"
	}
	return "tape"
}

// Config specifies an Allegro model architecture.
type Config struct {
	// Species is the model's type system (atom types correspond one-to-one
	// with chemical species).
	Species []units.Species
	// LMax is the maximum rotation order of the tensor features (paper: 2).
	LMax int
	// NumLayers is the number of Allegro layers (paper: 2).
	NumLayers int
	// NumChannels is n_tensor, the tensor feature multiplicity (paper: 64).
	NumChannels int
	// LatentDim is the width of the scalar track.
	LatentDim int
	// TwoBodyHidden are the hidden sizes of the two-body latent MLP.
	TwoBodyHidden []int
	// LatentHidden are the hidden sizes of the later latent MLPs.
	LatentHidden []int
	// EdgeHidden is the hidden size of the final edge-energy MLP.
	EdgeHidden int
	// NumBessel is the number of Bessel radial basis functions (paper: 8).
	NumBessel int
	// PolyP is the exponent of the polynomial cutoff envelope (paper: 6).
	PolyP int
	// DefaultCutoff is the uniform cutoff used when no table is given.
	DefaultCutoff float64
	// AvgNumNeighbors normalizes environment sums; set from training data.
	AvgNumNeighbors float64
	// Precision selects the mixed-precision scheme.
	Precision PrecisionConfig
	// ZBL enables the repulsive Ziegler-Biersack-Littmark core term added
	// "as a means to improve the stability of the potential" (Sec. VI-D).
	ZBL bool
	// Workers bounds the CPU worker pool used by parallel neighbor builds
	// and sharded force reductions (the single-node stand-in for the
	// paper's per-GPU parallelism). Values <= 0 select
	// runtime.GOMAXPROCS(0); 1 forces the serial path.
	Workers int
	// Compiled selects the inference execution mode: record-once/replay
	// plans (default) or the autodiff tape. Per-scratch overrides
	// (EvalScratch.Compiled, allegro.WithCompiled) take precedence.
	Compiled CompiledMode
}

// DefaultConfig returns a small but architecturally complete Allegro
// configuration suitable for CPU-scale training runs. The paper's production
// model (2 layers, 64 channels, lmax=2, latents up to 1024) is obtained by
// scaling these fields up; see ProductionConfig.
func DefaultConfig(species []units.Species) Config {
	return Config{
		Species:         species,
		LMax:            2,
		NumLayers:       2,
		NumChannels:     4,
		LatentDim:       32,
		TwoBodyHidden:   []int{32, 32},
		LatentHidden:    []int{48},
		EdgeHidden:      16,
		NumBessel:       8,
		PolyP:           6,
		DefaultCutoff:   4.0,
		AvgNumNeighbors: 20,
		Precision:       ExactPrecision(),
		ZBL:             true,
	}
}

// ProductionConfig mirrors the hyperparameters of Sec. VI-D (7.85M weights:
// two layers of 64 tensor features with lmax=2, two-body latent
// [128,256,512,1024], later latent [1024,1024,1024], edge MLP hidden 128).
// It is used for FLOP accounting in the performance model; training it in
// pure Go is not practical.
func ProductionConfig(species []units.Species) Config {
	c := DefaultConfig(species)
	c.NumChannels = 64
	c.LatentDim = 1024
	c.TwoBodyHidden = []int{128, 256, 512}
	c.LatentHidden = []int{1024, 1024}
	c.EdgeHidden = 128
	c.Precision = ProductionPrecision()
	return c
}

// Validate checks configuration invariants.
func (c *Config) Validate() error {
	if len(c.Species) == 0 {
		return fmt.Errorf("core: config needs at least one species")
	}
	if c.LMax < 0 || c.LMax > 3 {
		return fmt.Errorf("core: LMax %d outside supported range [0,3]", c.LMax)
	}
	if c.NumLayers < 1 {
		return fmt.Errorf("core: need at least one layer")
	}
	if c.NumChannels < 1 || c.LatentDim < 1 || c.NumBessel < 1 {
		return fmt.Errorf("core: channel/latent/bessel sizes must be positive")
	}
	if c.DefaultCutoff <= 0 {
		return fmt.Errorf("core: cutoff must be positive")
	}
	if c.AvgNumNeighbors <= 0 {
		return fmt.Errorf("core: AvgNumNeighbors must be positive")
	}
	return nil
}

// envNorm is the environment-sum normalization 1/sqrt(avg neighbors).
func (c *Config) envNorm() float64 { return 1 / math.Sqrt(c.AvgNumNeighbors) }
