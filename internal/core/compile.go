package core

import (
	"math"

	"repro/internal/atoms"
	"repro/internal/neighbor"
	"repro/internal/nn"
	"repro/internal/o3"
	"repro/internal/plan"
	"repro/internal/tensor"
)

// compilePlan records the Allegro forward pass once for a (Z pairs, N atoms)
// chunk shape into a flat execution plan. The statement sequence below
// mirrors buildGraphOn exactly — same ops, same order, same rounding points
// — which is what makes compiled replay bit-identical to the tape path; the
// plan just strips the Value/Tape bookkeeping, folds the frozen weights once
// (rounded matmul operands, fused TPEntry tables via Inputs.Fused), and
// hand-schedules the analytic backward.
func (m *Model) compilePlan(z, nAtoms int) *plan.Program {
	cfg := &m.Cfg
	s := m.Idx.Len()
	u := cfg.NumChannels
	b := plan.NewBuilder(z, nAtoms, cfg.Precision.Compute, cfg.Precision.Weights, cfg.Precision.Final)

	rvec := b.InputRvec()
	oneHot := b.InputOneHot(s)

	r := b.Norm(rvec)
	env := b.PolyCutoff(r, cfg.PolyP)
	bes := b.Bessel(r, cfg.NumBessel)
	besCut := b.MulBroadcast(bes, env, z, cfg.NumBessel)
	sphDim := o3.SphDim(cfg.LMax)
	sph := b.SphHarm(rvec, cfg.LMax, sphDim)

	// Two-body latent.
	h := compileMLP(b, m.twoBody, b.Concat2(oneHot, besCut, z, 2*s, cfg.NumBessel), z)

	// Initial tensor features: V0[z,u,:] = (embed h)[z,u] * Y[z,:].
	chanW := b.Linear(h, m.embedLin, nil, z)
	v := b.OuterMul(chanW, sph, z, u, sphDim)

	scaleRes := 1 / math.Sqrt(2.0)
	for l := 0; l < cfg.NumLayers; l++ {
		tp := m.tps[l]
		wEnv := b.MulBroadcast(b.Linear(h, m.envLins[l], nil, z), env, z, u)
		envSum := b.EnvSum(wEnv, sph, u, sphDim, cfg.envNorm())
		envPairs := b.Gather(envSum, u*sphDim)
		tpo := b.TP(v, envPairs, l, z*u, tp.In1.Width, tp.In2.Width, tp.Out.Width)

		scalIdx := tp.Out.ScalarIndex()
		lo, hi := tp.Out.Block(scalIdx)
		scal := b.Copy(b.SliceLast(tpo, z*u, hi-lo, tp.Out.Width, lo))

		hNew := compileMLP(b, m.latents[l], b.Concat2(h, scal, z, cfg.LatentDim, u), z)
		h = b.Scale(b.Add(h, hNew), scaleRes, false)

		// The final layer's channel-weight update feeds only the (absent)
		// next tensor track: the tape computes it and drops it (its output
		// never receives an adjoint); the compiler eliminates it statically.
		if l < cfg.NumLayers-1 {
			cw := b.Linear(h, m.chanLins[l], nil, z)
			v = b.MulBroadcast(tpo, cw, z*u, tp.Out.Width)
		}
	}

	eRaw := compileMLP(b, m.edgeMLP, h, z)
	ePair := b.MulBroadcast(eRaw, env, z, 1)
	if cfg.Precision.Final != tensor.F64 {
		ePair = b.Scale(ePair, 1, true)
	}
	b.SetPairE(ePair)
	b.WeightedSumAll(ePair)
	return b.Finish()
}

// compileMLP mirrors nn.MLP.Apply: linear layers with SiLU between them.
func compileMLP(b *plan.Builder, mlp *nn.MLP, x plan.Reg, rows int) plan.Reg {
	h := x
	for l, w := range mlp.Ws {
		h = b.Linear(h, w, mlp.Bs[l], rows)
		if l+1 < len(mlp.Ws) {
			h = b.SiLU(h)
		}
	}
	return h
}

// planKey identifies one compiled shape: plans are specific to the exact
// padded pair count and atom count, which the Evaluator's PadTo running-max
// padding keeps constant across MD steps.
type planKey struct{ z, n int }

// planCache owns the compiled programs of one evaluation context (the serial
// scratch, or one chunk worker). Plans key on shape and are invalidated
// wholesale when the model, its precision scheme, or its parameter version
// changes — so training between evaluations recompiles instead of replaying
// stale folded weights. Like the scratch it lives in, a planCache serves one
// goroutine.
//
// With shared set (EvalScratch.UsePlanRegistry), the cache stops compiling
// privately: plans are *leased* from the cross-tenant PlanRegistry on first
// dispatch of a shape, held locally (the steady-state fast path stays
// lock-free and allocation-free) and returned by releaseAll when the owning
// request completes. Stale leases — detected by the same version check —
// are handed back to the registry, which drops them.
type planCache struct {
	model   *Model
	version uint64
	prec    PrecisionConfig
	plans   map[planKey]*plan.Program
	shared  *PlanRegistry
	ti, tj  []int
	in      plan.Inputs
	// refKernels mirrors EvalScratch.RefKernels onto every program this
	// cache dispatches (bit-identical reference kernels, for A/B benches).
	refKernels bool
	// profile mirrors EvalScratch.Profile: when non-nil, replays run through
	// plan.ExecuteProfiled and fold per-kernel-class timings into it.
	profile *plan.KernelProfile
}

// KernelProfile re-exports the compiled plans' per-kernel-class replay
// breakdown for callers outside the internal plan package (allegro-bench
// -kernels).
type KernelProfile = plan.KernelProfile

// maxCachedPlans bounds one context's live programs. Shapes churn only
// while the PadTo running maximum ramps up (serial) or across rank
// migrations (decomposed); a program's slabs are multi-MB at production
// channel counts, so shapes that stopped recurring must not accumulate.
// Evicting everything on overflow is fine: recompiles are cheap and rare.
const maxCachedPlans = 8

// program returns the cached (or freshly compiled/leased) plan for the shape.
func (pc *planCache) program(m *Model, z, nAtoms int) *plan.Program {
	v := m.Params.Version()
	if pc.plans == nil || pc.model != m || pc.version != v || pc.prec != m.Cfg.Precision {
		if pc.plans == nil {
			pc.plans = make(map[planKey]*plan.Program)
		} else {
			pc.flush() // stale leases go back to the registry (dropped there)
		}
		pc.model, pc.version, pc.prec = m, v, m.Cfg.Precision
	}
	key := planKey{z, nAtoms}
	pg := pc.plans[key]
	if pg == nil {
		if len(pc.plans) >= maxCachedPlans {
			pc.flush() // dead-shape slabs outweigh the recompiles
		}
		if pc.shared != nil {
			pg = pc.shared.acquire(m, z, nAtoms)
		} else {
			pg = m.compilePlan(z, nAtoms)
		}
		pc.plans[key] = pg
	}
	return pg
}

// flush empties the local plan map. Privately compiled plans are simply
// dropped; leased plans are returned to the shared registry under the
// binding they were leased with (the registry pools the current ones and
// evicts the stale).
func (pc *planCache) flush() {
	if pc.shared != nil {
		for key, pg := range pc.plans {
			pc.shared.release(pc.model, pc.version, pc.prec, key, pg)
		}
	}
	clear(pc.plans)
}

// releaseAll returns every leased plan to the shared registry (no-op for a
// private cache). Evaluation contexts serving independent requests call this
// between requests so the programs they warmed are available to every other
// tenant.
func (pc *planCache) releaseAll() {
	if pc.shared == nil || len(pc.plans) == 0 {
		return
	}
	pc.flush()
}

// run replays the plan for the pair list: it refreshes the species-index
// buffers, assembles the Inputs view over the caller's pair storage, and
// executes forward + analytic backward. Allocation-free once the shape's
// plan and the index buffers are warm.
func (pc *planCache) run(m *Model, sys *atoms.System, pairs *neighbor.Pairs) *plan.Program {
	z := pairs.Len()
	pg := pc.program(m, z, pairs.NAtoms)
	if cap(pc.ti) < z {
		pc.ti = make([]int, z)
		pc.tj = make([]int, z)
	}
	ti, tj := pc.ti[:z], pc.tj[:z]
	for i := 0; i < z; i++ {
		ti[i] = m.Idx.Index(sys.Species[pairs.I[i]])
		tj[i] = m.Idx.Index(sys.Species[pairs.J[i]])
	}
	fused, packed, sorted, sorted32 := m.fusedTables()
	pg.SetRefKernels(pc.refKernels)
	pc.in = plan.Inputs{
		Vec: pairs.Vec, Cut: pairs.Cut, I: pairs.I,
		TI: ti, TJ: tj,
		Scale: m.EnergyScale,
		Fused: fused, Fused32: packed,
		FusedS: sorted, Fused32S: sorted32,
	}
	if pc.profile != nil {
		pg.ExecuteProfiled(&pc.in, pc.profile)
	} else {
		pg.Execute(&pc.in)
	}
	return pg
}
