package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/atoms"
	"repro/internal/data"
	"repro/internal/md"
	"repro/internal/neighbor"
	"repro/internal/par"
	"repro/internal/units"
)

func testModel(t testing.TB, workers int) *Model {
	t.Helper()
	cfg := DefaultConfig([]units.Species{units.H, units.O})
	cfg.Workers = workers
	m, err := New(cfg, nil, rand.New(rand.NewPCG(11, 13)))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testWater(seed uint64) *atoms.System {
	return data.WaterBox(rand.New(rand.NewPCG(seed, 1)), 2, 2, 2)
}

// TestEvaluateIntoMatchesEvaluate checks the scratch path against the
// allocating path bit for bit in the serial case.
func TestEvaluateIntoMatchesEvaluate(t *testing.T) {
	m := testModel(t, 1)
	sys := testWater(3)
	want := m.Evaluate(sys)
	es := NewEvalScratch()
	defer es.Close()
	got := m.EvaluateInto(es, sys)
	if got.Energy != want.Energy {
		t.Fatalf("energy %.17g vs %.17g", got.Energy, want.Energy)
	}
	for i := range want.Forces {
		if got.Forces[i] != want.Forces[i] {
			t.Fatalf("force %d: %v vs %v", i, got.Forces[i], want.Forces[i])
		}
	}
	if got.PairWork != want.PairWork {
		t.Fatalf("pair work %d vs %d", got.PairWork, want.PairWork)
	}
}

// TestEvaluateIntoReuse checks that repeated scratch evaluations are stable
// and that the arena stops growing after warm-up.
func TestEvaluateIntoReuse(t *testing.T) {
	m := testModel(t, 2)
	sys := testWater(4)
	es := NewEvalScratch()
	defer es.Close()
	first := m.EvaluateInto(es, sys)
	e0 := first.Energy
	f0 := append([][3]float64(nil), first.Forces...)
	warm := es.ArenaBytes()
	for it := 0; it < 5; it++ {
		r := m.EvaluateInto(es, sys)
		if r.Energy != e0 {
			t.Fatalf("iteration %d: energy drifted %.17g vs %.17g", it, r.Energy, e0)
		}
		for i := range f0 {
			if r.Forces[i] != f0[i] {
				t.Fatalf("iteration %d: force %d drifted", it, i)
			}
		}
	}
	if es.ArenaBytes() != warm {
		t.Fatalf("arena grew after warm-up: %d -> %d bytes", warm, es.ArenaBytes())
	}
}

// TestShardedForceReductionDeterminism is the determinism test of the
// sharded force reduction: for a fixed worker count results are bitwise
// reproducible across fresh scratches, and the sharded sum agrees with the
// serial reduction to roundoff.
func TestShardedForceReductionDeterminism(t *testing.T) {
	sys := testWater(5)

	mSerial := testModel(t, 1)
	serial := mSerial.EvaluateInto(NewEvalScratch(), sys)

	mPar := testModel(t, 4)
	esA, esB := NewEvalScratch(), NewEvalScratch()
	defer esA.Close()
	defer esB.Close()
	a := mPar.EvaluateInto(esA, sys)
	b := mPar.EvaluateInto(esB, sys)
	for i := range a.Forces {
		if a.Forces[i] != b.Forces[i] {
			t.Fatalf("workers=4 not reproducible at atom %d: %v vs %v", i, a.Forces[i], b.Forces[i])
		}
	}
	if a.Energy != b.Energy {
		t.Fatalf("workers=4 energy not reproducible")
	}
	for i := range a.Forces {
		for k := 0; k < 3; k++ {
			if d := math.Abs(a.Forces[i][k] - serial.Forces[i][k]); d > 1e-10 {
				t.Fatalf("atom %d component %d: sharded %v vs serial %v", i, k, a.Forces[i], serial.Forces[i])
			}
		}
	}
}

// TestEvaluatorPaddingNeutral checks that fake-pair padding changes neither
// energies nor forces.
func TestEvaluatorPaddingNeutral(t *testing.T) {
	m := testModel(t, 1)
	sys := testWater(6)
	want := m.Evaluate(sys)

	e := NewEvaluator(m)
	defer e.Close()
	e.PadFactor = 1.25
	energy := 0.0
	forces := make([][3]float64, sys.NumAtoms())
	energy = e.EnergyForcesInto(sys, forces)
	if energy != want.Energy {
		t.Fatalf("padded energy %.17g vs %.17g", energy, want.Energy)
	}
	for i := range forces {
		if forces[i] != want.Forces[i] {
			t.Fatalf("padded force %d: %v vs %v", i, forces[i], want.Forces[i])
		}
	}
	if e.PairWork() <= want.PairWork {
		t.Fatalf("padding did not grow pair work (%d vs %d)", e.PairWork(), want.PairWork)
	}
}

// TestEvaluatorPadToRunningMax checks shape stabilization: pair work is
// monotone non-decreasing across evaluations even as real pair counts
// fluctuate.
func TestEvaluatorPadToRunningMax(t *testing.T) {
	m := testModel(t, 1)
	e := NewEvaluator(m)
	defer e.Close()
	forces := make([][3]float64, testWater(7).NumAtoms())
	prev := 0
	for it := 0; it < 4; it++ {
		sys := testWater(uint64(7 + it)) // different boxes, fluctuating pairs
		e.EnergyForcesInto(sys, forces)
		if e.PairWork() < prev {
			t.Fatalf("pair work shrank: %d -> %d", prev, e.PairWork())
		}
		prev = e.PairWork()
	}
}

// TestSimStepDeterminismParallel runs the full MD step (parallel neighbor
// build + sharded force reduction) twice from identical initial conditions
// and requires bitwise-identical trajectories.
func TestSimStepDeterminismParallel(t *testing.T) {
	run := func() *md.Sim {
		m := testModel(t, 4)
		sys := testWater(9)
		sim := md.NewSim(sys, NewEvaluator(m), 0.25)
		sim.InitVelocities(300, rand.New(rand.NewPCG(21, 22)))
		sim.Run(3)
		return sim
	}
	a, b := run(), run()
	if a.Energy != b.Energy {
		t.Fatalf("energies diverged: %.17g vs %.17g", a.Energy, b.Energy)
	}
	for i := range a.Sys.Pos {
		if a.Sys.Pos[i] != b.Sys.Pos[i] {
			t.Fatalf("positions diverged at atom %d", i)
		}
		if a.Vel[i] != b.Vel[i] {
			t.Fatalf("velocities diverged at atom %d", i)
		}
	}
}

// TestEvaluatorSteadyStateAllocs bounds the steady-state allocation rate of
// the full force call: all tensor storage is arena-recycled, so what is
// left is the tape's fixed set of per-node closures — independent of
// system size and far below one allocation per pair.
func TestEvaluatorSteadyStateAllocs(t *testing.T) {
	m := testModel(t, 0) // all cores
	sys := testWater(10)
	e := NewEvaluator(m)
	defer e.Close()
	forces := make([][3]float64, sys.NumAtoms())
	for i := 0; i < 3; i++ {
		e.EnergyForcesInto(sys, forces) // warm up arena and pools
	}
	allocs := testing.AllocsPerRun(10, func() {
		e.EnergyForcesInto(sys, forces)
	})
	pairs := neighbor.Build(sys, m.Cuts)
	// ~100 fixed small allocations remain per worker sub-graph (one
	// backward closure per tape node); everything proportional to system
	// size is arena-recycled, so the bound scales with the resolved chunk
	// count, not with pairs — a regression back to per-pair tensor
	// allocation (thousands per call) trips it immediately.
	nw := par.Workers(0, pairs.NumReal/minEvalPairsPerWorker)
	limit := 170.0 * float64(nw)
	if allocs > limit {
		t.Errorf("steady-state force call allocates %.0f allocs/op (pairs=%d, chunks=%d), want <= %.0f",
			allocs, pairs.NumReal, nw, limit)
	}
}

// TestChunkedEvaluationExact checks the parallel chunked-graph evaluation
// (with padding, which lands in the tail chunk) against the serial path:
// energies agree to roundoff, forces to 1e-10, across worker counts.
func TestChunkedEvaluationExact(t *testing.T) {
	sys := testWater(12)
	want := testModel(t, 1).Evaluate(sys)
	for _, workers := range []int{2, 3, 5, 8} {
		m := testModel(t, workers)
		e := NewEvaluator(m)
		e.PadFactor = 1.10
		forces := make([][3]float64, sys.NumAtoms())
		energy := e.EnergyForcesInto(sys, forces)
		if d := math.Abs(energy - want.Energy); d > 1e-9*math.Abs(want.Energy)+1e-12 {
			t.Errorf("workers=%d: energy %.17g vs serial %.17g", workers, energy, want.Energy)
		}
		for i := range forces {
			for k := 0; k < 3; k++ {
				if d := math.Abs(forces[i][k] - want.Forces[i][k]); d > 1e-10 {
					t.Errorf("workers=%d atom %d: force %v vs %v", workers, i, forces[i], want.Forces[i])
					break
				}
			}
		}
		e.Close()
	}
}

// TestEvaluateRowsIntoMatchesForces checks the row-level entry point (the
// domain runtime's rank evaluation): reducing rows[z] (+center, -neighbor)
// plus pair energies, species shifts and final rounding must reproduce
// EvaluatePairsInto bit for bit — serial and chunked-parallel alike, since
// per-pair rows are independent of the chunk layout.
func TestEvaluateRowsIntoMatchesForces(t *testing.T) {
	for _, workers := range []int{1, 3} {
		m := testModel(t, workers)
		m.SetScaleShift(1.25, []float64{-0.5, -1.75})
		sys := testWater(9)
		es := NewEvalScratch()
		var pairs neighbor.Pairs
		es.ensure(m)
		es.builder.BuildInto(&pairs, sys, m.Cuts)

		ref := NewEvalScratch()
		want := m.EvaluatePairsInto(ref, sys, &pairs)
		wantForces := append([][3]float64(nil), want.Forces...)
		ref.Close()

		rows := make([][3]float64, pairs.Len())
		pairE := make([]float64, pairs.Len())
		m.EvaluateRowsInto(es, sys, &pairs, rows, pairE)
		es.Close()

		forces := make([][3]float64, sys.NumAtoms())
		energy := 0.0
		for z := 0; z < pairs.NumReal; z++ {
			i, j := pairs.I[z], pairs.J[z]
			for k := 0; k < 3; k++ {
				forces[i][k] += rows[z][k]
				forces[j][k] -= rows[z][k]
			}
			energy += pairE[z]
		}
		for _, sp := range sys.Species {
			energy += m.EnergyShift[m.Idx.Index(sp)]
		}
		if math.Abs(energy-want.Energy) > 1e-10 {
			t.Fatalf("workers=%d: row energy %.17g vs %.17g", workers, energy, want.Energy)
		}
		for i := range forces {
			for k := 0; k < 3; k++ {
				if math.Abs(forces[i][k]-wantForces[i][k]) > 1e-10 {
					t.Fatalf("workers=%d: row-reduced force mismatch at atom %d", workers, i)
				}
			}
		}
	}
}

// TestEvaluateRowsSkinPairsExactlyZero pins the Verlet-reuse identity: rows
// and pair energies of skin-shell pairs (Dist >= Cut) are exactly zero, so
// a skin list evaluates to bit-identical totals as the exact list.
func TestEvaluateRowsSkinPairsExactlyZero(t *testing.T) {
	m := testModel(t, 1)
	sys := testWater(10)
	es := NewEvalScratch()
	defer es.Close()
	es.ensure(m)
	es.builder.Skin = 0.8
	var pairs neighbor.Pairs
	es.builder.BuildInto(&pairs, sys, m.Cuts)
	skinPairs := 0
	rows := make([][3]float64, pairs.Len())
	pairE := make([]float64, pairs.Len())
	m.EvaluateRowsInto(es, sys, &pairs, rows, pairE)
	for z := 0; z < pairs.NumReal; z++ {
		if pairs.Dist[z] < pairs.Cut[z] {
			continue
		}
		skinPairs++
		if rows[z] != [3]float64{} || pairE[z] != 0 {
			t.Fatalf("skin pair %d (r=%.3f, rc=%.3f) contributes: row %v, e %g",
				z, pairs.Dist[z], pairs.Cut[z], rows[z], pairE[z])
		}
	}
	if skinPairs == 0 {
		t.Fatal("expected skin-shell pairs in the inflated list")
	}
}
