package core

import (
	"math"

	"repro/internal/atoms"
	"repro/internal/neighbor"
	"repro/internal/tensor"
)

// reuseBucket quantizes an active-pair count to a power-of-two padding
// target (minimum 64). The partial-replay path pads its compacted sub-list
// to the bucket so the compiled-plan cache sees a handful of recurring
// shapes instead of a fresh shape every step — the same shape-stability
// trick as the 5% fake-pair padding, applied to a count that genuinely
// changes step to step.
func reuseBucket(n int) int {
	b := 64
	for b < n {
		b <<= 1
	}
	return b
}

// skinExceeded reports whether any atom has moved at least skin/2 from its
// reference position (unwrapped comparison), the standard Verlet-list
// rebuild trigger: two atoms each under skin/2 cannot change a pair
// distance by skin, so every pair that could enter a cutoff is already in
// the skin-admitted list.
func skinExceeded(skin float64, pos, ref [][3]float64) bool {
	lim := skin / 2
	lim *= lim
	for i := range pos {
		dx := pos[i][0] - ref[i][0]
		dy := pos[i][1] - ref[i][1]
		dz := pos[i][2] - ref[i][2]
		if dx*dx+dy*dy+dz*dz >= lim {
			return true
		}
	}
	return false
}

// EvaluateActiveRowsInto is the partial-replay entry of the temporal-reuse
// engine: it recomputes the per-pair rows and sigma-weighted pair energies
// of ONLY the pairs whose center atom is marked active, leaving every other
// entry of rows/pairE untouched (the caller's cached contribution store).
// Active pairs are gathered — in list order, so each active center's pair
// group stays contiguous and complete — into a compacted sub-list, padded
// to a power-of-two bucket for plan-cache stability, replayed serially
// through the same compiled-plan (or tape) machinery as a full evaluation,
// and scattered back into their canonical slots. Because Allegro's
// per-center sub-graphs are strictly local, the compact replay's rows are
// bitwise identical to the rows a full evaluation would produce for those
// pairs; combined with the caller's canonical slot-order reduction this
// keeps the reuse path deterministic.
//
// Returns the number of real active pairs recomputed. rows and pairE must
// have pairs.Len() entries. The replay is deliberately serial: active-set
// compaction changes the sub-list length every step, and chunked evaluation
// would multiply the set of plan shapes past the cache's capacity.
func (m *Model) EvaluateActiveRowsInto(es *EvalScratch, sys *atoms.System, pairs *neighbor.Pairs, active []bool, rows [][3]float64, pairE []float64) int {
	es.ensure(m)
	if len(rows) != pairs.Len() || len(pairE) != pairs.Len() {
		panic("core: EvaluateActiveRowsInto buffer length mismatch")
	}
	ap := &es.actPairs
	ap.I = ap.I[:0]
	ap.J = ap.J[:0]
	ap.Vec = ap.Vec[:0]
	ap.Dist = ap.Dist[:0]
	ap.Cut = ap.Cut[:0]
	ap.NAtoms = pairs.NAtoms
	es.actSlot = es.actSlot[:0]
	for z := 0; z < pairs.NumReal; z++ {
		if !active[pairs.I[z]] {
			continue
		}
		ap.I = append(ap.I, pairs.I[z])
		ap.J = append(ap.J, pairs.J[z])
		ap.Vec = append(ap.Vec, pairs.Vec[z])
		ap.Dist = append(ap.Dist, pairs.Dist[z])
		ap.Cut = append(ap.Cut, pairs.Cut[z])
		es.actSlot = append(es.actSlot, int32(z))
	}
	nact := len(ap.I)
	ap.NumReal = nact
	if nact == 0 {
		return 0
	}
	ap.PadTo(reuseBucket(nact))
	total := ap.Len()
	if cap(es.actRows) < total {
		es.actRows = make([][3]float64, total)
		es.actPairE = make([]float64, total)
	}
	es.actRows = es.actRows[:total]
	es.actPairE = es.actPairE[:total]

	es.evalCompiled = es.compiledOn(m)
	es.plans.refKernels = es.RefKernels
	es.plans.profile = es.Profile
	es.serialRows(m, sys, ap, es.actRows, es.actPairE)
	if m.Cfg.ZBL {
		addZBLRows(sys, ap, es.actRows, es.actPairE)
	}
	for k := 0; k < nact; k++ {
		t := es.actSlot[k]
		rows[t] = es.actRows[k]
		pairE[t] = es.actPairE[k]
	}
	return nact
}

// ReuseStats counts the work the displacement gate admitted. All counters
// accumulate over the evaluator's lifetime; callers compute windowed rates
// from before/after snapshots.
type ReuseStats struct {
	Steps     int64 // force evaluations served
	FullEvals int64 // steps that ran a full rebuild + evaluation
	// Center and pair activity: Active*/(\*Steps) is the recomputed
	// fraction; its complement is the reuse fraction.
	ActiveCenters int64
	CenterSteps   int64
	ActivePairs   int64
	PairSteps     int64
}

// ReuseFraction returns the fraction of pair work served from cache.
func (s *ReuseStats) ReuseFraction() float64 {
	if s.PairSteps == 0 {
		return 0
	}
	return 1 - float64(s.ActivePairs)/float64(s.PairSteps)
}

// ReuseEvaluator is the displacement-gated incremental force engine: an
// md.InPlacePotential that keeps a Verlet-skin pair list, a cached
// per-pair contribution store (force rows + pair energies), and a
// per-center accumulated environment-displacement bound. Each step, centers
// whose bound stays at or under Eps reuse their cached rows; the rest are
// recomputed through Model.EvaluateActiveRowsInto and their bounds reset.
// The force and energy reduction always runs over the full canonical pair
// list in slot order, so results are deterministic regardless of which
// centers happened to be active.
//
// Soundness: every pair distance of a reused center has changed by at most
// its accumulated bound (see neighbor.AccumulateEnvBound), so per-pair
// geometry staleness is at most Eps angstroms — the knob trades a bounded,
// user-chosen geometry lag against skipped network evaluations. Eps = 0
// recomputes every center every step.
//
// Like Evaluator, a ReuseEvaluator serves one simulation loop at a time.
type ReuseEvaluator struct {
	Model   *Model
	Scratch *EvalScratch
	// Eps is the per-center environment-displacement tolerance in angstroms.
	Eps float64
	// Skin is the Verlet shell of the cached pair list; rebuilds trigger
	// when any atom moves skin/2 from the reference build. Must be > 0 (the
	// cached store is only valid while the pair list's topology holds).
	Skin float64
	// PadFactor >= 1 is the shape-stabilizing padding of full evaluations.
	PadFactor float64

	maxPairs int
	pairs    neighbor.Pairs
	refPos   [][3]float64 // positions at the last rebuild (skin trigger)
	prevPos  [][3]float64 // positions at the previous force call
	d        []float64    // per-atom step displacement magnitudes
	envB     []float64    // accumulated per-center environment bounds
	active   []bool
	rows     [][3]float64 // cached per-pair force rows (padded length)
	pairE    []float64    // cached sigma-weighted pair energies
	lastWork int
	started  bool
	stats    ReuseStats
}

// NewReuseEvaluator returns a reuse engine with the paper's 5% padding and
// the default 0.5 A Verlet skin.
func NewReuseEvaluator(m *Model, eps float64) *ReuseEvaluator {
	return &ReuseEvaluator{
		Model:     m,
		Scratch:   NewEvalScratch(),
		Eps:       eps,
		Skin:      0.5,
		PadFactor: 1.05,
	}
}

// Stats returns a snapshot of the cumulative reuse counters.
func (e *ReuseEvaluator) Stats() ReuseStats { return e.stats }

// sizeState sizes the per-atom state arrays; an atom-count change
// invalidates the cached store and forces a rebuild.
func (e *ReuseEvaluator) sizeState(n int) {
	if len(e.refPos) != n {
		e.refPos = make([][3]float64, n)
		e.prevPos = make([][3]float64, n)
		e.d = make([]float64, n)
		e.envB = make([]float64, n)
		e.active = make([]bool, n)
		e.started = false
	}
}

// EnergyForcesInto implements md.InPlacePotential.
func (e *ReuseEvaluator) EnergyForcesInto(sys *atoms.System, forces [][3]float64) float64 {
	es := e.Scratch
	es.ensure(e.Model)
	n := sys.NumAtoms()
	e.sizeState(n)
	e.stats.Steps++
	if !e.started || e.Skin <= 0 || skinExceeded(e.Skin, sys.Pos, e.refPos) {
		e.fullEvaluate(sys)
	} else {
		e.incremental(sys)
	}
	return e.reduce(sys, forces)
}

// fullEvaluate rebuilds the skin pair list, pads it to the running-maximum
// shape, refreshes the entire contribution store, and resets every bound.
func (e *ReuseEvaluator) fullEvaluate(sys *atoms.System) {
	es := e.Scratch
	es.builder.Skin = e.Skin
	es.builder.BuildInto(&e.pairs, sys, e.Model.Cuts)
	target := e.pairs.Len()
	if e.PadFactor > 1 {
		target = int(math.Ceil(e.PadFactor * float64(e.pairs.NumReal)))
	}
	if target < e.maxPairs {
		target = e.maxPairs
	}
	e.maxPairs = target
	e.pairs.PadTo(target)
	total := e.pairs.Len()
	if cap(e.rows) < total {
		e.rows = make([][3]float64, total)
		e.pairE = make([]float64, total)
	}
	e.rows = e.rows[:total]
	e.pairE = e.pairE[:total]
	e.Model.EvaluateRowsInto(es, sys, &e.pairs, e.rows, e.pairE)
	copy(e.refPos, sys.Pos)
	copy(e.prevPos, sys.Pos)
	for i := range e.envB {
		e.envB[i] = 0
	}
	e.started = true
	e.lastWork = total
	n := int64(sys.NumAtoms())
	e.stats.FullEvals++
	e.stats.ActiveCenters += n
	e.stats.CenterSteps += n
	e.stats.ActivePairs += int64(e.pairs.NumReal)
	e.stats.PairSteps += int64(e.pairs.NumReal)
}

// incremental advances the displacement bounds one step, refreshes the
// geometry of pairs centered on over-threshold atoms, and replays just
// those centers into the cached store.
func (e *ReuseEvaluator) incremental(sys *atoms.System) {
	neighbor.StepDisplacements(sys.Pos, e.prevPos, e.d)
	e.pairs.AccumulateEnvBound(e.d, e.envB)
	nact := 0
	for i, b := range e.envB {
		a := b > e.Eps
		e.active[i] = a
		if a {
			nact++
		}
	}
	copy(e.prevPos, sys.Pos)
	n := int64(sys.NumAtoms())
	e.stats.CenterSteps += n
	e.stats.PairSteps += int64(e.pairs.NumReal)
	if nact == 0 {
		e.stats.ActiveCenters += int64(nact)
		e.lastWork = 0
		return
	}
	npact := 0
	for z := 0; z < e.pairs.NumReal; z++ {
		if e.active[e.pairs.I[z]] {
			npact++
		}
	}
	// When the compacted sub-list would pad out to the full list's size, a
	// partial replay saves nothing over refreshing everything — and the
	// refresh is exact. Take the exact path: same pair list (still
	// skin-valid), current geometry, every bound reset.
	if reuseBucket(npact) >= e.pairs.Len() {
		e.refreshAll(sys)
		return
	}
	e.stats.ActiveCenters += int64(nact)
	for z := 0; z < e.pairs.NumReal; z++ {
		if !e.active[e.pairs.I[z]] {
			continue
		}
		v := sys.Displacement(e.pairs.I[z], e.pairs.J[z])
		e.pairs.Vec[z] = v
		e.pairs.Dist[z] = math.Sqrt(v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
	}
	np := e.Model.EvaluateActiveRowsInto(e.Scratch, sys, &e.pairs, e.active, e.rows, e.pairE)
	e.stats.ActivePairs += int64(np)
	for i := range e.envB {
		if e.active[i] {
			e.envB[i] = 0
		}
	}
	e.lastWork = e.Scratch.actPairs.Len()
}

// refreshAll recomputes the whole contribution store at current positions
// on the existing (skin-valid) pair list — the incremental path's exact
// fallback when the active set grew too large for a partial replay to win.
func (e *ReuseEvaluator) refreshAll(sys *atoms.System) {
	for z := 0; z < e.pairs.NumReal; z++ {
		v := sys.Displacement(e.pairs.I[z], e.pairs.J[z])
		e.pairs.Vec[z] = v
		e.pairs.Dist[z] = math.Sqrt(v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
	}
	e.Model.EvaluateRowsInto(e.Scratch, sys, &e.pairs, e.rows, e.pairE)
	for i := range e.envB {
		e.envB[i] = 0
	}
	n := int64(sys.NumAtoms())
	e.stats.ActiveCenters += n
	e.stats.ActivePairs += int64(e.pairs.NumReal)
	e.lastWork = e.pairs.Len()
}

// reduce folds the cached contribution store into per-atom forces and the
// total energy: canonical slot order, then per-species shifts and
// final-precision rounding — the same ladder as the full engines.
func (e *ReuseEvaluator) reduce(sys *atoms.System, forces [][3]float64) float64 {
	for i := range forces {
		forces[i] = [3]float64{}
	}
	energy := 0.0
	for z := 0; z < e.pairs.NumReal; z++ {
		i, j := e.pairs.I[z], e.pairs.J[z]
		row := e.rows[z]
		forces[i][0] += row[0]
		forces[i][1] += row[1]
		forces[i][2] += row[2]
		forces[j][0] -= row[0]
		forces[j][1] -= row[1]
		forces[j][2] -= row[2]
		energy += e.pairE[z]
	}
	m := e.Model
	for _, sp := range sys.Species {
		energy += m.EnergyShift[m.Idx.Index(sp)]
	}
	if m.Cfg.Precision.Final != tensor.F64 {
		energy = m.Cfg.Precision.Final.Round(energy)
	}
	return energy
}

// EnergyForces implements md.Potential (fresh slices; hot loops use
// EnergyForcesInto).
func (e *ReuseEvaluator) EnergyForces(sys *atoms.System) (float64, [][3]float64) {
	forces := make([][3]float64, sys.NumAtoms())
	energy := e.EnergyForcesInto(sys, forces)
	return energy, forces
}

// PairWork reports the padded pair count the last call actually evaluated
// (0 when everything came from cache).
func (e *ReuseEvaluator) PairWork() int { return e.lastWork }

// ExecMode names the execution mode of the underlying evaluations.
func (e *ReuseEvaluator) ExecMode() string {
	if e.Scratch.compiledOn(e.Model) {
		return "compiled"
	}
	return "tape"
}

// Close releases the worker pools.
func (e *ReuseEvaluator) Close() { e.Scratch.Close() }

// ZBLPotential is the fast inner force of RESPA multi-timestepping: exactly
// the model's short-range ZBL component, evaluated on its own Verlet-skin
// pair list clamped to min(model cutoff, ZBL switch-off). The clamp keeps
// the inner list tiny (nothing beyond 1.4 A matters) while the recorded
// cutoffs reproduce the full engine's activation gate bit for bit, so the
// slow force (full minus inner) contains no short-range stiffness.
type ZBLPotential struct {
	cuts    *neighbor.CutoffTable
	skin    float64
	builder neighbor.Builder
	pairs   neighbor.Pairs
	refPos  [][3]float64
	started bool
}

// NewZBLPotential derives the inner potential from a model's cutoff table.
func NewZBLPotential(m *Model) *ZBLPotential {
	src := m.Cuts
	n := src.Index.Len()
	rc := make([][]float64, n)
	for i := range rc {
		rc[i] = make([]float64, n)
		for j := range rc[i] {
			v := src.Rc[i][j]
			if v > zblSwitchOff {
				v = zblSwitchOff
			}
			rc[i][j] = v
		}
	}
	return &ZBLPotential{
		cuts: &neighbor.CutoffTable{Index: src.Index, Rc: rc},
		skin: 0.4,
	}
}

// EnergyForcesInto implements md.InPlacePotential: forces is overwritten
// with the pure ZBL forces.
func (p *ZBLPotential) EnergyForcesInto(sys *atoms.System, forces [][3]float64) float64 {
	n := sys.NumAtoms()
	if len(p.refPos) != n {
		p.refPos = make([][3]float64, n)
		p.started = false
	}
	if !p.started || p.skin <= 0 || skinExceeded(p.skin, sys.Pos, p.refPos) {
		p.builder.Skin = p.skin
		p.builder.BuildInto(&p.pairs, sys, p.cuts)
		copy(p.refPos, sys.Pos)
		p.started = true
	} else {
		for z := 0; z < p.pairs.NumReal; z++ {
			v := sys.Displacement(p.pairs.I[z], p.pairs.J[z])
			p.pairs.Vec[z] = v
			p.pairs.Dist[z] = math.Sqrt(v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
		}
	}
	for i := range forces {
		forces[i] = [3]float64{}
	}
	return addZBL(sys, &p.pairs, forces)
}

// EnergyForces implements md.Potential.
func (p *ZBLPotential) EnergyForces(sys *atoms.System) (float64, [][3]float64) {
	forces := make([][3]float64, sys.NumAtoms())
	energy := p.EnergyForcesInto(sys, forces)
	return energy, forces
}

// Close releases the inner builder's workers.
func (p *ZBLPotential) Close() { p.builder.Close() }
