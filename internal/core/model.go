package core

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync"

	"repro/internal/ad"
	"repro/internal/atoms"
	"repro/internal/neighbor"
	"repro/internal/nn"
	"repro/internal/o3"
	"repro/internal/tensor"
	"repro/internal/units"
)

// Model is a trained or trainable Allegro potential.
type Model struct {
	Cfg    Config
	Params *nn.ParamSet
	Idx    *atoms.SpeciesIndex
	Cuts   *neighbor.CutoffTable

	twoBody  *nn.MLP          // [2S+NB] -> latent
	embedLin *tensor.Tensor   // latent -> U (initial tensor channel weights)
	envLins  []*tensor.Tensor // per layer: latent -> U (environment weights)
	chanLins []*tensor.Tensor // per layer: latent -> U (post-TP channel weights)
	latents  []*nn.MLP        // per layer: [latent+U] -> latent
	tpWts    []*tensor.Tensor // per layer: path weights
	tps      []*o3.TensorProduct
	edgeMLP  *nn.MLP // latent -> 1

	// EnergyScale multiplies the network output (global force normalization);
	// EnergyShift is the per-species atomic energy shift mu_Z. Both are set
	// from training-set statistics, not trained.
	EnergyScale float64
	EnergyShift []float64

	// fused caches the weight-folded TPEntry tables per layer (the
	// precomputed einsum("p,pcab->cab") of Sec. V-B2), keyed on the
	// parameter version so training still sees fresh weights: every Params
	// mutation (optimizer step, EMA copy, load) bumps the version and the
	// next evaluation re-folds. The mutex makes concurrent lazy folds from
	// domain-runtime ranks sharing one Model safe; mutating Params while
	// evaluations are in flight is racy, exactly as for the raw weights.
	fused struct {
		sync.Mutex
		version uint64
		valid   bool
		tabs    [][]o3.TPEntry
		packed  [][]o3.TPEntry32 // narrow-compute packed form (same fold)
		// Stable C-sorted copies for the blocked forward contraction
		// kernels (the backward keeps the unsorted path-major tables).
		sortedTabs   [][]o3.TPEntry
		sortedPacked [][]o3.TPEntry32
	}
}

// New constructs a randomly initialized Allegro model. cuts may be nil, in
// which case a uniform DefaultCutoff table is used.
func New(cfg Config, cuts *neighbor.CutoffTable, rng *rand.Rand) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	idx := atoms.NewSpeciesIndex(cfg.Species)
	if cuts == nil {
		cuts = neighbor.NewCutoffTable(idx, cfg.DefaultCutoff)
	}
	m := &Model{
		Cfg:         cfg,
		Params:      nn.NewParamSet(),
		Idx:         idx,
		Cuts:        cuts,
		EnergyScale: 1,
		EnergyShift: make([]float64, idx.Len()),
	}
	s := idx.Len()
	u := cfg.NumChannels

	twoBodySizes := append([]int{2*s + cfg.NumBessel}, cfg.TwoBodyHidden...)
	twoBodySizes = append(twoBodySizes, cfg.LatentDim)
	m.twoBody = nn.NewMLP(m.Params, rng, "two_body", twoBodySizes, true)

	m.embedLin = m.addLinear(rng, "embed", u, cfg.LatentDim)

	sphIrreps := o3.SphericalIrreps(cfg.LMax)
	fullIrreps := o3.FullIrreps(cfg.LMax)
	for l := 0; l < cfg.NumLayers; l++ {
		in1 := fullIrreps
		if l == 0 {
			in1 = sphIrreps
		}
		out := fullIrreps
		if l == cfg.NumLayers-1 {
			// Final layer: only paths that reach scalars matter for the
			// energy; restricting the output eliminates dead paths
			// (the paper's "omitting all tensor product paths that are not
			// symmetrically allowed to eventually contribute to the final
			// scalar outputs").
			out = o3.Irreps{{L: 0, P: o3.Even}}
		}
		tp := o3.NewTensorProduct(in1, sphIrreps, out)
		m.tps = append(m.tps, tp)

		wts := tensor.New(tp.NumPaths())
		for i := range wts.Data {
			wts.Data[i] = 1 + 0.1*rng.NormFloat64()
		}
		m.Params.Add(fmt.Sprintf("layer%d.tp_weights", l), wts)
		m.tpWts = append(m.tpWts, wts)

		m.envLins = append(m.envLins, m.addLinear(rng, fmt.Sprintf("layer%d.env", l), u, cfg.LatentDim))
		m.chanLins = append(m.chanLins, m.addLinear(rng, fmt.Sprintf("layer%d.chan", l), u, cfg.LatentDim))

		latentSizes := append([]int{cfg.LatentDim + u}, cfg.LatentHidden...)
		latentSizes = append(latentSizes, cfg.LatentDim)
		m.latents = append(m.latents, nn.NewMLP(m.Params, rng, fmt.Sprintf("layer%d.latent", l), latentSizes, true))
	}
	m.edgeMLP = nn.NewMLP(m.Params, rng, "edge_energy", []int{cfg.LatentDim, cfg.EdgeHidden, 1}, false)
	m.Params.Quantize(cfg.Precision.Weights)
	return m, nil
}

func (m *Model) addLinear(rng *rand.Rand, name string, out, in int) *tensor.Tensor {
	w := tensor.New(out, in)
	bound := math.Sqrt(3.0 / float64(in))
	for i := range w.Data {
		w.Data[i] = (rng.Float64()*2 - 1) * bound
	}
	m.Params.Add(name+".w", w)
	return w
}

// NumWeights returns the number of trainable scalar parameters.
func (m *Model) NumWeights() int { return m.Params.NumParams() }

// fusedEntries returns the per-layer weight-folded tensor-product entry
// tables, re-folding only when the parameter version moved. The returned
// tables are shared and must be treated as read-only; they stay valid until
// the next Params mutation.
func (m *Model) fusedEntries() [][]o3.TPEntry {
	tabs, _, _, _ := m.fusedTables()
	return tabs
}

// fusedTables returns the per-layer weight-folded entry tables in the
// float64 form, the (narrow-compute) packed float32 form, and the stable
// C-sorted copies of both that the blocked forward contraction kernels
// consume. The sort is stable, so every output component sees the same
// addend order as the unsorted table — the sorted tables are a layout
// change, not an arithmetic one.
func (m *Model) fusedTables() ([][]o3.TPEntry, [][]o3.TPEntry32, [][]o3.TPEntry, [][]o3.TPEntry32) {
	v := m.Params.Version()
	f := &m.fused
	f.Lock()
	defer f.Unlock()
	if !f.valid || f.version != v {
		if f.tabs == nil {
			f.tabs = make([][]o3.TPEntry, len(m.tps))
		}
		for l, tp := range m.tps {
			f.tabs[l] = tp.FlattenInto(f.tabs[l][:0], m.tpWts[l].Data)
		}
		if m.Cfg.Precision.Compute != tensor.F64 {
			if f.packed == nil {
				f.packed = make([][]o3.TPEntry32, len(m.tps))
			}
			for l := range m.tps {
				f.packed[l] = o3.PackEntries32(f.packed[l], f.tabs[l])
			}
		}
		if f.sortedTabs == nil {
			f.sortedTabs = make([][]o3.TPEntry, len(m.tps))
		}
		for l := range m.tps {
			f.sortedTabs[l] = append(f.sortedTabs[l][:0], f.tabs[l]...)
			o3.SortEntriesByC(f.sortedTabs[l])
		}
		if m.Cfg.Precision.Compute != tensor.F64 {
			if f.sortedPacked == nil {
				f.sortedPacked = make([][]o3.TPEntry32, len(m.tps))
			}
			for l := range m.tps {
				f.sortedPacked[l] = append(f.sortedPacked[l][:0], f.packed[l]...)
				o3.SortEntries32ByC(f.sortedPacked[l])
			}
		}
		f.version = v
		f.valid = true
	}
	return f.tabs, f.packed, f.sortedTabs, f.sortedPacked
}

// graph holds the tape nodes of one forward pass that later stages need.
type graph struct {
	tape    *ad.Tape
	binder  *nn.Binder
	rvec    *ad.Value // [Z,3] pair displacement leaf
	energy  *ad.Value // scalar network energy (before scale/shift/ZBL)
	pairE   *ad.Value // [Z,1] per-pair energies (after envelope)
	latent  *ad.Value // final latent (diagnostics)
	numReal int
}

// buildGraph runs the Allegro forward pass over the given pair list on a
// fresh heap-backed tape. train selects whether parameters are bound with
// gradients.
func (m *Model) buildGraph(sys *atoms.System, pairs *neighbor.Pairs, train bool) *graph {
	cfg := &m.Cfg
	tape := ad.NewTape(cfg.Precision.Compute, cfg.Precision.Weights)
	b := nn.NewBinder(tape, train)
	g := m.buildGraphOn(tape, b, sys, pairs, train)
	return &g
}

// buildGraphOn runs the forward pass on a caller-provided tape and binder —
// the steady-state entry point: with an arena-backed tape (EvalScratch) all
// activations, gradients, and nodes come from recycled storage.
func (m *Model) buildGraphOn(tape *ad.Tape, b *nn.Binder, sys *atoms.System, pairs *neighbor.Pairs, train bool) graph {
	cfg := &m.Cfg
	z := pairs.Len()

	// Pair displacement leaf (forces flow into this).
	rv := tape.Alloc(z, 3)
	for i := 0; i < z; i++ {
		copy(rv.Row(i), pairs.Vec[i][:])
	}
	rvec := tape.Leaf(rv, true)

	// Species one-hot for (center, neighbor).
	s := m.Idx.Len()
	oneHot := tape.Alloc(z, 2*s)
	sigma := tape.Alloc(z).Data
	for i := 0; i < z; i++ {
		ti := m.Idx.Index(sys.Species[pairs.I[i]])
		tj := m.Idx.Index(sys.Species[pairs.J[i]])
		oneHot.Data[i*2*s+ti] = 1
		oneHot.Data[i*2*s+s+tj] = 1
		sigma[i] = m.EnergyScale
	}

	fused := m.fusedEntries() // frozen-weight TP tables (re-folded on Params mutation)

	r := tape.Norm(rvec)                            // [Z,1]
	env := tape.PolyCutoff(r, pairs.Cut, cfg.PolyP) // [Z,1]
	bes := tape.Bessel(r, pairs.Cut, cfg.NumBessel) // [Z,NB]
	besCut := tape.MulBroadcastLast(bes, env)
	sph := tape.SphHarm(rvec, cfg.LMax) // [Z,(lmax+1)^2]

	// Two-body latent.
	h := m.twoBody.Apply(b, tape.Concat(tape.Const(oneHot), besCut)) // [Z,L]

	// Initial tensor features: V0[z,u,:] = (embed h)[z,u] * Y[z,:].
	chanW := tape.Linear(h, b.Bind(m.embedLin), nil) // [Z,U]
	v := tape.OuterMul(chanW, sph)                   // [Z,U,sphW]

	scaleRes := 1 / math.Sqrt(2.0)
	for l := 0; l < cfg.NumLayers; l++ {
		tp := m.tps[l]
		// Environment weights, cutoff-enveloped so distant pairs fade out.
		wEnv := tape.MulBroadcastLast(tape.Linear(h, b.Bind(m.envLins[l]), nil), env) // [Z,U]
		envSum := tape.EnvSum(wEnv, sph, pairs.I, pairs.NAtoms, cfg.envNorm())        // [N,U,sphW]
		envPairs := tape.GatherRows(envSum, pairs.I)                                  // [Z,U,sphW]
		tpo := tape.TensorProduct(tp, v, envPairs, b.Bind(m.tpWts[l]), fused[l])      // [Z,U,outW]

		// Scalar (0e) channel extraction feeds the latent track.
		scalIdx := tp.Out.ScalarIndex()
		lo, hi := tp.Out.Block(scalIdx)
		scal := tape.Reshape(tape.SliceLast(tpo, lo, hi), z, cfg.NumChannels) // [Z,U]

		// Latent update with residual mixing.
		hNew := m.latents[l].Apply(b, tape.Concat(h, scal))
		h = tape.Scale(tape.Add(h, hNew), scaleRes)

		// Scalar track controls the tensor track through channel weights.
		cw := tape.Linear(h, b.Bind(m.chanLins[l]), nil) // [Z,U]
		v = tape.MulBroadcastLast(tpo, cw)
	}

	// Final per-pair energies, enveloped for smoothness at the cutoff.
	eRaw := m.edgeMLP.Apply(b, h)             // [Z,1]
	ePair := tape.MulBroadcastLast(eRaw, env) // [Z,1]

	// sigma-weighted sum: E_net = sum_z sigma_{Z_i(z)} E_z. This is the
	// "final" stage the paper keeps in double precision; emulate narrower
	// final stages by quantizing pair energies before the reduction.
	if cfg.Precision.Final != tensor.F64 {
		ePair = tape.Scale(ePair, 1) // copy, then quantize below
		ePair.T.Quantize(cfg.Precision.Final)
	}
	eNet := tape.WeightedSumAll(ePair, sigma)

	return graph{tape: tape, binder: b, rvec: rvec, energy: eNet, pairE: ePair, latent: h, numReal: pairs.NumReal}
}

// Result holds one evaluation of the potential.
type Result struct {
	Energy   float64      // total energy (eV), including shifts and ZBL
	Forces   [][3]float64 // per-atom forces (eV/A)
	PairWork int          // number of ordered pairs evaluated (incl. padding)
}

// Evaluate computes energy and forces for sys, building a fresh neighbor
// list.
func (m *Model) Evaluate(sys *atoms.System) *Result {
	pairs := neighbor.Build(sys, m.Cuts)
	return m.EvaluatePairs(sys, pairs)
}

// EvaluatePairs computes energy and forces with a caller-provided pair list
// (MD reuses padded lists across steps).
func (m *Model) EvaluatePairs(sys *atoms.System, pairs *neighbor.Pairs) *Result {
	g := m.buildGraph(sys, pairs, false)
	g.tape.Backward(g.energy)
	res := &Result{PairWork: pairs.Len()}
	res.Energy = g.energy.T.Data[0]
	// Per-species shifts.
	for _, sp := range sys.Species {
		res.Energy += m.EnergyShift[m.Idx.Index(sp)]
	}
	// Assemble forces from pair-vector gradients: rvec_z = r_j - r_i.
	res.Forces = make([][3]float64, sys.NumAtoms())
	grad := g.rvec.Grad()
	for zi := 0; zi < pairs.NumReal; zi++ {
		i, j := pairs.I[zi], pairs.J[zi]
		row := grad.Row(zi)
		for k := 0; k < 3; k++ {
			res.Forces[i][k] += row[k]
			res.Forces[j][k] -= row[k]
		}
	}
	if m.Cfg.ZBL {
		ezbl := addZBL(sys, pairs, res.Forces)
		res.Energy += ezbl
	}
	if m.Cfg.Precision.Final != tensor.F64 {
		res.Energy = m.Cfg.Precision.Final.Round(res.Energy)
	}
	return res
}

// EnergyGradients runs a training-mode forward/backward at (optionally
// displaced) positions and returns the scalar network energy plus parameter
// gradients through the binder. disp may be nil; otherwise it is added to
// the pair vectors (the R-operator displacement of the force-loss trick
// operates on pair vectors directly).
func (m *Model) energyGradients(sys *atoms.System, pairs *neighbor.Pairs, disp []float64) (*graph, float64) {
	if disp != nil {
		// Displace pair vectors consistently with atomic displacement u:
		// rvec_z = r_j - r_i  =>  rvec_z += u_j - u_i.
		shifted := &neighbor.Pairs{
			I: pairs.I, J: pairs.J, Dist: make([]float64, pairs.Len()),
			Vec: make([][3]float64, pairs.Len()), Cut: pairs.Cut,
			NumReal: pairs.NumReal, NAtoms: pairs.NAtoms,
		}
		for z := 0; z < pairs.Len(); z++ {
			i, j := pairs.I[z], pairs.J[z]
			var v [3]float64
			for k := 0; k < 3; k++ {
				v[k] = pairs.Vec[z][k] + disp[3*j+k] - disp[3*i+k]
			}
			shifted.Vec[z] = v
			shifted.Dist[z] = math.Sqrt(v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
		}
		pairs = shifted
	}
	g := m.buildGraph(sys, pairs, true)
	g.tape.Backward(g.energy)
	return g, g.energy.T.Data[0]
}

// ForcesOnly returns just the forces (used by MD hot loops).
func (m *Model) ForcesOnly(sys *atoms.System, pairs *neighbor.Pairs) [][3]float64 {
	return m.EvaluatePairs(sys, pairs).Forces
}

// AtomicEnergies returns the per-atom energy decomposition
// E_i = sigma * sum_j E_ij + mu_{Z_i} (+ half ZBL shares).
func (m *Model) AtomicEnergies(sys *atoms.System) []float64 {
	pairs := neighbor.Build(sys, m.Cuts)
	g := m.buildGraph(sys, pairs, false)
	out := make([]float64, sys.NumAtoms())
	for z := 0; z < pairs.NumReal; z++ {
		out[pairs.I[z]] += m.EnergyScale * g.pairE.T.Data[z]
	}
	for i, sp := range sys.Species {
		out[i] += m.EnergyShift[m.Idx.Index(sp)]
	}
	if m.Cfg.ZBL {
		f := make([][3]float64, sys.NumAtoms())
		e := addZBL(sys, pairs, f)
		for i := range out {
			out[i] += e / float64(len(out))
		}
	}
	return out
}

// EnergyForcesCentered evaluates the potential counting only ordered pairs
// whose center atom is owned (domain.CenterPotential). Per-species shifts
// are added for owned atoms only, and the ZBL term runs over the same
// centered pair subset, so summing over a partition of ownership reproduces
// the serial energy and forces exactly — Allegro's strict locality is what
// makes this identity hold.
func (m *Model) EnergyForcesCentered(sys *atoms.System, owned []bool) (float64, [][3]float64) {
	pairs := neighbor.Build(sys, m.Cuts).FilterCenters(owned)
	forces := make([][3]float64, sys.NumAtoms())
	energy := 0.0
	if pairs.NumReal > 0 {
		g := m.buildGraph(sys, pairs, false)
		g.tape.Backward(g.energy)
		energy = g.energy.T.Data[0]
		grad := g.rvec.Grad()
		for z := 0; z < pairs.NumReal; z++ {
			i, j := pairs.I[z], pairs.J[z]
			row := grad.Row(z)
			for k := 0; k < 3; k++ {
				forces[i][k] += row[k]
				forces[j][k] -= row[k]
			}
		}
		if m.Cfg.ZBL {
			energy += addZBL(sys, pairs, forces)
		}
	}
	for i, sp := range sys.Species {
		if owned[i] {
			energy += m.EnergyShift[m.Idx.Index(sp)]
		}
	}
	if m.Cfg.Precision.Final != tensor.F64 {
		energy = m.Cfg.Precision.Final.Round(energy)
	}
	return energy, forces
}

// SetScaleShift installs the energy normalization: scale multiplies the
// network output, shift[s] is added per atom of species index s.
func (m *Model) SetScaleShift(scale float64, shift []float64) {
	if len(shift) != m.Idx.Len() {
		panic("core: shift length must match species count")
	}
	m.EnergyScale = scale
	copy(m.EnergyShift, shift)
}

// SpeciesOf exposes the model's species index (needed by callers building
// systems for this model).
func (m *Model) SpeciesOf() []units.Species { return m.Cfg.Species }
