package core

import (
	"math"

	"repro/internal/ad"
	"repro/internal/atoms"
	"repro/internal/neighbor"
	"repro/internal/nn"
	"repro/internal/par"
	"repro/internal/plan"
	"repro/internal/tensor"
)

// EvalScratch is the reusable buffer arena of the steady-state force path:
// the neighbor builder and pair list, the arena-backed autodiff tape, the
// binder, the per-worker force shards, and the Result the evaluation writes
// into. It is the caller-owned analogue of the stable allocation footprint
// the paper obtains from padded inputs (Sec. V-C): after a warm-up
// evaluation on a given system size, Model.EvaluateInto and
// Model.EvaluatePairsInto recycle everything here and steady-state heap
// traffic drops to the tape's fixed set of small node closures.
//
// Ownership contract: an EvalScratch belongs to exactly one evaluation loop
// (one MD simulation, one benchmark, one calibration run). It must not be
// shared between goroutines, and the *Result returned by the evaluation
// methods points into the scratch — its fields are valid only until the
// next evaluation. Call Close when discarding a scratch whose worker pools
// have been started.
type EvalScratch struct {
	// Workers overrides the evaluation worker count for this scratch;
	// 0 defers to the model's Config.Workers. Domain-decomposition ranks
	// set it to their per-rank budget so that ranks x workers stays
	// bounded instead of every rank spinning up a full-size pool.
	Workers int
	// Compiled overrides the execution mode for this scratch; CompiledAuto
	// defers to the model's Config.Compiled (which itself defaults to the
	// compiled record-once/replay plans).
	Compiled CompiledMode
	// RefKernels replays compiled plans with the pre-kern reference kernels
	// (unpacked matmuls, unblocked TP contractions) instead of the
	// register-blocked microkernel layer. Outputs are bit-identical either
	// way; the toggle exists for same-machine A/B kernel benchmarking
	// (BENCH_simd) and as a diagnostic oracle.
	RefKernels bool
	// Profile, when non-nil, accumulates a per-kernel-class wall-time
	// breakdown of every compiled replay this scratch runs serially (the
	// allegro-bench -kernels instrumentation). Parallel chunk workers do not
	// profile — the breakdown is a serial-path diagnostic, and per-op timers
	// add overhead — so pair it with a single-worker configuration.
	Profile *plan.KernelProfile

	builder neighbor.Builder
	pairs   neighbor.Pairs
	arena   *tensor.Arena
	tape    *ad.Tape
	binder  *nn.Binder
	res     Result
	pool    par.Pool
	workers int

	// Compiled-mode state: the serial context's plan cache and the mode
	// resolved for the current dispatch (read by the hoisted worker fns).
	plans        planCache
	evalCompiled bool

	// Per-worker force shards and the per-dispatch state the hoisted job
	// closures read (set before Run, cleared after).
	shards    [][][3]float64
	curPairs  *neighbor.Pairs
	grad      *tensor.Tensor
	forces    [][3]float64
	chunk     int
	atomChunk int
	nShards   int
	shardFn   func(int)
	mergeFn   func(int)

	// Per-worker sub-evaluations for the chunked-graph parallel path (each
	// worker owns a full tape/arena/binder over its center-contiguous pair
	// range).
	workerScr []*workerEval
	bounds    []int
	evalModel *Model
	evalSys   *atoms.System
	evalFn    func(int)

	// Row-harvest mode (EvaluateRowsInto): per-pair outputs written straight
	// into caller buffers instead of being reduced to per-atom forces.
	rowsOut    [][3]float64
	pairEOut   []float64
	rowsScale  float64
	evalRowsFn func(int)

	// Partial-replay compaction scratch (EvaluateActiveRowsInto): the
	// cached-contribution store's active sub-chunk — gathered pairs, their
	// origin indices, and the compact row buffers the replay writes before
	// scattering back into canonical order.
	actPairs neighbor.Pairs
	actSlot  []int32
	actRows  [][3]float64
	actPairE []float64
}

// workerEval is one worker's private evaluation state: Allegro's strict
// locality means the pairs centered on a set of atoms form an independent
// sub-graph, so each worker runs the full forward/backward pass over its
// center-contiguous chunk on its own arena-backed tape.
type workerEval struct {
	arena  *tensor.Arena
	tape   *ad.Tape
	binder *nn.Binder
	plans  planCache      // compiled-mode per-worker plan cache
	sub    neighbor.Pairs // read-only view into the parent pair list
	energy float64
}

// NewEvalScratch returns an empty scratch; buffers grow on first use.
func NewEvalScratch() *EvalScratch { return &EvalScratch{} }

// Close releases the scratch's worker pools (neighbor build and force
// reduction). The scratch remains usable; pools restart on demand.
func (es *EvalScratch) Close() {
	es.builder.Close()
	es.pool.Close()
}

// ArenaBytes reports the tensor-arena footprint (diagnostics/tests).
func (es *EvalScratch) ArenaBytes() int {
	if es.arena == nil {
		return 0
	}
	return es.arena.Bytes()
}

// UsePlanRegistry binds the scratch (and every chunk worker it spawns) to a
// shared cross-tenant plan pool: compiled-mode dispatches lease programs
// from r instead of compiling privately, so one compilation serves every
// evaluation context bound to the same registry. Leased programs stay with
// the scratch — lock-free, allocation-free — until ReleasePlans hands them
// back; callers serving independent requests release between requests.
// Pass nil to detach (the scratch reverts to private compilation).
func (es *EvalScratch) UsePlanRegistry(r *PlanRegistry) {
	es.plans.releaseAll()
	es.plans.shared = r
	for _, ws := range es.workerScr {
		ws.plans.releaseAll()
		ws.plans.shared = r
	}
}

// ReleasePlans returns every plan leased from the registry bound by
// UsePlanRegistry to the shared pool (a no-op for an unbound scratch). The
// next evaluation re-leases on demand; with a recurring shape that is one
// mutex-guarded map lookup, not a recompilation.
func (es *EvalScratch) ReleasePlans() {
	es.plans.releaseAll()
	for _, ws := range es.workerScr {
		ws.plans.releaseAll()
	}
}

// ensure binds the scratch to a model's precision scheme and worker count.
func (es *EvalScratch) ensure(m *Model) {
	if es.arena == nil {
		es.arena = tensor.NewArena()
	}
	if es.tape == nil || es.tape.Compute != m.Cfg.Precision.Compute || es.tape.Store != m.Cfg.Precision.Weights {
		es.tape = ad.NewTapeArena(m.Cfg.Precision.Compute, m.Cfg.Precision.Weights, es.arena)
		es.binder = nn.NewBinder(es.tape, false)
	}
	req := m.Cfg.Workers
	if es.Workers != 0 {
		req = es.Workers
	}
	es.workers = par.Workers(req, 0)
	es.builder.Workers = es.workers
}

// compiledOn resolves the execution mode for one dispatch: the scratch
// override wins, then the model's Config, and Auto means compiled. Training
// never comes through here (it builds tapes directly), so this only ever
// picks between two bit-identical inference paths.
func (es *EvalScratch) compiledOn(m *Model) bool {
	mode := es.Compiled
	if mode == CompiledAuto {
		mode = m.Cfg.Compiled
	}
	return mode.Enabled()
}

// serialEval runs one full forward+backward over the pair list in the
// serial context and returns the network energy plus the [Z,3] pair-vector
// adjoint rows (compiled: the plan's force rows; tape: rvec.Grad()).
func (es *EvalScratch) serialEval(m *Model, sys *atoms.System, pairs *neighbor.Pairs) (float64, *tensor.Tensor) {
	if es.evalCompiled {
		pg := es.plans.run(m, sys, pairs)
		return pg.Energy(), pg.ForceRows()
	}
	es.tape.Reset()
	es.binder.Reset(es.tape, false)
	g := m.buildGraphOn(es.tape, es.binder, sys, pairs, false)
	g.tape.Backward(g.energy)
	return g.energy.T.Data[0], g.rvec.Grad()
}

// EvaluateInto computes energy and forces for sys, rebuilding the neighbor
// list into the scratch's reusable pair list. The returned Result points
// into the scratch (see the EvalScratch ownership contract).
func (m *Model) EvaluateInto(es *EvalScratch, sys *atoms.System) *Result {
	es.ensure(m)
	es.builder.BuildInto(&es.pairs, sys, m.Cuts)
	return m.EvaluatePairsInto(es, sys, &es.pairs)
}

// minEvalPairsPerWorker gates the chunked-graph parallel evaluation; a full
// sub-graph per worker only pays off with enough pairs to fill it.
const minEvalPairsPerWorker = 64

// EvaluatePairsInto computes energy and forces with a caller-provided pair
// list on the scratch's recycled buffers. With more than one worker the
// evaluation itself is parallel: the pair list is split at center-atom
// boundaries (Allegro's strict locality makes center-grouped pair chunks
// independent sub-graphs — the identity the paper's domain decomposition
// rests on) and each worker runs forward+backward over its chunk on a
// private arena-backed tape; per-chunk energies and force shards merge in
// fixed chunk order, so results are bitwise reproducible for a given
// worker count. The returned Result points into the scratch.
func (m *Model) EvaluatePairsInto(es *EvalScratch, sys *atoms.System, pairs *neighbor.Pairs) *Result {
	es.ensure(m)
	res := &es.res
	res.PairWork = pairs.Len()
	n := sys.NumAtoms()
	if cap(res.Forces) < n {
		res.Forces = make([][3]float64, n)
	}
	res.Forces = res.Forces[:n]

	es.evalCompiled = es.compiledOn(m)
	es.plans.refKernels = es.RefKernels
	es.plans.profile = es.Profile
	nw := es.workers
	if maxW := pairs.NumReal / minEvalPairsPerWorker; nw > maxW {
		nw = maxW
	}
	if nw > 1 {
		res.Energy = es.evaluateChunked(m, sys, pairs, nw)
	} else {
		energy, rows := es.serialEval(m, sys, pairs)
		res.Energy = energy
		es.assembleForces(pairs, rows, res.Forces)
	}
	for _, sp := range sys.Species {
		res.Energy += m.EnergyShift[m.Idx.Index(sp)]
	}
	if m.Cfg.ZBL {
		res.Energy += addZBL(sys, pairs, res.Forces)
	}
	if m.Cfg.Precision.Final != tensor.F64 {
		res.Energy = m.Cfg.Precision.Final.Round(res.Energy)
	}
	return res
}

// evaluateChunked is the parallel evaluation path: nw center-contiguous
// pair chunks, one independent sub-graph per worker, deterministic merges.
// It returns the summed network energy and writes merged forces into
// es.res.Forces.
func (es *EvalScratch) evaluateChunked(m *Model, sys *atoms.System, pairs *neighbor.Pairs, nw int) float64 {
	es.computeBounds(pairs, nw)
	nw = len(es.bounds) - 1 // boundary snapping may merge chunks
	if nw <= 1 {
		// Degenerate split (e.g. one giant center); fall back to serial.
		energy, rows := es.serialEval(m, sys, pairs)
		es.assembleForces(pairs, rows, es.res.Forces)
		return energy
	}

	es.prepareChunkWorkers(m, pairs, nw)
	n := sys.NumAtoms()
	es.growShards(nw, n)

	es.evalModel, es.evalSys, es.curPairs = m, sys, pairs
	es.nShards = nw
	es.atomChunk = (n + nw - 1) / nw
	if es.evalFn == nil {
		es.evalFn = es.runWorkerEval
		es.mergeFn = es.runMerge
	}
	es.forces = es.res.Forces
	es.pool.Run(nw, es.evalFn)
	es.pool.Run(nw, es.mergeFn)
	es.evalModel, es.evalSys, es.curPairs, es.forces = nil, nil, nil, nil

	energy := 0.0
	for w := 0; w < nw; w++ {
		energy += es.workerScr[w].energy
	}
	return energy
}

// prepareChunkWorkers sizes per-worker tapes/binders and carves the
// center-contiguous sub-views for the chunk boundaries in es.bounds.
func (es *EvalScratch) prepareChunkWorkers(m *Model, pairs *neighbor.Pairs, nw int) {
	for len(es.workerScr) < nw {
		ws := &workerEval{arena: tensor.NewArena()}
		ws.tape = ad.NewTapeArena(m.Cfg.Precision.Compute, m.Cfg.Precision.Weights, ws.arena)
		ws.binder = nn.NewBinder(ws.tape, false)
		ws.plans.shared = es.plans.shared // inherit the scratch's registry binding
		es.workerScr = append(es.workerScr, ws)
	}
	for w := 0; w < nw; w++ {
		ws := es.workerScr[w]
		ws.plans.refKernels = es.RefKernels
		if ws.tape.Compute != m.Cfg.Precision.Compute || ws.tape.Store != m.Cfg.Precision.Weights {
			ws.tape = ad.NewTapeArena(m.Cfg.Precision.Compute, m.Cfg.Precision.Weights, ws.arena)
			ws.binder = nn.NewBinder(ws.tape, false)
		}
		lo, hi := es.bounds[w], es.bounds[w+1]
		ws.sub = neighbor.Pairs{
			I: pairs.I[lo:hi], J: pairs.J[lo:hi], Vec: pairs.Vec[lo:hi],
			Dist: pairs.Dist[lo:hi], Cut: pairs.Cut[lo:hi],
			NAtoms: pairs.NAtoms,
		}
		// Real pairs occupy the list prefix; padding (if any) sits in the
		// final chunks. Clamp each view's real count accordingly.
		real := pairs.NumReal - lo
		if real < 0 {
			real = 0
		}
		if real > hi-lo {
			real = hi - lo
		}
		ws.sub.NumReal = real
	}
}

// computeBounds splits the pair list into up to nw chunks of roughly equal
// size, snapping each boundary forward to the next center-atom change so
// every center's pairs land in one chunk (required for the environment
// sums to be exact). Padding pairs all share center 0 at the tail, so the
// last chunk absorbs them.
func (es *EvalScratch) computeBounds(pairs *neighbor.Pairs, nw int) {
	total := pairs.Len()
	es.bounds = es.bounds[:0]
	es.bounds = append(es.bounds, 0)
	for w := 1; w < nw; w++ {
		pos := w * total / nw
		prev := es.bounds[len(es.bounds)-1]
		if pos <= prev {
			continue
		}
		for pos < total && pairs.I[pos] == pairs.I[pos-1] {
			pos++
		}
		if pos > prev && pos < total {
			es.bounds = append(es.bounds, pos)
		}
	}
	es.bounds = append(es.bounds, total)
}

// workerEvalPass runs one worker's sub-graph forward+backward (compiled
// replay or tape, per the dispatch mode) and returns its adjoint rows.
func (es *EvalScratch) workerEvalPass(ws *workerEval) *tensor.Tensor {
	if es.evalCompiled {
		pg := ws.plans.run(es.evalModel, es.evalSys, &ws.sub)
		ws.energy = pg.Energy()
		return pg.ForceRows()
	}
	ws.tape.Reset()
	ws.binder.Reset(ws.tape, false)
	g := es.evalModel.buildGraphOn(ws.tape, ws.binder, es.evalSys, &ws.sub, false)
	ws.tape.Backward(g.energy)
	ws.energy = g.energy.T.Data[0]
	return g.rvec.Grad()
}

// runWorkerEval runs one worker's sub-graph forward+backward and fills its
// force shard.
func (es *EvalScratch) runWorkerEval(w int) {
	ws := es.workerScr[w]
	rows := es.workerEvalPass(ws)
	sh := es.shards[w]
	for i := range sh {
		sh[i] = [3]float64{}
	}
	accumPairRange(&ws.sub, rows, sh, 0, ws.sub.NumReal)
}

// EvaluateRowsInto computes the raw per-pair outputs of one evaluation
// instead of reducing them to per-atom forces: rows[z] receives the force
// row dE/d rvec_z (to be added to the center atom and subtracted from the
// neighbor) and pairE[z] the sigma-weighted pair energy, both including the
// pair's ZBL share when the model enables it. Rows are what the domain
// runtime's ranks exchange: each rank evaluates its local pair list here —
// chunked-parallel on arena-backed tapes, exactly like EvaluatePairsInto —
// and hands the rows to a deterministic, canonically ordered global
// reduction. Per-species energy shifts and final-precision rounding are
// atom- and total-level terms and are left to that reducer.
//
// rows and pairE must have pairs.Len() entries; both are fully overwritten.
func (m *Model) EvaluateRowsInto(es *EvalScratch, sys *atoms.System, pairs *neighbor.Pairs, rows [][3]float64, pairE []float64) {
	es.ensure(m)
	if len(rows) != pairs.Len() || len(pairE) != pairs.Len() {
		panic("core: EvaluateRowsInto buffer length mismatch")
	}
	es.evalCompiled = es.compiledOn(m)
	es.plans.refKernels = es.RefKernels
	es.plans.profile = es.Profile
	nw := es.workers
	if maxW := pairs.NumReal / minEvalPairsPerWorker; nw > maxW {
		nw = maxW
	}
	chunked := false
	if nw > 1 {
		es.computeBounds(pairs, nw)
		nw = len(es.bounds) - 1 // boundary snapping may merge chunks
		chunked = nw > 1
	}
	if chunked {
		es.prepareChunkWorkers(m, pairs, nw)
		es.evalModel, es.evalSys = m, sys
		es.rowsOut, es.pairEOut, es.rowsScale = rows, pairE, m.EnergyScale
		if es.evalRowsFn == nil {
			es.evalRowsFn = es.runWorkerEvalRows
		}
		es.pool.Run(nw, es.evalRowsFn)
		es.evalModel, es.evalSys = nil, nil
		es.rowsOut, es.pairEOut = nil, nil
	} else {
		es.serialRows(m, sys, pairs, rows, pairE)
	}
	if m.Cfg.ZBL {
		addZBLRows(sys, pairs, rows, pairE)
	}
}

// serialRows runs one forward+backward over the pair list on the scratch's
// serial context and harvests the rows and sigma-weighted pair energies (no
// ZBL, no shifts — callers layer those). The dispatch mode (es.evalCompiled
// and the plan-cache flags) must already be resolved.
func (es *EvalScratch) serialRows(m *Model, sys *atoms.System, pairs *neighbor.Pairs, rows [][3]float64, pairE []float64) {
	if es.evalCompiled {
		pg := es.plans.run(m, sys, pairs)
		harvestRows(pg.ForceRows(), pg.PairEnergies(), 0, pairs.Len(), rows, pairE, m.EnergyScale)
		return
	}
	es.tape.Reset()
	es.binder.Reset(es.tape, false)
	g := m.buildGraphOn(es.tape, es.binder, sys, pairs, false)
	g.tape.Backward(g.energy)
	harvestRows(g.rvec.Grad(), g.pairE.T.Data, 0, pairs.Len(), rows, pairE, m.EnergyScale)
}

// runWorkerEvalRows runs one worker's sub-graph forward+backward and writes
// its pair range of the caller's row buffers (ranges are disjoint, so no
// merge phase is needed).
func (es *EvalScratch) runWorkerEvalRows(w int) {
	ws := es.workerScr[w]
	lo := es.bounds[w]
	if es.evalCompiled {
		pg := ws.plans.run(es.evalModel, es.evalSys, &ws.sub)
		harvestRows(pg.ForceRows(), pg.PairEnergies(), lo, lo+ws.sub.Len(), es.rowsOut, es.pairEOut, es.rowsScale)
		return
	}
	ws.tape.Reset()
	ws.binder.Reset(ws.tape, false)
	g := es.evalModel.buildGraphOn(ws.tape, ws.binder, es.evalSys, &ws.sub, false)
	ws.tape.Backward(g.energy)
	harvestRows(g.rvec.Grad(), g.pairE.T.Data, lo, lo+ws.sub.Len(), es.rowsOut, es.pairEOut, es.rowsScale)
}

// harvestRows copies one sub-evaluation's pair-vector adjoints and
// sigma-weighted pair energies into the global row buffers at [lo,hi).
func harvestRows(grad *tensor.Tensor, pe []float64, lo, hi int, rows [][3]float64, pairE []float64, scale float64) {
	for z := lo; z < hi; z++ {
		row := grad.Row(z - lo)
		rows[z] = [3]float64{row[0], row[1], row[2]}
		pairE[z] = scale * pe[z-lo]
	}
}

// minPairsPerWorker keeps the sharded reduction from dispatching workers on
// trivially small pair lists.
const minPairsPerWorker = 512

// assembleForces turns per-pair displacement gradients into per-atom forces
// (rvec_z = r_j - r_i, so the gradient row adds to atom i and subtracts
// from atom j). With more than one worker the pair range is sharded: each
// worker accumulates into a private full-length force shard, then the atom
// range is sharded and each worker sums the shards for its atoms in fixed
// shard order — deterministic for a given worker count, and allocation-free
// once the shards are warm.
func (es *EvalScratch) assembleForces(pairs *neighbor.Pairs, grad *tensor.Tensor, forces [][3]float64) {
	nz := pairs.NumReal
	nw := es.workers
	if maxW := nz / minPairsPerWorker; nw > maxW {
		nw = maxW
	}
	if nw <= 1 {
		for i := range forces {
			forces[i] = [3]float64{}
		}
		accumPairRange(pairs, grad, forces, 0, nz)
		return
	}
	n := len(forces)
	es.growShards(nw, n)
	es.curPairs, es.grad, es.forces = pairs, grad, forces
	es.nShards = nw
	es.chunk = (nz + nw - 1) / nw
	es.atomChunk = (n + nw - 1) / nw
	if es.shardFn == nil {
		es.shardFn = es.runShard
		es.mergeFn = es.runMerge
	}
	es.pool.Run(nw, es.shardFn)
	es.pool.Run(nw, es.mergeFn)
	es.curPairs, es.grad, es.forces = nil, nil, nil
}

// growShards sizes nw force shards of n atoms each, reusing capacity.
func (es *EvalScratch) growShards(nw, n int) {
	if cap(es.shards) < nw {
		grown := make([][][3]float64, nw)
		copy(grown, es.shards)
		es.shards = grown
	}
	es.shards = es.shards[:nw]
	for w := range es.shards {
		if cap(es.shards[w]) < n {
			es.shards[w] = make([][3]float64, n)
		}
		es.shards[w] = es.shards[w][:n]
	}
}

// runShard zeroes one worker's force shard and accumulates its pair range.
func (es *EvalScratch) runShard(w int) {
	sh := es.shards[w]
	for i := range sh {
		sh[i] = [3]float64{}
	}
	lo := w * es.chunk
	hi := lo + es.chunk
	if hi > es.curPairs.NumReal {
		hi = es.curPairs.NumReal
	}
	accumPairRange(es.curPairs, es.grad, sh, lo, hi)
}

// runMerge sums the shards for one worker's atom range in fixed shard
// order (the deterministic reduction).
func (es *EvalScratch) runMerge(w int) {
	lo := w * es.atomChunk
	hi := lo + es.atomChunk
	if hi > len(es.forces) {
		hi = len(es.forces)
	}
	for i := lo; i < hi; i++ {
		var f [3]float64
		for s := 0; s < es.nShards; s++ {
			sh := es.shards[s]
			f[0] += sh[i][0]
			f[1] += sh[i][1]
			f[2] += sh[i][2]
		}
		es.forces[i] = f
	}
}

// accumPairRange is the serial inner loop of the force reduction.
func accumPairRange(pairs *neighbor.Pairs, grad *tensor.Tensor, forces [][3]float64, lo, hi int) {
	for z := lo; z < hi; z++ {
		i, j := pairs.I[z], pairs.J[z]
		row := grad.Row(z)
		forces[i][0] += row[0]
		forces[i][1] += row[1]
		forces[i][2] += row[2]
		forces[j][0] -= row[0]
		forces[j][1] -= row[1]
		forces[j][2] -= row[2]
	}
}

// Evaluator binds a Model to an EvalScratch and a neighbor-list padding
// policy, turning the zero-allocation pipeline into an md.Potential: MD
// loops call EnergyForcesInto every step and the evaluation recycles all
// buffers. The pair list is padded to the running maximum of
// ceil(PadFactor * real pairs), so input shapes are constant from step to
// step once equilibrated — exactly the paper's 5% fake-pair padding trick
// (Sec. V-C, Fig. 5), which here keeps the arena layout frozen.
//
// An Evaluator (like its scratch) serves one simulation loop at a time; the
// underlying Model stays read-only and may be shared across Evaluators.
type Evaluator struct {
	Model   *Model
	Scratch *EvalScratch
	// PadFactor >= 1 is the shape-stabilizing pair padding (paper: 1.05).
	// Values <= 1 disable padding.
	PadFactor float64

	maxPairs int
}

// NewEvaluator returns an Evaluator with the paper's 5% padding.
func NewEvaluator(m *Model) *Evaluator {
	return &Evaluator{Model: m, Scratch: NewEvalScratch(), PadFactor: 1.05}
}

// evaluate rebuilds the padded pair list and runs the scratch evaluation.
func (e *Evaluator) evaluate(sys *atoms.System) *Result {
	es := e.Scratch
	es.ensure(e.Model)
	es.builder.BuildInto(&es.pairs, sys, e.Model.Cuts)
	if e.PadFactor > 1 {
		target := int(math.Ceil(e.PadFactor * float64(es.pairs.NumReal)))
		if target < e.maxPairs {
			target = e.maxPairs
		}
		e.maxPairs = target
		es.pairs.PadTo(target)
	}
	return e.Model.EvaluatePairsInto(es, sys, &es.pairs)
}

// EnergyForces implements md.Potential. The returned force slice is freshly
// allocated (callers may retain it); hot loops should use EnergyForcesInto.
func (e *Evaluator) EnergyForces(sys *atoms.System) (float64, [][3]float64) {
	r := e.evaluate(sys)
	out := make([][3]float64, len(r.Forces))
	copy(out, r.Forces)
	return r.Energy, out
}

// EnergyForcesInto implements md.InPlacePotential: forces must have
// sys.NumAtoms() entries and is overwritten.
func (e *Evaluator) EnergyForcesInto(sys *atoms.System, forces [][3]float64) float64 {
	r := e.evaluate(sys)
	copy(forces, r.Forces)
	return r.Energy
}

// PairWork reports the padded pair count of the last evaluation.
func (e *Evaluator) PairWork() int { return e.Scratch.res.PairWork }

// ExecMode names the execution mode of this evaluator's force calls
// ("compiled" or "tape") — recorded by perfmodel measurements so cluster
// calibrations never mix anchors across modes.
func (e *Evaluator) ExecMode() string {
	if e.Scratch.compiledOn(e.Model) {
		return "compiled"
	}
	return "tape"
}

// Close releases the evaluator's worker pools.
func (e *Evaluator) Close() { e.Scratch.Close() }
