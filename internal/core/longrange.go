package core

import (
	"math"

	"repro/internal/atoms"
	"repro/internal/neighbor"
	"repro/internal/units"
)

// LongRange implements the explicit long-range electrostatics extension the
// paper points to ("due to the strict locality, explicit long-range
// electrostatic interactions are straightforward to add to the Allegro
// potential", Sec. VI-A): fixed per-species charges with Wolf summation — a
// damped, charge-neutralized, strictly finite-range approximation of the
// Ewald sum that needs no FFT and composes with spatial decomposition
// exactly like the learned model does.
//
//	E = sum_{i<j, r<Rc} q_i q_j [erfc(a r)/r - erfc(a Rc)/Rc]
//	    - [erfc(a Rc)/(2 Rc) + a/sqrt(pi)] sum_i q_i^2
type LongRange struct {
	// Charges assigns a fixed partial charge (units of e) per species.
	Charges map[units.Species]float64
	// Alpha is the damping parameter (1/A); 0.2-0.3 is typical.
	Alpha float64
	// Cutoff is the real-space truncation radius (A).
	Cutoff float64
}

// NewWaterLongRange returns a TIP3P-flavored charge assignment for water.
func NewWaterLongRange() *LongRange {
	return &LongRange{
		Charges: map[units.Species]float64{units.O: -0.834, units.H: 0.417},
		Alpha:   0.25,
		Cutoff:  9.0,
	}
}

// charge returns the charge of a species (0 when unassigned).
func (lr *LongRange) charge(sp units.Species) float64 { return lr.Charges[sp] }

// EnergyForces evaluates the Wolf-summed electrostatic energy and forces.
func (lr *LongRange) EnergyForces(sys *atoms.System) (float64, [][3]float64) {
	n := sys.NumAtoms()
	forces := make([][3]float64, n)
	idxSpecies := make([]units.Species, n)
	copy(idxSpecies, sys.Species)

	// Self/neutralization term.
	rc := lr.Cutoff
	a := lr.Alpha
	shift := math.Erfc(a*rc) / rc
	self := math.Erfc(a*rc)/(2*rc) + a/math.Sqrt(math.Pi)
	e := 0.0
	for _, sp := range sys.Species {
		q := lr.charge(sp)
		e -= units.CoulombConst * self * q * q
	}

	// Pair sum over a uniform-cutoff neighbor list (ordered pairs visited
	// twice: half weights).
	speciesSet := map[units.Species]bool{}
	for _, sp := range sys.Species {
		speciesSet[sp] = true
	}
	order := make([]units.Species, 0, len(speciesSet))
	for sp := range speciesSet {
		order = append(order, sp)
	}
	// Deterministic ordering for the index.
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if order[j] < order[i] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	cuts := neighbor.NewCutoffTable(atoms.NewSpeciesIndex(order), rc)
	pairs := neighbor.Build(sys, cuts)
	for z := 0; z < pairs.NumReal; z++ {
		i, j := pairs.I[z], pairs.J[z]
		qq := lr.charge(sys.Species[i]) * lr.charge(sys.Species[j])
		if qq == 0 {
			continue
		}
		r := pairs.Dist[z]
		v := pairs.Vec[z]
		erfcar := math.Erfc(a * r)
		pair := units.CoulombConst * qq * (erfcar/r - shift)
		e += 0.5 * pair
		// dE/dr of the damped Coulomb term.
		dpair := units.CoulombConst * qq *
			(-erfcar/(r*r) - 2*a/math.Sqrt(math.Pi)*math.Exp(-a*a*r*r)/r)
		fr := 0.5 * dpair / r
		for k := 0; k < 3; k++ {
			// v = r_j - r_i: accumulate -gradient as force.
			forces[j][k] -= fr * v[k]
			forces[i][k] += fr * v[k]
		}
	}
	return e, forces
}

// TotalCharge returns the system's net charge under this assignment (Wolf
// summation assumes near-neutral systems).
func (lr *LongRange) TotalCharge(sys *atoms.System) float64 {
	q := 0.0
	for _, sp := range sys.Species {
		q += lr.charge(sp)
	}
	return q
}
