package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/neighbor"
)

// TestEvaluateActiveRowsFullActiveMatchesFull is the exactness core of the
// partial-replay path: with every center marked active, the compacted
// replay must reproduce the full EvaluateRowsInto rows and pair energies
// bit for bit — per-center sub-graphs are strictly local, so gathering a
// center's pair group into a compacted sub-list cannot change its bits.
func TestEvaluateActiveRowsFullActiveMatchesFull(t *testing.T) {
	m := testModel(t, 1)
	sys := testWater(9)
	es := NewEvalScratch()
	defer es.Close()
	es.ensure(m)
	var pairs neighbor.Pairs
	es.builder.Skin = 0.5
	es.builder.BuildInto(&pairs, sys, m.Cuts)

	want := make([][3]float64, pairs.Len())
	wantE := make([]float64, pairs.Len())
	m.EvaluateRowsInto(es, sys, &pairs, want, wantE)

	active := make([]bool, sys.NumAtoms())
	for i := range active {
		active[i] = true
	}
	rows := make([][3]float64, pairs.Len())
	pairE := make([]float64, pairs.Len())
	nact := m.EvaluateActiveRowsInto(es, sys, &pairs, active, rows, pairE)
	if nact != pairs.NumReal {
		t.Fatalf("full-active replay recomputed %d pairs, want %d", nact, pairs.NumReal)
	}
	for z := 0; z < pairs.NumReal; z++ {
		if rows[z] != want[z] || pairE[z] != wantE[z] {
			t.Fatalf("pair %d diverged: row %v vs %v, e %.17g vs %.17g",
				z, rows[z], want[z], pairE[z], wantE[z])
		}
	}
}

// TestEvaluateActiveRowsPartialTouchesOnlyActive checks the scatter
// discipline: pairs of inactive centers keep whatever the caller cached
// (here a sentinel), pairs of active centers land bit-identical to a full
// evaluation, and the returned count is exactly the active pair total.
func TestEvaluateActiveRowsPartialTouchesOnlyActive(t *testing.T) {
	m := testModel(t, 1)
	sys := testWater(11)
	es := NewEvalScratch()
	defer es.Close()
	es.ensure(m)
	var pairs neighbor.Pairs
	es.builder.Skin = 0.5
	es.builder.BuildInto(&pairs, sys, m.Cuts)

	want := make([][3]float64, pairs.Len())
	wantE := make([]float64, pairs.Len())
	m.EvaluateRowsInto(es, sys, &pairs, want, wantE)

	active := make([]bool, sys.NumAtoms())
	for i := range active {
		active[i] = i%3 == 0
	}
	sentinel := [3]float64{math.Inf(1), math.Inf(-1), math.NaN()}
	rows := make([][3]float64, pairs.Len())
	pairE := make([]float64, pairs.Len())
	for z := range rows {
		rows[z] = sentinel
		pairE[z] = -12345
	}
	nact := m.EvaluateActiveRowsInto(es, sys, &pairs, active, rows, pairE)

	wantAct := 0
	for z := 0; z < pairs.NumReal; z++ {
		if active[pairs.I[z]] {
			wantAct++
			if rows[z] != want[z] || pairE[z] != wantE[z] {
				t.Fatalf("active pair %d diverged from the full evaluation", z)
			}
		} else if rows[z][0] != sentinel[0] || pairE[z] != -12345 {
			t.Fatalf("inactive pair %d was overwritten", z)
		}
	}
	if nact != wantAct {
		t.Fatalf("replay recomputed %d pairs, want %d", nact, wantAct)
	}
	if wantAct == 0 || wantAct == pairs.NumReal {
		t.Fatalf("degenerate active split: %d of %d", wantAct, pairs.NumReal)
	}
}

// TestReuseEvaluatorMatchesEvaluate drives the gated engine along a
// synthetic deterministic "trajectory" (small per-call position jitters,
// well under the skin trigger) and compares every call against the
// allocating reference evaluation — forces within the row-reduction
// tolerance, full evals only when the skin demands them.
func TestReuseEvaluatorMatchesEvaluate(t *testing.T) {
	for _, eps := range []float64{0, 0.02, 0.1} {
		m := testModel(t, 1)
		sys := testWater(7)
		e := NewReuseEvaluator(m, eps)
		rng := rand.New(rand.NewPCG(21, 22))
		for step := 0; step < 8; step++ {
			if step > 0 {
				for i := range sys.Pos {
					for k := 0; k < 3; k++ {
						sys.Pos[i][k] += 0.01 * rng.NormFloat64()
					}
				}
			}
			energy, forces := e.EnergyForces(sys)
			want := m.Evaluate(sys)
			// eps bounds the geometry staleness behind cached rows: the
			// deviation must vanish at eps = 0 and otherwise stay of order
			// eps times the local force curvature — which is steep here (the
			// random jitter strains ZBL core contacts), so the eps > 0
			// budget is generous. The sharp accuracy gate runs on a real
			// trajectory (TestSimulationReuseSerialDriftBounded and the
			// BENCH_reuse sweep); this test pins exactness at eps = 0 and
			// boundedness plus bookkeeping above it. The energy deviation is
			// extensive, so its budget also scales with atom count.
			tol := 1e-9 + 60*eps
			etol := 1e-9 + 2*eps*float64(sys.NumAtoms())
			if math.Abs(energy-want.Energy) > etol {
				t.Fatalf("eps %g step %d: energy %.12g vs %.12g", eps, step, energy, want.Energy)
			}
			for i := range forces {
				for k := 0; k < 3; k++ {
					if d := math.Abs(forces[i][k] - want.Forces[i][k]); d > tol {
						t.Fatalf("eps %g step %d atom %d: force deviates by %g (tol %g)", eps, step, i, d, tol)
					}
				}
			}
		}
		st := e.Stats()
		if st.Steps != 8 || st.FullEvals < 1 {
			t.Fatalf("eps %g: stats %+v", eps, st)
		}
		if eps == 0 && st.ActivePairs != st.PairSteps {
			t.Fatalf("eps 0 must recompute every pair: %+v", st)
		}
		if eps == 0.1 && st.ActivePairs >= st.PairSteps {
			t.Fatalf("eps 0.1 served nothing from cache: %+v", st)
		}
		e.Close()
	}
}

// TestReuseEvaluatorFullRefreshFallback forces the everything-active case
// without breaching the skin: the engine must take the exact full-refresh
// path on the cached list (no rebuild — FullEvals stays put) and still
// match the reference evaluation.
func TestReuseEvaluatorFullRefreshFallback(t *testing.T) {
	m := testModel(t, 1)
	sys := testWater(13)
	e := NewReuseEvaluator(m, 0.01)
	defer e.Close()
	e.EnergyForces(sys) // initial build
	full := e.Stats().FullEvals

	// Shift every atom by 0.05 A: over eps everywhere, under skin/2 = 0.25.
	for i := range sys.Pos {
		sys.Pos[i][0] += 0.05
	}
	energy, forces := e.EnergyForces(sys)
	st := e.Stats()
	if st.FullEvals != full {
		t.Fatalf("fallback must reuse the cached list, not rebuild (FullEvals %d -> %d)", full, st.FullEvals)
	}
	if st.ActivePairs != st.PairSteps {
		t.Fatalf("everything-active step must account all pair work: %+v", st)
	}
	want := m.Evaluate(sys)
	if math.Abs(energy-want.Energy) > 1e-9 {
		t.Fatalf("fallback energy %.12g vs %.12g", energy, want.Energy)
	}
	for i := range forces {
		for k := 0; k < 3; k++ {
			if d := math.Abs(forces[i][k] - want.Forces[i][k]); d > 1e-9 {
				t.Fatalf("fallback force mismatch at atom %d: %g", i, d)
			}
		}
	}
}
