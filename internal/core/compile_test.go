package core

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/atoms"
	"repro/internal/neighbor"
	"repro/internal/tensor"
	"repro/internal/units"
)

// mixedCluster builds nm three-atom molecules cycling through the given
// species, scattered on a jittered grid (>= 3 species exercises the one-hot
// and per-pair cutoff paths of the compiled plans).
func mixedCluster(rng *rand.Rand, species []units.Species, nm int) *atoms.System {
	sys := atoms.NewSystem(3 * nm)
	for w := 0; w < 3*nm; w++ {
		sys.Species[w] = species[w%len(species)]
	}
	for w := 0; w < nm; w++ {
		base := [3]float64{float64(w%3) * 3.1, float64((w/3)%3) * 3.1, float64(w/9) * 3.1}
		jit := func() float64 { return rng.NormFloat64() * 0.05 }
		sys.Pos[3*w] = [3]float64{base[0] + jit(), base[1] + jit(), base[2] + jit()}
		sys.Pos[3*w+1] = [3]float64{base[0] + 0.98 + jit(), base[1] + jit(), base[2] + jit()}
		sys.Pos[3*w+2] = [3]float64{base[0] - 0.30 + jit(), base[1] + 0.93 + jit(), base[2] + jit()}
	}
	return sys
}

// TestCompiledMatchesTape is the correctness bar of the compiled inference
// engine: across precision configs, species mixes, worker counts (serial,
// chunked, ragged chunk tails), and pair-list padding, compiled replay must
// reproduce the tape path's energies, forces, and row harvests exactly —
// the two paths perform operation-for-operation identical arithmetic.
func TestCompiledMatchesTape(t *testing.T) {
	precisions := []struct {
		name string
		pc   PrecisionConfig
	}{
		{"exact", ExactPrecision()},
		{"production", ProductionPrecision()},
		// Off-diagonal combinations: narrow tiles over unrounded storage
		// (the fused-SiLU rounding chain differs per pair) and a narrowed
		// final stage (exercises the final-quantize op).
		{"tf32-over-f64", PrecisionConfig{Final: tensor.F64, Weights: tensor.F64, Compute: tensor.TF32}},
		{"f32-final", PrecisionConfig{Final: tensor.F32, Weights: tensor.F32, Compute: tensor.F32}},
	}
	speciesSets := [][]units.Species{
		{units.H, units.O},
		{units.H, units.C, units.O}, // >= 3 species
	}
	for _, pr := range precisions {
		for si, species := range speciesSets {
			cfg := DefaultConfig(species)
			cfg.LMax = 2
			cfg.NumChannels = 2
			cfg.LatentDim = 8
			cfg.TwoBodyHidden = []int{8}
			cfg.LatentHidden = []int{8}
			cfg.EdgeHidden = 4
			cfg.NumBessel = 4
			cfg.AvgNumNeighbors = 4
			cfg.Precision = pr.pc
			m, err := New(cfg, nil, rand.New(rand.NewPCG(uint64(si)+7, 1)))
			if err != nil {
				t.Fatal(err)
			}
			m.SetScaleShift(0.37, make([]float64, m.Idx.Len()))
			rng := rand.New(rand.NewPCG(uint64(si)+11, 5))
			sys := mixedCluster(rng, species, 9)

			for _, pad := range []int{0, 17} { // 17 forces a ragged padded tail
				pairs := neighbor.Build(sys, m.Cuts)
				if pad > 0 {
					pairs.PadTo(pairs.Len() + pad)
				}
				for _, workers := range []int{1, 3, 8} {
					name := fmt.Sprintf("%s/species=%d/pad=%d/workers=%d", pr.name, len(species), pad, workers)

					tape := NewEvalScratch()
					tape.Workers = workers
					tape.Compiled = CompiledOff
					comp := NewEvalScratch()
					comp.Workers = workers
					comp.Compiled = CompiledOn

					rt := m.EvaluatePairsInto(tape, sys, pairs)
					eT := rt.Energy
					fT := append([][3]float64(nil), rt.Forces...)
					rc := m.EvaluatePairsInto(comp, sys, pairs)
					if rc.Energy != eT {
						t.Fatalf("%s: energy tape %v vs compiled %v", name, eT, rc.Energy)
					}
					for i := range fT {
						if rc.Forces[i] != fT[i] {
							t.Fatalf("%s: force[%d] tape %v vs compiled %v", name, i, fT[i], rc.Forces[i])
						}
					}

					// Row-level entry point (the domain runtime's path).
					rowsT := make([][3]float64, pairs.Len())
					peT := make([]float64, pairs.Len())
					rowsC := make([][3]float64, pairs.Len())
					peC := make([]float64, pairs.Len())
					m.EvaluateRowsInto(tape, sys, pairs, rowsT, peT)
					m.EvaluateRowsInto(comp, sys, pairs, rowsC, peC)
					for z := range rowsT {
						if rowsC[z] != rowsT[z] || peC[z] != peT[z] {
							t.Fatalf("%s: row %d tape (%v,%v) vs compiled (%v,%v)",
								name, z, rowsT[z], peT[z], rowsC[z], peC[z])
						}
					}
					tape.Close()
					comp.Close()
				}
			}
		}
	}
}

// TestKernKernelsMatchReference drives the same compiled plans through both
// kernel sets — the register-blocked/packed kern layer (the default) and the
// pre-kern reference kernels (RefKernels) — and requires exact agreement in
// energies, forces, and row harvests. Together with TestCompiledMatchesTape
// (tape vs kern) this pins all three execution paths to the same bits.
func TestKernKernelsMatchReference(t *testing.T) {
	for _, pr := range []struct {
		name string
		pc   PrecisionConfig
	}{
		{"exact", ExactPrecision()},
		{"production", ProductionPrecision()},
		{"tf32-over-f64", PrecisionConfig{Final: tensor.F64, Weights: tensor.F64, Compute: tensor.TF32}},
	} {
		t.Run(pr.name, func(t *testing.T) {
			species := []units.Species{units.H, units.C, units.O}
			cfg := DefaultConfig(species)
			cfg.LMax = 2
			cfg.NumChannels = 2
			cfg.LatentDim = 8
			cfg.TwoBodyHidden = []int{8}
			cfg.LatentHidden = []int{8}
			cfg.EdgeHidden = 4
			cfg.NumBessel = 4
			cfg.AvgNumNeighbors = 4
			cfg.Precision = pr.pc
			m, err := New(cfg, nil, rand.New(rand.NewPCG(19, 1)))
			if err != nil {
				t.Fatal(err)
			}
			m.SetScaleShift(0.37, make([]float64, m.Idx.Len()))
			rng := rand.New(rand.NewPCG(23, 5))
			sys := mixedCluster(rng, species, 9)
			pairs := neighbor.Build(sys, m.Cuts)
			pairs.PadTo(pairs.Len() + 11) // ragged tiles and tail batches

			ref := NewEvalScratch()
			ref.Compiled = CompiledOn
			ref.RefKernels = true
			kernScr := NewEvalScratch()
			kernScr.Compiled = CompiledOn
			defer ref.Close()
			defer kernScr.Close()

			rr := m.EvaluatePairsInto(ref, sys, pairs)
			eR := rr.Energy
			fR := append([][3]float64(nil), rr.Forces...)
			rk := m.EvaluatePairsInto(kernScr, sys, pairs)
			if rk.Energy != eR {
				t.Fatalf("energy ref %v vs kern %v", eR, rk.Energy)
			}
			for i := range fR {
				if rk.Forces[i] != fR[i] {
					t.Fatalf("force[%d] ref %v vs kern %v", i, fR[i], rk.Forces[i])
				}
			}

			rowsR := make([][3]float64, pairs.Len())
			peR := make([]float64, pairs.Len())
			rowsK := make([][3]float64, pairs.Len())
			peK := make([]float64, pairs.Len())
			m.EvaluateRowsInto(ref, sys, pairs, rowsR, peR)
			m.EvaluateRowsInto(kernScr, sys, pairs, rowsK, peK)
			for z := range rowsR {
				if rowsK[z] != rowsR[z] || peK[z] != peR[z] {
					t.Fatalf("row %d ref (%v,%v) vs kern (%v,%v)", z, rowsR[z], peR[z], rowsK[z], peK[z])
				}
			}
		})
	}
}

// TestPlanCacheReuse checks the plan-cache ownership contract: repeated
// evaluations of one shape replay the same Program pointer with zero heap
// allocations, and a parameter mutation (version bump) recompiles.
func TestPlanCacheReuse(t *testing.T) {
	for _, pr := range []struct {
		name string
		pc   PrecisionConfig
	}{
		{"exact", ExactPrecision()},
		{"production", ProductionPrecision()},
	} {
		t.Run(pr.name, func(t *testing.T) {
			cfg := tinyConfig()
			cfg.Precision = pr.pc
			m, err := New(cfg, nil, rand.New(rand.NewPCG(3, 1)))
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewPCG(4, 5))
			sys := waterCluster(rng, 6)
			pairs := neighbor.Build(sys, m.Cuts)

			es := NewEvalScratch()
			es.Workers = 1
			defer es.Close()
			m.EvaluatePairsInto(es, sys, pairs)

			key := planKey{pairs.Len(), pairs.NAtoms}
			pg1 := es.plans.plans[key]
			if pg1 == nil {
				t.Fatal("no plan cached after a compiled evaluation")
			}
			m.EvaluatePairsInto(es, sys, pairs)
			if es.plans.plans[key] != pg1 {
				t.Fatal("same shape recompiled on the second call")
			}
			if allocs := testing.AllocsPerRun(10, func() {
				m.EvaluatePairsInto(es, sys, pairs)
			}); allocs != 0 {
				t.Fatalf("steady-state compiled evaluation allocates %v/op, want 0", allocs)
			}

			// Parameter mutation must invalidate the cached fold.
			m.Params.Bump()
			m.EvaluatePairsInto(es, sys, pairs)
			if es.plans.plans[key] == pg1 {
				t.Fatal("plan survived a parameter version bump")
			}
		})
	}
}
