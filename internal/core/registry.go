package core

import (
	"sync"

	"repro/internal/plan"
)

// PlanRegistryStats is a snapshot of a registry's counters. Hits count
// acquisitions served from the shared pool (a plan compiled for one tenant
// replayed for another); Misses count acquisitions that had to compile;
// Evictions count programs dropped because the parameter version (or the
// model/precision binding) moved; Pooled and Leased describe the current
// population.
type PlanRegistryStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Compiles  uint64 `json:"compiles"`
	Evictions uint64 `json:"evictions"`
	Pooled    int    `json:"pooled"`
	Leased    int    `json:"leased"`
	Shapes    int    `json:"shapes"`
}

// PlanRegistry is the cross-tenant pool of compiled inference plans: one
// shared cache of plan.Programs per (model, chunk shape), validated against
// nn.ParamSet.Version on every acquisition, amortizing plan compilation and
// slab memory across every evaluation context that uses it — instead of each
// EvalScratch compiling (and holding) a private copy of the same program.
//
// A plan.Program carries replay state (its activation and gradient slabs),
// so sharing is by *lease*, not by concurrent use: an EvalScratch bound to
// the registry (EvalScratch.UsePlanRegistry) checks a program out on first
// dispatch of a shape, replays it privately — zero allocations and no
// registry traffic while the shape recurs — and hands it back with
// EvalScratch.ReleasePlans when its request completes. Two tenants hitting
// the same shape concurrently get two program instances (the pool compiles a
// second on demand and keeps both); sequential requests share one.
//
// Invalidation piggybacks on the nn.ParamSet version contract: acquire and
// release both compare the model's current version against the one the
// pooled programs were compiled for, and drop (never hand out) stale
// programs. Invalidate() additionally empties the pool eagerly, for weight
// swaps that want the memory back immediately. The registry is safe for
// concurrent use; the weights themselves are not — callers that mutate
// parameters must drain or gate in-flight evaluations first (see
// internal/serve's weight-swap gate).
type PlanRegistry struct {
	mu      sync.Mutex
	model   *Model
	version uint64
	prec    PrecisionConfig
	free    map[planKey][]*plan.Program
	leased  int

	hits      uint64
	misses    uint64
	compiles  uint64
	evictions uint64
}

// NewPlanRegistry returns an empty registry for the model. The binding is
// not exclusive — acquire revalidates the model on every call — but one
// registry serves one model at a time; a different model evicts the pool
// exactly like a version bump.
func NewPlanRegistry(m *Model) *PlanRegistry {
	return &PlanRegistry{model: m, free: map[planKey][]*plan.Program{}}
}

// revalidate drops the pool if the (model, version, precision) binding
// moved. Caller holds r.mu.
func (r *PlanRegistry) revalidate(m *Model, v uint64) {
	if r.model == m && r.version == v && r.prec == m.Cfg.Precision {
		return
	}
	r.dropAllLocked()
	r.model, r.version, r.prec = m, v, m.Cfg.Precision
}

// dropAllLocked evicts every pooled program. Caller holds r.mu.
func (r *PlanRegistry) dropAllLocked() {
	for k, list := range r.free {
		r.evictions += uint64(len(list))
		delete(r.free, k)
	}
}

// acquire leases a program for the shape, compiling one when the pool has
// none free. The caller owns the returned program until it releases it.
func (r *PlanRegistry) acquire(m *Model, z, nAtoms int) *plan.Program {
	v := m.Params.Version()
	key := planKey{z, nAtoms}

	r.mu.Lock()
	r.revalidate(m, v)
	if list := r.free[key]; len(list) > 0 {
		pg := list[len(list)-1]
		r.free[key] = list[:len(list)-1]
		r.leased++
		r.hits++
		r.mu.Unlock()
		return pg
	}
	r.misses++
	r.compiles++
	r.leased++
	r.mu.Unlock()

	// Compile outside the lock: compilation is the expensive path, and
	// distinct shapes (or a second instance of a hot shape) must not
	// serialize behind it.
	return m.compilePlan(z, nAtoms)
}

// release returns a leased program to the pool. Programs whose compile-time
// binding no longer matches the model's current version are dropped instead
// of pooled, so a stale plan can never be handed to a later acquirer.
func (r *PlanRegistry) release(m *Model, v uint64, prec PrecisionConfig, key planKey, pg *plan.Program) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.leased--
	if r.model != m || r.version != v || r.prec != prec ||
		v != m.Params.Version() || prec != m.Cfg.Precision {
		r.evictions++
		return
	}
	r.free[key] = append(r.free[key], pg)
}

// Invalidate eagerly evicts every pooled program. Lazy invalidation (the
// version check on acquire/release) already guarantees correctness; this
// releases the slab memory of a retired weight set immediately and makes
// the eviction visible in Stats.
func (r *PlanRegistry) Invalidate() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dropAllLocked()
	// Force the next acquire to rebind by moving the recorded version off
	// any live value (revalidate compares against the model's counter).
	r.model = nil
}

// Stats snapshots the registry counters.
func (r *PlanRegistry) Stats() PlanRegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	pooled, shapes := 0, 0
	for _, list := range r.free {
		if len(list) > 0 {
			shapes++
			pooled += len(list)
		}
	}
	return PlanRegistryStats{
		Hits: r.hits, Misses: r.misses, Compiles: r.compiles,
		Evictions: r.evictions, Pooled: pooled, Leased: r.leased,
		Shapes: shapes,
	}
}
