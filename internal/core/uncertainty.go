package core

import (
	"math"
	"math/rand/v2"

	"repro/internal/atoms"
	"repro/internal/neighbor"
)

// UncertaintyModel implements the single-model uncertainty extension the
// paper anticipates ("natural adaptation of Gaussian mixture models in
// Allegro will open the possibility of large-scale uncertainty-aware
// simulations using a single model, as opposed to ensembles", Sec. VIII,
// following Zhu et al. [42]): a Gaussian mixture fitted in the final
// per-pair latent space of a trained model. Pairs whose latents fall in
// low-density regions of the training distribution get high negative
// log-likelihood — a calibration-free out-of-distribution signal.
type UncertaintyModel struct {
	model *Model
	// Diagonal-covariance mixture components.
	weights []float64
	means   [][]float64
	vars    [][]float64
}

// PairLatents runs a forward pass and returns the final latent vector of
// every real ordered pair.
func (m *Model) PairLatents(sys *atoms.System) [][]float64 {
	pairs := neighbor.Build(sys, m.Cuts)
	g := m.buildGraph(sys, pairs, false)
	lat := g.latent.T
	out := make([][]float64, pairs.NumReal)
	for z := 0; z < pairs.NumReal; z++ {
		out[z] = append([]float64(nil), lat.Row(z)...)
	}
	return out
}

// FitUncertainty fits a k-component diagonal GMM (k-means initialization,
// one variance-update pass) on the pair latents of the training frames.
func FitUncertainty(m *Model, frames []*atoms.Frame, k int, seed uint64) *UncertaintyModel {
	var all [][]float64
	for _, f := range frames {
		all = append(all, m.PairLatents(f.Sys)...)
	}
	if len(all) == 0 {
		panic("core: FitUncertainty with no pairs")
	}
	if k > len(all) {
		k = len(all)
	}
	dim := len(all[0])
	rng := rand.New(rand.NewPCG(seed, 0x63B4))
	// k-means++ style seeding: first random, then farthest-point.
	centers := make([][]float64, 0, k)
	centers = append(centers, append([]float64(nil), all[rng.IntN(len(all))]...))
	for len(centers) < k {
		best, bestD := 0, -1.0
		for i, x := range all {
			d := math.Inf(1)
			for _, c := range centers {
				if dd := sqDist(x, c); dd < d {
					d = dd
				}
			}
			if d > bestD {
				best, bestD = i, d
			}
		}
		centers = append(centers, append([]float64(nil), all[best]...))
	}
	assign := make([]int, len(all))
	for iter := 0; iter < 10; iter++ {
		for i, x := range all {
			bi, bd := 0, math.Inf(1)
			for ci, c := range centers {
				if d := sqDist(x, c); d < bd {
					bi, bd = ci, d
				}
			}
			assign[i] = bi
		}
		counts := make([]int, k)
		next := make([][]float64, k)
		for ci := range next {
			next[ci] = make([]float64, dim)
		}
		for i, x := range all {
			counts[assign[i]]++
			for q, v := range x {
				next[assign[i]][q] += v
			}
		}
		for ci := range next {
			if counts[ci] == 0 {
				copy(next[ci], centers[ci])
				continue
			}
			for q := range next[ci] {
				next[ci][q] /= float64(counts[ci])
			}
		}
		centers = next
	}
	// Component weights and diagonal variances.
	u := &UncertaintyModel{model: m, means: centers}
	u.weights = make([]float64, k)
	u.vars = make([][]float64, k)
	counts := make([]int, k)
	for ci := range u.vars {
		u.vars[ci] = make([]float64, dim)
	}
	for i, x := range all {
		ci := assign[i]
		counts[ci]++
		for q, v := range x {
			d := v - centers[ci][q]
			u.vars[ci][q] += d * d
		}
	}
	for ci := range u.vars {
		u.weights[ci] = float64(counts[ci]+1) / float64(len(all)+k)
		for q := range u.vars[ci] {
			u.vars[ci][q] = u.vars[ci][q]/float64(maxIntU(counts[ci], 1)) + 1e-6
		}
	}
	return u
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func maxIntU(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// PairNLL returns the negative log-likelihood of one latent vector under
// the mixture.
func (u *UncertaintyModel) PairNLL(x []float64) float64 {
	// log-sum-exp over components.
	best := math.Inf(-1)
	logs := make([]float64, len(u.means))
	for ci, mean := range u.means {
		l := math.Log(u.weights[ci])
		for q, v := range x {
			d := v - mean[q]
			l += -0.5*d*d/u.vars[ci][q] - 0.5*math.Log(2*math.Pi*u.vars[ci][q])
		}
		logs[ci] = l
		if l > best {
			best = l
		}
	}
	s := 0.0
	for _, l := range logs {
		s += math.Exp(l - best)
	}
	return -(best + math.Log(s))
}

// AtomUncertainty returns, per atom, the highest pair NLL among the ordered
// pairs centered on it — the per-atom signal an uncertainty-aware MD loop
// or active-learning selector thresholds on.
func (u *UncertaintyModel) AtomUncertainty(sys *atoms.System) []float64 {
	pairs := neighbor.Build(sys, u.model.Cuts)
	g := u.model.buildGraph(sys, pairs, false)
	out := make([]float64, sys.NumAtoms())
	for i := range out {
		out[i] = math.Inf(-1)
	}
	lat := g.latent.T
	for z := 0; z < pairs.NumReal; z++ {
		nll := u.PairNLL(lat.Row(z))
		if i := pairs.I[z]; nll > out[i] {
			out[i] = nll
		}
	}
	for i := range out {
		if math.IsInf(out[i], -1) {
			out[i] = 0 // isolated atom: no pairs, no signal
		}
	}
	return out
}

// StructureUncertainty returns the mean per-atom uncertainty of sys.
func (u *UncertaintyModel) StructureUncertainty(sys *atoms.System) float64 {
	per := u.AtomUncertainty(sys)
	s := 0.0
	for _, v := range per {
		s += v
	}
	return s / float64(len(per))
}
