package core

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"

	"repro/internal/atoms"
	"repro/internal/neighbor"
	"repro/internal/units"
)

// modelFile is the serialized JSON representation of a trained model — the
// on-disk format of Save/Load and the wire format the distributed runtime's
// KindConfig frame ships to remote ranks.
type modelFile struct {
	Format      string               `json:"format"`
	Config      Config               `json:"config"`
	Cutoffs     [][]float64          `json:"cutoffs"`
	EnergyScale float64              `json:"energy_scale"`
	EnergyShift []float64            `json:"energy_shift"`
	Params      map[string][]float64 `json:"params"`
	Shapes      map[string][]int     `json:"shapes"`
}

// MarshalModel serializes the model to its JSON representation. JSON
// float64 encoding is shortest-round-trip, so UnmarshalModel reconstructs
// weights, cutoffs, and shifts bit-for-bit — the property the distributed
// runtime relies on when shipping one model to every rank process.
func MarshalModel(m *Model) ([]byte, error) {
	mf := modelFile{
		Format:      "goallegro-v1",
		Config:      m.Cfg,
		Cutoffs:     m.Cuts.Rc,
		EnergyScale: m.EnergyScale,
		EnergyShift: m.EnergyShift,
		Params:      map[string][]float64{},
		Shapes:      map[string][]int{},
	}
	for _, p := range m.Params.List() {
		mf.Params[p.Name] = p.T.Data
		mf.Shapes[p.Name] = p.T.Shape
	}
	data, err := json.Marshal(&mf)
	if err != nil {
		return nil, fmt.Errorf("core: marshal model: %w", err)
	}
	return data, nil
}

// UnmarshalModel reconstructs a model serialized by MarshalModel: the
// architecture is rebuilt deterministically from the config, then every
// weight is overwritten from the file.
func UnmarshalModel(data []byte) (*Model, error) {
	var mf modelFile
	if err := json.Unmarshal(data, &mf); err != nil {
		return nil, fmt.Errorf("core: unmarshal model: %w", err)
	}
	if mf.Format != "goallegro-v1" {
		return nil, fmt.Errorf("core: unsupported model format %q", mf.Format)
	}
	m, err := New(mf.Config, nil, rand.New(rand.NewPCG(0, 0)))
	if err != nil {
		return nil, err
	}
	for i, row := range mf.Cutoffs {
		copy(m.Cuts.Rc[i], row)
	}
	m.EnergyScale = mf.EnergyScale
	copy(m.EnergyShift, mf.EnergyShift)
	for _, p := range m.Params.List() {
		src, ok := mf.Params[p.Name]
		if !ok {
			return nil, fmt.Errorf("core: model file missing parameter %q", p.Name)
		}
		if len(src) != p.T.Len() {
			return nil, fmt.Errorf("core: parameter %q has %d values, want %d", p.Name, len(src), p.T.Len())
		}
		copy(p.T.Data, src)
	}
	m.Params.Bump() // weights replaced wholesale: invalidate weight-derived caches
	return m, nil
}

// Save serializes the model to path as JSON.
func (m *Model) Save(path string) error {
	data, err := MarshalModel(m)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a model saved by Save.
func Load(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return UnmarshalModel(data)
}

// BioCutoffsFor builds the paper's production per-ordered-species-pair
// cutoff table for the given species set (H-H 3.0, H-C 1.25, H-O 1.25,
// O-H 3.0, default 4.0).
func BioCutoffsFor(species []units.Species) *neighbor.CutoffTable {
	return neighbor.PaperBioCutoffs(atoms.NewSpeciesIndex(species))
}
