package core

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"

	"repro/internal/atoms"
	"repro/internal/neighbor"
	"repro/internal/units"
)

// modelFile is the on-disk JSON representation of a trained model.
type modelFile struct {
	Format      string               `json:"format"`
	Config      Config               `json:"config"`
	Cutoffs     [][]float64          `json:"cutoffs"`
	EnergyScale float64              `json:"energy_scale"`
	EnergyShift []float64            `json:"energy_shift"`
	Params      map[string][]float64 `json:"params"`
	Shapes      map[string][]int     `json:"shapes"`
}

// Save serializes the model to path as JSON.
func (m *Model) Save(path string) error {
	mf := modelFile{
		Format:      "goallegro-v1",
		Config:      m.Cfg,
		Cutoffs:     m.Cuts.Rc,
		EnergyScale: m.EnergyScale,
		EnergyShift: m.EnergyShift,
		Params:      map[string][]float64{},
		Shapes:      map[string][]int{},
	}
	for _, p := range m.Params.List() {
		mf.Params[p.Name] = p.T.Data
		mf.Shapes[p.Name] = p.T.Shape
	}
	data, err := json.Marshal(&mf)
	if err != nil {
		return fmt.Errorf("core: marshal model: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a model saved by Save.
func Load(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var mf modelFile
	if err := json.Unmarshal(data, &mf); err != nil {
		return nil, fmt.Errorf("core: unmarshal model: %w", err)
	}
	if mf.Format != "goallegro-v1" {
		return nil, fmt.Errorf("core: unsupported model format %q", mf.Format)
	}
	// Rebuild architecture deterministically, then overwrite weights.
	m, err := New(mf.Config, nil, rand.New(rand.NewPCG(0, 0)))
	if err != nil {
		return nil, err
	}
	for i, row := range mf.Cutoffs {
		copy(m.Cuts.Rc[i], row)
	}
	m.EnergyScale = mf.EnergyScale
	copy(m.EnergyShift, mf.EnergyShift)
	for _, p := range m.Params.List() {
		src, ok := mf.Params[p.Name]
		if !ok {
			return nil, fmt.Errorf("core: model file missing parameter %q", p.Name)
		}
		if len(src) != p.T.Len() {
			return nil, fmt.Errorf("core: parameter %q has %d values, want %d", p.Name, len(src), p.T.Len())
		}
		copy(p.T.Data, src)
	}
	m.Params.Bump() // weights replaced wholesale: invalidate weight-derived caches
	return m, nil
}

// BioCutoffsFor builds the paper's production per-ordered-species-pair
// cutoff table for the given species set (H-H 3.0, H-C 1.25, H-O 1.25,
// O-H 3.0, default 4.0).
func BioCutoffsFor(species []units.Species) *neighbor.CutoffTable {
	return neighbor.PaperBioCutoffs(atoms.NewSpeciesIndex(species))
}
