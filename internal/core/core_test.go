package core

import (
	"math"
	"math/rand/v2"
	"path/filepath"
	"testing"

	"repro/internal/atoms"
	"repro/internal/groundtruth"
	"repro/internal/neighbor"
	"repro/internal/o3"
	"repro/internal/tensor"
	"repro/internal/units"
)

func testSpecies() []units.Species { return []units.Species{units.H, units.O} }

func tinyConfig() Config {
	cfg := DefaultConfig(testSpecies())
	cfg.LMax = 1
	cfg.NumLayers = 2
	cfg.NumChannels = 2
	cfg.LatentDim = 8
	cfg.TwoBodyHidden = []int{8}
	cfg.LatentHidden = []int{8}
	cfg.EdgeHidden = 4
	cfg.NumBessel = 4
	cfg.AvgNumNeighbors = 4
	return cfg
}

func newTinyModel(t *testing.T, seed uint64) *Model {
	t.Helper()
	m, err := New(tinyConfig(), nil, rand.New(rand.NewPCG(seed, 1)))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// waterCluster builds nw water molecules scattered without overlap.
func waterCluster(rng *rand.Rand, nw int) *atoms.System {
	sys := atoms.NewSystem(3 * nw)
	for w := 0; w < nw; w++ {
		base := [3]float64{float64(w%3) * 3.1, float64((w/3)%3) * 3.1, float64(w/9) * 3.1}
		jit := func() float64 { return rng.NormFloat64() * 0.05 }
		sys.Species[3*w] = units.O
		sys.Species[3*w+1] = units.H
		sys.Species[3*w+2] = units.H
		sys.Pos[3*w] = [3]float64{base[0] + jit(), base[1] + jit(), base[2] + jit()}
		sys.Pos[3*w+1] = [3]float64{base[0] + 0.98 + jit(), base[1] + jit(), base[2] + jit()}
		sys.Pos[3*w+2] = [3]float64{base[0] - 0.30 + jit(), base[1] + 0.93 + jit(), base[2] + jit()}
	}
	return sys
}

func TestModelConstructionAndSize(t *testing.T) {
	m := newTinyModel(t, 1)
	if m.NumWeights() == 0 {
		t.Fatal("model has no weights")
	}
	// Production config should land near the paper's 7.85M weights.
	prod := ProductionConfig([]units.Species{units.H, units.C, units.N, units.O, units.P, units.S})
	pm, err := New(prod, nil, rand.New(rand.NewPCG(2, 2)))
	if err != nil {
		t.Fatal(err)
	}
	n := pm.NumWeights()
	if n < 3_000_000 || n > 20_000_000 {
		t.Fatalf("production weight count %d implausibly far from paper's 7.85M", n)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.LMax = 9
	if _, err := New(cfg, nil, rand.New(rand.NewPCG(1, 1))); err == nil {
		t.Fatal("LMax=9 must be rejected")
	}
	cfg = tinyConfig()
	cfg.NumLayers = 0
	if _, err := New(cfg, nil, rand.New(rand.NewPCG(1, 1))); err == nil {
		t.Fatal("zero layers must be rejected")
	}
	cfg = tinyConfig()
	cfg.Species = nil
	if _, err := New(cfg, nil, rand.New(rand.NewPCG(1, 1))); err == nil {
		t.Fatal("empty species must be rejected")
	}
}

func TestEnergyInvariance(t *testing.T) {
	m := newTinyModel(t, 3)
	rng := rand.New(rand.NewPCG(4, 5))
	sys := waterCluster(rng, 3)
	e0 := m.Evaluate(sys).Energy

	// Translation.
	tr := sys.Clone()
	for i := range tr.Pos {
		for k := 0; k < 3; k++ {
			tr.Pos[i][k] += 2.34
		}
	}
	if d := math.Abs(m.Evaluate(tr).Energy - e0); d > 1e-9 {
		t.Fatalf("translation changed energy by %g", d)
	}
	// Rotation.
	r := o3.RandomRotation(rng)
	rot := sys.Clone()
	for i := range rot.Pos {
		rot.Pos[i] = o3.ApplyRotation(r, rot.Pos[i])
	}
	if d := math.Abs(m.Evaluate(rot).Energy - e0); d > 1e-8 {
		t.Fatalf("rotation changed energy by %g", d)
	}
	// Mirror (O(3) includes parity).
	mir := sys.Clone()
	for i := range mir.Pos {
		mir.Pos[i][0] = -mir.Pos[i][0]
	}
	if d := math.Abs(m.Evaluate(mir).Energy - e0); d > 1e-8 {
		t.Fatalf("mirror changed energy by %g", d)
	}
}

func TestForceEquivariance(t *testing.T) {
	// Forces must rotate with the system: F(Rx) = R F(x).
	m := newTinyModel(t, 6)
	rng := rand.New(rand.NewPCG(7, 8))
	sys := waterCluster(rng, 2)
	f0 := m.Evaluate(sys).Forces
	r := o3.RandomRotation(rng)
	rot := sys.Clone()
	for i := range rot.Pos {
		rot.Pos[i] = o3.ApplyRotation(r, rot.Pos[i])
	}
	f1 := m.Evaluate(rot).Forces
	for i := range f0 {
		want := o3.ApplyRotation(r, f0[i])
		for k := 0; k < 3; k++ {
			if math.Abs(want[k]-f1[i][k]) > 1e-7 {
				t.Fatalf("force equivariance violated at atom %d: %v vs %v", i, want, f1[i])
			}
		}
	}
}

func TestForcesMatchFiniteDifference(t *testing.T) {
	m := newTinyModel(t, 9)
	rng := rand.New(rand.NewPCG(10, 11))
	sys := waterCluster(rng, 2)
	res := m.Evaluate(sys)
	const h = 1e-5
	for _, i := range []int{0, 1, 3, 5} {
		for k := 0; k < 3; k++ {
			sp := sys.Clone()
			sm := sys.Clone()
			sp.Pos[i][k] += h
			sm.Pos[i][k] -= h
			fd := -(m.Evaluate(sp).Energy - m.Evaluate(sm).Energy) / (2 * h)
			if math.Abs(fd-res.Forces[i][k]) > 1e-4*(1+math.Abs(fd)) {
				t.Fatalf("force[%d][%d]: fd=%g model=%g", i, k, fd, res.Forces[i][k])
			}
		}
	}
}

func TestStrictLocality(t *testing.T) {
	// Moving an atom beyond every cutoff must not change forces on a distant
	// cluster at all — the property that makes Allegro decomposable.
	m := newTinyModel(t, 12)
	rng := rand.New(rand.NewPCG(13, 14))
	sys := waterCluster(rng, 2)
	// Place a far probe molecule 100 A away.
	far := atoms.NewSystem(sys.NumAtoms() + 1)
	copy(far.Species, sys.Species)
	copy(far.Pos, sys.Pos)
	far.Species[sys.NumAtoms()] = units.O
	far.Pos[sys.NumAtoms()] = [3]float64{100, 100, 100}
	f1 := m.Evaluate(far).Forces
	far2 := far.Clone()
	far2.Pos[sys.NumAtoms()] = [3]float64{120, 90, 110}
	f2 := m.Evaluate(far2).Forces
	for i := 0; i < sys.NumAtoms(); i++ {
		for k := 0; k < 3; k++ {
			if f1[i][k] != f2[i][k] {
				t.Fatalf("distant atom affected local force (atom %d): %g vs %g", i, f1[i][k], f2[i][k])
			}
		}
	}
}

func TestSmoothnessAtCutoff(t *testing.T) {
	// Energy must go smoothly to a constant as a pair crosses the cutoff:
	// no discontinuity when the neighbor list changes.
	m := newTinyModel(t, 15)
	sys := atoms.NewSystem(2)
	sys.Species = []units.Species{units.O, units.O}
	rc := m.Cuts.Get(units.O, units.O)
	e := func(r float64) float64 {
		s := sys.Clone()
		s.Pos[1] = [3]float64{r, 0, 0}
		return m.Evaluate(s).Energy
	}
	eps := 1e-6
	below := e(rc - eps)
	above := e(rc + eps)
	if math.Abs(below-above) > 1e-6 {
		t.Fatalf("energy discontinuous at cutoff: %g vs %g", below, above)
	}
}

func TestPaddingPairsAreInert(t *testing.T) {
	m := newTinyModel(t, 16)
	rng := rand.New(rand.NewPCG(17, 18))
	sys := waterCluster(rng, 2)
	pairs := neighbor.Build(sys, m.Cuts)
	r1 := m.EvaluatePairs(sys, pairs)
	padded := neighbor.Build(sys, m.Cuts)
	padded.Pad(1.5)
	r2 := m.EvaluatePairs(sys, padded)
	if math.Abs(r1.Energy-r2.Energy) > 1e-10 {
		t.Fatalf("padding changed energy: %g vs %g", r1.Energy, r2.Energy)
	}
	for i := range r1.Forces {
		for k := 0; k < 3; k++ {
			if math.Abs(r1.Forces[i][k]-r2.Forces[i][k]) > 1e-10 {
				t.Fatal("padding changed forces")
			}
		}
	}
	if r2.PairWork <= r1.PairWork {
		t.Fatal("padding should increase pair work")
	}
}

func TestZBLRepulsionAtShortRange(t *testing.T) {
	m := newTinyModel(t, 19)
	sys := atoms.NewSystem(2)
	sys.Species = []units.Species{units.O, units.O}
	sys.Pos[1] = [3]float64{0.5, 0, 0}
	withZBL := m.Evaluate(sys).Energy
	m.Cfg.ZBL = false
	withoutZBL := m.Evaluate(sys).Energy
	if withZBL-withoutZBL < 1 {
		t.Fatalf("ZBL at 0.5 A should add strong repulsion; delta=%g", withZBL-withoutZBL)
	}
}

func TestAtomicEnergiesSumToTotal(t *testing.T) {
	m := newTinyModel(t, 20)
	rng := rand.New(rand.NewPCG(21, 22))
	sys := waterCluster(rng, 2)
	per := m.AtomicEnergies(sys)
	sum := 0.0
	for _, e := range per {
		sum += e
	}
	total := m.Evaluate(sys).Energy
	if math.Abs(sum-total) > 1e-8 {
		t.Fatalf("atomic energies sum %g != total %g", sum, total)
	}
}

func makeTrainingFrames(rng *rand.Rand, oracle *groundtruth.Oracle, n int) []*atoms.Frame {
	frames := make([]*atoms.Frame, 0, n)
	for i := 0; i < n; i++ {
		sys := waterCluster(rng, 2)
		// Perturb to sample off-equilibrium configurations.
		for a := range sys.Pos {
			for k := 0; k < 3; k++ {
				sys.Pos[a][k] += rng.NormFloat64() * 0.08
			}
		}
		e, f := oracle.EnergyForces(sys)
		frames = append(frames, &atoms.Frame{Sys: sys, Energy: e, Forces: f})
	}
	return frames
}

func TestTrainingReducesForceError(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 24))
	oracle := groundtruth.New()
	train := makeTrainingFrames(rng, oracle, 12)
	test := makeTrainingFrames(rng, oracle, 4)

	m := newTinyModel(t, 25)
	tc := DefaultTrainConfig()
	tc.Epochs = 12
	tc.BatchSize = 4
	tc.LR = 5e-3
	tr := NewTrainer(m, tc)

	tr.FitScaleShift(train)
	before := tr.Evaluate(test)
	tr.Train(train)
	after := tr.Evaluate(test)
	if after.ForceRMSE >= before.ForceRMSE {
		t.Fatalf("training did not reduce force RMSE: %v -> %v", before, after)
	}
	if after.ForceRMSE > 0.9*before.ForceRMSE {
		t.Fatalf("training improvement marginal: %v -> %v", before, after)
	}
}

func TestForceLossGradientDirection(t *testing.T) {
	// One training step on a single frame must reduce that frame's loss
	// (sanity check of the R-operator force gradient sign).
	rng := rand.New(rand.NewPCG(26, 27))
	oracle := groundtruth.New()
	frames := makeTrainingFrames(rng, oracle, 1)
	m := newTinyModel(t, 28)
	tc := DefaultTrainConfig()
	tc.LR = 1e-3
	tr := NewTrainer(m, tc)
	tr.FitScaleShift(frames)
	l0 := tr.Step(frames)
	var l1 float64
	for i := 0; i < 20; i++ {
		l1 = tr.Step(frames)
	}
	if l1 >= l0 {
		t.Fatalf("repeated steps on one frame should overfit it: %g -> %g", l0, l1)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := newTinyModel(t, 29)
	rng := rand.New(rand.NewPCG(30, 31))
	sys := waterCluster(rng, 2)
	m.SetScaleShift(2.5, []float64{-1.0, -2.0})
	e0 := m.Evaluate(sys).Energy
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	e1 := m2.Evaluate(sys).Energy
	if e0 != e1 {
		t.Fatalf("round trip changed energy: %g vs %g", e0, e1)
	}
}

func TestMixedPrecisionCloseToF64(t *testing.T) {
	// A TF32-compute model must produce nearly identical energies to the
	// same weights in F64 (Table IV: accuracy unaffected).
	cfg := tinyConfig()
	m64, err := New(cfg, nil, rand.New(rand.NewPCG(32, 33)))
	if err != nil {
		t.Fatal(err)
	}
	cfg32 := cfg
	cfg32.Precision = ProductionPrecision()
	m32, err := New(cfg32, nil, rand.New(rand.NewPCG(32, 33))) // same seed = same weights
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(34, 35))
	sys := waterCluster(rng, 3)
	e64 := m64.Evaluate(sys).Energy
	e32 := m32.Evaluate(sys).Energy
	if e64 == e32 {
		t.Fatal("TF32 evaluation should differ in ulps from F64")
	}
	if math.Abs(e64-e32) > 1e-2*(1+math.Abs(e64)) {
		t.Fatalf("TF32 energy error too large: %g vs %g", e32, e64)
	}
}

func TestFinalStagePrecisionMatters(t *testing.T) {
	// With F32 final stage the energy is f32-rounded.
	cfg := tinyConfig()
	cfg.Precision.Final = tensor.F32
	m, err := New(cfg, nil, rand.New(rand.NewPCG(36, 37)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(38, 39))
	sys := waterCluster(rng, 2)
	e := m.Evaluate(sys).Energy
	if float64(float32(e)) != e {
		t.Fatalf("final F32 energy %v not f32-representable", e)
	}
}

func TestBioCutoffsFor(t *testing.T) {
	ct := BioCutoffsFor([]units.Species{units.H, units.C, units.O})
	if ct.Get(units.H, units.C) != 1.25 || ct.Get(units.C, units.H) != 4.0 {
		t.Fatal("BioCutoffsFor must install ordered paper cutoffs")
	}
}
