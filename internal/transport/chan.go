package transport

import (
	"fmt"
	"sync/atomic"
	"time"
)

// chanSlot is one staged frame in flight on an in-process link. Slots cycle
// through their home free list so the steady-state exchange allocates
// nothing; a slot with a nil home (death notices, burst overflow) is simply
// dropped after delivery.
type chanSlot struct {
	f    Frame
	home chan *chanSlot
}

// slotsPerLink is the number of preallocated staging frames per directed
// link. A rebuild's plan phase keeps two frames in flight per link
// (forward plan + row plan); doubled for headroom against fault-injected
// duplicates.
const slotsPerLink = 4

type chanLink struct {
	free chan *chanSlot
	seq  atomic.Uint64
}

type chanEndpoint struct {
	t     *chanTransport
	rank  int
	inbox chan *chanSlot
	out   []*chanLink
}

// chanTransport is the in-process transport: one endpoint per rank
// goroutine, frames staged through preallocated per-link buffers. It is the
// default transport of domain.Runtime and preserves the runtime's
// zero-allocation steady state.
type chanTransport struct {
	n       int
	eps     []*chanEndpoint
	dead    []atomic.Bool
	closed  atomic.Bool
	closeCh chan struct{}
}

// NewChan builds an in-process transport for n ranks with every endpoint
// pre-created and every link's staging slots preallocated.
func NewChan(n int) Transport {
	t := &chanTransport{
		n:       n,
		eps:     make([]*chanEndpoint, n),
		dead:    make([]atomic.Bool, n),
		closeCh: make(chan struct{}),
	}
	for r := 0; r < n; r++ {
		ep := &chanEndpoint{
			t:     t,
			rank:  r,
			inbox: make(chan *chanSlot, 8*n+16),
			out:   make([]*chanLink, n),
		}
		for d := 0; d < n; d++ {
			lk := &chanLink{free: make(chan *chanSlot, slotsPerLink)}
			for s := 0; s < slotsPerLink; s++ {
				lk.free <- &chanSlot{home: lk.free}
			}
			ep.out[d] = lk
		}
		t.eps[r] = ep
	}
	return t
}

func (t *chanTransport) Ranks() int { return t.n }

func (t *chanTransport) Endpoint(rank int) (Endpoint, error) {
	if rank < 0 || rank >= t.n {
		return nil, fmt.Errorf("transport: rank %d out of range [0, %d)", rank, t.n)
	}
	return t.eps[rank], nil
}

func (t *chanTransport) Close() error {
	if t.closed.CompareAndSwap(false, true) {
		close(t.closeCh)
	}
	return nil
}

// Kill marks a rank dead: its endpoint starts failing, and a KindDeath
// notice is pushed into every inbox (including the victim's, to unblock a
// pending Recv).
func (t *chanTransport) Kill(rank int) {
	if rank < 0 || rank >= t.n || !t.dead[rank].CompareAndSwap(false, true) {
		return
	}
	for _, ep := range t.eps {
		s := &chanSlot{}
		s.f.Kind = KindDeath
		s.f.Src = int32(rank)
		s.f.Dst = int32(ep.rank)
		select {
		case ep.inbox <- s:
		default: // inbox saturated; the peer will hit ErrPeerDead on Send instead
		}
	}
}

// Revive brings a killed rank back. It must be called while the runtime is
// quiescent (no exchange phase in flight): it drains every inbox so stale
// frames and death notices from the previous incarnation cannot leak into
// the restored run.
func (t *chanTransport) Revive(rank int) error {
	if rank < 0 || rank >= t.n {
		return fmt.Errorf("transport: rank %d out of range [0, %d)", rank, t.n)
	}
	if !t.dead[rank].CompareAndSwap(true, false) {
		return nil
	}
	for _, ep := range t.eps {
		for {
			select {
			case s := <-ep.inbox:
				if s.home != nil {
					select {
					case s.home <- s:
					default:
					}
				}
			default:
				goto next
			}
		}
	next:
	}
	return nil
}

func (e *chanEndpoint) Rank() int { return e.rank }

func (e *chanEndpoint) Send(f *Frame) error {
	t := e.t
	if t.closed.Load() {
		return ErrClosed
	}
	if t.dead[e.rank].Load() {
		return &DeadError{Rank: e.rank}
	}
	dst := int(f.Dst)
	if dst < 0 || dst >= t.n {
		return fmt.Errorf("transport: send to rank %d out of range [0, %d)", dst, t.n)
	}
	if t.dead[dst].Load() {
		return &DeadError{Rank: dst}
	}
	lk := e.out[dst]
	var s *chanSlot
	select {
	case s = <-lk.free:
	default:
		s = &chanSlot{} // burst overflow: one-shot slot, dropped after delivery
	}
	f.Src = int32(e.rank)
	f.Seq = lk.seq.Add(1)
	CopyFrame(&s.f, f)
	select {
	case t.eps[dst].inbox <- s:
		return nil
	case <-t.closeCh:
		return ErrClosed
	}
}

func (e *chanEndpoint) Recv(f *Frame) error {
	t := e.t
	if t.closed.Load() {
		return ErrClosed
	}
	if t.dead[e.rank].Load() {
		return &DeadError{Rank: e.rank}
	}
	select {
	case s := <-e.inbox:
		CopyFrame(f, &s.f)
		if s.home != nil {
			select {
			case s.home <- s:
			default:
			}
		}
		return nil
	case <-t.closeCh:
		return ErrClosed
	}
}

// RecvTimeout implements TimedRecver.
func (e *chanEndpoint) RecvTimeout(f *Frame, d time.Duration) (bool, error) {
	t := e.t
	if t.closed.Load() {
		return false, ErrClosed
	}
	if t.dead[e.rank].Load() {
		return false, &DeadError{Rank: e.rank}
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case s := <-e.inbox:
		CopyFrame(f, &s.f)
		if s.home != nil {
			select {
			case s.home <- s:
			default:
			}
		}
		return true, nil
	case <-t.closeCh:
		return false, ErrClosed
	case <-timer.C:
		return false, nil
	}
}

func (e *chanEndpoint) Close() error { return nil }
