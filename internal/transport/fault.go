package transport

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// FaultPlan is a seeded fault-injection schedule. Probabilities apply per
// data frame, independently per sending endpoint (each endpoint derives its
// own PRNG from Seed^rank, so a plan is deterministic for a deterministic
// communication schedule regardless of cross-rank interleaving).
type FaultPlan struct {
	Seed uint64
	// Drop is the probability a frame is "lost". The wrapper models the
	// reliable-link abstraction the runtime assumes: a dropped frame is
	// retransmitted after RetransmitDelay, so the net observable effect is
	// delay, never silent loss.
	Drop float64
	// Dup is the probability a frame is delivered twice. Receivers discard
	// the duplicate by its (Src, Kind, Step) tag.
	Dup float64
	// Delay is the probability a frame send is stalled by a uniform random
	// sleep in (0, MaxDelay].
	Delay float64
	// MaxDelay bounds injected sleeps (default 2ms).
	MaxDelay time.Duration
	// RetransmitDelay is the stall charged to a dropped-then-retransmitted
	// frame (default 1ms).
	RetransmitDelay time.Duration
	// KillRank names a victim rank that dies the first time it sends a data
	// frame tagged with Step >= KillAtStep. The schedule is armed only when
	// KillAtStep > 0 (the runtime's step tags start at 1), so the zero
	// value of FaultPlan kills nobody.
	KillRank int
	// KillAtStep is the step tag that triggers the scheduled death; 0
	// disarms the schedule.
	KillAtStep uint64

	// ChaosKills arms chaos mode: the number of scheduled rank deaths over
	// the run. Unlike the single KillRank/KillAtStep schedule, chaos kills
	// re-arm after a Revive, so a supervised run can survive several deaths.
	// The schedule (victims and step tags) derives deterministically from
	// Seed — see ChaosSchedule.
	ChaosKills int
	// ChaosFirst is the earliest step tag at which the first chaos kill can
	// fire (default 1).
	ChaosFirst uint64
	// ChaosEvery spaces consecutive chaos kills apart in step tags
	// (default 1).
	ChaosEvery uint64
	// ChaosRanks bounds the victim pool to ranks [0, ChaosRanks); 0 means
	// every rank of the inner transport. A driver rank kept outside the pool
	// is never killed.
	ChaosRanks int
}

// ChaosKill is one scheduled death of the chaos schedule.
type ChaosKill struct {
	Step uint64 `json:"step"`
	Rank int    `json:"rank"`
}

// ChaosSchedule derives the plan's kill schedule from a dedicated PRNG
// stream of Seed: same seed and plan, same victims and step tags, every
// time. ranks bounds the victim pool to [0, ranks).
func (p FaultPlan) ChaosSchedule(ranks int) []ChaosKill {
	if p.ChaosKills <= 0 || ranks <= 0 {
		return nil
	}
	every := p.ChaosEvery
	if every == 0 {
		every = 1
	}
	first := p.ChaosFirst
	if first == 0 {
		first = 1
	}
	rng := rand.New(rand.NewPCG(p.Seed, 0xC4A05))
	out := make([]ChaosKill, p.ChaosKills)
	step := first
	for i := range out {
		jitter := uint64(0)
		if every > 1 {
			jitter = rng.Uint64N(every/2 + 1)
		}
		out[i] = ChaosKill{Step: step + jitter, Rank: rng.IntN(ranks)}
		step += every
	}
	return out
}

// NoFaults is the identity plan: no drops, no duplicates, no delays, no
// death. Wrapping a transport with it must leave trajectories bit-identical.
func NoFaults() FaultPlan { return FaultPlan{KillRank: -1} }

// FaultStats counts injected events.
type FaultStats struct {
	Drops  int64 `json:"drops"`
	Dups   int64 `json:"dups"`
	Delays int64 `json:"delays"`
	Kills  int64 `json:"kills"`
}

// Fault wraps an inner transport and perturbs delivery according to a
// seeded plan. Scheduled rank death requires the inner transport to
// implement Killer (the chan transport does); Revive is forwarded to the
// inner Reviver.
type Fault struct {
	inner Transport
	plan  FaultPlan

	mu     sync.Mutex
	eps    map[int]*faultEndpoint
	killed atomic.Bool

	chaosMu  sync.Mutex
	chaos    []ChaosKill
	chaosIdx int

	drops  atomic.Int64
	dups   atomic.Int64
	delays atomic.Int64
	kills  atomic.Int64
}

// NewFault wraps inner with the given plan.
func NewFault(inner Transport, plan FaultPlan) *Fault {
	if plan.MaxDelay <= 0 {
		plan.MaxDelay = 2 * time.Millisecond
	}
	if plan.RetransmitDelay <= 0 {
		plan.RetransmitDelay = time.Millisecond
	}
	t := &Fault{inner: inner, plan: plan, eps: make(map[int]*faultEndpoint)}
	if plan.ChaosKills > 0 {
		n := plan.ChaosRanks
		if n <= 0 {
			n = inner.Ranks()
		}
		t.chaos = plan.ChaosSchedule(n)
	}
	return t
}

// Chaos returns the armed chaos schedule (nil when chaos mode is off) and
// how many of its kills have fired so far.
func (t *Fault) Chaos() ([]ChaosKill, int) {
	t.chaosMu.Lock()
	defer t.chaosMu.Unlock()
	return t.chaos, t.chaosIdx
}

// fireChaos fires at most one due chaos kill per call. If the sender itself
// is the victim, the caller's Send fails with DeadError immediately.
func (t *Fault) fireChaos(step uint64, sender int) error {
	k, ok := t.inner.(Killer)
	if !ok {
		return nil
	}
	victim := -1
	t.chaosMu.Lock()
	if t.chaosIdx < len(t.chaos) && step >= t.chaos[t.chaosIdx].Step {
		victim = t.chaos[t.chaosIdx].Rank
		t.chaosIdx++
	}
	t.chaosMu.Unlock()
	if victim < 0 {
		return nil
	}
	t.kills.Add(1)
	k.Kill(victim)
	if victim == sender {
		return &DeadError{Rank: victim}
	}
	return nil
}

func (t *Fault) Ranks() int { return t.inner.Ranks() }

func (t *Fault) Endpoint(rank int) (Endpoint, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ep := t.eps[rank]; ep != nil {
		return ep, nil
	}
	inner, err := t.inner.Endpoint(rank)
	if err != nil {
		return nil, err
	}
	ep := &faultEndpoint{
		t:     t,
		inner: inner,
		rng:   rand.New(rand.NewPCG(t.plan.Seed^uint64(rank), 0x5EED)),
	}
	t.eps[rank] = ep
	return ep, nil
}

func (t *Fault) Close() error { return t.inner.Close() }

// Kill forwards a manual kill to the inner transport.
func (t *Fault) Kill(rank int) {
	if k, ok := t.inner.(Killer); ok {
		t.kills.Add(1)
		t.killed.Store(true)
		k.Kill(rank)
	}
}

// Revive forwards to the inner transport and re-arms nothing: a scheduled
// kill fires at most once.
func (t *Fault) Revive(rank int) error {
	if r, ok := t.inner.(Reviver); ok {
		return r.Revive(rank)
	}
	return fmt.Errorf("transport: inner transport cannot revive ranks")
}

// Stats snapshots the injected-event counters.
func (t *Fault) Stats() FaultStats {
	return FaultStats{
		Drops:  t.drops.Load(),
		Dups:   t.dups.Load(),
		Delays: t.delays.Load(),
		Kills:  t.kills.Load(),
	}
}

// LinkStats forwards the inner transport's measurements, if any.
func (t *Fault) LinkStats() []LinkStats {
	if sr, ok := t.inner.(StatsReporter); ok {
		return sr.LinkStats()
	}
	return nil
}

type faultEndpoint struct {
	t     *Fault
	inner Endpoint
	mu    sync.Mutex // guards rng (Send may race with the heartbeat goroutine on tcp inners)
	rng   *rand.Rand
}

func (e *faultEndpoint) Rank() int { return e.inner.Rank() }

// isData reports whether a frame is subject to fault injection. Control
// traffic (hello/heartbeat/death) passes through untouched so the wrapper
// perturbs the exchange without breaking transport-internal protocols.
func isData(k Kind) bool {
	switch k {
	case KindHello, KindHeartbeat, KindHeartbeatAck, KindDeath, KindShutdown:
		return false
	}
	return true
}

func (e *faultEndpoint) Send(f *Frame) error {
	t := e.t
	p := &t.plan
	if !isData(f.Kind) {
		return e.inner.Send(f)
	}
	// Scheduled death: the victim dies mid-schedule, exactly once.
	if p.KillAtStep > 0 && p.KillRank >= 0 && e.inner.Rank() == p.KillRank &&
		f.Step >= p.KillAtStep && t.killed.CompareAndSwap(false, true) {
		if k, ok := t.inner.(Killer); ok {
			t.kills.Add(1)
			k.Kill(p.KillRank)
			return &DeadError{Rank: p.KillRank}
		}
	}
	// Chaos mode: scheduled kills that re-arm across Revive.
	if t.chaos != nil {
		if err := t.fireChaos(f.Step, e.inner.Rank()); err != nil {
			return err
		}
	}
	e.mu.Lock()
	drop := p.Drop > 0 && e.rng.Float64() < p.Drop
	dup := p.Dup > 0 && e.rng.Float64() < p.Dup
	delay := time.Duration(0)
	if p.Delay > 0 && e.rng.Float64() < p.Delay {
		delay = time.Duration(e.rng.Int64N(int64(p.MaxDelay))) + 1
	}
	e.mu.Unlock()
	if drop {
		// The reliable-link abstraction: lost, timed out, retransmitted.
		t.drops.Add(1)
		time.Sleep(p.RetransmitDelay)
	}
	if delay > 0 {
		t.delays.Add(1)
		time.Sleep(delay)
	}
	if err := e.inner.Send(f); err != nil {
		return err
	}
	if dup {
		t.dups.Add(1)
		if err := e.inner.Send(f); err != nil {
			return err
		}
	}
	return nil
}

func (e *faultEndpoint) Recv(f *Frame) error { return e.inner.Recv(f) }

// RecvTimeout delegates to the inner endpoint when it supports bounded
// receives.
func (e *faultEndpoint) RecvTimeout(f *Frame, d time.Duration) (bool, error) {
	if tr, ok := e.inner.(TimedRecver); ok {
		return tr.RecvTimeout(f, d)
	}
	return false, fmt.Errorf("transport: inner endpoint does not support timed receive")
}

func (e *faultEndpoint) Close() error { return e.inner.Close() }
