// Package transport is the pluggable rank-to-rank message layer under the
// domain-decomposed runtime: the double-buffered ghost-position exchange,
// the reverse force-row reduction, and the driver/rank control protocol of
// the multi-process runtime all post framed messages through one
// Transport/Endpoint interface instead of touching shared memory directly.
//
// Three implementations ship:
//
//   - NewChan: in-process Go channels between rank goroutines — the MPI
//     stand-in the runtime always had, extracted behind the interface.
//     Frames are staged into preallocated per-link buffers (no wire
//     serialization, no steady-state allocation), so the single-process
//     runtime keeps its zero-allocation step.
//   - NewTCP: stdlib net sockets between OS processes — length-prefixed
//     frames over persistent connections, bounded dial retry with backoff,
//     write deadlines, heartbeat-based peer liveness, and measured per-link
//     latency/bandwidth statistics that feed the cluster performance model.
//   - NewFault: a wrapper injecting message drops (retransmitted after a
//     delay, the reliable-link abstraction), duplicate delivery, random
//     delays, and scheduled rank death under a seeded plan — the test
//     harness for the runtime's failure-recovery path.
//
// Delivery contract: frames between one (src, dst) pair arrive in order on
// the chan and tcp transports; the fault transport may duplicate or delay
// them. Receivers therefore treat frames as idempotent by (Src, Kind, Step)
// — the runtime discards a frame whose step tag does not match the phase it
// is waiting on. Rank death surfaces as a KindDeath frame pushed into every
// live endpoint's inbox (and as ErrPeerDead from Send), so a receiver
// blocked on a dead peer unblocks instead of hanging.
package transport

import (
	"errors"
	"fmt"
	"time"
)

// Endpoint is one rank's attachment to the transport. Send and Recv may be
// called from different goroutines; neither is safe for concurrent calls
// with itself.
type Endpoint interface {
	// Rank returns the rank this endpoint speaks for.
	Rank() int
	// Send delivers f to rank f.Dst. The frame is staged (copied or
	// serialized) before Send returns: the caller owns f again and may
	// reuse its payload slices immediately. Send stamps f.Src and f.Seq.
	Send(f *Frame) error
	// Recv blocks for the next inbound frame and copies it into f, reusing
	// f's payload capacity. Control frames the transport handles itself
	// (heartbeats) are not surfaced; death notices are (KindDeath).
	Recv(f *Frame) error
	// Close detaches the endpoint. Pending Recv calls return ErrClosed.
	Close() error
}

// Transport hands out endpoints for a fixed-size rank world.
type Transport interface {
	// Ranks returns the world size (endpoints are addressed 0..Ranks-1).
	Ranks() int
	// Endpoint returns the endpoint of the given rank. In-process
	// transports serve every rank; a TCP transport serves only the rank of
	// its own process and errors for any other.
	Endpoint(rank int) (Endpoint, error)
	// Close tears the transport down; all endpoints become unusable.
	Close() error
}

// Killer is implemented by transports that can simulate the death of a rank
// (the fault-injection hook): the victim's endpoint starts failing and every
// other endpoint receives a KindDeath notice.
type Killer interface {
	Kill(rank int)
}

// Reviver is implemented by transports that can bring a killed rank back —
// the rejoin half of the runtime's Restore-and-rejoin recovery protocol.
type Reviver interface {
	Revive(rank int) error
}

// LinkStats is the measured behaviour of one directed link, as observed by
// the endpoint that owns the sending side.
type LinkStats struct {
	Src        int     `json:"src"`
	Dst        int     `json:"dst"`
	FramesSent int64   `json:"frames_sent"`
	FramesRecv int64   `json:"frames_recv"`
	BytesSent  int64   `json:"bytes_sent"`
	BytesRecv  int64   `json:"bytes_recv"`
	LatencySec float64 `json:"latency_s"`     // smoothed one-way latency (heartbeat RTT/2)
	Bandwidth  float64 `json:"bandwidth_bps"` // achieved payload bytes/s of the send path
}

// TimedRecver is implemented by endpoints that support a bounded receive —
// the supervisor loop uses it to drain stale frames and to poll for a
// replacement rank without blocking forever. ok is false when the timeout
// elapsed with no frame.
type TimedRecver interface {
	RecvTimeout(f *Frame, d time.Duration) (ok bool, err error)
}

// StatsReporter is implemented by transports that measure their links
// (NewTCP). The runtime forwards these numbers to the cluster performance
// model, which then predicts multi-node step time from measured per-link
// latency and bandwidth instead of frozen constants.
type StatsReporter interface {
	LinkStats() []LinkStats
}

// ErrClosed is returned by operations on a closed transport or endpoint.
var ErrClosed = errors.New("transport: closed")

// DeadError reports that a rank is (or became) unreachable: its process
// died, its heartbeat timed out, or a fault plan killed it.
type DeadError struct {
	Rank int
}

func (e *DeadError) Error() string {
	return fmt.Sprintf("transport: rank %d is dead", e.Rank)
}

// IsDead reports whether err indicates a dead peer and, if so, which rank.
func IsDead(err error) (int, bool) {
	var de *DeadError
	if errors.As(err, &de) {
		return de.Rank, true
	}
	return 0, false
}

// Group composes per-rank transports into one world: Endpoint(r) is served
// by the first member that owns rank r. It is how a test (or a single
// process hosting several TCP ranks on localhost) presents N one-rank TCP
// transports to a runtime that asks one Transport for every endpoint.
type Group struct {
	members []Transport
	ranks   int
}

// NewGroup builds a composite transport over the members. The world size is
// the largest member world.
func NewGroup(members ...Transport) *Group {
	g := &Group{members: members}
	for _, m := range members {
		if m.Ranks() > g.ranks {
			g.ranks = m.Ranks()
		}
	}
	return g
}

// Ranks implements Transport.
func (g *Group) Ranks() int { return g.ranks }

// Endpoint implements Transport: the first member serving the rank wins.
func (g *Group) Endpoint(rank int) (Endpoint, error) {
	var firstErr error
	for _, m := range g.members {
		ep, err := m.Endpoint(rank)
		if err == nil {
			return ep, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("transport: no member serves rank %d", rank)
	}
	return nil, firstErr
}

// Close closes every member.
func (g *Group) Close() error {
	var first error
	for _, m := range g.members {
		if err := m.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// LinkStats aggregates the members' link statistics (members that measure
// nothing contribute nothing).
func (g *Group) LinkStats() []LinkStats {
	var all []LinkStats
	for _, m := range g.members {
		if sr, ok := m.(StatsReporter); ok {
			all = append(all, sr.LinkStats()...)
		}
	}
	return all
}
