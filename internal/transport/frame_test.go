package transport

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"
)

func randomFrame(rng *rand.Rand) *Frame {
	f := &Frame{
		Kind: Kind(1 + rng.IntN(int(kindEnd)-1)),
		Src:  int32(rng.IntN(64)),
		Dst:  int32(rng.IntN(64)),
		Step: rng.Uint64(),
		Seq:  rng.Uint64(),
	}
	ints := f.EnsureInts(rng.IntN(50))
	for i := range ints {
		ints[i] = int32(rng.Int32())
	}
	vecs := f.EnsureVecs(rng.IntN(30))
	for i := range vecs {
		for k := 0; k < 3; k++ {
			vecs[i][k] = math.Float64frombits(rng.Uint64())
		}
	}
	scalars := f.EnsureScalars(rng.IntN(20))
	for i := range scalars {
		scalars[i] = math.Float64frombits(rng.Uint64())
	}
	b := f.EnsureBytes(rng.IntN(100))
	for i := range b {
		b[i] = byte(rng.UintN(256))
	}
	return f
}

func framesEqual(a, b *Frame) bool {
	if a.Kind != b.Kind || a.Src != b.Src || a.Dst != b.Dst || a.Step != b.Step || a.Seq != b.Seq {
		return false
	}
	if len(a.Ints) != len(b.Ints) || len(a.Vecs) != len(b.Vecs) ||
		len(a.Scalars) != len(b.Scalars) || !bytes.Equal(a.Bytes, b.Bytes) {
		return false
	}
	for i := range a.Ints {
		if a.Ints[i] != b.Ints[i] {
			return false
		}
	}
	for i := range a.Vecs {
		for k := 0; k < 3; k++ {
			// Bit comparison: NaN payloads must survive the wire unchanged.
			if math.Float64bits(a.Vecs[i][k]) != math.Float64bits(b.Vecs[i][k]) {
				return false
			}
		}
	}
	for i := range a.Scalars {
		if math.Float64bits(a.Scalars[i]) != math.Float64bits(b.Scalars[i]) {
			return false
		}
	}
	return true
}

func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	var got Frame
	var scratch []byte
	for trial := 0; trial < 200; trial++ {
		f := randomFrame(rng)
		wire := f.AppendWire(nil)
		if len(wire) != 4+f.EncodedLen() {
			t.Fatalf("trial %d: wire length %d, want %d", trial, len(wire), 4+f.EncodedLen())
		}
		if err := ReadWire(bytes.NewReader(wire), &got, &scratch, 0); err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if !framesEqual(f, &got) {
			t.Fatalf("trial %d: round trip mismatch:\n  sent %+v\n  got  %+v", trial, f, &got)
		}
	}
}

func TestFrameDecodeRejectsCorruption(t *testing.T) {
	f := randomFrame(rand.New(rand.NewPCG(1, 2)))
	wire := f.AppendWire(nil)
	var got Frame
	// Truncated body.
	if err := got.DecodeBody(wire[4 : len(wire)-1]); err == nil {
		t.Fatal("truncated body decoded without error")
	}
	// Bad magic.
	bad := append([]byte(nil), wire[4:]...)
	bad[0] ^= 0xFF
	if err := got.DecodeBody(bad); err == nil {
		t.Fatal("bad magic decoded without error")
	}
	// Oversized length prefix.
	var scratch []byte
	huge := append([]byte{0xFF, 0xFF, 0xFF, 0x7F}, wire[4:]...)
	if err := ReadWire(bytes.NewReader(huge), &got, &scratch, 1<<20); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// FuzzFrameRoundTrip fuzzes both directions: structured payloads must
// survive encode/decode bit-for-bit, and arbitrary bytes must never panic
// the decoder. Any body that does decode must re-encode to the same bytes.
func FuzzFrameRoundTrip(f *testing.F) {
	rng := rand.New(rand.NewPCG(3, 5))
	for i := 0; i < 8; i++ {
		fr := randomFrame(rng)
		f.Add(fr.AppendWire(nil)[4:])
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x41}, headerLen))
	f.Fuzz(func(t *testing.T, body []byte) {
		var fr Frame
		if err := fr.DecodeBody(body); err != nil {
			return
		}
		wire := fr.AppendWire(nil)
		if !bytes.Equal(wire[4:], body) {
			t.Fatalf("re-encode mismatch:\n  in  %x\n  out %x", body, wire[4:])
		}
		var again Frame
		if err := again.DecodeBody(wire[4:]); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !framesEqual(&fr, &again) {
			t.Fatal("decode(encode(decode(body))) differs from decode(body)")
		}
	})
}
