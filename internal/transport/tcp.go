package transport

import (
	"bufio"
	"fmt"
	"math/rand/v2"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TCPConfig configures one process's attachment to a TCP rank world.
type TCPConfig struct {
	// Rank is the rank this process speaks for.
	Rank int
	// Hosts lists the listen address of every rank (Hosts[r] serves rank r).
	// The world size is len(Hosts).
	Hosts []string
	// Listener optionally supplies a pre-bound listener for Hosts[Rank]
	// (tests bind :0 and pass the resolved address around).
	Listener net.Listener
	// Generation stamps every outbound KindHello (Step field). A restarted
	// process rejoins with a higher generation; receivers fence connections
	// whose hello generation is older than the newest seen from that rank,
	// so duplicated or reordered pre-death frames can never leak into the
	// new epoch.
	Generation uint64

	// DialTimeout bounds one dial attempt (default 2s).
	DialTimeout time.Duration
	// DialRetries bounds how many times a dial is retried before Send gives
	// up (default 40 — a freshly exec'd peer gets several seconds to bind).
	DialRetries int
	// DialBackoff is the initial retry backoff, doubling up to 1s
	// (default 50ms).
	DialBackoff time.Duration
	// WriteTimeout bounds one frame write (default 10s).
	WriteTimeout time.Duration
	// HeartbeatEvery is the liveness probe period (default 250ms; negative
	// disables probing).
	HeartbeatEvery time.Duration
	// HeartbeatTimeout is the silence threshold after which a peer we have
	// heard from is declared dead and a KindDeath notice is synthesized
	// (default 5s; negative disables detection).
	HeartbeatTimeout time.Duration
	// MaxFrame bounds an accepted frame body (default DefaultMaxFrame).
	MaxFrame int
	// Logf, when set, receives transport diagnostics.
	Logf func(format string, args ...any)
}

func (c *TCPConfig) fill() {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.DialRetries <= 0 {
		c.DialRetries = 40
	}
	if c.DialBackoff <= 0 {
		c.DialBackoff = 50 * time.Millisecond
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = 250 * time.Millisecond
	}
	if c.HeartbeatTimeout == 0 {
		c.HeartbeatTimeout = 5 * time.Second
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
}

// tcpConn is one outbound connection with its write buffer and per-link
// sequence counter.
type tcpConn struct {
	mu   sync.Mutex
	c    net.Conn
	buf  []byte
	seq  uint64
	peer int
}

type tcpLink struct {
	framesSent atomic.Int64
	framesRecv atomic.Int64
	bytesSent  atomic.Int64
	bytesRecv  atomic.Int64
	sendNanos  atomic.Int64
	// latNanos is the EWMA of the one-way latency estimate (RTT/2),
	// stored in nanoseconds; zero until the first heartbeat ack.
	latNanos atomic.Int64
}

// tcpTransport serves exactly one rank per process: Send dials persistent
// connections on demand (bounded retry with exponential backoff), writes
// length-prefixed frames under a deadline, and a heartbeat loop measures
// per-link round-trip latency and declares silent peers dead. The accept
// loop takes inbound connections from any peer at any time, which is what
// lets a restarted rank daemon rejoin a running world.
type tcpTransport struct {
	cfg   TCPConfig
	ln    net.Listener
	inbox chan *Frame
	pool  sync.Pool

	mu        sync.Mutex
	out       map[int]*tcpConn
	in        map[net.Conn]struct{}
	lastSeen  map[int]time.Time
	notified  map[int]bool
	hbPending map[uint64]time.Time
	links     map[int]*tcpLink
	// peerGen is the newest hello generation seen per peer; connections
	// carrying an older generation are fenced (their frames discarded).
	peerGen map[int]uint64

	hbID   atomic.Uint64
	closed atomic.Bool
	done   chan struct{}
	wg     sync.WaitGroup
}

// NewTCP binds the rank's listener and starts the accept and heartbeat
// loops. It does not dial anyone: connections are established lazily on
// first Send (or accepted from peers), so start order does not matter.
func NewTCP(cfg TCPConfig) (Transport, error) {
	cfg.fill()
	if cfg.Rank < 0 || cfg.Rank >= len(cfg.Hosts) {
		return nil, fmt.Errorf("transport: rank %d out of range for %d hosts", cfg.Rank, len(cfg.Hosts))
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Hosts[cfg.Rank])
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", cfg.Hosts[cfg.Rank], err)
		}
	}
	t := &tcpTransport{
		cfg:       cfg,
		ln:        ln,
		inbox:     make(chan *Frame, 16*len(cfg.Hosts)+64),
		out:       make(map[int]*tcpConn),
		in:        make(map[net.Conn]struct{}),
		lastSeen:  make(map[int]time.Time),
		notified:  make(map[int]bool),
		hbPending: make(map[uint64]time.Time),
		links:     make(map[int]*tcpLink),
		peerGen:   make(map[int]uint64),
		done:      make(chan struct{}),
	}
	t.pool.New = func() any { return new(Frame) }
	t.wg.Add(1)
	go t.acceptLoop()
	if cfg.HeartbeatEvery > 0 {
		t.wg.Add(1)
		go t.heartbeatLoop()
	}
	return t, nil
}

func (t *tcpTransport) logf(format string, args ...any) {
	if t.cfg.Logf != nil {
		t.cfg.Logf(format, args...)
	}
}

func (t *tcpTransport) Ranks() int { return len(t.cfg.Hosts) }

func (t *tcpTransport) Endpoint(rank int) (Endpoint, error) {
	if rank != t.cfg.Rank {
		return nil, fmt.Errorf("transport: this process serves rank %d, not %d", t.cfg.Rank, rank)
	}
	return (*tcpEndpoint)(t), nil
}

func (t *tcpTransport) Close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(t.done)
	t.ln.Close()
	t.mu.Lock()
	for _, oc := range t.out {
		oc.c.Close()
	}
	t.out = map[int]*tcpConn{}
	for c := range t.in {
		c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}

func (t *tcpTransport) link(peer int) *tcpLink {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.linkLocked(peer)
}

func (t *tcpTransport) linkLocked(peer int) *tcpLink {
	lk := t.links[peer]
	if lk == nil {
		lk = &tcpLink{}
		t.links[peer] = lk
	}
	return lk
}

// acceptLoop takes inbound connections; each must open with KindHello
// naming the peer rank. The Hello is surfaced through Recv so a driver
// waiting for a restarted rank can observe the rejoin.
func (t *tcpTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			if t.closed.Load() {
				return
			}
			t.logf("tcp rank %d: accept: %v", t.cfg.Rank, err)
			select {
			case <-t.done:
				return
			case <-time.After(50 * time.Millisecond):
			}
			continue
		}
		t.wg.Add(1)
		go t.serveConn(c)
	}
}

func (t *tcpTransport) serveConn(c net.Conn) {
	defer t.wg.Done()
	defer c.Close()
	t.mu.Lock()
	t.in[c] = struct{}{}
	t.mu.Unlock()
	defer func() {
		t.mu.Lock()
		delete(t.in, c)
		t.mu.Unlock()
	}()
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	br := bufio.NewReaderSize(c, 1<<16)
	var scratch []byte
	f := new(Frame)
	if err := ReadWire(br, f, &scratch, t.cfg.MaxFrame); err != nil || f.Kind != KindHello {
		t.logf("tcp rank %d: bad handshake from %s: %v", t.cfg.Rank, c.RemoteAddr(), err)
		return
	}
	peer := int(f.Src)
	gen := f.Step
	t.mu.Lock()
	cur, seen := t.peerGen[peer]
	if seen && gen < cur {
		// A connection from a superseded incarnation of the peer: fence it.
		t.mu.Unlock()
		t.logf("tcp rank %d: fencing stale generation %d connection from rank %d (current %d)",
			t.cfg.Rank, gen, peer, cur)
		return
	}
	var staleOut *tcpConn
	if gen > cur {
		// The peer restarted into a new generation: the outbound connection
		// (if any) still points at the dead incarnation — drop it so the next
		// Send redials into the new process.
		t.peerGen[peer] = gen
		staleOut = t.out[peer]
		delete(t.out, peer)
	} else if !seen {
		t.peerGen[peer] = gen
	}
	t.mu.Unlock()
	if staleOut != nil {
		staleOut.c.Close()
	}
	t.touch(peer, f.EncodedLen())
	t.deliver(f, peer)
	for {
		f := t.pool.Get().(*Frame)
		if err := ReadWire(br, f, &scratch, t.cfg.MaxFrame); err != nil {
			t.pool.Put(f)
			if !t.closed.Load() {
				t.logf("tcp rank %d: conn from rank %d closed: %v", t.cfg.Rank, peer, err)
			}
			return
		}
		t.mu.Lock()
		fenced := t.peerGen[peer] > gen
		t.mu.Unlock()
		if fenced {
			// A newer incarnation of the peer has said hello: everything still
			// in flight on this connection predates its death. Discard.
			t.pool.Put(f)
			t.logf("tcp rank %d: dropping post-rejoin frame from stale generation %d of rank %d",
				t.cfg.Rank, gen, peer)
			return
		}
		t.touch(peer, f.EncodedLen())
		switch f.Kind {
		case KindHeartbeat:
			id := f.Step
			f.Reset(KindHeartbeatAck, peer, id)
			f.Src = int32(t.cfg.Rank)
			// Ack only over an already-established outbound connection: the
			// reader goroutine must never block in a dial.
			t.mu.Lock()
			oc := t.out[peer]
			t.mu.Unlock()
			if oc != nil {
				if err := t.writeFrame(oc, f); err != nil {
					t.dropOut(peer, oc)
				}
			}
			t.pool.Put(f)
		case KindHeartbeatAck:
			t.mu.Lock()
			sent, ok := t.hbPending[f.Step]
			if ok {
				delete(t.hbPending, f.Step)
			}
			t.mu.Unlock()
			if ok {
				oneWay := time.Since(sent).Nanoseconds() / 2
				lk := t.link(peer)
				prev := lk.latNanos.Load()
				if prev == 0 {
					lk.latNanos.Store(oneWay)
				} else {
					lk.latNanos.Store((7*prev + oneWay) / 8) // EWMA, alpha = 1/8
				}
			}
			t.pool.Put(f)
		default:
			t.deliver(f, peer)
		}
	}
}

// deliver pushes an owned frame into the inbox (Recv copies it out and the
// pool reclaims it).
func (t *tcpTransport) deliver(f *Frame, peer int) {
	select {
	case t.inbox <- f:
	case <-t.done:
	}
}

// touch records traffic from a peer: liveness timestamp plus receive stats.
func (t *tcpTransport) touch(peer int, n int) {
	t.mu.Lock()
	t.lastSeen[peer] = time.Now()
	t.notified[peer] = false
	lk := t.linkLocked(peer)
	t.mu.Unlock()
	lk.framesRecv.Add(1)
	lk.bytesRecv.Add(int64(n))
}

// getOut returns the outbound connection to peer, dialing (with bounded
// retry and exponential backoff) if none is live.
func (t *tcpTransport) getOut(peer int) (*tcpConn, error) {
	t.mu.Lock()
	oc := t.out[peer]
	t.mu.Unlock()
	if oc != nil {
		return oc, nil
	}
	if peer < 0 || peer >= len(t.cfg.Hosts) {
		return nil, fmt.Errorf("transport: rank %d out of range for %d hosts", peer, len(t.cfg.Hosts))
	}
	addr := t.cfg.Hosts[peer]
	backoff := t.cfg.DialBackoff
	var lastErr error
	for attempt := 0; attempt < t.cfg.DialRetries; attempt++ {
		if t.closed.Load() {
			return nil, ErrClosed
		}
		c, err := net.DialTimeout("tcp", addr, t.cfg.DialTimeout)
		if err == nil {
			if tc, ok := c.(*net.TCPConn); ok {
				tc.SetNoDelay(true)
			}
			oc = &tcpConn{c: c, peer: peer}
			// Handshake: identify ourselves (and our generation) before any
			// payload.
			var hello Frame
			hello.Reset(KindHello, peer, t.cfg.Generation)
			hello.Src = int32(t.cfg.Rank)
			if err := t.writeFrame(oc, &hello); err != nil {
				c.Close()
				lastErr = err
			} else {
				t.mu.Lock()
				if existing := t.out[peer]; existing != nil {
					t.mu.Unlock()
					c.Close()
					return existing, nil
				}
				t.out[peer] = oc
				t.mu.Unlock()
				return oc, nil
			}
		} else {
			lastErr = err
		}
		// Jitter the backoff (uniform over [backoff/2, backoff]) so a whole
		// restarted fleet does not thundering-herd the rendezvous host with
		// synchronized redials. Dial timing is not part of the determinism
		// surface, so unseeded randomness is fine here.
		sleep := backoff/2 + time.Duration(rand.Int64N(int64(backoff/2)+1))
		select {
		case <-t.done:
			return nil, ErrClosed
		case <-time.After(sleep):
		}
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
	}
	// Dial exhaustion wraps DeadError so phase code treats an unreachable
	// peer the same way as one whose heartbeat timed out.
	return nil, fmt.Errorf("transport: dial rank %d (%s) failed after %d attempts (%v): %w",
		peer, addr, t.cfg.DialRetries, lastErr, &DeadError{Rank: peer})
}

// dropOut discards a broken outbound connection so the next Send redials.
func (t *tcpTransport) dropOut(peer int, oc *tcpConn) {
	t.mu.Lock()
	if t.out[peer] == oc {
		delete(t.out, peer)
	}
	t.mu.Unlock()
	oc.c.Close()
}

func (t *tcpTransport) writeFrame(oc *tcpConn, f *Frame) error {
	oc.mu.Lock()
	defer oc.mu.Unlock()
	oc.seq++
	f.Seq = oc.seq
	oc.buf = f.AppendWire(oc.buf[:0])
	oc.c.SetWriteDeadline(time.Now().Add(t.cfg.WriteTimeout))
	start := time.Now()
	_, err := oc.c.Write(oc.buf)
	if err != nil {
		return err
	}
	lk := t.link(oc.peer)
	lk.framesSent.Add(1)
	lk.bytesSent.Add(int64(len(oc.buf)))
	lk.sendNanos.Add(time.Since(start).Nanoseconds())
	return nil
}

// heartbeatLoop probes every established outbound link and synthesizes
// KindDeath notices for peers that have gone silent past the timeout.
func (t *tcpTransport) heartbeatLoop() {
	defer t.wg.Done()
	tick := time.NewTicker(t.cfg.HeartbeatEvery)
	defer tick.Stop()
	var hb Frame
	for {
		select {
		case <-t.done:
			return
		case <-tick.C:
		}
		t.mu.Lock()
		conns := make(map[int]*tcpConn, len(t.out))
		for p, oc := range t.out {
			conns[p] = oc
		}
		// Expire heartbeats nobody acked.
		if t.cfg.HeartbeatTimeout > 0 {
			cutoff := time.Now().Add(-2 * t.cfg.HeartbeatTimeout)
			for id, sent := range t.hbPending {
				if sent.Before(cutoff) {
					delete(t.hbPending, id)
				}
			}
		}
		t.mu.Unlock()
		// Probe only established connections — a heartbeat must never block
		// this loop in a dial, or death detection would stall exactly when a
		// peer is down.
		for p, oc := range conns {
			id := t.hbID.Add(1)
			t.mu.Lock()
			t.hbPending[id] = time.Now()
			t.mu.Unlock()
			hb.Reset(KindHeartbeat, p, id)
			hb.Src = int32(t.cfg.Rank)
			if err := t.writeFrame(oc, &hb); err != nil {
				t.logf("tcp rank %d: heartbeat to %d: %v", t.cfg.Rank, p, err)
				t.dropOut(p, oc)
			}
		}
		if t.cfg.HeartbeatTimeout > 0 {
			now := time.Now()
			t.mu.Lock()
			var dead []int
			for p, seen := range t.lastSeen {
				if !t.notified[p] && now.Sub(seen) > t.cfg.HeartbeatTimeout {
					t.notified[p] = true
					dead = append(dead, p)
				}
			}
			t.mu.Unlock()
			for _, p := range dead {
				t.logf("tcp rank %d: peer %d silent for >%v, declaring dead", t.cfg.Rank, p, t.cfg.HeartbeatTimeout)
				f := t.pool.Get().(*Frame)
				f.Reset(KindDeath, t.cfg.Rank, 0)
				f.Src = int32(p)
				t.deliver(f, p)
				t.mu.Lock()
				oc := t.out[p]
				t.mu.Unlock()
				if oc != nil {
					t.dropOut(p, oc)
				}
			}
		}
	}
}

// LinkStats implements StatsReporter: one entry per peer this process has
// exchanged traffic with, ordered by peer rank.
func (t *tcpTransport) LinkStats() []LinkStats {
	t.mu.Lock()
	peers := make([]int, 0, len(t.links))
	for p := range t.links {
		peers = append(peers, p)
	}
	snap := make(map[int]*tcpLink, len(t.links))
	for p, lk := range t.links {
		snap[p] = lk
	}
	t.mu.Unlock()
	sort.Ints(peers)
	out := make([]LinkStats, 0, len(peers))
	for _, p := range peers {
		lk := snap[p]
		s := LinkStats{
			Src:        t.cfg.Rank,
			Dst:        p,
			FramesSent: lk.framesSent.Load(),
			FramesRecv: lk.framesRecv.Load(),
			BytesSent:  lk.bytesSent.Load(),
			BytesRecv:  lk.bytesRecv.Load(),
			LatencySec: float64(lk.latNanos.Load()) / 1e9,
		}
		if ns := lk.sendNanos.Load(); ns > 0 {
			s.Bandwidth = float64(lk.bytesSent.Load()) / (float64(ns) / 1e9)
		}
		out = append(out, s)
	}
	return out
}

// tcpEndpoint is the single endpoint a tcpTransport serves.
type tcpEndpoint tcpTransport

func (e *tcpEndpoint) Rank() int { return e.cfg.Rank }

func (e *tcpEndpoint) Send(f *Frame) error {
	t := (*tcpTransport)(e)
	if t.closed.Load() {
		return ErrClosed
	}
	f.Src = int32(t.cfg.Rank)
	peer := int(f.Dst)
	oc, err := t.getOut(peer)
	if err != nil {
		return err
	}
	if err := t.writeFrame(oc, f); err != nil {
		// One transparent redial: the peer may have restarted.
		t.dropOut(peer, oc)
		oc, rerr := t.getOut(peer)
		if rerr != nil {
			return &DeadError{Rank: peer}
		}
		if err := t.writeFrame(oc, f); err != nil {
			t.dropOut(peer, oc)
			return &DeadError{Rank: peer}
		}
	}
	return nil
}

func (e *tcpEndpoint) Recv(f *Frame) error {
	t := (*tcpTransport)(e)
	if t.closed.Load() {
		return ErrClosed
	}
	select {
	case in := <-t.inbox:
		CopyFrame(f, in)
		t.pool.Put(in)
		return nil
	case <-t.done:
		return ErrClosed
	}
}

// RecvTimeout implements TimedRecver.
func (e *tcpEndpoint) RecvTimeout(f *Frame, d time.Duration) (bool, error) {
	t := (*tcpTransport)(e)
	if t.closed.Load() {
		return false, ErrClosed
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case in := <-t.inbox:
		CopyFrame(f, in)
		t.pool.Put(in)
		return true, nil
	case <-t.done:
		return false, ErrClosed
	case <-timer.C:
		return false, nil
	}
}

func (e *tcpEndpoint) Close() error { return nil }
