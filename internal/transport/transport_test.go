package transport

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// exchange sends one frame r -> (r+1)%n on every endpoint and verifies each
// endpoint receives exactly the expected payload.
func exchangeRing(t *testing.T, tr Transport, step uint64) {
	t.Helper()
	n := tr.Ranks()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		ep, err := tr.Endpoint(r)
		if err != nil {
			t.Fatalf("endpoint %d: %v", r, err)
		}
		wg.Add(1)
		go func(r int, ep Endpoint) {
			defer wg.Done()
			var f Frame
			f.Reset(KindGhostPos, (r+1)%n, step)
			vecs := f.EnsureVecs(3)
			for i := range vecs {
				vecs[i] = [3]float64{float64(r), float64(i), float64(step)}
			}
			if err := ep.Send(&f); err != nil {
				errs[r] = err
				return
			}
			var in Frame
			for {
				if err := ep.Recv(&in); err != nil {
					errs[r] = err
					return
				}
				if in.Kind != KindGhostPos || in.Step != step {
					continue // stray control traffic (hello etc.)
				}
				break
			}
			want := (r - 1 + n) % n
			if int(in.Src) != want {
				errs[r] = errors.New("wrong source")
				return
			}
			if len(in.Vecs) != 3 || in.Vecs[0][0] != float64(want) || in.Vecs[2][2] != float64(step) {
				errs[r] = errors.New("payload mismatch")
			}
		}(r, ep)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestChanRing(t *testing.T) {
	tr := NewChan(4)
	defer tr.Close()
	for step := uint64(1); step <= 5; step++ {
		exchangeRing(t, tr, step)
	}
}

func TestChanSteadyStateAllocs(t *testing.T) {
	tr := NewChan(2)
	defer tr.Close()
	e0, _ := tr.Endpoint(0)
	e1, _ := tr.Endpoint(1)
	var out, in Frame
	roundTrip := func() {
		out.Reset(KindGhostPos, 1, 9)
		vecs := out.EnsureVecs(8)
		for i := range vecs {
			vecs[i][0] = float64(i)
		}
		if err := e0.Send(&out); err != nil {
			t.Fatal(err)
		}
		if err := e1.Recv(&in); err != nil {
			t.Fatal(err)
		}
	}
	roundTrip() // warm capacities
	allocs := testing.AllocsPerRun(100, roundTrip)
	if allocs != 0 {
		t.Fatalf("steady-state chan exchange allocates %.1f/op, want 0", allocs)
	}
}

func TestChanKillUnblocksAndRevives(t *testing.T) {
	tr := NewChan(3)
	defer tr.Close()
	killer := tr.(Killer)
	e0, _ := tr.Endpoint(0)
	e2, _ := tr.Endpoint(2)

	// A receiver blocked on a peer that dies must observe the death.
	got := make(chan Frame, 1)
	go func() {
		var f Frame
		if err := e0.Recv(&f); err == nil {
			got <- f
		}
	}()
	time.Sleep(10 * time.Millisecond)
	killer.Kill(1)
	select {
	case f := <-got:
		if f.Kind != KindDeath || f.Src != 1 {
			t.Fatalf("expected death notice for rank 1, got kind=%v src=%d", f.Kind, f.Src)
		}
	case <-time.After(time.Second):
		t.Fatal("blocked Recv did not observe the death")
	}

	// Sends to the dead rank fail with DeadError.
	var f Frame
	f.Reset(KindGhostPos, 1, 1)
	err := e2.Send(&f)
	if rank, ok := IsDead(err); !ok || rank != 1 {
		t.Fatalf("send to dead rank: err=%v, want DeadError{1}", err)
	}

	// The victim's own endpoint fails too.
	e1, _ := tr.Endpoint(1)
	f.Reset(KindGhostPos, 0, 1)
	if _, ok := IsDead(e1.Send(&f)); !ok {
		t.Fatal("dead rank's own Send did not fail")
	}

	// Revive drains stale state; the world works again.
	if err := tr.(Reviver).Revive(1); err != nil {
		t.Fatal(err)
	}
	// Consume the death notice rank 2 received, then run a clean ring.
	exchangeRing(t, tr, 2)
}

func TestFaultNoOpsIsTransparent(t *testing.T) {
	tr := NewFault(NewChan(3), NoFaults())
	defer tr.Close()
	for step := uint64(1); step <= 3; step++ {
		exchangeRing(t, tr, step)
	}
	if s := tr.Stats(); s != (FaultStats{}) {
		t.Fatalf("no-op plan injected faults: %+v", s)
	}
}

func TestFaultDropDupDelayDeliver(t *testing.T) {
	tr := NewFault(NewChan(2), FaultPlan{
		Seed:            42,
		Drop:            0.3,
		Dup:             0.3,
		Delay:           0.3,
		MaxDelay:        100 * time.Microsecond,
		RetransmitDelay: 100 * time.Microsecond,
		KillRank:        -1,
	})
	defer tr.Close()
	e0, _ := tr.Endpoint(0)
	e1, _ := tr.Endpoint(1)
	const rounds = 60
	done := make(chan error, 1)
	go func() {
		var in Frame
		for step := uint64(1); step <= rounds; step++ {
			// Idempotent receive: drain until this step's frame arrives,
			// discarding duplicates of earlier steps.
			for {
				if err := e1.Recv(&in); err != nil {
					done <- err
					return
				}
				if in.Kind == KindGhostPos && in.Step == step {
					break
				}
			}
			if in.Scalars[0] != float64(step) {
				done <- errors.New("payload mismatch")
				return
			}
		}
		done <- nil
	}()
	var out Frame
	for step := uint64(1); step <= rounds; step++ {
		out.Reset(KindGhostPos, 1, step)
		out.EnsureScalars(1)[0] = float64(step)
		if err := e0.Send(&out); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	if s.Drops == 0 || s.Dups == 0 || s.Delays == 0 {
		t.Fatalf("expected all fault classes to fire over %d rounds: %+v", rounds, s)
	}
	if s.Kills != 0 {
		t.Fatalf("disarmed plan killed a rank: %+v", s)
	}
}

func TestFaultScheduledKill(t *testing.T) {
	tr := NewFault(NewChan(2), FaultPlan{KillRank: 1, KillAtStep: 3})
	defer tr.Close()
	e1, _ := tr.Endpoint(1)
	var f Frame
	for step := uint64(1); step <= 5; step++ {
		f.Reset(KindGhostPos, 0, step)
		err := e1.Send(&f)
		if step < 3 && err != nil {
			t.Fatalf("step %d: premature death: %v", step, err)
		}
		if step >= 3 {
			if rank, ok := IsDead(err); !ok || rank != 1 {
				t.Fatalf("step %d: want DeadError{1}, got %v", step, err)
			}
		}
	}
	if s := tr.Stats(); s.Kills != 1 {
		t.Fatalf("kill fired %d times, want 1", s.Kills)
	}
}

func TestGroupRoutesAcrossMembers(t *testing.T) {
	// Two single-rank worlds cannot form a group ring, so use chan members
	// that each claim to serve a full world but error for foreign ranks.
	a := NewChan(3)
	defer a.Close()
	g := NewGroup(a)
	if g.Ranks() != 3 {
		t.Fatalf("group ranks = %d, want 3", g.Ranks())
	}
	exchangeRing(t, g, 1)
}
