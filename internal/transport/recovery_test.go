package transport

import (
	"net"
	"testing"
	"time"
)

// writeRaw encodes f and writes it on a raw connection — the test plays a
// peer process by hand, so it can hold two live connections for the same
// rank (something a real tcpTransport never does) and prove the receiver
// fences the superseded one.
func writeRaw(t *testing.T, c net.Conn, f *Frame) {
	t.Helper()
	if _, err := c.Write(f.AppendWire(nil)); err != nil {
		t.Fatalf("raw write: %v", err)
	}
}

// TestTCPGenerationFencing pins the rejoin fence at the wire level: once a
// newer-generation hello arrives from a rank, every frame still in flight
// on the older generation's connection — duplicated, reordered, or simply
// slow — is dropped, and a whole connection that says hello with a stale
// generation is refused. This is what makes a replacement rankd safe to
// admit while its predecessor's frames are still buffered in the kernel.
func TestTCPGenerationFencing(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hosts := []string{"127.0.0.1:1", ln.Addr().String()} // rank 0 is played by raw conns
	tr, err := NewTCP(TCPConfig{
		Rank: 1, Hosts: hosts, Listener: ln,
		HeartbeatEvery: -1, HeartbeatTimeout: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	ep, err := tr.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	te := ep.(TimedRecver)

	dial := func() net.Conn {
		c, err := net.Dial("tcp", hosts[1])
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	hello := func(c net.Conn, gen uint64) {
		var f Frame
		f.Reset(KindHello, 1, gen)
		f.Src = 0
		writeRaw(t, c, &f)
	}
	data := func(c net.Conn, step uint64) {
		var f Frame
		f.Reset(KindGhostPos, 1, step)
		f.Src = 0
		f.EnsureVecs(4)
		writeRaw(t, c, &f)
	}
	// waitFor drains the inbox until a KindGhostPos with the wanted step
	// surfaces, recording every ghost step seen along the way.
	seen := map[uint64]bool{}
	waitFor := func(step uint64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		var in Frame
		for time.Now().Before(deadline) {
			got, err := te.RecvTimeout(&in, 100*time.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			if got && in.Kind == KindGhostPos {
				seen[in.Step] = true
				if in.Step == step {
					return
				}
			}
		}
		t.Fatalf("frame with step %d never surfaced (seen: %v)", step, seen)
	}

	// Generation 0 connects and delivers.
	connA := dial()
	defer connA.Close()
	hello(connA, 0)
	data(connA, 1)
	waitFor(1)

	// The replacement's generation-1 connection supersedes it.
	connB := dial()
	defer connB.Close()
	hello(connB, 1)
	data(connB, 2)
	waitFor(2)

	// A pre-death frame still in flight on the old connection must be
	// fenced; traffic on the new connection keeps flowing. Step 4 arriving
	// proves the receiver processed past the point where step 3 would have
	// surfaced (per-connection reads are in order, and the fence drops the
	// whole stale connection on its next read).
	data(connA, 3)
	data(connB, 4)
	waitFor(4)
	if seen[3] {
		t.Fatal("stale generation-0 frame leaked through the fence")
	}

	// A whole connection that greets with an already-superseded generation
	// is refused at the handshake.
	connC := dial()
	defer connC.Close()
	hello(connC, 0)
	data(connC, 5)
	data(connB, 6)
	waitFor(6)
	if seen[5] {
		t.Fatal("stale-generation handshake was not refused")
	}
}

// TestFaultChaosScheduleDeterministic pins the chaos contract: the kill
// schedule is a pure function of the seed and plan — same seed, same
// victims at the same step tags, every run — with step tags respecting the
// configured spacing and victims confined to the configured pool.
func TestFaultChaosScheduleDeterministic(t *testing.T) {
	plan := FaultPlan{Seed: 424242, ChaosKills: 8, ChaosFirst: 10, ChaosEvery: 25, KillRank: -1}
	a := plan.ChaosSchedule(4)
	b := plan.ChaosSchedule(4)
	if len(a) != 8 || len(b) != 8 {
		t.Fatalf("schedule lengths %d/%d, want 8", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at kill %d: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Rank < 0 || a[i].Rank >= 4 {
			t.Errorf("kill %d victim %d outside pool [0, 4)", i, a[i].Rank)
		}
		lo := uint64(10 + i*25)
		if a[i].Step < lo || a[i].Step > lo+25/2 {
			t.Errorf("kill %d at step %d outside [%d, %d]", i, a[i].Step, lo, lo+25/2)
		}
	}
	if other := (FaultPlan{Seed: 424243, ChaosKills: 8, ChaosFirst: 10, ChaosEvery: 25}).ChaosSchedule(4); len(other) == len(a) {
		same := true
		for i := range a {
			if a[i] != other[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced an identical chaos schedule")
		}
	}
}

// TestFaultChaosKillFires drives a live chaos kill: once a data frame's step
// tag reaches the schedule, the victim dies on the inner transport and the
// fault layer's counters record it.
func TestFaultChaosKillFires(t *testing.T) {
	ft := NewFault(NewChan(3), FaultPlan{Seed: 7, ChaosKills: 1, ChaosFirst: 5, ChaosRanks: 2, KillRank: -1})
	sched, fired := ft.Chaos()
	if len(sched) != 1 || fired != 0 {
		t.Fatalf("armed schedule %v (%d fired), want 1 pending kill", sched, fired)
	}
	victim := sched[0].Rank
	sender := 2 // outside the victim pool: never the casualty
	ep, err := ft.Endpoint(sender)
	if err != nil {
		t.Fatal(err)
	}
	var f Frame
	f.Reset(KindGhostPos, victim, 1)
	if err := ep.Send(&f); err != nil {
		t.Fatalf("pre-schedule send: %v", err)
	}
	if _, n := ft.Chaos(); n != 0 {
		t.Fatalf("kill fired at step 1, scheduled for %d", sched[0].Step)
	}
	f.Reset(KindGhostPos, victim, sched[0].Step)
	err = ep.Send(&f)
	if _, ok := IsDead(err); err != nil && !ok {
		t.Fatalf("send at the kill step: %v", err)
	}
	if _, n := ft.Chaos(); n != 1 {
		t.Fatal("scheduled chaos kill did not fire")
	}
	if st := ft.Stats(); st.Kills != 1 {
		t.Fatalf("stats record %d kills, want 1", st.Kills)
	}
	// The victim is dead on the inner transport: sends to it now fail.
	f.Reset(KindGhostPos, victim, sched[0].Step+1)
	if err := ep.Send(&f); err == nil {
		t.Fatal("send to the chaos victim succeeded after the kill")
	} else if d, ok := IsDead(err); !ok || d != victim {
		t.Fatalf("send to dead victim: %v, want DeadError for rank %d", err, victim)
	}
}
