package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Kind discriminates frame payloads. The runtime's exchange phases and the
// driver/rank protocol of the multi-process runtime share this one set.
type Kind uint8

const (
	KindInvalid Kind = iota
	// KindHello identifies a peer on a fresh connection (Src = sender rank,
	// Step = sender's fleet generation). A connection whose hello carries a
	// generation older than the newest one seen from that rank is fenced:
	// every frame it delivers is discarded, which is what makes duplicate or
	// reordered pre-death traffic harmless across a rejoin.
	KindHello
	// KindConfig ships the run configuration + serialized model to a rank
	// daemon (Bytes = JSON).
	KindConfig
	// KindRebuild broadcasts wrapped global positions at a neighbor-list
	// rebuild (Vecs = positions).
	KindRebuild
	// KindCounts returns a rank's per-center pair counts to the driver
	// (Ints = [nOwned, nGhosts, nInterior, ghostRows, nPairs, counts...]).
	KindCounts
	// KindLayout broadcasts the global slot prefix (Ints = pairStart).
	KindLayout
	// KindSlots returns a rank's local-order global slot ids (Ints = slotOf).
	KindSlots
	// KindFwdPlan is the receiver-driven ghost plan: dst tells src which
	// global atoms it needs, in dst's ghost-arena order (Ints = atom ids).
	KindFwdPlan
	// KindRowPlan is the sender-driven row plan: src tells dst which pair
	// slots it will push rows for, ascending (Ints = interleaved
	// [slot, neighborAtom] pairs).
	KindRowPlan
	// KindGhostPos carries one step's ghost positions for a link, in the
	// agreed forward-plan order (Vecs).
	KindGhostPos
	// KindRows carries one step's frontier force rows for a link, in the
	// agreed row-plan order (Vecs).
	KindRows
	// KindOwnedPos pushes a rank's owned wrapped positions for one step
	// (driver -> rank; Vecs).
	KindOwnedPos
	// KindForces returns a rank's reduced owned forces and local-order pair
	// energies for one step (rank -> driver; Vecs = forces, Scalars = pairE).
	KindForces
	// KindStatsReq asks a rank daemon for its transport link statistics.
	KindStatsReq
	// KindStatsRep answers KindStatsReq (Bytes = JSON []LinkStats).
	KindStatsRep
	// KindHeartbeat and KindHeartbeatAck are the liveness probes of the TCP
	// transport; they never surface through Recv.
	KindHeartbeat
	KindHeartbeatAck
	// KindDeath is synthesized into live inboxes when a peer dies
	// (Src = the dead rank).
	KindDeath
	// KindShutdown tells a rank daemon to exit cleanly.
	KindShutdown
	// KindReplica streams one rank's owned-atom state to its buddy rank
	// (Step = MD step of the snapshot; Ints = global atom ids; Vecs =
	// positions then velocities, 2*len(Ints) entries).
	KindReplica
	// KindReplicaReq asks a rank for every replica shard it holds
	// (driver -> rank; Step = request tick, echoed by the reply).
	KindReplicaReq
	// KindReplicaRep answers KindReplicaReq with all stored shards packed
	// into one frame (Ints = [nShards, then per shard: owner, nIds, then all
	// ids concatenated]; Scalars = per-shard snapshot steps; Vecs =
	// concatenated per-shard pos||vel).
	KindReplicaRep
	// KindRecover opens a new fleet generation on the survivors after a rank
	// death (driver -> rank; Step = new generation). Ranks clear their dead
	// marks and parked phase frames, then ack with KindRecover at the same
	// Step.
	KindRecover
	// KindAbort is a rank's NACK for a phase it could not complete because a
	// peer died mid-phase (rank -> driver; Step = the phase tick being
	// served, Ints[0] = the dead rank id, or -1 if unknown).
	KindAbort

	kindEnd
)

var kindNames = [...]string{
	KindInvalid:      "invalid",
	KindHello:        "hello",
	KindConfig:       "config",
	KindRebuild:      "rebuild",
	KindCounts:       "counts",
	KindLayout:       "layout",
	KindSlots:        "slots",
	KindFwdPlan:      "fwd-plan",
	KindRowPlan:      "row-plan",
	KindGhostPos:     "ghost-pos",
	KindRows:         "rows",
	KindOwnedPos:     "owned-pos",
	KindForces:       "forces",
	KindStatsReq:     "stats-req",
	KindStatsRep:     "stats-rep",
	KindHeartbeat:    "heartbeat",
	KindHeartbeatAck: "heartbeat-ack",
	KindDeath:        "death",
	KindShutdown:     "shutdown",
	KindReplica:      "replica",
	KindReplicaReq:   "replica-req",
	KindReplicaRep:   "replica-rep",
	KindRecover:      "recover",
	KindAbort:        "abort",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Frame is the single message type of the rank transport. A frame owns no
// shared state: payload slices are staged (copied or serialized) by Send and
// reused across calls, so the steady-state exchange allocates nothing once
// capacities have grown to the high-water mark.
//
// Step tags the phase the frame belongs to (MD step counter for per-step
// payloads, rebuild counter for plan frames); receivers use (Src, Kind,
// Step) to discard duplicates and stale frames, which is what makes the
// fault transport's duplicate delivery harmless.
type Frame struct {
	Kind    Kind
	Src     int32
	Dst     int32
	Step    uint64
	Seq     uint64 // per-link monotone sequence, stamped by Send
	Ints    []int32
	Vecs    [][3]float64
	Scalars []float64
	Bytes   []byte
}

// Reset re-tags the frame and truncates every payload, keeping capacity.
func (f *Frame) Reset(kind Kind, dst int, step uint64) {
	f.Kind = kind
	f.Dst = int32(dst)
	f.Step = step
	f.Seq = 0
	f.Ints = f.Ints[:0]
	f.Vecs = f.Vecs[:0]
	f.Scalars = f.Scalars[:0]
	f.Bytes = f.Bytes[:0]
}

// EnsureInts sizes f.Ts to n, reusing capacity, and returns the slice.
func (f *Frame) EnsureInts(n int) []int32 {
	if cap(f.Ints) < n {
		f.Ints = make([]int32, n)
	}
	f.Ints = f.Ints[:n]
	return f.Ints
}

// EnsureVecs sizes f.Vecs to n, reusing capacity, and returns the slice.
func (f *Frame) EnsureVecs(n int) [][3]float64 {
	if cap(f.Vecs) < n {
		f.Vecs = make([][3]float64, n)
	}
	f.Vecs = f.Vecs[:n]
	return f.Vecs
}

// EnsureScalars sizes f.Scalars to n, reusing capacity, and returns the slice.
func (f *Frame) EnsureScalars(n int) []float64 {
	if cap(f.Scalars) < n {
		f.Scalars = make([]float64, n)
	}
	f.Scalars = f.Scalars[:n]
	return f.Scalars
}

// EnsureBytes sizes f.Bytes to n, reusing capacity, and returns the slice.
func (f *Frame) EnsureBytes(n int) []byte {
	if cap(f.Bytes) < n {
		f.Bytes = make([]byte, n)
	}
	f.Bytes = f.Bytes[:n]
	return f.Bytes
}

// CopyFrame copies src into dst, reusing dst's payload capacity. It is the
// staging primitive of the in-process transport and of Recv.
func CopyFrame(dst, src *Frame) {
	dst.Kind = src.Kind
	dst.Src = src.Src
	dst.Dst = src.Dst
	dst.Step = src.Step
	dst.Seq = src.Seq
	copy(dst.EnsureInts(len(src.Ints)), src.Ints)
	copy(dst.EnsureVecs(len(src.Vecs)), src.Vecs)
	copy(dst.EnsureScalars(len(src.Scalars)), src.Scalars)
	copy(dst.EnsureBytes(len(src.Bytes)), src.Bytes)
}

// Wire format (little-endian):
//
//	u32  body length (everything after this word)
//	u16  magic "AF" (0x4146)
//	u8   version (1)
//	u8   kind
//	i32  src, i32 dst
//	u64  step, u64 seq
//	u32  nInts, u32 nVecs, u32 nScalars, u32 nBytes
//	...  ints (i32 each), vecs (3×f64 each), scalars (f64 each), bytes
//
// Floats travel as IEEE-754 bit patterns (math.Float64bits), so a decoded
// trajectory is bit-identical to the sender's — the property the runtime's
// cross-transport determinism tests pin down.
const (
	frameMagic   = 0x4146
	frameVersion = 1
	headerLen    = 2 + 1 + 1 + 4 + 4 + 8 + 8 + 4*4

	// DefaultMaxFrame bounds a decoded body so a corrupt or hostile length
	// prefix cannot balloon memory.
	DefaultMaxFrame = 1 << 28
)

// EncodedLen returns the body length (excluding the 4-byte length prefix).
func (f *Frame) EncodedLen() int {
	return headerLen + 4*len(f.Ints) + 24*len(f.Vecs) + 8*len(f.Scalars) + len(f.Bytes)
}

// AppendWire appends the length-prefixed wire encoding of f to buf.
func (f *Frame) AppendWire(buf []byte) []byte {
	n := f.EncodedLen()
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	buf = binary.LittleEndian.AppendUint16(buf, frameMagic)
	buf = append(buf, frameVersion, byte(f.Kind))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(f.Src))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(f.Dst))
	buf = binary.LittleEndian.AppendUint64(buf, f.Step)
	buf = binary.LittleEndian.AppendUint64(buf, f.Seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(f.Ints)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(f.Vecs)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(f.Scalars)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(f.Bytes)))
	for _, v := range f.Ints {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	for _, v := range f.Vecs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v[0]))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v[1]))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v[2]))
	}
	for _, v := range f.Scalars {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	buf = append(buf, f.Bytes...)
	return buf
}

// DecodeBody decodes one frame body (the bytes after the length prefix)
// into f, reusing f's payload capacity.
func (f *Frame) DecodeBody(b []byte) error {
	if len(b) < headerLen {
		return fmt.Errorf("transport: short frame body (%d bytes)", len(b))
	}
	if binary.LittleEndian.Uint16(b[0:2]) != frameMagic {
		return fmt.Errorf("transport: bad frame magic %#x", binary.LittleEndian.Uint16(b[0:2]))
	}
	if b[2] != frameVersion {
		return fmt.Errorf("transport: unsupported frame version %d", b[2])
	}
	kind := Kind(b[3])
	if kind == KindInvalid || kind >= kindEnd {
		return fmt.Errorf("transport: unknown frame kind %d", b[3])
	}
	nInts := int(binary.LittleEndian.Uint32(b[28:32]))
	nVecs := int(binary.LittleEndian.Uint32(b[32:36]))
	nScalars := int(binary.LittleEndian.Uint32(b[36:40]))
	nBytes := int(binary.LittleEndian.Uint32(b[40:44]))
	want := headerLen + 4*nInts + 24*nVecs + 8*nScalars + nBytes
	if nInts < 0 || nVecs < 0 || nScalars < 0 || nBytes < 0 || want != len(b) {
		return fmt.Errorf("transport: frame body length %d does not match payload counts", len(b))
	}
	f.Kind = kind
	f.Src = int32(binary.LittleEndian.Uint32(b[4:8]))
	f.Dst = int32(binary.LittleEndian.Uint32(b[8:12]))
	f.Step = binary.LittleEndian.Uint64(b[12:20])
	f.Seq = binary.LittleEndian.Uint64(b[20:28])
	p := headerLen
	ints := f.EnsureInts(nInts)
	for i := range ints {
		ints[i] = int32(binary.LittleEndian.Uint32(b[p : p+4]))
		p += 4
	}
	vecs := f.EnsureVecs(nVecs)
	for i := range vecs {
		vecs[i][0] = math.Float64frombits(binary.LittleEndian.Uint64(b[p : p+8]))
		vecs[i][1] = math.Float64frombits(binary.LittleEndian.Uint64(b[p+8 : p+16]))
		vecs[i][2] = math.Float64frombits(binary.LittleEndian.Uint64(b[p+16 : p+24]))
		p += 24
	}
	scalars := f.EnsureScalars(nScalars)
	for i := range scalars {
		scalars[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[p : p+8]))
		p += 8
	}
	copy(f.EnsureBytes(nBytes), b[p:])
	return nil
}

// ReadWire reads one length-prefixed frame from r into f, growing *scratch
// as needed. maxLen bounds the accepted body length (0 means
// DefaultMaxFrame).
func ReadWire(r io.Reader, f *Frame, scratch *[]byte, maxLen int) error {
	if maxLen <= 0 {
		maxLen = DefaultMaxFrame
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return err
	}
	n := int(binary.LittleEndian.Uint32(lenBuf[:]))
	if n < headerLen || n > maxLen {
		return fmt.Errorf("transport: frame length %d out of range [%d, %d]", n, headerLen, maxLen)
	}
	if cap(*scratch) < n {
		*scratch = make([]byte, n)
	}
	body := (*scratch)[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	return f.DecodeBody(body)
}
