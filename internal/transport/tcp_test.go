package transport

import (
	"net"
	"testing"
	"time"
)

// newLocalTCPWorld builds n TCP transports on ephemeral localhost ports,
// all inside this process — the same topology the multi-process runtime
// uses, minus exec.
func newLocalTCPWorld(t *testing.T, n int, cfg TCPConfig) []Transport {
	t.Helper()
	listeners := make([]net.Listener, n)
	hosts := make([]string, n)
	for r := 0; r < n; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[r] = ln
		hosts[r] = ln.Addr().String()
	}
	world := make([]Transport, n)
	for r := 0; r < n; r++ {
		c := cfg
		c.Rank = r
		c.Hosts = hosts
		c.Listener = listeners[r]
		tr, err := NewTCP(c)
		if err != nil {
			t.Fatal(err)
		}
		world[r] = tr
		t.Cleanup(func() { tr.Close() })
	}
	return world
}

func TestTCPRing(t *testing.T) {
	world := newLocalTCPWorld(t, 4, TCPConfig{})
	g := NewGroup(world...)
	for step := uint64(1); step <= 5; step++ {
		exchangeRing(t, g, step)
	}
}

func TestTCPLargeFrame(t *testing.T) {
	world := newLocalTCPWorld(t, 2, TCPConfig{})
	e0, _ := world[0].Endpoint(0)
	e1, _ := world[1].Endpoint(1)
	var f Frame
	f.Reset(KindGhostPos, 1, 1)
	vecs := f.EnsureVecs(100000)
	for i := range vecs {
		vecs[i] = [3]float64{float64(i), -float64(i), 0.5 * float64(i)}
	}
	if err := e0.Send(&f); err != nil {
		t.Fatal(err)
	}
	var in Frame
	for {
		if err := e1.Recv(&in); err != nil {
			t.Fatal(err)
		}
		if in.Kind == KindGhostPos {
			break
		}
	}
	if len(in.Vecs) != 100000 {
		t.Fatalf("got %d vecs, want 100000", len(in.Vecs))
	}
	for i := 0; i < len(in.Vecs); i += 9973 {
		if in.Vecs[i] != [3]float64{float64(i), -float64(i), 0.5 * float64(i)} {
			t.Fatalf("vec %d corrupted: %v", i, in.Vecs[i])
		}
	}
}

func TestTCPLinkStatsAndLatency(t *testing.T) {
	world := newLocalTCPWorld(t, 2, TCPConfig{
		HeartbeatEvery:   10 * time.Millisecond,
		HeartbeatTimeout: 5 * time.Second,
	})
	e0, _ := world[0].Endpoint(0)
	e1, _ := world[1].Endpoint(1)
	var f, in Frame
	for step := uint64(1); step <= 10; step++ {
		f.Reset(KindGhostPos, 1, step)
		f.EnsureVecs(64)
		if err := e0.Send(&f); err != nil {
			t.Fatal(err)
		}
		for {
			if err := e1.Recv(&in); err != nil {
				t.Fatal(err)
			}
			if in.Kind == KindGhostPos && in.Step == step {
				break
			}
		}
		// Reply so rank 1 establishes its outbound link (acks + stats).
		f.Reset(KindRows, 0, step)
		if err := e1.Send(&f); err != nil {
			t.Fatal(err)
		}
		for {
			if err := e0.Recv(&in); err != nil {
				t.Fatal(err)
			}
			if in.Kind == KindRows && in.Step == step {
				break
			}
		}
	}
	// Give heartbeats a few periods to measure RTT.
	deadline := time.Now().Add(2 * time.Second)
	for {
		stats := world[0].(StatsReporter).LinkStats()
		if len(stats) == 1 && stats[0].Dst == 1 && stats[0].LatencySec > 0 && stats[0].Bandwidth > 0 {
			if stats[0].FramesSent == 0 || stats[0].BytesSent == 0 || stats[0].FramesRecv == 0 {
				t.Fatalf("counters missing: %+v", stats[0])
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no measured latency after heartbeats: %+v", stats)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestTCPHeartbeatDeathAndRejoin(t *testing.T) {
	listeners := make([]net.Listener, 2)
	hosts := make([]string, 2)
	for r := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[r] = ln
		hosts[r] = ln.Addr().String()
	}
	mk := func(rank int, ln net.Listener) Transport {
		tr, err := NewTCP(TCPConfig{
			Rank: rank, Hosts: hosts, Listener: ln,
			HeartbeatEvery:   10 * time.Millisecond,
			HeartbeatTimeout: 150 * time.Millisecond,
			DialRetries:      60,
			DialBackoff:      10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	t0 := mk(0, listeners[0])
	defer t0.Close()
	t1 := mk(1, listeners[1])

	e0, _ := t0.Endpoint(0)
	e1, _ := t1.Endpoint(1)
	var f, in Frame
	f.Reset(KindGhostPos, 1, 1)
	if err := e0.Send(&f); err != nil {
		t.Fatal(err)
	}
	for {
		if err := e1.Recv(&in); err != nil {
			t.Fatal(err)
		}
		if in.Kind == KindGhostPos {
			break
		}
	}
	f.Reset(KindRows, 0, 1)
	if err := e1.Send(&f); err != nil {
		t.Fatal(err)
	}

	// Kill rank 1's process (close its transport). Rank 0 must detect the
	// silence and synthesize a death notice.
	t1.Close()
	deathSeen := false
	deadline := time.Now().Add(5 * time.Second)
	for !deathSeen && time.Now().Before(deadline) {
		if err := e0.Recv(&in); err != nil {
			t.Fatal(err)
		}
		if in.Kind == KindDeath && in.Src == 1 {
			deathSeen = true
		}
	}
	if !deathSeen {
		t.Fatal("heartbeat timeout did not synthesize a death notice")
	}

	// "Restart" rank 1 on the same address and rejoin: rank 0's next Send
	// redials, and the Hello surfaces on rank 0's inbox.
	ln, err := net.Listen("tcp", hosts[1])
	if err != nil {
		t.Fatal(err)
	}
	t1b := mk(1, ln)
	defer t1b.Close()
	e1b, _ := t1b.Endpoint(1)
	f.Reset(KindGhostPos, 1, 2)
	if err := e0.Send(&f); err != nil {
		t.Fatalf("send after rejoin: %v", err)
	}
	for {
		if err := e1b.Recv(&in); err != nil {
			t.Fatal(err)
		}
		if in.Kind == KindGhostPos && in.Step == 2 {
			break
		}
	}
}
