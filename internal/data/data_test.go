package data

import (
	"bytes"
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/groundtruth"
	"repro/internal/units"
)

func TestWaterCellComposition(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	sys := WaterCell(rng)
	if sys.NumAtoms() != 192 {
		t.Fatalf("water cell has %d atoms, want 192 (paper's unit cell)", sys.NumAtoms())
	}
	comp := sys.Composition()
	if comp[units.O] != 64 || comp[units.H] != 128 {
		t.Fatalf("composition %v, want 64 O / 128 H", comp)
	}
	if !sys.PBC {
		t.Fatal("water cell must be periodic")
	}
	// Density check: 0.0334 molecules/A^3 within 5%.
	dens := 64 / sys.Volume()
	if math.Abs(dens-0.0334)/0.0334 > 0.05 {
		t.Fatalf("density %g far from liquid water", dens)
	}
}

func TestIceVariantsDiffer(t *testing.T) {
	b := IceCell(IceIhB)
	c := IceCell(IceIhC)
	d := IceCell(IceIhD)
	if b.NumAtoms() != 192 || c.NumAtoms() != 192 || d.NumAtoms() != 192 {
		t.Fatal("ice cells must have 192 atoms")
	}
	// Deterministic: two builds identical.
	b2 := IceCell(IceIhB)
	for i := range b.Pos {
		if b.Pos[i] != b2.Pos[i] {
			t.Fatal("ice cell not deterministic")
		}
	}
	// Variants differ in proton positions.
	same := 0
	for i := range b.Pos {
		if b.Pos[i] == c.Pos[i] {
			same++
		}
	}
	if same == len(b.Pos) {
		t.Fatal("ice variants b and c identical")
	}
	_ = d
}

func TestReplicatedWaterAtoms(t *testing.T) {
	if ReplicatedWaterAtoms(18) != 1_119_744 {
		t.Fatalf("18^3 replica = %d, want 1,119,744 (Table III)", ReplicatedWaterAtoms(18))
	}
}

func TestRandomMoleculeValence(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 20; trial++ {
		mol := RandomMolecule(rng, 3+rng.IntN(6))
		comp := mol.Composition()
		if comp[units.H] == 0 {
			t.Fatal("molecule must have hydrogens")
		}
		heavy := mol.NumAtoms() - comp[units.H]
		if heavy < 1 || heavy > 8 {
			t.Fatalf("heavy atom count %d out of range", heavy)
		}
		// No two atoms closer than 0.6 A (construction sanity).
		for i := 0; i < mol.NumAtoms(); i++ {
			for j := i + 1; j < mol.NumAtoms(); j++ {
				if mol.Distance(i, j) < 0.6 {
					t.Fatalf("atoms %d,%d overlap at %g A", i, j, mol.Distance(i, j))
				}
			}
		}
	}
}

func TestNamedMolecules(t *testing.T) {
	for _, name := range AllNamedMolecules() {
		mol := BuildNamed(name)
		if mol.NumAtoms() < 5 {
			t.Fatalf("%s too small", name)
		}
		for i := 0; i < mol.NumAtoms(); i++ {
			for j := i + 1; j < mol.NumAtoms(); j++ {
				if mol.Distance(i, j) < 0.55 {
					t.Fatalf("%s: atoms %d,%d overlap (%g A)", name, i, j, mol.Distance(i, j))
				}
			}
		}
	}
	if BuildNamed(MolRing).Composition()[units.C] != 6 {
		t.Fatal("ring must have 6 carbons")
	}
}

func TestProteinChainStructure(t *testing.T) {
	nRes := 8
	p := ProteinChain(nRes)
	if p.NumAtoms() != 10*nRes {
		t.Fatalf("protein has %d atoms, want %d", p.NumAtoms(), 10*nRes)
	}
	bb := BackboneIndices(nRes)
	if len(bb) != 3*nRes {
		t.Fatalf("backbone indices %d, want %d", len(bb), 3*nRes)
	}
	for _, i := range bb {
		sp := p.Species[i]
		if sp != units.N && sp != units.C {
			t.Fatalf("backbone atom %d is %s", i, units.Name(sp))
		}
	}
	// Consecutive CA-CA distance should be small (helix rise geometry).
	ca0, ca1 := bb[1], bb[4]
	d := p.Distance(ca0, ca1)
	if d < 1.0 || d > 6.0 {
		t.Fatalf("CA-CA distance %g implausible", d)
	}
}

func TestSolvate(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	prot := ProteinChain(4)
	sys := Solvate(prot, 6.0, rng)
	if !sys.PBC {
		t.Fatal("solvated system must be periodic")
	}
	if sys.NumAtoms() <= prot.NumAtoms() {
		t.Fatal("solvation added no water")
	}
	// Solute comes first and retains species.
	for i := 0; i < prot.NumAtoms(); i++ {
		if sys.Species[i] != prot.Species[i] {
			t.Fatal("solute species corrupted")
		}
	}
	// No O placed on top of solute atoms.
	for i := prot.NumAtoms(); i < sys.NumAtoms(); i++ {
		if sys.Species[i] != units.O {
			continue
		}
		for j := 0; j < prot.NumAtoms(); j++ {
			if sys.Distance(i, j) < 1.2 {
				t.Fatalf("water O %d overlaps solute atom %d (%g A)", i, j, sys.Distance(i, j))
			}
		}
	}
}

func TestCelluloseChains(t *testing.T) {
	sys := CelluloseChains(2, 3)
	comp := sys.Composition()
	if comp[units.C] == 0 || comp[units.O] == 0 || comp[units.H] == 0 {
		t.Fatalf("cellulose composition %v incomplete", comp)
	}
	// 2 chains x 3 units x 20 atoms (5 C + 5 O + 10 H per unit).
	if sys.NumAtoms() != 2*3*20 {
		t.Fatalf("cellulose atoms = %d", sys.NumAtoms())
	}
}

func TestCapsidShell(t *testing.T) {
	sys := CapsidShell(12, 3, 25)
	if sys.NumAtoms() != 12*3*10 {
		t.Fatalf("capsid atoms = %d", sys.NumAtoms())
	}
	// Subunit centroids should be near the requested radius.
	per := 3 * 10
	for s := 0; s < 12; s++ {
		var c [3]float64
		for i := s * per; i < (s+1)*per; i++ {
			for k := 0; k < 3; k++ {
				c[k] += sys.Pos[i][k]
			}
		}
		r := math.Sqrt(c[0]*c[0]+c[1]*c[1]+c[2]*c[2]) / float64(per)
		if math.Abs(r-25) > 6 {
			t.Fatalf("subunit %d centroid radius %g, want ~25", s, r)
		}
	}
}

func TestPaperSystemsCatalog(t *testing.T) {
	specs := PaperSystems()
	if len(specs) != 6 {
		t.Fatalf("expected 6 paper systems, got %d", len(specs))
	}
	want := map[string]int{"DHFR": 23_558, "STMV": 1_066_628, "Capsid": 44_000_000}
	for _, s := range specs {
		if w, ok := want[s.Name]; ok && s.Atoms != w {
			t.Fatalf("%s atoms = %d, want %d", s.Name, s.Atoms, w)
		}
	}
}

func TestLabelAndPerturb(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	oracle := groundtruth.New()
	mol := BuildNamed(MolAlcohol)
	Relax(oracle, mol, 40, 0.05)
	frames := PerturbedFrames(oracle, mol, 5, 0.05, rng)
	if len(frames) != 5 {
		t.Fatal("wrong frame count")
	}
	for _, f := range frames {
		if len(f.Forces) != mol.NumAtoms() {
			t.Fatal("frame forces wrong length")
		}
		if f.Energy == 0 {
			t.Fatal("unlabeled frame")
		}
	}
}

func TestRelaxReducesForces(t *testing.T) {
	oracle := groundtruth.New()
	mol := BuildNamed(MolAcid)
	_, f0 := oracle.EnergyForces(mol)
	before := maxForce(f0)
	Relax(oracle, mol, 80, 0.05)
	_, f1 := oracle.EnergyForces(mol)
	after := maxForce(f1)
	if after >= before {
		t.Fatalf("Relax did not reduce max force: %g -> %g", before, after)
	}
}

func TestMDSampledFramesDecorrelated(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	oracle := groundtruth.New()
	mol := BuildNamed(MolAlcohol)
	Relax(oracle, mol, 40, 0.05)
	frames := MDSampledFrames(oracle, mol, 3, 10, 0.25, 350, rng)
	if len(frames) != 3 {
		t.Fatal("wrong frame count")
	}
	// Successive frames must differ.
	d := 0.0
	for i := range frames[0].Sys.Pos {
		for k := 0; k < 3; k++ {
			d += math.Abs(frames[0].Sys.Pos[i][k] - frames[1].Sys.Pos[i][k])
		}
	}
	if d < 1e-4 {
		t.Fatal("MD frames identical")
	}
}

func TestQM9LikeSetRespectsByForceFilter(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	oracle := groundtruth.New()
	frames := QM9LikeSet(oracle, 4, rng)
	if len(frames) != 4 {
		t.Fatal("wrong count")
	}
	lim := 0.25 * units.HartreePerBohrToEVPerA
	for _, f := range frames {
		if maxForce(f.Forces) > lim {
			t.Fatal("force filter violated")
		}
	}
}

func TestXYZRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	sys := WaterBox(rng, 2, 2, 2)
	var buf bytes.Buffer
	if err := WriteXYZ(&buf, sys, "test frame"); err != nil {
		t.Fatal(err)
	}
	back, err := ReadXYZ(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumAtoms() != sys.NumAtoms() || !back.PBC {
		t.Fatal("XYZ round trip lost atoms or periodicity")
	}
	for k := 0; k < 3; k++ {
		if math.Abs(back.Cell[k]-sys.Cell[k]) > 1e-6 {
			t.Fatal("cell not preserved")
		}
	}
	for i := range sys.Pos {
		if back.Species[i] != sys.Species[i] {
			t.Fatal("species not preserved")
		}
		for k := 0; k < 3; k++ {
			if math.Abs(back.Pos[i][k]-sys.Pos[i][k]) > 1e-6 {
				t.Fatal("positions not preserved")
			}
		}
	}
}

func TestXYZNonPeriodic(t *testing.T) {
	mol := BuildNamed(MolAcid)
	var buf bytes.Buffer
	if err := WriteXYZ(&buf, mol, "acid"); err != nil {
		t.Fatal(err)
	}
	back, err := ReadXYZ(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.PBC || back.NumAtoms() != mol.NumAtoms() {
		t.Fatal("non-periodic round trip wrong")
	}
}

func TestXYZErrors(t *testing.T) {
	if _, err := ReadXYZ(strings.NewReader("not a number\ncomment\n")); err == nil {
		t.Fatal("bad count must error")
	}
	if _, err := ReadXYZ(strings.NewReader("2\ncomment\nO 0 0 0\n")); err == nil {
		t.Fatal("truncated frame must error")
	}
	if _, err := ReadXYZ(strings.NewReader("1\ncomment\nXx 0 0 0\n")); err == nil {
		t.Fatal("unknown element must error")
	}
}
