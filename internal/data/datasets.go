package data

import (
	"math"
	"math/rand/v2"

	"repro/internal/atoms"
	"repro/internal/groundtruth"
	"repro/internal/md"
	"repro/internal/units"
)

// Labeler computes reference labels for a structure (the oracle implements
// this; tests can substitute cheaper functions).
type Labeler interface {
	EnergyForces(sys *atoms.System) (float64, [][3]float64)
}

// Label evaluates the labeler on each system and returns labeled frames.
func Label(lab Labeler, systems []*atoms.System) []*atoms.Frame {
	frames := make([]*atoms.Frame, len(systems))
	for i, s := range systems {
		e, f := lab.EnergyForces(s)
		frames[i] = &atoms.Frame{Sys: s, Energy: e, Forces: f}
	}
	return frames
}

// Relax runs damped steepest descent under the labeler's forces to remove
// construction artifacts (overlapping built geometry), limiting each move to
// maxStep A.
func Relax(lab Labeler, sys *atoms.System, steps int, maxStep float64) {
	for it := 0; it < steps; it++ {
		_, f := lab.EnergyForces(sys)
		maxF := 0.0
		for i := range f {
			for k := 0; k < 3; k++ {
				if a := math.Abs(f[i][k]); a > maxF {
					maxF = a
				}
			}
		}
		if maxF < 1e-3 {
			return
		}
		scale := maxStep / maxF
		if scale > 0.02 {
			scale = 0.02
		}
		for i := range sys.Pos {
			for k := 0; k < 3; k++ {
				sys.Pos[i][k] += scale * f[i][k]
			}
		}
	}
}

// PerturbedFrames generates n labeled frames by Gaussian-perturbing the
// positions of base with standard deviation sigma (A).
func PerturbedFrames(lab Labeler, base *atoms.System, n int, sigma float64, rng *rand.Rand) []*atoms.Frame {
	frames := make([]*atoms.Frame, n)
	for i := 0; i < n; i++ {
		s := base.Clone()
		for a := range s.Pos {
			for k := 0; k < 3; k++ {
				s.Pos[a][k] += rng.NormFloat64() * sigma
			}
		}
		e, f := lab.EnergyForces(s)
		frames[i] = &atoms.Frame{Sys: s, Energy: e, Forces: f}
	}
	return frames
}

// MDSampledFrames samples n decorrelated frames from a Langevin trajectory
// under the labeler at tempK, taking one frame every stride steps — the
// analogue of the AIMD-sampled rMD17 trajectories.
func MDSampledFrames(lab Labeler, base *atoms.System, n, stride int, dt, tempK float64, rng *rand.Rand) []*atoms.Frame {
	sim := md.NewSim(base.Clone(), lab, dt)
	sim.Thermostat = &md.Langevin{TempK: tempK, Gamma: 0.05, Rng: rng}
	sim.InitVelocities(tempK, rng)
	// Burn-in.
	sim.Run(stride)
	frames := make([]*atoms.Frame, 0, n)
	for len(frames) < n {
		sim.Run(stride)
		s := sim.Sys.Clone()
		e, f := lab.EnergyForces(s)
		frames = append(frames, &atoms.Frame{Sys: s, Energy: e, Forces: f})
	}
	return frames
}

// QM9LikeSet generates n random small organic molecules with oracle labels
// (the U0 energy benchmark analogue). Molecules are lightly relaxed so
// energies reflect near-equilibrium chemistry as in QM9.
func QM9LikeSet(lab Labeler, n int, rng *rand.Rand) []*atoms.Frame {
	frames := make([]*atoms.Frame, 0, n)
	for len(frames) < n {
		nHeavy := 3 + rng.IntN(6) // up to 8 heavy atoms
		mol := RandomMolecule(rng, nHeavy)
		Relax(lab, mol, 30, 0.05)
		e, f := lab.EnergyForces(mol)
		// Skip pathological geometries (mirrors SPICE force filtering).
		if maxForce(f) > 0.25*units.HartreePerBohrToEVPerA {
			continue
		}
		frames = append(frames, &atoms.Frame{Sys: mol, Energy: e, Forces: f})
	}
	return frames
}

// RMD17LikeSet generates per-molecule trajectory datasets for each named
// benchmark molecule: train and test frames MD-sampled at 300K under the
// oracle (matching the per-molecule protocol of rMD17, at a temperature
// scaled to the oracle's stiffer wells).
func RMD17LikeSet(lab Labeler, nTrain, nTest int, rng *rand.Rand) map[NamedMolecule]struct{ Train, Test []*atoms.Frame } {
	out := map[NamedMolecule]struct{ Train, Test []*atoms.Frame }{}
	for _, name := range AllNamedMolecules() {
		mol := BuildNamed(name)
		Relax(lab, mol, 60, 0.05)
		all := MDSampledFrames(lab, mol, nTrain+nTest, 25, 0.25, 300, rng)
		out[name] = struct{ Train, Test []*atoms.Frame }{
			Train: all[:nTrain],
			Test:  all[nTrain:],
		}
	}
	return out
}

// SPICELikeSet mixes molecules and peptide fragments with the paper's force
// filter (drop frames with any |F| component > 0.25 Ha/Bohr).
func SPICELikeSet(lab Labeler, n int, rng *rand.Rand) []*atoms.Frame {
	frames := make([]*atoms.Frame, 0, n)
	for len(frames) < n {
		var sys *atoms.System
		switch rng.IntN(3) {
		case 0:
			sys = RandomMolecule(rng, 3+rng.IntN(5))
			Relax(lab, sys, 25, 0.05)
		case 1:
			sys = PeptideChain(2 + rng.IntN(3))
			Relax(lab, sys, 25, 0.05)
		default:
			sys = BuildNamed(AllNamedMolecules()[rng.IntN(len(AllNamedMolecules()))])
			Relax(lab, sys, 25, 0.05)
		}
		for a := range sys.Pos {
			for k := 0; k < 3; k++ {
				sys.Pos[a][k] += rng.NormFloat64() * 0.06
			}
		}
		e, f := lab.EnergyForces(sys)
		if maxForce(f) > 0.25*units.HartreePerBohrToEVPerA {
			continue
		}
		frames = append(frames, &atoms.Frame{Sys: sys, Energy: e, Forces: f})
	}
	return frames
}

// WaterIceSets builds the Table II evaluation data: a liquid water training
// pool plus liquid/ice test sets, all labeled by the oracle.
type WaterIceSets struct {
	TrainPool []*atoms.Frame
	Liquid    []*atoms.Frame
	IceB      []*atoms.Frame
	IceC      []*atoms.Frame
	IceD      []*atoms.Frame
}

// BuildWaterIce samples the training pool from liquid water MD and builds
// perturbed test frames for liquid water and the three ice variants, using
// the paper's 192-atom cell.
func BuildWaterIce(lab Labeler, nTrainPool, nTest int, rng *rand.Rand) *WaterIceSets {
	return BuildWaterIceN(lab, 4, nTrainPool, nTest, rng)
}

// BuildWaterIceN is BuildWaterIce with an n x n x n molecule sublattice
// (3n^3 atoms per frame); reduced n keeps CPU-scale training affordable.
func BuildWaterIceN(lab Labeler, n, nTrainPool, nTest int, rng *rand.Rand) *WaterIceSets {
	liquid := WaterBox(rng, n, n, n)
	Relax(lab, liquid, 40, 0.05)
	sets := &WaterIceSets{}
	sets.TrainPool = MDSampledFrames(lab, liquid, nTrainPool, 15, 0.25, 330, rng)
	sets.Liquid = MDSampledFrames(lab, liquid, nTest, 25, 0.25, 300, rng)
	for _, v := range []struct {
		variant IceVariant
		dst     *[]*atoms.Frame
	}{{IceIhB, &sets.IceB}, {IceIhC, &sets.IceC}, {IceIhD, &sets.IceD}} {
		ice := IceCellN(v.variant, n)
		Relax(lab, ice, 40, 0.05)
		*v.dst = PerturbedFrames(lab, ice, nTest, 0.06, rng)
	}
	return sets
}

func maxForce(f [][3]float64) float64 {
	m := 0.0
	for i := range f {
		for k := 0; k < 3; k++ {
			if a := math.Abs(f[i][k]); a > m {
				m = a
			}
		}
	}
	return m
}

// DefaultOracle returns the shared reference potential (convenience).
func DefaultOracle() *groundtruth.Oracle { return groundtruth.New() }
