// Package data builds the synthetic structures and labeled datasets used by
// every experiment: water/ice cells, QM9-like random organic molecules,
// rMD17-like per-molecule trajectory sets, SPICE-like biomolecular mixtures,
// and scaled-down protein / cellulose / virus-capsid assemblies. Full-size
// paper systems are represented by exact atom-count specs for the
// performance harness (materializing 44M atoms is neither necessary nor
// useful for throughput modeling).
package data

import (
	"math"
	"math/rand/v2"

	"repro/internal/atoms"
	"repro/internal/units"
)

// WaterMoleculesPerCell is the number of molecules in the canonical cell;
// the paper's weak/strong scaling water systems replicate a 192-atom cell.
const WaterMoleculesPerCell = 64

// WaterCellEdge is the cubic cell edge reproducing liquid water density
// (0.0334 molecules/A^3) with 64 molecules.
var WaterCellEdge = math.Cbrt(float64(WaterMoleculesPerCell) / 0.0334)

// WaterCell builds the 192-atom liquid water cell: 64 molecules on a
// 4x4x4 sublattice with random orientations and positional jitter.
func WaterCell(rng *rand.Rand) *atoms.System {
	return WaterBox(rng, 4, 4, 4)
}

// WaterBox builds nx*ny*nz*... a water box with one molecule per sublattice
// site of spacing WaterCellEdge/4, periodic at liquid density.
func WaterBox(rng *rand.Rand, nx, ny, nz int) *atoms.System {
	spacing := WaterCellEdge / 4
	nMol := nx * ny * nz
	sys := atoms.NewSystem(3 * nMol)
	sys.PBC = true
	sys.Cell = [3]float64{float64(nx) * spacing, float64(ny) * spacing, float64(nz) * spacing}
	m := 0
	for ix := 0; ix < nx; ix++ {
		for iy := 0; iy < ny; iy++ {
			for iz := 0; iz < nz; iz++ {
				center := [3]float64{
					(float64(ix) + 0.5 + 0.12*rng.NormFloat64()) * spacing,
					(float64(iy) + 0.5 + 0.12*rng.NormFloat64()) * spacing,
					(float64(iz) + 0.5 + 0.12*rng.NormFloat64()) * spacing,
				}
				placeWater(sys, 3*m, center, randomOrientation(rng))
				m++
			}
		}
	}
	sys.Wrap()
	return sys
}

// placeWater writes one H2O at base index i0 with the given orientation
// (two orthonormal in-plane axes).
func placeWater(sys *atoms.System, i0 int, center [3]float64, axes [2][3]float64) {
	sys.Species[i0] = units.O
	sys.Species[i0+1] = units.H
	sys.Species[i0+2] = units.H
	const rOH = 0.98
	// H positions at +-52.25 degrees from the bisector (104.5 degree angle).
	cosA, sinA := math.Cos(52.25*math.Pi/180), math.Sin(52.25*math.Pi/180)
	sys.Pos[i0] = center
	for k := 0; k < 3; k++ {
		sys.Pos[i0+1][k] = center[k] + rOH*(cosA*axes[0][k]+sinA*axes[1][k])
		sys.Pos[i0+2][k] = center[k] + rOH*(cosA*axes[0][k]-sinA*axes[1][k])
	}
}

func randomOrientation(rng *rand.Rand) [2][3]float64 {
	a := randomUnitVec(rng)
	// Gram-Schmidt a second axis.
	b := randomUnitVec(rng)
	dot := a[0]*b[0] + a[1]*b[1] + a[2]*b[2]
	for k := 0; k < 3; k++ {
		b[k] -= dot * a[k]
	}
	n := math.Sqrt(b[0]*b[0] + b[1]*b[1] + b[2]*b[2])
	if n < 1e-6 {
		return randomOrientation(rng)
	}
	for k := 0; k < 3; k++ {
		b[k] /= n
	}
	return [2][3]float64{a, b}
}

func randomUnitVec(rng *rand.Rand) [3]float64 {
	for {
		v := [3]float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		n := math.Sqrt(v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
		if n > 1e-6 {
			return [3]float64{v[0] / n, v[1] / n, v[2] / n}
		}
	}
}

// IceVariant selects one of the proton-ordered ice Ih sublattices of
// Table II (labels b, c, d follow the paper's dataset naming).
type IceVariant int

// Ice variants evaluated in Table II.
const (
	IceIhB IceVariant = iota
	IceIhC
	IceIhD
)

// IceCell builds a proton-ordered ice-like cell: molecules on the same
// sublattice as WaterCell but with deterministic orientations (per variant)
// and slightly expanded volume (ice is less dense than water).
func IceCell(variant IceVariant) *atoms.System { return IceCellN(variant, 4) }

// IceCellN builds an n x n x n ice-like cell (3n^3 atoms).
func IceCellN(variant IceVariant, n int) *atoms.System {
	nx, ny, nz := n, n, n
	spacing := WaterCellEdge / 4 * 1.03 // ~9% volume expansion
	nMol := nx * ny * nz
	sys := atoms.NewSystem(3 * nMol)
	sys.PBC = true
	sys.Cell = [3]float64{float64(nx) * spacing, float64(ny) * spacing, float64(nz) * spacing}
	m := 0
	for ix := 0; ix < nx; ix++ {
		for iy := 0; iy < ny; iy++ {
			for iz := 0; iz < nz; iz++ {
				center := [3]float64{
					(float64(ix) + 0.5) * spacing,
					(float64(iy) + 0.5) * spacing,
					(float64(iz) + 0.5) * spacing,
				}
				placeWater(sys, 3*m, center, iceOrientation(variant, ix, iy, iz))
				m++
			}
		}
	}
	sys.Wrap()
	return sys
}

// iceOrientation returns a deterministic orientation pattern distinguishing
// the proton-ordered variants.
func iceOrientation(variant IceVariant, ix, iy, iz int) [2][3]float64 {
	var phase float64
	switch variant {
	case IceIhB:
		phase = float64((ix+iy)%2) * math.Pi / 2
	case IceIhC:
		phase = float64((ix+iy+iz)%3) * 2 * math.Pi / 3
	default: // IceIhD
		phase = float64((ix*iz+iy)%4) * math.Pi / 4
	}
	c, s := math.Cos(phase), math.Sin(phase)
	// Alternate the out-of-plane tilt with z parity.
	tilt := 0.3
	if iz%2 == 1 {
		tilt = -0.3
	}
	a := [3]float64{c, s, tilt}
	n := math.Sqrt(a[0]*a[0] + a[1]*a[1] + a[2]*a[2])
	for k := 0; k < 3; k++ {
		a[k] /= n
	}
	b := [3]float64{-s, c, 0}
	// Orthogonalize b against a.
	dot := a[0]*b[0] + a[1]*b[1] + a[2]*b[2]
	for k := 0; k < 3; k++ {
		b[k] -= dot * a[k]
	}
	nb := math.Sqrt(b[0]*b[0] + b[1]*b[1] + b[2]*b[2])
	for k := 0; k < 3; k++ {
		b[k] /= nb
	}
	return [2][3]float64{a, b}
}

// ReplicatedWaterAtoms returns the atom count of the paper's replicated
// water systems: 192 * n^3 (Table III uses n=18: 1,119,744 atoms).
func ReplicatedWaterAtoms(n int) int { return 192 * n * n * n }
