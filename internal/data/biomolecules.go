package data

import (
	"math"
	"math/rand/v2"

	"repro/internal/atoms"
	"repro/internal/units"
)

// ProteinChain builds a synthetic alpha-helix-like protein of nRes residues:
// an N-CA-C(=O) backbone wound on a helix with CB side-chain stubs and
// hydrogen saturation. The geometry is idealized; what matters for the
// stability experiment (Fig. 4) is a realistic composition and a bonded
// topology whose backbone RMSD can be tracked.
func ProteinChain(nRes int) *atoms.System {
	type patom struct {
		sp  units.Species
		pos [3]float64
	}
	var out []patom
	const (
		radius = 2.3  // helix radius of backbone trace
		rise   = 1.5  // rise per residue
		turn   = 100. // degrees per residue
	)
	for r := 0; r < nRes; r++ {
		th := float64(r) * turn * math.Pi / 180
		z := float64(r) * rise
		ca := [3]float64{radius * math.Cos(th), radius * math.Sin(th), z}
		// Backbone neighbors placed relative to CA along the helix tangent.
		tang := [3]float64{-math.Sin(th), math.Cos(th), rise / radius}
		tn := math.Sqrt(tang[0]*tang[0] + tang[1]*tang[1] + tang[2]*tang[2])
		for k := 0; k < 3; k++ {
			tang[k] /= tn
		}
		radial := [3]float64{math.Cos(th), math.Sin(th), 0}
		nPos := [3]float64{ca[0] - 1.32*tang[0], ca[1] - 1.32*tang[1], ca[2] - 1.32*tang[2]}
		cPos := [3]float64{ca[0] + 1.42*tang[0], ca[1] + 1.42*tang[1], ca[2] + 1.42*tang[2]}
		oPos := [3]float64{cPos[0] + 1.1*radial[0], cPos[1] + 1.1*radial[1], cPos[2] + 0.4}
		cbPos := [3]float64{ca[0] + 1.45*radial[0], ca[1] + 1.45*radial[1], ca[2] - 0.5}
		out = append(out,
			patom{units.N, nPos},
			patom{units.C, ca},
			patom{units.C, cPos},
			patom{units.O, oPos},
			patom{units.C, cbPos},
		)
		// Hydrogens: amide H, CA-H, three CB-H.
		out = append(out,
			patom{units.H, [3]float64{nPos[0] - 0.7*radial[0], nPos[1] - 0.7*radial[1], nPos[2] + 0.5}},
			patom{units.H, [3]float64{ca[0] - 0.65*radial[0], ca[1] - 0.65*radial[1], ca[2] + 0.85}},
			patom{units.H, [3]float64{cbPos[0] + 0.95*radial[0], cbPos[1] + 0.95*radial[1], cbPos[2] + 0.4}},
			patom{units.H, [3]float64{cbPos[0] + 0.35*radial[0], cbPos[1] + 0.35*radial[1], cbPos[2] - 1.05}},
			patom{units.H, [3]float64{cbPos[0] - 0.5*tang[0]*1.0, cbPos[1] - 0.5*tang[1], cbPos[2] + 0.9}},
		)
	}
	sys := atoms.NewSystem(len(out))
	for i, a := range out {
		sys.Species[i] = a.sp
		sys.Pos[i] = a.pos
	}
	return sys
}

// BackboneIndices returns the indices of backbone heavy atoms (N, CA, C) of
// a ProteinChain system, the atom set whose RMSD Fig. 4 tracks.
func BackboneIndices(nRes int) []int {
	idx := make([]int, 0, 3*nRes)
	const perRes = 10
	for r := 0; r < nRes; r++ {
		base := r * perRes
		idx = append(idx, base, base+1, base+2)
	}
	return idx
}

// Solvate embeds solute in a periodic water box with the given padding
// (A) around the solute's bounding box, skipping water sites that overlap
// solute atoms. Returns the combined system; solute atoms come first.
func Solvate(solute *atoms.System, padding float64, rng *rand.Rand) *atoms.System {
	lo := solute.Pos[0]
	hi := solute.Pos[0]
	for _, p := range solute.Pos {
		for k := 0; k < 3; k++ {
			lo[k] = math.Min(lo[k], p[k])
			hi[k] = math.Max(hi[k], p[k])
		}
	}
	var cell [3]float64
	spacing := WaterCellEdge / 4
	var grid [3]int
	for k := 0; k < 3; k++ {
		ext := hi[k] - lo[k] + 2*padding
		grid[k] = int(math.Ceil(ext / spacing))
		if grid[k] < 1 {
			grid[k] = 1
		}
		cell[k] = float64(grid[k]) * spacing
	}
	// Shift solute into the box interior.
	shift := [3]float64{padding - lo[0], padding - lo[1], padding - lo[2]}
	type watom struct {
		sp  units.Species
		pos [3]float64
	}
	var added []watom
	minDist2 := 2.4 * 2.4
	solutePos := make([][3]float64, len(solute.Pos))
	for i, p := range solute.Pos {
		for k := 0; k < 3; k++ {
			solutePos[i][k] = p[k] + shift[k]
		}
	}
	for ix := 0; ix < grid[0]; ix++ {
		for iy := 0; iy < grid[1]; iy++ {
			for iz := 0; iz < grid[2]; iz++ {
				center := [3]float64{
					(float64(ix) + 0.5) * spacing,
					(float64(iy) + 0.5) * spacing,
					(float64(iz) + 0.5) * spacing,
				}
				clash := false
				for _, p := range solutePos {
					dx := center[0] - p[0]
					dy := center[1] - p[1]
					dz := center[2] - p[2]
					if dx*dx+dy*dy+dz*dz < minDist2 {
						clash = true
						break
					}
				}
				if clash {
					continue
				}
				axes := randomOrientation(rng)
				var w [3]watom
				w[0] = watom{units.O, center}
				const rOH = 0.98
				cosA, sinA := math.Cos(52.25*math.Pi/180), math.Sin(52.25*math.Pi/180)
				for k := 0; k < 3; k++ {
					w[1].pos[k] = center[k] + rOH*(cosA*axes[0][k]+sinA*axes[1][k])
					w[2].pos[k] = center[k] + rOH*(cosA*axes[0][k]-sinA*axes[1][k])
				}
				w[1].sp = units.H
				w[2].sp = units.H
				added = append(added, w[0], w[1], w[2])
			}
		}
	}
	sys := atoms.NewSystem(len(solutePos) + len(added))
	sys.PBC = true
	sys.Cell = cell
	copy(sys.Species, solute.Species)
	copy(sys.Pos, solutePos)
	for i, a := range added {
		sys.Species[len(solutePos)+i] = a.sp
		sys.Pos[len(solutePos)+i] = a.pos
	}
	sys.Wrap()
	return sys
}

// CelluloseChains builds nChains parallel sugar-polymer chains of nUnits
// repeating C6O5-like units each (idealized cellulose fibril fragment).
func CelluloseChains(nChains, nUnits int) *atoms.System {
	type catom struct {
		sp  units.Species
		pos [3]float64
	}
	var out []catom
	unitLen := 5.2
	for c := 0; c < nChains; c++ {
		oy := float64(c%2) * 4.2
		oz := float64(c/2) * 4.0
		for u := 0; u < nUnits; u++ {
			ox := float64(u) * unitLen
			// Simplified pyranose ring: 5 C + ring O, plus 4 O and 10 H.
			ring := [][3]float64{
				{0, 0, 0}, {1.45, 0.35, 0}, {2.4, -0.5, 0.6},
				{1.95, -1.9, 0.45}, {0.5, -2.1, 0.2},
			}
			for _, p := range ring {
				out = append(out, catom{units.C, [3]float64{ox + p[0], oy + p[1], oz + p[2]}})
			}
			out = append(out, catom{units.O, [3]float64{ox - 0.45, -1.1 + oy, oz + 0.55}}) // ring O
			// Hydroxyls and glycosidic O.
			out = append(out,
				catom{units.O, [3]float64{ox + 1.6, oy + 1.7, oz + 0.3}},
				catom{units.O, [3]float64{ox + 3.75, -0.3 + oy, oz + 0.4}}, // glycosidic link
				catom{units.O, [3]float64{ox + 2.4, -2.85 + oy, oz + 0.8}},
				catom{units.O, [3]float64{ox + 0.1, -3.4 + oy, oz}},
			)
			hs := [][3]float64{
				{0.1, 0.75, 0.8}, {1.5, 0.9, -0.85}, {2.9, -0.3, 1.5},
				{2.3, -2.2, -0.5}, {0.2, -2.5, 1.1},
				{1.9, 2.4, 0.1}, {3.1, -3.3, 0.6}, {-0.7, -3.7, 0.5},
				{-0.2, 0.3, -0.9}, {2.2, -1.2, -1.1},
			}
			for _, p := range hs {
				out = append(out, catom{units.H, [3]float64{ox + p[0], oy + p[1], oz + p[2]}})
			}
		}
	}
	sys := atoms.NewSystem(len(out))
	for i, a := range out {
		sys.Species[i] = a.sp
		sys.Pos[i] = a.pos
	}
	return sys
}

// CapsidShell builds a scaled-down virus-capsid-like assembly: protein
// subunits (short helices) placed on a sphere with outward orientation.
// The real HIV capsid is a 44M-atom cone of ~1300 hexamer/pentamer tiles;
// this builder preserves the assembly topology (shell of repeated protein
// subunits) at tractable size.
func CapsidShell(nSubunits, resPerSubunit int, radius float64) *atoms.System {
	type catom struct {
		sp  units.Species
		pos [3]float64
	}
	var out []catom
	sub := ProteinChain(resPerSubunit)
	// Center the subunit.
	var c [3]float64
	for _, p := range sub.Pos {
		for k := 0; k < 3; k++ {
			c[k] += p[k]
		}
	}
	for k := 0; k < 3; k++ {
		c[k] /= float64(sub.NumAtoms())
	}
	// Fibonacci sphere placement.
	golden := math.Pi * (3 - math.Sqrt(5))
	for s := 0; s < nSubunits; s++ {
		y := 1 - 2*float64(s)/float64(maxInt(nSubunits-1, 1))
		r := math.Sqrt(math.Max(0, 1-y*y))
		th := golden * float64(s)
		n := [3]float64{r * math.Cos(th), y, r * math.Sin(th)}
		// Build an orthonormal frame with n as "z".
		var u [3]float64
		if math.Abs(n[0]) < 0.9 {
			u = [3]float64{1, 0, 0}
		} else {
			u = [3]float64{0, 1, 0}
		}
		dot := u[0]*n[0] + u[1]*n[1] + u[2]*n[2]
		for k := 0; k < 3; k++ {
			u[k] -= dot * n[k]
		}
		un := math.Sqrt(u[0]*u[0] + u[1]*u[1] + u[2]*u[2])
		for k := 0; k < 3; k++ {
			u[k] /= un
		}
		v := [3]float64{
			n[1]*u[2] - n[2]*u[1],
			n[2]*u[0] - n[0]*u[2],
			n[0]*u[1] - n[1]*u[0],
		}
		for i, p := range sub.Pos {
			local := [3]float64{p[0] - c[0], p[1] - c[1], p[2] - c[2]}
			var pos [3]float64
			for k := 0; k < 3; k++ {
				pos[k] = radius*n[k] + local[0]*u[k] + local[1]*v[k] + local[2]*n[k]
			}
			out = append(out, catom{sub.Species[i], pos})
		}
	}
	sys := atoms.NewSystem(len(out))
	for i, a := range out {
		sys.Species[i] = a.sp
		sys.Pos[i] = a.pos
	}
	return sys
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SystemSpec describes a benchmark system by name and exact atom count; the
// performance harness uses specs instead of materialized coordinates.
type SystemSpec struct {
	Name  string
	Atoms int
}

// PaperSystems returns the five biomolecular benchmark systems of Fig. 1
// plus the 10STMV replica, with the AMBER20-benchmark atom counts the paper
// quotes (23k, 91k, 409k, 1M, 10M, 44M).
func PaperSystems() []SystemSpec {
	return []SystemSpec{
		{Name: "DHFR", Atoms: 23_558},
		{Name: "FactorIX", Atoms: 90_906},
		{Name: "Cellulose", Atoms: 408_609},
		{Name: "STMV", Atoms: 1_066_628},
		{Name: "10STMV", Atoms: 10_666_280},
		{Name: "Capsid", Atoms: 44_000_000},
	}
}

// WaterStrongScalingSizes returns the water system sizes of Fig. 6 (1e5 to
// 1e8 atoms, built from replicated 192-atom cells).
func WaterStrongScalingSizes() []SystemSpec {
	return []SystemSpec{
		{Name: "water-100k", Atoms: ReplicatedWaterAtoms(8)},  // 98,304
		{Name: "water-1M", Atoms: ReplicatedWaterAtoms(18)},   // 1,119,744
		{Name: "water-10M", Atoms: ReplicatedWaterAtoms(38)},  // 10,536,192
		{Name: "water-100M", Atoms: ReplicatedWaterAtoms(81)}, // 102,036,672
	}
}
