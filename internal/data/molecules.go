package data

import (
	"math"
	"math/rand/v2"

	"repro/internal/atoms"
	"repro/internal/units"
)

// covalentRadius mirrors the oracle's bond-length convention so generated
// molecules sit near the reference potential's equilibria.
var covalentRadius = map[units.Species]float64{
	units.H: 0.38, units.C: 0.76, units.N: 0.71, units.O: 0.60,
	units.P: 1.07, units.S: 1.05,
}

var valence = map[units.Species]int{
	units.H: 1, units.C: 4, units.N: 3, units.O: 2, units.P: 3, units.S: 2,
}

// bondLength returns the equilibrium bond length of a species pair.
func bondLength(a, b units.Species) float64 {
	return covalentRadius[a] + covalentRadius[b]
}

// growAtom is a partially built molecule atom.
type growAtom struct {
	sp     units.Species
	pos    [3]float64
	remVal int
}

// RandomMolecule grows a QM9-like organic molecule: a random tree of up to
// nHeavy heavy atoms (C, N, O) with all remaining valence saturated by
// hydrogens, embedded in 3D with approximate steric avoidance.
func RandomMolecule(rng *rand.Rand, nHeavy int) *atoms.System {
	type atom = growAtom
	heavyChoices := []units.Species{units.C, units.C, units.C, units.N, units.O}
	var mol []atom
	mol = append(mol, atom{sp: units.C, remVal: valence[units.C]})
	for len(mol) < nHeavy {
		// Pick a parent with remaining valence.
		cands := []int{}
		for i, a := range mol {
			if a.remVal > 0 {
				cands = append(cands, i)
			}
		}
		if len(cands) == 0 {
			break
		}
		parent := cands[rng.IntN(len(cands))]
		sp := heavyChoices[rng.IntN(len(heavyChoices))]
		pos := growPosition(rng, mol, parent, bondLength(mol[parent].sp, sp))
		mol = append(mol, atom{sp: sp, pos: pos, remVal: valence[sp] - 1})
		mol[parent].remVal--
	}
	// Saturate with hydrogens.
	nHeavyActual := len(mol)
	for i := 0; i < nHeavyActual; i++ {
		for mol[i].remVal > 0 {
			pos := growPosition(rng, mol, i, bondLength(mol[i].sp, units.H))
			mol = append(mol, atom{sp: units.H, pos: pos, remVal: 0})
			mol[i].remVal--
		}
	}
	sys := atoms.NewSystem(len(mol))
	for i, a := range mol {
		sys.Species[i] = a.sp
		sys.Pos[i] = a.pos
	}
	return sys
}

// growPosition places a new atom bonded to mol[parent] at distance bl,
// choosing among random directions the one farthest from existing atoms.
func growPosition(rng *rand.Rand, mol []growAtom, parent int, bl float64) [3]float64 {
	best := [3]float64{}
	bestScore := -1.0
	pp := mol[parent].pos
	for trial := 0; trial < 12; trial++ {
		dir := randomUnitVec(rng)
		cand := [3]float64{pp[0] + bl*dir[0], pp[1] + bl*dir[1], pp[2] + bl*dir[2]}
		// Score: minimum distance to any non-parent atom.
		score := math.Inf(1)
		for i, a := range mol {
			if i == parent {
				continue
			}
			dx := cand[0] - a.pos[0]
			dy := cand[1] - a.pos[1]
			dz := cand[2] - a.pos[2]
			d := math.Sqrt(dx*dx + dy*dy + dz*dz)
			if d < score {
				score = d
			}
		}
		if score > bestScore {
			bestScore = score
			best = cand
		}
	}
	return best
}

// NamedMolecule identifies one of the fixed benchmark molecules standing in
// for the rMD17 set (per-molecule force benchmarks).
type NamedMolecule string

// The rMD17-like benchmark molecules.
const (
	MolRing      NamedMolecule = "ring"      // benzene-like C6H6
	MolAlcohol   NamedMolecule = "alcohol"   // ethanol-like C2H6O
	MolAmine     NamedMolecule = "amine"     // methylamine-like CH5N
	MolAcid      NamedMolecule = "acid"      // formic-acid-like CH2O2
	MolThioether NamedMolecule = "thioether" // dimethyl-sulfide-like C2H6S
)

// AllNamedMolecules lists the rMD17-like benchmark set.
func AllNamedMolecules() []NamedMolecule {
	return []NamedMolecule{MolRing, MolAlcohol, MolAmine, MolAcid, MolThioether}
}

// BuildNamed constructs the named molecule's idealized geometry.
func BuildNamed(name NamedMolecule) *atoms.System {
	switch name {
	case MolRing:
		return buildRing()
	case MolAlcohol:
		return buildAlcohol()
	case MolAmine:
		return buildAmine()
	case MolAcid:
		return buildAcid()
	case MolThioether:
		return buildThioether()
	}
	panic("data: unknown molecule " + string(name))
}

func buildRing() *atoms.System {
	// Planar hexagon of C with radial H.
	sys := atoms.NewSystem(12)
	rcc := bondLength(units.C, units.C)
	ring := rcc / (2 * math.Sin(math.Pi/6))
	rch := bondLength(units.C, units.H)
	for i := 0; i < 6; i++ {
		th := float64(i) * math.Pi / 3
		sys.Species[i] = units.C
		sys.Pos[i] = [3]float64{ring * math.Cos(th), ring * math.Sin(th), 0}
		sys.Species[6+i] = units.H
		sys.Pos[6+i] = [3]float64{(ring + rch) * math.Cos(th), (ring + rch) * math.Sin(th), 0}
	}
	return sys
}

func buildAlcohol() *atoms.System {
	// C-C-O backbone with hydrogens.
	sys := atoms.NewSystem(9)
	sp := []units.Species{units.C, units.C, units.O, units.H, units.H, units.H, units.H, units.H, units.H}
	copy(sys.Species, sp)
	rcc := bondLength(units.C, units.C)
	rco := bondLength(units.C, units.O)
	rch := bondLength(units.C, units.H)
	roh := bondLength(units.O, units.H)
	sys.Pos[0] = [3]float64{0, 0, 0}
	sys.Pos[1] = [3]float64{rcc, 0, 0}
	sys.Pos[2] = [3]float64{rcc + rco*0.5, rco * 0.87, 0}
	// Methyl H on C0.
	sys.Pos[3] = [3]float64{-rch * 0.54, rch * 0.84, 0}
	sys.Pos[4] = [3]float64{-rch * 0.54, -rch * 0.5, rch * 0.7}
	sys.Pos[5] = [3]float64{-rch * 0.54, -rch * 0.5, -rch * 0.7}
	// Methylene H on C1.
	sys.Pos[6] = [3]float64{rcc + rch*0.3, -rch * 0.8, rch * 0.5}
	sys.Pos[7] = [3]float64{rcc + rch*0.3, -rch * 0.8, -rch * 0.5}
	// Hydroxyl H.
	sys.Pos[8] = [3]float64{rcc + rco*0.5 + roh*0.9, rco*0.87 + roh*0.4, 0}
	return sys
}

func buildAmine() *atoms.System {
	sys := atoms.NewSystem(7)
	sp := []units.Species{units.C, units.N, units.H, units.H, units.H, units.H, units.H}
	copy(sys.Species, sp)
	rcn := bondLength(units.C, units.N)
	rch := bondLength(units.C, units.H)
	rnh := bondLength(units.N, units.H)
	sys.Pos[0] = [3]float64{0, 0, 0}
	sys.Pos[1] = [3]float64{rcn, 0, 0}
	sys.Pos[2] = [3]float64{-rch * 0.54, rch * 0.84, 0}
	sys.Pos[3] = [3]float64{-rch * 0.54, -rch * 0.5, rch * 0.7}
	sys.Pos[4] = [3]float64{-rch * 0.54, -rch * 0.5, -rch * 0.7}
	sys.Pos[5] = [3]float64{rcn + rnh*0.4, rnh * 0.85, 0}
	sys.Pos[6] = [3]float64{rcn + rnh*0.4, -rnh * 0.55, rnh * 0.6}
	return sys
}

func buildAcid() *atoms.System {
	sys := atoms.NewSystem(5)
	sp := []units.Species{units.C, units.O, units.O, units.H, units.H}
	copy(sys.Species, sp)
	rco := bondLength(units.C, units.O)
	rch := bondLength(units.C, units.H)
	roh := bondLength(units.O, units.H)
	sys.Pos[0] = [3]float64{0, 0, 0}
	sys.Pos[1] = [3]float64{rco * 0.5, rco * 0.87, 0}  // carbonyl-ish O
	sys.Pos[2] = [3]float64{rco * 0.5, -rco * 0.87, 0} // hydroxyl O
	sys.Pos[3] = [3]float64{-rch, 0, 0}
	sys.Pos[4] = [3]float64{rco*0.5 + roh*0.9, -rco*0.87 - roh*0.3, 0}
	return sys
}

func buildThioether() *atoms.System {
	sys := atoms.NewSystem(9)
	sp := []units.Species{units.C, units.S, units.C, units.H, units.H, units.H, units.H, units.H, units.H}
	copy(sys.Species, sp)
	rcs := bondLength(units.C, units.S)
	rch := bondLength(units.C, units.H)
	sys.Pos[0] = [3]float64{0, 0, 0}
	sys.Pos[1] = [3]float64{rcs, 0, 0}
	sys.Pos[2] = [3]float64{rcs + rcs*0.42, rcs * 0.91, 0}
	for i, base := range []int{0, 0, 0, 2, 2, 2} {
		phi := float64(i)*2.1 + 0.4
		z := rch * math.Cos(phi)
		sys.Pos[3+i] = [3]float64{
			sys.Pos[base][0] - rch*0.4*math.Cos(phi*1.7),
			sys.Pos[base][1] - rch*0.6*math.Sin(phi),
			sys.Pos[base][2] + z,
		}
	}
	return sys
}

// PeptideChain builds a SPICE-like peptide: n glycine-like residues
// (N-C-C(=O) backbone with H saturation) in an extended conformation.
func PeptideChain(n int) *atoms.System {
	type patom struct {
		sp  units.Species
		pos [3]float64
	}
	var out []patom
	rise := 2.7
	for r := 0; r < n; r++ {
		x := float64(r) * rise
		zig := 0.45
		if r%2 == 1 {
			zig = -0.45
		}
		// Backbone: N, CA, C, O.
		out = append(out,
			patom{units.N, [3]float64{x, zig, 0}},
			patom{units.C, [3]float64{x + 0.95, -zig, 0.3}},
			patom{units.C, [3]float64{x + 1.95, zig, -0.2}},
			patom{units.O, [3]float64{x + 2.1, zig + 1.05, -0.6}},
		)
		// Hydrogens: amide H, two CA-H.
		out = append(out,
			patom{units.H, [3]float64{x - 0.4, zig + 0.85, 0.3}},
			patom{units.H, [3]float64{x + 0.95, -zig - 0.6, 1.1}},
			patom{units.H, [3]float64{x + 0.95, -zig - 0.7, -0.6}},
		)
	}
	// Terminal caps.
	out = append(out, patom{units.H, [3]float64{-0.9, 0, 0}})
	out = append(out, patom{units.H, [3]float64{float64(n-1)*rise + 2.9, 0, 0.4}})
	sys := atoms.NewSystem(len(out))
	for i, a := range out {
		sys.Species[i] = a.sp
		sys.Pos[i] = a.pos
	}
	return sys
}
