package data

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/atoms"
	"repro/internal/units"
)

// WriteXYZ writes sys as one extended-XYZ frame (with a Lattice= comment
// for periodic systems), the interchange format MD trajectory tooling
// expects. energy may be NaN-free optional metadata; pass 0 when unused.
func WriteXYZ(w io.Writer, sys *atoms.System, comment string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d\n", sys.NumAtoms())
	if sys.PBC {
		fmt.Fprintf(bw, "Lattice=\"%.8f 0 0 0 %.8f 0 0 0 %.8f\" %s\n",
			sys.Cell[0], sys.Cell[1], sys.Cell[2], comment)
	} else {
		fmt.Fprintf(bw, "%s\n", comment)
	}
	for i := range sys.Pos {
		fmt.Fprintf(bw, "%-2s %16.8f %16.8f %16.8f\n",
			units.Name(sys.Species[i]), sys.Pos[i][0], sys.Pos[i][1], sys.Pos[i][2])
	}
	return bw.Flush()
}

// symbolToSpecies maps element symbols back to species.
var symbolToSpecies = map[string]units.Species{
	"H": units.H, "C": units.C, "N": units.N, "O": units.O, "P": units.P, "S": units.S,
}

// ReadXYZ reads one (extended-)XYZ frame. A Lattice="ax 0 0 0 by 0 0 0 cz"
// comment restores the periodic cell.
func ReadXYZ(r io.Reader) (*atoms.System, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	if !sc.Scan() {
		return nil, io.EOF
	}
	n, err := strconv.Atoi(strings.TrimSpace(sc.Text()))
	if err != nil {
		return nil, fmt.Errorf("data: bad XYZ atom count: %w", err)
	}
	if !sc.Scan() {
		return nil, fmt.Errorf("data: truncated XYZ header")
	}
	comment := sc.Text()
	sys := atoms.NewSystem(n)
	if idx := strings.Index(comment, `Lattice="`); idx >= 0 {
		rest := comment[idx+len(`Lattice="`):]
		if end := strings.Index(rest, `"`); end > 0 {
			fields := strings.Fields(rest[:end])
			if len(fields) == 9 {
				ax, err1 := strconv.ParseFloat(fields[0], 64)
				by, err2 := strconv.ParseFloat(fields[4], 64)
				cz, err3 := strconv.ParseFloat(fields[8], 64)
				if err1 == nil && err2 == nil && err3 == nil {
					sys.PBC = true
					sys.Cell = [3]float64{ax, by, cz}
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("data: XYZ truncated at atom %d of %d", i, n)
		}
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 {
			return nil, fmt.Errorf("data: malformed XYZ line %q", sc.Text())
		}
		sp, ok := symbolToSpecies[fields[0]]
		if !ok {
			return nil, fmt.Errorf("data: unknown element %q", fields[0])
		}
		sys.Species[i] = sp
		for k := 0; k < 3; k++ {
			v, err := strconv.ParseFloat(fields[1+k], 64)
			if err != nil {
				return nil, fmt.Errorf("data: bad coordinate on line %q: %w", sc.Text(), err)
			}
			sys.Pos[i][k] = v
		}
	}
	return sys, sc.Err()
}
