package o3

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestIrrepBasics(t *testing.T) {
	ir := Irrep{L: 2, P: Even}
	if ir.Dim() != 5 || ir.String() != "2e" {
		t.Fatalf("irrep 2e: dim=%d str=%s", ir.Dim(), ir.String())
	}
	irs := FullIrreps(2)
	if len(irs) != 6 || irs.Dim() != 18 {
		t.Fatalf("FullIrreps(2): %v dim=%d", irs, irs.Dim())
	}
	sph := SphericalIrreps(2)
	if sph.String() != "0e+1o+2e" {
		t.Fatalf("SphericalIrreps(2) = %s", sph.String())
	}
	if sph.MaxL() != 2 {
		t.Fatalf("MaxL = %d", sph.MaxL())
	}
}

func TestLayoutOffsets(t *testing.T) {
	l := NewLayout(SphericalIrreps(3))
	if l.Width != 16 {
		t.Fatalf("Width = %d, want 16", l.Width)
	}
	wantOff := []int{0, 1, 4, 9}
	for i, w := range wantOff {
		if l.Offset(i) != w {
			t.Fatalf("Offset(%d) = %d, want %d", i, l.Offset(i), w)
		}
	}
	lo, hi := l.Block(2)
	if lo != 4 || hi != 9 {
		t.Fatalf("Block(2) = [%d,%d)", lo, hi)
	}
	if NewLayout(FullIrreps(1)).ScalarIndex() != 0 {
		t.Fatal("ScalarIndex should locate 0e")
	}
}

func TestComplex3jKnownValues(t *testing.T) {
	// Tabulated values.
	cases := []struct {
		j1, j2, j3, m1, m2, m3 int
		want                   float64
	}{
		{0, 0, 0, 0, 0, 0, 1.0},
		{1, 1, 0, 0, 0, 0, -1.0 / math.Sqrt(3)},
		{1, 1, 0, 1, -1, 0, 1.0 / math.Sqrt(3)},
		{1, 1, 2, 0, 0, 0, math.Sqrt(2.0 / 15.0)},
		{1, 1, 1, 1, -1, 0, 1.0 / math.Sqrt(6)},
		{2, 2, 0, 0, 0, 0, 1.0 / math.Sqrt(5)},
		{2, 1, 1, 0, 0, 0, math.Sqrt(2.0 / 15.0)},
		{2, 2, 2, 0, 0, 0, -math.Sqrt(2.0 / 35.0)},
	}
	for _, c := range cases {
		got := complex3j(c.j1, c.j2, c.j3, c.m1, c.m2, c.m3)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("3j(%d %d %d; %d %d %d) = %.15f, want %.15f",
				c.j1, c.j2, c.j3, c.m1, c.m2, c.m3, got, c.want)
		}
	}
}

func TestComplex3jSelectionRules(t *testing.T) {
	if complex3j(1, 1, 1, 1, 1, 1) != 0 {
		t.Fatal("m-sum rule violated")
	}
	if complex3j(1, 1, 3, 0, 0, 0) != 0 {
		t.Fatal("triangle rule violated")
	}
	if complex3j(2, 1, 1, 2, 0, -2) != 0 {
		t.Fatal("|m|<=j rule violated")
	}
}

func TestComplex3jOrthogonality(t *testing.T) {
	// sum_{m1,m2} (2j3+1) 3j(...m3) 3j(...m3') = delta_{m3,m3'} (j3 = j3').
	j1, j2, j3 := 2, 1, 2
	for m3 := -j3; m3 <= j3; m3++ {
		for m3p := -j3; m3p <= j3; m3p++ {
			s := 0.0
			for m1 := -j1; m1 <= j1; m1++ {
				for m2 := -j2; m2 <= j2; m2++ {
					s += float64(2*j3+1) * complex3j(j1, j2, j3, m1, m2, m3) * complex3j(j1, j2, j3, m1, m2, m3p)
				}
			}
			want := 0.0
			if m3 == m3p {
				want = 1.0
			}
			if math.Abs(s-want) > 1e-12 {
				t.Fatalf("orthogonality (m3=%d,m3'=%d): %g, want %g", m3, m3p, s, want)
			}
		}
	}
}

func TestRealW3jFrobeniusNorm(t *testing.T) {
	// The unitary change of basis preserves the Frobenius norm of 1.
	for _, ls := range [][3]int{{0, 0, 0}, {1, 1, 0}, {1, 1, 1}, {1, 1, 2}, {2, 1, 1}, {2, 2, 2}, {2, 2, 0}, {3, 2, 1}, {3, 3, 2}} {
		w := Wigner3j(ls[0], ls[1], ls[2])
		s := 0.0
		for _, p := range w {
			for _, q := range p {
				for _, v := range q {
					s += v * v
				}
			}
		}
		if math.Abs(s-1) > 1e-10 {
			t.Errorf("||w3j(%v)||_F^2 = %g, want 1", ls, s)
		}
	}
}

func TestRealW3jEquivariance(t *testing.T) {
	// The real 3j tensor must be invariant under simultaneous rotation of
	// all three indices by the real Wigner-D matrices.
	rng := rand.New(rand.NewPCG(11, 12))
	for _, ls := range [][3]int{{1, 1, 2}, {2, 1, 1}, {2, 2, 2}, {1, 2, 3}} {
		l1, l2, l3 := ls[0], ls[1], ls[2]
		w := Wigner3j(l1, l2, l3)
		r := RandomRotation(rng)
		d1 := WignerD(l1, r, rng)
		d2 := WignerD(l2, r, rng)
		d3 := WignerD(l3, r, rng)
		n1, n2, n3 := 2*l1+1, 2*l2+1, 2*l3+1
		for a := 0; a < n1; a++ {
			for b := 0; b < n2; b++ {
				for c := 0; c < n3; c++ {
					s := 0.0
					for ap := 0; ap < n1; ap++ {
						for bp := 0; bp < n2; bp++ {
							for cp := 0; cp < n3; cp++ {
								s += d1.At(a, ap) * d2.At(b, bp) * d3.At(c, cp) * w[ap][bp][cp]
							}
						}
					}
					if math.Abs(s-w[a][b][c]) > 1e-7 {
						t.Fatalf("w3j(%v) not invariant at (%d,%d,%d): %g vs %g", ls, a, b, c, s, w[a][b][c])
					}
				}
			}
		}
	}
}

func TestSphHarmComponentNormalization(t *testing.T) {
	// Monte Carlo check: E[Y_i Y_j] = delta_ij over the uniform sphere.
	rng := rand.New(rand.NewPCG(21, 22))
	const n = 200000
	dim := SphDim(MaxL)
	acc := make([]float64, dim*dim)
	buf := make([]float64, dim)
	for s := 0; s < n; s++ {
		v := randomUnit(rng)
		SphHarm(MaxL, v, buf)
		for i := 0; i < dim; i++ {
			for j := i; j < dim; j++ {
				acc[i*dim+j] += buf[i] * buf[j]
			}
		}
	}
	for i := 0; i < dim; i++ {
		for j := i; j < dim; j++ {
			got := acc[i*dim+j] / n
			want := 0.0
			if i == j {
				want = 1.0
			}
			if math.Abs(got-want) > 0.03 {
				t.Errorf("E[Y_%d Y_%d] = %.4f, want %.0f", i, j, got, want)
			}
		}
	}
}

func TestSphHarmScaleInvariance(t *testing.T) {
	buf1 := make([]float64, SphDim(MaxL))
	buf2 := make([]float64, SphDim(MaxL))
	v := [3]float64{0.3, -1.2, 0.77}
	SphHarm(MaxL, v, buf1)
	SphHarm(MaxL, [3]float64{v[0] * 5, v[1] * 5, v[2] * 5}, buf2)
	for i := range buf1 {
		if math.Abs(buf1[i]-buf2[i]) > 1e-14 {
			t.Fatalf("SphHarm not scale invariant at %d: %g vs %g", i, buf1[i], buf2[i])
		}
	}
}

func TestSphHarmEquivarianceViaD(t *testing.T) {
	// Y(Rx) == D(R) Y(x) on held-out points, with D fit from independent samples.
	rng := rand.New(rand.NewPCG(31, 32))
	r := RandomRotation(rng)
	for l := 0; l <= MaxL; l++ {
		d := WignerD(l, r, rng)
		// D must be orthogonal.
		dt := tensor.Transpose(d)
		prod := tensor.MatMul(d, dt, tensor.F64)
		for i := 0; i < 2*l+1; i++ {
			for j := 0; j < 2*l+1; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(prod.At(i, j)-want) > 1e-8 {
					t.Fatalf("D^%d not orthogonal at (%d,%d): %g", l, i, j, prod.At(i, j))
				}
			}
		}
		buf := make([]float64, SphDim(l))
		for trial := 0; trial < 20; trial++ {
			v := randomUnit(rng)
			SphHarm(l, v, buf)
			yl := append([]float64(nil), buf[l*l:(l+1)*(l+1)]...)
			SphHarm(l, ApplyRotation(r, v), buf)
			ylr := buf[l*l : (l+1)*(l+1)]
			got := tensor.MatVec(d, yl, tensor.F64)
			for m := range got {
				if math.Abs(got[m]-ylr[m]) > 1e-8 {
					t.Fatalf("l=%d equivariance failed: D*Y=%v, Y(Rx)=%v", l, got, ylr)
				}
			}
		}
	}
}

func TestSphHarmGradFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 42))
	dim := SphDim(MaxL)
	val := make([]float64, dim)
	grad := make([][3]float64, dim)
	vp := make([]float64, dim)
	vm := make([]float64, dim)
	for trial := 0; trial < 25; trial++ {
		r := [3]float64{rng.NormFloat64() * 2, rng.NormFloat64() * 2, rng.NormFloat64() * 2}
		if math.Abs(r[0])+math.Abs(r[1])+math.Abs(r[2]) < 0.3 {
			continue
		}
		SphHarmGrad(MaxL, r, val, grad)
		const h = 1e-6
		for j := 0; j < 3; j++ {
			rp, rm := r, r
			rp[j] += h
			rm[j] -= h
			SphHarm(MaxL, rp, vp)
			SphHarm(MaxL, rm, vm)
			for c := 0; c < dim; c++ {
				fd := (vp[c] - vm[c]) / (2 * h)
				if math.Abs(fd-grad[c][j]) > 1e-5*(1+math.Abs(fd)) {
					t.Fatalf("grad mismatch c=%d j=%d: fd=%g analytic=%g (r=%v)", c, j, fd, grad[c][j], r)
				}
			}
		}
	}
}

func TestTensorProductPathEnumeration(t *testing.T) {
	tp := NewTensorProduct(FullIrreps(2), SphericalIrreps(2), FullIrreps(2))
	if tp.NumPaths() == 0 {
		t.Fatal("no paths enumerated")
	}
	// Every path must satisfy triangle + parity rules.
	for _, p := range tp.Paths {
		ir1 := tp.In1.Irreps[p.I1]
		ir2 := tp.In2.Irreps[p.I2]
		ir3 := tp.Out.Irreps[p.I3]
		if !TriangleOK(ir1.L, ir2.L, ir3.L) {
			t.Fatalf("path %v violates triangle", p)
		}
		if ir1.P*ir2.P != ir3.P {
			t.Fatalf("path %v violates parity", p)
		}
		if len(p.Entries) == 0 {
			t.Fatalf("path %v has no entries", p)
		}
	}
	// Scalar-only output should have far fewer paths.
	tpScalar := NewTensorProduct(FullIrreps(2), SphericalIrreps(2), Irreps{{L: 0, P: Even}})
	if tpScalar.NumPaths() >= tp.NumPaths() {
		t.Fatalf("scalar-filtered TP should have fewer paths: %d vs %d", tpScalar.NumPaths(), tp.NumPaths())
	}
}

func randFeature(rng *rand.Rand, z, u, w int) *tensor.Tensor {
	x := tensor.New(z, u, w)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	return x
}

func TestFusedMatchesSeparated(t *testing.T) {
	rng := rand.New(rand.NewPCG(51, 52))
	tp := NewTensorProduct(FullIrreps(2), SphericalIrreps(2), FullIrreps(2))
	z, u := 3, 2
	x := randFeature(rng, z, u, tp.In1.Width)
	y := randFeature(rng, z, u, tp.In2.Width)
	weights := make([]float64, tp.NumPaths())
	for i := range weights {
		weights[i] = rng.NormFloat64()
	}
	a := tp.ApplyFused(x, y, weights, tensor.F64)
	b := tp.ApplySeparated(x, y, weights, tensor.F64)
	if !a.SameShape(b) {
		t.Fatalf("shape mismatch %v vs %v", a.Shape, b.Shape)
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > 1e-10 {
			t.Fatalf("fused/separated mismatch at %d: %g vs %g", i, a.Data[i], b.Data[i])
		}
	}
}

func TestFuseFoldsWeights(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 62))
	tp := NewTensorProduct(FullIrreps(1), SphericalIrreps(1), FullIrreps(1))
	z, u := 4, 3
	x := randFeature(rng, z, u, tp.In1.Width)
	y := randFeature(rng, z, u, tp.In2.Width)
	weights := make([]float64, tp.NumPaths())
	for i := range weights {
		weights[i] = rng.NormFloat64()
	}
	want := tp.ApplyFused(x, y, weights, tensor.F64)
	tp.Fuse(weights)
	got := tp.ApplyFused(x, y, nil, tensor.F64)
	tp.Unfuse()
	for i := range want.Data {
		if math.Abs(want.Data[i]-got.Data[i]) > 1e-12 {
			t.Fatalf("Fuse changed results at %d: %g vs %g", i, want.Data[i], got.Data[i])
		}
	}
}

func TestTensorProductEquivariance(t *testing.T) {
	// Rotating both inputs must rotate the output: TP(D x, D y) = D TP(x, y).
	rng := rand.New(rand.NewPCG(71, 72))
	in1 := FullIrreps(2)
	in2 := SphericalIrreps(2)
	out := FullIrreps(2)
	tp := NewTensorProduct(in1, in2, out)
	z, u := 2, 2
	x := randFeature(rng, z, u, tp.In1.Width)
	y := randFeature(rng, z, u, tp.In2.Width)
	weights := make([]float64, tp.NumPaths())
	for i := range weights {
		weights[i] = rng.NormFloat64()
	}
	r := RandomRotation(rng)
	// Block-diagonal D per layout.
	rotate := func(layout *Layout, f *tensor.Tensor) *tensor.Tensor {
		g := tensor.New(f.Shape...)
		for ii, ir := range layout.Irreps {
			d := WignerD(ir.L, r, rng)
			off := layout.Offset(ii)
			dim := ir.Dim()
			for zi := 0; zi < z; zi++ {
				for ui := 0; ui < u; ui++ {
					base := (zi*u + ui) * layout.Width
					seg := f.Data[base+off : base+off+dim]
					res := tensor.MatVec(d, seg, tensor.F64)
					copy(g.Data[base+off:base+off+dim], res)
				}
			}
		}
		return g
	}
	outDirect := rotate(tp.Out, tp.ApplyFused(x, y, weights, tensor.F64))
	outRotated := tp.ApplyFused(rotate(tp.In1, x), rotate(tp.In2, y), weights, tensor.F64)
	for i := range outDirect.Data {
		if math.Abs(outDirect.Data[i]-outRotated.Data[i]) > 1e-6 {
			t.Fatalf("TP not equivariant at %d: %g vs %g", i, outDirect.Data[i], outRotated.Data[i])
		}
	}
}

func TestTensorProductBackwardFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewPCG(81, 82))
	tp := NewTensorProduct(FullIrreps(1), SphericalIrreps(1), FullIrreps(1))
	z, u := 2, 2
	x := randFeature(rng, z, u, tp.In1.Width)
	y := randFeature(rng, z, u, tp.In2.Width)
	weights := make([]float64, tp.NumPaths())
	for i := range weights {
		weights[i] = rng.NormFloat64()
	}
	// Loss = sum of out elements weighted by fixed random g.
	gOut := randFeature(rng, z, u, tp.Out.Width)
	loss := func(xx, yy *tensor.Tensor, ww []float64) float64 {
		out := tp.ApplyFused(xx, yy, ww, tensor.F64)
		return out.Dot(gOut)
	}
	gX := tensor.New(x.Shape...)
	gY := tensor.New(y.Shape...)
	gW := tp.Backward(x, y, gOut, weights, gX, gY)
	const h = 1e-6
	// Check a sample of x gradients.
	for _, i := range []int{0, 3, 7, len(x.Data) - 1} {
		xp := x.Clone()
		xm := x.Clone()
		xp.Data[i] += h
		xm.Data[i] -= h
		fd := (loss(xp, y, weights) - loss(xm, y, weights)) / (2 * h)
		if math.Abs(fd-gX.Data[i]) > 1e-5*(1+math.Abs(fd)) {
			t.Fatalf("gX[%d]: fd=%g analytic=%g", i, fd, gX.Data[i])
		}
	}
	for _, i := range []int{0, 2, len(y.Data) - 1} {
		yp := y.Clone()
		ym := y.Clone()
		yp.Data[i] += h
		ym.Data[i] -= h
		fd := (loss(x, yp, weights) - loss(x, ym, weights)) / (2 * h)
		if math.Abs(fd-gY.Data[i]) > 1e-5*(1+math.Abs(fd)) {
			t.Fatalf("gY[%d]: fd=%g analytic=%g", i, fd, gY.Data[i])
		}
	}
	for pi := range weights {
		wp := append([]float64(nil), weights...)
		wm := append([]float64(nil), weights...)
		wp[pi] += h
		wm[pi] -= h
		fd := (loss(x, y, wp) - loss(x, y, wm)) / (2 * h)
		if math.Abs(fd-gW[pi]) > 1e-5*(1+math.Abs(fd)) {
			t.Fatalf("gW[%d]: fd=%g analytic=%g", pi, fd, gW[pi])
		}
	}
}

func TestTF32ContractionClosely(t *testing.T) {
	rng := rand.New(rand.NewPCG(91, 92))
	tp := NewTensorProduct(FullIrreps(2), SphericalIrreps(2), FullIrreps(2))
	z, u := 4, 4
	x := randFeature(rng, z, u, tp.In1.Width)
	y := randFeature(rng, z, u, tp.In2.Width)
	f64 := tp.ApplyFused(x, y, nil, tensor.F64)
	tf32 := tp.ApplyFused(x, y, nil, tensor.TF32)
	// Near-cancelled elements have unbounded per-element relative error under
	// any rounding, so measure the worst absolute error against the output
	// RMS scale instead.
	rms := f64.Norm() / math.Sqrt(float64(f64.Len()))
	var maxAbs float64
	for i := range f64.Data {
		if d := math.Abs(tf32.Data[i] - f64.Data[i]); d > maxAbs {
			maxAbs = d
		}
	}
	if maxAbs == 0 {
		t.Fatal("TF32 contraction should differ from F64")
	}
	if maxAbs/rms > 0.02 {
		t.Fatalf("TF32 contraction error too large: %g (rms %g)", maxAbs, rms)
	}
}

func TestSphHarmPerLNormProperty(t *testing.T) {
	// Component normalization implies ||Y_l(x)||^2 = 2l+1 for EVERY unit
	// vector x, not just on average — a strong pointwise invariant.
	f := func(a, b, c float64) bool {
		n := math.Sqrt(a*a + b*b + c*c)
		if !(n > 1e-3) || math.IsInf(n, 0) || math.IsNaN(n) {
			return true
		}
		buf := make([]float64, SphDim(MaxL))
		SphHarm(MaxL, [3]float64{a, b, c}, buf)
		for l := 0; l <= MaxL; l++ {
			s := 0.0
			for m := l * l; m < (l+1)*(l+1); m++ {
				s += buf[m] * buf[m]
			}
			if math.Abs(s-float64(2*l+1)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWignerSelectionProperty(t *testing.T) {
	// Any (l1,l2,l3) violating the triangle rule yields the zero tensor.
	for l1 := 0; l1 <= 3; l1++ {
		for l2 := 0; l2 <= 3; l2++ {
			for l3 := 0; l3 <= 3; l3++ {
				w := Wigner3j(l1, l2, l3)
				nonzero := false
				for _, p := range w {
					for _, q := range p {
						for _, v := range q {
							if v != 0 {
								nonzero = true
							}
						}
					}
				}
				if TriangleOK(l1, l2, l3) != nonzero {
					t.Fatalf("w3j(%d,%d,%d): triangle=%v nonzero=%v", l1, l2, l3, TriangleOK(l1, l2, l3), nonzero)
				}
			}
		}
	}
}

func TestTensorProductLinearityProperty(t *testing.T) {
	// TP is bilinear: TP(a*x, y) = a*TP(x, y).
	rng := rand.New(rand.NewPCG(101, 102))
	tp := NewTensorProduct(FullIrreps(2), SphericalIrreps(2), FullIrreps(2))
	x := randFeature(rng, 2, 2, tp.In1.Width)
	y := randFeature(rng, 2, 2, tp.In2.Width)
	const a = -2.75
	out1 := tp.ApplyFused(x, y, nil, tensor.F64)
	xs := x.Clone()
	xs.Scale(a, tensor.F64)
	out2 := tp.ApplyFused(xs, y, nil, tensor.F64)
	for i := range out1.Data {
		if math.Abs(a*out1.Data[i]-out2.Data[i]) > 1e-9 {
			t.Fatalf("bilinearity violated at %d", i)
		}
	}
}

// TestBackwardFusedEntriesMatchesBackwardInto checks the compiled plans'
// inference backward: accumulating through the weight-folded flat entry
// table must reproduce BackwardInto's input adjoints exactly (the skipped
// per-path weight gradients are dead work during inference).
func TestBackwardFusedEntriesMatchesBackwardInto(t *testing.T) {
	rng := rand.New(rand.NewPCG(71, 72))
	tp := NewTensorProduct(FullIrreps(2), SphericalIrreps(2), FullIrreps(2))
	z, u := 5, 3
	x := randFeature(rng, z, u, tp.In1.Width)
	y := randFeature(rng, z, u, tp.In2.Width)
	gOut := randFeature(rng, z, u, tp.Out.Width)
	weights := make([]float64, tp.NumPaths())
	for i := range weights {
		weights[i] = rng.NormFloat64()
	}
	gX := tensor.New(z, u, tp.In1.Width)
	gY := tensor.New(z, u, tp.In2.Width)
	gW := make([]float64, tp.NumPaths())
	tp.BackwardInto(x, y, gOut, weights, gX, gY, gW)

	fused := tp.FlattenInto(nil, weights)
	fX := tensor.New(z, u, tp.In1.Width)
	fY := tensor.New(z, u, tp.In2.Width)
	BackwardFusedEntries(fX.Data, fY.Data, x.Data, y.Data, gOut.Data,
		z*u, tp.In1.Width, tp.In2.Width, tp.Out.Width, fused)
	for i := range gX.Data {
		if fX.Data[i] != gX.Data[i] {
			t.Fatalf("gX[%d]: fused %g vs reference %g", i, fX.Data[i], gX.Data[i])
		}
	}
	for i := range gY.Data {
		if fY.Data[i] != gY.Data[i] {
			t.Fatalf("gY[%d]: fused %g vs reference %g", i, fY.Data[i], gY.Data[i])
		}
	}
}

// TestContractEntries32MatchesNarrow checks the packed narrow-precision
// contraction against the unpacked kernel for both F32 and TF32.
func TestContractEntries32MatchesNarrow(t *testing.T) {
	rng := rand.New(rand.NewPCG(73, 74))
	tp := NewTensorProduct(FullIrreps(2), SphericalIrreps(2), FullIrreps(2))
	z, u := 4, 2
	x := randFeature(rng, z, u, tp.In1.Width)
	y := randFeature(rng, z, u, tp.In2.Width)
	weights := make([]float64, tp.NumPaths())
	for i := range weights {
		weights[i] = rng.NormFloat64()
	}
	fused := tp.FlattenInto(nil, weights)
	packed := PackEntries32(nil, fused)
	for _, p := range []tensor.Precision{tensor.F32, tensor.TF32} {
		want := tensor.New(z, u, tp.Out.Width)
		ContractEntries(want.Data, x.Data, y.Data, z*u, tp.In1.Width, tp.In2.Width, tp.Out.Width, fused, p)
		got := tensor.New(z, u, tp.Out.Width)
		ContractEntries32(got.Data, x.Data, y.Data, z*u, tp.In1.Width, tp.In2.Width, tp.Out.Width, packed, p == tensor.TF32)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("%v: packed contraction differs at %d: %g vs %g", p, i, got.Data[i], want.Data[i])
			}
		}
	}
}
