package o3

import (
	"sort"

	"repro/internal/tensor"
)

// BBLK is the pair-channel batch width of the blocked contraction kernels:
// the number of [w1]/[w2]/[w3] blocks processed per sweep of the entry
// table. Batching turns the table from a per-block reload (16 bytes per
// entry per block in ContractEntries32) into a once-per-BBLK-blocks stream,
// and gives every entry BBLK independent accumulator lanes — the two-tensor
// batching idiom of the Tensor-Go reference — instead of the single
// dependency chain consecutive same-C entries form in the unblocked kernel.
const BBLK = 8

// SortEntriesByC stable-sorts a weight-folded entry table by output
// component C. Each output accumulator receives contributions only from
// entries with its own C, and a *stable* sort preserves the relative order
// of equal-C entries, so the addend sequence of every accumulator — and
// therefore every result bit — is unchanged from the unsorted table. What
// changes is locality: all writes to one output component become one
// register-resident run (see the run loop in ContractEntries32Blocked).
func SortEntriesByC(entries []TPEntry) {
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].C < entries[j].C })
}

// SortEntries32ByC is SortEntriesByC for the packed table form.
func SortEntries32ByC(entries []TPEntry32) {
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].C < entries[j].C })
}

// ContractEntries32Blocked is the batched, cache-blocked form of
// ContractEntries32: identical arithmetic per pair-channel block
// (block-rounded operands, float32 accumulation in entry-table order, full
// block overwrite — bit-identical outputs), restructured so BBLK blocks
// share each entry-table sweep. entries must be stable-sorted by C
// (SortEntries32ByC): the kernel walks same-C runs keeping the BBLK
// accumulator lanes of that output component in registers across the run.
// Operand blocks are staged lane-major (component-major, block-minor) so the
// BBLK lanes of one component are contiguous. No allocations.
func ContractEntries32Blocked(out, x, y []float64, zu, w1, w2, w3 int, entries []TPEntry32, tf32 bool) {
	if w1 > contractMaxWidth || w2 > contractMaxWidth || w3 > contractMaxWidth {
		panic("o3: ContractEntries32Blocked width exceeds the narrow-precision block buffers")
	}
	var rxT, ryT, accT [BBLK * contractMaxWidth]float32
	for b0 := 0; b0 < zu; b0 += BBLK {
		bn := zu - b0
		if bn > BBLK {
			bn = BBLK
		} else if bn < BBLK {
			// Tail batch: kill the stale lanes so dead-lane arithmetic can't
			// hit denormals/NaN slow paths (results are never stored).
			clear(rxT[:])
			clear(ryT[:])
		}
		for t := 0; t < bn; t++ {
			xb := x[(b0+t)*w1 : (b0+t+1)*w1]
			yb := y[(b0+t)*w2 : (b0+t+1)*w2]
			if tf32 {
				for a, v := range xb {
					rxT[a*BBLK+t] = float32(tensor.RoundTF32Fast(v))
				}
				for bI, v := range yb {
					ryT[bI*BBLK+t] = float32(tensor.RoundTF32Fast(v))
				}
			} else {
				for a, v := range xb {
					rxT[a*BBLK+t] = float32(v)
				}
				for bI, v := range yb {
					ryT[bI*BBLK+t] = float32(v)
				}
			}
		}
		// Components with no entries must come out zero (the unblocked kernel
		// zeroes its whole accumulator block).
		clear(accT[:w3*BBLK])
		for ei := 0; ei < len(entries); {
			c := entries[ei].C
			var s0, s1, s2, s3, s4, s5, s6, s7 float32
			for ; ei < len(entries) && entries[ei].C == c; ei++ {
				e := entries[ei]
				w := e.W
				ax := rxT[int(e.A)*BBLK : int(e.A)*BBLK+BBLK : int(e.A)*BBLK+BBLK]
				ay := ryT[int(e.B)*BBLK : int(e.B)*BBLK+BBLK : int(e.B)*BBLK+BBLK]
				s0 += w * ax[0] * ay[0]
				s1 += w * ax[1] * ay[1]
				s2 += w * ax[2] * ay[2]
				s3 += w * ax[3] * ay[3]
				s4 += w * ax[4] * ay[4]
				s5 += w * ax[5] * ay[5]
				s6 += w * ax[6] * ay[6]
				s7 += w * ax[7] * ay[7]
			}
			ac := accT[int(c)*BBLK : int(c)*BBLK+BBLK : int(c)*BBLK+BBLK]
			ac[0] = s0
			ac[1] = s1
			ac[2] = s2
			ac[3] = s3
			ac[4] = s4
			ac[5] = s5
			ac[6] = s6
			ac[7] = s7
		}
		for t := 0; t < bn; t++ {
			ob := out[(b0+t)*w3 : (b0+t+1)*w3]
			for c := range ob {
				ob[c] = float64(accT[c*BBLK+t])
			}
		}
	}
}

// BackwardFusedEntriesBlocked is the batched form of BackwardFusedEntries:
// BBLK pair-channel blocks share each sweep of the *unsorted* path-major
// entry table (a C-sort would reorder the gX/gY slot accumulations, so the
// backward keeps the table order the tape produces). Operands and the
// running gX/gY adjoints are staged into lane-major tiles; every slot still
// receives its reference addend sequence — initial value, then the entries
// in table order — so results are bit-identical for finite data. Lanes whose
// gOut component is zero contribute exact ±0 addends where the reference
// skips; IEEE-754 round-to-nearest addition of ±0 never changes a finite
// accumulator that is not -0, and these accumulators cannot become -0 (they
// start at the callers' stored values and RN sums of finite addends only
// produce -0 from all-(-0) addend chains, which a +0 start precludes).
// Entries whose component is zero across all BBLK lanes are skipped outright
// (pair-padding makes whole tail batches zero).
func BackwardFusedEntriesBlocked(gX, gY, x, y, gOut []float64, zu, w1, w2, w3 int, entries []TPEntry) {
	if w1 > contractMaxWidth || w2 > contractMaxWidth || w3 > contractMaxWidth {
		panic("o3: BackwardFusedEntriesBlocked width exceeds the block buffers")
	}
	var txT, tyT, tgT, gxT, gyT [BBLK * contractMaxWidth]float64
	for b0 := 0; b0 < zu; b0 += BBLK {
		bn := zu - b0
		if bn > BBLK {
			bn = BBLK
		} else if bn < BBLK {
			clear(txT[:])
			clear(tyT[:])
			clear(tgT[:]) // dead lanes: g = 0 ⇒ their tile adds are ±0, never stored
			clear(gxT[:])
			clear(gyT[:])
		}
		for t := 0; t < bn; t++ {
			xb := x[(b0+t)*w1 : (b0+t+1)*w1]
			yb := y[(b0+t)*w2 : (b0+t+1)*w2]
			gb := gOut[(b0+t)*w3 : (b0+t+1)*w3]
			gxb := gX[(b0+t)*w1 : (b0+t+1)*w1]
			gyb := gY[(b0+t)*w2 : (b0+t+1)*w2]
			for a, v := range xb {
				txT[a*BBLK+t] = v
				gxT[a*BBLK+t] = gxb[a]
			}
			for bI, v := range yb {
				tyT[bI*BBLK+t] = v
				gyT[bI*BBLK+t] = gyb[bI]
			}
			for c, v := range gb {
				tgT[c*BBLK+t] = v
			}
		}
		for _, e := range entries {
			gl := tgT[e.C*BBLK : e.C*BBLK+BBLK : e.C*BBLK+BBLK]
			if gl[0] == 0 && gl[1] == 0 && gl[2] == 0 && gl[3] == 0 &&
				gl[4] == 0 && gl[5] == 0 && gl[6] == 0 && gl[7] == 0 {
				continue
			}
			w := e.W
			ax := txT[e.A*BBLK : e.A*BBLK+BBLK : e.A*BBLK+BBLK]
			ay := tyT[e.B*BBLK : e.B*BBLK+BBLK : e.B*BBLK+BBLK]
			gx := gxT[e.A*BBLK : e.A*BBLK+BBLK : e.A*BBLK+BBLK]
			gy := gyT[e.B*BBLK : e.B*BBLK+BBLK : e.B*BBLK+BBLK]
			// Same association as the reference: (W * y) * g and (W * x) * g.
			gx[0] += w * ay[0] * gl[0]
			gy[0] += w * ax[0] * gl[0]
			gx[1] += w * ay[1] * gl[1]
			gy[1] += w * ax[1] * gl[1]
			gx[2] += w * ay[2] * gl[2]
			gy[2] += w * ax[2] * gl[2]
			gx[3] += w * ay[3] * gl[3]
			gy[3] += w * ax[3] * gl[3]
			gx[4] += w * ay[4] * gl[4]
			gy[4] += w * ax[4] * gl[4]
			gx[5] += w * ay[5] * gl[5]
			gy[5] += w * ax[5] * gl[5]
			gx[6] += w * ay[6] * gl[6]
			gy[6] += w * ax[6] * gl[6]
			gx[7] += w * ay[7] * gl[7]
			gy[7] += w * ax[7] * gl[7]
		}
		for t := 0; t < bn; t++ {
			gxb := gX[(b0+t)*w1 : (b0+t+1)*w1]
			gyb := gY[(b0+t)*w2 : (b0+t+1)*w2]
			for a := range gxb {
				gxb[a] = gxT[a*BBLK+t]
			}
			for bI := range gyb {
				gyb[bI] = gyT[bI*BBLK+t]
			}
		}
	}
}

// ContractEntriesBlocked is the batched form of ContractEntries' F64 path:
// in-place accumulation over a pre-zeroed (or running) out, per-block addend
// order exactly the entry-table order, bit-identical outputs. entries must
// be stable-sorted by C (SortEntriesByC); operands are staged into
// lane-major float64 tiles so each entry's BBLK multiplies read
// contiguously.
func ContractEntriesBlocked(out, x, y []float64, zu, w1, w2, w3 int, entries []TPEntry) {
	if w1 > contractMaxWidth || w2 > contractMaxWidth || w3 > contractMaxWidth {
		panic("o3: ContractEntriesBlocked width exceeds the block buffers")
	}
	var txT, tyT [BBLK * contractMaxWidth]float64
	for b0 := 0; b0 < zu; b0 += BBLK {
		bn := zu - b0
		if bn > BBLK {
			bn = BBLK
		} else if bn < BBLK {
			clear(txT[:])
			clear(tyT[:])
		}
		for t := 0; t < bn; t++ {
			xb := x[(b0+t)*w1 : (b0+t+1)*w1]
			yb := y[(b0+t)*w2 : (b0+t+1)*w2]
			for a, v := range xb {
				txT[a*BBLK+t] = v
			}
			for bI, v := range yb {
				tyT[bI*BBLK+t] = v
			}
		}
		for ei := 0; ei < len(entries); {
			c := entries[ei].C
			// The run's lanes accumulate on top of the current out values,
			// preserving the reference kernel's += semantics.
			var s [BBLK]float64
			for t := 0; t < bn; t++ {
				s[t] = out[(b0+t)*w3+c]
			}
			for ; ei < len(entries) && entries[ei].C == c; ei++ {
				e := entries[ei]
				w := e.W
				ax := txT[e.A*BBLK : e.A*BBLK+BBLK : e.A*BBLK+BBLK]
				ay := tyT[e.B*BBLK : e.B*BBLK+BBLK : e.B*BBLK+BBLK]
				s[0] += w * ax[0] * ay[0]
				s[1] += w * ax[1] * ay[1]
				s[2] += w * ax[2] * ay[2]
				s[3] += w * ax[3] * ay[3]
				s[4] += w * ax[4] * ay[4]
				s[5] += w * ax[5] * ay[5]
				s[6] += w * ax[6] * ay[6]
				s[7] += w * ax[7] * ay[7]
			}
			for t := 0; t < bn; t++ {
				out[(b0+t)*w3+c] = s[t]
			}
		}
	}
}
