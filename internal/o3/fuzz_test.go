package o3

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/tensor"
)

// FuzzContractBlocked drives the batched contraction kernels — forward F64,
// forward narrow (F32/TF32), and the fused backward — against the unblocked
// references bit for bit over fuzzer-chosen synthetic tables. Tables draw
// A/B/C from small ranges so duplicate C values (the stable-sort
// order-preservation case) and repeated A/B slots (backward RMW chains) occur
// densely, in adversarial interleavings no real CG table produces. Zero
// gradient rows exercise the reference's skip path against the blocked
// kernel's ±0-addend equivalence.
func FuzzContractBlocked(f *testing.F) {
	f.Add(uint64(1), uint8(1), uint8(3), uint8(4), uint8(5), uint8(20))
	f.Add(uint64(2), uint8(8), uint8(9), uint8(9), uint8(9), uint8(60))
	f.Add(uint64(3), uint8(17), uint8(2), uint8(2), uint8(2), uint8(7))
	f.Add(uint64(4), uint8(24), uint8(30), uint8(30), uint8(30), uint8(120))
	f.Add(uint64(5), uint8(9), uint8(1), uint8(5), uint8(1), uint8(11))
	f.Fuzz(func(t *testing.T, seed uint64, zuRaw, w1Raw, w2Raw, w3Raw, entRaw uint8) {
		zu := int(zuRaw)%33 + 1
		w1 := int(w1Raw)%contractMaxWidth + 1
		w2 := int(w2Raw)%contractMaxWidth + 1
		w3 := int(w3Raw)%contractMaxWidth + 1
		nEnt := int(entRaw)%160 + 1
		rng := rand.New(rand.NewPCG(seed, 0x243F6A88))

		table := make([]TPEntry, nEnt)
		for i := range table {
			table[i] = TPEntry{
				A: rng.IntN(w1),
				B: rng.IntN(w2),
				C: rng.IntN(w3),
				W: rng.NormFloat64(),
			}
		}
		packed := PackEntries32(nil, table)
		sorted := append([]TPEntry(nil), table...)
		SortEntriesByC(sorted)
		sorted32 := append([]TPEntry32(nil), packed...)
		SortEntries32ByC(sorted32)

		x := make([]float64, zu*w1)
		y := make([]float64, zu*w2)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64()
		}

		bitCheck := func(name string, want, got []float64) {
			t.Helper()
			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
					t.Fatalf("%s elem %d: %x, want %x", name, i, got[i], want[i])
				}
			}
		}

		// Forward F64 accumulates onto a nonzero running output.
		want := make([]float64, zu*w3)
		got := make([]float64, zu*w3)
		for i := range want {
			want[i] = rng.NormFloat64()
			got[i] = want[i]
		}
		ContractEntries(want, x, y, zu, w1, w2, w3, table, tensor.F64)
		ContractEntriesBlocked(got, x, y, zu, w1, w2, w3, sorted)
		bitCheck("forward64", want, got)

		for _, tf32 := range []bool{false, true} {
			ContractEntries32(want, x, y, zu, w1, w2, w3, packed, tf32)
			ContractEntries32Blocked(got, x, y, zu, w1, w2, w3, sorted32, tf32)
			bitCheck("forward32", want, got)
		}

		// Backward over the unsorted table, with zero-gradient rows mixed in.
		gOut := make([]float64, zu*w3)
		for b := 0; b < zu; b++ {
			if rng.IntN(4) == 0 {
				continue // whole zero row
			}
			for c := 0; c < w3; c++ {
				gOut[b*w3+c] = rng.NormFloat64()
			}
		}
		gXw := make([]float64, zu*w1)
		gYw := make([]float64, zu*w2)
		for i := range gXw {
			gXw[i] = rng.NormFloat64()
		}
		for i := range gYw {
			gYw[i] = rng.NormFloat64()
		}
		gXb := append([]float64(nil), gXw...)
		gYb := append([]float64(nil), gYw...)
		BackwardFusedEntries(gXw, gYw, x, y, gOut, zu, w1, w2, w3, table)
		BackwardFusedEntriesBlocked(gXb, gYb, x, y, gOut, zu, w1, w2, w3, table)
		bitCheck("backwardGX", gXw, gXb)
		bitCheck("backwardGY", gYw, gYb)
	})
}
