package o3

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/tensor"
)

// TestContractBlockedBitIdentical checks the batched contraction kernels
// against the unblocked references bit for bit: real CG tables (which carry
// duplicate C naturally) over ragged zu covering full batches, tail batches,
// and sub-batch sizes, for F64, F32 and TF32.
func TestContractBlockedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(81, 82))
	tp := NewTensorProduct(FullIrreps(2), SphericalIrreps(2), FullIrreps(2))
	weights := make([]float64, tp.NumPaths())
	for i := range weights {
		weights[i] = rng.NormFloat64()
	}
	fused := tp.FlattenInto(nil, weights)
	packed := PackEntries32(nil, fused)
	sorted := append([]TPEntry(nil), fused...)
	SortEntriesByC(sorted)
	sorted32 := append([]TPEntry32(nil), packed...)
	SortEntries32ByC(sorted32)

	w1, w2, w3 := tp.In1.Width, tp.In2.Width, tp.Out.Width
	for _, zu := range []int{1, 2, 3, 7, 8, 9, 15, 16, 17, 24, 31} {
		x := make([]float64, zu*w1)
		y := make([]float64, zu*w2)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64()
		}

		// F64: in-place accumulation onto a nonzero running output.
		want := make([]float64, zu*w3)
		got := make([]float64, zu*w3)
		for i := range want {
			want[i] = rng.NormFloat64()
			got[i] = want[i]
		}
		ContractEntries(want, x, y, zu, w1, w2, w3, fused, tensor.F64)
		ContractEntriesBlocked(got, x, y, zu, w1, w2, w3, sorted)
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("F64 zu=%d elem %d: blocked %x, want %x", zu, i, got[i], want[i])
			}
		}

		for _, tf32 := range []bool{false, true} {
			ContractEntries32(want, x, y, zu, w1, w2, w3, packed, tf32)
			ContractEntries32Blocked(got, x, y, zu, w1, w2, w3, sorted32, tf32)
			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
					t.Fatalf("tf32=%v zu=%d elem %d: blocked %x, want %x", tf32, zu, i, got[i], want[i])
				}
			}
		}
	}
}

// TestContractBlockedInterleavedC uses a synthetic table whose C values
// interleave (C = 2, 0, 2, 1, 0, ...) so the stable sort genuinely reorders
// entries, and checks the per-accumulator addend sequences still match the
// unsorted reference. This is the bit-identity argument's load-bearing case:
// equal-C entries must keep their relative order.
func TestContractBlockedInterleavedC(t *testing.T) {
	rng := rand.New(rand.NewPCG(83, 84))
	const w1, w2, w3 = 5, 4, 3
	var table []TPEntry
	cs := []int{2, 0, 2, 1, 0, 2, 1, 1, 0, 2}
	for i, c := range cs {
		table = append(table, TPEntry{A: i % w1, B: (i * 3) % w2, C: c, W: rng.NormFloat64()})
	}
	packed := PackEntries32(nil, table)
	sorted := append([]TPEntry(nil), table...)
	SortEntriesByC(sorted)
	sorted32 := append([]TPEntry32(nil), packed...)
	SortEntries32ByC(sorted32)

	zu := 13
	x := make([]float64, zu*w1)
	y := make([]float64, zu*w2)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	want := make([]float64, zu*w3)
	got := make([]float64, zu*w3)
	ContractEntries(want, x, y, zu, w1, w2, w3, table, tensor.F64)
	ContractEntriesBlocked(got, x, y, zu, w1, w2, w3, sorted)
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("F64 elem %d: blocked %x, want %x", i, got[i], want[i])
		}
	}
	ContractEntries32(want, x, y, zu, w1, w2, w3, packed, true)
	ContractEntries32Blocked(got, x, y, zu, w1, w2, w3, sorted32, true)
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("TF32 elem %d: blocked %x, want %x", i, got[i], want[i])
		}
	}
}

// TestBackwardBlockedBitIdentical checks BackwardFusedEntriesBlocked against
// BackwardFusedEntries bit for bit over ragged zu, including nonzero initial
// adjoints (the blocked kernel stages and restores running gX/gY values),
// zero-gradient rows scattered through the batch (the reference's per-entry
// g==0 skip vs the blocked kernel's ±0 adds and all-lanes-zero skip), and
// fully zero tail regions as pair padding produces.
func TestBackwardBlockedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(85, 86))
	tp := NewTensorProduct(FullIrreps(2), SphericalIrreps(2), FullIrreps(2))
	weights := make([]float64, tp.NumPaths())
	for i := range weights {
		weights[i] = rng.NormFloat64()
	}
	fused := tp.FlattenInto(nil, weights)

	w1, w2, w3 := tp.In1.Width, tp.In2.Width, tp.Out.Width
	for _, zu := range []int{1, 2, 3, 7, 8, 9, 15, 16, 17, 24, 31} {
		x := make([]float64, zu*w1)
		y := make([]float64, zu*w2)
		gOut := make([]float64, zu*w3)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		for b := 0; b < zu; b++ {
			switch {
			case b%5 == 3:
				// Zero-gradient row inside a live batch: reference skips its
				// entries one by one, blocked adds exact zeros.
			case b >= zu-2 && zu > 4:
				// Padded tail rows: whole trailing lanes zero.
			default:
				for c := 0; c < w3; c++ {
					gOut[b*w3+c] = rng.NormFloat64()
				}
			}
		}
		gXw := make([]float64, zu*w1)
		gYw := make([]float64, zu*w2)
		for i := range gXw {
			gXw[i] = rng.NormFloat64()
		}
		for i := range gYw {
			gYw[i] = rng.NormFloat64()
		}
		gXb := append([]float64(nil), gXw...)
		gYb := append([]float64(nil), gYw...)

		BackwardFusedEntries(gXw, gYw, x, y, gOut, zu, w1, w2, w3, fused)
		BackwardFusedEntriesBlocked(gXb, gYb, x, y, gOut, zu, w1, w2, w3, fused)
		for i := range gXw {
			if math.Float64bits(gXw[i]) != math.Float64bits(gXb[i]) {
				t.Fatalf("zu=%d gX elem %d: blocked %x, want %x", zu, i, gXb[i], gXw[i])
			}
		}
		for i := range gYw {
			if math.Float64bits(gYw[i]) != math.Float64bits(gYb[i]) {
				t.Fatalf("zu=%d gY elem %d: blocked %x, want %x", zu, i, gYb[i], gYw[i])
			}
		}
	}
}

func BenchmarkContractKernels(b *testing.B) {
	rng := rand.New(rand.NewPCG(91, 92))
	tp := NewTensorProduct(FullIrreps(2), SphericalIrreps(2), FullIrreps(2))
	weights := make([]float64, tp.NumPaths())
	for i := range weights {
		weights[i] = rng.NormFloat64()
	}
	fused := tp.FlattenInto(nil, weights)
	packed := PackEntries32(nil, fused)
	sorted := append([]TPEntry(nil), fused...)
	SortEntriesByC(sorted)
	sorted32 := append([]TPEntry32(nil), packed...)
	SortEntries32ByC(sorted32)

	w1, w2, w3 := tp.In1.Width, tp.In2.Width, tp.Out.Width
	// Production scale: one chunk's pair rows times the channel width.
	zu := 256 * 64
	x := make([]float64, zu*w1)
	y := make([]float64, zu*w2)
	out := make([]float64, zu*w3)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range y {
		y[i] = rng.NormFloat64()
	}

	b.Run("ref32", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ContractEntries32(out, x, y, zu, w1, w2, w3, packed, true)
		}
	})
	b.Run("blocked32", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ContractEntries32Blocked(out, x, y, zu, w1, w2, w3, sorted32, true)
		}
	})
	gOut := make([]float64, zu*w3)
	gX := make([]float64, zu*w1)
	gY := make([]float64, zu*w2)
	for i := range gOut {
		gOut[i] = rng.NormFloat64()
	}
	b.Run("backRef", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			BackwardFusedEntries(gX, gY, x, y, gOut, zu, w1, w2, w3, fused)
		}
	})
	b.Run("backBlocked", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			BackwardFusedEntriesBlocked(gX, gY, x, y, gOut, zu, w1, w2, w3, fused)
		}
	})
	b.Run("ref64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			clear(out)
			ContractEntries(out, x, y, zu, w1, w2, w3, fused, tensor.F64)
		}
	})
	b.Run("blocked64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			clear(out)
			ContractEntriesBlocked(out, x, y, zu, w1, w2, w3, sorted)
		}
	})
}
