package o3

import (
	"fmt"
	"math"
	"math/big"
	"sync"
)

// Wigner3j returns the Wigner 3j coupling tensor in the *real* spherical
// harmonic basis as a dense [2l1+1][2l2+1][2l3+1] array indexed by
// (m1+l1, m2+l2, m3+l3). The tensor is the invariant 3-tensor of
// SO(3) acting on the real irreps: contracting two features with it yields
// an equivariant product. Its Frobenius norm is 1, inherited from the
// complex 3j orthogonality.
//
// The computation is exact up to final float64 rounding: complex-basis 3j
// symbols are evaluated with the Racah formula over big rationals and then
// conjugated into the real basis by the standard unitary change of basis;
// the result is purely real or purely imaginary and the correct global phase
// is selected automatically.
func Wigner3j(l1, l2, l3 int) [][][]float64 {
	key := [3]int{l1, l2, l3}
	w3jMu.Lock()
	defer w3jMu.Unlock()
	if t, ok := w3jCache[key]; ok {
		return t
	}
	t := computeRealW3j(l1, l2, l3)
	w3jCache[key] = t
	return t
}

var (
	w3jMu    sync.Mutex
	w3jCache = map[[3]int][][][]float64{}
)

// TriangleOK reports whether (l1,l2,l3) satisfies the triangle inequality
// |l1-l2| <= l3 <= l1+l2 required for a nonzero coupling.
func TriangleOK(l1, l2, l3 int) bool {
	return l3 >= absInt(l1-l2) && l3 <= l1+l2
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func computeRealW3j(l1, l2, l3 int) [][][]float64 {
	d1, d2, d3 := 2*l1+1, 2*l2+1, 2*l3+1
	out := make([][][]float64, d1)
	for i := range out {
		out[i] = make([][]float64, d2)
		for j := range out[i] {
			out[i][j] = make([]float64, d3)
		}
	}
	if !TriangleOK(l1, l2, l3) {
		return out
	}
	// Complex-basis 3j tensor.
	cw := func(m1, m2, m3 int) float64 { return complex3j(l1, l2, l3, m1, m2, m3) }
	// Real tensor: T[m1,m2,m3] = sum_mu U1[m1,mu1] U2[m2,mu2] U3[m3,mu3] cw(mu)
	// with U the real<-complex change of basis. The result is exactly real
	// or exactly imaginary; pick whichever carries the weight.
	tmp := make([][][]complex128, d1)
	for i := range tmp {
		tmp[i] = make([][]complex128, d2)
		for j := range tmp[i] {
			tmp[i][j] = make([]complex128, d3)
		}
	}
	u1 := realFromComplexU(l1)
	u2 := realFromComplexU(l2)
	u3 := realFromComplexU(l3)
	for m1 := -l1; m1 <= l1; m1++ {
		for m2 := -l2; m2 <= l2; m2++ {
			for m3 := -l3; m3 <= l3; m3++ {
				var s complex128
				// The complex 3j vanishes unless mu1+mu2+mu3 = 0, and each U
				// row has at most two nonzero entries: exploit both.
				for _, e1 := range u1[m1+l1] {
					for _, e2 := range u2[m2+l2] {
						mu3 := -e1.mu - e2.mu
						if mu3 < -l3 || mu3 > l3 {
							continue
						}
						for _, e3 := range u3[m3+l3] {
							if e3.mu != mu3 {
								continue
							}
							s += e1.c * e2.c * e3.c * complex(cw(e1.mu, e2.mu, mu3), 0)
						}
					}
				}
				tmp[m1+l1][m2+l2][m3+l3] = s
			}
		}
	}
	// Select the real or imaginary part.
	maxRe, maxIm := 0.0, 0.0
	for i := range tmp {
		for j := range tmp[i] {
			for k := range tmp[i][j] {
				if a := math.Abs(real(tmp[i][j][k])); a > maxRe {
					maxRe = a
				}
				if a := math.Abs(imag(tmp[i][j][k])); a > maxIm {
					maxIm = a
				}
			}
		}
	}
	useIm := maxIm > maxRe
	if maxRe > 1e-10 && maxIm > 1e-10 {
		panic(fmt.Sprintf("o3: real 3j (%d,%d,%d) is neither purely real nor purely imaginary (re=%g im=%g)", l1, l2, l3, maxRe, maxIm))
	}
	for i := range tmp {
		for j := range tmp[i] {
			for k := range tmp[i][j] {
				if useIm {
					out[i][j][k] = imag(tmp[i][j][k])
				} else {
					out[i][j][k] = real(tmp[i][j][k])
				}
			}
		}
	}
	return out
}

// uEntry is a nonzero entry of the real<-complex basis change row.
type uEntry struct {
	mu int        // complex-basis m
	c  complex128 // coefficient
}

// realFromComplexU returns, for each real-basis row m (indexed m+l), the
// nonzero entries of the unitary U with Y^real_m = sum_mu U[m,mu] Y^complex_mu:
//
//	m > 0: (Y_l^{-m} + (-1)^m Y_l^{m}) / sqrt(2)
//	m = 0: Y_l^0
//	m < 0: i (Y_l^{-|m|} - (-1)^{|m|} Y_l^{|m|}) / sqrt(2)
func realFromComplexU(l int) [][]uEntry {
	rows := make([][]uEntry, 2*l+1)
	inv := 1 / math.Sqrt(2)
	for m := -l; m <= l; m++ {
		switch {
		case m == 0:
			rows[l] = []uEntry{{mu: 0, c: 1}}
		case m > 0:
			sign := 1.0
			if m%2 == 1 {
				sign = -1
			}
			rows[m+l] = []uEntry{
				{mu: -m, c: complex(inv, 0)},
				{mu: m, c: complex(sign*inv, 0)},
			}
		default: // m < 0
			am := -m
			sign := 1.0
			if am%2 == 1 {
				sign = -1
			}
			rows[m+l] = []uEntry{
				{mu: -am, c: complex(0, inv)},
				{mu: am, c: complex(0, -sign*inv)},
			}
		}
	}
	return rows
}

// complex3j evaluates the standard (complex-basis) Wigner 3j symbol with
// integer angular momenta via the Racah formula using exact big-rational
// arithmetic, converted to float64 at the end.
func complex3j(j1, j2, j3, m1, m2, m3 int) float64 {
	if m1+m2+m3 != 0 || !TriangleOK(j1, j2, j3) {
		return 0
	}
	if absInt(m1) > j1 || absInt(m2) > j2 || absInt(m3) > j3 {
		return 0
	}
	// Triangle coefficient and magnitude product (both exact rationals).
	delta := new(big.Rat).SetFrac(
		mulInts(fact(j1+j2-j3), fact(j1-j2+j3), fact(-j1+j2+j3)),
		fact(j1+j2+j3+1),
	)
	prod := mulInts(fact(j1+m1), fact(j1-m1), fact(j2+m2), fact(j2-m2), fact(j3+m3), fact(j3-m3))
	// Racah sum over t.
	tMin := maxInt(0, maxInt(j2-j3-m1, j1-j3+m2))
	tMax := minInt(j1+j2-j3, minInt(j1-m1, j2+m2))
	sum := new(big.Rat)
	for t := tMin; t <= tMax; t++ {
		den := mulInts(
			fact(t), fact(j3-j2+t+m1), fact(j3-j1+t-m2),
			fact(j1+j2-j3-t), fact(j1-t-m1), fact(j2-t+m2),
		)
		term := new(big.Rat).SetFrac(big.NewInt(1), den)
		if t%2 == 1 {
			term.Neg(term)
		}
		sum.Add(sum, term)
	}
	if sum.Sign() == 0 {
		return 0
	}
	sf, _ := sum.Float64()
	df, _ := delta.Float64()
	pf := new(big.Rat).SetInt(prod)
	pff, _ := pf.Float64()
	val := sf * math.Sqrt(df*pff)
	if (j1-j2-m3)%2 != 0 {
		val = -val
	}
	return val
}

func fact(n int) *big.Int {
	if n < 0 {
		panic(fmt.Sprintf("o3: factorial of negative %d", n))
	}
	return new(big.Int).MulRange(1, int64(n))
}

func mulInts(xs ...*big.Int) *big.Int {
	p := big.NewInt(1)
	for _, x := range xs {
		p.Mul(p, x)
	}
	return p
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
