// Package o3 implements the O(3) representation theory underlying the
// Allegro architecture: irreducible representations ("irreps") indexed by
// rotation order l and parity p, real spherical harmonics with analytic
// gradients, Wigner 3j coupling coefficients in the real basis, the strided
// irrep memory layout of the paper (Fig. 3), and the fused tensor-product
// contraction that is Allegro's only equivariant nonlinearity (Eq. 1-2).
package o3

import (
	"fmt"
	"strings"
)

// Parity is the behaviour of a feature under spatial inversion.
type Parity int

const (
	// Even parity (+1): scalars, pseudo-vectors.
	Even Parity = 1
	// Odd parity (-1): pseudo-scalars, vectors.
	Odd Parity = -1
)

// Irrep identifies an irreducible representation of O(3): rotation order L
// (dimension 2L+1) and parity P.
type Irrep struct {
	L int
	P Parity
}

// Dim returns the dimension 2L+1 of the irrep.
func (ir Irrep) Dim() int { return 2*ir.L + 1 }

// String renders the irrep in e3nn notation, e.g. "1o" or "2e".
func (ir Irrep) String() string {
	s := "e"
	if ir.P == Odd {
		s = "o"
	}
	return fmt.Sprintf("%d%s", ir.L, s)
}

// Irreps is an ordered list of irreps sharing a common channel multiplicity
// in the strided layout.
type Irreps []Irrep

// Dim returns the total component dimension sum(2L+1).
func (irs Irreps) Dim() int {
	d := 0
	for _, ir := range irs {
		d += ir.Dim()
	}
	return d
}

// MaxL returns the largest rotation order present.
func (irs Irreps) MaxL() int {
	m := 0
	for _, ir := range irs {
		if ir.L > m {
			m = ir.L
		}
	}
	return m
}

// Index returns the position of ir within irs, or -1.
func (irs Irreps) Index(ir Irrep) int {
	for i, x := range irs {
		if x == ir {
			return i
		}
	}
	return -1
}

// String renders the list, e.g. "0e+1o+2e".
func (irs Irreps) String() string {
	parts := make([]string, len(irs))
	for i, ir := range irs {
		parts[i] = ir.String()
	}
	return strings.Join(parts, "+")
}

// SphericalIrreps returns the irreps of the spherical-harmonic embedding up
// to lmax: l=0..lmax with natural parity (-1)^l.
func SphericalIrreps(lmax int) Irreps {
	irs := make(Irreps, 0, lmax+1)
	for l := 0; l <= lmax; l++ {
		p := Even
		if l%2 == 1 {
			p = Odd
		}
		irs = append(irs, Irrep{L: l, P: p})
	}
	return irs
}

// FullIrreps returns both parities for every l = 0..lmax, the feature space
// used by a full-O(3) Allegro model (2*(lmax+1)^2 components).
func FullIrreps(lmax int) Irreps {
	irs := make(Irreps, 0, 2*(lmax+1))
	for l := 0; l <= lmax; l++ {
		irs = append(irs, Irrep{L: l, P: Even}, Irrep{L: l, P: Odd})
	}
	return irs
}

// Layout is the strided memory layout of the paper (Fig. 3): all tensor
// features of the various (l,p) live in one contiguous array whose innermost
// dimension concatenates the irrep blocks; a feature tensor has logical
// shape [pairs][channels][Layout.Width].
type Layout struct {
	Irreps  Irreps
	Offsets []int // component offset of each irrep block
	Width   int   // total components = Irreps.Dim()
}

// NewLayout builds the strided layout for the given irreps.
func NewLayout(irs Irreps) *Layout {
	l := &Layout{Irreps: append(Irreps(nil), irs...)}
	l.Offsets = make([]int, len(irs))
	off := 0
	for i, ir := range irs {
		l.Offsets[i] = off
		off += ir.Dim()
	}
	l.Width = off
	return l
}

// Offset returns the component offset of irrep index i.
func (l *Layout) Offset(i int) int { return l.Offsets[i] }

// Block returns the [offset, offset+dim) component range of irrep index i.
func (l *Layout) Block(i int) (int, int) {
	return l.Offsets[i], l.Offsets[i] + l.Irreps[i].Dim()
}

// ScalarIndex returns the irrep index of the even scalar (0e) block, or -1.
func (l *Layout) ScalarIndex() int { return l.Irreps.Index(Irrep{L: 0, P: Even}) }
