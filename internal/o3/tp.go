package o3

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// TPEntry is one nonzero Wigner-3j coefficient of a tensor-product path,
// with component offsets already resolved into the strided layouts, so the
// fused contraction is a flat loop (the "single three-tensor contraction"
// of the paper, Fig. 3 bottom-right).
type TPEntry struct {
	A, B, C int     // absolute component indices in In1 / In2 / Out layouts
	W       float64 // normalized coupling coefficient
}

// TPPath is a symmetrically allowed combination (l1,p1) x (l2,p2) -> (l3,p3).
type TPPath struct {
	I1, I2, I3 int // irrep indices within In1 / In2 / Out layouts
	Entries    []TPEntry
}

// String renders the path, e.g. "1o x 1o -> 2e".
func (p *TPPath) String() string { return fmt.Sprintf("path(%d x %d -> %d)", p.I1, p.I2, p.I3) }

// TensorProduct is the strided, fused equivariant tensor product between
// feature tensors of layout In1 and (typically spherical-harmonic
// environment) tensors of layout In2, producing layout Out. It enumerates
// every symmetrically valid path |l1-l2| <= l3 <= l1+l2 with p3 = p1*p2
// whose output irrep appears in Out.
type TensorProduct struct {
	In1, In2, Out *Layout
	Paths         []TPPath
	// fused holds the path-weight-folded entry table built by Fuse; nil
	// until Fuse is called (the inference optimization of Sec. V-B2).
	fused []TPEntry
}

// NewTensorProduct builds the path table for in1 (x) in2 -> out.
// Coefficients are normalized so that with unit-variance inputs each output
// component has approximately unit variance: each path's w3j (Frobenius norm
// 1) is scaled by sqrt(2*l3+1), and every output irrep's paths are divided
// by sqrt(number of contributing paths).
func NewTensorProduct(in1, in2, out Irreps) *TensorProduct {
	tp := &TensorProduct{In1: NewLayout(in1), In2: NewLayout(in2), Out: NewLayout(out)}
	pathsInto := make([]int, len(out))
	type protoPath struct{ i1, i2, i3 int }
	var protos []protoPath
	for i1, ir1 := range in1 {
		for i2, ir2 := range in2 {
			for i3, ir3 := range out {
				if !TriangleOK(ir1.L, ir2.L, ir3.L) {
					continue
				}
				if ir1.P*ir2.P != ir3.P {
					continue
				}
				protos = append(protos, protoPath{i1, i2, i3})
				pathsInto[i3]++
			}
		}
	}
	for _, pp := range protos {
		ir1, ir2, ir3 := in1[pp.i1], in2[pp.i2], out[pp.i3]
		w := Wigner3j(ir1.L, ir2.L, ir3.L)
		scale := math.Sqrt(float64(2*ir3.L+1)) / math.Sqrt(float64(pathsInto[pp.i3]))
		o1 := tp.In1.Offset(pp.i1)
		o2 := tp.In2.Offset(pp.i2)
		o3 := tp.Out.Offset(pp.i3)
		var entries []TPEntry
		for a := 0; a < ir1.Dim(); a++ {
			for b := 0; b < ir2.Dim(); b++ {
				for c := 0; c < ir3.Dim(); c++ {
					if v := w[a][b][c]; v != 0 {
						entries = append(entries, TPEntry{A: o1 + a, B: o2 + b, C: o3 + c, W: v * scale})
					}
				}
			}
		}
		tp.Paths = append(tp.Paths, TPPath{I1: pp.i1, I2: pp.i2, I3: pp.i3, Entries: entries})
	}
	return tp
}

// NumPaths returns the number of symmetrically allowed paths.
func (tp *TensorProduct) NumPaths() int { return len(tp.Paths) }

// Fuse folds per-path scalar weights into a single flat entry table
// (precompute einsum("p,pcab->cab") in the paper's notation). After Fuse,
// ApplyFused ignores its weights argument and the per-path overhead is gone.
func (tp *TensorProduct) Fuse(weights []float64) {
	if len(weights) != len(tp.Paths) {
		panic(fmt.Sprintf("o3: Fuse got %d weights for %d paths", len(weights), len(tp.Paths)))
	}
	total := 0
	for _, p := range tp.Paths {
		total += len(p.Entries)
	}
	fused := make([]TPEntry, 0, total)
	for pi, p := range tp.Paths {
		w := weights[pi]
		if w == 0 {
			continue
		}
		for _, e := range p.Entries {
			fused = append(fused, TPEntry{A: e.A, B: e.B, C: e.C, W: e.W * w})
		}
	}
	tp.fused = fused
}

// Unfuse discards the fused table (returning to per-path weighted mode).
func (tp *TensorProduct) Unfuse() { tp.fused = nil }

// ApplyFused computes out[z,u,c] = sum_p w_p sum_{ab} w3j^p_{cab} x[z,u,a] y[z,u,b]
// as one flat contraction over the strided layouts. x is [Z,U,In1.Width],
// y is [Z,U,In2.Width]; the result is [Z,U,Out.Width]. If Fuse has been
// called, the folded table is used and weights may be nil. The compute
// precision p emulates the hardware pipeline used for the contraction.
func (tp *TensorProduct) ApplyFused(x, y *tensor.Tensor, weights []float64, p tensor.Precision) *tensor.Tensor {
	z, u := tp.checkShapes(x, y)
	out := tensor.New(z, u, tp.Out.Width)
	entries := tp.fused
	if entries == nil {
		entries = tp.flattenWeighted(weights)
	}
	tp.contract(out, x, y, entries, p)
	return out
}

// ApplyFusedInto is ApplyFused with a caller-provided zeroed output tensor
// [Z,U,Out.Width] and an optional reusable entry scratch: entryScratch is
// overwritten with the weight-folded table and the (possibly grown) slice is
// returned so callers can amortize it across evaluations. With a non-nil
// scratch and an F64 pipeline the contraction performs no allocations once
// the scratch has warmed up — the inner loop of the paper's Fig. 3 fused
// kernel.
func (tp *TensorProduct) ApplyFusedInto(out, x, y *tensor.Tensor, weights []float64, p tensor.Precision, entryScratch []TPEntry) []TPEntry {
	z, u := tp.checkShapes(x, y)
	if out.Dim(0) != z || out.Dim(1) != u || out.Dim(2) != tp.Out.Width {
		panic("o3: ApplyFusedInto output shape mismatch")
	}
	entries := tp.fused
	if entries == nil {
		entryScratch = tp.FlattenInto(entryScratch[:0], weights)
		entries = entryScratch
	}
	tp.contract(out, x, y, entries, p)
	return entryScratch
}

// FlattenInto appends the weight-folded entry table to dst and returns it
// (the allocation-free form of the transient table ApplyFused builds).
func (tp *TensorProduct) FlattenInto(dst []TPEntry, weights []float64) []TPEntry {
	if weights != nil && len(weights) != len(tp.Paths) {
		panic(fmt.Sprintf("o3: got %d weights for %d paths", len(weights), len(tp.Paths)))
	}
	for pi, path := range tp.Paths {
		w := 1.0
		if weights != nil {
			w = weights[pi]
		}
		if w == 0 {
			continue
		}
		for _, e := range path.Entries {
			dst = append(dst, TPEntry{A: e.A, B: e.B, C: e.C, W: e.W * w})
		}
	}
	return dst
}

// flattenWeighted builds a transient entry table with the given per-path
// weights applied (the training-time four-tensor contraction).
func (tp *TensorProduct) flattenWeighted(weights []float64) []TPEntry {
	if weights == nil {
		weights = make([]float64, len(tp.Paths))
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != len(tp.Paths) {
		panic(fmt.Sprintf("o3: got %d weights for %d paths", len(weights), len(tp.Paths)))
	}
	var entries []TPEntry
	for pi, path := range tp.Paths {
		w := weights[pi]
		if w == 0 {
			continue
		}
		for _, e := range path.Entries {
			entries = append(entries, TPEntry{A: e.A, B: e.B, C: e.C, W: e.W * w})
		}
	}
	return entries
}

func (tp *TensorProduct) checkShapes(x, y *tensor.Tensor) (z, u int) {
	if x.NDim() != 3 || y.NDim() != 3 {
		panic("o3: tensor product operands must be [pairs][channels][components]")
	}
	if x.Dim(2) != tp.In1.Width || y.Dim(2) != tp.In2.Width {
		panic(fmt.Sprintf("o3: component widths %d/%d do not match layouts %d/%d",
			x.Dim(2), y.Dim(2), tp.In1.Width, tp.In2.Width))
	}
	if x.Dim(0) != y.Dim(0) || x.Dim(1) != y.Dim(1) {
		panic("o3: tensor product operands must agree in pairs and channels")
	}
	return x.Dim(0), x.Dim(1)
}

// contract is the flat fused kernel shared by fused/weighted application.
func (tp *TensorProduct) contract(out, x, y *tensor.Tensor, entries []TPEntry, p tensor.Precision) {
	z, u := out.Dim(0), out.Dim(1)
	ContractEntries(out.Data, x.Data, y.Data, z*u, tp.In1.Width, tp.In2.Width, tp.Out.Width, entries, p)
}

// contractMaxWidth bounds the per-block stack buffers of the narrow-precision
// contraction; LMax <= 3 keeps every layout width at or below 32.
const contractMaxWidth = 64

// ContractEntries runs the fused three-tensor contraction over flat storage:
// zu blocks of x [w1], y [w2] and out [w3], combined through the (already
// weight-folded) entry table. The F64 path accumulates in place (out must be
// zeroed by the caller); the narrow paths round the operand blocks to the
// input format of p once per block, accumulate in float32, and fully
// overwrite each output block — the per-element precision dispatch of the
// previous kernel is hoisted into these specializations, and none of them
// allocates. This is the replay kernel of the compiled inference plans.
func ContractEntries(out, x, y []float64, zu, w1, w2, w3 int, entries []TPEntry, p tensor.Precision) {
	switch p {
	case tensor.F64:
		for b := 0; b < zu; b++ {
			xb := x[b*w1 : (b+1)*w1]
			yb := y[b*w2 : (b+1)*w2]
			ob := out[b*w3 : (b+1)*w3]
			for _, e := range entries {
				ob[e.C] += e.W * xb[e.A] * yb[e.B]
			}
		}
	default:
		if w1 > contractMaxWidth || w2 > contractMaxWidth || w3 > contractMaxWidth {
			panic("o3: ContractEntries width exceeds the narrow-precision block buffers")
		}
		var rx, ry, acc [contractMaxWidth]float32
		tf32 := p == tensor.TF32
		for b := 0; b < zu; b++ {
			xb := x[b*w1 : (b+1)*w1]
			yb := y[b*w2 : (b+1)*w2]
			if tf32 {
				for i, v := range xb {
					rx[i] = float32(tensor.RoundTF32(v))
				}
				for i, v := range yb {
					ry[i] = float32(tensor.RoundTF32(v))
				}
			} else {
				for i, v := range xb {
					rx[i] = float32(v)
				}
				for i, v := range yb {
					ry[i] = float32(v)
				}
			}
			ab := acc[:w3]
			for c := range ab {
				ab[c] = 0
			}
			for _, e := range entries {
				ab[e.C] += float32(e.W) * rx[e.A] * ry[e.B]
			}
			ob := out[b*w3 : (b+1)*w3]
			for c, v := range ab {
				ob[c] = float64(v)
			}
		}
	}
}

// TPEntry32 is the packed form of a weight-folded entry table for the
// narrow-precision replay kernels: int32 component offsets and the folded
// coefficient pre-converted to the float32 the emulated tensor core
// multiplies with. Packing folds the per-entry float64→float32 weight
// conversion (one conversion per entry per pair-channel block in the
// unpacked kernel) into compile time and halves the table's cache
// footprint; the multiplied values are bit-identical.
type TPEntry32 struct {
	A, B, C int32
	W       float32
}

// PackEntries32 converts a weight-folded entry table into packed form.
func PackEntries32(dst []TPEntry32, entries []TPEntry) []TPEntry32 {
	dst = dst[:0]
	for _, e := range entries {
		dst = append(dst, TPEntry32{A: int32(e.A), B: int32(e.B), C: int32(e.C), W: float32(e.W)})
	}
	return dst
}

// ContractEntries32 is the narrow-precision contraction over a packed entry
// table — the compiled plans' forward TP kernel. Identical arithmetic to
// ContractEntries' narrow path (block-rounded operands, float32
// accumulation, full block overwrite), minus the per-entry weight
// conversion.
func ContractEntries32(out, x, y []float64, zu, w1, w2, w3 int, entries []TPEntry32, tf32 bool) {
	if w1 > contractMaxWidth || w2 > contractMaxWidth || w3 > contractMaxWidth {
		panic("o3: ContractEntries32 width exceeds the narrow-precision block buffers")
	}
	var rx, ry, acc [contractMaxWidth]float32
	for b := 0; b < zu; b++ {
		xb := x[b*w1 : (b+1)*w1]
		yb := y[b*w2 : (b+1)*w2]
		if tf32 {
			for i, v := range xb {
				rx[i] = float32(tensor.RoundTF32(v))
			}
			for i, v := range yb {
				ry[i] = float32(tensor.RoundTF32(v))
			}
		} else {
			for i, v := range xb {
				rx[i] = float32(v)
			}
			for i, v := range yb {
				ry[i] = float32(v)
			}
		}
		ab := acc[:w3]
		for c := range ab {
			ab[c] = 0
		}
		for _, e := range entries {
			ab[e.C] += e.W * rx[e.A] * ry[e.B]
		}
		ob := out[b*w3 : (b+1)*w3]
		for c, v := range ab {
			ob[c] = float64(v)
		}
	}
}

// ApplySeparated is the reference implementation that processes each path
// separately with per-(l,p) block extraction — the memory layout previous
// equivariant codes used (Fig. 3 top-left) — kept for the Fig. 3
// benchmark and as a differential-testing oracle for the fused kernel.
func (tp *TensorProduct) ApplySeparated(x, y *tensor.Tensor, weights []float64, p tensor.Precision) *tensor.Tensor {
	z, u := tp.checkShapes(x, y)
	if weights == nil {
		weights = make([]float64, len(tp.Paths))
		for i := range weights {
			weights[i] = 1
		}
	}
	out := tensor.New(z, u, tp.Out.Width)
	for pi, path := range tp.Paths {
		w := weights[pi]
		ir1 := tp.In1.Irreps[path.I1]
		ir2 := tp.In2.Irreps[path.I2]
		ir3 := tp.Out.Irreps[path.I3]
		o1 := tp.In1.Offset(path.I1)
		o2 := tp.In2.Offset(path.I2)
		o3 := tp.Out.Offset(path.I3)
		d1, d2, d3 := ir1.Dim(), ir2.Dim(), ir3.Dim()
		// Per-path extraction into separate contiguous arrays (the overhead
		// the strided layout eliminates).
		xb := tensor.New(z, u, d1)
		yb := tensor.New(z, u, d2)
		ob := tensor.New(z, u, d3)
		for zi := 0; zi < z; zi++ {
			for ui := 0; ui < u; ui++ {
				src := x.Data[(zi*u+ui)*tp.In1.Width+o1:]
				copy(xb.Data[(zi*u+ui)*d1:(zi*u+ui+1)*d1], src[:d1])
				src = y.Data[(zi*u+ui)*tp.In2.Width+o2:]
				copy(yb.Data[(zi*u+ui)*d2:(zi*u+ui+1)*d2], src[:d2])
			}
		}
		w3j := Wigner3j(ir1.L, ir2.L, ir3.L)
		scale := math.Sqrt(float64(2*ir3.L+1)) / pathNormInto(tp, path.I3)
		for zi := 0; zi < z; zi++ {
			for ui := 0; ui < u; ui++ {
				xi := xb.Data[(zi*u+ui)*d1 : (zi*u+ui+1)*d1]
				yi := yb.Data[(zi*u+ui)*d2 : (zi*u+ui+1)*d2]
				oi := ob.Data[(zi*u+ui)*d3 : (zi*u+ui+1)*d3]
				for a := 0; a < d1; a++ {
					va := xi[a]
					if va == 0 {
						continue
					}
					for b := 0; b < d2; b++ {
						vb := yi[b]
						if vb == 0 {
							continue
						}
						for c := 0; c < d3; c++ {
							if cw := w3j[a][b][c]; cw != 0 {
								oi[c] += p.Round(w * scale * cw * va * vb)
							}
						}
					}
				}
			}
		}
		// Scatter the path output back into the concatenated layout.
		for zi := 0; zi < z; zi++ {
			for ui := 0; ui < u; ui++ {
				dst := out.Data[(zi*u+ui)*tp.Out.Width+o3:]
				src := ob.Data[(zi*u+ui)*d3 : (zi*u+ui+1)*d3]
				for c, v := range src {
					dst[c] += v
				}
			}
		}
	}
	return out
}

func pathNormInto(tp *TensorProduct, i3 int) float64 {
	n := 0
	for _, p := range tp.Paths {
		if p.I3 == i3 {
			n++
		}
	}
	return math.Sqrt(float64(n))
}

// Backward accumulates input gradients for the fused contraction given the
// upstream gradient gOut, and returns the per-path weight gradients.
// Gradients are computed in full double precision (training-time backward
// passes in the paper run under the F32 weights / TF32 compute scheme, but
// gradient *correctness* tests require the exact adjoint, and the precision
// ablation quantizes activations rather than adjoints).
func (tp *TensorProduct) Backward(x, y, gOut *tensor.Tensor, weights []float64, gX, gY *tensor.Tensor) []float64 {
	gW := make([]float64, len(tp.Paths))
	tp.BackwardInto(x, y, gOut, weights, gX, gY, gW)
	return gW
}

// BackwardInto is Backward with a caller-provided per-path weight-gradient
// buffer gW (len NumPaths), performing no allocations. gX and gY must be
// zero-filled [Z,U,width] tensors; gW is overwritten.
func (tp *TensorProduct) BackwardInto(x, y, gOut *tensor.Tensor, weights []float64, gX, gY *tensor.Tensor, gW []float64) {
	z, u := tp.checkShapes(x, y)
	if len(gW) != len(tp.Paths) {
		panic(fmt.Sprintf("o3: BackwardInto got %d gradient slots for %d paths", len(gW), len(tp.Paths)))
	}
	w1, w2, w3 := tp.In1.Width, tp.In2.Width, tp.Out.Width
	for pi, path := range tp.Paths {
		w := 1.0
		if weights != nil {
			w = weights[pi]
		}
		var gwAcc float64
		for zi := 0; zi < z; zi++ {
			for ui := 0; ui < u; ui++ {
				base := zi*u + ui
				xb := x.Data[base*w1 : (base+1)*w1]
				yb := y.Data[base*w2 : (base+1)*w2]
				gob := gOut.Data[base*w3 : (base+1)*w3]
				gxb := gX.Data[base*w1 : (base+1)*w1]
				gyb := gY.Data[base*w2 : (base+1)*w2]
				for _, e := range path.Entries {
					g := gob[e.C]
					if g == 0 {
						continue
					}
					gxb[e.A] += w * e.W * yb[e.B] * g
					gyb[e.B] += w * e.W * xb[e.A] * g
					gwAcc += e.W * xb[e.A] * yb[e.B] * g
				}
			}
		}
		gW[pi] = gwAcc
	}
}

// BackwardFusedEntries accumulates input adjoints for the fused contraction
// from a weight-folded entry table over flat storage, skipping the per-path
// weight gradients entirely — the inference backward of the compiled plans,
// where weights are frozen and their adjoints are dead work (roughly a third
// of BackwardInto's inner loop). Accumulation visits entries in table order,
// which FlattenInto emits in path-major order, so every gX/gY slot receives
// exactly the addend sequence BackwardInto would produce: replay stays
// bit-identical to the tape backward. gX and gY accumulate in place (the
// caller zeroes them); adjoints run in full float64 like every backward pass.
func BackwardFusedEntries(gX, gY, x, y, gOut []float64, zu, w1, w2, w3 int, entries []TPEntry) {
	for bI := 0; bI < zu; bI++ {
		xb := x[bI*w1 : (bI+1)*w1]
		yb := y[bI*w2 : (bI+1)*w2]
		gob := gOut[bI*w3 : (bI+1)*w3]
		gxb := gX[bI*w1 : (bI+1)*w1]
		gyb := gY[bI*w2 : (bI+1)*w2]
		for _, e := range entries {
			g := gob[e.C]
			if g == 0 {
				continue
			}
			gxb[e.A] += e.W * yb[e.B] * g
			gyb[e.B] += e.W * xb[e.A] * g
		}
	}
}
