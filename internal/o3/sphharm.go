package o3

import (
	"fmt"
	"math"
)

// MaxL is the largest rotation order with hardcoded spherical harmonics.
// The production Allegro model of the paper uses lmax = 2; lmax = 3 is
// provided for ablations.
const MaxL = 3

// SphDim returns the number of spherical-harmonic components up to lmax,
// (lmax+1)^2, with component index c = l^2 + (m+l).
func SphDim(lmax int) int { return (lmax + 1) * (lmax + 1) }

// Component-normalized real spherical-harmonic prefactors
// (E[Y_lm^2] = 1 over the uniform sphere, i.e. sqrt(4*pi) times the
// orthonormal convention), matching e3nn's "component" normalization that
// keeps network activations O(1).
var (
	c00 = 1.0
	c1  = math.Sqrt(3)
	c2a = math.Sqrt(15)     // xy, yz, xz
	c2b = math.Sqrt(5) / 2  // 3z^2-1
	c2c = math.Sqrt(15) / 2 // x^2-y^2
	c3a = math.Sqrt(70) / 4 // y(3x^2-y^2), x(x^2-3y^2)
	c3b = math.Sqrt(105)    // xyz
	c3c = math.Sqrt(42) / 4 // y(5z^2-1), x(5z^2-1)
	c3d = math.Sqrt(7) / 2  // z(5z^2-3)
	c3e = math.Sqrt(105) / 2
)

// SphHarm evaluates the real spherical harmonics of the direction of r for
// l = 0..lmax into out (length SphDim(lmax)). r must be nonzero.
func SphHarm(lmax int, r [3]float64, out []float64) {
	if lmax > MaxL {
		panic(fmt.Sprintf("o3: SphHarm lmax %d exceeds MaxL %d", lmax, MaxL))
	}
	n := math.Sqrt(r[0]*r[0] + r[1]*r[1] + r[2]*r[2])
	if n == 0 {
		panic("o3: SphHarm of zero vector")
	}
	x, y, z := r[0]/n, r[1]/n, r[2]/n
	sphPoly(lmax, x, y, z, out)
}

// sphPoly evaluates the harmonics as polynomials of a unit vector.
func sphPoly(lmax int, x, y, z float64, out []float64) {
	out[0] = c00
	if lmax == 0 {
		return
	}
	out[1] = c1 * y
	out[2] = c1 * z
	out[3] = c1 * x
	if lmax == 1 {
		return
	}
	out[4] = c2a * x * y
	out[5] = c2a * y * z
	out[6] = c2b * (3*z*z - 1)
	out[7] = c2a * x * z
	out[8] = c2c * (x*x - y*y)
	if lmax == 2 {
		return
	}
	out[9] = c3a * y * (3*x*x - y*y)
	out[10] = c3b * x * y * z
	out[11] = c3c * y * (5*z*z - 1)
	out[12] = c3d * z * (5*z*z - 3)
	out[13] = c3c * x * (5*z*z - 1)
	out[14] = c3e * z * (x*x - y*y)
	out[15] = c3a * x * (x*x - 3*y*y)
}

// SphHarmGrad evaluates the harmonics and their gradients with respect to
// the (unnormalized) input vector r. out has length SphDim(lmax); grad has
// the same length with one 3-vector per component. The gradient chains the
// polynomial derivative on the unit sphere through the normalization map
// n = r/|r| via dn/dr = (I - n n^T)/|r|.
func SphHarmGrad(lmax int, r [3]float64, out []float64, grad [][3]float64) {
	if lmax > MaxL {
		panic(fmt.Sprintf("o3: SphHarmGrad lmax %d exceeds MaxL %d", lmax, MaxL))
	}
	nrm := math.Sqrt(r[0]*r[0] + r[1]*r[1] + r[2]*r[2])
	if nrm == 0 {
		panic("o3: SphHarmGrad of zero vector")
	}
	x, y, z := r[0]/nrm, r[1]/nrm, r[2]/nrm
	sphPoly(lmax, x, y, z, out)

	nc := SphDim(lmax)
	// Polynomial gradients with respect to the unit vector components.
	var gp [16][3]float64
	gp[0] = [3]float64{0, 0, 0}
	if lmax >= 1 {
		gp[1] = [3]float64{0, c1, 0}
		gp[2] = [3]float64{0, 0, c1}
		gp[3] = [3]float64{c1, 0, 0}
	}
	if lmax >= 2 {
		gp[4] = [3]float64{c2a * y, c2a * x, 0}
		gp[5] = [3]float64{0, c2a * z, c2a * y}
		gp[6] = [3]float64{0, 0, 6 * c2b * z}
		gp[7] = [3]float64{c2a * z, 0, c2a * x}
		gp[8] = [3]float64{2 * c2c * x, -2 * c2c * y, 0}
	}
	if lmax >= 3 {
		gp[9] = [3]float64{6 * c3a * x * y, c3a * (3*x*x - 3*y*y), 0}
		gp[10] = [3]float64{c3b * y * z, c3b * x * z, c3b * x * y}
		gp[11] = [3]float64{0, c3c * (5*z*z - 1), 10 * c3c * y * z}
		gp[12] = [3]float64{0, 0, c3d * (15*z*z - 3)}
		gp[13] = [3]float64{c3c * (5*z*z - 1), 0, 10 * c3c * x * z}
		gp[14] = [3]float64{2 * c3e * x * z, -2 * c3e * y * z, c3e * (x*x - y*y)}
		gp[15] = [3]float64{c3a * (3*x*x - 3*y*y), -6 * c3a * x * y, 0}
	}
	// Chain rule through normalization: dY/dr_j = sum_i gp_i (delta_ij - n_i n_j)/|r|.
	n := [3]float64{x, y, z}
	for c := 0; c < nc; c++ {
		dot := gp[c][0]*n[0] + gp[c][1]*n[1] + gp[c][2]*n[2]
		for j := 0; j < 3; j++ {
			grad[c][j] = (gp[c][j] - dot*n[j]) / nrm
		}
	}
}
