package o3

import (
	"math"
	"math/rand/v2"

	"repro/internal/tensor"
)

// RandomRotation returns a uniformly distributed proper rotation matrix
// (via a uniform unit quaternion).
func RandomRotation(rng *rand.Rand) [3][3]float64 {
	// Shoemake's method.
	u1, u2, u3 := rng.Float64(), rng.Float64(), rng.Float64()
	q0 := math.Sqrt(1-u1) * math.Sin(2*math.Pi*u2)
	q1 := math.Sqrt(1-u1) * math.Cos(2*math.Pi*u2)
	q2 := math.Sqrt(u1) * math.Sin(2*math.Pi*u3)
	q3 := math.Sqrt(u1) * math.Cos(2*math.Pi*u3)
	return quatToMatrix(q0, q1, q2, q3)
}

func quatToMatrix(w, x, y, z float64) [3][3]float64 {
	return [3][3]float64{
		{1 - 2*(y*y+z*z), 2 * (x*y - z*w), 2 * (x*z + y*w)},
		{2 * (x*y + z*w), 1 - 2*(x*x+z*z), 2 * (y*z - x*w)},
		{2 * (x*z - y*w), 2 * (y*z + x*w), 1 - 2*(x*x+y*y)},
	}
}

// ApplyRotation returns R*v.
func ApplyRotation(r [3][3]float64, v [3]float64) [3]float64 {
	return [3]float64{
		r[0][0]*v[0] + r[0][1]*v[1] + r[0][2]*v[2],
		r[1][0]*v[0] + r[1][1]*v[1] + r[1][2]*v[2],
		r[2][0]*v[0] + r[2][1]*v[1] + r[2][2]*v[2],
	}
}

// WignerD constructs the real Wigner-D matrix D^l(R) satisfying
// Y_l(R x) = D^l(R) Y_l(x) numerically, by least-squares projection over a
// set of sample directions. This is used by the equivariance test suite; the
// network itself never needs explicit D matrices.
func WignerD(l int, r [3][3]float64, rng *rand.Rand) *tensor.Tensor {
	dim := 2*l + 1
	nSamples := 8 * dim
	a := tensor.New(nSamples, dim)
	b := tensor.New(nSamples, dim)
	buf := make([]float64, SphDim(l))
	for s := 0; s < nSamples; s++ {
		v := randomUnit(rng)
		SphHarm(l, v, buf)
		copy(a.Row(s), buf[l*l:(l+1)*(l+1)])
		SphHarm(l, ApplyRotation(r, v), buf)
		copy(b.Row(s), buf[l*l:(l+1)*(l+1)])
	}
	// Solve A D^T = B for D.
	dt, err := tensor.LeastSquares(a, b, 0)
	if err != nil {
		panic("o3: WignerD least squares failed: " + err.Error())
	}
	return tensor.Transpose(dt)
}

func randomUnit(rng *rand.Rand) [3]float64 {
	for {
		v := [3]float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		n := math.Sqrt(v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
		if n > 1e-6 {
			return [3]float64{v[0] / n, v[1] / n, v[2] / n}
		}
	}
}
