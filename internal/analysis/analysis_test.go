package analysis

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/atoms"
	"repro/internal/data"
	"repro/internal/o3"
	"repro/internal/units"
)

func TestRMSDIdentical(t *testing.T) {
	a := [][3]float64{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	if r := RMSD(a, a); r > 1e-10 {
		t.Fatalf("RMSD of identical coords = %g", r)
	}
}

func TestRMSDTranslationInvariant(t *testing.T) {
	a := [][3]float64{{0, 0, 0}, {1.3, 0, 0}, {0, 2.1, 0}, {0.5, 0.5, 1}}
	b := make([][3]float64, len(a))
	for i := range a {
		for k := 0; k < 3; k++ {
			b[i][k] = a[i][k] + 5.5
		}
	}
	if r := RMSD(a, b); r > 1e-10 {
		t.Fatalf("RMSD after translation = %g", r)
	}
}

func TestRMSDRotationInvariant(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	a := make([][3]float64, 12)
	for i := range a {
		a[i] = [3]float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3, rng.NormFloat64() * 3}
	}
	r := o3.RandomRotation(rng)
	b := make([][3]float64, len(a))
	for i := range a {
		b[i] = o3.ApplyRotation(r, a[i])
	}
	if v := RMSD(a, b); v > 1e-5 {
		t.Fatalf("Kabsch RMSD after rotation = %g, want ~0", v)
	}
}

func TestRMSDDetectsRealDeviation(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	a := make([][3]float64, 20)
	for i := range a {
		a[i] = [3]float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3, rng.NormFloat64() * 3}
	}
	b := make([][3]float64, len(a))
	const sigma = 0.5
	for i := range a {
		for k := 0; k < 3; k++ {
			b[i][k] = a[i][k] + rng.NormFloat64()*sigma
		}
	}
	v := RMSD(a, b)
	// Expect on the order of sigma*sqrt(3) with some alignment reduction.
	if v < 0.3 || v > 2.0 {
		t.Fatalf("RMSD of sigma=0.5 perturbation = %g, expected O(0.9)", v)
	}
}

func TestRMSDMirrorNotAbsorbed(t *testing.T) {
	// Kabsch restricts to proper rotations: a mirrored chiral structure must
	// have nonzero RMSD.
	a := [][3]float64{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0.3, 0.3, 1.2}}
	b := make([][3]float64, len(a))
	for i := range a {
		b[i] = [3]float64{a[i][0], a[i][1], -a[i][2]}
	}
	if v := RMSD(a, b); v < 0.1 {
		t.Fatalf("mirror image RMSD = %g, should be substantial", v)
	}
}

func TestJacobiEigenvalues(t *testing.T) {
	// Symmetric matrix with known eigenvalues {1, 2, 4}:
	// diag(1,2,4) rotated by a known orthogonal matrix.
	rng := rand.New(rand.NewPCG(5, 6))
	r := o3.RandomRotation(rng)
	var m [3][3]float64
	d := [3]float64{1, 2, 4}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 3; k++ {
				m[i][j] += r[i][k] * d[k] * r[j][k]
			}
		}
	}
	ev := jacobiEigen3(m)
	got := []float64{ev[0], ev[1], ev[2]}
	for _, want := range d {
		found := false
		for _, g := range got {
			if math.Abs(g-want) < 1e-9 {
				found = true
			}
		}
		if !found {
			t.Fatalf("eigenvalue %g not found in %v", want, got)
		}
	}
}

func TestSeriesStats(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.Append(float64(i), float64(i))
	}
	if s.Mean() != 4.5 {
		t.Fatalf("Mean = %g", s.Mean())
	}
	if s.TailMean(0.2) != 8.5 {
		t.Fatalf("TailMean = %g", s.TailMean(0.2))
	}
	if s.MaxAbsDrift() != 9 {
		t.Fatalf("MaxAbsDrift = %g", s.MaxAbsDrift())
	}
	if s.Std() < 2.9 || s.Std() > 3.2 {
		t.Fatalf("Std = %g", s.Std())
	}
}

func TestRDFWaterOHPeak(t *testing.T) {
	// The O-H RDF of built water must peak at the construction bond length
	// (~0.98 A) — the measurement the paper used to pick per-species cutoffs.
	rng := rand.New(rand.NewPCG(7, 8))
	sys := data.WaterBox(rng, 4, 4, 4)
	g := NewRDF(units.O, units.H, 4.0, 80)
	if err := g.Accumulate(sys); err != nil {
		t.Fatal(err)
	}
	pos, height := g.FirstPeak(0.5)
	if pos < 0.85 || pos > 1.15 {
		t.Fatalf("O-H first peak at %g A, want ~0.98", pos)
	}
	if height < 1 {
		t.Fatalf("O-H peak height %g too small", height)
	}
	// The first minimum (the natural cutoff boundary) must fall between the
	// covalent peak and the H-bond shell.
	min := g.FirstMinimumAfter(pos)
	if min <= pos || min > 2.5 {
		t.Fatalf("first minimum at %g implausible", min)
	}
}

func TestRDFRequiresPeriodicity(t *testing.T) {
	g := NewRDF(units.O, units.H, 4.0, 40)
	sys := atoms.NewSystem(2)
	if err := g.Accumulate(sys); err == nil {
		t.Fatal("non-periodic RDF must error")
	}
}
