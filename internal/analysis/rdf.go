package analysis

import (
	"fmt"
	"math"

	"repro/internal/atoms"
	"repro/internal/units"
)

// RDF is a radial distribution function g(r) between two species, the
// diagnostic the paper used to choose its per-ordered-species-pair cutoffs
// ("chosen based on radial distribution functions of the HIV capsid
// starting structure", Sec. VI-D).
type RDF struct {
	SpeciesA, SpeciesB units.Species
	RMax               float64
	Bins               []float64 // g(r) per bin
	BinWidth           float64
	frames             int
}

// NewRDF prepares an accumulator with the given range and bin count.
func NewRDF(a, b units.Species, rmax float64, nbins int) *RDF {
	return &RDF{
		SpeciesA: a, SpeciesB: b, RMax: rmax,
		Bins: make([]float64, nbins), BinWidth: rmax / float64(nbins),
	}
}

// Accumulate adds one periodic frame to the histogram.
func (g *RDF) Accumulate(sys *atoms.System) error {
	if !sys.PBC {
		return fmt.Errorf("analysis: RDF requires a periodic system")
	}
	var aIdx, bIdx []int
	for i, sp := range sys.Species {
		if sp == g.SpeciesA {
			aIdx = append(aIdx, i)
		}
		if sp == g.SpeciesB {
			bIdx = append(bIdx, i)
		}
	}
	if len(aIdx) == 0 || len(bIdx) == 0 {
		return fmt.Errorf("analysis: RDF species not present")
	}
	rhoB := float64(len(bIdx)) / sys.Volume()
	for _, i := range aIdx {
		for _, j := range bIdx {
			if i == j {
				continue
			}
			r := sys.Distance(i, j)
			if r >= g.RMax {
				continue
			}
			bin := int(r / g.BinWidth)
			// Normalize by ideal-gas shell population for this center.
			rLo := float64(bin) * g.BinWidth
			rHi := rLo + g.BinWidth
			shell := 4.0 / 3.0 * math.Pi * (rHi*rHi*rHi - rLo*rLo*rLo) * rhoB
			g.Bins[bin] += 1 / shell / float64(len(aIdx))
		}
	}
	g.frames++
	return nil
}

// Values returns bin centers and the averaged g(r).
func (g *RDF) Values() (r []float64, gr []float64) {
	r = make([]float64, len(g.Bins))
	gr = make([]float64, len(g.Bins))
	for i := range g.Bins {
		r[i] = (float64(i) + 0.5) * g.BinWidth
		if g.frames > 0 {
			gr[i] = g.Bins[i] / float64(g.frames)
		}
	}
	return r, gr
}

// FirstPeak returns the position and height of the first maximum of g(r)
// beyond rmin (used to read off bond/coordination distances).
func (g *RDF) FirstPeak(rmin float64) (pos, height float64) {
	r, gr := g.Values()
	for i := 1; i < len(gr)-1; i++ {
		if r[i] < rmin {
			continue
		}
		if gr[i] > gr[i-1] && gr[i] >= gr[i+1] && gr[i] > height {
			return r[i], gr[i]
		}
	}
	return 0, 0
}

// FirstMinimumAfter returns the position of the first local minimum beyond
// rstart — the natural per-species cutoff choice (the shell boundary).
func (g *RDF) FirstMinimumAfter(rstart float64) float64 {
	r, gr := g.Values()
	for i := 1; i < len(gr)-1; i++ {
		if r[i] < rstart {
			continue
		}
		if gr[i] < gr[i-1] && gr[i] <= gr[i+1] {
			return r[i]
		}
	}
	return g.RMax
}
