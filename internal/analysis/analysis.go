// Package analysis provides trajectory observables: RMSD with optimal
// (Kabsch) alignment, running statistics, and simple series summaries used
// by the stability experiments (Fig. 4).
package analysis

import (
	"math"
)

// RMSD returns the root-mean-square deviation between two conformations
// after removing the centroid and optimally rotating b onto a (Kabsch
// algorithm). Both slices must have equal length >= 3.
func RMSD(a, b [][3]float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		panic("analysis: RMSD needs equal nonzero lengths")
	}
	ca := centroid(a)
	cb := centroid(b)
	n := len(a)
	// Covariance H = sum (b-cb)(a-ca)^T.
	var h [3][3]float64
	for i := 0; i < n; i++ {
		var pa, pb [3]float64
		for k := 0; k < 3; k++ {
			pa[k] = a[i][k] - ca[k]
			pb[k] = b[i][k] - cb[k]
		}
		for r := 0; r < 3; r++ {
			for c := 0; c < 3; c++ {
				h[r][c] += pb[r] * pa[c]
			}
		}
	}
	// E0 = sum |pa|^2 + |pb|^2.
	e0 := 0.0
	for i := 0; i < n; i++ {
		for k := 0; k < 3; k++ {
			da := a[i][k] - ca[k]
			db := b[i][k] - cb[k]
			e0 += da*da + db*db
		}
	}
	// Kabsch via eigen-decomposition of H^T H: singular values of H.
	var hth [3][3]float64
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			for k := 0; k < 3; k++ {
				hth[r][c] += h[k][r] * h[k][c]
			}
		}
	}
	ev := jacobiEigen3(hth)
	// Singular values.
	var sv [3]float64
	for i := 0; i < 3; i++ {
		if ev[i] > 0 {
			sv[i] = math.Sqrt(ev[i])
		}
	}
	// Sign of det(H) decides whether the smallest singular value flips.
	d := det3(h)
	sum := sv[0] + sv[1] + sv[2]
	if d < 0 {
		// smallest singular value contributes negatively
		minI := 0
		for i := 1; i < 3; i++ {
			if sv[i] < sv[minI] {
				minI = i
			}
		}
		sum -= 2 * sv[minI]
	}
	msd := (e0 - 2*sum) / float64(n)
	if msd < 0 {
		msd = 0
	}
	return math.Sqrt(msd)
}

func centroid(x [][3]float64) [3]float64 {
	var c [3]float64
	for i := range x {
		for k := 0; k < 3; k++ {
			c[k] += x[i][k]
		}
	}
	for k := 0; k < 3; k++ {
		c[k] /= float64(len(x))
	}
	return c
}

func det3(m [3][3]float64) float64 {
	return m[0][0]*(m[1][1]*m[2][2]-m[1][2]*m[2][1]) -
		m[0][1]*(m[1][0]*m[2][2]-m[1][2]*m[2][0]) +
		m[0][2]*(m[1][0]*m[2][1]-m[1][1]*m[2][0])
}

// jacobiEigen3 returns the eigenvalues of a symmetric 3x3 matrix via cyclic
// Jacobi rotations (textbook a' = J^T a J update exploiting symmetry).
func jacobiEigen3(m [3][3]float64) [3]float64 {
	a := m
	for sweep := 0; sweep < 50; sweep++ {
		off := math.Abs(a[0][1]) + math.Abs(a[0][2]) + math.Abs(a[1][2])
		if off < 1e-14 {
			break
		}
		for p := 0; p < 2; p++ {
			for q := p + 1; q < 3; q++ {
				apq := a[p][q]
				if math.Abs(apq) < 1e-18 {
					continue
				}
				theta := (a[q][q] - a[p][p]) / (2 * apq)
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				a[p][p] -= t * apq
				a[q][q] += t * apq
				a[p][q] = 0
				a[q][p] = 0
				for i := 0; i < 3; i++ {
					if i == p || i == q {
						continue
					}
					aip, aiq := a[i][p], a[i][q]
					a[i][p] = c*aip - s*aiq
					a[p][i] = a[i][p]
					a[i][q] = s*aip + c*aiq
					a[q][i] = a[i][q]
				}
			}
		}
	}
	return [3]float64{a[0][0], a[1][1], a[2][2]}
}

// Series is a labeled time series (e.g. RMSD or temperature vs time).
type Series struct {
	Label string
	X, Y  []float64
}

// Append adds a point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Mean returns the mean of Y.
func (s *Series) Mean() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Y {
		sum += v
	}
	return sum / float64(len(s.Y))
}

// Std returns the standard deviation of Y.
func (s *Series) Std() float64 {
	if len(s.Y) < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, v := range s.Y {
		sum += (v - m) * (v - m)
	}
	return math.Sqrt(sum / float64(len(s.Y)-1))
}

// TailMean returns the mean of the last fraction frac of Y (plateau value).
func (s *Series) TailMean(frac float64) float64 {
	n := len(s.Y)
	if n == 0 {
		return 0
	}
	start := int(float64(n) * (1 - frac))
	if start >= n {
		start = n - 1
	}
	sum := 0.0
	for _, v := range s.Y[start:] {
		sum += v
	}
	return sum / float64(n-start)
}

// MaxAbsDrift returns max |y - y0| over the series (energy drift checks).
func (s *Series) MaxAbsDrift() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	y0 := s.Y[0]
	m := 0.0
	for _, v := range s.Y {
		if d := math.Abs(v - y0); d > m {
			m = d
		}
	}
	return m
}
