package nn

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/ad"
	"repro/internal/tensor"
)

func TestParamSet(t *testing.T) {
	ps := NewParamSet()
	a := ps.Add("a", tensor.New(2, 3))
	ps.Add("b", tensor.New(4))
	if ps.NumParams() != 10 {
		t.Fatalf("NumParams = %d, want 10", ps.NumParams())
	}
	if ps.Get("a") != a {
		t.Fatal("Get should return the registered tensor")
	}
	if ps.Get("missing") != nil {
		t.Fatal("Get of missing name should be nil")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Add should panic")
		}
	}()
	ps.Add("a", tensor.New(1))
}

func TestMLPShapesAndInitScale(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	ps := NewParamSet()
	m := NewMLP(ps, rng, "mlp", []int{8, 16, 4}, true)
	if m.OutDim() != 4 {
		t.Fatalf("OutDim = %d", m.OutDim())
	}
	// Init variance should be ~1/fan_in.
	w := m.Ws[0]
	varSum := 0.0
	for _, v := range w.Data {
		varSum += v * v
	}
	varEst := varSum / float64(w.Len())
	if varEst < 0.05 || varEst > 0.25 { // 1/8 = 0.125 expected
		t.Fatalf("weight variance %g far from 1/fan_in=0.125", varEst)
	}
	tape := ad.NewTape(tensor.F64, tensor.F64)
	b := NewBinder(tape, false)
	x := tape.Const(tensor.New(5, 8))
	y := m.Apply(b, x)
	if y.T.Shape[0] != 5 || y.T.Shape[1] != 4 {
		t.Fatalf("MLP output shape %v", y.T.Shape)
	}
}

func TestMLPActivationVariancePreserved(t *testing.T) {
	// Unit-variance inputs through a wide MLP should stay O(1): the
	// normalization property the mixed-precision design depends on.
	rng := rand.New(rand.NewPCG(3, 4))
	ps := NewParamSet()
	m := NewMLP(ps, rng, "mlp", []int{64, 128, 128, 64}, false)
	x := tensor.New(32, 64)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	tape := ad.NewTape(tensor.F64, tensor.F64)
	b := NewBinder(tape, false)
	y := m.Apply(b, tape.Const(x))
	varSum := 0.0
	for _, v := range y.T.Data {
		varSum += v * v
	}
	rms := math.Sqrt(varSum / float64(y.T.Len()))
	if rms < 0.05 || rms > 5 {
		t.Fatalf("output RMS %g not O(1)", rms)
	}
}

func TestBinderSharesLeaves(t *testing.T) {
	tape := ad.NewTape(tensor.F64, tensor.F64)
	b := NewBinder(tape, true)
	w := tensor.New(2, 2)
	v1 := b.Bind(w)
	v2 := b.Bind(w)
	if v1 != v2 {
		t.Fatal("Binder must cache leaves per tensor")
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize ||x - target||^2 with Adam; must converge.
	ps := NewParamSet()
	x := ps.Add("x", tensor.FromSlice([]float64{5, -3, 2}, 3))
	target := []float64{1, 2, 3}
	opt := NewAdam(0.1)
	for it := 0; it < 500; it++ {
		g := tensor.New(3)
		for i := range g.Data {
			g.Data[i] = 2 * (x.Data[i] - target[i])
		}
		opt.Step(ps, func(t *tensor.Tensor) *tensor.Tensor { return g })
	}
	for i := range target {
		if math.Abs(x.Data[i]-target[i]) > 1e-2 {
			t.Fatalf("Adam did not converge: x=%v", x.Data)
		}
	}
}

func TestAdamSkipsNilGrads(t *testing.T) {
	ps := NewParamSet()
	x := ps.Add("x", tensor.FromSlice([]float64{1}, 1))
	opt := NewAdam(0.1)
	opt.Step(ps, func(t *tensor.Tensor) *tensor.Tensor { return nil })
	if x.Data[0] != 1 {
		t.Fatal("parameter without gradient must not move")
	}
}

func TestMLPTrainingEndToEnd(t *testing.T) {
	// Fit y = sin(2x) on [-1,1] with a small MLP trained through the tape.
	rng := rand.New(rand.NewPCG(5, 6))
	ps := NewParamSet()
	m := NewMLP(ps, rng, "f", []int{1, 32, 32, 1}, true)
	opt := NewAdam(0.01)
	n := 64
	xs := tensor.New(n, 1)
	ys := tensor.New(n, 1)
	for i := 0; i < n; i++ {
		x := rng.Float64()*2 - 1
		xs.Data[i] = x
		ys.Data[i] = math.Sin(2 * x)
	}
	var last float64
	for epoch := 0; epoch < 400; epoch++ {
		tape := ad.NewTape(tensor.F64, tensor.F64)
		b := NewBinder(tape, true)
		pred := m.Apply(b, tape.Const(xs))
		diff := tape.Sub(pred, tape.Const(ys))
		loss := tape.Scale(tape.SumAll(tape.Square(diff)), 1/float64(n))
		tape.Backward(loss)
		opt.Step(ps, b.Grad)
		last = loss.T.Data[0]
	}
	if last > 0.01 {
		t.Fatalf("MLP failed to fit sin(2x): loss %g", last)
	}
}

func TestEMATracksAndCopies(t *testing.T) {
	ps := NewParamSet()
	x := ps.Add("x", tensor.FromSlice([]float64{0}, 1))
	ema := NewEMA(ps, 0.5)
	x.Data[0] = 10
	ema.Update(ps) // shadow = 0.5*0 + 0.5*10 = 5
	ema.Update(ps) // shadow = 0.5*5 + 0.5*10 = 7.5
	ema.CopyTo(ps)
	if x.Data[0] != 7.5 {
		t.Fatalf("EMA = %v, want 7.5", x.Data[0])
	}
}

func TestGradAccumulator(t *testing.T) {
	ps := NewParamSet()
	w := ps.Add("w", tensor.FromSlice([]float64{1, 1}, 2))
	ga := NewGradAccumulator()
	g := tensor.FromSlice([]float64{3, 4}, 2)
	ga.AddScaled(w, g, 2)
	if ga.Grad(w).Data[0] != 6 || ga.Grad(w).Data[1] != 8 {
		t.Fatalf("AddScaled wrong: %v", ga.Grad(w).Data)
	}
	norm := ga.ClipNorm(5)
	if math.Abs(norm-10) > 1e-12 {
		t.Fatalf("pre-clip norm %g, want 10", norm)
	}
	if n := math.Hypot(ga.Grad(w).Data[0], ga.Grad(w).Data[1]); math.Abs(n-5) > 1e-9 {
		t.Fatalf("post-clip norm %g, want 5", n)
	}
	ga.Reset()
	if ga.Grad(w) != nil {
		t.Fatal("Reset must clear gradients")
	}
}

func TestParamQuantize(t *testing.T) {
	ps := NewParamSet()
	w := ps.Add("w", tensor.FromSlice([]float64{1.00000000001}, 1))
	ps.Quantize(tensor.F32)
	if float64(float32(w.Data[0])) != w.Data[0] {
		t.Fatal("Quantize(F32) must store f32-representable weights")
	}
}
