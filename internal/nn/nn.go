// Package nn provides the neural-network building blocks shared by the
// Allegro model and the learned baselines: parameter registries, multi-layer
// perceptrons with SiLU nonlinearities, the Adam optimizer, and exponential
// moving averages of weights — mirroring the training setup of Sec. VI-D.
package nn

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync/atomic"

	"repro/internal/ad"
	"repro/internal/tensor"
)

// Param is a named trainable tensor.
type Param struct {
	Name string
	T    *tensor.Tensor
}

// ParamSet is an ordered collection of named parameters.
//
// The set carries a mutation version: caches derived from frozen weights
// (the fused tensor-product entry tables and the compiled inference plans)
// key on Version and rebuild when it changes. Every in-package mutator
// (Adam.Step, EMA.CopyTo, Quantize) bumps it; code that writes parameter
// Data directly must call Bump afterwards or downstream weight caches go
// stale.
//
// The counter is atomic so that cross-goroutine weight caches (the
// model-level fused tables, core's shared PlanRegistry) can validate their
// entries from any goroutine without a data race. Atomicity covers the
// version only — mutating parameter Data while evaluations are in flight is
// racy exactly as before; a serving tier must gate weight swaps against
// in-flight requests (see internal/serve).
type ParamSet struct {
	params  []*Param
	byName  map[string]*Param
	version atomic.Uint64
}

// NewParamSet returns an empty parameter set.
func NewParamSet() *ParamSet {
	return &ParamSet{byName: map[string]*Param{}}
}

// Add registers a tensor under a unique name and returns it.
func (ps *ParamSet) Add(name string, t *tensor.Tensor) *tensor.Tensor {
	if _, dup := ps.byName[name]; dup {
		panic(fmt.Sprintf("nn: duplicate parameter %q", name))
	}
	p := &Param{Name: name, T: t}
	ps.params = append(ps.params, p)
	ps.byName[name] = p
	return t
}

// List returns the parameters in registration order.
func (ps *ParamSet) List() []*Param { return ps.params }

// Get returns the parameter tensor registered under name, or nil.
func (ps *ParamSet) Get(name string) *tensor.Tensor {
	if p, ok := ps.byName[name]; ok {
		return p.T
	}
	return nil
}

// Version returns the mutation counter of the set. It increments on every
// Bump; equal versions guarantee the parameter values are unchanged (as long
// as all mutators honour the Bump contract above). Safe to call from any
// goroutine.
func (ps *ParamSet) Version() uint64 { return ps.version.Load() }

// Bump records a parameter mutation, invalidating weight-derived caches.
// Safe to call from any goroutine, but see the ParamSet contract: the bump
// publishes only the version, not the parameter values themselves.
func (ps *ParamSet) Bump() { ps.version.Add(1) }

// NumParams returns the total number of scalar weights.
func (ps *ParamSet) NumParams() int {
	n := 0
	for _, p := range ps.params {
		n += p.T.Len()
	}
	return n
}

// Quantize rounds every parameter to precision p in place (the "weights"
// component of the paper's mixed-precision triple).
func (ps *ParamSet) Quantize(p tensor.Precision) {
	for _, pr := range ps.params {
		pr.T.Quantize(p)
	}
	ps.Bump()
}

// Binder caches one tape leaf per parameter tensor so that a module applied
// several times within a forward pass shares weights (and accumulates
// gradients) correctly.
type Binder struct {
	Tape   *ad.Tape
	Train  bool
	leaves map[*tensor.Tensor]*ad.Value
}

// NewBinder wraps a tape. If train is true, bound parameters require grads.
func NewBinder(tape *ad.Tape, train bool) *Binder {
	return &Binder{Tape: tape, Train: train, leaves: map[*tensor.Tensor]*ad.Value{}}
}

// Reset re-targets the binder at a (possibly recycled) tape and clears the
// leaf cache. The map's storage is kept, so rebinding the same parameters
// in a steady-state loop does not allocate.
func (b *Binder) Reset(tape *ad.Tape, train bool) {
	b.Tape = tape
	b.Train = train
	clear(b.leaves)
}

// Bind returns the (cached) leaf for parameter tensor t.
func (b *Binder) Bind(t *tensor.Tensor) *ad.Value {
	if v, ok := b.leaves[t]; ok {
		return v
	}
	v := b.Tape.Leaf(t, b.Train)
	b.leaves[t] = v
	return v
}

// Grad returns the accumulated gradient for parameter t (nil if none).
func (b *Binder) Grad(t *tensor.Tensor) *tensor.Tensor {
	if v, ok := b.leaves[t]; ok {
		return v.Grad()
	}
	return nil
}

// MLP is a dense multi-layer perceptron with SiLU hidden nonlinearities and
// a linear output layer, the workhorse of Allegro's scalar track.
type MLP struct {
	Name  string
	Sizes []int // [in, hidden..., out]
	Ws    []*tensor.Tensor
	Bs    []*tensor.Tensor // nil entries mean no bias
	Bias  bool
}

// NewMLP constructs an MLP with the given layer sizes, registering weights
// in ps under prefixed names. Weights are drawn from a uniform distribution
// with variance 1/fan_in so that unit-variance inputs stay unit variance
// (the paper initializes "according to a uniform distribution of unit
// variance" and normalizes activations to O(1)).
func NewMLP(ps *ParamSet, rng *rand.Rand, name string, sizes []int, bias bool) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	m := &MLP{Name: name, Sizes: append([]int(nil), sizes...), Bias: bias}
	for l := 0; l+1 < len(sizes); l++ {
		in, out := sizes[l], sizes[l+1]
		w := tensor.New(out, in)
		bound := math.Sqrt(3.0 / float64(in))
		for i := range w.Data {
			w.Data[i] = (rng.Float64()*2 - 1) * bound
		}
		ps.Add(fmt.Sprintf("%s.w%d", name, l), w)
		m.Ws = append(m.Ws, w)
		if bias {
			bt := tensor.New(out)
			ps.Add(fmt.Sprintf("%s.b%d", name, l), bt)
			m.Bs = append(m.Bs, bt)
		} else {
			m.Bs = append(m.Bs, nil)
		}
	}
	return m
}

// Apply runs the MLP on x [N,in] producing [N,out]. SiLU is applied after
// every layer except the last.
func (m *MLP) Apply(b *Binder, x *ad.Value) *ad.Value {
	h := x
	for l, w := range m.Ws {
		var bias *ad.Value
		if m.Bs[l] != nil {
			bias = b.Bind(m.Bs[l])
		}
		h = b.Tape.Linear(h, b.Bind(w), bias)
		if l+1 < len(m.Ws) {
			h = b.Tape.SiLU(h)
		}
	}
	return h
}

// OutDim returns the output width.
func (m *MLP) OutDim() int { return m.Sizes[len(m.Sizes)-1] }

// Adam implements the Adam optimizer with the PyTorch default
// hyperparameters used in the paper (lr given, beta1=0.9, beta2=0.999,
// eps=1e-8).
type Adam struct {
	LR     float64
	Beta1  float64
	Beta2  float64
	Eps    float64
	step   int
	moment map[*tensor.Tensor][2][]float64
}

// NewAdam returns an Adam optimizer with the given learning rate.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, moment: map[*tensor.Tensor][2][]float64{}}
}

// Step applies one update given gradients looked up through grad (a function
// so callers can source gradients from a Binder or an accumulation buffer).
// Parameters without gradients are skipped.
func (a *Adam) Step(ps *ParamSet, grad func(t *tensor.Tensor) *tensor.Tensor) {
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, p := range ps.List() {
		g := grad(p.T)
		if g == nil {
			continue
		}
		mv, ok := a.moment[p.T]
		if !ok {
			mv = [2][]float64{make([]float64, p.T.Len()), make([]float64, p.T.Len())}
		}
		m, v := mv[0], mv[1]
		for i, gi := range g.Data {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*gi
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*gi*gi
			mh := m[i] / bc1
			vh := v[i] / bc2
			p.T.Data[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
		a.moment[p.T] = [2][]float64{m, v}
	}
	ps.Bump()
}

// EMA maintains an exponential moving average of a parameter set (decay
// 0.99 in the paper), used for validation and the final model.
type EMA struct {
	Decay  float64
	shadow map[*tensor.Tensor][]float64
}

// NewEMA initializes the shadow weights from the current parameters.
func NewEMA(ps *ParamSet, decay float64) *EMA {
	e := &EMA{Decay: decay, shadow: map[*tensor.Tensor][]float64{}}
	for _, p := range ps.List() {
		e.shadow[p.T] = append([]float64(nil), p.T.Data...)
	}
	return e
}

// Update folds the current weights into the average.
func (e *EMA) Update(ps *ParamSet) {
	for _, p := range ps.List() {
		s := e.shadow[p.T]
		for i, v := range p.T.Data {
			s[i] = e.Decay*s[i] + (1-e.Decay)*v
		}
	}
}

// CopyTo overwrites the parameters with the averaged weights.
func (e *EMA) CopyTo(ps *ParamSet) {
	for _, p := range ps.List() {
		copy(p.T.Data, e.shadow[p.T])
	}
	ps.Bump()
}

// GradAccumulator sums gradients across structures in a batch.
type GradAccumulator struct {
	grads map[*tensor.Tensor]*tensor.Tensor
}

// NewGradAccumulator returns an empty accumulator.
func NewGradAccumulator() *GradAccumulator {
	return &GradAccumulator{grads: map[*tensor.Tensor]*tensor.Tensor{}}
}

// AddFrom accumulates every bound gradient of b.
func (ga *GradAccumulator) AddFrom(b *Binder, ps *ParamSet) {
	for _, p := range ps.List() {
		g := b.Grad(p.T)
		if g == nil {
			continue
		}
		acc, ok := ga.grads[p.T]
		if !ok {
			acc = tensor.New(p.T.Shape...)
			ga.grads[p.T] = acc
		}
		acc.AddInPlace(g, tensor.F64)
	}
}

// AddScaled accumulates scale*g into the buffer for parameter t.
func (ga *GradAccumulator) AddScaled(t *tensor.Tensor, g *tensor.Tensor, scale float64) {
	acc, ok := ga.grads[t]
	if !ok {
		acc = tensor.New(t.Shape...)
		ga.grads[t] = acc
	}
	for i, v := range g.Data {
		acc.Data[i] += scale * v
	}
}

// Grad returns the accumulated gradient for t, or nil.
func (ga *GradAccumulator) Grad(t *tensor.Tensor) *tensor.Tensor { return ga.grads[t] }

// Scale multiplies all accumulated gradients by s (e.g. 1/batchSize).
func (ga *GradAccumulator) Scale(s float64) {
	for _, g := range ga.grads {
		g.Scale(s, tensor.F64)
	}
}

// Reset clears the accumulator for the next batch.
func (ga *GradAccumulator) Reset() { ga.grads = map[*tensor.Tensor]*tensor.Tensor{} }

// ClipNorm rescales accumulated gradients so their global L2 norm is at most
// maxNorm, returning the pre-clip norm.
func (ga *GradAccumulator) ClipNorm(maxNorm float64) float64 {
	total := 0.0
	for _, g := range ga.grads {
		total += g.Dot(g)
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		f := maxNorm / norm
		for _, g := range ga.grads {
			g.Scale(f, tensor.F64)
		}
	}
	return norm
}
