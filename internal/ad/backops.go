package ad

import (
	"math"

	"repro/internal/o3"
	"repro/internal/tensor"
)

// backOp is the backward pass of one recorded operation. Ops are plain
// structs drawn from per-kind pools on the tape instead of heap-allocated
// closures: replaying the same graph shapes step after step reuses the same
// pooled nodes, which is what makes a warm evaluation pipeline allocate
// nothing at all — the property the persistent rank runtime's 0 allocs/op
// steady-state contract rests on.
type backOp interface{ run() }

// opBlock is the pool growth granularity.
const opBlock = 64

// opPool hands out pointer-stable pooled op structs; reset recycles them.
// Recycled structs keep their previous field values, so every op site must
// assign all fields it reads back.
type opPool[T any] struct {
	blocks [][]T
	used   int
}

func (p *opPool[T]) reset() { p.used = 0 }

func (p *opPool[T]) get() *T {
	blk, off := p.used/opBlock, p.used%opBlock
	if blk == len(p.blocks) {
		p.blocks = append(p.blocks, make([]T, opBlock))
	}
	p.used++
	return &p.blocks[blk][off]
}

// opPools groups one pool per op kind (a field of Tape).
type opPools struct {
	linear  opPool[linearOp]
	silu    opPool[siluOp]
	tanh    opPool[tanhOp]
	add     opPool[addOp]
	sub     opPool[subOp]
	mul     opPool[mulOp]
	scale   opPool[scaleOp]
	concat  opPool[concatOp]
	slice   opPool[sliceLastOp]
	reshape opPool[reshapeOp]
	sum     opPool[sumAllOp]
	wsum    opPool[weightedSumOp]
	gather  opPool[gatherOp]
	scatter opPool[scatterOp]
	mulb    opPool[mulBroadcastOp]
	outer   opPool[outerMulOp]
	norm    opPool[normOp]
	sph     opPool[sphHarmOp]
	bessel  opPool[besselOp]
	polycut opPool[polyCutoffOp]
	envsum  opPool[envSumOp]
	tprod   opPool[tensorProdOp]
}

func (p *opPools) reset() {
	p.linear.reset()
	p.silu.reset()
	p.tanh.reset()
	p.add.reset()
	p.sub.reset()
	p.mul.reset()
	p.scale.reset()
	p.concat.reset()
	p.slice.reset()
	p.reshape.reset()
	p.sum.reset()
	p.wsum.reset()
	p.gather.reset()
	p.scatter.reset()
	p.mulb.reset()
	p.outer.reset()
	p.norm.reset()
	p.sph.reset()
	p.bessel.reset()
	p.polycut.reset()
	p.envsum.reset()
	p.tprod.reset()
}

// --- dense ops (ops.go) ---

type linearOp struct {
	v, x, w, b  *Value
	n, in, out_ int
}

func (op *linearOp) run() {
	g := op.v.grad
	if op.x.req {
		// gX += g W
		gx := op.v.tp.Alloc(op.n, op.in)
		tensor.MatMulInto(gx, g, op.w.T, tensor.F64)
		op.x.ensureGrad().AddInPlace(gx, tensor.F64)
	}
	if op.w.req {
		// gW += g^T x
		gw := op.v.tp.Alloc(op.out_, op.in)
		tensor.MatMulTransAInto(gw, g, op.x.T)
		op.w.ensureGrad().AddInPlace(gw, tensor.F64)
	}
	if op.b != nil && op.b.req {
		gb := op.b.ensureGrad()
		for i := 0; i < op.n; i++ {
			row := g.Row(i)
			for j := 0; j < op.out_; j++ {
				gb.Data[j] += row[j]
			}
		}
	}
}

type siluOp struct{ v, x *Value }

func (op *siluOp) run() {
	if !op.x.req {
		return
	}
	gx := op.x.ensureGrad()
	for i, xv := range op.x.T.Data {
		s := 1 / (1 + math.Exp(-xv))
		gx.Data[i] += op.v.grad.Data[i] * s * (1 + xv*(1-s))
	}
}

type tanhOp struct{ v, x *Value }

func (op *tanhOp) run() {
	if !op.x.req {
		return
	}
	gx := op.x.ensureGrad()
	for i := range op.x.T.Data {
		t := op.v.T.Data[i]
		gx.Data[i] += op.v.grad.Data[i] * (1 - t*t)
	}
}

type addOp struct{ v, a, b *Value }

func (op *addOp) run() {
	if op.a.req {
		op.a.ensureGrad().AddInPlace(op.v.grad, tensor.F64)
	}
	if op.b.req {
		op.b.ensureGrad().AddInPlace(op.v.grad, tensor.F64)
	}
}

type subOp struct{ v, a, b *Value }

func (op *subOp) run() {
	if op.a.req {
		op.a.ensureGrad().AddInPlace(op.v.grad, tensor.F64)
	}
	if op.b.req {
		gb := op.b.ensureGrad()
		for i := range gb.Data {
			gb.Data[i] -= op.v.grad.Data[i]
		}
	}
}

type mulOp struct{ v, a, b *Value }

func (op *mulOp) run() {
	if op.a.req {
		ga := op.a.ensureGrad()
		for i := range ga.Data {
			ga.Data[i] += op.v.grad.Data[i] * op.b.T.Data[i]
		}
	}
	if op.b.req {
		gb := op.b.ensureGrad()
		for i := range gb.Data {
			gb.Data[i] += op.v.grad.Data[i] * op.a.T.Data[i]
		}
	}
}

type scaleOp struct {
	v, x *Value
	c    float64
}

func (op *scaleOp) run() {
	if !op.x.req {
		return
	}
	gx := op.x.ensureGrad()
	for i := range gx.Data {
		gx.Data[i] += op.v.grad.Data[i] * op.c
	}
}

type concatOp struct {
	v        *Value
	xs       []*Value // pooled storage, refilled per use
	n, total int
}

func (op *concatOp) run() {
	off := 0
	for _, x := range op.xs {
		c := x.T.Shape[1]
		if x.req {
			gx := x.ensureGrad()
			for i := 0; i < op.n; i++ {
				src := op.v.grad.Data[i*op.total+off : i*op.total+off+c]
				dst := gx.Row(i)
				for j, g := range src {
					dst[j] += g
				}
			}
		}
		off += c
	}
}

type sliceLastOp struct {
	v, x                   *Value
	rows, width, last, lo_ int
}

func (op *sliceLastOp) run() {
	if !op.x.req {
		return
	}
	gx := op.x.ensureGrad()
	for r := 0; r < op.rows; r++ {
		src := op.v.grad.Data[r*op.width : (r+1)*op.width]
		dst := gx.Data[r*op.last+op.lo_ : r*op.last+op.lo_+op.width]
		for j, g := range src {
			dst[j] += g
		}
	}
}

type reshapeOp struct{ v, x *Value }

func (op *reshapeOp) run() {
	if !op.x.req {
		return
	}
	gx := op.x.ensureGrad()
	for i := range gx.Data {
		gx.Data[i] += op.v.grad.Data[i]
	}
}

type sumAllOp struct{ v, x *Value }

func (op *sumAllOp) run() {
	if !op.x.req {
		return
	}
	g := op.v.grad.Data[0]
	gx := op.x.ensureGrad()
	for i := range gx.Data {
		gx.Data[i] += g
	}
}

type weightedSumOp struct {
	v, x *Value
	w    []float64
}

func (op *weightedSumOp) run() {
	if !op.x.req {
		return
	}
	g := op.v.grad.Data[0]
	gx := op.x.ensureGrad()
	for i := range gx.Data {
		gx.Data[i] += g * op.w[i]
	}
}

type gatherOp struct {
	v, x   *Value
	idx    []int
	rowLen int
}

func (op *gatherOp) run() {
	if !op.x.req {
		return
	}
	gx := op.x.ensureGrad()
	for z, i := range op.idx {
		src := op.v.grad.Data[z*op.rowLen : (z+1)*op.rowLen]
		dst := gx.Data[i*op.rowLen : (i+1)*op.rowLen]
		for j, g := range src {
			dst[j] += g
		}
	}
}

type scatterOp struct {
	v, x   *Value
	idx    []int
	rowLen int
}

func (op *scatterOp) run() {
	if !op.x.req {
		return
	}
	gx := op.x.ensureGrad()
	for z, i := range op.idx {
		src := op.v.grad.Data[i*op.rowLen : (i+1)*op.rowLen]
		dst := gx.Data[z*op.rowLen : (z+1)*op.rowLen]
		for j, g := range src {
			dst[j] += g
		}
	}
}

type mulBroadcastOp struct {
	v, x, s *Value
	rows, c int
}

func (op *mulBroadcastOp) run() {
	rows, c := op.rows, op.c
	if op.x.req {
		gx := op.x.ensureGrad()
		for r := 0; r < rows; r++ {
			sv := op.s.T.Data[r]
			for j := 0; j < c; j++ {
				gx.Data[r*c+j] += op.v.grad.Data[r*c+j] * sv
			}
		}
	}
	if op.s.req {
		gs := op.s.ensureGrad()
		for r := 0; r < rows; r++ {
			acc := 0.0
			for j := 0; j < c; j++ {
				acc += op.v.grad.Data[r*c+j] * op.x.T.Data[r*c+j]
			}
			gs.Data[r] += acc
		}
	}
}

type outerMulOp struct {
	v, s, y *Value
	z, u, c int
}

func (op *outerMulOp) run() {
	z, u, c := op.z, op.u, op.c
	if op.s.req {
		gs := op.s.ensureGrad()
		for zi := 0; zi < z; zi++ {
			yRow := op.y.T.Row(zi)
			for ui := 0; ui < u; ui++ {
				acc := 0.0
				g := op.v.grad.Data[(zi*u+ui)*c : (zi*u+ui+1)*c]
				for j, yv := range yRow {
					acc += g[j] * yv
				}
				gs.Data[zi*u+ui] += acc
			}
		}
	}
	if op.y.req {
		gy := op.y.ensureGrad()
		for zi := 0; zi < z; zi++ {
			gRow := gy.Row(zi)
			for ui := 0; ui < u; ui++ {
				sv := op.s.T.Data[zi*u+ui]
				g := op.v.grad.Data[(zi*u+ui)*c : (zi*u+ui+1)*c]
				for j := range gRow {
					gRow[j] += g[j] * sv
				}
			}
		}
	}
}

// --- geometric ops (geom_ops.go) ---

type normOp struct {
	v, rvec *Value
	z       int
}

func (op *normOp) run() {
	if !op.rvec.req {
		return
	}
	g := op.rvec.ensureGrad()
	for i := 0; i < op.z; i++ {
		r := op.rvec.T.Row(i)
		d := op.v.T.Data[i]
		if d == 0 {
			continue
		}
		gv := op.v.grad.Data[i] / d
		row := g.Row(i)
		row[0] += gv * r[0]
		row[1] += gv * r[1]
		row[2] += gv * r[2]
	}
}

type sphHarmOp struct {
	v, rvec *Value
	grads   *tensor.Tensor // [Z, dim*3] analytic gradient table (nil if !req)
	z, dim  int
}

func (op *sphHarmOp) run() {
	if !op.rvec.req {
		return
	}
	g := op.rvec.ensureGrad()
	for i := 0; i < op.z; i++ {
		gRow := g.Row(i)
		vg := op.v.grad.Row(i)
		gi := op.grads.Row(i)
		for c := 0; c < op.dim; c++ {
			gc := vg[c]
			if gc == 0 {
				continue
			}
			gRow[0] += gc * gi[3*c]
			gRow[1] += gc * gi[3*c+1]
			gRow[2] += gc * gi[3*c+2]
		}
	}
}

type besselOp struct {
	v, r  *Value
	rcuts []float64
	z, nb int
}

func (op *besselOp) run() {
	if !op.r.req {
		return
	}
	g := op.r.ensureGrad()
	for i := 0; i < op.z; i++ {
		rv := op.r.T.Data[i]
		rc := op.rcuts[i]
		pref := math.Sqrt(2 / rc)
		acc := 0.0
		for n := 1; n <= op.nb; n++ {
			k := float64(n) * math.Pi / rc
			// d/dr [pref*sin(k r)/r] = pref*(k*cos(k r)/r - sin(k r)/r^2)
			db := pref * (k*math.Cos(k*rv)/rv - math.Sin(k*rv)/(rv*rv))
			acc += op.v.grad.Data[i*op.nb+n-1] * db
		}
		g.Data[i] += acc
	}
}

type polyCutoffOp struct {
	v, r           *Value
	rcuts          []float64
	fp, c1, c2, c3 float64
	z              int
}

func (op *polyCutoffOp) run() {
	if !op.r.req {
		return
	}
	g := op.r.ensureGrad()
	for i := 0; i < op.z; i++ {
		rc := op.rcuts[i]
		x := op.r.T.Data[i] / rc
		if x >= 1 {
			continue
		}
		xpm := math.Pow(x, op.fp-1)
		df := (-op.c1*op.fp*xpm + op.c2*(op.fp+1)*xpm*x - op.c3*(op.fp+2)*xpm*x*x) / rc
		g.Data[i] += op.v.grad.Data[i] * df
	}
}

type envSumOp struct {
	v, w, y *Value
	center  []int
	scale   float64
	z, u, c int
}

func (op *envSumOp) run() {
	z, u, c := op.z, op.u, op.c
	for zi := 0; zi < z; zi++ {
		i := op.center[zi]
		yRow := op.y.T.Row(zi)
		if op.w.req {
			gw := op.w.ensureGrad()
			for ui := 0; ui < u; ui++ {
				g := op.v.grad.Data[(i*u+ui)*c : (i*u+ui+1)*c]
				acc := 0.0
				for j, yv := range yRow {
					acc += g[j] * yv
				}
				gw.Data[zi*u+ui] += op.scale * acc
			}
		}
		if op.y.req {
			gy := op.y.ensureGrad()
			gyRow := gy.Row(zi)
			for ui := 0; ui < u; ui++ {
				wv := op.scale * op.w.T.Data[zi*u+ui]
				g := op.v.grad.Data[(i*u+ui)*c : (i*u+ui+1)*c]
				for j := range gyRow {
					gyRow[j] += g[j] * wv
				}
			}
		}
	}
}

type tensorProdOp struct {
	v, x, y, weights *Value
	prod             *o3.TensorProduct
}

func (op *tensorProdOp) run() {
	tp := op.v.tp
	gx := tp.Alloc(op.x.T.Shape...)
	gy := tp.Alloc(op.y.T.Shape...)
	gw := tp.Alloc(op.prod.NumPaths())
	op.prod.BackwardInto(op.x.T, op.y.T, op.v.grad, op.weights.T.Data, gx, gy, gw.Data)
	if op.x.req {
		op.x.ensureGrad().AddInPlace(gx, tensor.F64)
	}
	if op.y.req {
		op.y.ensureGrad().AddInPlace(gy, tensor.F64)
	}
	if op.weights.req {
		wg := op.weights.ensureGrad()
		for i, g := range gw.Data {
			wg.Data[i] += g
		}
	}
}
