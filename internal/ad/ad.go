// Package ad implements a small reverse-mode automatic differentiation tape
// over dense tensors, with the custom geometric operations the Allegro model
// and its baselines need: spherical harmonics, Bessel radial bases, smooth
// cutoff envelopes, the fused equivariant tensor product, and the
// neighbor-environment scatter/gather pattern.
//
// Forward computation honours a reduced-precision configuration (compute
// precision for matrix pipelines, store precision for activations),
// emulating the paper's mixed F64/F32/TF32 scheme. Backward passes always
// run in float64: the adjoint is used for forces and optimizer updates,
// whose correctness tests require the exact gradient, while the precision
// ablation of Table IV quantizes forward activations.
//
// Training on a force loss requires d(dE/dr)/dtheta, a second derivative.
// Rather than a second-order tape, the trainer uses the exact
// Hessian-vector-product identity
//
//	dL/dtheta = 2 * d/dh [ grad_theta E(r + h*u) ]  at h=0,  u = F_pred - F_ref
//
// evaluated by central finite differences of two ordinary first-order
// backward passes — the standard R-operator trick.
package ad

import (
	"fmt"

	"repro/internal/o3"
	"repro/internal/tensor"
)

// Value is a node in the computation graph.
type Value struct {
	T    *tensor.Tensor
	grad *tensor.Tensor
	req  bool   // participates in differentiation
	back backOp // pooled op accumulating into the grads of the inputs
	tp   *Tape  // owning tape (gradient buffers come from its allocator)
}

// Grad returns the accumulated gradient tensor (nil until Backward runs, or
// if the value does not require gradients).
func (v *Value) Grad() *tensor.Tensor { return v.grad }

// RequiresGrad reports whether gradients flow into this value.
func (v *Value) RequiresGrad() bool { return v.req }

// ensureGrad allocates the gradient buffer on demand.
func (v *Value) ensureGrad() *tensor.Tensor {
	if v.grad == nil {
		v.grad = v.tp.Alloc(v.T.Shape...)
	}
	return v.grad
}

// Tape records operations in execution order for reverse-mode replay.
//
// A tape built with NewTapeArena draws every activation, gradient, and node
// from reusable arena/pool storage: Reset recycles it all, so an evaluation
// pipeline that replays the same graph shapes step after step stops
// allocating once warm (the Sec. V-C steady-state contract). Tapes are not
// safe for concurrent use.
type Tape struct {
	vals []*Value
	// Compute is the matrix-pipeline precision (matmuls, tensor product).
	Compute tensor.Precision
	// Store is the activation storage precision applied after each op.
	Store tensor.Precision

	arena  *tensor.Arena // nil: plain heap allocation
	blocks [][]Value     // pooled node storage (pointer-stable blocks)
	used   int
	ops    opPools // pooled backward-op storage (no closures on the hot path)

	// Reusable op scratch that persists across Reset (grown on demand).
	sphBuf    []float64
	sphGBuf   [][3]float64
	tpEntries []o3.TPEntry
	mmScratch tensor.MatmulScratch // narrow-precision Linear rounding buffers
}

// valueBlock is the node pool granularity.
const valueBlock = 64

// NewTape returns a tape with the given compute/store precision pair.
// NewTape(tensor.F64, tensor.F64) gives exact double-precision behaviour.
func NewTape(compute, store tensor.Precision) *Tape {
	return &Tape{Compute: compute, Store: store}
}

// NewTapeArena returns a tape whose tensors and gradients are carved from
// arena. The caller owns the arena's lifetime; Reset on the tape resets the
// arena too. Results (energies, forces, gradients) must be copied out before
// the next Reset.
func NewTapeArena(compute, store tensor.Precision, arena *tensor.Arena) *Tape {
	return &Tape{Compute: compute, Store: store, arena: arena}
}

// Reset recycles the tape for a new forward pass: nodes and (if arena-backed)
// all tensor storage become reusable. Values and gradients obtained from the
// previous pass are invalidated.
func (tp *Tape) Reset() {
	tp.vals = tp.vals[:0]
	tp.used = 0
	tp.ops.reset()
	if tp.arena != nil {
		tp.arena.Reset()
	}
}

// Alloc returns a zero-filled tensor from the tape's allocator.
func (tp *Tape) Alloc(shape ...int) *tensor.Tensor {
	if tp.arena != nil {
		return tp.arena.New(shape...)
	}
	return tensor.New(shape...)
}

// cloneT returns a tape-allocated deep copy of t.
func (tp *Tape) cloneT(t *tensor.Tensor) *tensor.Tensor {
	y := tp.Alloc(t.Shape...)
	copy(y.Data, t.Data)
	return y
}

// newValue hands out a pooled node. Blocks are pointer-stable so Values stay
// valid while the vals slice grows.
func (tp *Tape) newValue() *Value {
	blk, off := tp.used/valueBlock, tp.used%valueBlock
	if blk == len(tp.blocks) {
		tp.blocks = append(tp.blocks, make([]Value, valueBlock))
	}
	tp.used++
	v := &tp.blocks[blk][off]
	*v = Value{tp: tp}
	return v
}

// Leaf registers an input tensor. If req is true, gradients with respect to
// it are accumulated by Backward.
func (tp *Tape) Leaf(t *tensor.Tensor, req bool) *Value {
	v := tp.newValue()
	v.T = t
	v.req = req
	tp.vals = append(tp.vals, v)
	return v
}

// Const registers a non-differentiable input.
func (tp *Tape) Const(t *tensor.Tensor) *Value { return tp.Leaf(t, false) }

// node registers an op output; the caller attaches a pooled backward op to
// v.back (left nil for non-differentiable outputs).
func (tp *Tape) node(t *tensor.Tensor, req bool) *Value {
	v := tp.newValue()
	v.T = t
	v.req = req
	tp.vals = append(tp.vals, v)
	return v
}

// store applies the activation storage precision in place and returns t.
func (tp *Tape) store(t *tensor.Tensor) *tensor.Tensor { return t.Quantize(tp.Store) }

// Backward seeds the gradient of root (which must hold exactly one element)
// with 1 and propagates adjoints through the tape in reverse order.
// It may be called once per tape (once per Reset for pooled tapes).
func (tp *Tape) Backward(root *Value) {
	if root.T.Len() != 1 {
		panic(fmt.Sprintf("ad: Backward root must be scalar, got shape %v", root.T.Shape))
	}
	root.ensureGrad().Data[0] = 1
	for i := len(tp.vals) - 1; i >= 0; i-- {
		v := tp.vals[i]
		if v.back != nil && v.req && v.grad != nil {
			v.back.run()
		}
	}
}

// NumValues returns the number of recorded nodes (useful in tests).
func (tp *Tape) NumValues() int { return len(tp.vals) }
