// Package ad implements a small reverse-mode automatic differentiation tape
// over dense tensors, with the custom geometric operations the Allegro model
// and its baselines need: spherical harmonics, Bessel radial bases, smooth
// cutoff envelopes, the fused equivariant tensor product, and the
// neighbor-environment scatter/gather pattern.
//
// Forward computation honours a reduced-precision configuration (compute
// precision for matrix pipelines, store precision for activations),
// emulating the paper's mixed F64/F32/TF32 scheme. Backward passes always
// run in float64: the adjoint is used for forces and optimizer updates,
// whose correctness tests require the exact gradient, while the precision
// ablation of Table IV quantizes forward activations.
//
// Training on a force loss requires d(dE/dr)/dtheta, a second derivative.
// Rather than a second-order tape, the trainer uses the exact
// Hessian-vector-product identity
//
//	dL/dtheta = 2 * d/dh [ grad_theta E(r + h*u) ]  at h=0,  u = F_pred - F_ref
//
// evaluated by central finite differences of two ordinary first-order
// backward passes — the standard R-operator trick.
package ad

import (
	"fmt"

	"repro/internal/tensor"
)

// Value is a node in the computation graph.
type Value struct {
	T    *tensor.Tensor
	grad *tensor.Tensor
	req  bool   // participates in differentiation
	back func() // accumulates into the grads of the inputs
}

// Grad returns the accumulated gradient tensor (nil until Backward runs, or
// if the value does not require gradients).
func (v *Value) Grad() *tensor.Tensor { return v.grad }

// RequiresGrad reports whether gradients flow into this value.
func (v *Value) RequiresGrad() bool { return v.req }

// ensureGrad allocates the gradient buffer on demand.
func (v *Value) ensureGrad() *tensor.Tensor {
	if v.grad == nil {
		v.grad = tensor.New(v.T.Shape...)
	}
	return v.grad
}

// Tape records operations in execution order for reverse-mode replay.
type Tape struct {
	vals []*Value
	// Compute is the matrix-pipeline precision (matmuls, tensor product).
	Compute tensor.Precision
	// Store is the activation storage precision applied after each op.
	Store tensor.Precision
}

// NewTape returns a tape with the given compute/store precision pair.
// NewTape(tensor.F64, tensor.F64) gives exact double-precision behaviour.
func NewTape(compute, store tensor.Precision) *Tape {
	return &Tape{Compute: compute, Store: store}
}

// Leaf registers an input tensor. If req is true, gradients with respect to
// it are accumulated by Backward.
func (tp *Tape) Leaf(t *tensor.Tensor, req bool) *Value {
	v := &Value{T: t, req: req}
	tp.vals = append(tp.vals, v)
	return v
}

// Const registers a non-differentiable input.
func (tp *Tape) Const(t *tensor.Tensor) *Value { return tp.Leaf(t, false) }

// node registers an op output whose back closure propagates the adjoint.
func (tp *Tape) node(t *tensor.Tensor, req bool, back func()) *Value {
	v := &Value{T: t, req: req, back: back}
	tp.vals = append(tp.vals, v)
	return v
}

// store applies the activation storage precision in place and returns t.
func (tp *Tape) store(t *tensor.Tensor) *tensor.Tensor { return t.Quantize(tp.Store) }

// Backward seeds the gradient of root (which must hold exactly one element)
// with 1 and propagates adjoints through the tape in reverse order.
// It may be called once per tape.
func (tp *Tape) Backward(root *Value) {
	if root.T.Len() != 1 {
		panic(fmt.Sprintf("ad: Backward root must be scalar, got shape %v", root.T.Shape))
	}
	root.ensureGrad().Data[0] = 1
	for i := len(tp.vals) - 1; i >= 0; i-- {
		v := tp.vals[i]
		if v.back != nil && v.req && v.grad != nil {
			v.back()
		}
	}
}

// NumValues returns the number of recorded nodes (useful in tests).
func (tp *Tape) NumValues() int { return len(tp.vals) }
