package ad

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/o3"
	"repro/internal/tensor"
)

// checkGrad verifies the tape gradient of a scalar function against central
// finite differences for a chosen leaf.
func checkGrad(t *testing.T, name string, build func(tp *Tape, leaf *Value) *Value, leafData *tensor.Tensor, tol float64) {
	t.Helper()
	tp := NewTape(tensor.F64, tensor.F64)
	leaf := tp.Leaf(leafData.Clone(), true)
	root := build(tp, leaf)
	tp.Backward(root)
	g := leaf.Grad()
	if g == nil {
		t.Fatalf("%s: no gradient", name)
	}
	const h = 1e-6
	eval := func(data *tensor.Tensor) float64 {
		tp2 := NewTape(tensor.F64, tensor.F64)
		l2 := tp2.Leaf(data, true)
		return build(tp2, l2).T.Data[0]
	}
	for i := 0; i < leafData.Len(); i++ {
		dp := leafData.Clone()
		dm := leafData.Clone()
		dp.Data[i] += h
		dm.Data[i] -= h
		fd := (eval(dp) - eval(dm)) / (2 * h)
		if math.Abs(fd-g.Data[i]) > tol*(1+math.Abs(fd)) {
			t.Fatalf("%s grad[%d]: fd=%g tape=%g", name, i, fd, g.Data[i])
		}
	}
}

func randT(rng *rand.Rand, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
	}
	return t
}

func TestLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	x := randT(rng, 4, 3)
	w := randT(rng, 5, 3)
	b := randT(rng, 5)
	// Gradient w.r.t. x.
	checkGrad(t, "linear/x", func(tp *Tape, leaf *Value) *Value {
		wv := tp.Leaf(w.Clone(), false)
		bv := tp.Leaf(b.Clone(), false)
		return tp.SumAll(tp.SiLU(tp.Linear(leaf, wv, bv)))
	}, x, 1e-5)
	// Gradient w.r.t. w.
	checkGrad(t, "linear/w", func(tp *Tape, leaf *Value) *Value {
		xv := tp.Leaf(x.Clone(), false)
		bv := tp.Leaf(b.Clone(), false)
		return tp.SumAll(tp.SiLU(tp.Linear(xv, leaf, bv)))
	}, w, 1e-5)
	// Gradient w.r.t. b.
	checkGrad(t, "linear/b", func(tp *Tape, leaf *Value) *Value {
		xv := tp.Leaf(x.Clone(), false)
		wv := tp.Leaf(w.Clone(), false)
		return tp.SumAll(tp.SiLU(tp.Linear(xv, wv, leaf)))
	}, b, 1e-5)
}

func TestElementwiseGradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	x := randT(rng, 3, 4)
	y := randT(rng, 3, 4)
	checkGrad(t, "mul", func(tp *Tape, leaf *Value) *Value {
		yv := tp.Leaf(y.Clone(), false)
		return tp.SumAll(tp.Mul(leaf, yv))
	}, x, 1e-6)
	checkGrad(t, "sub+square", func(tp *Tape, leaf *Value) *Value {
		yv := tp.Leaf(y.Clone(), false)
		return tp.SumAll(tp.Square(tp.Sub(leaf, yv)))
	}, x, 1e-5)
	checkGrad(t, "scale", func(tp *Tape, leaf *Value) *Value {
		return tp.SumAll(tp.Scale(leaf, -2.5))
	}, x, 1e-6)
	checkGrad(t, "tanh", func(tp *Tape, leaf *Value) *Value {
		return tp.SumAll(tp.Tanh(leaf))
	}, x, 1e-5)
	checkGrad(t, "add", func(tp *Tape, leaf *Value) *Value {
		yv := tp.Leaf(y.Clone(), false)
		return tp.SumAll(tp.Add(tp.Add(leaf, yv), leaf))
	}, x, 1e-6)
}

func TestConcatSliceReshapeGradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	x := randT(rng, 3, 2)
	y := randT(rng, 3, 4)
	checkGrad(t, "concat+slice", func(tp *Tape, leaf *Value) *Value {
		yv := tp.Leaf(y.Clone(), false)
		cat := tp.Concat(leaf, yv)
		sl := tp.SliceLast(cat, 1, 5)
		return tp.SumAll(tp.Square(sl))
	}, x, 1e-5)
	checkGrad(t, "reshape", func(tp *Tape, leaf *Value) *Value {
		r := tp.Reshape(leaf, 2, 3)
		return tp.SumAll(tp.Square(r))
	}, x, 1e-5)
}

func TestGatherScatterGradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	x := randT(rng, 4, 3)
	idx := []int{2, 0, 2, 1, 3}
	checkGrad(t, "gather", func(tp *Tape, leaf *Value) *Value {
		g := tp.GatherRows(leaf, idx)
		return tp.SumAll(tp.Square(g))
	}, x, 1e-5)
	z := randT(rng, 5, 3)
	checkGrad(t, "scatter", func(tp *Tape, leaf *Value) *Value {
		s := tp.ScatterAddRows(leaf, idx, 4)
		return tp.SumAll(tp.Square(s))
	}, z, 1e-5)
}

func TestBroadcastOpsGradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	x := randT(rng, 4, 6)
	s := randT(rng, 4, 1)
	checkGrad(t, "mulbcast/x", func(tp *Tape, leaf *Value) *Value {
		sv := tp.Leaf(s.Clone(), false)
		return tp.SumAll(tp.Square(tp.MulBroadcastLast(leaf, sv)))
	}, x, 1e-5)
	checkGrad(t, "mulbcast/s", func(tp *Tape, leaf *Value) *Value {
		xv := tp.Leaf(x.Clone(), false)
		return tp.SumAll(tp.Square(tp.MulBroadcastLast(xv, leaf)))
	}, s, 1e-5)
	w := randT(rng, 3, 2)
	y := randT(rng, 3, 5)
	checkGrad(t, "outer/s", func(tp *Tape, leaf *Value) *Value {
		yv := tp.Leaf(y.Clone(), false)
		return tp.SumAll(tp.Square(tp.OuterMul(leaf, yv)))
	}, w, 1e-5)
	checkGrad(t, "outer/y", func(tp *Tape, leaf *Value) *Value {
		wv := tp.Leaf(w.Clone(), false)
		return tp.SumAll(tp.Square(tp.OuterMul(wv, leaf)))
	}, y, 1e-5)
}

func TestGeometricOpsGradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	rvec := tensor.New(4, 3)
	for i := range rvec.Data {
		rvec.Data[i] = rng.NormFloat64() + 1.5 // keep away from origin
	}
	rcuts := []float64{4, 4, 5, 4}
	checkGrad(t, "norm", func(tp *Tape, leaf *Value) *Value {
		return tp.SumAll(tp.Square(tp.Norm(leaf)))
	}, rvec, 1e-5)
	checkGrad(t, "sphharm", func(tp *Tape, leaf *Value) *Value {
		return tp.SumAll(tp.Square(tp.SphHarm(leaf, 2)))
	}, rvec, 1e-4)
	checkGrad(t, "bessel", func(tp *Tape, leaf *Value) *Value {
		r := tp.Norm(leaf)
		return tp.SumAll(tp.Square(tp.Bessel(r, rcuts, 4)))
	}, rvec, 1e-4)
	checkGrad(t, "cutoff", func(tp *Tape, leaf *Value) *Value {
		r := tp.Norm(leaf)
		return tp.SumAll(tp.Square(tp.PolyCutoff(r, rcuts, 6)))
	}, rvec, 1e-4)
}

func TestEnvSumGradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	w := randT(rng, 5, 2)
	y := randT(rng, 5, 4)
	center := []int{0, 1, 0, 2, 1}
	checkGrad(t, "envsum/w", func(tp *Tape, leaf *Value) *Value {
		yv := tp.Leaf(y.Clone(), false)
		return tp.SumAll(tp.Square(tp.EnvSum(leaf, yv, center, 3, 0.7)))
	}, w, 1e-5)
	checkGrad(t, "envsum/y", func(tp *Tape, leaf *Value) *Value {
		wv := tp.Leaf(w.Clone(), false)
		return tp.SumAll(tp.Square(tp.EnvSum(wv, leaf, center, 3, 0.7)))
	}, y, 1e-5)
}

func TestTensorProductOpGradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	prod := o3.NewTensorProduct(o3.FullIrreps(1), o3.SphericalIrreps(1), o3.FullIrreps(1))
	x := randT(rng, 2, 2, prod.In1.Width)
	y := randT(rng, 2, 2, prod.In2.Width)
	w := randT(rng, prod.NumPaths())
	checkGrad(t, "tp/x", func(tp *Tape, leaf *Value) *Value {
		yv := tp.Leaf(y.Clone(), false)
		wv := tp.Leaf(w.Clone(), false)
		return tp.SumAll(tp.Square(tp.TensorProduct(prod, leaf, yv, wv, nil)))
	}, x, 1e-5)
	checkGrad(t, "tp/y", func(tp *Tape, leaf *Value) *Value {
		xv := tp.Leaf(x.Clone(), false)
		wv := tp.Leaf(w.Clone(), false)
		return tp.SumAll(tp.Square(tp.TensorProduct(prod, xv, leaf, wv, nil)))
	}, y, 1e-5)
	checkGrad(t, "tp/w", func(tp *Tape, leaf *Value) *Value {
		xv := tp.Leaf(x.Clone(), false)
		yv := tp.Leaf(y.Clone(), false)
		return tp.SumAll(tp.Square(tp.TensorProduct(prod, xv, yv, leaf, nil)))
	}, w, 1e-5)
}

func TestWeightedSumAll(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	x := randT(rng, 5, 1)
	w := []float64{1, -2, 0.5, 3, -1}
	checkGrad(t, "weightedsum", func(tp *Tape, leaf *Value) *Value {
		return tp.WeightedSumAll(tp.Square(leaf), w)
	}, x, 1e-5)
}

func TestCompositePipelineGradient(t *testing.T) {
	// A miniature Allegro-like pipeline end to end: rvec -> (r, Y, bessel)
	// -> MLP latent -> env weights -> env sum -> TP -> scalars -> energy.
	rng := rand.New(rand.NewPCG(10, 10))
	z := 6
	rvec := tensor.New(z, 3)
	for i := range rvec.Data {
		rvec.Data[i] = rng.NormFloat64()*0.8 + 1.2
	}
	center := []int{0, 0, 1, 1, 2, 2}
	rcuts := make([]float64, z)
	for i := range rcuts {
		rcuts[i] = 6.0
	}
	prod := o3.NewTensorProduct(o3.SphericalIrreps(1), o3.SphericalIrreps(1), o3.FullIrreps(1))
	u := 2
	w1 := randT(rng, 8, 4)
	w2 := randT(rng, u, 8)
	wtp := randT(rng, prod.NumPaths())
	wout := randT(rng, 1, 8)

	build := func(tp *Tape, leaf *Value) *Value {
		r := tp.Norm(leaf)
		y := tp.SphHarm(leaf, 1)
		bes := tp.Bessel(r, rcuts, 4)
		h := tp.SiLU(tp.Linear(bes, tp.Leaf(w1.Clone(), false), nil))
		envw := tp.Linear(h, tp.Leaf(w2.Clone(), false), nil)
		env := tp.EnvSum(envw, y, center, 3, 0.5)
		envPairs := tp.GatherRows(env, center)
		v0 := tp.OuterMul(envw, y)
		tpo := tp.TensorProduct(prod, v0, envPairs, tp.Leaf(wtp.Clone(), false), nil)
		scal := tp.Reshape(tp.SliceLast(tpo, 0, 1), z, u)
		cat := tp.Concat(h, scal)
		_ = cat
		e := tp.Linear(h, tp.Leaf(wout.Clone(), false), nil)
		cut := tp.PolyCutoff(r, rcuts, 6)
		eCut := tp.MulBroadcastLast(e, cut)
		return tp.Add(tp.SumAll(eCut), tp.SumAll(tp.Square(scal)))
	}
	checkGrad(t, "composite", build, rvec, 5e-4)
}

func TestBackwardRequiresScalarRoot(t *testing.T) {
	tp := NewTape(tensor.F64, tensor.F64)
	x := tp.Leaf(tensor.New(2, 2), true)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-scalar root")
		}
	}()
	tp.Backward(x)
}

func TestStorePrecisionQuantizesForward(t *testing.T) {
	tp := NewTape(tensor.F32, tensor.F32)
	x := tp.Leaf(tensor.FromSlice([]float64{1.0000000001, 2.0000000002}, 1, 2), false)
	y := tp.SiLU(x)
	for _, v := range y.T.Data {
		if float64(float32(v)) != v {
			t.Fatalf("activation %v not quantized to f32", v)
		}
	}
}
