package ad

import (
	"fmt"
	"math"

	"repro/internal/o3"
	"repro/internal/tensor"
)

// Norm maps pair displacement vectors rvec [Z,3] to distances [Z,1].
func (tp *Tape) Norm(rvec *Value) *Value {
	z := rvec.T.Shape[0]
	if rvec.T.NDim() != 2 || rvec.T.Shape[1] != 3 {
		panic("ad: Norm expects [Z,3]")
	}
	y := tp.Alloc(z, 1)
	for i := 0; i < z; i++ {
		r := rvec.T.Row(i)
		y.Data[i] = math.Sqrt(r[0]*r[0] + r[1]*r[1] + r[2]*r[2])
	}
	v := tp.node(y, rvec.req)
	op := tp.ops.norm.get()
	*op = normOp{v: v, rvec: rvec, z: z}
	v.back = op
	return v
}

// SphHarm maps pair vectors [Z,3] to real spherical harmonics [Z,(lmax+1)^2]
// of the pair direction, with analytic gradients through normalization.
func (tp *Tape) SphHarm(rvec *Value, lmax int) *Value {
	z := rvec.T.Shape[0]
	dim := o3.SphDim(lmax)
	y := tp.Alloc(z, dim)
	// Persistent scratch (survives Reset) plus a tape-allocated flat
	// gradient table [z, dim*3] so steady-state passes allocate nothing.
	if cap(tp.sphBuf) < dim {
		tp.sphBuf = make([]float64, dim)
		tp.sphGBuf = make([][3]float64, dim)
	}
	buf := tp.sphBuf[:dim]
	gbuf := tp.sphGBuf[:dim]
	var grads *tensor.Tensor
	if rvec.req {
		grads = tp.Alloc(z, dim*3)
	}
	for i := 0; i < z; i++ {
		rr := rvec.T.Row(i)
		r := [3]float64{rr[0], rr[1], rr[2]}
		if rvec.req {
			o3.SphHarmGrad(lmax, r, buf, gbuf)
			row := grads.Row(i)
			for c, g := range gbuf {
				row[3*c] = g[0]
				row[3*c+1] = g[1]
				row[3*c+2] = g[2]
			}
		} else {
			o3.SphHarm(lmax, r, buf)
		}
		copy(y.Row(i), buf)
	}
	tp.store(y)
	v := tp.node(y, rvec.req)
	op := tp.ops.sph.get()
	*op = sphHarmOp{v: v, rvec: rvec, grads: grads, z: z, dim: dim}
	v.back = op
	return v
}

// Bessel expands distances r [Z,1] in nb sine-Bessel radial basis functions
//
//	b_n(r) = sqrt(2/rc) * sin(n*pi*r/rc) / r
//
// with a per-pair cutoff rc = rcuts[z] (the paper's per-ordered-species-pair
// cutoffs make rc pair-dependent). Output is [Z,nb].
func (tp *Tape) Bessel(r *Value, rcuts []float64, nb int) *Value {
	z := r.T.Shape[0]
	if len(rcuts) != z {
		panic("ad: Bessel rcuts length mismatch")
	}
	y := tp.Alloc(z, nb)
	for i := 0; i < z; i++ {
		rv := r.T.Data[i]
		rc := rcuts[i]
		pref := math.Sqrt(2/rc) / rv
		for n := 1; n <= nb; n++ {
			y.Data[i*nb+n-1] = pref * math.Sin(float64(n)*math.Pi*rv/rc)
		}
	}
	tp.store(y)
	v := tp.node(y, r.req)
	op := tp.ops.bessel.get()
	*op = besselOp{v: v, r: r, rcuts: rcuts, z: z, nb: nb}
	v.back = op
	return v
}

// PolyCutoff applies the polynomial envelope of Klicpera et al. used by
// NequIP/Allegro, with exponent p and per-pair cutoffs:
//
//	f(x) = 1 - (p+1)(p+2)/2 x^p + p(p+2) x^(p+1) - p(p+1)/2 x^(p+2),  x = r/rc
//
// f and f' vanish smoothly at r = rc; beyond the cutoff f = 0. Output [Z,1].
func (tp *Tape) PolyCutoff(r *Value, rcuts []float64, p int) *Value {
	z := r.T.Shape[0]
	if len(rcuts) != z {
		panic("ad: PolyCutoff rcuts length mismatch")
	}
	fp := float64(p)
	c1 := (fp + 1) * (fp + 2) / 2
	c2 := fp * (fp + 2)
	c3 := fp * (fp + 1) / 2
	y := tp.Alloc(z, 1)
	for i := 0; i < z; i++ {
		x := r.T.Data[i] / rcuts[i]
		if x >= 1 {
			continue
		}
		xp := math.Pow(x, fp)
		y.Data[i] = 1 - c1*xp + c2*xp*x - c3*xp*x*x
	}
	tp.store(y)
	v := tp.node(y, r.req)
	op := tp.ops.polycut.get()
	*op = polyCutoffOp{v: v, r: r, rcuts: rcuts, fp: fp, c1: c1, c2: c2, c3: c3, z: z}
	v.back = op
	return v
}

// EnvSum computes the per-atom weighted environment embedding
//
//	env[i,u,c] = scale * sum_{z : center[z]=i} w[z,u] * y[z,c]
//
// — the bilinearity trick of Eq. 2: neighbors are summed *before* the tensor
// product. w is [Z,U], y is [Z,C], output [n,U,C].
func (tp *Tape) EnvSum(w, y *Value, center []int, n int, scale float64) *Value {
	z, u := w.T.Shape[0], w.T.Shape[1]
	c := y.T.Shape[1]
	if y.T.Shape[0] != z || len(center) != z {
		panic("ad: EnvSum shape mismatch")
	}
	out := tp.Alloc(n, u, c)
	for zi := 0; zi < z; zi++ {
		i := center[zi]
		yRow := y.T.Row(zi)
		for ui := 0; ui < u; ui++ {
			wv := scale * w.T.Data[zi*u+ui]
			dst := out.Data[(i*u+ui)*c : (i*u+ui+1)*c]
			for j, yv := range yRow {
				dst[j] += wv * yv
			}
		}
	}
	tp.store(out)
	v := tp.node(out, w.req || y.req)
	op := tp.ops.envsum.get()
	*op = envSumOp{v: v, w: w, y: y, center: center, scale: scale, z: z, u: u, c: c}
	v.back = op
	return v
}

// TensorProduct applies the fused equivariant tensor product with learned
// per-path weights: x [Z,U,W1] (x) y [Z,U,W2] -> [Z,U,W3].
//
// fused may carry a weight-folded entry table already flattened from the
// same weights (the Model-level frozen-weight cache); the forward pass then
// skips the per-call re-flatten. Pass nil to fold weights into the tape's
// entry scratch as before. The backward pass always differentiates through
// the per-path weights, so training gradients are unaffected either way.
func (tp *Tape) TensorProduct(prod *o3.TensorProduct, x, y, weights *Value, fused []o3.TPEntry) *Value {
	if weights.T.Len() != prod.NumPaths() {
		panic(fmt.Sprintf("ad: TensorProduct got %d weights for %d paths", weights.T.Len(), prod.NumPaths()))
	}
	out := tp.Alloc(x.T.Dim(0), x.T.Dim(1), prod.Out.Width)
	if fused != nil {
		o3.ContractEntries(out.Data, x.T.Data, y.T.Data, x.T.Dim(0)*x.T.Dim(1),
			prod.In1.Width, prod.In2.Width, prod.Out.Width, fused, tp.Compute)
	} else {
		tp.tpEntries = prod.ApplyFusedInto(out, x.T, y.T, weights.T.Data, tp.Compute, tp.tpEntries)
	}
	tp.store(out)
	v := tp.node(out, x.req || y.req || weights.req)
	op := tp.ops.tprod.get()
	*op = tensorProdOp{v: v, x: x, y: y, weights: weights, prod: prod}
	v.back = op
	return v
}
