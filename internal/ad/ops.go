package ad

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// maxRank bounds tensor rank for stack-built shapes in the hot ops.
const maxRank = 4

// Linear computes x W^T + b for x [N,I], w [O,I], optional b [O],
// producing [N,O] under the tape's compute precision.
func (tp *Tape) Linear(x, w, b *Value) *Value {
	n, in := x.T.Shape[0], x.T.Shape[1]
	out := w.T.Shape[0]
	if w.T.Shape[1] != in {
		panic(fmt.Sprintf("ad: Linear weight shape %v incompatible with input %v", w.T.Shape, x.T.Shape))
	}
	y := tp.Alloc(n, out)
	tensor.MatMulTIntoPooled(y, x.T, w.T, tp.Compute, &tp.mmScratch)
	if b != nil {
		for i := 0; i < n; i++ {
			row := y.Row(i)
			for j := 0; j < out; j++ {
				row[j] += b.T.Data[j]
			}
		}
	}
	tp.store(y)
	req := x.req || w.req || (b != nil && b.req)
	v := tp.node(y, req)
	op := tp.ops.linear.get()
	*op = linearOp{v: v, x: x, w: w, b: b, n: n, in: in, out_: out}
	v.back = op
	return v
}

// SiLU applies x*sigmoid(x) elementwise.
func (tp *Tape) SiLU(x *Value) *Value {
	y := tp.Alloc(x.T.Shape...)
	for i, v := range x.T.Data {
		y.Data[i] = v / (1 + math.Exp(-v))
	}
	tp.store(y)
	v := tp.node(y, x.req)
	op := tp.ops.silu.get()
	*op = siluOp{v: v, x: x}
	v.back = op
	return v
}

// Tanh applies tanh elementwise.
func (tp *Tape) Tanh(x *Value) *Value {
	y := tp.Alloc(x.T.Shape...)
	for i, v := range x.T.Data {
		y.Data[i] = math.Tanh(v)
	}
	tp.store(y)
	v := tp.node(y, x.req)
	op := tp.ops.tanh.get()
	*op = tanhOp{v: v, x: x}
	v.back = op
	return v
}

// Add returns a + b (same shapes).
func (tp *Tape) Add(a, b *Value) *Value {
	if !a.T.SameShape(b.T) {
		panic("ad: Add shape mismatch")
	}
	y := tp.cloneT(a.T)
	y.AddInPlace(b.T, tp.Store)
	v := tp.node(y, a.req || b.req)
	op := tp.ops.add.get()
	*op = addOp{v: v, a: a, b: b}
	v.back = op
	return v
}

// Sub returns a - b.
func (tp *Tape) Sub(a, b *Value) *Value {
	if !a.T.SameShape(b.T) {
		panic("ad: Sub shape mismatch")
	}
	y := tp.Alloc(a.T.Shape...)
	for i := range y.Data {
		y.Data[i] = tp.Store.Round(a.T.Data[i] - b.T.Data[i])
	}
	v := tp.node(y, a.req || b.req)
	op := tp.ops.sub.get()
	*op = subOp{v: v, a: a, b: b}
	v.back = op
	return v
}

// Mul returns the elementwise product a*b.
func (tp *Tape) Mul(a, b *Value) *Value {
	if !a.T.SameShape(b.T) {
		panic("ad: Mul shape mismatch")
	}
	y := tp.Alloc(a.T.Shape...)
	for i := range y.Data {
		y.Data[i] = tp.Store.Round(a.T.Data[i] * b.T.Data[i])
	}
	v := tp.node(y, a.req || b.req)
	op := tp.ops.mul.get()
	*op = mulOp{v: v, a: a, b: b}
	v.back = op
	return v
}

// Scale returns c*x for a compile-time constant c.
func (tp *Tape) Scale(x *Value, c float64) *Value {
	y := tp.cloneT(x.T)
	y.Scale(c, tp.Store)
	v := tp.node(y, x.req)
	op := tp.ops.scale.get()
	*op = scaleOp{v: v, x: x, c: c}
	v.back = op
	return v
}

// Square returns x*x elementwise.
func (tp *Tape) Square(x *Value) *Value { return tp.Mul(x, x) }

// Concat concatenates 2-D values [N,Ci] along the last dimension.
func (tp *Tape) Concat(xs ...*Value) *Value {
	n := xs[0].T.Shape[0]
	total := 0
	req := false
	for _, x := range xs {
		if x.T.NDim() != 2 || x.T.Shape[0] != n {
			panic("ad: Concat requires [N,C] values with equal N")
		}
		total += x.T.Shape[1]
		req = req || x.req
	}
	y := tp.Alloc(n, total)
	off := 0
	for _, x := range xs {
		c := x.T.Shape[1]
		for i := 0; i < n; i++ {
			copy(y.Data[i*total+off:i*total+off+c], x.T.Row(i))
		}
		off += c
	}
	v := tp.node(y, req)
	op := tp.ops.concat.get()
	op.v, op.n, op.total = v, n, total
	op.xs = append(op.xs[:0], xs...) // copy: the variadic slice is the caller's
	v.back = op
	return v
}

// SliceLast returns x[..., lo:hi] as a copy, for 2-D or 3-D x.
func (tp *Tape) SliceLast(x *Value, lo, hi int) *Value {
	nd := x.T.NDim()
	last := x.T.Shape[nd-1]
	if lo < 0 || hi > last || lo >= hi {
		panic(fmt.Sprintf("ad: SliceLast [%d:%d] out of range %d", lo, hi, last))
	}
	rows := x.T.Len() / last
	width := hi - lo
	var shape [maxRank]int
	copy(shape[:], x.T.Shape[:nd-1])
	shape[nd-1] = width
	y := tp.Alloc(shape[:nd]...)
	for r := 0; r < rows; r++ {
		copy(y.Data[r*width:(r+1)*width], x.T.Data[r*last+lo:r*last+hi])
	}
	v := tp.node(y, x.req)
	op := tp.ops.slice.get()
	*op = sliceLastOp{v: v, x: x, rows: rows, width: width, last: last, lo_: lo}
	v.back = op
	return v
}

// Reshape returns x with a new shape (copy semantics for gradient safety).
func (tp *Tape) Reshape(x *Value, shape ...int) *Value {
	y := tp.Alloc(shape...)
	if y.Len() != x.T.Len() {
		// Element counts only: formatting the shape slice would make every
		// caller's variadic argument escape to the heap.
		panic(fmt.Sprintf("ad: cannot reshape %d elements to %d", x.T.Len(), y.Len()))
	}
	copy(y.Data, x.T.Data)
	v := tp.node(y, x.req)
	op := tp.ops.reshape.get()
	*op = reshapeOp{v: v, x: x}
	v.back = op
	return v
}

// SumAll reduces x to a scalar [1]. The reduction runs in float64 (the
// paper performs final energy summation in double precision; callers that
// model a lower-precision final stage quantize separately).
func (tp *Tape) SumAll(x *Value) *Value {
	s := 0.0
	for _, v := range x.T.Data {
		s += v
	}
	y := tp.Alloc(1)
	y.Data[0] = s
	v := tp.node(y, x.req)
	op := tp.ops.sum.get()
	*op = sumAllOp{v: v, x: x}
	v.back = op
	return v
}

// WeightedSumAll returns sum_i w_i * x_i as a scalar for constant weights w
// (len(w) == x.Len()).
func (tp *Tape) WeightedSumAll(x *Value, w []float64) *Value {
	if len(w) != x.T.Len() {
		panic("ad: WeightedSumAll weight length mismatch")
	}
	s := 0.0
	for i, v := range x.T.Data {
		s += w[i] * v
	}
	y := tp.Alloc(1)
	y.Data[0] = s
	v := tp.node(y, x.req)
	op := tp.ops.wsum.get()
	*op = weightedSumOp{v: v, x: x, w: w}
	v.back = op
	return v
}

// GatherRows selects rows of x [N,...] by idx, producing [len(idx),...].
func (tp *Tape) GatherRows(x *Value, idx []int) *Value {
	rowLen := x.T.Len() / x.T.Shape[0]
	var shape [maxRank]int
	shape[0] = len(idx)
	copy(shape[1:], x.T.Shape[1:])
	y := tp.Alloc(shape[:x.T.NDim()]...)
	for z, i := range idx {
		copy(y.Data[z*rowLen:(z+1)*rowLen], x.T.Data[i*rowLen:(i+1)*rowLen])
	}
	v := tp.node(y, x.req)
	op := tp.ops.gather.get()
	*op = gatherOp{v: v, x: x, idx: idx, rowLen: rowLen}
	v.back = op
	return v
}

// ScatterAddRows accumulates rows of x [Z,...] into a fresh [n,...] tensor
// at positions idx (the per-atom reduction E_i = sum_j E_ij). The scatter
// runs in float64 with a fixed deterministic order.
func (tp *Tape) ScatterAddRows(x *Value, idx []int, n int) *Value {
	if len(idx) != x.T.Shape[0] {
		panic("ad: ScatterAddRows index length mismatch")
	}
	rowLen := x.T.Len() / x.T.Shape[0]
	var shape [maxRank]int
	shape[0] = n
	copy(shape[1:], x.T.Shape[1:])
	y := tp.Alloc(shape[:x.T.NDim()]...)
	for z, i := range idx {
		src := x.T.Data[z*rowLen : (z+1)*rowLen]
		dst := y.Data[i*rowLen : (i+1)*rowLen]
		for j, v := range src {
			dst[j] += v
		}
	}
	v := tp.node(y, x.req)
	op := tp.ops.scatter.get()
	*op = scatterOp{v: v, x: x, idx: idx, rowLen: rowLen}
	v.back = op
	return v
}

// MulBroadcastLast multiplies x [N,C] or [Z,U,C] by s with one trailing
// broadcast dimension: s is [N,1] (resp. [Z,U]) and scales each row
// (resp. each channel vector).
func (tp *Tape) MulBroadcastLast(x, s *Value) *Value {
	c := x.T.Shape[x.T.NDim()-1]
	rows := x.T.Len() / c
	if s.T.Len() != rows {
		panic(fmt.Sprintf("ad: MulBroadcastLast scale %v incompatible with %v", s.T.Shape, x.T.Shape))
	}
	y := tp.Alloc(x.T.Shape...)
	for r := 0; r < rows; r++ {
		sv := s.T.Data[r]
		for j := 0; j < c; j++ {
			y.Data[r*c+j] = tp.Store.Round(x.T.Data[r*c+j] * sv)
		}
	}
	v := tp.node(y, x.req || s.req)
	op := tp.ops.mulb.get()
	*op = mulBroadcastOp{v: v, x: x, s: s, rows: rows, c: c}
	v.back = op
	return v
}

// OuterMul builds initial pair features V0[z,u,c] = s[z,u] * y[z,c].
func (tp *Tape) OuterMul(s, y *Value) *Value {
	z, u := s.T.Shape[0], s.T.Shape[1]
	c := y.T.Shape[1]
	if y.T.Shape[0] != z {
		panic("ad: OuterMul row mismatch")
	}
	out := tp.Alloc(z, u, c)
	for zi := 0; zi < z; zi++ {
		yRow := y.T.Row(zi)
		for ui := 0; ui < u; ui++ {
			sv := s.T.Data[zi*u+ui]
			dst := out.Data[(zi*u+ui)*c : (zi*u+ui+1)*c]
			for j, yv := range yRow {
				dst[j] = tp.Store.Round(sv * yv)
			}
		}
	}
	v := tp.node(out, s.req || y.req)
	op := tp.ops.outer.get()
	*op = outerMulOp{v: v, s: s, y: y, z: z, u: u, c: c}
	v.back = op
	return v
}
