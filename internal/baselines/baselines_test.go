package baselines

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/atoms"
	"repro/internal/data"
	"repro/internal/groundtruth"
	"repro/internal/units"
)

func testSpecies() []units.Species {
	return []units.Species{units.H, units.C, units.N, units.O, units.S}
}

// smallFrames builds a compact oracle-labeled training set.
func smallFrames(t *testing.T, n int, seed uint64) []*atoms.Frame {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 7))
	oracle := groundtruth.New()
	mol := data.BuildNamed(data.MolAlcohol)
	data.Relax(oracle, mol, 50, 0.05)
	return data.PerturbedFrames(oracle, mol, n, 0.07, rng)
}

func forceRMSE(ev interface {
	EnergyForces(*atoms.System) (float64, [][3]float64)
}, frames []*atoms.Frame) float64 {
	var sum float64
	var cnt int
	for _, f := range frames {
		_, fp := ev.EnergyForces(f.Sys)
		for i := range fp {
			for k := 0; k < 3; k++ {
				d := fp[i][k] - f.Forces[i][k]
				sum += d * d
				cnt++
			}
		}
	}
	return math.Sqrt(sum / float64(cnt))
}

func TestACSFDescriptorProperties(t *testing.T) {
	p := DefaultACSF(testSpecies())
	mol := data.BuildNamed(data.MolAlcohol)
	d := p.Compute(mol)
	if len(d.D) != mol.NumAtoms() {
		t.Fatal("descriptor count mismatch")
	}
	if len(d.D[0]) != p.Dim() {
		t.Fatalf("descriptor dim %d, want %d", len(d.D[0]), p.Dim())
	}
	// Invariance under rotation.
	rot := mol.Clone()
	c, s := math.Cos(0.7), math.Sin(0.7)
	for i := range rot.Pos {
		x, y := rot.Pos[i][0], rot.Pos[i][1]
		rot.Pos[i][0] = c*x - s*y
		rot.Pos[i][1] = s*x + c*y
	}
	d2 := p.Compute(rot)
	for i := range d.D {
		for q := range d.D[i] {
			if math.Abs(d.D[i][q]-d2.D[i][q]) > 1e-9 {
				t.Fatalf("descriptor not rotation invariant at atom %d comp %d", i, q)
			}
		}
	}
}

func TestACSFGradientsFiniteDifference(t *testing.T) {
	p := DefaultACSF(testSpecies())
	mol := data.BuildNamed(data.MolAlcohol)
	d := p.Compute(mol)
	// Scalar probe: S = sum_i sum_q w_iq D_iq with fixed weights.
	rng := rand.New(rand.NewPCG(1, 2))
	w := make([][]float64, len(d.D))
	for i := range w {
		w[i] = make([]float64, p.Dim())
		for q := range w[i] {
			w[i][q] = rng.NormFloat64()
		}
	}
	probe := func(sys *atoms.System) float64 {
		dd := p.Compute(sys)
		s := 0.0
		for i := range dd.D {
			for q := range dd.D[i] {
				s += w[i][q] * dd.D[i][q]
			}
		}
		return s
	}
	// Analytic gradient of the probe w.r.t. atom positions.
	grad := make([][3]float64, mol.NumAtoms())
	for i := range d.Grads {
		for _, e := range d.Grads[i] {
			for k := 0; k < 3; k++ {
				grad[e.atom][k] += w[i][e.q] * e.g[k]
			}
		}
	}
	const h = 1e-6
	for _, a := range []int{0, 2, 5, 8} {
		for k := 0; k < 3; k++ {
			sp := mol.Clone()
			sm := mol.Clone()
			sp.Pos[a][k] += h
			sm.Pos[a][k] -= h
			fd := (probe(sp) - probe(sm)) / (2 * h)
			if math.Abs(fd-grad[a][k]) > 1e-4*(1+math.Abs(fd)) {
				t.Fatalf("ACSF grad atom %d dim %d: fd=%g analytic=%g", a, k, fd, grad[a][k])
			}
		}
	}
}

func TestClassicalFFFitsAndEvaluates(t *testing.T) {
	frames := smallFrames(t, 10, 3)
	ff := NewClassicalFF(testSpecies(), 4.0, 12)
	if err := ff.Fit(frames, 1e-6); err != nil {
		t.Fatal(err)
	}
	rmse := forceRMSE(ff, frames)
	if rmse <= 0 || math.IsNaN(rmse) {
		t.Fatalf("classical RMSE = %g", rmse)
	}
	// The many-body oracle cannot be captured by pure pair terms: training
	// error stays visibly nonzero.
	if rmse < 1e-4 {
		t.Fatalf("pairwise model implausibly fit a many-body oracle (RMSE %g)", rmse)
	}
}

func TestGAPFitsBetterThanClassical(t *testing.T) {
	frames := smallFrames(t, 12, 4)
	test := smallFrames(t, 4, 99)
	ff := NewClassicalFF(testSpecies(), 4.0, 12)
	if err := ff.Fit(frames, 1e-6); err != nil {
		t.Fatal(err)
	}
	gap := NewGAPModel(DefaultACSF(testSpecies()), 4.0)
	rng := rand.New(rand.NewPCG(5, 6))
	if err := gap.Fit(frames, 24, 1e-6, rng); err != nil {
		t.Fatal(err)
	}
	rmseFF := forceRMSE(ff, test)
	rmseGAP := forceRMSE(gap, test)
	if rmseGAP >= rmseFF {
		t.Fatalf("GAP (%g) should beat classical pairwise (%g): many-body descriptors", rmseGAP, rmseFF)
	}
}

func TestBPTrainingImproves(t *testing.T) {
	frames := smallFrames(t, 8, 7)
	rng := rand.New(rand.NewPCG(8, 9))
	bp := NewBPModel(DefaultACSF(testSpecies()), []int{16, 16}, rng)
	bp.FitWhitening(frames)
	FitScaleShift(bp, frames)
	before := forceRMSE(bp, frames)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 10
	cfg.LR = 3e-3
	Train(bp, frames, cfg)
	after := forceRMSE(bp, frames)
	if after >= before {
		t.Fatalf("BP training did not improve: %g -> %g", before, after)
	}
}

func TestBPForcesMatchFiniteDifference(t *testing.T) {
	frames := smallFrames(t, 2, 11)
	rng := rand.New(rand.NewPCG(12, 13))
	bp := NewBPModel(DefaultACSF(testSpecies()), []int{8}, rng)
	bp.FitWhitening(frames)
	sys := frames[0].Sys
	_, f, _ := bp.EnergyGrad(sys, nil, true, false)
	eOf := func(s *atoms.System) float64 {
		e, _, _ := bp.EnergyGrad(s, nil, false, false)
		return e
	}
	const h = 1e-5
	for _, a := range []int{0, 3, 6} {
		for k := 0; k < 3; k++ {
			sp := sys.Clone()
			sm := sys.Clone()
			sp.Pos[a][k] += h
			sm.Pos[a][k] -= h
			fd := -(eOf(sp) - eOf(sm)) / (2 * h)
			if math.Abs(fd-f[a][k]) > 1e-4*(1+math.Abs(fd)) {
				t.Fatalf("BP force atom %d dim %d: fd=%g analytic=%g", a, k, fd, f[a][k])
			}
		}
	}
}

func TestSchNetForcesMatchFiniteDifference(t *testing.T) {
	frames := smallFrames(t, 1, 14)
	rng := rand.New(rand.NewPCG(15, 16))
	sn := NewSchNetModel(testSpecies(), 4.0, 2, 8, 4, rng)
	sys := frames[0].Sys
	_, f := sn.EnergyForces(sys)
	const h = 1e-5
	eOf := func(s *atoms.System) float64 {
		e, _ := sn.EnergyForces(s)
		return e
	}
	for _, a := range []int{0, 4, 7} {
		for k := 0; k < 3; k++ {
			sp := sys.Clone()
			sm := sys.Clone()
			sp.Pos[a][k] += h
			sm.Pos[a][k] -= h
			fd := -(eOf(sp) - eOf(sm)) / (2 * h)
			if math.Abs(fd-f[a][k]) > 1e-4*(1+math.Abs(fd)) {
				t.Fatalf("SchNet force atom %d dim %d: fd=%g analytic=%g", a, k, fd, f[a][k])
			}
		}
	}
}

func TestNequIPForcesAndEquivariance(t *testing.T) {
	frames := smallFrames(t, 1, 17)
	rng := rand.New(rand.NewPCG(18, 19))
	nq := NewNequIPModel(testSpecies(), 4.0, 2, 2, 1, 4, rng)
	sys := frames[0].Sys
	e0, f := nq.EnergyForces(sys)
	// Rotation invariance of energy.
	rot := sys.Clone()
	c, s := math.Cos(1.1), math.Sin(1.1)
	for i := range rot.Pos {
		y, z := rot.Pos[i][1], rot.Pos[i][2]
		rot.Pos[i][1] = c*y - s*z
		rot.Pos[i][2] = s*y + c*z
	}
	e1, _ := nq.EnergyForces(rot)
	if math.Abs(e0-e1) > 1e-8 {
		t.Fatalf("NequIP energy not rotation invariant: %g vs %g", e0, e1)
	}
	// Finite-difference forces.
	const h = 1e-5
	eOf := func(s *atoms.System) float64 {
		e, _ := nq.EnergyForces(s)
		return e
	}
	for _, a := range []int{0, 5} {
		for k := 0; k < 3; k++ {
			sp := sys.Clone()
			sm := sys.Clone()
			sp.Pos[a][k] += h
			sm.Pos[a][k] -= h
			fd := -(eOf(sp) - eOf(sm)) / (2 * h)
			if math.Abs(fd-f[a][k]) > 1e-4*(1+math.Abs(fd)) {
				t.Fatalf("NequIP force atom %d dim %d: fd=%g analytic=%g", a, k, fd, f[a][k])
			}
		}
	}
}

func TestMPNNReceptiveFieldGrowth(t *testing.T) {
	// An L-layer MPNN's prediction on an atom must depend on atoms up to
	// L*cutoff away — while a 1-layer model must not. This is the core
	// scalability obstruction of Sec. IV-A.
	rng := rand.New(rand.NewPCG(20, 21))
	// Chain of O atoms spaced at 2.8 A with cutoff 3.0: only adjacent atoms
	// are direct neighbors.
	build := func() *atoms.System {
		sys := atoms.NewSystem(5)
		for i := range sys.Pos {
			sys.Species[i] = units.O
			sys.Pos[i] = [3]float64{float64(i) * 2.8, 0, 0}
		}
		return sys
	}
	// The force on atom a depends on atom b iff some atomic energy E_i has
	// both a and b inside its L-hop sphere, i.e. iff hopdist(a,b) <= 2L.
	// Atom 4 is 4 hops from atom 0: a 1-layer model (2L=2) must show zero
	// influence, while a 2-layer model (2L=4) must show nonzero influence —
	// the receptive-field growth that obstructs decomposition.
	forceDiff := func(layers, atom int) float64 {
		sn := NewSchNetModel([]units.Species{units.O}, 3.0, layers, 8, 4, rng)
		sys := build()
		_, f0 := sn.EnergyForces(sys)
		moved := build()
		moved.Pos[4][1] += 0.3
		_, f1 := sn.EnergyForces(moved)
		return math.Abs(f1[atom][0]-f0[atom][0]) + math.Abs(f1[atom][1]-f0[atom][1])
	}
	// Probe atom 1, three hops from the moved atom 4: a 1-layer model
	// (2L = 2 hops) must show an exact zero, a 2-layer model (2L = 4) a
	// strictly nonzero influence.
	if d := forceDiff(1, 1); d != 0 {
		t.Fatalf("1-layer MPNN: atom 4 influenced atom 1 across 3 hops (diff %g)", d)
	}
	if d := forceDiff(1, 3); d == 0 {
		t.Fatal("1-layer MPNN: adjacent influence missing")
	}
	if d := forceDiff(2, 1); d == 0 {
		t.Fatal("2-layer MPNN: receptive field should reach 3 hops (<= 2L)")
	}
}

func TestSchNetTrainingImproves(t *testing.T) {
	frames := smallFrames(t, 6, 22)
	rng := rand.New(rand.NewPCG(23, 24))
	sn := NewSchNetModel(testSpecies(), 4.0, 2, 8, 4, rng)
	FitScaleShift(sn, frames)
	before := forceRMSE(sn, frames)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 8
	Train(sn, frames, cfg)
	after := forceRMSE(sn, frames)
	if after >= before {
		t.Fatalf("SchNet training did not improve: %g -> %g", before, after)
	}
}
