package baselines

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/ad"
	"repro/internal/atoms"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/units"
)

// BPModel is a Behler-Parrinello / ANI / DeepMD-style invariant local
// potential: atom-centered symmetry-function descriptors fed to one MLP per
// species, summed into atomic energies. Strictly local and scalable, but
// limited to invariant features — the first-generation MLIP family of
// Tables I-II.
type BPModel struct {
	ACSF   ACSFParams
	Params *nn.ParamSet
	idx    *atoms.SpeciesIndex
	mlps   []*nn.MLP

	EnergyScale float64
	EnergyShift []float64
	// descriptor whitening, fitted from training data
	mean, invStd []float64
}

// NewBPModel builds a per-species MLP model on the given descriptors.
func NewBPModel(acsf ACSFParams, hidden []int, rng *rand.Rand) *BPModel {
	idx := atoms.NewSpeciesIndex(acsf.Species)
	m := &BPModel{
		ACSF:        acsf,
		Params:      nn.NewParamSet(),
		idx:         idx,
		EnergyScale: 1,
		EnergyShift: make([]float64, idx.Len()),
		mean:        make([]float64, acsf.Dim()),
		invStd:      ones(acsf.Dim()),
	}
	sizes := append([]int{acsf.Dim()}, hidden...)
	sizes = append(sizes, 1)
	for t := 0; t < idx.Len(); t++ {
		m.mlps = append(m.mlps, nn.NewMLP(m.Params, rng, fmt.Sprintf("bp.%s", units.Name(acsf.Species[t])), sizes, true))
	}
	return m
}

func ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// FitWhitening sets descriptor normalization from training frames.
func (m *BPModel) FitWhitening(frames []*atoms.Frame) {
	dim := m.ACSF.Dim()
	sum := make([]float64, dim)
	sumSq := make([]float64, dim)
	n := 0
	for _, f := range frames {
		d := m.ACSF.Compute(f.Sys)
		for _, row := range d.D {
			for q, v := range row {
				sum[q] += v
				sumSq[q] += v * v
			}
			n++
		}
	}
	for q := 0; q < dim; q++ {
		mu := sum[q] / float64(n)
		va := sumSq[q]/float64(n) - mu*mu
		m.mean[q] = mu
		if va > 1e-10 {
			m.invStd[q] = 1 / math.Sqrt(va)
		} else {
			m.invStd[q] = 1
		}
	}
}

// EnergyGrad implements the shared trainer contract: evaluate at positions
// displaced by disp (len 3N, may be nil), returning predicted energy,
// forces (when wantForces), and the parameter-gradient binder (when train).
func (m *BPModel) EnergyGrad(sys *atoms.System, disp []float64, wantForces, train bool) (float64, [][3]float64, *nn.Binder) {
	work := sys
	if disp != nil {
		work = sys.Clone()
		for i := range work.Pos {
			for k := 0; k < 3; k++ {
				work.Pos[i][k] += disp[3*i+k]
			}
		}
	}
	desc := m.ACSF.Compute(work)
	n := work.NumAtoms()
	dim := m.ACSF.Dim()

	tape := ad.NewTape(tensor.F64, tensor.F64)
	b := nn.NewBinder(tape, train)
	// Group atoms by species for per-species MLP application.
	byType := make([][]int, m.idx.Len())
	for i, sp := range work.Species {
		t := m.idx.Index(sp)
		byType[t] = append(byType[t], i)
	}
	var energy float64
	// descLeaves[t] retains the leaf for force chaining.
	descLeaves := make([]*ad.Value, m.idx.Len())
	outs := make([]*ad.Value, m.idx.Len())
	var eAcc *ad.Value
	for t, idxs := range byType {
		if len(idxs) == 0 {
			continue
		}
		dm := tensor.New(len(idxs), dim)
		for r, i := range idxs {
			for q := 0; q < dim; q++ {
				dm.Data[r*dim+q] = (desc.D[i][q] - m.mean[q]) * m.invStd[q]
			}
		}
		leaf := tape.Leaf(dm, true)
		descLeaves[t] = leaf
		out := m.mlps[t].Apply(b, leaf) // [n_t, 1]
		outs[t] = out
		s := tape.SumAll(out)
		if eAcc == nil {
			eAcc = s
		} else {
			eAcc = tape.Add(eAcc, s)
		}
	}
	if eAcc == nil {
		return 0, make([][3]float64, n), b
	}
	eAcc = tape.Scale(eAcc, m.EnergyScale)
	tape.Backward(eAcc)
	energy = eAcc.T.Data[0]
	for _, sp := range work.Species {
		energy += m.EnergyShift[m.idx.Index(sp)]
	}
	var forces [][3]float64
	if wantForces {
		forces = make([][3]float64, n)
		// Chain rule through descriptor gradients: dE/dr_a = sum_i,q
		// gD[i][q] * dD_iq/dr_a (gD already includes whitening? No: the leaf
		// holds whitened descriptors, so gLeaf = dE/dWhitened; chain the
		// invStd factor).
		for t, idxs := range byType {
			if len(idxs) == 0 {
				continue
			}
			g := descLeaves[t].Grad()
			for r, i := range idxs {
				for _, e := range desc.Grads[i] {
					coef := g.Data[r*dim+e.q] * m.invStd[e.q]
					for k := 0; k < 3; k++ {
						// forces = -dE/dr.
						forces[e.atom][k] -= coef * e.g[k]
					}
				}
			}
		}
	}
	return energy, forces, b
}

// EnergyForces evaluates the model.
func (m *BPModel) EnergyForces(sys *atoms.System) (float64, [][3]float64) {
	e, f, _ := m.EnergyGrad(sys, nil, true, false)
	return e, f
}

// ParamSet exposes the trainable parameters.
func (m *BPModel) ParamSet() *nn.ParamSet { return m.Params }

// SetScaleShift installs energy normalization.
func (m *BPModel) SetScaleShift(scale float64, shift []float64) {
	m.EnergyScale = scale
	copy(m.EnergyShift, shift)
}

// SpeciesIndex exposes the type system.
func (m *BPModel) SpeciesIndex() *atoms.SpeciesIndex { return m.idx }

// Name identifies the family.
func (m *BPModel) Name() string { return "bp-invariant" }
