package baselines

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/ad"
	"repro/internal/atoms"
	"repro/internal/neighbor"
	"repro/internal/nn"
	"repro/internal/o3"
	"repro/internal/tensor"
	"repro/internal/units"
)

// SchNetModel is an invariant message-passing network: per-atom scalar
// features updated by continuous-filter convolutions over neighbors. Each
// layer widens the receptive field by one cutoff — the property that makes
// MPNNs hard to decompose (Sec. IV-A).
type SchNetModel struct {
	Species  []units.Species
	Cutoff   float64
	Layers   int
	Width    int
	NumBasis int

	Params *nn.ParamSet
	idx    *atoms.SpeciesIndex
	cuts   *neighbor.CutoffTable

	embed   *tensor.Tensor // [width, S]
	filters []*nn.MLP      // radial filter generators
	updates []*nn.MLP      // feature updates
	readout *nn.MLP

	EnergyScale float64
	EnergyShift []float64
}

// NewSchNetModel builds the invariant MPNN.
func NewSchNetModel(species []units.Species, cutoff float64, layers, width, nbasis int, rng *rand.Rand) *SchNetModel {
	idx := atoms.NewSpeciesIndex(species)
	m := &SchNetModel{
		Species: species, Cutoff: cutoff, Layers: layers, Width: width, NumBasis: nbasis,
		Params: nn.NewParamSet(), idx: idx,
		cuts:        neighbor.NewCutoffTable(idx, cutoff),
		EnergyScale: 1,
		EnergyShift: make([]float64, idx.Len()),
	}
	m.embed = tensor.New(width, idx.Len())
	for i := range m.embed.Data {
		m.embed.Data[i] = rng.NormFloat64() * 0.5
	}
	m.Params.Add("schnet.embed", m.embed)
	for l := 0; l < layers; l++ {
		m.filters = append(m.filters, nn.NewMLP(m.Params, rng, fmt.Sprintf("schnet.filter%d", l), []int{nbasis, width, width}, true))
		m.updates = append(m.updates, nn.NewMLP(m.Params, rng, fmt.Sprintf("schnet.update%d", l), []int{width, width, width}, true))
	}
	m.readout = nn.NewMLP(m.Params, rng, "schnet.readout", []int{width, width / 2, 1}, true)
	return m
}

// EnergyGrad implements the shared trainer contract (see BPModel).
func (m *SchNetModel) EnergyGrad(sys *atoms.System, disp []float64, wantForces, train bool) (float64, [][3]float64, *nn.Binder) {
	work := applyDisp(sys, disp)
	pairs := neighbor.Build(work, m.cuts)
	n := work.NumAtoms()
	tape := ad.NewTape(tensor.F64, tensor.F64)
	b := nn.NewBinder(tape, train)

	rvec, r, env := pairGeometry(tape, pairs)
	bes := tape.Bessel(r, pairs.Cut, m.NumBasis)
	besCut := tape.MulBroadcastLast(bes, env)

	// One-hot species embedding.
	oneHot := tensor.New(n, m.idx.Len())
	for i, sp := range work.Species {
		oneHot.Data[i*m.idx.Len()+m.idx.Index(sp)] = 1
	}
	h := tape.Linear(tape.Const(oneHot), b.Bind(m.embed), nil) // [N, width]

	norm := 1 / math.Sqrt(20.0)
	for l := 0; l < m.Layers; l++ {
		w := m.filters[l].Apply(b, besCut) // [Z, width]
		hj := tape.GatherRows(h, pairs.J)  // [Z, width]
		msg := tape.Mul(w, hj)
		agg := tape.Scale(tape.ScatterAddRows(msg, pairs.I, n), norm)
		upd := m.updates[l].Apply(b, agg)
		h = tape.Add(h, upd)
	}
	eAtoms := m.readout.Apply(b, h) // [N,1]
	eSum := tape.Scale(tape.SumAll(eAtoms), m.EnergyScale)
	tape.Backward(eSum)

	energy := eSum.T.Data[0]
	for _, sp := range work.Species {
		energy += m.EnergyShift[m.idx.Index(sp)]
	}
	var forces [][3]float64
	if wantForces {
		forces = assembleForces(rvec, pairs, n)
	}
	return energy, forces, b
}

// EnergyForces evaluates the model.
func (m *SchNetModel) EnergyForces(sys *atoms.System) (float64, [][3]float64) {
	e, f, _ := m.EnergyGrad(sys, nil, true, false)
	return e, f
}

// ParamSet exposes trainable parameters.
func (m *SchNetModel) ParamSet() *nn.ParamSet { return m.Params }

// SetScaleShift installs energy normalization.
func (m *SchNetModel) SetScaleShift(scale float64, shift []float64) {
	m.EnergyScale = scale
	copy(m.EnergyShift, shift)
}

// SpeciesIndex exposes the type system.
func (m *SchNetModel) SpeciesIndex() *atoms.SpeciesIndex { return m.idx }

// Name identifies the family.
func (m *SchNetModel) Name() string { return "schnet-mpnn" }

// ReceptiveField returns the receptive-field radius: layers * cutoff.
func (m *SchNetModel) ReceptiveField() float64 { return float64(m.Layers) * m.Cutoff }

// NequIPModel is an equivariant message-passing network: per-*atom*
// equivariant features updated by tensor-product messages from neighbors.
// It shares Allegro's accuracy class (Table I) but, being node-based, its
// receptive field grows with depth, which obstructs spatial decomposition —
// the motivating contrast of the paper.
type NequIPModel struct {
	Species  []units.Species
	Cutoff   float64
	Layers   int
	Channels int
	LMax     int
	NumBasis int

	Params *nn.ParamSet
	idx    *atoms.SpeciesIndex
	cuts   *neighbor.CutoffTable

	embed   *tensor.Tensor // [channels, S]
	radials []*nn.MLP      // radial weight generators
	tpWts   []*tensor.Tensor
	tps     []*o3.TensorProduct
	selfs   []*tensor.Tensor // self-interaction channel mixers [C,C]
	readout *nn.MLP

	EnergyScale float64
	EnergyShift []float64
}

// NewNequIPModel builds the equivariant MPNN.
func NewNequIPModel(species []units.Species, cutoff float64, layers, channels, lmax, nbasis int, rng *rand.Rand) *NequIPModel {
	idx := atoms.NewSpeciesIndex(species)
	m := &NequIPModel{
		Species: species, Cutoff: cutoff, Layers: layers, Channels: channels, LMax: lmax, NumBasis: nbasis,
		Params: nn.NewParamSet(), idx: idx,
		cuts:        neighbor.NewCutoffTable(idx, cutoff),
		EnergyScale: 1,
		EnergyShift: make([]float64, idx.Len()),
	}
	m.embed = tensor.New(channels, idx.Len())
	for i := range m.embed.Data {
		m.embed.Data[i] = rng.NormFloat64() * 0.5
	}
	m.Params.Add("nequip.embed", m.embed)
	full := o3.FullIrreps(lmax)
	sph := o3.SphericalIrreps(lmax)
	for l := 0; l < layers; l++ {
		in := full
		if l == 0 {
			in = o3.Irreps{{L: 0, P: o3.Even}}
		}
		tp := o3.NewTensorProduct(in, sph, full)
		m.tps = append(m.tps, tp)
		w := tensor.New(tp.NumPaths())
		for i := range w.Data {
			w.Data[i] = 1 + 0.1*rng.NormFloat64()
		}
		m.Params.Add(fmt.Sprintf("nequip.tpw%d", l), w)
		m.tpWts = append(m.tpWts, w)
		m.radials = append(m.radials, nn.NewMLP(m.Params, rng, fmt.Sprintf("nequip.radial%d", l), []int{nbasis, 16, channels}, true))
		sw := tensor.New(channels, channels)
		bound := math.Sqrt(3.0 / float64(channels))
		for i := range sw.Data {
			sw.Data[i] = (rng.Float64()*2 - 1) * bound
		}
		m.Params.Add(fmt.Sprintf("nequip.self%d", l), sw)
		m.selfs = append(m.selfs, sw)
	}
	m.readout = nn.NewMLP(m.Params, rng, "nequip.readout", []int{channels, 16, 1}, true)
	return m
}

// EnergyGrad implements the shared trainer contract.
func (m *NequIPModel) EnergyGrad(sys *atoms.System, disp []float64, wantForces, train bool) (float64, [][3]float64, *nn.Binder) {
	work := applyDisp(sys, disp)
	pairs := neighbor.Build(work, m.cuts)
	n := work.NumAtoms()
	tape := ad.NewTape(tensor.F64, tensor.F64)
	b := nn.NewBinder(tape, train)

	rvec, r, env := pairGeometry(tape, pairs)
	bes := tape.Bessel(r, pairs.Cut, m.NumBasis)
	besCut := tape.MulBroadcastLast(bes, env)
	sph := tape.SphHarm(rvec, m.LMax)

	oneHot := tensor.New(n, m.idx.Len())
	for i, sp := range work.Species {
		oneHot.Data[i*m.idx.Len()+m.idx.Index(sp)] = 1
	}
	h0 := tape.Linear(tape.Const(oneHot), b.Bind(m.embed), nil) // [N, C] scalars
	// Node features as [N, C, width] strided tensors.
	v := tape.Reshape(h0, n, m.Channels, 1) // scalar irrep width 1
	norm := 1 / math.Sqrt(20.0)
	for l := 0; l < m.Layers; l++ {
		tp := m.tps[l]
		// Gather neighbor features onto pairs, tensor-product with the pair
		// spherical harmonics, weight radially, and aggregate to centers.
		vj := tape.GatherRows(v, pairs.J) // [Z, C, inW]
		sphPairs := broadcastChannels(tape, sph, m.Channels)
		msg := tape.TensorProduct(tp, vj, sphPairs, b.Bind(m.tpWts[l]), nil) // [Z, C, outW]
		rw := m.radials[l].Apply(b, besCut)                                  // [Z, C]
		rwEnv := tape.MulBroadcastLast(rw, env)
		msg = tape.MulBroadcastLast(msg, rwEnv)
		agg := tape.Scale(tape.ScatterAddRows(msg, pairs.I, n), norm) // [N, C, outW]
		v = mixChannels(tape, b, agg, m.selfs[l])
	}
	// Readout from scalar channel block.
	lo, hi := m.tps[m.Layers-1].Out.Block(m.tps[m.Layers-1].Out.ScalarIndex())
	scal := tape.Reshape(tape.SliceLast(v, lo, hi), n, m.Channels)
	eAtoms := m.readout.Apply(b, scal)
	eSum := tape.Scale(tape.SumAll(eAtoms), m.EnergyScale)
	tape.Backward(eSum)

	energy := eSum.T.Data[0]
	for _, sp := range work.Species {
		energy += m.EnergyShift[m.idx.Index(sp)]
	}
	var forces [][3]float64
	if wantForces {
		forces = assembleForces(rvec, pairs, n)
	}
	return energy, forces, b
}

// EnergyForces evaluates the model.
func (m *NequIPModel) EnergyForces(sys *atoms.System) (float64, [][3]float64) {
	e, f, _ := m.EnergyGrad(sys, nil, true, false)
	return e, f
}

// ParamSet exposes trainable parameters.
func (m *NequIPModel) ParamSet() *nn.ParamSet { return m.Params }

// SetScaleShift installs energy normalization.
func (m *NequIPModel) SetScaleShift(scale float64, shift []float64) {
	m.EnergyScale = scale
	copy(m.EnergyShift, shift)
}

// SpeciesIndex exposes the type system.
func (m *NequIPModel) SpeciesIndex() *atoms.SpeciesIndex { return m.idx }

// Name identifies the family.
func (m *NequIPModel) Name() string { return "nequip-mpnn" }

// ReceptiveField returns layers * cutoff.
func (m *NequIPModel) ReceptiveField() float64 { return float64(m.Layers) * m.Cutoff }

// --- shared helpers ---

func applyDisp(sys *atoms.System, disp []float64) *atoms.System {
	if disp == nil {
		return sys
	}
	work := sys.Clone()
	for i := range work.Pos {
		for k := 0; k < 3; k++ {
			work.Pos[i][k] += disp[3*i+k]
		}
	}
	return work
}

// pairGeometry registers the pair-vector leaf and derived distance/envelope.
func pairGeometry(tape *ad.Tape, pairs *neighbor.Pairs) (rvec, r, env *ad.Value) {
	rv := tensor.New(pairs.Len(), 3)
	for i := 0; i < pairs.Len(); i++ {
		copy(rv.Row(i), pairs.Vec[i][:])
	}
	rvec = tape.Leaf(rv, true)
	r = tape.Norm(rvec)
	env = tape.PolyCutoff(r, pairs.Cut, 6)
	return rvec, r, env
}

// assembleForces converts pair-vector gradients into per-atom forces.
func assembleForces(rvec *ad.Value, pairs *neighbor.Pairs, n int) [][3]float64 {
	forces := make([][3]float64, n)
	grad := rvec.Grad()
	if grad == nil {
		return forces
	}
	for z := 0; z < pairs.NumReal; z++ {
		i, j := pairs.I[z], pairs.J[z]
		row := grad.Row(z)
		for k := 0; k < 3; k++ {
			forces[i][k] += row[k]
			forces[j][k] -= row[k]
		}
	}
	return forces
}

// broadcastChannels replicates the [Z, W] spherical harmonics across C
// channels as [Z, C, W] (constant, no gradient needed through the copy —
// but gradients must flow back to the SH, so it is built with tape ops).
func broadcastChannels(tape *ad.Tape, sph *ad.Value, c int) *ad.Value {
	parts := make([]*ad.Value, c)
	for u := 0; u < c; u++ {
		parts[u] = sph
	}
	z := sph.T.Shape[0]
	w := sph.T.Shape[1]
	cat := tape.Concat(parts...) // [Z, C*W]
	return tape.Reshape(cat, z, c, w)
}

// mixChannels applies a per-irrep-component channel mixing [C,C] to
// features [N, C, W] (NequIP's self-interaction).
func mixChannels(tape *ad.Tape, b *nn.Binder, v *ad.Value, w *tensor.Tensor) *ad.Value {
	n, c, width := v.T.Shape[0], v.T.Shape[1], v.T.Shape[2]
	// Transpose to [N*W, C], apply Linear, transpose back. Implemented with
	// reshape/slice primitives: process each component column separately.
	var outParts []*ad.Value
	for comp := 0; comp < width; comp++ {
		col := tape.Reshape(tape.SliceLast(v, comp, comp+1), n, c) // [N, C]
		mixed := tape.Linear(col, b.Bind(w), nil)                  // [N, C]
		outParts = append(outParts, mixed)
	}
	cat := tape.Concat(outParts...) // [N, width*C] with comp-major order
	// Rearrange [N, width, C] -> want [N, C, width]: use gather on rows is
	// not applicable; instead build with SliceLast per channel.
	wc := tape.Reshape(cat, n*width, c)
	var chanParts []*ad.Value
	for u := 0; u < c; u++ {
		chanParts = append(chanParts, tape.SliceLast(wc, u, u+1)) // [N*width, 1]
	}
	all := tape.Concat(chanParts...) // [N*width, C]
	return reorderNWC(tape, all, n, width, c)
}

// reorderNWC turns [N*width, C] (width-major within each n) into
// [N, C, width].
func reorderNWC(tape *ad.Tape, x *ad.Value, n, width, c int) *ad.Value {
	// Build a gather index mapping output rows (n, c) to input rows.
	// Output layout [N, C, width]: element (i, u, comp) should equal
	// x[(i*width+comp), u]. Achieve via GatherRows on x reshaped so that
	// each (i, comp) row holds C values, then slice/concat per channel.
	idx := make([]int, n*c*width)
	// We gather scalar rows from a [N*width*C, 1] view.
	flat := tape.Reshape(x, n*width*c, 1)
	for i := 0; i < n; i++ {
		for u := 0; u < c; u++ {
			for comp := 0; comp < width; comp++ {
				out := (i*c+u)*width + comp
				in := (i*width+comp)*c + u
				idx[out] = in
			}
		}
	}
	g := tape.GatherRows(flat, idx)
	return tape.Reshape(g, n, c, width)
}
