package baselines

import (
	"math"
	"math/rand/v2"

	"repro/internal/atoms"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Trainable is the contract the shared gradient trainer needs: a parameter
// set, an energy normalization, and a training-mode evaluation at optionally
// displaced positions (the displacement powers the R-operator force-loss
// gradient, exactly as in the Allegro trainer).
type Trainable interface {
	ParamSet() *nn.ParamSet
	SetScaleShift(scale float64, shift []float64)
	SpeciesIndex() *atoms.SpeciesIndex
	EnergyGrad(sys *atoms.System, disp []float64, wantForces, train bool) (float64, [][3]float64, *nn.Binder)
}

// TrainConfig mirrors core.TrainConfig for the baseline families.
type TrainConfig struct {
	Epochs       int
	BatchSize    int
	LR           float64
	ForceWeight  float64
	EnergyWeight float64
	GradClip     float64
	Seed         uint64
}

// DefaultTrainConfig returns the shared defaults.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Epochs: 30, BatchSize: 4, LR: 2e-3,
		ForceWeight: 1.0, EnergyWeight: 0.01, GradClip: 100,
	}
}

// FitScaleShift sets energy normalization from training statistics (same
// protocol as the Allegro trainer).
func FitScaleShift(m Trainable, frames []*atoms.Frame) {
	idx := m.SpeciesIndex()
	s := idx.Len()
	a := tensor.New(len(frames), s)
	b := tensor.New(len(frames), 1)
	for fi, f := range frames {
		for _, sp := range f.Sys.Species {
			a.Data[fi*s+idx.Index(sp)]++
		}
		b.Data[fi] = f.Energy
	}
	shift := make([]float64, s)
	if mu, err := tensor.LeastSquares(a, b, 1e-8); err == nil {
		for i := 0; i < s; i++ {
			shift[i] = mu.Data[i]
		}
	}
	var sum float64
	var cnt int
	for _, f := range frames {
		for _, fc := range f.Forces {
			sum += fc[0]*fc[0] + fc[1]*fc[1] + fc[2]*fc[2]
			cnt += 3
		}
	}
	scale := 1.0
	if cnt > 0 && sum > 0 {
		scale = math.Sqrt(sum / float64(cnt))
	}
	m.SetScaleShift(scale, shift)
}

// Train runs the shared loop: scale/shift fit, shuffled epochs, Adam steps
// with energy + R-operator force gradients. Returns the last epoch loss.
func Train(m Trainable, frames []*atoms.Frame, cfg TrainConfig) float64 {
	FitScaleShift(m, frames)
	opt := nn.NewAdam(cfg.LR)
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xBA5E))
	order := make([]int, len(frames))
	for i := range order {
		order[i] = i
	}
	last := 0.0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		total := 0.0
		nb := 0
		for at := 0; at < len(order); at += cfg.BatchSize {
			end := at + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			var batch []*atoms.Frame
			for _, i := range order[at:end] {
				batch = append(batch, frames[i])
			}
			total += step(m, batch, cfg, opt)
			nb++
		}
		last = total / float64(nb)
	}
	return last
}

func step(m Trainable, frames []*atoms.Frame, cfg TrainConfig, opt *nn.Adam) float64 {
	ps := m.ParamSet()
	acc := nn.NewGradAccumulator()
	loss := 0.0
	for _, f := range frames {
		nat := f.NumAtoms()
		e, forces, binder := m.EnergyGrad(f.Sys, nil, true, true)
		de := (e - f.Energy) / float64(nat)
		du := make([]float64, 3*nat)
		floss := 0.0
		maxU := 0.0
		for i := 0; i < nat; i++ {
			for k := 0; k < 3; k++ {
				d := forces[i][k] - f.Forces[i][k]
				du[3*i+k] = d
				floss += d * d
				if a := math.Abs(d); a > maxU {
					maxU = a
				}
			}
		}
		floss /= float64(3 * nat)
		loss += cfg.ForceWeight*floss + cfg.EnergyWeight*de*de

		if cfg.EnergyWeight > 0 {
			coefE := cfg.EnergyWeight * 2 * de / float64(nat)
			for _, p := range ps.List() {
				if g := binder.Grad(p.T); g != nil {
					acc.AddScaled(p.T, g, coefE)
				}
			}
		}
		if cfg.ForceWeight > 0 && maxU > 0 {
			h := 1e-4 / maxU
			disp := make([]float64, 3*nat)
			for i := range du {
				disp[i] = h * du[i]
			}
			_, _, bp := m.EnergyGrad(f.Sys, disp, false, true)
			for i := range disp {
				disp[i] = -disp[i]
			}
			_, _, bm := m.EnergyGrad(f.Sys, disp, false, true)
			coefF := -cfg.ForceWeight * 2 / (3 * float64(nat)) / (2 * h)
			for _, p := range ps.List() {
				gp := bp.Grad(p.T)
				gm := bm.Grad(p.T)
				if gp == nil || gm == nil {
					continue
				}
				diff := gp.Clone()
				for i := range diff.Data {
					diff.Data[i] -= gm.Data[i]
				}
				acc.AddScaled(p.T, diff, coefF)
			}
		}
	}
	acc.Scale(1 / float64(len(frames)))
	if cfg.GradClip > 0 {
		acc.ClipNorm(cfg.GradClip)
	}
	opt.Step(ps, acc.Grad)
	return loss / float64(len(frames))
}
