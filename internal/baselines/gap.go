package baselines

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/atoms"
	"repro/internal/tensor"
)

// GAPModel is a Gaussian-approximation-potential-style kernel model: atomic
// energies are squared-exponential kernel expansions over representative
// descriptor points (sparse GP regression), fitted to energies and forces
// by regularized linear least squares. Invariant and local, like GAP/ACE in
// Table I's middle tier.
type GAPModel struct {
	ACSF        ACSFParams
	idx         *atoms.SpeciesIndex
	LengthScale float64
	// Representative points grouped per species: reps[t] is [m][dim].
	reps  [][][]float64
	alpha [][]float64 // per species, per representative
	shift []float64   // per-species baseline
}

// NewGAPModel builds an unfitted kernel model.
func NewGAPModel(acsf ACSFParams, lengthScale float64) *GAPModel {
	idx := atoms.NewSpeciesIndex(acsf.Species)
	return &GAPModel{
		ACSF:        acsf,
		idx:         idx,
		LengthScale: lengthScale,
		reps:        make([][][]float64, idx.Len()),
		alpha:       make([][]float64, idx.Len()),
		shift:       make([]float64, idx.Len()),
	}
}

// kernel evaluates k(x,y) and its gradient with respect to x.
func (g *GAPModel) kernel(x, y []float64) (float64, []float64) {
	d2 := 0.0
	for q := range x {
		d := x[q] - y[q]
		d2 += d * d
	}
	l2 := g.LengthScale * g.LengthScale
	k := math.Exp(-d2 / (2 * l2))
	grad := make([]float64, len(x))
	for q := range x {
		grad[q] = -k * (x[q] - y[q]) / l2
	}
	return k, grad
}

// Fit selects nReps representative environments per species at random from
// the training frames and solves the energy+force least-squares problem.
func (g *GAPModel) Fit(frames []*atoms.Frame, nReps int, ridge float64, rng *rand.Rand) error {
	// Collect candidate descriptors per species.
	descCache := make([]*Descriptors, len(frames))
	perSpecies := make([][][2]int, g.idx.Len())
	for fi, f := range frames {
		descCache[fi] = g.ACSF.Compute(f.Sys)
		for i, sp := range f.Sys.Species {
			t := g.idx.Index(sp)
			perSpecies[t] = append(perSpecies[t], [2]int{fi, i})
		}
	}
	nCols := 0
	colBase := make([]int, g.idx.Len())
	for t := range perSpecies {
		m := nReps
		if m > len(perSpecies[t]) {
			m = len(perSpecies[t])
		}
		rng.Shuffle(len(perSpecies[t]), func(a, b int) {
			perSpecies[t][a], perSpecies[t][b] = perSpecies[t][b], perSpecies[t][a]
		})
		g.reps[t] = nil
		for r := 0; r < m; r++ {
			fi, i := perSpecies[t][r][0], perSpecies[t][r][1]
			g.reps[t] = append(g.reps[t], append([]float64(nil), descCache[fi].D[i]...))
		}
		colBase[t] = nCols
		nCols += len(g.reps[t])
	}
	if nCols == 0 {
		return fmt.Errorf("baselines: GAP fit with no representative points")
	}
	nShiftBase := nCols
	nCols += g.idx.Len()

	var rows int
	for _, f := range frames {
		rows += 1 + 3*f.NumAtoms()
	}
	a := tensor.New(rows, nCols)
	b := tensor.New(rows, 1)
	row := 0
	for fi, f := range frames {
		desc := descCache[fi]
		eRow := a.Row(row)
		for i, sp := range f.Sys.Species {
			t := g.idx.Index(sp)
			for ri, rep := range g.reps[t] {
				k, _ := g.kernel(desc.D[i], rep)
				eRow[colBase[t]+ri] += k
			}
			eRow[nShiftBase+t]++
		}
		b.Data[row] = f.Energy
		row++
		fBase := row
		for i, sp := range f.Sys.Species {
			t := g.idx.Index(sp)
			for ri, rep := range g.reps[t] {
				_, kg := g.kernel(desc.D[i], rep)
				// dE/dr_a = sum_q kg[q] dD_iq/dr_a; force row = -dE/dr.
				for _, e := range desc.Grads[i] {
					for d := 0; d < 3; d++ {
						a.Data[(fBase+3*e.atom+d)*nCols+colBase[t]+ri] -= kg[e.q] * e.g[d]
					}
				}
			}
		}
		for i := 0; i < f.NumAtoms(); i++ {
			for d := 0; d < 3; d++ {
				b.Data[fBase+3*i+d] = f.Forces[i][d]
			}
		}
		row += 3 * f.NumAtoms()
	}
	x, err := tensor.LeastSquares(a, b, ridge)
	if err != nil {
		return err
	}
	for t := range g.reps {
		g.alpha[t] = make([]float64, len(g.reps[t]))
		for ri := range g.reps[t] {
			g.alpha[t][ri] = x.Data[colBase[t]+ri]
		}
		g.shift[t] = x.Data[nShiftBase+t]
	}
	return nil
}

// EnergyForces evaluates the fitted kernel model.
func (g *GAPModel) EnergyForces(sys *atoms.System) (float64, [][3]float64) {
	desc := g.ACSF.Compute(sys)
	e := 0.0
	forces := make([][3]float64, sys.NumAtoms())
	for i, sp := range sys.Species {
		t := g.idx.Index(sp)
		e += g.shift[t]
		for ri, rep := range g.reps[t] {
			k, kg := g.kernel(desc.D[i], rep)
			al := g.alpha[t][ri]
			e += al * k
			for _, ge := range desc.Grads[i] {
				for d := 0; d < 3; d++ {
					forces[ge.atom][d] -= al * kg[ge.q] * ge.g[d]
				}
			}
		}
	}
	return e, forces
}

// Name identifies the family.
func (g *GAPModel) Name() string { return "gap-kernel" }
