package baselines

import (
	"repro/internal/atoms"
	"repro/internal/neighbor"
	"repro/internal/tensor"
	"repro/internal/units"
)

// ClassicalFF is a best-case pairwise force field: per-species-pair energy
// curves represented as piecewise-linear splines, fitted to reference
// energies and forces by linear least squares. Any fixed-form classical
// force field (LJ, Buckingham, Morse) is a special case of this family, so
// its fitted error is a *lower bound* on classical pairwise error — which is
// exactly the comparison Table I makes (classical FF ~227 meV/A vs
// equivariant ~3 meV/A on rMD17).
type ClassicalFF struct {
	Species []units.Species
	Cutoff  float64
	NKnots  int
	idx     *atoms.SpeciesIndex
	cuts    *neighbor.CutoffTable
	knots   []float64
	coef    [][]float64 // [pairType][knot]
	shift   []float64   // per-species energy shift
}

// NewClassicalFF builds an unfitted pairwise model.
func NewClassicalFF(species []units.Species, cutoff float64, nKnots int) *ClassicalFF {
	idx := atoms.NewSpeciesIndex(species)
	ff := &ClassicalFF{
		Species: species, Cutoff: cutoff, NKnots: nKnots,
		idx:  idx,
		cuts: neighbor.NewCutoffTable(idx, cutoff),
	}
	ff.knots = make([]float64, nKnots)
	for k := range ff.knots {
		ff.knots[k] = 0.4 + (cutoff-0.4)*float64(k)/float64(nKnots-1)
	}
	s := idx.Len()
	ff.coef = make([][]float64, s*(s+1)/2)
	for i := range ff.coef {
		ff.coef[i] = make([]float64, nKnots)
	}
	ff.shift = make([]float64, s)
	return ff
}

// hat evaluates the piecewise-linear basis function k at r and its slope.
func (ff *ClassicalFF) hat(k int, r float64) (float64, float64) {
	h := ff.knots[1] - ff.knots[0]
	t := (r - ff.knots[k]) / h
	switch {
	case t <= -1 || t >= 1:
		return 0, 0
	case t < 0:
		return 1 + t, 1 / h
	default:
		return 1 - t, -1 / h
	}
}

// nParams returns the number of spline coefficients.
func (ff *ClassicalFF) nParams() int { return len(ff.coef) * ff.NKnots }

// Fit solves the linear least-squares problem over energies and forces.
func (ff *ClassicalFF) Fit(frames []*atoms.Frame, ridge float64) error {
	np := ff.nParams()
	s := ff.idx.Len()
	cols := np + s // spline coefficients + per-species shifts
	var rows int
	for _, f := range frames {
		rows += 1 + 3*f.NumAtoms()
	}
	a := tensor.New(rows, cols)
	b := tensor.New(rows, 1)
	row := 0
	for _, f := range frames {
		pairs := neighbor.Build(f.Sys, ff.cuts)
		// Energy row.
		eRow := a.Row(row)
		for z := 0; z < pairs.NumReal; z++ {
			pt := ff.pairType(f.Sys, pairs.I[z], pairs.J[z])
			for k := 0; k < ff.NKnots; k++ {
				v, _ := ff.hat(k, pairs.Dist[z])
				eRow[pt*ff.NKnots+k] += 0.5 * v
			}
		}
		for _, sp := range f.Sys.Species {
			eRow[np+ff.idx.Index(sp)]++
		}
		b.Data[row] = f.Energy
		row++
		// Force rows: F = -dE/dr.
		fBase := row
		for z := 0; z < pairs.NumReal; z++ {
			i, j := pairs.I[z], pairs.J[z]
			pt := ff.pairType(f.Sys, i, j)
			r := pairs.Dist[z]
			v := pairs.Vec[z]
			for k := 0; k < ff.NKnots; k++ {
				_, dv := ff.hat(k, r)
				c := pt*ff.NKnots + k
				for d := 0; d < 3; d++ {
					// dE/dr_j += 0.5*dv*v[d]/r ; force = -that.
					a.Data[(fBase+3*j+d)*cols+c] -= 0.5 * dv * v[d] / r
					a.Data[(fBase+3*i+d)*cols+c] += 0.5 * dv * v[d] / r
				}
			}
		}
		for i := 0; i < f.NumAtoms(); i++ {
			for d := 0; d < 3; d++ {
				b.Data[fBase+3*i+d] = f.Forces[i][d]
			}
		}
		row += 3 * f.NumAtoms()
	}
	x, err := tensor.LeastSquares(a, b, ridge)
	if err != nil {
		return err
	}
	for pt := range ff.coef {
		for k := 0; k < ff.NKnots; k++ {
			ff.coef[pt][k] = x.Data[pt*ff.NKnots+k]
		}
	}
	for t := 0; t < s; t++ {
		ff.shift[t] = x.Data[np+t]
	}
	return nil
}

func (ff *ClassicalFF) pairType(sys *atoms.System, i, j int) int {
	return pairTypeIndex(ff.idx.Index(sys.Species[i]), ff.idx.Index(sys.Species[j]), ff.idx.Len())
}

// EnergyForces evaluates the fitted pair potential.
func (ff *ClassicalFF) EnergyForces(sys *atoms.System) (float64, [][3]float64) {
	pairs := neighbor.Build(sys, ff.cuts)
	e := 0.0
	forces := make([][3]float64, sys.NumAtoms())
	for z := 0; z < pairs.NumReal; z++ {
		i, j := pairs.I[z], pairs.J[z]
		pt := ff.pairType(sys, i, j)
		r := pairs.Dist[z]
		v := pairs.Vec[z]
		var val, slope float64
		for k := 0; k < ff.NKnots; k++ {
			hv, hd := ff.hat(k, r)
			val += ff.coef[pt][k] * hv
			slope += ff.coef[pt][k] * hd
		}
		e += 0.5 * val
		fr := 0.5 * slope / r
		for d := 0; d < 3; d++ {
			forces[j][d] -= fr * v[d]
			forces[i][d] += fr * v[d]
		}
	}
	for _, sp := range sys.Species {
		e += ff.shift[ff.idx.Index(sp)]
	}
	return e, forces
}

// Name identifies the family.
func (ff *ClassicalFF) Name() string { return "classical-ff" }
