// Package baselines implements one representative interatomic potential per
// model family the paper compares against (Tables I-II):
//
//   - ClassicalFF:   best-case pairwise force field (fitted pair splines)
//   - BPModel:       Behler-Parrinello / ANI / DeepMD-style invariant
//     descriptors + per-species MLPs (strictly local, invariant)
//   - GAPModel:      kernel ridge regression on the same descriptors
//   - SchNetModel:   invariant message-passing network (non-local)
//   - NequIPModel:   equivariant message-passing network (non-local)
//
// Each family carries the inductive bias that determines its place in the
// paper's accuracy ordering; all are trained on identical oracle-labeled
// data by the shared trainer in train.go.
package baselines

import (
	"math"

	"repro/internal/atoms"
	"repro/internal/neighbor"
	"repro/internal/units"
)

// ACSFParams configures atom-centered symmetry functions: radial Gaussians
// per neighbor species plus angular cosine moments per species pair.
type ACSFParams struct {
	Species    []units.Species
	Cutoff     float64
	NRadial    int // Gaussian centers spread over (0.5, cutoff)
	Eta        float64
	AngMoments []int   // cosine powers for the angular channels
	AngCut     float64 // angular neighbor cutoff (<= Cutoff)
}

// DefaultACSF returns a compact descriptor set.
func DefaultACSF(species []units.Species) ACSFParams {
	return ACSFParams{
		Species: species, Cutoff: 4.0, NRadial: 6, Eta: 4.0,
		AngMoments: []int{1, 2}, AngCut: 3.0,
	}
}

// Dim returns the descriptor length per atom.
func (p *ACSFParams) Dim() int {
	s := len(p.Species)
	nPairTypes := s * (s + 1) / 2
	return s*p.NRadial + nPairTypes*len(p.AngMoments)
}

// descGrad is one sparse descriptor gradient entry: d D[q] / d pos[atom].
type descGrad struct {
	atom int
	q    int
	g    [3]float64
}

// Descriptors holds per-atom descriptor vectors and their position
// gradients for one structure.
type Descriptors struct {
	D     [][]float64 // [atom][q]
	Grads [][]descGrad
	// Self-gradient entries use atom == the centered atom.
}

// cosineCutoff is the Behler cutoff function and derivative.
func cosineCutoff(r, rc float64) (float64, float64) {
	if r >= rc {
		return 0, 0
	}
	x := math.Pi * r / rc
	return 0.5 * (math.Cos(x) + 1), -0.5 * math.Pi / rc * math.Sin(x)
}

// Compute evaluates descriptors and gradients for sys.
func (p *ACSFParams) Compute(sys *atoms.System) *Descriptors {
	idx := atoms.NewSpeciesIndex(p.Species)
	cuts := neighbor.NewCutoffTable(idx, p.Cutoff)
	pairs := neighbor.Build(sys, cuts)
	n := sys.NumAtoms()
	s := idx.Len()
	dim := p.Dim()
	out := &Descriptors{D: make([][]float64, n), Grads: make([][]descGrad, n)}
	for i := 0; i < n; i++ {
		out.D[i] = make([]float64, dim)
	}
	// Radial channels.
	centers := make([]float64, p.NRadial)
	for m := range centers {
		centers[m] = 0.5 + (p.Cutoff-0.7)*float64(m)/float64(p.NRadial-1)
	}
	byCenter := make([][]int, n)
	for z := 0; z < pairs.NumReal; z++ {
		byCenter[pairs.I[z]] = append(byCenter[pairs.I[z]], z)
	}
	for i := 0; i < n; i++ {
		for _, z := range byCenter[i] {
			j := pairs.J[z]
			tj := idx.Index(sys.Species[j])
			r := pairs.Dist[z]
			v := pairs.Vec[z]
			fc, dfc := cosineCutoff(r, p.Cutoff)
			for m, mu := range centers {
				q := tj*p.NRadial + m
				e := math.Exp(-p.Eta * (r - mu) * (r - mu))
				out.D[i][q] += e * fc
				dv := (-2*p.Eta*(r-mu)*e*fc + e*dfc) / r
				// d/dr_j = dv * v; d/dr_i = -dv * v.
				out.Grads[i] = append(out.Grads[i],
					descGrad{atom: j, q: q, g: [3]float64{dv * v[0], dv * v[1], dv * v[2]}},
					descGrad{atom: i, q: q, g: [3]float64{-dv * v[0], -dv * v[1], -dv * v[2]}},
				)
			}
		}
		// Angular channels: moments of cos(theta) over neighbor pairs.
		base := s * p.NRadial
		zs := byCenter[i]
		for a := 0; a < len(zs); a++ {
			for b := a + 1; b < len(zs); b++ {
				za, zb := zs[a], zs[b]
				ra, rb := pairs.Dist[za], pairs.Dist[zb]
				if ra >= p.AngCut || rb >= p.AngCut {
					continue
				}
				ja, jb := pairs.J[za], pairs.J[zb]
				ta, tb := idx.Index(sys.Species[ja]), idx.Index(sys.Species[jb])
				pt := pairTypeIndex(ta, tb, s)
				va, vb := pairs.Vec[za], pairs.Vec[zb]
				fa, dfa := cosineCutoff(ra, p.AngCut)
				fb, dfb := cosineCutoff(rb, p.AngCut)
				dot := va[0]*vb[0] + va[1]*vb[1] + va[2]*vb[2]
				cosT := dot / (ra * rb)
				// dcos/dva and dcos/dvb.
				var dca, dcb [3]float64
				for k := 0; k < 3; k++ {
					dca[k] = vb[k]/(ra*rb) - cosT*va[k]/(ra*ra)
					dcb[k] = va[k]/(ra*rb) - cosT*vb[k]/(rb*rb)
				}
				for mi, pw := range p.AngMoments {
					q := base + pt*len(p.AngMoments) + mi
					cp := math.Pow(cosT, float64(pw))
					out.D[i][q] += cp * fa * fb
					dcp := float64(pw) * math.Pow(cosT, float64(pw-1))
					var ga, gb [3]float64
					for k := 0; k < 3; k++ {
						ga[k] = dcp*dca[k]*fa*fb + cp*dfa*fb*va[k]/ra
						gb[k] = dcp*dcb[k]*fa*fb + cp*fa*dfb*vb[k]/rb
					}
					out.Grads[i] = append(out.Grads[i],
						descGrad{atom: ja, q: q, g: ga},
						descGrad{atom: jb, q: q, g: gb},
						descGrad{atom: i, q: q, g: [3]float64{-ga[0] - gb[0], -ga[1] - gb[1], -ga[2] - gb[2]}},
					)
				}
			}
		}
	}
	return out
}

// pairTypeIndex maps an unordered species-index pair to a dense index.
func pairTypeIndex(a, b, s int) int {
	if a > b {
		a, b = b, a
	}
	// Index into upper triangle.
	return a*s - a*(a-1)/2 + (b - a)
}
