package serve

import (
	"context"
	"encoding/json"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/data"
)

// TestHTTPTransport drives the full wire path — client, JSON codec,
// handler, service — and checks the responses are byte-faithful to the
// in-process API (and therefore bit-identical to the serial evaluator).
func TestHTTPTransport(t *testing.T) {
	m := testModel(t)
	svc, err := NewService(Config{Model: m, Workers: 2, MaxSteps: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(NewHTTPHandler(svc))
	defer ts.Close()
	c := &Client{Base: ts.URL, Tenant: "http-test"}

	rng := rand.New(rand.NewPCG(7, 9))
	sys := data.WaterBox(rng, 2, 2, 2)
	wantE, wantF := refEval(m, sys)

	resp, err := c.EnergyForces(context.Background(), &EnergyForcesRequest{System: specFromSystem(sys)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Energy != wantE {
		t.Fatalf("energy over HTTP %v != serial %v", resp.Energy, wantE)
	}
	for i := range wantF {
		if resp.Forces[i] != wantF[i] {
			t.Fatalf("force %d over HTTP %v != serial %v", i, resp.Forces[i], wantF[i])
		}
	}

	// Trajectory: deterministic over the wire.
	treq := TrajectoryRequest{System: specFromSystem(sys), Steps: 5, TempK: 100, Seed: 3}
	ta, err := c.Trajectory(context.Background(), &treq)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := c.Trajectory(context.Background(), &treq)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ta.Energies {
		if ta.Energies[i] != tb.Energies[i] {
			t.Fatalf("trajectory step %d differs over HTTP: %v != %v", i, ta.Energies[i], tb.Energies[i])
		}
	}

	// Stats round-trips.
	stats, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Served < 3 {
		t.Errorf("stats served %d, want >= 3", stats.Served)
	}

	// Validation errors map to 400 with a JSON error body.
	bad := EnergyForcesRequest{System: SystemSpec{Species: []int{99}, Pos: [][3]float64{{0, 0, 0}}}}
	_, err = c.EnergyForces(context.Background(), &bad)
	var se *StatusError
	if !asStatus(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("unknown species: got %v, want 400 StatusError", err)
	}
	if IsBackpressure(err) {
		t.Error("a 400 must not read as backpressure")
	}

	// Malformed JSON and unknown fields are 400s, not 500s.
	for _, body := range []string{"{not json", `{"bogus_field": 1}`} {
		hr, err := http.Post(ts.URL+"/v1/energy-forces", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		hr.Body.Close()
		if hr.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, hr.StatusCode)
		}
	}

	// Health endpoint.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", hr.StatusCode)
	}
}

// TestHTTPBackpressureMapping freezes the workers and checks the 429
// mapping (Retry-After set, IsBackpressure true), then the 503 on drain.
func TestHTTPBackpressureMapping(t *testing.T) {
	m := testModel(t)
	svc, err := NewService(Config{Model: m, Workers: 1, QueueDepth: 1, TenantInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHTTPHandler(svc))
	defer ts.Close()
	release := blockWorkers(svc)

	rng := rand.New(rand.NewPCG(7, 9))
	spec := specFromSystem(data.WaterBox(rng, 2, 2, 2))
	c := &Client{Base: ts.URL, Tenant: "bp"}

	first := make(chan error, 1)
	go func() {
		_, err := c.EnergyForces(context.Background(), &EnergyForcesRequest{System: spec})
		first <- err
	}()
	waitFor(t, "first request admitted", func() bool { return inflightCount(svc, "bp") == 1 })

	_, err = c.EnergyForces(context.Background(), &EnergyForcesRequest{System: spec})
	var se *StatusError
	if !asStatus(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("over tenant cap via HTTP: got %v, want 429", err)
	}
	if !IsBackpressure(err) {
		t.Error("429 must read as backpressure")
	}

	// Raw request to inspect Retry-After.
	body, _ := json.Marshal(EnergyForcesRequest{System: spec})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/energy-forces", strings.NewReader(string(body)))
	req.Header.Set(TenantHeader, "bp")
	hr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusTooManyRequests || hr.Header.Get("Retry-After") == "" {
		t.Errorf("want 429 with Retry-After, got %d %q", hr.StatusCode, hr.Header.Get("Retry-After"))
	}

	release()
	if err := <-first; err != nil {
		t.Fatalf("blocked request should complete: %v", err)
	}

	// Draining maps to 503 and is also backpressure to the client.
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = c.EnergyForces(context.Background(), &EnergyForcesRequest{System: spec})
	if !asStatus(err, &se) || se.Code != http.StatusServiceUnavailable || !IsBackpressure(err) {
		t.Fatalf("draining via HTTP: got %v, want 503 backpressure", err)
	}
}

func asStatus(err error, out **StatusError) bool {
	se, ok := err.(*StatusError)
	if ok {
		*out = se
	}
	return ok
}
