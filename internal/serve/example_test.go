package serve_test

import (
	"context"
	"fmt"
	"math/rand/v2"
	"net/http/httptest"

	"repro/internal/atoms"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/units"
)

// ExampleClient shows the full client workflow: stand up a service over a
// model, bind the HTTP transport, and submit an energy/forces request. The
// response is bit-identical to evaluating the same system with a serial
// core evaluator — shape bucketing and plan sharing never change the bits.
func ExampleClient() {
	cfg := core.DefaultConfig([]units.Species{units.H, units.O})
	model, err := core.New(cfg, nil, rand.New(rand.NewPCG(5, 0xA11E)))
	if err != nil {
		panic(err)
	}
	svc, err := serve.NewService(serve.Config{Model: model})
	if err != nil {
		panic(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(serve.NewHTTPHandler(svc))
	defer ts.Close()

	// One water molecule; species are atomic numbers on the wire.
	positions := [][3]float64{
		{0, 0, 0}, {0.9572, 0, 0}, {-0.2400, 0.9266, 0},
	}
	client := &serve.Client{Base: ts.URL, Tenant: "example"}
	resp, err := client.EnergyForces(context.Background(), &serve.EnergyForcesRequest{
		System: serve.SystemSpec{Species: []int{8, 1, 1}, Pos: positions},
	})
	if err != nil {
		panic(err)
	}

	// The serial reference: evaluate the same system directly on the model.
	sys := atoms.NewSystem(3)
	sys.Species = []units.Species{units.O, units.H, units.H}
	copy(sys.Pos, positions)
	ref := model.Evaluate(sys)

	fmt.Printf("forces returned: %d\n", len(resp.Forces))
	fmt.Printf("energy matches serial evaluator: %v\n", resp.Energy == ref.Energy)
	// Output:
	// forces returned: 3
	// energy matches serial evaluator: true
}
