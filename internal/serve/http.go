package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
)

// API is the transport seam: the service's typed request surface,
// independent of wire format. *Service implements it; NewHTTPHandler binds
// it to HTTP/JSON, and a gRPC transport would wrap the same interface
// without touching the service.
type API interface {
	EnergyForces(ctx context.Context, tenant string, req *EnergyForcesRequest) (*EnergyForcesResponse, error)
	Trajectory(ctx context.Context, tenant string, req *TrajectoryRequest) (*TrajectoryResponse, error)
	Stats() Stats
}

var _ API = (*Service)(nil)

// TenantHeader carries the caller's tenant identity. Requests without it
// share the "anonymous" tenant (and its in-flight cap).
const TenantHeader = "X-Allegro-Tenant"

// maxBodyBytes bounds request bodies (a generous ceiling for MaxAtoms-sized
// systems; decode failures map to 400, not resource exhaustion).
const maxBodyBytes = 64 << 20

// NewHTTPHandler binds an API to the HTTP/JSON wire format:
//
//	POST /v1/energy-forces  EnergyForcesRequest -> EnergyForcesResponse
//	POST /v1/trajectory     TrajectoryRequest   -> TrajectoryResponse
//	GET  /v1/stats          -> Stats
//	GET  /healthz           -> 200 "ok"
//
// Error mapping: validation failures are 400; queue-full and tenant-cap
// backpressure are 429 with Retry-After; draining is 503 with Retry-After;
// everything else is 500. Error bodies are {"error": "..."}.
func NewHTTPHandler(api API) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/energy-forces", func(w http.ResponseWriter, r *http.Request) {
		var req EnergyForcesRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		resp, err := api.EnergyForces(r.Context(), r.Header.Get(TenantHeader), &req)
		writeResult(w, resp, err)
	})
	mux.HandleFunc("POST /v1/trajectory", func(w http.ResponseWriter, r *http.Request) {
		var req TrajectoryRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		resp, err := api.Trajectory(r.Context(), r.Header.Get(TenantHeader), &req)
		writeResult(w, resp, err)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, api.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})
	return mux
}

func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return false
	}
	return true
}

func writeResult(w http.ResponseWriter, resp any, err error) {
	if err != nil {
		code := statusFor(err)
		if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// statusFor maps service errors onto HTTP statuses. Backpressure sentinels
// are retryable (429/503); context errors surface as 504 (the client gave
// up while the request was queued or running).
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrTenantBusy):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
