package serve

import (
	"math"
	"sync"
)

// bucketTable maps a request's real (atoms, pairs) counts onto a small set
// of padded shapes so that compiled plans — which are specific to the exact
// (Z, N) — are shared across requests instead of compiled per system size.
//
// The atom count rounds up to AtomBucket; the pair count takes the paper's
// PadFactor headroom, rounds up to PairBucket, and then joins a per-atom-
// bucket running maximum: the same PadTo running-max discipline the serial
// Evaluator applies across MD steps, applied here across tenants. Shapes
// therefore converge — after warm-up, every request of a given size class
// evaluates at one fixed shape, and the shared registry's pool stops
// growing. Padding is exact, not approximate: fake pairs carry a zero
// cutoff envelope and surplus atom rows are never gathered, so a bucketed
// evaluation is bit-identical to the unpadded serial one.
type bucketTable struct {
	atomBucket int
	pairBucket int
	padFactor  float64

	mu   sync.Mutex
	maxZ map[int]int // bucketed atom count -> running-max bucketed pair count
}

func (bt *bucketTable) init(atomBucket, pairBucket int, padFactor float64) {
	bt.atomBucket = atomBucket
	bt.pairBucket = pairBucket
	bt.padFactor = padFactor
	bt.maxZ = make(map[int]int)
}

// shape returns the padded (atoms, pairs) shape for a request with nReal
// atoms and zReal pairs, advancing the running maximum for its size class.
func (bt *bucketTable) shape(nReal, zReal int) (nB, zB int) {
	nB = roundUp(nReal, bt.atomBucket)
	zB = roundUp(int(math.Ceil(bt.padFactor*float64(zReal))), bt.pairBucket)
	bt.mu.Lock()
	if cur := bt.maxZ[nB]; cur >= zB {
		zB = cur
	} else {
		bt.maxZ[nB] = zB
	}
	bt.mu.Unlock()
	return nB, zB
}

// shapes reports the number of distinct size classes seen so far.
func (bt *bucketTable) shapes() int {
	bt.mu.Lock()
	defer bt.mu.Unlock()
	return len(bt.maxZ)
}

func roundUp(n, b int) int {
	if n <= 0 {
		return b
	}
	return (n + b - 1) / b * b
}
