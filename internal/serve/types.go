package serve

// SystemSpec is the wire representation of an atomic system. Species are
// atomic numbers (H=1, C=6, ...), positions are Angstrom, the cell is the
// orthorhombic box edge lengths (used only when PBC is set).
type SystemSpec struct {
	Species []int        `json:"species"`
	Pos     [][3]float64 `json:"positions"`
	Cell    [3]float64   `json:"cell,omitempty"`
	PBC     bool         `json:"pbc,omitempty"`
}

// Shape reports the bucketed (padded pairs, padded atoms) shape a request
// was evaluated at. Two responses with equal Shape replayed the same
// compiled-plan shape class — the observable unit of cross-tenant plan
// sharing.
type Shape struct {
	Pairs int `json:"pairs"`
	Atoms int `json:"atoms"`
}

// EnergyForcesRequest asks for one energy/forces evaluation.
type EnergyForcesRequest struct {
	System SystemSpec `json:"system"`
}

// EnergyForcesResponse carries the total potential energy (eV) and per-atom
// forces (eV/A), bit-identical to a serial core.Evaluator on the same model.
type EnergyForcesResponse struct {
	Energy float64      `json:"energy"`
	Forces [][3]float64 `json:"forces"`
	Shape  Shape        `json:"shape"`
}

// TrajectoryRequest asks for a short velocity-Verlet trajectory: Steps
// integration steps of Dt femtoseconds (default 0.5). TempK > 0 draws
// Maxwell-Boltzmann initial velocities with the deterministic Seed; TempK = 0
// starts at rest (pure NVE from the given positions).
type TrajectoryRequest struct {
	System          SystemSpec `json:"system"`
	Steps           int        `json:"steps"`
	Dt              float64    `json:"dt,omitempty"`
	TempK           float64    `json:"temp_k,omitempty"`
	Seed            uint64     `json:"seed,omitempty"`
	ReturnPositions bool       `json:"return_positions,omitempty"`
}

// TrajectoryResponse carries the potential energy after every step
// (Energies[0] is the initial evaluation, so len == Steps+1), the final
// potential energy, and — when requested — the final positions.
type TrajectoryResponse struct {
	Energies    []float64    `json:"energies"`
	FinalEnergy float64      `json:"final_energy"`
	Positions   [][3]float64 `json:"positions,omitempty"`
	Shape       Shape        `json:"shape"`
}
