package serve

import (
	"math/rand/v2"

	"repro/internal/atoms"
	"repro/internal/core"
	"repro/internal/md"
	"repro/internal/neighbor"
)

// trajectorySeedStream is the fixed second word of the trajectory PCG seed,
// making (seed -> velocity stream) a pure function of the request.
const trajectorySeedStream = 0x616c6c6567726f // "allegro"

// evalContext is one worker's private evaluation pipeline: a single-worker
// EvalScratch leased onto the service's shared plan registry, plus a
// reusable neighbor builder and pair list. Requests flow build -> bucket ->
// pad -> EvaluatePairsInto; in steady state (shapes converged, plans
// leased) the whole path is allocation-free except for the response copy.
type evalContext struct {
	s       *Service
	scratch *core.EvalScratch
	builder neighbor.Builder
	pairs   neighbor.Pairs
}

func newEvalContext(s *Service) *evalContext {
	ec := &evalContext{s: s, scratch: core.NewEvalScratch()}
	// One worker per scratch: the service parallelizes across requests, so
	// intra-request chunking would only oversubscribe cores — and the serial
	// path is the one whose plan cache leases from the shared registry.
	ec.scratch.Workers = 1
	ec.scratch.UsePlanRegistry(s.registry)
	ec.builder.Workers = 1
	return ec
}

func (ec *evalContext) releasePlans() { ec.scratch.ReleasePlans() }

func (ec *evalContext) close() {
	ec.scratch.ReleasePlans()
	ec.scratch.Close()
	ec.builder.Close()
}

// evaluate runs the bucketed pipeline once. The returned Result points into
// the scratch and is valid until the next evaluation.
func (ec *evalContext) evaluate(sys *atoms.System) *core.Result {
	m := ec.s.model
	ec.builder.BuildInto(&ec.pairs, sys, m.Cuts)
	nB, zB := ec.s.buckets.shape(sys.NumAtoms(), ec.pairs.NumReal)
	ec.pairs.PadTo(zB)
	// Bucketing the atom count only adds environment-sum rows that stay
	// zero and are never gathered (no pair references them), so the padded
	// shape evaluates bit-identically to the real one.
	ec.pairs.NAtoms = nB
	return m.EvaluatePairsInto(ec.scratch, sys, &ec.pairs)
}

// shape reports the bucketed shape of the last evaluation.
func (ec *evalContext) shape() Shape {
	return Shape{Pairs: ec.pairs.Len(), Atoms: ec.pairs.NAtoms}
}

func (ec *evalContext) energyForces(sys *atoms.System) (*EnergyForcesResponse, error) {
	res := ec.evaluate(sys)
	resp := &EnergyForcesResponse{
		Energy: res.Energy,
		Forces: make([][3]float64, len(res.Forces)),
		Shape:  ec.shape(),
	}
	copy(resp.Forces, res.Forces)
	return resp, nil
}

// EnergyForcesInto implements md.InPlacePotential so the context can drive
// a trajectory directly: every force call goes through the same bucketed
// shared-plan pipeline as a standalone request.
func (ec *evalContext) EnergyForcesInto(sys *atoms.System, forces [][3]float64) float64 {
	res := ec.evaluate(sys)
	copy(forces, res.Forces)
	return res.Energy
}

// EnergyForces implements md.Potential (allocating variant; the MD engine
// prefers EnergyForcesInto).
func (ec *evalContext) EnergyForces(sys *atoms.System) (float64, [][3]float64) {
	res := ec.evaluate(sys)
	out := make([][3]float64, len(res.Forces))
	copy(out, res.Forces)
	return res.Energy, out
}

// trajectory integrates a short velocity-Verlet trajectory on the task's
// (request-owned) system. Deterministic for a given request: the velocity
// stream is a pure function of (temp_k, seed).
func (ec *evalContext) trajectory(t *task) (*TrajectoryResponse, error) {
	sim := md.NewSim(t.sys, ec, t.dt)
	if t.tempK > 0 {
		rng := rand.New(rand.NewPCG(t.seed, trajectorySeedStream))
		sim.InitVelocities(t.tempK, rng)
	}
	resp := &TrajectoryResponse{Energies: make([]float64, 0, t.steps+1)}
	resp.Energies = append(resp.Energies, sim.Energy)
	for i := 0; i < t.steps; i++ {
		sim.Step()
		resp.Energies = append(resp.Energies, sim.Energy)
	}
	resp.FinalEnergy = resp.Energies[len(resp.Energies)-1]
	resp.Shape = ec.shape()
	if t.wantPos {
		resp.Positions = make([][3]float64, len(t.sys.Pos))
		copy(resp.Positions, t.sys.Pos)
	}
	return resp, nil
}
