// Package serve implements allegro-serve: a multi-tenant batched inference
// service over shared compiled plans. It is the serving tier the paper's
// thesis implies — leading-accuracy equivariant inference as a system, not a
// library call: many independent clients submit energy/force and
// short-trajectory requests; the service shape-buckets them onto a bounded
// set of padded (pairs, atoms) shapes via the existing PadTo running-max
// machinery, and evaluates them through one cross-tenant
// core.PlanRegistry — a plan compiled for one tenant's request replays for
// every other tenant with the same bucketed shape, instead of each
// EvalScratch compiling (and holding) its own copy.
//
// The request path is: admission (bounded queue with queue-full rejection
// and per-tenant in-flight caps — backpressure is an error the client can
// act on, not an unbounded latency tail), then a worker goroutine that owns
// one single-worker EvalScratch bound to the shared registry, evaluates the
// request bit-identically to the serial core.Evaluator (padding and atom
// bucketing contribute exactly zero by the cutoff-envelope construction),
// and releases its plan leases so the next tenant reuses them. Weight swaps
// (UpdateParams) gate on in-flight requests, bump nn.ParamSet.Version, and
// evict the registry, so no request ever replays stale folded weights.
//
// Transport is behind a seam: the Service's typed methods are the API; the
// HTTP/JSON binding (NewHTTPHandler, Client) is one transport over it, and
// a gRPC binding would wrap the same interface. See docs/serving.md for the
// wire API, the shape-bucketing and plan-sharing contract, backpressure
// semantics, and tuning guidance.
package serve

import (
	"context"
	"errors"
	"fmt"
	goruntime "runtime"
	"sync"
	"sync/atomic"

	"repro/internal/atoms"
	"repro/internal/core"
	"repro/internal/units"
)

// Backpressure and lifecycle sentinels. Transports map these to retryable
// statuses (HTTP 429/503); everything wrapping ErrBadRequest is a client
// error (HTTP 400).
var (
	// ErrQueueFull means the admission queue is at QueueDepth: the service
	// is saturated and the client should back off and retry.
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrTenantBusy means this tenant already has TenantInFlight requests
	// admitted (queued or evaluating): per-tenant fairness backpressure.
	ErrTenantBusy = errors.New("serve: tenant in-flight cap reached")
	// ErrDraining means Shutdown has begun; no new work is admitted.
	ErrDraining = errors.New("serve: server is draining")
	// ErrBadRequest is wrapped by every request-validation failure.
	ErrBadRequest = errors.New("serve: bad request")
)

// Config sizes a Service. The zero value of every field selects a default.
type Config struct {
	// Model is the potential served to every tenant (required).
	Model *core.Model
	// Workers is the number of evaluation workers, each owning one
	// single-worker EvalScratch bound to the shared plan registry
	// (default: GOMAXPROCS — request-level parallelism, not intra-request).
	Workers int
	// QueueDepth bounds the admission queue (default 256). A full queue
	// rejects with ErrQueueFull instead of growing the latency tail.
	QueueDepth int
	// TenantInFlight caps one tenant's admitted (queued + evaluating)
	// requests (default 4); the cap rejects with ErrTenantBusy so one
	// tenant cannot monopolize the queue.
	TenantInFlight int
	// MaxAtoms bounds admitted system sizes (default 8192).
	MaxAtoms int
	// MaxSteps bounds trajectory request lengths (default 1000).
	MaxSteps int
	// AtomBucket is the atom-count rounding granularity of shape bucketing
	// (default 16); PairBucket the pair-count granularity (default 256).
	AtomBucket int
	// PairBucket — see AtomBucket.
	PairBucket int
	// PadFactor is the pair-list headroom applied before bucketing
	// (default 1.05, the paper's 5% padding).
	PadFactor float64
}

func (c *Config) fill() error {
	if c.Model == nil {
		return fmt.Errorf("serve: Config.Model is required")
	}
	if c.Workers <= 0 {
		c.Workers = goruntime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.TenantInFlight <= 0 {
		c.TenantInFlight = 4
	}
	if c.MaxAtoms <= 0 {
		c.MaxAtoms = 8192
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 1000
	}
	if c.AtomBucket <= 0 {
		c.AtomBucket = 16
	}
	if c.PairBucket <= 0 {
		c.PairBucket = 256
	}
	if c.PadFactor < 1 {
		c.PadFactor = 1.05
	}
	return nil
}

// Stats is a point-in-time snapshot of the service counters.
type Stats struct {
	Served            uint64                 `json:"served"`
	Failed            uint64                 `json:"failed"`
	RejectedQueueFull uint64                 `json:"rejected_queue_full"`
	RejectedTenantCap uint64                 `json:"rejected_tenant_cap"`
	QueueDepth        int                    `json:"queue_depth"`
	Draining          bool                   `json:"draining"`
	Registry          core.PlanRegistryStats `json:"registry"`
	Shapes            int                    `json:"shapes"` // distinct bucketed shapes seen
}

// taskKind discriminates the request types a task carries.
type taskKind uint8

const (
	kindEnergyForces taskKind = iota
	kindTrajectory
)

// task is one admitted request traveling from the queue to a worker.
type task struct {
	tenant string
	kind   taskKind
	sys    *atoms.System

	// Trajectory parameters.
	steps   int
	dt      float64
	tempK   float64
	seed    uint64
	wantPos bool

	ef   *EnergyForcesResponse
	tj   *TrajectoryResponse
	err  error
	done chan struct{}
}

// Service is the multi-tenant inference daemon: shared plan registry,
// bounded admission, a fixed worker pool, and a weight-swap gate. Construct
// with NewService; stop with Shutdown (drains) or Close.
type Service struct {
	cfg      Config
	model    *core.Model
	registry *core.PlanRegistry
	buckets  bucketTable

	queue chan *task
	wg    sync.WaitGroup

	mu       sync.Mutex // guards draining + inflight
	draining bool
	inflight map[string]int

	// weights gates parameter mutation against in-flight evaluations:
	// workers evaluate under RLock, UpdateParams swaps under Lock.
	weights sync.RWMutex

	served            atomic.Uint64
	failed            atomic.Uint64
	rejectedQueueFull atomic.Uint64
	rejectedTenantCap atomic.Uint64
}

// NewService validates cfg, binds the shared plan registry, and starts the
// worker pool. The returned service is ready to accept requests.
func NewService(cfg Config) (*Service, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	s := &Service{
		cfg:      cfg,
		model:    cfg.Model,
		registry: core.NewPlanRegistry(cfg.Model),
		queue:    make(chan *task, cfg.QueueDepth),
		inflight: make(map[string]int),
	}
	s.buckets.init(cfg.AtomBucket, cfg.PairBucket, cfg.PadFactor)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Registry exposes the shared plan pool (diagnostics, tests, stats).
func (s *Service) Registry() *core.PlanRegistry { return s.registry }

// Model returns the served model. Treat as read-only; mutate weights only
// through UpdateParams.
func (s *Service) Model() *core.Model { return s.model }

// EnergyForces evaluates energy and per-atom forces for one system,
// bit-identically to a serial core.Evaluator on the same model. It blocks
// until the response is ready, ctx is done, or admission rejects
// (ErrQueueFull, ErrTenantBusy, ErrDraining).
func (s *Service) EnergyForces(ctx context.Context, tenant string, req *EnergyForcesRequest) (*EnergyForcesResponse, error) {
	sys, err := s.buildSystem(&req.System)
	if err != nil {
		return nil, err
	}
	t := &task{tenant: tenantOrDefault(tenant), kind: kindEnergyForces, sys: sys, done: make(chan struct{})}
	if err := s.admit(t); err != nil {
		return nil, err
	}
	select {
	case <-t.done:
		return t.ef, t.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Trajectory runs a short NVE (or Maxwell-Boltzmann-initialized) velocity-
// Verlet trajectory with forces from the shared-plan pipeline and returns
// the per-step potential energies (index 0 is the initial evaluation).
// Trajectories are deterministic: a given (system, steps, dt, temp_k, seed)
// always produces the same bits.
func (s *Service) Trajectory(ctx context.Context, tenant string, req *TrajectoryRequest) (*TrajectoryResponse, error) {
	sys, err := s.buildSystem(&req.System)
	if err != nil {
		return nil, err
	}
	if req.Steps <= 0 || req.Steps > s.cfg.MaxSteps {
		return nil, fmt.Errorf("%w: steps %d outside (0, %d]", ErrBadRequest, req.Steps, s.cfg.MaxSteps)
	}
	dt := req.Dt
	if dt == 0 {
		dt = 0.5
	}
	if dt < 0 {
		return nil, fmt.Errorf("%w: negative timestep %g", ErrBadRequest, dt)
	}
	if req.TempK < 0 {
		return nil, fmt.Errorf("%w: negative temperature %g", ErrBadRequest, req.TempK)
	}
	t := &task{
		tenant: tenantOrDefault(tenant), kind: kindTrajectory, sys: sys,
		steps: req.Steps, dt: dt, tempK: req.TempK, seed: req.Seed,
		wantPos: req.ReturnPositions, done: make(chan struct{}),
	}
	if err := s.admit(t); err != nil {
		return nil, err
	}
	select {
	case <-t.done:
		return t.tj, t.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Stats snapshots the service and registry counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	return Stats{
		Served:            s.served.Load(),
		Failed:            s.failed.Load(),
		RejectedQueueFull: s.rejectedQueueFull.Load(),
		RejectedTenantCap: s.rejectedTenantCap.Load(),
		QueueDepth:        len(s.queue),
		Draining:          draining,
		Registry:          s.registry.Stats(),
		Shapes:            s.buckets.shapes(),
	}
}

// UpdateParams applies a weight mutation (training step, weight reload)
// with the serving guarantees: it waits for every in-flight evaluation to
// finish, runs mutate with exclusive access to the model, bumps the
// parameter version, and evicts the shared plan pool. Requests admitted
// before the swap complete on the old weights; requests evaluated after it
// see only the new ones — no request ever observes a torn weight set or a
// stale compiled plan.
func (s *Service) UpdateParams(mutate func(*core.Model)) {
	s.weights.Lock()
	defer s.weights.Unlock()
	mutate(s.model)
	s.model.Params.Bump()
	s.registry.Invalidate()
}

// Shutdown drains the service: admission stops immediately (ErrDraining),
// queued and in-flight requests complete, then the workers exit. It returns
// ctx.Err() if the drain outlives ctx; the drain itself keeps going.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		close(s.queue) // admit() holds s.mu and re-checks draining: no send can race this close
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close drains with no deadline.
func (s *Service) Close() error { return s.Shutdown(context.Background()) }

// admit applies backpressure: draining, the per-tenant cap, then the
// bounded queue, in that order. The counter is incremented before the
// non-blocking send so a successfully queued task is always accounted.
func (s *Service) admit(t *task) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return ErrDraining
	}
	if s.inflight[t.tenant] >= s.cfg.TenantInFlight {
		s.rejectedTenantCap.Add(1)
		return ErrTenantBusy
	}
	select {
	case s.queue <- t:
		s.inflight[t.tenant]++
		return nil
	default:
		s.rejectedQueueFull.Add(1)
		return ErrQueueFull
	}
}

// finish releases the tenant slot and wakes the submitter.
func (s *Service) finish(t *task) {
	s.mu.Lock()
	if n := s.inflight[t.tenant]; n <= 1 {
		delete(s.inflight, t.tenant)
	} else {
		s.inflight[t.tenant] = n - 1
	}
	s.mu.Unlock()
	if t.err != nil {
		s.failed.Add(1)
	} else {
		s.served.Add(1)
	}
	close(t.done)
}

// worker is one evaluation goroutine: a private evalContext whose scratch
// leases plans from the shared registry, processing tasks until the queue
// closes. Plan leases are returned after every request so concurrent
// tenants share the pool instead of pinning per-worker copies.
func (s *Service) worker() {
	defer s.wg.Done()
	ec := newEvalContext(s)
	defer ec.close()
	for t := range s.queue {
		s.weights.RLock()
		s.process(ec, t)
		ec.releasePlans()
		s.weights.RUnlock()
		s.finish(t)
	}
}

// process dispatches one task on the worker's evaluation context. A panic
// in the evaluation pipeline fails the request, not the daemon.
func (s *Service) process(ec *evalContext, t *task) {
	defer func() {
		if r := recover(); r != nil {
			t.err = fmt.Errorf("serve: evaluation panic: %v", r)
		}
	}()
	switch t.kind {
	case kindEnergyForces:
		t.ef, t.err = ec.energyForces(t.sys)
	case kindTrajectory:
		t.tj, t.err = ec.trajectory(t)
	}
}

// buildSystem validates a wire-format system against the model and the
// admission limits and materializes it.
func (s *Service) buildSystem(spec *SystemSpec) (*atoms.System, error) {
	n := len(spec.Species)
	if n == 0 {
		return nil, fmt.Errorf("%w: empty system", ErrBadRequest)
	}
	if n > s.cfg.MaxAtoms {
		return nil, fmt.Errorf("%w: %d atoms exceeds MaxAtoms %d", ErrBadRequest, n, s.cfg.MaxAtoms)
	}
	if len(spec.Pos) != n {
		return nil, fmt.Errorf("%w: %d positions for %d species", ErrBadRequest, len(spec.Pos), n)
	}
	if spec.PBC {
		for k := 0; k < 3; k++ {
			if spec.Cell[k] <= 0 {
				return nil, fmt.Errorf("%w: periodic system needs positive cell, got %v", ErrBadRequest, spec.Cell)
			}
		}
	}
	// Positions are copied, not aliased: trajectory integration mutates the
	// system in place, and in-process callers may reuse the request spec.
	sys := &atoms.System{
		Species: make([]units.Species, n),
		Pos:     make([][3]float64, n),
		Cell:    spec.Cell,
		PBC:     spec.PBC,
	}
	copy(sys.Pos, spec.Pos)
	for i, z := range spec.Species {
		sp := units.Species(z)
		if !s.model.Idx.Contains(sp) {
			return nil, fmt.Errorf("%w: species %d not in the served model", ErrBadRequest, z)
		}
		sys.Species[i] = sp
	}
	return sys, nil
}

func tenantOrDefault(t string) string {
	if t == "" {
		return "anonymous"
	}
	return t
}
