package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// Client is a thin typed client for the HTTP/JSON transport. The zero
// value needs only Base; Tenant stamps every request's TenantHeader, and
// HTTP overrides http.DefaultClient.
type Client struct {
	Base   string // server base URL, e.g. "http://127.0.0.1:8080"
	Tenant string
	HTTP   *http.Client
}

// StatusError is a non-2xx server response. Backpressure statuses (429,
// 503) mean "back off and retry"; see IsBackpressure.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("serve: server returned %d: %s", e.Code, e.Msg)
}

// IsBackpressure reports whether err is a retryable server rejection
// (admission queue full, tenant cap, or draining).
func IsBackpressure(err error) bool {
	var se *StatusError
	return errors.As(err, &se) &&
		(se.Code == http.StatusTooManyRequests || se.Code == http.StatusServiceUnavailable)
}

// EnergyForces submits one energy/forces evaluation.
func (c *Client) EnergyForces(ctx context.Context, req *EnergyForcesRequest) (*EnergyForcesResponse, error) {
	var resp EnergyForcesResponse
	if err := c.post(ctx, "/v1/energy-forces", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Trajectory submits one short-trajectory request.
func (c *Client) Trajectory(ctx context.Context, req *TrajectoryRequest) (*TrajectoryResponse, error) {
	var resp TrajectoryResponse
	if err := c.post(ctx, "/v1/trajectory", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches the service counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	var stats Stats
	if err := c.do(req, &stats); err != nil {
		return nil, err
	}
	return &stats, nil
}

func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	if c.Tenant != "" {
		req.Header.Set(TenantHeader, c.Tenant)
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
		if json.Unmarshal(raw, &eb) != nil || eb.Error == "" {
			eb.Error = string(bytes.TrimSpace(raw))
		}
		return &StatusError{Code: resp.StatusCode, Msg: eb.Error}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
