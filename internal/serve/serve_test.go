package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"repro/internal/atoms"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/units"
)

func testModel(t testing.TB) *core.Model {
	cfg := core.DefaultConfig([]units.Species{units.H, units.O})
	cfg.LMax = 1
	cfg.NumLayers = 2
	cfg.NumChannels = 2
	cfg.LatentDim = 8
	cfg.TwoBodyHidden = []int{8}
	cfg.LatentHidden = []int{8}
	cfg.EdgeHidden = 4
	cfg.NumBessel = 4
	cfg.AvgNumNeighbors = 4
	m, err := core.New(cfg, nil, rand.New(rand.NewPCG(11, 0xA11E)))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// refEval is the bit-identity reference: a fresh serial (single-worker,
// unpadded, unbucketed) evaluation of sys.
func refEval(m *core.Model, sys *atoms.System) (float64, [][3]float64) {
	es := core.NewEvalScratch()
	es.Workers = 1
	defer es.Close()
	r := m.EvaluateInto(es, sys)
	f := make([][3]float64, len(r.Forces))
	copy(f, r.Forces)
	return r.Energy, f
}

func specFromSystem(sys *atoms.System) SystemSpec {
	spec := SystemSpec{
		Species: make([]int, sys.NumAtoms()),
		Pos:     make([][3]float64, sys.NumAtoms()),
		Cell:    sys.Cell,
		PBC:     sys.PBC,
	}
	for i, sp := range sys.Species {
		spec.Species[i] = int(sp)
	}
	copy(spec.Pos, sys.Pos)
	return spec
}

func testSystems() []*atoms.System {
	rng := rand.New(rand.NewPCG(7, 9))
	boxes := []*atoms.System{
		data.WaterBox(rng, 2, 2, 2),
		data.WaterBox(rng, 3, 2, 2),
		data.WaterBox(rng, 3, 3, 3),
	}
	// A non-periodic cluster exercises the open-boundary path.
	cluster := data.WaterBox(rng, 2, 2, 1).Clone()
	cluster.PBC = false
	return append(boxes, cluster)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServeBitIdenticalAcrossShapesAndTenants is the service's core
// contract: concurrent requests from several tenants, across several system
// sizes (periodic and not), all return exactly the bits a fresh serial
// core evaluation produces — bucketed padding and cross-tenant plan sharing
// included — and the shared registry actually shares (pool hits observed,
// fewer compiles than requests served).
func TestServeBitIdenticalAcrossShapesAndTenants(t *testing.T) {
	m := testModel(t)
	svc, err := NewService(Config{Model: m, Workers: 4, TenantInFlight: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	systems := testSystems()
	type ref struct {
		e float64
		f [][3]float64
	}
	refs := make([]ref, len(systems))
	for i, sys := range systems {
		refs[i].e, refs[i].f = refEval(m, sys)
	}

	const tenants, reps = 3, 3
	var wg sync.WaitGroup
	errs := make(chan error, tenants*reps*len(systems))
	for tn := 0; tn < tenants; tn++ {
		for rep := 0; rep < reps; rep++ {
			for si := range systems {
				wg.Add(1)
				go func(tn, si int) {
					defer wg.Done()
					req := EnergyForcesRequest{System: specFromSystem(systems[si])}
					resp, err := svc.EnergyForces(context.Background(), fmt.Sprintf("tenant-%d", tn), &req)
					if err != nil {
						errs <- fmt.Errorf("tenant %d system %d: %w", tn, si, err)
						return
					}
					if resp.Energy != refs[si].e {
						errs <- fmt.Errorf("system %d: energy %v != serial %v", si, resp.Energy, refs[si].e)
						return
					}
					for a := range refs[si].f {
						if resp.Forces[a] != refs[si].f[a] {
							errs <- fmt.Errorf("system %d atom %d: force %v != serial %v", si, a, resp.Forces[a], refs[si].f[a])
							return
						}
					}
				}(tn, si)
			}
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := svc.Stats()
	if want := uint64(tenants * reps * len(systems)); st.Served != want {
		t.Errorf("served %d, want %d", st.Served, want)
	}
	if st.Registry.Hits == 0 {
		t.Errorf("expected cross-tenant plan-pool hits, got %+v", st.Registry)
	}
	if st.Registry.Compiles >= st.Served {
		t.Errorf("plan sharing ineffective: %d compiles for %d requests", st.Registry.Compiles, st.Served)
	}
	if st.Shapes == 0 || st.Shapes > len(systems) {
		t.Errorf("bucketed shape classes %d outside (0, %d]", st.Shapes, len(systems))
	}
}

// TestPlanRegistryInvalidationProperty races concurrent requests against a
// weight swap: every response must be bit-identical to the pre-swap or the
// post-swap serial reference (never a torn mix), requests after the swap
// must see only the new weights, and the swap must bump the parameter
// version and evict the shared pool.
func TestPlanRegistryInvalidationProperty(t *testing.T) {
	m := testModel(t)
	svc, err := NewService(Config{Model: m, Workers: 2, TenantInFlight: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	rng := rand.New(rand.NewPCG(7, 9))
	sys := data.WaterBox(rng, 2, 2, 2)
	spec := specFromSystem(sys)
	v0 := m.Params.Version()
	eA, fA := refEval(m, sys)

	const workers, perWorker = 4, 8
	type result struct {
		e float64
		f [][3]float64
	}
	results := make(chan result, workers*perWorker)
	errs := make(chan error, workers*perWorker)
	var admitted sync.WaitGroup
	admitted.Add(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if i == 1 {
					admitted.Done() // at least one request per goroutine raced the swap
				}
				resp, err := svc.EnergyForces(context.Background(), fmt.Sprintf("t%d", w), &EnergyForcesRequest{System: spec})
				if err != nil {
					errs <- err
					return
				}
				results <- result{resp.Energy, resp.Forces}
			}
		}(w)
	}

	admitted.Wait()
	svc.UpdateParams(func(m *core.Model) {
		m.Params.List()[0].T.Data[0] += 0.25
	})
	wg.Wait()
	close(results)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if v := m.Params.Version(); v <= v0 {
		t.Fatalf("UpdateParams must bump the parameter version (was %d, now %d)", v0, v)
	}
	eB, fB := refEval(m, sys)
	if eA == eB {
		t.Fatal("weight perturbation did not change the reference energy; test is vacuous")
	}

	matches := func(r result, e float64, f [][3]float64) bool {
		if r.e != e {
			return false
		}
		for i := range f {
			if r.f[i] != f[i] {
				return false
			}
		}
		return true
	}
	for r := range results {
		if !matches(r, eA, fA) && !matches(r, eB, fB) {
			t.Fatalf("response (energy %v) matches neither pre-swap (%v) nor post-swap (%v) weights", r.e, eA, eB)
		}
	}

	// A request issued strictly after the swap sees only the new weights.
	resp, err := svc.EnergyForces(context.Background(), "post", &EnergyForcesRequest{System: spec})
	if err != nil {
		t.Fatal(err)
	}
	if !matches(result{resp.Energy, resp.Forces}, eB, fB) {
		t.Fatalf("post-swap response (energy %v) must match the new weights (%v)", resp.Energy, eB)
	}
	if st := svc.Registry().Stats(); st.Evictions == 0 {
		t.Errorf("weight swap should evict pooled plans: %+v", st)
	}
}

// blockWorkers holds the service's weight-swap gate so every worker parks
// at the start of its next task; the returned release function lets them
// run. Used to freeze queue state deterministically.
func blockWorkers(s *Service) (release func()) {
	locked := make(chan struct{})
	gate := make(chan struct{})
	done := make(chan struct{})
	go func() {
		s.UpdateParams(func(*core.Model) {
			close(locked)
			<-gate
		})
		close(done)
	}()
	<-locked
	return func() {
		close(gate)
		<-done
	}
}

func inflightCount(s *Service, tenant string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight[tenant]
}

// TestBackpressure drives the admission policy end to end with the workers
// frozen: a tenant at its in-flight cap gets ErrTenantBusy, a full queue
// gets ErrQueueFull, and both blocked requests complete once the workers
// resume.
func TestBackpressure(t *testing.T) {
	m := testModel(t)
	svc, err := NewService(Config{Model: m, Workers: 1, QueueDepth: 1, TenantInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	release := blockWorkers(svc)
	releasedEarly := false
	defer func() {
		if !releasedEarly {
			release()
		}
	}()

	rng := rand.New(rand.NewPCG(7, 9))
	spec := specFromSystem(data.WaterBox(rng, 2, 2, 2))
	submit := func(tenant string, errCh chan error) {
		_, err := svc.EnergyForces(context.Background(), tenant, &EnergyForcesRequest{System: spec})
		errCh <- err
	}

	// r1 is admitted and picked up by the (frozen) worker.
	r1 := make(chan error, 1)
	go submit("a", r1)
	waitFor(t, "r1 admitted", func() bool { return inflightCount(svc, "a") == 1 })

	// Tenant a is now at its cap regardless of queue state.
	if _, err := svc.EnergyForces(context.Background(), "a", &EnergyForcesRequest{System: spec}); !errors.Is(err, ErrTenantBusy) {
		t.Fatalf("tenant over cap: got %v, want ErrTenantBusy", err)
	}

	// r2 fills the 1-slot queue (retry until the worker has drained r1).
	r2 := make(chan error, 1)
	waitFor(t, "r2 queued", func() bool {
		if inflightCount(svc, "b") == 1 {
			return true
		}
		go func() {
			_, err := svc.EnergyForces(context.Background(), "b", &EnergyForcesRequest{System: spec})
			if err == nil || !errors.Is(err, ErrQueueFull) {
				r2 <- err
			}
		}()
		return false
	})
	waitFor(t, "queue holding r2", func() bool { return svc.Stats().QueueDepth == 1 })

	// Queue full, worker busy: a third tenant is rejected.
	if _, err := svc.EnergyForces(context.Background(), "c", &EnergyForcesRequest{System: spec}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("full queue: got %v, want ErrQueueFull", err)
	}

	releasedEarly = true
	release()
	if err := <-r1; err != nil {
		t.Fatalf("r1 should complete after release: %v", err)
	}
	if err := <-r2; err != nil {
		t.Fatalf("r2 should complete after release: %v", err)
	}
	st := svc.Stats()
	if st.RejectedTenantCap == 0 || st.RejectedQueueFull == 0 {
		t.Errorf("rejection counters not advanced: %+v", st)
	}
}

// TestGracefulDrain freezes the workers with requests in flight and queued,
// begins Shutdown, and checks: new admissions fail with ErrDraining, every
// admitted request still completes successfully, and Shutdown returns once
// the queue is empty.
func TestGracefulDrain(t *testing.T) {
	m := testModel(t)
	svc, err := NewService(Config{Model: m, Workers: 2, QueueDepth: 16, TenantInFlight: 16})
	if err != nil {
		t.Fatal(err)
	}
	release := blockWorkers(svc)

	rng := rand.New(rand.NewPCG(7, 9))
	spec := specFromSystem(data.WaterBox(rng, 2, 2, 2))
	const n = 6
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		tenant := fmt.Sprintf("t%d", i%3)
		go func() {
			_, err := svc.EnergyForces(context.Background(), tenant, &EnergyForcesRequest{System: spec})
			done <- err
		}()
	}
	waitFor(t, "all requests admitted", func() bool {
		return inflightCount(svc, "t0")+inflightCount(svc, "t1")+inflightCount(svc, "t2") == n
	})

	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- svc.Shutdown(context.Background()) }()
	waitFor(t, "draining flag", func() bool { return svc.Stats().Draining })

	if _, err := svc.EnergyForces(context.Background(), "late", &EnergyForcesRequest{System: spec}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain admission: got %v, want ErrDraining", err)
	}

	release()
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Errorf("admitted request failed during drain: %v", err)
		}
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got := svc.Stats().Served; got != n {
		t.Errorf("served %d, want %d", got, n)
	}
}

// TestTrajectoryDeterministicAndValidated checks the trajectory path:
// identical requests produce identical bits, energies have Steps+1 entries,
// and validation rejects out-of-range parameters.
func TestTrajectoryDeterministicAndValidated(t *testing.T) {
	m := testModel(t)
	svc, err := NewService(Config{Model: m, Workers: 2, MaxSteps: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	rng := rand.New(rand.NewPCG(7, 9))
	sys := data.WaterBox(rng, 2, 2, 2)
	req := TrajectoryRequest{
		System: specFromSystem(sys), Steps: 10, Dt: 0.25,
		TempK: 200, Seed: 42, ReturnPositions: true,
	}
	a, err := svc.Trajectory(context.Background(), "ta", &req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := svc.Trajectory(context.Background(), "tb", &req)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Energies) != req.Steps+1 {
		t.Fatalf("energies length %d, want %d", len(a.Energies), req.Steps+1)
	}
	for i := range a.Energies {
		if a.Energies[i] != b.Energies[i] {
			t.Fatalf("step %d: %v != %v (trajectory must be deterministic)", i, a.Energies[i], b.Energies[i])
		}
	}
	for i := range a.Positions {
		if a.Positions[i] != b.Positions[i] {
			t.Fatalf("position %d differs between identical requests", i)
		}
	}
	if a.FinalEnergy != a.Energies[len(a.Energies)-1] {
		t.Fatal("FinalEnergy must equal the last energy entry")
	}
	if a.Energies[0] == a.Energies[len(a.Energies)-1] {
		t.Error("trajectory did not move (initial == final energy)")
	}

	for _, bad := range []TrajectoryRequest{
		{System: req.System, Steps: 0},
		{System: req.System, Steps: 51},
		{System: req.System, Steps: 5, Dt: -1},
		{System: req.System, Steps: 5, TempK: -10},
	} {
		if _, err := svc.Trajectory(context.Background(), "v", &bad); !errors.Is(err, ErrBadRequest) {
			t.Errorf("request %+v: got %v, want ErrBadRequest", bad, err)
		}
	}
}

// TestRequestValidation covers system-level validation.
func TestRequestValidation(t *testing.T) {
	m := testModel(t)
	svc, err := NewService(Config{Model: m, MaxAtoms: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	good := SystemSpec{Species: []int{8, 1, 1}, Pos: [][3]float64{{0, 0, 0}, {0.96, 0, 0}, {-0.24, 0.93, 0}}}
	if _, err := svc.EnergyForces(context.Background(), "", &EnergyForcesRequest{System: good}); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}

	cases := []SystemSpec{
		{},                                       // empty
		{Species: []int{8}, Pos: [][3]float64{}}, // length mismatch
		{Species: []int{6}, Pos: [][3]float64{{0, 0, 0}}},            // species not in model
		{Species: []int{8}, Pos: [][3]float64{{0, 0, 0}}, PBC: true}, // PBC without cell
		{Species: make([]int, 11), Pos: make([][3]float64, 11)},      // over MaxAtoms
	}
	for i, spec := range cases {
		if _, err := svc.EnergyForces(context.Background(), "", &EnergyForcesRequest{System: spec}); !errors.Is(err, ErrBadRequest) {
			t.Errorf("case %d: got %v, want ErrBadRequest", i, err)
		}
	}
}

// BenchmarkServeReplaySteadyState guards the serving tier's hot path: two
// evaluation contexts (as two tenants' worker turns) alternating over
// mixed bucketed shapes, leasing and releasing programs through the shared
// registry every round. Once shapes have converged this must run at
// 0 allocs/op — neighbor build, padding, registry lease, compiled replay,
// and release are all on recycled storage (guarded in CI next to the other
// steady-state benches).
func BenchmarkServeReplaySteadyState(b *testing.B) {
	m := testModel(b)
	svc, err := NewService(Config{Model: m, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()

	systems := testSystems()
	ctxs := []*evalContext{newEvalContext(svc), newEvalContext(svc)}
	defer ctxs[0].close()
	defer ctxs[1].close()

	// Warm until shapes and pool capacities converge.
	pairs := 0
	for r := 0; r < 2; r++ {
		for _, ec := range ctxs {
			for _, sys := range systems {
				res := ec.evaluate(sys)
				pairs = res.PairWork
				ec.releasePlans()
			}
		}
	}
	_ = pairs

	b.ReportAllocs()
	b.ResetTimer()
	pairWork := 0
	for i := 0; i < b.N; i++ {
		ec := ctxs[i%len(ctxs)]
		sys := systems[i%len(systems)]
		res := ec.evaluate(sys)
		pairWork += res.PairWork
		ec.releasePlans()
	}
	b.ReportMetric(float64(pairWork)/b.Elapsed().Seconds(), "pairs/s")
}
