package atoms

// Frame is a labeled structure: a system together with its reference energy
// and forces (the unit of training and evaluation data throughout the
// repository).
type Frame struct {
	Sys    *System
	Energy float64      // eV
	Forces [][3]float64 // eV/A
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	c := &Frame{Sys: f.Sys.Clone(), Energy: f.Energy}
	c.Forces = append([][3]float64(nil), f.Forces...)
	return c
}

// NumAtoms returns the atom count.
func (f *Frame) NumAtoms() int { return f.Sys.NumAtoms() }
