// Package atoms defines the atomic system representation shared by the
// neighbor search, MD engine, datasets, and potentials: species, positions,
// and an (optionally periodic) orthorhombic cell.
package atoms

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// System is a collection of atoms, optionally in a periodic orthorhombic box.
type System struct {
	Species []units.Species
	Pos     [][3]float64
	Cell    [3]float64 // box edge lengths; ignored unless PBC
	PBC     bool
}

// NewSystem allocates a system of n atoms (zero positions, species H).
func NewSystem(n int) *System {
	s := &System{
		Species: make([]units.Species, n),
		Pos:     make([][3]float64, n),
	}
	for i := range s.Species {
		s.Species[i] = units.H
	}
	return s
}

// NumAtoms returns the number of atoms.
func (s *System) NumAtoms() int { return len(s.Pos) }

// Clone returns a deep copy.
func (s *System) Clone() *System {
	c := &System{
		Species: append([]units.Species(nil), s.Species...),
		Pos:     append([][3]float64(nil), s.Pos...),
		Cell:    s.Cell,
		PBC:     s.PBC,
	}
	return c
}

// Displacement returns the minimum-image vector from atom i to atom j.
func (s *System) Displacement(i, j int) [3]float64 {
	d := [3]float64{
		s.Pos[j][0] - s.Pos[i][0],
		s.Pos[j][1] - s.Pos[i][1],
		s.Pos[j][2] - s.Pos[i][2],
	}
	if s.PBC {
		for k := 0; k < 3; k++ {
			l := s.Cell[k]
			d[k] -= l * math.Round(d[k]/l)
		}
	}
	return d
}

// Distance returns the minimum-image distance between atoms i and j.
func (s *System) Distance(i, j int) float64 {
	d := s.Displacement(i, j)
	return math.Sqrt(d[0]*d[0] + d[1]*d[1] + d[2]*d[2])
}

// Wrap maps all positions back into the primary cell [0, L) per dimension.
func (s *System) Wrap() {
	if !s.PBC {
		return
	}
	for i := range s.Pos {
		for k := 0; k < 3; k++ {
			l := s.Cell[k]
			s.Pos[i][k] -= l * math.Floor(s.Pos[i][k]/l)
		}
	}
}

// Volume returns the cell volume (0 for non-periodic systems).
func (s *System) Volume() float64 {
	if !s.PBC {
		return 0
	}
	return s.Cell[0] * s.Cell[1] * s.Cell[2]
}

// Masses returns the per-atom masses in amu.
func (s *System) Masses() []float64 {
	m := make([]float64, s.NumAtoms())
	for i, sp := range s.Species {
		m[i] = units.Mass(sp)
	}
	return m
}

// Composition returns the atom count per species.
func (s *System) Composition() map[units.Species]int {
	c := map[units.Species]int{}
	for _, sp := range s.Species {
		c[sp]++
	}
	return c
}

// String summarizes the system.
func (s *System) String() string {
	return fmt.Sprintf("System{%d atoms, pbc=%v, cell=%.2f x %.2f x %.2f A}",
		s.NumAtoms(), s.PBC, s.Cell[0], s.Cell[1], s.Cell[2])
}

// SpeciesIndex maps the species present in a model's type system to dense
// indices 0..S-1 (the model's "atom types correspond one-to-one with
// chemical species").
type SpeciesIndex struct {
	Order []units.Species
	index map[units.Species]int
}

// NewSpeciesIndex builds an index over the given species list.
func NewSpeciesIndex(order []units.Species) *SpeciesIndex {
	si := &SpeciesIndex{Order: append([]units.Species(nil), order...), index: map[units.Species]int{}}
	for i, sp := range si.Order {
		si.index[sp] = i
	}
	return si
}

// Len returns the number of species types.
func (si *SpeciesIndex) Len() int { return len(si.Order) }

// Index returns the dense index of sp; it panics for unknown species, which
// indicates a system/model mismatch.
func (si *SpeciesIndex) Index(sp units.Species) int {
	i, ok := si.index[sp]
	if !ok {
		panic(fmt.Sprintf("atoms: species %s not in model type system %v", units.Name(sp), si.Order))
	}
	return i
}

// Contains reports whether sp is part of the type system.
func (si *SpeciesIndex) Contains(sp units.Species) bool {
	_, ok := si.index[sp]
	return ok
}
