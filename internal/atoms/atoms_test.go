package atoms

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestNewSystemDefaults(t *testing.T) {
	s := NewSystem(5)
	if s.NumAtoms() != 5 {
		t.Fatalf("NumAtoms = %d", s.NumAtoms())
	}
	for _, sp := range s.Species {
		if sp != units.H {
			t.Fatal("default species must be H")
		}
	}
	if s.PBC {
		t.Fatal("default must be non-periodic")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := NewSystem(2)
	s.Pos[0] = [3]float64{1, 2, 3}
	c := s.Clone()
	c.Pos[0][0] = 99
	c.Species[0] = units.O
	if s.Pos[0][0] != 1 || s.Species[0] != units.H {
		t.Fatal("Clone must deep-copy")
	}
}

func TestMinimumImageProperty(t *testing.T) {
	// The minimum-image displacement never exceeds half the box per dim.
	s := NewSystem(2)
	s.PBC = true
	s.Cell = [3]float64{7, 9, 11}
	f := func(a, b [3]float64) bool {
		for k := 0; k < 3; k++ {
			if math.IsNaN(a[k]) || math.IsInf(a[k], 0) || math.Abs(a[k]) > 1e6 {
				return true
			}
			if math.IsNaN(b[k]) || math.IsInf(b[k], 0) || math.Abs(b[k]) > 1e6 {
				return true
			}
		}
		s.Pos[0] = a
		s.Pos[1] = b
		d := s.Displacement(0, 1)
		for k := 0; k < 3; k++ {
			if math.Abs(d[k]) > s.Cell[k]/2+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDisplacementAntisymmetry(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	s := NewSystem(2)
	s.PBC = true
	s.Cell = [3]float64{6, 6, 6}
	for trial := 0; trial < 100; trial++ {
		s.Pos[0] = [3]float64{rng.Float64() * 6, rng.Float64() * 6, rng.Float64() * 6}
		s.Pos[1] = [3]float64{rng.Float64() * 6, rng.Float64() * 6, rng.Float64() * 6}
		dij := s.Displacement(0, 1)
		dji := s.Displacement(1, 0)
		for k := 0; k < 3; k++ {
			if math.Abs(dij[k]+dji[k]) > 1e-12 {
				t.Fatalf("displacement not antisymmetric: %v vs %v", dij, dji)
			}
		}
		if math.Abs(s.Distance(0, 1)-s.Distance(1, 0)) > 1e-12 {
			t.Fatal("distance not symmetric")
		}
	}
}

func TestWrapIdempotent(t *testing.T) {
	s := NewSystem(3)
	s.PBC = true
	s.Cell = [3]float64{4, 5, 6}
	s.Pos[0] = [3]float64{-13, 27, 5.5}
	s.Pos[1] = [3]float64{0, 0, 0}
	s.Pos[2] = [3]float64{3.999, 4.999, 5.999}
	s.Wrap()
	first := append([][3]float64(nil), s.Pos...)
	s.Wrap()
	for i := range s.Pos {
		for k := 0; k < 3; k++ {
			if s.Pos[i][k] != first[i][k] {
				t.Fatal("Wrap must be idempotent")
			}
			if s.Pos[i][k] < 0 || s.Pos[i][k] >= s.Cell[k] {
				t.Fatalf("Wrap left position outside box: %v", s.Pos[i])
			}
		}
	}
}

func TestWrapPreservesDistances(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	s := NewSystem(4)
	s.PBC = true
	s.Cell = [3]float64{8, 8, 8}
	for i := range s.Pos {
		s.Pos[i] = [3]float64{rng.Float64()*30 - 15, rng.Float64()*30 - 15, rng.Float64() * 30}
	}
	var before [6]float64
	n := 0
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			before[n] = s.Distance(i, j)
			n++
		}
	}
	s.Wrap()
	n = 0
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if math.Abs(s.Distance(i, j)-before[n]) > 1e-9 {
				t.Fatalf("Wrap changed minimum-image distance (%d,%d)", i, j)
			}
			n++
		}
	}
}

func TestCompositionAndMasses(t *testing.T) {
	s := NewSystem(4)
	s.Species = []units.Species{units.O, units.H, units.H, units.C}
	c := s.Composition()
	if c[units.H] != 2 || c[units.O] != 1 || c[units.C] != 1 {
		t.Fatalf("composition %v", c)
	}
	m := s.Masses()
	if m[0] != 15.999 || m[3] != 12.011 {
		t.Fatalf("masses %v", m)
	}
}

func TestSpeciesIndex(t *testing.T) {
	si := NewSpeciesIndex([]units.Species{units.H, units.O, units.C})
	if si.Len() != 3 || si.Index(units.O) != 1 {
		t.Fatal("index wrong")
	}
	if !si.Contains(units.C) || si.Contains(units.P) {
		t.Fatal("Contains wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown species must panic")
		}
	}()
	si.Index(units.P)
}

func TestFrameClone(t *testing.T) {
	s := NewSystem(2)
	f := &Frame{Sys: s, Energy: -3, Forces: [][3]float64{{1, 0, 0}, {0, 1, 0}}}
	c := f.Clone()
	c.Forces[0][0] = 9
	c.Sys.Pos[0][0] = 9
	if f.Forces[0][0] != 1 || f.Sys.Pos[0][0] != 0 {
		t.Fatal("Frame.Clone must deep-copy")
	}
	if c.NumAtoms() != 2 {
		t.Fatal("NumAtoms wrong")
	}
}
