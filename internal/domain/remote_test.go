package domain

import (
	"math/rand/v2"
	"testing"

	"repro/internal/data"
	"repro/internal/md"
	"repro/internal/transport"
)

// startRankServers spawns nr RankServer goroutines over the given transport
// (world nr+1, driver at rank nr) — process boundaries removed, protocol
// identical. The returned channel collects each server's Serve error.
func startRankServers(t *testing.T, tr transport.Transport, nr int) chan error {
	t.Helper()
	errs := make(chan error, nr)
	for r := 0; r < nr; r++ {
		ep, err := tr.Endpoint(r)
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			srv, err := NewRankServer(ep, nil)
			if err != nil {
				errs <- err
				return
			}
			defer srv.Close()
			errs <- srv.Serve()
		}()
	}
	return errs
}

// TestRemoteRuntimeBitwiseVsLocal is the distributed variant of the central
// bitwise property: a trajectory computed by rank servers behind the remote
// driver protocol — the exact frame sequence allegro-rankd processes serve —
// must be bit-identical to the in-process runtime on every rank grid. The
// servers run as goroutines over the channel transport here; the protocol
// does not know the difference.
func TestRemoteRuntimeBitwiseVsLocal(t *testing.T) {
	const steps, temp = 30, 600.0
	m := tinyModel(t)
	for _, grid := range [][3]int{{1, 1, 1}, {2, 1, 1}, {2, 2, 2}} {
		nr := grid[0] * grid[1] * grid[2]
		base := runTrajectory(t, RuntimeOptions{Grid: grid, Skin: 0.5}, steps, temp)

		tr := transport.NewChan(nr + 1)
		errs := startRankServers(t, tr, nr)
		sys := data.WaterBox(rand.New(rand.NewPCG(31, 32)), 3, 3, 3)
		rr, err := NewRemoteRuntime(m, sys, RemoteOptions{Grid: grid, Skin: 0.5, Transport: tr})
		if err != nil {
			t.Fatalf("grid %v: %v", grid, err)
		}
		sim := md.NewDecomposedSim(sys, rr, 0.5)
		sim.InitVelocities(temp, rand.New(rand.NewPCG(33, 34)))
		sim.Run(steps)
		if rr.Err() != nil {
			t.Fatalf("grid %v: remote run failed: %v", grid, rr.Err())
		}

		if sim.Energy != base.Energy {
			t.Errorf("grid %v remote: energy %.17g != local %.17g", grid, sim.Energy, base.Energy)
		}
		for i := range base.Sys.Pos {
			if sim.Sys.Pos[i] != base.Sys.Pos[i] {
				t.Errorf("grid %v remote: position of atom %d diverged", grid, i)
				break
			}
			if sim.Forces[i] != base.Forces[i] {
				t.Errorf("grid %v remote: force on atom %d diverged", grid, i)
				break
			}
		}
		// steps+1 force calls: the integrator evaluates once at t=0.
		if st := rr.Stats(); st.Steps != steps+1 || st.Rebuilds < 1 {
			t.Errorf("grid %v remote: stats %+v, want %d force calls and >= 1 rebuild", grid, st, steps+1)
		}

		rr.Close() // broadcasts shutdown; every server must exit cleanly
		for r := 0; r < nr; r++ {
			if err := <-errs; err != nil {
				t.Errorf("grid %v: rank server: %v", grid, err)
			}
		}
		base.Close()
	}
}

// TestRemoteRuntimeOverTCP runs the same protocol over real sockets: rank
// servers and driver in one process, frames on localhost TCP — the full
// multi-process wire path minus fork/exec. One grid keeps it fast; the
// bitwise sweep above covers the shapes.
func TestRemoteRuntimeOverTCP(t *testing.T) {
	const steps, temp = 15, 600.0
	grid := [3]int{2, 1, 1}
	nr := 2
	m := tinyModel(t)

	base := runTrajectory(t, RuntimeOptions{Grid: grid, Skin: 0.5}, steps, temp)
	defer base.Close()

	tr := newLocalTCPGroup(t, nr+1)
	errs := startRankServers(t, tr, nr)
	sys := data.WaterBox(rand.New(rand.NewPCG(31, 32)), 3, 3, 3)
	rr, err := NewRemoteRuntime(m, sys, RemoteOptions{Grid: grid, Skin: 0.5, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	sim := md.NewDecomposedSim(sys, rr, 0.5)
	sim.InitVelocities(temp, rand.New(rand.NewPCG(33, 34)))
	sim.Run(steps)
	if rr.Err() != nil {
		t.Fatalf("remote TCP run failed: %v", rr.Err())
	}
	if sim.Energy != base.Energy {
		t.Errorf("remote TCP energy %.17g != local %.17g", sim.Energy, base.Energy)
	}
	for i := range base.Sys.Pos {
		if sim.Sys.Pos[i] != base.Sys.Pos[i] {
			t.Errorf("remote TCP position of atom %d diverged", i)
			break
		}
	}
	if links := rr.LinkStats(); len(links) == 0 {
		t.Error("TCP transport reported no link statistics")
	}
	rr.Close()
	for r := 0; r < nr; r++ {
		if err := <-errs; err != nil {
			t.Errorf("rank server: %v", err)
		}
	}
}
