package domain

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/atoms"
	"repro/internal/core"
	"repro/internal/transport"
	"repro/internal/units"
)

// This file is the driver half of multi-process execution: a RemoteRuntime
// runs the master's role of the decomposition — ownership classification,
// the canonical slot layout, force/energy assembly — while the rank bodies
// run in separate processes (allegro-rankd, each hosting one RankServer).
// Everything rank-local travels as transport frames; everything global is
// derived with the exact arithmetic of the in-process Runtime (shared
// helpers: wrapPositions, skinTriggered, rankOfCell, reduceEnergySlots), so
// a distributed trajectory is bit-identical to the in-process one.
//
// Protocol (driver is transport rank nranks; grid ranks are 0..nranks-1):
//
//	rendezvous  driver -> rank  KindConfig   JSON config + serialized model
//	            rank -> driver  KindConfig   ready ack
//	rebuild     driver -> all   KindRebuild  Ints=owner, Vecs=wrapped pos
//	            rank -> driver  KindCounts   Ints=pair count per owned atom
//	            driver -> all   KindLayout   Ints=pairStart prefix (len n+1)
//	            rank <-> rank   KindFwdPlan/KindRowPlan (peer plan swap)
//	step        driver -> rank  KindOwnedPos Vecs=wrapped owned positions
//	            rank <-> rank   KindGhostPos / KindRows (peer exchanges)
//	            rank -> driver  KindForces   Vecs=owned forces,
//	                                         Scalars=pair energies in
//	                                         ascending-slot order
//	shutdown    driver -> all   KindShutdown
//
// Frames between driver and one rank are ordered (per-link FIFO), and the
// driver never issues step k+1 before every rank delivered step k, so rank
// serve loops see a strict Rebuild/Layout/OwnedPos sequence; only peer
// frames can race ahead, which the rank phases park in their stash.

// RemoteOptions configures a distributed runtime.
type RemoteOptions struct {
	// Grid is the subdomain decomposition; Grid[0]*Grid[1]*Grid[2] rank
	// processes serve it, and the transport world must hold one more
	// endpoint (the driver, transport rank nranks).
	Grid [3]int
	// Skin, Halo, WorkersPerRank, Compiled, RefKernels mirror
	// RuntimeOptions and are shipped to every rank process.
	Skin           float64
	Halo           float64
	WorkersPerRank int
	Compiled       core.CompiledMode
	RefKernels     bool
	// Transport carries the protocol. Required; its world must span
	// nranks+1 endpoints. The RemoteRuntime takes ownership: Close closes
	// it after the shutdown broadcast.
	Transport transport.Transport
}

// remoteWire is the JSON body of the KindConfig frame.
type remoteWire struct {
	Grid       [3]int          `json:"grid"`
	Skin       float64         `json:"skin"`
	Halo       float64         `json:"halo"`
	Workers    int             `json:"workers"`
	Compiled   int             `json:"compiled"`
	RefKernels bool            `json:"ref_kernels"`
	Cell       [3]float64      `json:"cell"`
	Species    []units.Species `json:"species"`
	Model      json.RawMessage `json:"model"`
}

// RemoteRuntime drives a rank-process fleet as an md.InPlacePotential: the
// integrator lives in this process, force evaluation is distributed. It is
// bound to the system it was constructed with, like Runtime. The step
// schedule is bulk-synchronous (the overlap pipeline needs the shared
// in-process arenas); trajectories are bit-identical to every in-process
// variant regardless.
type RemoteRuntime struct {
	model *core.Model
	sys   *atoms.System
	opts  RemoteOptions
	grid  [3]int
	sub   [3]float64
	nr    int

	tr transport.Transport
	ep transport.Endpoint

	n       int
	pw      [][3]float64
	refPos  [][3]float64
	owner   []int32
	ownedOf [][]int32 // per rank: owned atoms ascending (rebuilt each rebuild)

	pairCnt   []int32
	pairStart []int32
	pairE     []float64

	sendF, recvF transport.Frame
	seen         []bool

	stepTick, rebuildTick uint64
	energy                float64
	started               bool
	closed                bool
	err                   error
	stats                 RuntimeStats

	// Elastic-recovery state (see recover.go): the saved config body for
	// rejoin reships, the fleet generation (bumped per recovery epoch), the
	// replica-request tick, and the driver-held replica store covering
	// one-rank grids. lastOK/rec/recClear/recovered drive the
	// detect/quiesce/restore/resume phase timers.
	cfgBody     []byte
	generation  uint64
	replReqTick uint64
	masterRepl  *replStore
	lastOK      time.Time
	rec         *RecoveryTimers
	recClear    time.Time
	recovered   []RecoveryTimers
}

// NewRemoteRuntime performs the rendezvous: the model and decomposition
// config are shipped to every rank process, and construction returns once
// each has acknowledged. No evaluation happens until the first step.
func NewRemoteRuntime(m *core.Model, sys *atoms.System, opts RemoteOptions) (*RemoteRuntime, error) {
	if opts.Halo == 0 {
		opts.Halo = m.Cuts.Max()
	}
	if err := validateRuntime(sys, RuntimeOptions{
		Grid: opts.Grid, Skin: opts.Skin, Halo: opts.Halo,
	}); err != nil {
		return nil, err
	}
	nr := opts.Grid[0] * opts.Grid[1] * opts.Grid[2]
	if opts.Transport == nil {
		return nil, fmt.Errorf("domain: RemoteOptions.Transport is required")
	}
	if opts.Transport.Ranks() < nr+1 {
		return nil, fmt.Errorf("domain: transport serves %d endpoints, remote grid needs %d ranks + 1 driver",
			opts.Transport.Ranks(), nr)
	}
	ep, err := opts.Transport.Endpoint(nr)
	if err != nil {
		return nil, fmt.Errorf("domain: driver endpoint: %w", err)
	}
	n := sys.NumAtoms()
	r := &RemoteRuntime{
		model: m, sys: sys, opts: opts, grid: opts.Grid, nr: nr,
		tr: opts.Transport, ep: ep,
		n:       n,
		pw:      make([][3]float64, n),
		refPos:  make([][3]float64, n),
		owner:   make([]int32, n),
		ownedOf: make([][]int32, nr),

		pairCnt:   make([]int32, n),
		pairStart: make([]int32, n+1),
		seen:      make([]bool, nr),

		masterRepl: newReplStore(),
	}
	for k := 0; k < 3; k++ {
		r.sub[k] = sys.Cell[k] / float64(opts.Grid[k])
	}

	modelJSON, err := core.MarshalModel(m)
	if err != nil {
		return nil, err
	}
	wire := remoteWire{
		Grid: opts.Grid, Skin: opts.Skin, Halo: opts.Halo,
		Workers: opts.WorkersPerRank, Compiled: int(opts.Compiled),
		RefKernels: opts.RefKernels,
		Cell:       sys.Cell, Species: sys.Species, Model: modelJSON,
	}
	body, err := json.Marshal(&wire)
	if err != nil {
		return nil, fmt.Errorf("domain: marshal remote config: %w", err)
	}
	r.cfgBody = body // saved for rejoin reships after a rank death
	f := &r.sendF
	for d := 0; d < nr; d++ {
		f.Reset(transport.KindConfig, d, 0)
		copy(f.EnsureBytes(len(body)), body)
		if err := r.ep.Send(f); err != nil {
			return nil, r.fail(PhaseConfig, fmt.Errorf("domain: send config to rank %d: %w", d, err))
		}
	}
	if err := r.collect(transport.KindConfig, 0, -1, nil); err != nil {
		return nil, r.fail(PhaseConfig, fmt.Errorf("domain: rank rendezvous: %w", err))
	}
	return r, nil
}

// collect receives one frame of the given kind and tick from every grid
// rank except skip (-1 expects all), invoking handle (when non-nil) per
// frame. Control noise is discarded; a death notice (for a rank other than
// skip), a tick-matching abort, or a transport error ends the collection.
func (r *RemoteRuntime) collect(kind transport.Kind, tick uint64, skip int, handle func(src int, f *transport.Frame) error) error {
	pending := 0
	for s := range r.seen {
		r.seen[s] = s == skip
		if s != skip {
			pending++
		}
	}
	for pending > 0 {
		if err := r.ep.Recv(&r.recvF); err != nil {
			return err
		}
		g := &r.recvF
		s := int(g.Src)
		switch g.Kind {
		case kind:
			if g.Step != tick || s < 0 || s >= r.nr || r.seen[s] {
				continue
			}
			if handle != nil {
				if err := handle(s, g); err != nil {
					return err
				}
			}
			r.seen[s] = true
			pending--
		case transport.KindDeath:
			if s == skip {
				continue // a stale notice for the rank being replaced
			}
			return &transport.DeadError{Rank: s}
		case transport.KindAbort:
			// A rank could not complete the phase because a peer died
			// mid-phase. Only honored for the phase being collected —
			// stale aborts from an abandoned epoch carry older ticks.
			if (kind == transport.KindCounts || kind == transport.KindForces) && g.Step == tick {
				dead := -1
				if len(g.Ints) > 0 {
					dead = int(g.Ints[0])
				}
				return &transport.DeadError{Rank: dead}
			}
		default:
			// Hellos, stale traffic.
		}
	}
	return nil
}

// Err returns the first failure observed on the protocol; once non-nil,
// steps short-circuit with stale forces and energy.
func (r *RemoteRuntime) Err() error { return r.err }

// Energy returns the last reduced potential energy.
func (r *RemoteRuntime) Energy() float64 { return r.energy }

// NumRanks returns the number of rank processes.
func (r *RemoteRuntime) NumRanks() int { return r.nr }

// Grid returns the decomposition grid.
func (r *RemoteRuntime) Grid() [3]int { return r.grid }

// Stats returns cumulative runtime statistics (steps, rebuilds, pair work).
func (r *RemoteRuntime) Stats() RuntimeStats { return r.stats }

// LinkStats returns the transport's measured per-link statistics.
func (r *RemoteRuntime) LinkStats() []transport.LinkStats {
	if sr, ok := r.tr.(transport.StatsReporter); ok {
		return sr.LinkStats()
	}
	return nil
}

// Close broadcasts shutdown to the rank processes and closes the transport.
func (r *RemoteRuntime) Close() {
	if r.closed {
		return
	}
	r.closed = true
	f := &r.sendF
	for d := 0; d < r.nr; d++ {
		f.Reset(transport.KindShutdown, d, r.stepTick)
		_ = r.ep.Send(f) // best effort: a dead rank cannot be shut down
	}
	// Give the frames a moment to flush on buffered wires before the
	// sockets close under them.
	time.Sleep(10 * time.Millisecond)
	r.tr.Close()
}

// EnergyForces implements md.Potential.
func (r *RemoteRuntime) EnergyForces(sys *atoms.System) (float64, [][3]float64) {
	forces := make([][3]float64, r.n)
	e := r.EnergyForcesInto(sys, forces)
	return e, forces
}

// EnergyForcesInto implements md.InPlacePotential over the rank fleet.
func (r *RemoteRuntime) EnergyForcesInto(sys *atoms.System, forces [][3]float64) float64 {
	if sys != r.sys {
		panic("domain: RemoteRuntime is bound to the system it was constructed with")
	}
	if len(forces) != r.n {
		panic("domain: force buffer length mismatch")
	}
	if r.err != nil {
		return r.energy
	}
	wrapPositions(r.pw, r.sys.Pos, r.sys.Cell)
	r.stepTick++
	if !r.started || skinTriggered(r.opts.Skin, r.sys.Pos, r.refPos) {
		if err := r.rebuild(); err != nil {
			r.latch(PhaseRebuild, err)
			return r.energy
		}
	}
	if err := r.step(forces); err != nil {
		r.latch(PhaseStep, err)
		return r.energy
	}
	r.stats.Steps++
	r.energy = reduceEnergySlots(r.pairE, r.model, r.sys.Species)
	r.noteOK()
	return r.energy
}

// rebuild re-derives ownership and the canonical slot layout, and drives
// the rank fleet's rebuild (their lists, plans, and peer plan swap).
func (r *RemoteRuntime) rebuild() error {
	r.stats.Rebuilds++
	r.rebuildTick++
	mig := 0
	for d := 0; d < r.nr; d++ {
		r.ownedOf[d] = r.ownedOf[d][:0]
	}
	for i := 0; i < r.n; i++ {
		o := int32(rankOfCell(r.grid, r.sub, r.pw[i]))
		if r.started && o != r.owner[i] {
			mig++
		}
		r.owner[i] = o
		r.ownedOf[o] = append(r.ownedOf[o], int32(i))
	}
	if r.started {
		r.stats.Migrations += mig
	}
	copy(r.refPos, r.sys.Pos)

	f := &r.sendF
	for d := 0; d < r.nr; d++ {
		f.Reset(transport.KindRebuild, d, r.rebuildTick)
		copy(f.EnsureInts(r.n), r.owner)
		copy(f.EnsureVecs(r.n), r.pw)
		if err := r.ep.Send(f); err != nil {
			return fmt.Errorf("domain: rebuild broadcast to rank %d: %w", d, err)
		}
	}
	// Per-center pair counts come back per rank (each center is owned by
	// exactly one rank, so the scatter is disjoint).
	err := r.collect(transport.KindCounts, r.rebuildTick, -1, func(s int, g *transport.Frame) error {
		owned := r.ownedOf[s]
		if len(g.Ints) != len(owned) {
			return fmt.Errorf("domain: rank %d sent %d pair counts, owns %d atoms", s, len(g.Ints), len(owned))
		}
		for k, a := range owned {
			r.pairCnt[a] = g.Ints[k]
		}
		return nil
	})
	if err != nil {
		return err
	}
	total := int32(0)
	r.pairStart[0] = 0
	for i := 0; i < r.n; i++ {
		total += r.pairCnt[i]
		r.pairStart[i+1] = total
	}
	nPairs := int(total)
	if cap(r.pairE) < nPairs {
		r.pairE = make([]float64, nPairs)
	}
	r.pairE = r.pairE[:nPairs]
	r.stats.PairWork = nPairs
	for d := 0; d < r.nr; d++ {
		f.Reset(transport.KindLayout, d, r.rebuildTick)
		copy(f.EnsureInts(r.n+1), r.pairStart)
		if err := r.ep.Send(f); err != nil {
			return fmt.Errorf("domain: layout broadcast to rank %d: %w", d, err)
		}
	}
	// The ranks now run slots + the peer plan swap on their own; the next
	// step's owned positions queue behind the layout frame (FIFO links).
	r.started = true
	return nil
}

// step ships every rank its owned positions and assembles the returned
// forces and pair energies.
func (r *RemoteRuntime) step(forces [][3]float64) error {
	f := &r.sendF
	for d := 0; d < r.nr; d++ {
		owned := r.ownedOf[d]
		f.Reset(transport.KindOwnedPos, d, r.stepTick)
		vecs := f.EnsureVecs(len(owned))
		for k, a := range owned {
			vecs[k] = r.pw[a]
		}
		if err := r.ep.Send(f); err != nil {
			return fmt.Errorf("domain: positions to rank %d: %w", d, err)
		}
	}
	return r.collect(transport.KindForces, r.stepTick, -1, func(s int, g *transport.Frame) error {
		owned := r.ownedOf[s]
		if len(g.Vecs) != len(owned) {
			return fmt.Errorf("domain: rank %d sent %d forces, owns %d atoms", s, len(g.Vecs), len(owned))
		}
		nSlots := 0
		for _, a := range owned {
			nSlots += int(r.pairCnt[a])
		}
		if len(g.Scalars) != nSlots {
			return fmt.Errorf("domain: rank %d sent %d pair energies, holds %d slots", s, len(g.Scalars), nSlots)
		}
		k := 0
		for _, a := range owned {
			forces[a] = g.Vecs[k]
			k++
		}
		k = 0
		for _, a := range owned {
			for slot := r.pairStart[a]; slot < r.pairStart[a+1]; slot++ {
				r.pairE[slot] = g.Scalars[k]
				k++
			}
		}
		return nil
	})
}
