package domain

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/atoms"
	"repro/internal/core"
	"repro/internal/neighbor"
	"repro/internal/tensor"
	"repro/internal/transport"
	"repro/internal/units"
)

// RuntimeOptions configures a persistent rank runtime.
type RuntimeOptions struct {
	// Grid is the number of subdomains per dimension.
	Grid [3]int
	// Skin is the Verlet skin added to every cutoff when rank-local
	// neighbor lists are built. Lists (and with them the ghost imports,
	// exchange plan and evaluation arenas) are reused until any atom has
	// moved Skin/2 since the last rebuild; skin-shell pairs contribute
	// exactly zero, so results are independent of the skin and of the
	// rebuild schedule. Zero rebuilds every step.
	Skin float64
	// Halo overrides the ghost-import distance (before the skin is added).
	// Zero selects the model's largest cutoff — exactly sufficient for a
	// strictly local model, the property the paper's scaling rests on.
	// Values below the cutoff deliberately under-import (the MPNN halo
	// ablation); values above it import more ghosts than needed.
	Halo float64
	// WorkersPerRank bounds each rank's internal worker pool (chunked-graph
	// evaluation and neighbor builds). Values <= 0 select 1: by default
	// parallelism comes from the ranks themselves.
	WorkersPerRank int
	// Overlap enables the communication-hiding step pipeline: the forward
	// ghost-position exchange is posted asynchronously and hidden behind
	// the interior-block evaluation, the interior force reduction runs
	// concurrently with the frontier-block evaluation, and the reverse
	// ghost-force reduction of frontier atoms overlaps the caller's
	// integration of interior atoms (md.PipelinedPotential). Trajectories
	// are bit-identical with Overlap on or off: the schedule changes, the
	// canonical slot arithmetic does not. Off runs the same phases
	// bulk-synchronously.
	Overlap bool
	// Compiled selects each rank's execution mode: the compiled
	// record-once/replay plans (the Auto default) or the autodiff tape.
	// Both produce bit-identical rows, so trajectories are unaffected;
	// every rank's scratch caches plans per local chunk shape.
	Compiled core.CompiledMode
	// RefKernels makes every rank replay its plans with the pre-kern
	// reference kernels (see core.EvalScratch.RefKernels); bit-identical,
	// benchmark/diagnostic only.
	RefKernels bool
	// ReuseEps enables displacement-gated temporal reuse: between rebuilds,
	// a center whose accumulated environment-displacement bound stays at or
	// under ReuseEps angstroms keeps its cached force rows and pair
	// energies; only over-threshold centers re-evaluate (compacted through
	// core.EvaluateActiveRowsInto). The bound is accumulated by the master
	// from global positions and the canonical slot layout, so the active
	// decision — like the rebuild schedule — is identical on every rank
	// grid, and trajectories remain bit-identical across grids at any eps.
	// Zero disables reuse (every center evaluates every step); requires a
	// positive Skin to have any effect (a zero skin rebuilds every step).
	ReuseEps float64
	// Transport carries the ghost-position exchange and the reverse
	// force-row reduction between ranks as framed messages. Nil selects the
	// in-process channel transport (owned and closed by the runtime).
	// Because positions and rows travel as IEEE-754 bit patterns and every
	// receiver scatters them through rebuild-time exchange plans into the
	// same canonical slots, trajectories are bit-identical across
	// transports (chan, tcp on localhost, fault wrappers with no-op plans).
	Transport transport.Transport
}

// RuntimeStats aggregates the runtime's behaviour over its lifetime.
type RuntimeStats struct {
	Steps      int // force evaluations served
	Rebuilds   int // neighbor/exchange rebuilds (incl. the first)
	Migrations int // ownership changes observed at rebuilds after the first
	PairWork   int // Verlet pairs evaluated per step, summed over ranks
	// InteriorPairs counts the pairs in the interior blocks at the last
	// rebuild: centers whose complete environment references no ghost, so
	// their evaluation can hide the forward exchange. PairWork -
	// InteriorPairs is the frontier workload that must wait for arrival.
	InteriorPairs int
	MaxOwned      int // largest per-rank owned-atom count at the last rebuild
	MaxGhosts     int // largest per-rank ghost count at the last rebuild
	TotalGhost    int // ghost imports summed over ranks at the last rebuild
	// ForwardBytesPerStep is the forward ghost-exchange volume: the ghost
	// positions every rank refreshes from its neighbors each step.
	// ReverseBytesPerStep is the reverse volume: force rows computed on
	// ghost neighbors that flow back to the owning ranks in the reduction.
	ForwardBytesPerStep int
	ReverseBytesPerStep int

	// Per-phase timers, cumulative nanoseconds over all steps.
	// ExchangeWaitNs is measured on the dispatching goroutine: the
	// *exposed* forward-exchange wait — the time the step actually stalled
	// for ghost positions after any overlapping computation finished —
	// while CommWallNs is the full post-to-arrival wall of the exchange;
	// their ratio is the overlap fraction. InteriorNs, FrontierNs, and
	// ReduceNs are the slowest rank's time spent *inside* each phase
	// (interior-block eval, frontier-block eval, both force reductions),
	// self-timed on the rank goroutines — so the numbers mean the same
	// thing with the overlap pipeline on or off and exclude dispatch and
	// caller-callback overhead.
	ExchangeWaitNs int64
	CommWallNs     int64
	InteriorNs     int64
	FrontierNs     int64
	ReduceNs       int64

	// Temporal-reuse counters (ReuseEps > 0): per-step active centers and
	// their pair counts versus the totals. ActivePairs/PairSteps is the
	// recomputed work fraction; its complement is the reuse fraction.
	ActiveCenters int64
	CenterSteps   int64
	ActivePairs   int64
	PairSteps     int64
}

// ReuseFraction reports the fraction of pair work served from the cached
// contribution store (0 when reuse is disabled or no steps have run).
func (s RuntimeStats) ReuseFraction() float64 {
	if s.PairSteps == 0 {
		return 0
	}
	return 1 - float64(s.ActivePairs)/float64(s.PairSteps)
}

// OverlapFraction reports how much of the forward ghost-exchange wall time
// was hidden behind computation: 1 - exposed/total, clamped to [0, 1]. A
// bulk-synchronous runtime exposes the whole exchange (fraction ~0); the
// overlap pipeline hides it behind the interior block (fraction near 1 when
// the interior workload dominates the exchange).
func (s RuntimeStats) OverlapFraction() float64 {
	if s.CommWallNs <= 0 {
		return 0
	}
	f := 1 - float64(s.ExchangeWaitNs)/float64(s.CommWallNs)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// rankCmd is one phase command sent to a rank's worker or comm goroutine.
type rankCmd uint8

const (
	// Worker-goroutine phases.
	//
	// cmdRebuild re-derives rank membership: owned atoms, ghost imports
	// within halo+skin, the rank-local Verlet list in canonical per-center
	// order partitioned into interior/frontier blocks, and the per-center
	// pair counts the slot assignment needs.
	cmdRebuild rankCmd = iota
	// cmdSlots assigns every local pair its global slot (canonical order:
	// ascending global center, then (global neighbor, image)), publishes
	// the slot's global endpoints for the adjacency build, and marks
	// interior slots.
	cmdSlots
	// cmdPlan derives the split reduction plan from the master's per-atom
	// classification: which owned atoms reduce after the interior block and
	// which must wait for the frontier rows.
	cmdPlan
	// cmdEvalInterior refreshes the interior-block pair vectors from owned
	// positions only (no ghost data), evaluates the block, and scatters
	// rows and pair energies into the global slot buffers.
	cmdEvalInterior
	// cmdEvalFrontier refreshes the frontier-block pair vectors — ghost
	// neighbors read from the staged arena the forward exchange filled —
	// evaluates the block, and scatters.
	cmdEvalFrontier
	// cmdEvalAll runs both blocks back to back in one dispatch — the
	// bulk-synchronous schedule, where the exchange has already completed
	// so nothing is gained by splitting the barriers.
	cmdEvalAll
	// cmdReduceFrontier accumulates the forces of owned atoms that receive
	// frontier rows, in canonical slot order.
	cmdReduceFrontier

	// Comm-goroutine phases.
	//
	// cmdPack is the forward ghost-position exchange: self-owned images are
	// staged directly, cross-rank ghost blocks are posted through the
	// transport as KindGhostPos frames and scattered into the current half
	// of the double-buffered arena by the receiving rank's exchange plan.
	cmdPack
	// cmdReduceInterior accumulates the forces of owned atoms whose every
	// contribution is an interior row; it runs on the comm goroutine so it
	// can overlap the worker's frontier evaluation.
	cmdReduceInterior
	// cmdPlanExchange (rebuild only) derives and swaps the per-link
	// exchange plans: each rank tells every peer which global atoms it
	// needs forwarded (receiver-driven ghost plan) and which pair slots it
	// will push force rows for (sender-driven row plan).
	cmdPlanExchange
	// cmdExchangeRows is the reverse exchange: frontier force rows whose
	// ghost neighbor is owned by another rank travel to the owner as
	// KindRows frames and settle into their canonical slots before the
	// frontier reduction reads them.
	cmdExchangeRows
	// cmdReplicate streams each rank's owned-atom snapshot (global ids,
	// positions, velocities at the current replication point) to its buddy
	// rank and stores the predecessor's shard — the peer-redundant in-memory
	// replication behind elastic recovery (see replica.go).
	cmdReplicate
)

// Runtime is the persistent domain-decomposed force engine: long-lived rank
// workers (goroutines over preallocated channels, standing in for MPI
// ranks) that each own a core.EvalScratch, a local neighbor.Builder with a
// Verlet skin, reusable ghost/exchange buffers, and a companion comm
// goroutine (the MPI progress thread stand-in) serving the asynchronous
// ghost exchange and the early half of the split force reduction. In steady
// state — no atom has moved skin/2 since the last rebuild — a Step
// refreshes pair vectors, evaluates rank-local rows and reduces forces
// without a single heap allocation; rebuilds (membership migration, ghost
// import, neighbor lists, exchange plan, interior/frontier partition)
// happen only when the displacement trigger fires.
//
// Each step runs the communication-hiding pipeline of the paper's scaling
// argument: the forward ghost-position exchange is posted first, the
// interior pair blocks (centers whose environments reference no ghost)
// evaluate while it is in flight, the frontier blocks evaluate on arrival,
// and the force reduction is split so interior atoms finish — and can be
// integrated by a pipelined caller — while the reverse ghost-force
// reduction of frontier atoms is still running. With Overlap false the same
// phases run bulk-synchronously; the arithmetic is identical either way.
//
// Determinism: every pair is assigned a canonical global slot — ascending
// global center atom, then (global neighbor, periodic image) — independent
// of the rank grid, and per-atom forces and the total energy are reduced in
// slot order. Combined with Allegro's strict locality (a center's pairs
// form an independent sub-graph wholly owned by one rank), trajectories are
// bit-identical across rank grids, worker counts, skin values, and overlap
// on/off.
//
// A Runtime is bound to the *atoms.System it was constructed with and
// serves one simulation loop; it implements md.InPlacePotential and
// md.PipelinedPotential. Call Close to release the rank workers.
type Runtime struct {
	model *core.Model
	sys   *atoms.System
	opts  RuntimeOptions
	grid  [3]int
	sub   [3]float64
	halo  float64 // ghost-import distance before the skin is added
	skin  float64

	n      int
	pw     [][3]float64 // wrapped positions, refreshed every step
	refPos [][3]float64 // unwrapped positions at the last rebuild
	owner  []int32      // owning rank per atom, frozen between rebuilds

	ranks    []*rank
	cmds     []chan rankCmd // worker-goroutine channels
	comm     []chan rankCmd // comm-goroutine channels
	done     chan struct{}
	commDone chan struct{}
	wg       sync.WaitGroup

	// Global slot-indexed exchange state (rebuilt with the neighbor lists).
	nPairs    int
	pairCnt   []int32 // per-atom pair count (rebuild scratch)
	pairStart []int32 // slot prefix per atom, len n+1
	pairGI    []int32 // global center per slot
	pairGJ    []int32 // global neighbor per slot
	rows      [][3]float64
	pairE     []float64
	adj       []int32 // per-atom signed slot refs: slot<<1 | isNeighborSide
	adjPtr    []int32 // len n+1
	adjFill   []int32 // rebuild scratch

	// Interior/frontier classification (rebuilt with the slot layout).
	interiorSlot  []bool  // per-slot: row independent of ghost data
	atomInterior  []bool  // per-atom: every contributing slot is interior
	readyInterior []int32 // atoms deliverable after the interior reduction
	readyFrontier []int32 // atoms deliverable only after the frontier rows

	// Temporal-reuse state (ReuseEps > 0): previous-step positions, the
	// per-atom step displacements, the accumulated per-center environment
	// bounds, and the active decision. fullStep marks steps where every
	// center evaluates (rebuild steps), which also resets every bound.
	prevPos      [][3]float64
	dDisp        []float64
	envB         []float64
	activeCenter []bool
	fullStep     bool

	parity   int       // double-buffer half the current step's exchange fills
	postTime time.Time // when the current step's exchange was posted

	// Transport state: the pluggable message layer the comm goroutines post
	// through. stepTick/rebuildTick tag frames so receivers can discard
	// duplicates and stale deliveries; deadRank records peers whose death a
	// comm goroutine observed (notices or send failures); err latches the
	// first rank failure until Restore clears it.
	tr          transport.Transport
	ownTr       bool
	stepTick    uint64
	rebuildTick uint64
	deadRank    []atomic.Bool
	err         error

	// Replication state (see replica.go): the master-held store covering the
	// degenerate one-rank world (a single rank has no peer to buddy with),
	// plus the staging arguments of the current cmdReplicate phase.
	masterRepl *replStore
	replStep   uint64
	replSrcPos [][3]float64
	replSrcVel [][3]float64

	forces  [][3]float64 // caller buffer, set for the duration of one step
	energy  float64
	started bool
	closed  bool
	stats   RuntimeStats
}

// rank is the persistent state of one subdomain worker.
type rank struct {
	rt     *Runtime
	id     int
	lo, hi [3]float64

	nOwned int
	gOf    []int32       // local index -> global atom (owned first, then ghosts)
	shift  [][3]float64  // local index -> periodic image offset (owned: zero)
	code   []uint8       // local index -> image code in [0,27) (owned: 13)
	local  *atoms.System // local species + build-time positions

	builder  neighbor.Builder
	pairs    neighbor.Pairs
	slotOf   []int32
	scratch  *core.EvalScratch
	rowsBuf  [][3]float64
	pairEBuf []float64

	// Temporal-reuse scratch (ReuseEps > 0): the master's active-center
	// decision translated to local owned indices. rowsBuf/pairEBuf persist
	// between steps, so inactive pairs keep their cached rows and the
	// reverse exchange re-sends them unchanged.
	activeLoc []bool

	// Interior/frontier partition of the canonical local pair list: pairs
	// [0, nInterior) form the interior block, the rest the frontier block.
	// The views alias rk.pairs and are refreshed at rebuilds.
	nInterior          int
	intView, frontView neighbor.Pairs

	// Double-buffered ghost-position arena: ghost[rt.parity] is the staging
	// buffer the current step's forward exchange fills (see the ownership
	// contract in the README); ghost local index t reads ghost[parity][t-nOwned].
	ghost [2][][3]float64

	// Split reduction plan: local owned indices whose forces are final
	// after the interior rows (redInterior) vs those needing frontier rows.
	redInterior, redFrontier []int32

	// Per-step phase self-timing (read by the master after barriers):
	// forward-exchange wall (post -> staged) and time spent inside each
	// compute phase on this rank's goroutines.
	packNs                     int64
	evalIntNs, evalFrontNs     int64
	reduceIntNs, reduceFrontNs int64

	// Canonical-sort scratch (rebuild only).
	perm                   []int
	tmpI, tmpJ             []int
	tmpVec                 [][3]float64
	tmpDist, tmpCut        []float64
	nGhosts, ghostRowCount int

	// Transport attachment and rebuild-derived exchange plans (see
	// exchange.go). sendF/recvF are this rank's reusable staging frames;
	// the per-peer plan slices are indexed by rank id and reused across
	// rebuilds, so the steady-state framed exchange allocates nothing.
	ep           transport.Endpoint
	sendF, recvF transport.Frame
	seen         []bool  // per-phase receive bookkeeping, indexed by rank
	planBits     []uint8 // plan-exchange receipt mask per peer (bit 0 fwd, bit 1 row)
	// stash parks data frames that arrive during a phase that does not
	// consume them. In-process the phase barriers make this impossible (the
	// stash stays empty and steady steps allocate nothing); a remote rank
	// process has no global barrier, so a fast peer's ghost frame can land
	// while this rank is still collecting exchange plans.
	stash []*transport.Frame

	// Forward (ghost-position) plans. Self-owned images bypass the
	// transport: selfGhostIdx/selfGhostAtom list arena slots whose owner is
	// this rank. fwdNeed[s]/fwdArena[s] are the global atoms this rank
	// imports from s and their arena destinations (sent to s as the
	// receiver-driven KindFwdPlan); sendFwd[d] is the pack order peer d
	// asked this rank for.
	selfGhostIdx  []int32
	selfGhostAtom []int32
	fwdNeed       [][]int32
	fwdArena      [][]int32
	sendFwd       [][]int32

	// Reverse (force-row) plans. rowSendT[d] lists this rank's local pair
	// indices whose ghost neighbor is owned by d, ascending; rowPlan[d] is
	// the matching interleaved (slot, atom) wire plan sent to d as
	// KindRowPlan; rowRecv[s] is the interleaved plan received from s,
	// scattered as rows arrive.
	rowSendT [][]int32
	rowPlan  [][]int32
	rowRecv  [][]int32

	// commErr latches this rank's first transport failure of the current
	// run; the master surfaces it through Runtime.Err after barriers.
	commErr error

	// Replica store and gather scratch of the replication phase (see
	// replica.go): repl holds this rank's own shard plus its predecessor's.
	repl             *replStore
	replPos, replVel [][3]float64
}

// centerCode is the image code of an atom's own (unshifted) copy.
const centerCode = 13

// NewRuntime validates the decomposition and starts the rank workers (one
// compute goroutine and one comm goroutine per rank). The runtime is bound
// to sys: the caller (an MD integrator) mutates sys.Pos in place and calls
// EnergyForcesInto each step. No evaluation happens until the first step.
func NewRuntime(m *core.Model, sys *atoms.System, opts RuntimeOptions) (*Runtime, error) {
	if opts.Halo == 0 {
		opts.Halo = m.Cuts.Max()
	}
	if err := validateRuntime(sys, opts); err != nil {
		return nil, err
	}
	n := sys.NumAtoms()
	r := &Runtime{
		model:  m,
		sys:    sys,
		opts:   opts,
		grid:   opts.Grid,
		halo:   opts.Halo,
		skin:   opts.Skin,
		n:      n,
		pw:     make([][3]float64, n),
		refPos: make([][3]float64, n),
		owner:  make([]int32, n),

		pairCnt:   make([]int32, n),
		pairStart: make([]int32, n+1),
		adjPtr:    make([]int32, n+1),
		adjFill:   make([]int32, n),

		atomInterior:  make([]bool, n),
		readyInterior: make([]int32, 0, n),
		readyFrontier: make([]int32, 0, n),
	}
	if opts.ReuseEps > 0 {
		r.prevPos = make([][3]float64, n)
		r.dDisp = make([]float64, n)
		r.envB = make([]float64, n)
		r.activeCenter = make([]bool, n)
	}
	nr := opts.Grid[0] * opts.Grid[1] * opts.Grid[2]
	for k := 0; k < 3; k++ {
		r.sub[k] = sys.Cell[k] / float64(opts.Grid[k])
	}
	wpr := opts.WorkersPerRank
	if wpr <= 0 {
		wpr = 1 // by default parallelism comes from the ranks themselves
	}
	r.tr = opts.Transport
	if r.tr == nil {
		r.tr = transport.NewChan(nr)
		r.ownTr = true
	}
	if r.tr.Ranks() < nr {
		return nil, fmt.Errorf("domain: transport serves %d ranks, grid needs %d", r.tr.Ranks(), nr)
	}
	r.deadRank = make([]atomic.Bool, nr)
	r.masterRepl = newReplStore()
	r.done = make(chan struct{}, nr)
	r.commDone = make(chan struct{}, nr)
	r.cmds = make([]chan rankCmd, nr)
	r.comm = make([]chan rankCmd, nr)
	r.ranks = make([]*rank, nr)
	for id := 0; id < nr; id++ {
		g := opts.Grid
		cz := id % g[2]
		cy := (id / g[2]) % g[1]
		cx := id / (g[1] * g[2])
		rk := &rank{rt: r, id: id, scratch: core.NewEvalScratch(), local: atoms.NewSystem(0)}
		coord := [3]int{cx, cy, cz}
		for k := 0; k < 3; k++ {
			rk.lo[k] = float64(coord[k]) * r.sub[k]
			rk.hi[k] = rk.lo[k] + r.sub[k]
		}
		// The per-rank budget bounds both the local neighbor builds and the
		// scratch's chunked-graph evaluation (overriding Config.Workers, so
		// a loaded model's global worker setting cannot oversubscribe the
		// node with ranks x GOMAXPROCS pools).
		rk.builder.Workers = wpr
		rk.scratch.Workers = wpr
		rk.scratch.Compiled = opts.Compiled
		rk.scratch.RefKernels = opts.RefKernels
		rk.builder.Skin = opts.Skin
		ep, err := r.tr.Endpoint(id)
		if err != nil {
			if r.ownTr {
				r.tr.Close()
			}
			return nil, fmt.Errorf("domain: transport endpoint for rank %d: %w", id, err)
		}
		rk.ep = ep
		rk.seen = make([]bool, nr)
		rk.planBits = make([]uint8, nr)
		rk.fwdNeed = make([][]int32, nr)
		rk.fwdArena = make([][]int32, nr)
		rk.sendFwd = make([][]int32, nr)
		rk.rowSendT = make([][]int32, nr)
		rk.rowPlan = make([][]int32, nr)
		rk.rowRecv = make([][]int32, nr)
		rk.repl = newReplStore()
		r.ranks[id] = rk
		r.cmds[id] = make(chan rankCmd, 1)
		r.comm[id] = make(chan rankCmd, 1)
		r.wg.Add(2)
		go rk.loop(r.cmds[id])
		go rk.commLoop(r.comm[id])
	}
	return r, nil
}

// validateRuntime checks the decomposition invariants.
func validateRuntime(sys *atoms.System, opts RuntimeOptions) error {
	if !sys.PBC {
		return fmt.Errorf("domain: decomposition requires a periodic system")
	}
	if opts.Halo <= 0 {
		return fmt.Errorf("domain: halo must be positive")
	}
	if opts.Skin < 0 {
		return fmt.Errorf("domain: skin must be non-negative")
	}
	if opts.ReuseEps < 0 {
		return fmt.Errorf("domain: reuse epsilon must be non-negative")
	}
	haloTot := opts.Halo + opts.Skin
	for k := 0; k < 3; k++ {
		if opts.Grid[k] < 1 {
			return fmt.Errorf("domain: grid dimension %d must be >= 1", k)
		}
		sub := sys.Cell[k] / float64(opts.Grid[k])
		if haloTot > sub {
			return fmt.Errorf("domain: halo+skin %.2f exceeds subdomain width %.2f along %d (grid too fine)", haloTot, sub, k)
		}
		// The minimum-image refresh must keep resolving each listed pair to
		// its build-time image while atoms drift up to skin/2 each.
		if 2*(haloTot+opts.Skin) > sys.Cell[k] {
			return fmt.Errorf("domain: halo+2*skin %.2f exceeds half the cell %.2f along %d", haloTot+opts.Skin, sys.Cell[k]/2, k)
		}
	}
	return nil
}

// loop is the long-lived body of one rank's compute goroutine.
func (rk *rank) loop(cmds chan rankCmd) {
	defer rk.rt.wg.Done()
	defer rk.builder.Close()
	defer rk.scratch.Close()
	for c := range cmds {
		switch c {
		case cmdRebuild:
			rk.execRebuild()
		case cmdSlots:
			rk.execSlots()
		case cmdPlan:
			rk.execPlan()
		case cmdEvalInterior:
			rk.evalIntNs = rk.timeEval(0, rk.nInterior, &rk.intView)
		case cmdEvalFrontier:
			rk.evalFrontNs = rk.timeEval(rk.nInterior, rk.pairs.Len(), &rk.frontView)
		case cmdEvalAll:
			rk.evalIntNs = rk.timeEval(0, rk.nInterior, &rk.intView)
			rk.evalFrontNs = rk.timeEval(rk.nInterior, rk.pairs.Len(), &rk.frontView)
		case cmdReduceFrontier:
			t := time.Now()
			rk.execReduce(rk.redFrontier)
			rk.reduceFrontNs = time.Since(t).Nanoseconds()
		}
		rk.rt.done <- struct{}{}
	}
}

// commLoop is the long-lived body of one rank's comm goroutine — the
// progress-thread stand-in serving the asynchronous ghost exchange and the
// interior half of the split reduction (so it can overlap the compute
// goroutine's frontier evaluation).
func (rk *rank) commLoop(cmds chan rankCmd) {
	defer rk.rt.wg.Done()
	for c := range cmds {
		switch c {
		case cmdPack:
			rk.execExchangeGhosts()
		case cmdReduceInterior:
			t := time.Now()
			rk.execReduce(rk.redInterior)
			rk.reduceIntNs = time.Since(t).Nanoseconds()
		case cmdPlanExchange:
			rk.execPlanExchange()
		case cmdExchangeRows:
			rk.execExchangeRows()
		case cmdReplicate:
			rk.execReplicate()
		}
		rk.rt.commDone <- struct{}{}
	}
}

// send posts one phase command to every channel without waiting.
func (r *Runtime) send(chs []chan rankCmd, c rankCmd) {
	for _, ch := range chs {
		ch <- c
	}
}

// waitWorkers / waitComm collect one completion per rank; the channel
// handshakes order all cross-rank reads and writes.
func (r *Runtime) waitWorkers() {
	for range r.ranks {
		<-r.done
	}
}

func (r *Runtime) waitComm() {
	for range r.ranks {
		<-r.commDone
	}
}

// dispatch broadcasts one phase to every rank worker and waits.
func (r *Runtime) dispatch(c rankCmd) {
	r.send(r.cmds, c)
	r.waitWorkers()
}

// dispatchComm broadcasts one phase to every comm goroutine and waits.
func (r *Runtime) dispatchComm(c rankCmd) {
	r.send(r.comm, c)
	r.waitComm()
}

// Close shuts the rank workers down and releases their pools. The runtime
// is unusable afterwards.
func (r *Runtime) Close() {
	if r.closed {
		return
	}
	r.closed = true
	for _, ch := range r.cmds {
		close(ch)
	}
	for _, ch := range r.comm {
		close(ch)
	}
	r.wg.Wait()
	if r.ownTr {
		r.tr.Close()
	}
}

// Stats returns the accumulated runtime statistics.
func (r *Runtime) Stats() RuntimeStats { return r.stats }

// NumRanks returns the rank-grid size.
func (r *Runtime) NumRanks() int { return len(r.ranks) }

// Grid returns the rank grid of the decomposition.
func (r *Runtime) Grid() [3]int { return r.grid }

// Overlapped reports whether the communication-hiding pipeline is enabled.
func (r *Runtime) Overlapped() bool { return r.opts.Overlap }

// ReuseEps returns the temporal-reuse tolerance (0 when reuse is disabled).
func (r *Runtime) ReuseEps() float64 { return r.opts.ReuseEps }

// ExecMode names the execution mode of the rank evaluations ("compiled" or
// "tape") — recorded by perfmodel measurements so cluster calibrations
// never mix anchors across modes.
func (r *Runtime) ExecMode() string {
	mode := r.opts.Compiled
	if mode == core.CompiledAuto {
		mode = r.model.Cfg.Compiled
	}
	return mode.String()
}

// PairWork reports the Verlet pairs evaluated per step, summed over ranks
// (the workload term measurements normalize by).
func (r *Runtime) PairWork() int { return r.stats.PairWork }

// WorkersPerRank returns the resolved per-rank worker budget.
func (r *Runtime) WorkersPerRank() int {
	if r.opts.WorkersPerRank <= 0 {
		return 1 // the runtime's default: parallelism comes from the ranks
	}
	return r.opts.WorkersPerRank
}

// Energy returns the potential energy of the last step.
func (r *Runtime) Energy() float64 { return r.energy }

// EnergyForcesInto implements md.InPlacePotential: one decomposed force
// evaluation into the caller's buffer. sys must be the system the runtime
// was constructed with. Steady-state calls (no rebuild) allocate nothing.
func (r *Runtime) EnergyForcesInto(sys *atoms.System, forces [][3]float64) float64 {
	return r.EnergyForcesOverlap(sys, forces, nil)
}

// EnergyForcesOverlap implements md.PipelinedPotential: like
// EnergyForcesInto, but ready (when non-nil) is invoked with batches of
// atom indices as soon as their forces are final — interior atoms while the
// reverse ghost-force reduction of frontier atoms is still in flight, the
// frontier batch before returning. Every atom is delivered exactly once per
// call. The batches and their contents are identical with Overlap on or
// off; only the schedule differs.
func (r *Runtime) EnergyForcesOverlap(sys *atoms.System, forces [][3]float64, ready func(atoms []int32)) float64 {
	if sys != r.sys {
		panic("domain: Runtime is bound to the system it was constructed with")
	}
	if len(forces) != r.n {
		panic("domain: force buffer length mismatch")
	}
	if r.err != nil {
		// A rank failure is latched: forces and energy are stale, the
		// caller's integration state is poisoned from the failing step on.
		// Recovery is Restore (revive + forced rebuild) followed by
		// rewinding the integrator to a checkpoint.
		return r.energy
	}
	r.wrap()
	r.stepTick++
	rebuilt := r.needRebuild()
	if rebuilt {
		r.rebuild()
		if r.err != nil {
			return r.energy
		}
	}
	if r.opts.ReuseEps > 0 {
		r.prepareReuse(rebuilt)
	}
	r.forces = forces
	r.parity ^= 1
	if r.opts.Overlap {
		r.stepOverlap(ready)
	} else {
		r.stepSync(ready)
	}
	r.forces = nil
	r.stats.Steps++
	r.checkFailure()
	return r.energy
}

// stepOverlap is the communication-hiding schedule: post the forward
// exchange, hide it behind the interior block, overlap the interior
// reduction with the frontier block, and overlap the frontier (reverse
// ghost-force) reduction with the caller's integration of interior atoms
// and the canonical energy sum.
func (r *Runtime) stepOverlap(ready func([]int32)) {
	st := &r.stats
	r.postTime = time.Now()
	r.send(r.comm, cmdPack) // forward exchange posted asynchronously

	r.send(r.cmds, cmdEvalInterior) // interior block hides the exchange
	r.waitWorkers()

	t := time.Now()
	r.waitComm() // exposed exchange wait: whatever the interior didn't hide
	st.ExchangeWaitNs += time.Since(t).Nanoseconds()

	r.send(r.cmds, cmdEvalFrontier)   // frontier block on arrived ghosts
	r.send(r.comm, cmdReduceInterior) // overlapped: interior rows are final
	r.waitComm()                      // interior forces final
	r.waitWorkers()                   // frontier rows in their slots

	if len(r.ranks) > 1 {
		// Reverse exchange: cross-rank frontier rows settle into their
		// canonical slots before the frontier reduction reads them.
		r.dispatchComm(cmdExchangeRows)
	}

	r.send(r.cmds, cmdReduceFrontier) // reverse ghost-force reduction...
	if ready != nil {
		ready(r.readyInterior) // ...overlapped with interior integration
	}
	e := r.reduceEnergy() // ...and with the canonical energy sum
	r.waitWorkers()
	r.collectPhaseTimers()
	if ready != nil {
		ready(r.readyFrontier)
	}
	r.energy = e
}

// stepSync runs the identical phase arithmetic bulk-synchronously: the
// forward exchange completes before any evaluation starts (the whole
// exchange wall is exposed), then one fused evaluation dispatch runs both
// blocks, then both reductions run (concurrently per rank across the
// worker/comm goroutines — reduction is still strictly after all
// evaluation, the BSP shape). Three barriers per step, matching the
// pre-pipeline runtime plus the explicit exchange phase.
func (r *Runtime) stepSync(ready func([]int32)) {
	st := &r.stats
	r.postTime = time.Now()
	t := r.postTime
	r.dispatchComm(cmdPack)
	st.ExchangeWaitNs += time.Since(t).Nanoseconds()

	r.dispatch(cmdEvalAll)

	if len(r.ranks) > 1 {
		r.dispatchComm(cmdExchangeRows)
	}

	r.send(r.cmds, cmdReduceFrontier)
	r.send(r.comm, cmdReduceInterior)
	r.waitWorkers()
	r.waitComm()
	r.collectPhaseTimers()

	r.energy = r.reduceEnergy()
	if ready != nil {
		ready(r.readyInterior)
		ready(r.readyFrontier)
	}
}

// collectPhaseTimers aggregates the ranks' per-step self-timed phase walls
// (valid once every phase of the step has passed its barrier): the slowest
// rank defines each phase, so the numbers are comparable between the
// overlapped and bulk-synchronous schedules.
func (r *Runtime) collectPhaseTimers() {
	var pack, evalInt, evalFront, reduce int64
	for _, rk := range r.ranks {
		if rk.packNs > pack {
			pack = rk.packNs
		}
		if rk.evalIntNs > evalInt {
			evalInt = rk.evalIntNs
		}
		if rk.evalFrontNs > evalFront {
			evalFront = rk.evalFrontNs
		}
		if red := rk.reduceIntNs + rk.reduceFrontNs; red > reduce {
			reduce = red
		}
	}
	st := &r.stats
	st.CommWallNs += pack
	st.InteriorNs += evalInt
	st.FrontierNs += evalFront
	st.ReduceNs += reduce
}

// EnergyForces implements md.Potential (fresh force buffer per call).
func (r *Runtime) EnergyForces(sys *atoms.System) (float64, [][3]float64) {
	forces := make([][3]float64, r.n)
	e := r.EnergyForcesInto(sys, forces)
	return e, forces
}

// wrap refreshes the wrapped positions (same arithmetic as the neighbor
// builder's PBC binning, so admission decisions are grid-independent).
func (r *Runtime) wrap() { wrapPositions(r.pw, r.sys.Pos, r.sys.Cell) }

// wrapPositions writes the wrapped image of every position into dst — the
// one PBC formula shared by the in-process master and the remote driver, so
// both derive identical bits.
func wrapPositions(dst, pos [][3]float64, cell [3]float64) {
	for i, p := range pos {
		for k := 0; k < 3; k++ {
			l := cell[k]
			dst[i][k] = p[k] - l*math.Floor(p[k]/l)
		}
	}
}

// needRebuild fires the Verlet trigger: any atom displaced skin/2 since the
// last rebuild invalidates the lists. The criterion is global, so the
// rebuild schedule — and with it every admitted pair — is identical on
// every rank grid.
func (r *Runtime) needRebuild() bool {
	if !r.started {
		return true
	}
	return skinTriggered(r.skin, r.sys.Pos, r.refPos)
}

// skinTriggered reports whether any atom moved skin/2 since the reference
// positions were captured (skin <= 0 always triggers) — the Verlet rebuild
// criterion shared with the remote driver.
func skinTriggered(skin float64, pos, ref [][3]float64) bool {
	if skin <= 0 {
		return true
	}
	lim := (skin / 2) * (skin / 2)
	for i, p := range pos {
		d0 := p[0] - ref[i][0]
		d1 := p[1] - ref[i][1]
		d2 := p[2] - ref[i][2]
		if d0*d0+d1*d1+d2*d2 >= lim {
			return true
		}
	}
	return false
}

// prepareReuse derives this step's active-center decision for the
// displacement-gated reuse engine. Rebuild steps evaluate everything and
// reset every bound. Between rebuilds the master advances each atom's
// displacement since the previous step (global unwrapped positions — a
// ghost's displacement equals its owner's, because image shifts are frozen
// between rebuilds) and accumulates the per-center environment bound over
// the canonical slot layout: own displacement plus the maximum neighbor
// displacement. Centers over ReuseEps are marked active and their bounds
// reset; everything here reads grid-invariant master state, so the decision
// is identical on every rank grid.
func (r *Runtime) prepareReuse(rebuilt bool) {
	st := &r.stats
	n := int64(r.n)
	st.CenterSteps += n
	st.PairSteps += int64(r.nPairs)
	if rebuilt {
		r.fullStep = true
		for i := range r.envB {
			r.envB[i] = 0
		}
		copy(r.prevPos, r.sys.Pos)
		st.ActiveCenters += n
		st.ActivePairs += int64(r.nPairs)
		return
	}
	r.fullStep = false
	neighbor.StepDisplacements(r.sys.Pos, r.prevPos, r.dDisp)
	eps := r.opts.ReuseEps
	var nact, npact int64
	for i := 0; i < r.n; i++ {
		m := 0.0
		for z := r.pairStart[i]; z < r.pairStart[i+1]; z++ {
			if dj := r.dDisp[r.pairGJ[z]]; dj > m {
				m = dj
			}
		}
		r.envB[i] += r.dDisp[i] + m
		a := r.envB[i] > eps
		r.activeCenter[i] = a
		if a {
			nact++
			npact += int64(r.pairStart[i+1] - r.pairStart[i])
		}
	}
	copy(r.prevPos, r.sys.Pos)
	// Past ~5/8 active pair work, the compacted replay's power-of-two
	// padding stops saving anything over the plain evaluation schedule, so
	// take the exact full step and reset every bound. The threshold is a
	// fraction of grid-invariant totals — not of any rank's share — so the
	// decision stays identical on every grid.
	if npact*8 >= int64(r.nPairs)*5 {
		r.fullStep = true
		for i := range r.envB {
			r.envB[i] = 0
		}
		st.ActiveCenters += n
		st.ActivePairs += int64(r.nPairs)
		return
	}
	for i := 0; i < r.n; i++ {
		if r.activeCenter[i] {
			r.envB[i] = 0
		}
	}
	st.ActiveCenters += nact
	st.ActivePairs += npact
}

// rankOf maps a wrapped position to its owning rank.
func (r *Runtime) rankOf(p [3]float64) int { return rankOfCell(r.grid, r.sub, p) }

// rankOfCell is the ownership rule as a standalone function (shared with
// the remote driver's classification).
func rankOfCell(grid [3]int, sub [3]float64, p [3]float64) int {
	var c [3]int
	for k := 0; k < 3; k++ {
		c[k] = int(p[k] / sub[k])
		if c[k] >= grid[k] {
			c[k] = grid[k] - 1
		}
		if c[k] < 0 {
			c[k] = 0
		}
	}
	return (c[0]*grid[1]+c[1])*grid[2] + c[2]
}

// rebuild re-derives ownership (incremental migration: assignments change
// only here, when atoms have crossed subdomain boundaries), ghost imports,
// rank-local Verlet lists with their interior/frontier partition, the
// canonical slot layout, the reduction adjacency, and the split reduction
// plan. Rebuild steps may allocate (lists and arenas re-warm); steady
// steps do not.
func (r *Runtime) rebuild() {
	r.stats.Rebuilds++
	mig := 0
	for i := 0; i < r.n; i++ {
		o := int32(r.rankOf(r.pw[i]))
		if r.started && o != r.owner[i] {
			mig++
		}
		r.owner[i] = o
	}
	if r.started {
		r.stats.Migrations += mig
	}
	copy(r.refPos, r.sys.Pos)
	for i := range r.pairCnt {
		r.pairCnt[i] = 0
	}

	r.dispatch(cmdRebuild)

	// Canonical slot layout: ascending global center, each center's block
	// in the owning rank's sorted order.
	total := int32(0)
	r.pairStart[0] = 0
	for i := 0; i < r.n; i++ {
		total += r.pairCnt[i]
		r.pairStart[i+1] = total
	}
	r.nPairs = int(total)
	if cap(r.pairGI) < r.nPairs {
		r.pairGI = make([]int32, r.nPairs)
		r.pairGJ = make([]int32, r.nPairs)
		r.rows = make([][3]float64, r.nPairs)
		r.pairE = make([]float64, r.nPairs)
	}
	r.pairGI = r.pairGI[:r.nPairs]
	r.pairGJ = r.pairGJ[:r.nPairs]
	r.rows = r.rows[:r.nPairs]
	r.pairE = r.pairE[:r.nPairs]
	if cap(r.interiorSlot) < r.nPairs {
		r.interiorSlot = make([]bool, r.nPairs)
	}
	r.interiorSlot = r.interiorSlot[:r.nPairs]

	r.dispatch(cmdSlots)
	r.buildAdjacency()
	r.classifyAtoms()
	r.dispatch(cmdPlan)
	// Exchange-plan swap: every rank tells its peers which atoms to
	// forward and which row slots to expect (no-op on a 1-rank grid).
	r.rebuildTick++
	r.dispatchComm(cmdPlanExchange)
	r.checkFailure()

	st := &r.stats
	st.PairWork = r.nPairs
	st.InteriorPairs = 0
	st.MaxOwned, st.MaxGhosts, st.TotalGhost = 0, 0, 0
	st.ForwardBytesPerStep, st.ReverseBytesPerStep = 0, 0
	for _, rk := range r.ranks {
		if rk.nOwned > st.MaxOwned {
			st.MaxOwned = rk.nOwned
		}
		if rk.nGhosts > st.MaxGhosts {
			st.MaxGhosts = rk.nGhosts
		}
		st.InteriorPairs += rk.nInterior
		st.TotalGhost += rk.nGhosts
		st.ForwardBytesPerStep += rk.nGhosts * 24       // 3 float64 per ghost position
		st.ReverseBytesPerStep += rk.ghostRowCount * 24 // 3 float64 per ghost force row
	}
	r.started = true
}

// buildAdjacency precomputes, per atom, the slots contributing to its force
// in ascending slot order: +row where the atom is the center, -row where it
// is the neighbor — exactly the serial accumulation order, split per atom.
func (r *Runtime) buildAdjacency() {
	need := 2 * r.nPairs
	if cap(r.adj) < need {
		r.adj = make([]int32, need)
	}
	r.adj = r.adj[:need]
	cnt := r.adjFill
	for i := range cnt {
		cnt[i] = 0
	}
	for z := 0; z < r.nPairs; z++ {
		cnt[r.pairGI[z]]++
		cnt[r.pairGJ[z]]++
	}
	r.adjPtr[0] = 0
	for i := 0; i < r.n; i++ {
		r.adjPtr[i+1] = r.adjPtr[i] + cnt[i]
	}
	copy(cnt, r.adjPtr[:r.n]) // running write offsets
	for z := 0; z < r.nPairs; z++ {
		gi, gj := r.pairGI[z], r.pairGJ[z]
		r.adj[cnt[gi]] = int32(z) << 1
		cnt[gi]++
		r.adj[cnt[gj]] = int32(z)<<1 | 1
		cnt[gj]++
	}
}

// classifyAtoms derives the split reduction plan: an atom's force is final
// after the interior rows iff every slot in its adjacency belongs to an
// interior center — no frontier row, from any rank, touches it. The ready
// lists keep ascending atom order, so a pipelined integrator visits atoms
// deterministically.
func (r *Runtime) classifyAtoms() {
	r.readyInterior = r.readyInterior[:0]
	r.readyFrontier = r.readyFrontier[:0]
	for a := 0; a < r.n; a++ {
		interior := true
		for _, e := range r.adj[r.adjPtr[a]:r.adjPtr[a+1]] {
			if !r.interiorSlot[e>>1] {
				interior = false
				break
			}
		}
		r.atomInterior[a] = interior
		if interior {
			r.readyInterior = append(r.readyInterior, int32(a))
		} else {
			r.readyFrontier = append(r.readyFrontier, int32(a))
		}
	}
}

// reduceEnergy sums pair energies in canonical slot order, then per-species
// shifts in atom order, then applies the final-stage precision — identical
// on every rank grid.
func (r *Runtime) reduceEnergy() float64 {
	return reduceEnergySlots(r.pairE, r.model, r.sys.Species)
}

// reduceEnergySlots is the canonical energy reduction as a standalone
// function: pairE in ascending global slot order, then per-species shifts
// in atom order, then the final-stage precision. The remote driver runs the
// same reduction over the pair energies gathered from its rank processes,
// so distributed totals match the in-process ones bit for bit.
func reduceEnergySlots(pairE []float64, m *core.Model, species []units.Species) float64 {
	e := 0.0
	for _, pe := range pairE {
		e += pe
	}
	for _, sp := range species {
		e += m.EnergyShift[m.Idx.Index(sp)]
	}
	if m.Cfg.Precision.Final != tensor.F64 {
		e = m.Cfg.Precision.Final.Round(e)
	}
	return e
}

// --- rank phases ---

// execRebuild re-derives this rank's membership, Verlet list, partition,
// and staging arenas.
func (rk *rank) execRebuild() {
	rt := rk.rt
	rk.gOf = rk.gOf[:0]
	rk.shift = rk.shift[:0]
	rk.code = rk.code[:0]
	for i := 0; i < rt.n; i++ {
		if rt.owner[i] == int32(rk.id) {
			rk.gOf = append(rk.gOf, int32(i))
			rk.shift = append(rk.shift, [3]float64{})
			rk.code = append(rk.code, centerCode)
		}
	}
	rk.nOwned = len(rk.gOf)

	// Ghost import: every periodic image inside the halo+skin envelope of
	// the subdomain, in deterministic (atom, image) order. Shift vectors
	// are exact multiples of the cell, so a ghost position equals the
	// owner's wrapped position plus its shift on every grid.
	haloTot := rt.halo + rt.skin
	cell := rt.sys.Cell
	for j := 0; j < rt.n; j++ {
		p := rt.pw[j]
		for sx := -1; sx <= 1; sx++ {
			for sy := -1; sy <= 1; sy++ {
				for sz := -1; sz <= 1; sz++ {
					if rt.owner[j] == int32(rk.id) && sx == 0 && sy == 0 && sz == 0 {
						continue // the owned copy itself
					}
					sh := [3]float64{float64(sx) * cell[0], float64(sy) * cell[1], float64(sz) * cell[2]}
					inside := true
					for k := 0; k < 3; k++ {
						v := p[k] + sh[k]
						if v < rk.lo[k]-haloTot || v >= rk.hi[k]+haloTot {
							inside = false
							break
						}
					}
					if inside {
						rk.gOf = append(rk.gOf, int32(j))
						rk.shift = append(rk.shift, sh)
						rk.code = append(rk.code, uint8((sx+1)*9+(sy+1)*3+(sz+1)))
					}
				}
			}
		}
	}
	rk.nGhosts = len(rk.gOf) - rk.nOwned

	// Double-buffered ghost staging arenas (forward-exchange destination).
	for pr := 0; pr < 2; pr++ {
		if cap(rk.ghost[pr]) < rk.nGhosts {
			rk.ghost[pr] = make([][3]float64, rk.nGhosts)
		}
		rk.ghost[pr] = rk.ghost[pr][:rk.nGhosts]
	}

	// Local system: owned atoms first (CenterLimit), ghosts after.
	nLoc := len(rk.gOf)
	if cap(rk.local.Pos) < nLoc {
		rk.local.Pos = make([][3]float64, nLoc)
		rk.local.Species = make([]units.Species, nLoc)
	}
	rk.local.Pos = rk.local.Pos[:nLoc]
	rk.local.Species = rk.local.Species[:nLoc]
	for t, g := range rk.gOf {
		rk.local.Species[t] = rt.sys.Species[g]
		sh := rk.shift[t]
		pw := rt.pw[g]
		rk.local.Pos[t] = [3]float64{pw[0] + sh[0], pw[1] + sh[1], pw[2] + sh[2]}
	}
	rk.local.PBC = false

	if rk.nOwned > 0 {
		rk.builder.CenterLimit = rk.nOwned
		rk.builder.BuildInto(&rk.pairs, rk.local, rt.model.Cuts)
		rk.canonicalize()
		rk.nInterior = rk.builder.PartitionInterior(&rk.pairs)
	} else {
		// A rank that owns no atoms centers no pairs. (Builder.CenterLimit
		// treats 0 as "all atoms", which would build ghost-centered
		// duplicates of other ranks' pairs — skip the build entirely.)
		rk.pairs.Reset(nLoc)
		rk.nInterior = 0
	}
	rk.intView = pairsView(&rk.pairs, 0, rk.nInterior)
	rk.frontView = pairsView(&rk.pairs, rk.nInterior, rk.pairs.Len())

	// Publish per-center pair counts (centers are owned, hence disjoint
	// across ranks) and count reverse-exchange rows.
	rk.ghostRowCount = 0
	p := &rk.pairs
	for t := 0; t < p.Len(); t++ {
		rt.pairCnt[rk.gOf[p.I[t]]]++
		if p.J[t] >= rk.nOwned {
			rk.ghostRowCount++
		}
	}
	if cap(rk.rowsBuf) < p.Len() {
		rk.rowsBuf = make([][3]float64, p.Len())
		rk.pairEBuf = make([]float64, p.Len())
	}
	rk.rowsBuf = rk.rowsBuf[:p.Len()]
	rk.pairEBuf = rk.pairEBuf[:p.Len()]
	if cap(rk.slotOf) < p.Len() {
		rk.slotOf = make([]int32, p.Len())
	}
	rk.slotOf = rk.slotOf[:p.Len()]
	if rt.opts.ReuseEps > 0 {
		if cap(rk.activeLoc) < rk.nOwned {
			rk.activeLoc = make([]bool, rk.nOwned)
		}
		rk.activeLoc = rk.activeLoc[:rk.nOwned]
	}
}

// pairsView carves the [lo,hi) sub-list of p as an aliasing Pairs value
// (the block the evaluator runs over; storage is shared with p).
func pairsView(p *neighbor.Pairs, lo, hi int) neighbor.Pairs {
	return neighbor.Pairs{
		I: p.I[lo:hi], J: p.J[lo:hi], Vec: p.Vec[lo:hi],
		Dist: p.Dist[lo:hi], Cut: p.Cut[lo:hi],
		NumReal: hi - lo,
		NAtoms:  p.NAtoms,
	}
}

// canonicalize orders each center's pairs by (global neighbor, periodic
// image) — a key independent of the rank grid and of the local cell-scan
// order, so per-center environment sums accumulate identically everywhere.
func (rk *rank) canonicalize() {
	p := &rk.pairs
	z := p.Len()
	rk.perm = rk.perm[:0]
	for t := 0; t < z; t++ {
		rk.perm = append(rk.perm, t)
	}
	key := func(t int) int64 {
		j := p.J[t]
		return int64(rk.gOf[j])*27 + int64(rk.code[j])
	}
	for blo := 0; blo < z; {
		bhi := blo + 1
		for bhi < z && p.I[bhi] == p.I[blo] {
			bhi++
		}
		blk := rk.perm[blo:bhi]
		sort.Slice(blk, func(a, b int) bool { return key(blk[a]) < key(blk[b]) })
		blo = bhi
	}
	rk.tmpI = append(rk.tmpI[:0], p.I...)
	rk.tmpJ = append(rk.tmpJ[:0], p.J...)
	rk.tmpVec = append(rk.tmpVec[:0], p.Vec...)
	rk.tmpDist = append(rk.tmpDist[:0], p.Dist...)
	rk.tmpCut = append(rk.tmpCut[:0], p.Cut...)
	for t, src := range rk.perm {
		p.I[t] = rk.tmpI[src]
		p.J[t] = rk.tmpJ[src]
		p.Vec[t] = rk.tmpVec[src]
		p.Dist[t] = rk.tmpDist[src]
		p.Cut[t] = rk.tmpCut[src]
	}
}

// execSlots assigns global slots and marks interior ones. A rank's pairs
// are grouped by contiguous center blocks (canonical within each class),
// so each center's block lands contiguously at the center's canonical
// offset; the partition moved whole blocks, never split one.
func (rk *rank) execSlots() {
	rt := rk.rt
	p := &rk.pairs
	z := p.Len()
	for t := 0; t < z; {
		center := p.I[t]
		gi := rk.gOf[center]
		slot := rt.pairStart[gi]
		for ; t < z && p.I[t] == center; t++ {
			rk.slotOf[t] = slot
			rt.pairGI[slot] = gi
			rt.pairGJ[slot] = rk.gOf[p.J[t]]
			rt.interiorSlot[slot] = t < rk.nInterior
			slot++
		}
	}
}

// execPlan splits this rank's owned atoms by the master's classification:
// forces of redInterior atoms are final after the interior rows, the rest
// wait for the frontier (reverse ghost-force) rows.
func (rk *rank) execPlan() {
	rt := rk.rt
	rk.redInterior = rk.redInterior[:0]
	rk.redFrontier = rk.redFrontier[:0]
	for t := 0; t < rk.nOwned; t++ {
		if rt.atomInterior[rk.gOf[t]] {
			rk.redInterior = append(rk.redInterior, int32(t))
		} else {
			rk.redFrontier = append(rk.redFrontier, int32(t))
		}
	}
}

// timeEval runs execEval under the rank's phase self-timer; empty blocks
// report zero.
func (rk *rank) timeEval(lo, hi int, view *neighbor.Pairs) int64 {
	if hi <= lo {
		return 0
	}
	t := time.Now()
	rk.execEval(lo, hi, view)
	return time.Since(t).Nanoseconds()
}

// execEval evaluates one block of this rank's pair list: refresh the
// block's pair vectors from current positions with the one minimum-image
// formula used on all grids — interior blocks read owned positions only;
// frontier blocks read ghost neighbors from the staged arena the forward
// exchange filled — evaluate the block's rows, and scatter them to their
// canonical slots.
func (rk *rank) execEval(lo, hi int, view *neighbor.Pairs) {
	if hi <= lo {
		return
	}
	rt := rk.rt
	if rt.opts.ReuseEps > 0 && !rt.fullStep {
		rk.execEvalActive(lo, hi, view)
		return
	}
	for t := lo; t < hi; t++ {
		rk.refreshPair(t)
	}
	rt.model.EvaluateRowsInto(rk.scratch, rk.local, view, rk.rowsBuf[lo:hi], rk.pairEBuf[lo:hi])
	for t := lo; t < hi; t++ {
		s := rk.slotOf[t]
		rt.rows[s] = rk.rowsBuf[t]
		rt.pairE[s] = rk.pairEBuf[t]
	}
}

// refreshPair recomputes one listed pair's displacement vector and distance
// from current positions with the one minimum-image formula used on all
// grids (ghost neighbors read the staged arena, bitwise the owner's
// position plus a frozen shift).
func (rk *rank) refreshPair(t int) {
	rt := rk.rt
	p := &rk.pairs
	cell := rt.sys.Cell
	pi := rt.pw[rk.gOf[p.I[t]]]
	var pj [3]float64
	if j := p.J[t]; j >= rk.nOwned {
		pj = rk.ghost[rt.parity][j-rk.nOwned] // staged ghost, bitwise the owner's position
	} else {
		pj = rt.pw[rk.gOf[j]]
	}
	var d [3]float64
	for k := 0; k < 3; k++ {
		dk := pj[k] - pi[k]
		dk -= cell[k] * math.Round(dk/cell[k])
		d[k] = dk
	}
	p.Vec[t] = d
	p.Dist[t] = math.Sqrt(d[0]*d[0] + d[1]*d[1] + d[2]*d[2])
}

// execEvalActive is the temporal-reuse variant of execEval: refresh and
// re-evaluate only the pairs whose center the master marked active (the
// compacted partial replay of core.EvaluateActiveRowsInto), leaving every
// other pair's cached row in rowsBuf and in its canonical slot untouched.
func (rk *rank) execEvalActive(lo, hi int, view *neighbor.Pairs) {
	rt := rk.rt
	for t := 0; t < rk.nOwned; t++ {
		rk.activeLoc[t] = rt.activeCenter[rk.gOf[t]]
	}
	p := &rk.pairs
	for t := lo; t < hi; t++ {
		if rk.activeLoc[p.I[t]] {
			rk.refreshPair(t)
		}
	}
	rt.model.EvaluateActiveRowsInto(rk.scratch, rk.local, view, rk.activeLoc, rk.rowsBuf[lo:hi], rk.pairEBuf[lo:hi])
	for t := lo; t < hi; t++ {
		if !rk.activeLoc[p.I[t]] {
			continue
		}
		s := rk.slotOf[t]
		rt.rows[s] = rk.rowsBuf[t]
		rt.pairE[s] = rk.pairEBuf[t]
	}
}

// execReduce computes the listed owned atoms' forces from the global rows
// in ascending slot order — bitwise the serial accumulation, partitioned by
// ownership and by interior/frontier readiness.
func (rk *rank) execReduce(which []int32) {
	rt := rk.rt
	for _, t := range which {
		a := rk.gOf[t]
		var f [3]float64
		for _, e := range rt.adj[rt.adjPtr[a]:rt.adjPtr[a+1]] {
			row := &rt.rows[e>>1]
			if e&1 == 0 {
				f[0] += row[0]
				f[1] += row[1]
				f[2] += row[2]
			} else {
				f[0] -= row[0]
				f[1] -= row[1]
				f[2] -= row[2]
			}
		}
		rt.forces[a] = f
	}
}
