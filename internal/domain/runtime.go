package domain

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/atoms"
	"repro/internal/core"
	"repro/internal/neighbor"
	"repro/internal/tensor"
	"repro/internal/units"
)

// RuntimeOptions configures a persistent rank runtime.
type RuntimeOptions struct {
	// Grid is the number of subdomains per dimension.
	Grid [3]int
	// Skin is the Verlet skin added to every cutoff when rank-local
	// neighbor lists are built. Lists (and with them the ghost imports,
	// exchange plan and evaluation arenas) are reused until any atom has
	// moved Skin/2 since the last rebuild; skin-shell pairs contribute
	// exactly zero, so results are independent of the skin and of the
	// rebuild schedule. Zero rebuilds every step.
	Skin float64
	// Halo overrides the ghost-import distance (before the skin is added).
	// Zero selects the model's largest cutoff — exactly sufficient for a
	// strictly local model, the property the paper's scaling rests on.
	// Values below the cutoff deliberately under-import (the MPNN halo
	// ablation); values above it import more ghosts than needed.
	Halo float64
	// WorkersPerRank bounds each rank's internal worker pool (chunked-graph
	// evaluation and neighbor builds). Values <= 0 select 1: by default
	// parallelism comes from the ranks themselves.
	WorkersPerRank int
}

// RuntimeStats aggregates the runtime's behaviour over its lifetime.
type RuntimeStats struct {
	Steps      int // force evaluations served
	Rebuilds   int // neighbor/exchange rebuilds (incl. the first)
	Migrations int // ownership changes observed at rebuilds after the first
	PairWork   int // Verlet pairs evaluated per step, summed over ranks
	MaxOwned   int // largest per-rank owned-atom count at the last rebuild
	MaxGhosts  int // largest per-rank ghost count at the last rebuild
	TotalGhost int // ghost imports summed over ranks at the last rebuild
	// ForwardBytesPerStep is the forward ghost-exchange volume: the ghost
	// positions every rank refreshes from its neighbors each step.
	// ReverseBytesPerStep is the reverse volume: force rows computed on
	// ghost neighbors that flow back to the owning ranks in the reduction.
	ForwardBytesPerStep int
	ReverseBytesPerStep int
}

// rankCmd is one phase command sent to every rank worker.
type rankCmd uint8

const (
	// cmdRebuild re-derives rank membership: owned atoms, ghost imports
	// within halo+skin, the rank-local Verlet list in canonical per-center
	// order, and the per-center pair counts the slot assignment needs.
	cmdRebuild rankCmd = iota
	// cmdSlots assigns every local pair its global slot (canonical order:
	// ascending global center, then (global neighbor, image)) and publishes
	// the slot's global endpoints for the adjacency build.
	cmdSlots
	// cmdEval refreshes pair vectors from current positions, evaluates the
	// rank's pair rows on its own EvalScratch, and scatters rows and pair
	// energies into the global slot buffers.
	cmdEval
	// cmdReduce accumulates each owned atom's force from the global rows in
	// canonical slot order (the deterministic reverse ghost reduction).
	cmdReduce
)

// Runtime is the persistent domain-decomposed force engine: long-lived rank
// workers (goroutines over preallocated channels, standing in for MPI
// ranks) that each own a core.EvalScratch, a local neighbor.Builder with a
// Verlet skin, and reusable ghost/exchange buffers. In steady state — no
// atom has moved skin/2 since the last rebuild — a Step refreshes pair
// vectors, evaluates rank-local rows and reduces forces without a single
// heap allocation; rebuilds (membership migration, ghost import, neighbor
// lists, exchange plan) happen only when the displacement trigger fires.
//
// Determinism: every pair is assigned a canonical global slot — ascending
// global center atom, then (global neighbor, periodic image) — independent
// of the rank grid, and per-atom forces and the total energy are reduced in
// slot order. Combined with Allegro's strict locality (a center's pairs
// form an independent sub-graph wholly owned by one rank), trajectories are
// bit-identical across rank grids, worker counts, and skin values.
//
// A Runtime is bound to the *atoms.System it was constructed with and
// serves one simulation loop; it implements md.InPlacePotential. Call Close
// to release the rank workers.
type Runtime struct {
	model *core.Model
	sys   *atoms.System
	opts  RuntimeOptions
	grid  [3]int
	sub   [3]float64
	halo  float64 // ghost-import distance before the skin is added
	skin  float64

	n      int
	pw     [][3]float64 // wrapped positions, refreshed every step
	refPos [][3]float64 // unwrapped positions at the last rebuild
	owner  []int32      // owning rank per atom, frozen between rebuilds

	ranks []*rank
	cmds  []chan rankCmd
	done  chan struct{}
	wg    sync.WaitGroup

	// Global slot-indexed exchange state (rebuilt with the neighbor lists).
	nPairs    int
	pairCnt   []int32 // per-atom pair count (rebuild scratch)
	pairStart []int32 // slot prefix per atom, len n+1
	pairGI    []int32 // global center per slot
	pairGJ    []int32 // global neighbor per slot
	rows      [][3]float64
	pairE     []float64
	adj       []int32 // per-atom signed slot refs: slot<<1 | isNeighborSide
	adjPtr    []int32 // len n+1
	adjFill   []int32 // rebuild scratch

	forces  [][3]float64 // caller buffer, set for the duration of one step
	energy  float64
	started bool
	closed  bool
	stats   RuntimeStats
}

// rank is the persistent state of one subdomain worker.
type rank struct {
	rt     *Runtime
	id     int
	lo, hi [3]float64

	nOwned int
	gOf    []int32       // local index -> global atom (owned first, then ghosts)
	shift  [][3]float64  // local index -> periodic image offset (owned: zero)
	code   []uint8       // local index -> image code in [0,27) (owned: 13)
	local  *atoms.System // local species + build-time positions

	builder  neighbor.Builder
	pairs    neighbor.Pairs
	slotOf   []int32
	scratch  *core.EvalScratch
	rowsBuf  [][3]float64
	pairEBuf []float64

	// Canonical-sort scratch (rebuild only).
	perm                   []int
	tmpI, tmpJ             []int
	tmpVec                 [][3]float64
	tmpDist, tmpCut        []float64
	nGhosts, ghostRowCount int
}

// centerCode is the image code of an atom's own (unshifted) copy.
const centerCode = 13

// NewRuntime validates the decomposition and starts the rank workers. The
// runtime is bound to sys: the caller (an MD integrator) mutates sys.Pos in
// place and calls EnergyForcesInto each step. No evaluation happens until
// the first step.
func NewRuntime(m *core.Model, sys *atoms.System, opts RuntimeOptions) (*Runtime, error) {
	if opts.Halo == 0 {
		opts.Halo = m.Cuts.Max()
	}
	if err := validateRuntime(sys, opts); err != nil {
		return nil, err
	}
	n := sys.NumAtoms()
	r := &Runtime{
		model:  m,
		sys:    sys,
		opts:   opts,
		grid:   opts.Grid,
		halo:   opts.Halo,
		skin:   opts.Skin,
		n:      n,
		pw:     make([][3]float64, n),
		refPos: make([][3]float64, n),
		owner:  make([]int32, n),

		pairCnt:   make([]int32, n),
		pairStart: make([]int32, n+1),
		adjPtr:    make([]int32, n+1),
		adjFill:   make([]int32, n),
	}
	nr := opts.Grid[0] * opts.Grid[1] * opts.Grid[2]
	for k := 0; k < 3; k++ {
		r.sub[k] = sys.Cell[k] / float64(opts.Grid[k])
	}
	wpr := opts.WorkersPerRank
	if wpr <= 0 {
		wpr = 1 // by default parallelism comes from the ranks themselves
	}
	r.done = make(chan struct{}, nr)
	r.cmds = make([]chan rankCmd, nr)
	r.ranks = make([]*rank, nr)
	for id := 0; id < nr; id++ {
		g := opts.Grid
		cz := id % g[2]
		cy := (id / g[2]) % g[1]
		cx := id / (g[1] * g[2])
		rk := &rank{rt: r, id: id, scratch: core.NewEvalScratch(), local: atoms.NewSystem(0)}
		coord := [3]int{cx, cy, cz}
		for k := 0; k < 3; k++ {
			rk.lo[k] = float64(coord[k]) * r.sub[k]
			rk.hi[k] = rk.lo[k] + r.sub[k]
		}
		// The per-rank budget bounds both the local neighbor builds and the
		// scratch's chunked-graph evaluation (overriding Config.Workers, so
		// a loaded model's global worker setting cannot oversubscribe the
		// node with ranks x GOMAXPROCS pools).
		rk.builder.Workers = wpr
		rk.scratch.Workers = wpr
		rk.builder.Skin = opts.Skin
		r.ranks[id] = rk
		r.cmds[id] = make(chan rankCmd, 1)
		r.wg.Add(1)
		go rk.loop(r.cmds[id])
	}
	return r, nil
}

// validateRuntime checks the decomposition invariants.
func validateRuntime(sys *atoms.System, opts RuntimeOptions) error {
	if !sys.PBC {
		return fmt.Errorf("domain: decomposition requires a periodic system")
	}
	if opts.Halo <= 0 {
		return fmt.Errorf("domain: halo must be positive")
	}
	if opts.Skin < 0 {
		return fmt.Errorf("domain: skin must be non-negative")
	}
	haloTot := opts.Halo + opts.Skin
	for k := 0; k < 3; k++ {
		if opts.Grid[k] < 1 {
			return fmt.Errorf("domain: grid dimension %d must be >= 1", k)
		}
		sub := sys.Cell[k] / float64(opts.Grid[k])
		if haloTot > sub {
			return fmt.Errorf("domain: halo+skin %.2f exceeds subdomain width %.2f along %d (grid too fine)", haloTot, sub, k)
		}
		// The minimum-image refresh must keep resolving each listed pair to
		// its build-time image while atoms drift up to skin/2 each.
		if 2*(haloTot+opts.Skin) > sys.Cell[k] {
			return fmt.Errorf("domain: halo+2*skin %.2f exceeds half the cell %.2f along %d", haloTot+opts.Skin, sys.Cell[k]/2, k)
		}
	}
	return nil
}

// loop is the long-lived body of one rank worker.
func (rk *rank) loop(cmds chan rankCmd) {
	defer rk.rt.wg.Done()
	defer rk.builder.Close()
	defer rk.scratch.Close()
	for c := range cmds {
		switch c {
		case cmdRebuild:
			rk.execRebuild()
		case cmdSlots:
			rk.execSlots()
		case cmdEval:
			rk.execEval()
		case cmdReduce:
			rk.execReduce()
		}
		rk.rt.done <- struct{}{}
	}
}

// dispatch broadcasts one phase to every rank and waits for completion; the
// channel handshakes order all cross-rank reads and writes.
func (r *Runtime) dispatch(c rankCmd) {
	for _, ch := range r.cmds {
		ch <- c
	}
	for range r.ranks {
		<-r.done
	}
}

// Close shuts the rank workers down and releases their pools. The runtime
// is unusable afterwards.
func (r *Runtime) Close() {
	if r.closed {
		return
	}
	r.closed = true
	for _, ch := range r.cmds {
		close(ch)
	}
	r.wg.Wait()
}

// Stats returns the accumulated runtime statistics.
func (r *Runtime) Stats() RuntimeStats { return r.stats }

// NumRanks returns the rank-grid size.
func (r *Runtime) NumRanks() int { return len(r.ranks) }

// Grid returns the rank grid of the decomposition.
func (r *Runtime) Grid() [3]int { return r.grid }

// PairWork reports the Verlet pairs evaluated per step, summed over ranks
// (the workload term measurements normalize by).
func (r *Runtime) PairWork() int { return r.stats.PairWork }

// WorkersPerRank returns the resolved per-rank worker budget.
func (r *Runtime) WorkersPerRank() int {
	if r.opts.WorkersPerRank <= 0 {
		return 1 // the runtime's default: parallelism comes from the ranks
	}
	return r.opts.WorkersPerRank
}

// Energy returns the potential energy of the last step.
func (r *Runtime) Energy() float64 { return r.energy }

// EnergyForcesInto implements md.InPlacePotential: one decomposed force
// evaluation into the caller's buffer. sys must be the system the runtime
// was constructed with. Steady-state calls (no rebuild) allocate nothing.
func (r *Runtime) EnergyForcesInto(sys *atoms.System, forces [][3]float64) float64 {
	if sys != r.sys {
		panic("domain: Runtime is bound to the system it was constructed with")
	}
	if len(forces) != r.n {
		panic("domain: force buffer length mismatch")
	}
	r.wrap()
	if r.needRebuild() {
		r.rebuild()
	}
	r.forces = forces
	r.dispatch(cmdEval)
	r.dispatch(cmdReduce)
	r.forces = nil
	r.energy = r.reduceEnergy()
	r.stats.Steps++
	return r.energy
}

// EnergyForces implements md.Potential (fresh force buffer per call).
func (r *Runtime) EnergyForces(sys *atoms.System) (float64, [][3]float64) {
	forces := make([][3]float64, r.n)
	e := r.EnergyForcesInto(sys, forces)
	return e, forces
}

// wrap refreshes the wrapped positions (same arithmetic as the neighbor
// builder's PBC binning, so admission decisions are grid-independent).
func (r *Runtime) wrap() {
	cell := r.sys.Cell
	for i, p := range r.sys.Pos {
		for k := 0; k < 3; k++ {
			l := cell[k]
			r.pw[i][k] = p[k] - l*math.Floor(p[k]/l)
		}
	}
}

// needRebuild fires the Verlet trigger: any atom displaced skin/2 since the
// last rebuild invalidates the lists. The criterion is global, so the
// rebuild schedule — and with it every admitted pair — is identical on
// every rank grid.
func (r *Runtime) needRebuild() bool {
	if !r.started {
		return true
	}
	if r.skin <= 0 {
		return true
	}
	lim := (r.skin / 2) * (r.skin / 2)
	for i, p := range r.sys.Pos {
		ref := r.refPos[i]
		d0 := p[0] - ref[0]
		d1 := p[1] - ref[1]
		d2 := p[2] - ref[2]
		if d0*d0+d1*d1+d2*d2 >= lim {
			return true
		}
	}
	return false
}

// rankOf maps a wrapped position to its owning rank.
func (r *Runtime) rankOf(p [3]float64) int {
	var c [3]int
	for k := 0; k < 3; k++ {
		c[k] = int(p[k] / r.sub[k])
		if c[k] >= r.grid[k] {
			c[k] = r.grid[k] - 1
		}
		if c[k] < 0 {
			c[k] = 0
		}
	}
	return (c[0]*r.grid[1]+c[1])*r.grid[2] + c[2]
}

// rebuild re-derives ownership (incremental migration: assignments change
// only here, when atoms have crossed subdomain boundaries), ghost imports,
// rank-local Verlet lists, the canonical slot layout, and the reduction
// adjacency. Rebuild steps may allocate (lists and arenas re-warm); steady
// steps do not.
func (r *Runtime) rebuild() {
	r.stats.Rebuilds++
	mig := 0
	for i := 0; i < r.n; i++ {
		o := int32(r.rankOf(r.pw[i]))
		if r.started && o != r.owner[i] {
			mig++
		}
		r.owner[i] = o
	}
	if r.started {
		r.stats.Migrations += mig
	}
	copy(r.refPos, r.sys.Pos)
	for i := range r.pairCnt {
		r.pairCnt[i] = 0
	}

	r.dispatch(cmdRebuild)

	// Canonical slot layout: ascending global center, each center's block
	// in the owning rank's sorted order.
	total := int32(0)
	r.pairStart[0] = 0
	for i := 0; i < r.n; i++ {
		total += r.pairCnt[i]
		r.pairStart[i+1] = total
	}
	r.nPairs = int(total)
	if cap(r.pairGI) < r.nPairs {
		r.pairGI = make([]int32, r.nPairs)
		r.pairGJ = make([]int32, r.nPairs)
		r.rows = make([][3]float64, r.nPairs)
		r.pairE = make([]float64, r.nPairs)
	}
	r.pairGI = r.pairGI[:r.nPairs]
	r.pairGJ = r.pairGJ[:r.nPairs]
	r.rows = r.rows[:r.nPairs]
	r.pairE = r.pairE[:r.nPairs]

	r.dispatch(cmdSlots)
	r.buildAdjacency()

	st := &r.stats
	st.PairWork = r.nPairs
	st.MaxOwned, st.MaxGhosts, st.TotalGhost = 0, 0, 0
	st.ForwardBytesPerStep, st.ReverseBytesPerStep = 0, 0
	for _, rk := range r.ranks {
		if rk.nOwned > st.MaxOwned {
			st.MaxOwned = rk.nOwned
		}
		if rk.nGhosts > st.MaxGhosts {
			st.MaxGhosts = rk.nGhosts
		}
		st.TotalGhost += rk.nGhosts
		st.ForwardBytesPerStep += rk.nGhosts * 24       // 3 float64 per ghost position
		st.ReverseBytesPerStep += rk.ghostRowCount * 24 // 3 float64 per ghost force row
	}
	r.started = true
}

// buildAdjacency precomputes, per atom, the slots contributing to its force
// in ascending slot order: +row where the atom is the center, -row where it
// is the neighbor — exactly the serial accumulation order, split per atom.
func (r *Runtime) buildAdjacency() {
	need := 2 * r.nPairs
	if cap(r.adj) < need {
		r.adj = make([]int32, need)
	}
	r.adj = r.adj[:need]
	cnt := r.adjFill
	for i := range cnt {
		cnt[i] = 0
	}
	for z := 0; z < r.nPairs; z++ {
		cnt[r.pairGI[z]]++
		cnt[r.pairGJ[z]]++
	}
	r.adjPtr[0] = 0
	for i := 0; i < r.n; i++ {
		r.adjPtr[i+1] = r.adjPtr[i] + cnt[i]
	}
	copy(cnt, r.adjPtr[:r.n]) // running write offsets
	for z := 0; z < r.nPairs; z++ {
		gi, gj := r.pairGI[z], r.pairGJ[z]
		r.adj[cnt[gi]] = int32(z) << 1
		cnt[gi]++
		r.adj[cnt[gj]] = int32(z)<<1 | 1
		cnt[gj]++
	}
}

// reduceEnergy sums pair energies in canonical slot order, then per-species
// shifts in atom order, then applies the final-stage precision — identical
// on every rank grid.
func (r *Runtime) reduceEnergy() float64 {
	e := 0.0
	for _, pe := range r.pairE {
		e += pe
	}
	m := r.model
	for _, sp := range r.sys.Species {
		e += m.EnergyShift[m.Idx.Index(sp)]
	}
	if m.Cfg.Precision.Final != tensor.F64 {
		e = m.Cfg.Precision.Final.Round(e)
	}
	return e
}

// --- rank phases ---

// execRebuild re-derives this rank's membership and Verlet list.
func (rk *rank) execRebuild() {
	rt := rk.rt
	rk.gOf = rk.gOf[:0]
	rk.shift = rk.shift[:0]
	rk.code = rk.code[:0]
	for i := 0; i < rt.n; i++ {
		if rt.owner[i] == int32(rk.id) {
			rk.gOf = append(rk.gOf, int32(i))
			rk.shift = append(rk.shift, [3]float64{})
			rk.code = append(rk.code, centerCode)
		}
	}
	rk.nOwned = len(rk.gOf)

	// Ghost import: every periodic image inside the halo+skin envelope of
	// the subdomain, in deterministic (atom, image) order. Shift vectors
	// are exact multiples of the cell, so a ghost position equals the
	// owner's wrapped position plus its shift on every grid.
	haloTot := rt.halo + rt.skin
	cell := rt.sys.Cell
	for j := 0; j < rt.n; j++ {
		p := rt.pw[j]
		for sx := -1; sx <= 1; sx++ {
			for sy := -1; sy <= 1; sy++ {
				for sz := -1; sz <= 1; sz++ {
					if rt.owner[j] == int32(rk.id) && sx == 0 && sy == 0 && sz == 0 {
						continue // the owned copy itself
					}
					sh := [3]float64{float64(sx) * cell[0], float64(sy) * cell[1], float64(sz) * cell[2]}
					inside := true
					for k := 0; k < 3; k++ {
						v := p[k] + sh[k]
						if v < rk.lo[k]-haloTot || v >= rk.hi[k]+haloTot {
							inside = false
							break
						}
					}
					if inside {
						rk.gOf = append(rk.gOf, int32(j))
						rk.shift = append(rk.shift, sh)
						rk.code = append(rk.code, uint8((sx+1)*9+(sy+1)*3+(sz+1)))
					}
				}
			}
		}
	}
	rk.nGhosts = len(rk.gOf) - rk.nOwned

	// Local system: owned atoms first (CenterLimit), ghosts after.
	nLoc := len(rk.gOf)
	if cap(rk.local.Pos) < nLoc {
		rk.local.Pos = make([][3]float64, nLoc)
		rk.local.Species = make([]units.Species, nLoc)
	}
	rk.local.Pos = rk.local.Pos[:nLoc]
	rk.local.Species = rk.local.Species[:nLoc]
	for t, g := range rk.gOf {
		rk.local.Species[t] = rt.sys.Species[g]
		sh := rk.shift[t]
		pw := rt.pw[g]
		rk.local.Pos[t] = [3]float64{pw[0] + sh[0], pw[1] + sh[1], pw[2] + sh[2]}
	}
	rk.local.PBC = false

	if rk.nOwned > 0 {
		rk.builder.CenterLimit = rk.nOwned
		rk.builder.BuildInto(&rk.pairs, rk.local, rt.model.Cuts)
		rk.canonicalize()
	} else {
		// A rank that owns no atoms centers no pairs. (Builder.CenterLimit
		// treats 0 as "all atoms", which would build ghost-centered
		// duplicates of other ranks' pairs — skip the build entirely.)
		rk.pairs.Reset(nLoc)
	}

	// Publish per-center pair counts (centers are owned, hence disjoint
	// across ranks) and count reverse-exchange rows.
	rk.ghostRowCount = 0
	p := &rk.pairs
	for t := 0; t < p.Len(); t++ {
		rt.pairCnt[rk.gOf[p.I[t]]]++
		if p.J[t] >= rk.nOwned {
			rk.ghostRowCount++
		}
	}
	if cap(rk.rowsBuf) < p.Len() {
		rk.rowsBuf = make([][3]float64, p.Len())
		rk.pairEBuf = make([]float64, p.Len())
	}
	rk.rowsBuf = rk.rowsBuf[:p.Len()]
	rk.pairEBuf = rk.pairEBuf[:p.Len()]
	if cap(rk.slotOf) < p.Len() {
		rk.slotOf = make([]int32, p.Len())
	}
	rk.slotOf = rk.slotOf[:p.Len()]
}

// canonicalize orders each center's pairs by (global neighbor, periodic
// image) — a key independent of the rank grid and of the local cell-scan
// order, so per-center environment sums accumulate identically everywhere.
func (rk *rank) canonicalize() {
	p := &rk.pairs
	z := p.Len()
	rk.perm = rk.perm[:0]
	for t := 0; t < z; t++ {
		rk.perm = append(rk.perm, t)
	}
	key := func(t int) int64 {
		j := p.J[t]
		return int64(rk.gOf[j])*27 + int64(rk.code[j])
	}
	for blo := 0; blo < z; {
		bhi := blo + 1
		for bhi < z && p.I[bhi] == p.I[blo] {
			bhi++
		}
		blk := rk.perm[blo:bhi]
		sort.Slice(blk, func(a, b int) bool { return key(blk[a]) < key(blk[b]) })
		blo = bhi
	}
	rk.tmpI = append(rk.tmpI[:0], p.I...)
	rk.tmpJ = append(rk.tmpJ[:0], p.J...)
	rk.tmpVec = append(rk.tmpVec[:0], p.Vec...)
	rk.tmpDist = append(rk.tmpDist[:0], p.Dist...)
	rk.tmpCut = append(rk.tmpCut[:0], p.Cut...)
	for t, src := range rk.perm {
		p.I[t] = rk.tmpI[src]
		p.J[t] = rk.tmpJ[src]
		p.Vec[t] = rk.tmpVec[src]
		p.Dist[t] = rk.tmpDist[src]
		p.Cut[t] = rk.tmpCut[src]
	}
}

// execSlots assigns global slots. A rank's pairs are grouped by ascending
// global center (owned atoms were appended in global order), so each
// center's block lands contiguously at the center's canonical offset.
func (rk *rank) execSlots() {
	rt := rk.rt
	p := &rk.pairs
	z := p.Len()
	for t := 0; t < z; {
		center := p.I[t]
		gi := rk.gOf[center]
		slot := rt.pairStart[gi]
		for ; t < z && p.I[t] == center; t++ {
			rk.slotOf[t] = slot
			rt.pairGI[slot] = gi
			rt.pairGJ[slot] = rk.gOf[p.J[t]]
			slot++
		}
	}
}

// execEval is the steady-state force phase: refresh every pair vector from
// the current wrapped positions with the one minimum-image formula used on
// all grids, evaluate the rank's rows, and scatter them to their slots.
func (rk *rank) execEval() {
	rt := rk.rt
	p := &rk.pairs
	if p.Len() == 0 {
		return
	}
	cell := rt.sys.Cell
	for t := 0; t < p.Len(); t++ {
		gi, gj := rk.gOf[p.I[t]], rk.gOf[p.J[t]]
		pi, pj := rt.pw[gi], rt.pw[gj]
		var d [3]float64
		for k := 0; k < 3; k++ {
			dk := pj[k] - pi[k]
			dk -= cell[k] * math.Round(dk/cell[k])
			d[k] = dk
		}
		p.Vec[t] = d
		p.Dist[t] = math.Sqrt(d[0]*d[0] + d[1]*d[1] + d[2]*d[2])
	}
	rt.model.EvaluateRowsInto(rk.scratch, rk.local, p, rk.rowsBuf, rk.pairEBuf)
	for t := 0; t < p.Len(); t++ {
		s := rk.slotOf[t]
		rt.rows[s] = rk.rowsBuf[t]
		rt.pairE[s] = rk.pairEBuf[t]
	}
}

// execReduce computes every owned atom's force from the global rows in
// ascending slot order — bitwise the serial accumulation, partitioned by
// ownership.
func (rk *rank) execReduce() {
	rt := rk.rt
	for t := 0; t < rk.nOwned; t++ {
		a := rk.gOf[t]
		var f [3]float64
		for _, e := range rt.adj[rt.adjPtr[a]:rt.adjPtr[a+1]] {
			row := &rt.rows[e>>1]
			if e&1 == 0 {
				f[0] += row[0]
				f[1] += row[1]
				f[2] += row[2]
			} else {
				f[0] -= row[0]
				f[1] -= row[1]
				f[2] -= row[2]
			}
		}
		rt.forces[a] = f
	}
}
