package domain

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/atoms"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/md"
	"repro/internal/neighbor"
	"repro/internal/units"
)

// tinyModel builds a small Allegro model with a reduced cutoff so that a
// 12.4 A water cell can host a 2x2x2 decomposition (halo <= subdomain).
func tinyModel(t *testing.T) *core.Model {
	t.Helper()
	cfg := core.DefaultConfig([]units.Species{units.H, units.O})
	cfg.LMax = 1
	cfg.NumLayers = 2
	cfg.NumChannels = 2
	cfg.LatentDim = 8
	cfg.TwoBodyHidden = []int{8}
	cfg.LatentHidden = []int{8}
	cfg.EdgeHidden = 4
	cfg.NumBessel = 4
	cfg.DefaultCutoff = 3.0
	cfg.AvgNumNeighbors = 10
	m, err := core.New(cfg, nil, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		t.Fatal(err)
	}
	m.SetScaleShift(1.5, []float64{-0.5, -1.5})
	return m
}

func TestOptionsValidate(t *testing.T) {
	sys := atoms.NewSystem(1)
	sys.PBC = true
	sys.Cell = [3]float64{10, 10, 10}
	bad := Options{Grid: [3]int{4, 1, 1}, Halo: 3.0} // subdomain 2.5 < halo
	if err := bad.Validate(sys); err == nil {
		t.Fatal("halo larger than subdomain must be rejected")
	}
	nonpbc := atoms.NewSystem(1)
	ok := Options{Grid: [3]int{1, 1, 1}, Halo: 1}
	if err := ok.Validate(nonpbc); err == nil {
		t.Fatal("non-periodic system must be rejected")
	}
	if err := ok.Validate(sys); err != nil {
		t.Fatal(err)
	}
	if (&Options{Grid: [3]int{2, 3, 4}}).NumRanks() != 24 {
		t.Fatal("NumRanks wrong")
	}
}

func TestCenteredEvaluationPartitions(t *testing.T) {
	// Splitting ownership arbitrarily and summing centered evaluations must
	// reproduce the full evaluation exactly.
	m := tinyModel(t)
	rng := rand.New(rand.NewPCG(3, 4))
	sys := data.WaterBox(rng, 2, 2, 2)
	eFull, fFull := m.EnergyForces(sys)

	n := sys.NumAtoms()
	ownedA := make([]bool, n)
	ownedB := make([]bool, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.5 {
			ownedA[i] = true
		} else {
			ownedB[i] = true
		}
	}
	eA, fA := m.EnergyForcesCentered(sys, ownedA)
	eB, fB := m.EnergyForcesCentered(sys, ownedB)
	if math.Abs(eA+eB-eFull) > 1e-8 {
		t.Fatalf("centered energies %g + %g != full %g", eA, eB, eFull)
	}
	for i := 0; i < n; i++ {
		for k := 0; k < 3; k++ {
			if math.Abs(fA[i][k]+fB[i][k]-fFull[i][k]) > 1e-8 {
				t.Fatalf("centered forces do not sum at atom %d", i)
			}
		}
	}
}

func TestDecomposedMatchesSerial(t *testing.T) {
	m := tinyModel(t)
	rng := rand.New(rand.NewPCG(5, 6))
	sys := data.WaterBox(rng, 3, 3, 3) // cell ~9.3 A per side... (3 cells)
	// WaterBox(3,3,3) edge = 3*3.105=9.32; with halo 3.0 a 2x1x1 grid has
	// subdomain 4.66 >= halo: valid.
	eSerial, fSerial := m.EnergyForces(sys)
	for _, grid := range [][3]int{{2, 1, 1}, {1, 2, 1}, {2, 2, 1}} {
		opts := Options{Grid: grid, Halo: 3.0}
		e, f, st, err := Evaluate(sys, m, opts)
		if err != nil {
			t.Fatalf("grid %v: %v", grid, err)
		}
		if math.Abs(e-eSerial) > 1e-7 {
			t.Fatalf("grid %v: energy %g != serial %g", grid, e, eSerial)
		}
		for i := range fSerial {
			for k := 0; k < 3; k++ {
				if math.Abs(f[i][k]-fSerial[i][k]) > 1e-7 {
					t.Fatalf("grid %v: force mismatch atom %d dim %d: %g vs %g",
						grid, i, k, f[i][k], fSerial[i][k])
				}
			}
		}
		if st.MaxGhosts == 0 {
			t.Fatalf("grid %v: expected ghost imports", grid)
		}
	}
}

func TestInsufficientHaloBreaksForces(t *testing.T) {
	// With a halo smaller than the cutoff the decomposition must produce
	// wrong forces — demonstrating that halo >= receptive field is the
	// correctness condition (and why MPNNs with growing receptive fields
	// cannot use a one-cutoff halo).
	m := tinyModel(t)
	rng := rand.New(rand.NewPCG(7, 8))
	sys := data.WaterBox(rng, 3, 3, 3)
	_, fSerial := m.EnergyForces(sys)
	opts := Options{Grid: [3]int{2, 2, 2}, Halo: 1.2} // cutoff is 3.0
	_, f, _, err := Evaluate(sys, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	maxDiff := 0.0
	for i := range fSerial {
		for k := 0; k < 3; k++ {
			if d := math.Abs(f[i][k] - fSerial[i][k]); d > maxDiff {
				maxDiff = d
			}
		}
	}
	if maxDiff < 1e-6 {
		t.Fatal("undersized halo should corrupt forces, but they matched")
	}
}

func TestGhostCountGrowsWithHalo(t *testing.T) {
	m := tinyModel(t)
	rng := rand.New(rand.NewPCG(9, 10))
	sys := data.WaterBox(rng, 3, 3, 3)
	_, _, stSmall, err := Evaluate(sys, m, Options{Grid: [3]int{2, 1, 1}, Halo: 2.0})
	if err != nil {
		t.Fatal(err)
	}
	_, _, stBig, err := Evaluate(sys, m, Options{Grid: [3]int{2, 1, 1}, Halo: 4.0})
	if err != nil {
		t.Fatal(err)
	}
	if stBig.TotalGhost <= stSmall.TotalGhost {
		t.Fatalf("ghost import should grow with halo: %d vs %d", stSmall.TotalGhost, stBig.TotalGhost)
	}
}

func TestHaloHelpers(t *testing.T) {
	if RequiredHalo(4.0, 1) != 4.0 || RequiredHalo(4.0, 6) != 24.0 {
		t.Fatal("RequiredHalo wrong")
	}
	if RequiredHalo(4.0, 0) != 4.0 {
		t.Fatal("RequiredHalo should clamp layers to >= 1")
	}
	// Paper's water example: ~96 atoms in 6 A, ~20,834 in 36 A
	// (number density ~0.1 atoms/A^3).
	rho := 0.1
	small := ReceptiveAtoms(6, rho)
	big := ReceptiveAtoms(36, rho)
	if small < 60 || small > 130 {
		t.Fatalf("receptive atoms at 6 A = %g, expected ~90", small)
	}
	if big/small < 200 || big/small > 230 {
		t.Fatalf("receptive growth %g, want 6^3 = 216", big/small)
	}
	// Halo volume fraction is monotone in halo.
	if HaloVolumeFraction(10, 4) <= HaloVolumeFraction(10, 1) {
		t.Fatal("halo volume fraction not monotone")
	}
}

func TestFilterCenters(t *testing.T) {
	idx := atoms.NewSpeciesIndex([]units.Species{units.O})
	ct := neighbor.NewCutoffTable(idx, 3.0)
	sys := atoms.NewSystem(3)
	for i := range sys.Pos {
		sys.Species[i] = units.O
		sys.Pos[i] = [3]float64{float64(i) * 1.5, 0, 0}
	}
	p := neighbor.Build(sys, ct)
	keep := []bool{true, false, true}
	f := p.FilterCenters(keep)
	for z := 0; z < f.NumReal; z++ {
		if !keep[f.I[z]] {
			t.Fatal("filtered list contains unowned center")
		}
	}
	if f.NumReal >= p.NumReal {
		t.Fatal("filter should drop pairs")
	}
}

func TestDecomposedMDMatchesSerialTrajectory(t *testing.T) {
	// NVE trajectories under serial and decomposed force evaluation must
	// agree (bit-level force agreement leaves only accumulation-order
	// noise, which stays tiny over a short trajectory).
	m := tinyModel(t)
	rng := rand.New(rand.NewPCG(11, 12))
	sys := data.WaterBox(rng, 3, 3, 3)

	serial := md.NewSim(sys.Clone(), m, 0.2)
	serial.InitVelocities(100, rand.New(rand.NewPCG(13, 14)))

	dec := md.NewSim(sys.Clone(), &Potential{Pot: m, Opts: Options{Grid: [3]int{2, 1, 1}, Halo: 3.0}}, 0.2)
	dec.InitVelocities(100, rand.New(rand.NewPCG(13, 14)))

	serial.Run(10)
	dec.Run(10)
	for i := range serial.Sys.Pos {
		for k := 0; k < 3; k++ {
			if d := math.Abs(serial.Sys.Pos[i][k] - dec.Sys.Pos[i][k]); d > 1e-6 {
				t.Fatalf("trajectories diverged at atom %d dim %d by %g", i, k, d)
			}
		}
	}
	if math.Abs(serial.TotalEnergy()-dec.TotalEnergy()) > 1e-6 {
		t.Fatalf("total energies diverged: %g vs %g", serial.TotalEnergy(), dec.TotalEnergy())
	}
}
