package domain

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/transport"
)

// This file is the driver half of elastic recovery: when a rank of the
// remote fleet dies, the supervisor (cmd/allegro-md or a test harness)
// drives the sequence
//
//	detect   EnergyForcesInto latches a RankFailure (phase-typed)
//	quiesce  Quiesce: drain stale frames, open a new generation on the
//	         survivors (KindRecover broadcast + acks)
//	restore  Rejoin: reship the saved config to the replacement rank;
//	         RecoverState: reassemble the last replication point from the
//	         survivors' buddy shards (KindReplicaReq/KindReplicaRep)
//	resume   ClearFailure + rewinding the integrator to the replication
//	         point; replayed steps are bit-identical to the uninterrupted
//	         run because the canonical slot-order reduction makes forces a
//	         pure function of positions.
//
// Each phase is timed into a RecoveryTimers record, exported through
// perfmodel into BENCH_recovery.json.

// Phase names the protocol phase a rank failure surfaced in.
type Phase string

const (
	// PhaseConfig: the rendezvous (initial or rejoin config reship).
	PhaseConfig Phase = "config"
	// PhaseRebuild: the rebuild broadcast / counts / layout protocol.
	PhaseRebuild Phase = "rebuild"
	// PhaseStep: a per-step force evaluation.
	PhaseStep Phase = "step"
	// PhaseReplicate: a replication-point broadcast.
	PhaseReplicate Phase = "replicate"
	// PhaseRecover: the recovery protocol itself (quiesce/rejoin/restore).
	PhaseRecover Phase = "recover"
)

// RankFailure is the typed error a RemoteRuntime surfaces when a rank dies:
// it names the dead rank (-1 when unknown), the protocol phase, and whether
// the failure is retriable. It is latched — steps short-circuit — but not
// permanent: the supervisor clears it with ClearFailure after recovery.
type RankFailure struct {
	Rank  int
	Phase Phase
	Err   error
}

func (e *RankFailure) Error() string {
	return fmt.Sprintf("domain: rank %d failed during %s: %v", e.Rank, e.Phase, e.Err)
}

func (e *RankFailure) Unwrap() error { return e.Err }

// Retriable reports whether the failed operation can simply be re-driven
// after the fleet is repaired, without rewinding integrator state: config,
// rebuild, and replication failures consume no per-step state (ranks are
// stateless force servers and rebuilds do not perturb trajectories). A
// mid-step failure left the integrator advanced on stale forces, so the
// supervisor must additionally rewind to the last replication point via
// RecoverState.
func (e *RankFailure) Retriable() bool { return e.Phase != PhaseStep }

// AsRankFailure extracts a RankFailure from an error chain.
func AsRankFailure(err error) (*RankFailure, bool) {
	var rf *RankFailure
	if errors.As(err, &rf) {
		return rf, true
	}
	return nil, false
}

// RecoveryTimers is one recovery's detect -> quiesce -> restore -> resume
// phase breakdown, exported into BENCH_recovery.json.
type RecoveryTimers struct {
	DeadRank   int    `json:"dead_rank"`
	Phase      string `json:"phase"`
	Generation uint64 `json:"generation"`
	// DetectNs: wall from the last successful force call to the latched
	// failure (includes the transport's death-silence timeout).
	DetectNs int64 `json:"detect_ns"`
	// QuiesceNs: drain + KindRecover epoch broadcast + survivor acks.
	QuiesceNs int64 `json:"quiesce_ns"`
	// RestoreNs: replacement rejoin (config reship + ack) plus replica
	// gather and reassembly.
	RestoreNs int64 `json:"restore_ns"`
	// ResumeNs: ClearFailure to the first successful force call after it.
	ResumeNs int64 `json:"resume_ns"`
	// RewindSteps: how many MD steps the integrator rewound (0 for
	// retriable failures).
	RewindSteps int `json:"rewind_steps"`
}

// fail wraps err into a phase-typed RankFailure (idempotent).
func (r *RemoteRuntime) fail(phase Phase, err error) error {
	if err == nil {
		return nil
	}
	if _, ok := AsRankFailure(err); ok {
		return err
	}
	rank := -1
	if d, ok := transport.IsDead(err); ok {
		rank = d
	}
	return &RankFailure{Rank: rank, Phase: phase, Err: err}
}

// latch records a failure and starts the recovery timer record.
func (r *RemoteRuntime) latch(phase Phase, err error) error {
	r.err = r.fail(phase, err)
	if r.rec == nil {
		rf, _ := AsRankFailure(r.err)
		r.rec = &RecoveryTimers{DeadRank: rf.Rank, Phase: string(rf.Phase)}
		if !r.lastOK.IsZero() {
			r.rec.DetectNs = time.Since(r.lastOK).Nanoseconds()
		}
	}
	return r.err
}

// noteOK stamps a successful force call: the detect-timer base, and the
// resume timer of a recovery in flight.
func (r *RemoteRuntime) noteOK() {
	if r.rec != nil && !r.recClear.IsZero() {
		r.rec.ResumeNs = time.Since(r.recClear).Nanoseconds()
		r.recovered = append(r.recovered, *r.rec)
		r.rec = nil
		r.recClear = time.Time{}
	}
	r.lastOK = time.Now()
}

// Recoveries returns the completed recovery records, oldest first.
func (r *RemoteRuntime) Recoveries() []RecoveryTimers { return r.recovered }

// Generation returns the current fleet generation (0 until the first
// recovery).
func (r *RemoteRuntime) Generation() uint64 { return r.generation }

// timedEp returns the driver endpoint's bounded-receive interface.
func (r *RemoteRuntime) timedEp() (transport.TimedRecver, error) {
	tr, ok := r.ep.(transport.TimedRecver)
	if !ok {
		return nil, fmt.Errorf("domain: transport endpoint %T does not support timed receive", r.ep)
	}
	return tr, nil
}

// Quiesce settles the fleet after the death of `dead`: the transport's dead
// mark is lifted (transports that implement Reviver), the driver's inbox is
// drained of stale pre-death traffic, and a new generation is opened on the
// survivors with a KindRecover broadcast — each survivor clears its dead
// marks and parked phase frames, then acks. After Quiesce returns, every
// survivor is idle in its serve loop and nothing from the old epoch can
// surface again.
func (r *RemoteRuntime) Quiesce(dead int) error {
	start := time.Now()
	if rv, ok := r.tr.(transport.Reviver); ok && dead >= 0 {
		if err := rv.Revive(dead); err != nil {
			return fmt.Errorf("domain: revive rank %d: %w", dead, err)
		}
	}
	tr, err := r.timedEp()
	if err != nil {
		return err
	}
	// Drain until the inbox has been quiet for one timeout slice. Nothing
	// queued is needed: forces and counts of the failed phase are stale, and
	// replica shards are only requested after the drain.
	for {
		got, err := tr.RecvTimeout(&r.recvF, 30*time.Millisecond)
		if err != nil {
			return err
		}
		if !got {
			break
		}
	}
	r.generation++
	f := &r.sendF
	for d := 0; d < r.nr; d++ {
		if d == dead {
			continue
		}
		f.Reset(transport.KindRecover, d, r.generation)
		if err := r.ep.Send(f); err != nil {
			return r.fail(PhaseRecover, err)
		}
	}
	if err := r.collect(transport.KindRecover, r.generation, dead, nil); err != nil {
		return r.fail(PhaseRecover, err)
	}
	if r.rec != nil {
		r.rec.QuiesceNs = time.Since(start).Nanoseconds()
		r.rec.Generation = r.generation
	}
	return nil
}

// Rejoin re-admits a replacement process for the dead rank: the saved
// run configuration is reshipped (KindConfig stamped with the current
// generation) until the replacement acks it or the timeout expires. The
// replacement may come up at any point within the window — config sends to
// a not-yet-listening process fail or go unanswered and are retried.
func (r *RemoteRuntime) Rejoin(dead int, timeout time.Duration) error {
	start := time.Now()
	deadline := start.Add(timeout)
	tr, err := r.timedEp()
	if err != nil {
		return err
	}
	f := &r.sendF
	for time.Now().Before(deadline) {
		f.Reset(transport.KindConfig, dead, r.generation)
		copy(f.EnsureBytes(len(r.cfgBody)), r.cfgBody)
		if err := r.ep.Send(f); err != nil {
			// Replacement not reachable yet; retry until the deadline.
			time.Sleep(50 * time.Millisecond)
			continue
		}
		ackBy := time.Now().Add(500 * time.Millisecond)
		for time.Now().Before(ackBy) {
			got, err := tr.RecvTimeout(&r.recvF, 50*time.Millisecond)
			if err != nil {
				return err
			}
			if !got {
				continue
			}
			g := &r.recvF
			switch {
			case g.Kind == transport.KindConfig && int(g.Src) == dead && g.Step == r.generation:
				if r.rec != nil {
					r.rec.RestoreNs += time.Since(start).Nanoseconds()
				}
				return nil
			case g.Kind == transport.KindDeath && int(g.Src) != dead:
				return r.fail(PhaseRecover, &transport.DeadError{Rank: int(g.Src)})
			default:
				// Stale aborts, hellos, death notices for the rank being
				// replaced: discard.
			}
		}
	}
	return fmt.Errorf("domain: rank %d did not rejoin within %v", dead, timeout)
}

// Replicate records a replication point across the fleet: every rank
// receives its owned-atom shard of pos/vel (the integrator's raw state at
// MD step `step`) and forwards a copy to its buddy rank, so any single rank
// death afterwards is recoverable from fleet memory. On a one-rank grid the
// driver itself keeps the replica (there is no peer to buddy with). The
// call is fire-and-forget: shard frames are idempotent by (owner, step) and
// a failure latches like any other, recoverable and — being outside any
// step — retriable without a rewind.
func (r *RemoteRuntime) Replicate(step uint64, pos, vel [][3]float64) error {
	if r.err != nil {
		return r.err
	}
	if !r.started {
		return fmt.Errorf("domain: Replicate before the first step")
	}
	if len(pos) != r.n || len(vel) != r.n {
		return fmt.Errorf("domain: Replicate buffer length mismatch (%d/%d positions, need %d)",
			len(pos), len(vel), r.n)
	}
	f := &r.sendF
	for d := 0; d < r.nr; d++ {
		owned := r.ownedOf[d]
		f.Reset(transport.KindReplica, d, step)
		copy(f.EnsureInts(len(owned)), owned)
		vecs := f.EnsureVecs(2 * len(owned))
		for k, a := range owned {
			vecs[k] = pos[a]
			vecs[len(owned)+k] = vel[a]
		}
		if err := r.ep.Send(f); err != nil {
			return r.latch(PhaseReplicate, err)
		}
	}
	if r.nr == 1 {
		r.masterRepl.put(step, 0, r.ownedOf[0], pos, vel)
	}
	return nil
}

// RecoverState reassembles the newest complete replication point from the
// survivors' in-memory shards (and the driver's own store on one-rank
// grids) into pos and vel, returning its MD step. dead names the rank whose
// memory is lost; call after Quiesce, before or after Rejoin (a fresh
// replacement holds no shards and is not asked).
func (r *RemoteRuntime) RecoverState(dead int, pos, vel [][3]float64) (uint64, error) {
	if len(pos) != r.n || len(vel) != r.n {
		return 0, fmt.Errorf("domain: RecoverState buffer length mismatch")
	}
	start := time.Now()
	r.replReqTick++
	f := &r.sendF
	for d := 0; d < r.nr; d++ {
		if d == dead {
			continue
		}
		f.Reset(transport.KindReplicaReq, d, r.replReqTick)
		if err := r.ep.Send(f); err != nil {
			return 0, r.fail(PhaseRecover, err)
		}
	}
	var shards []replShard
	err := r.collect(transport.KindReplicaRep, r.replReqTick, dead, func(s int, g *transport.Frame) error {
		sh, ok := unpackReplicaRep(g)
		if !ok {
			return fmt.Errorf("domain: malformed replica reply from rank %d", s)
		}
		shards = append(shards, sh...)
		return nil
	})
	if err != nil {
		return 0, r.fail(PhaseRecover, err)
	}
	shards = append(shards, r.masterRepl.shards()...)
	step, ok := assembleReplicas(shards, pos, vel)
	if !ok {
		return 0, fmt.Errorf("domain: no complete replication point survives among %d shards", len(shards))
	}
	if r.rec != nil {
		r.rec.RestoreNs += time.Since(start).Nanoseconds()
	}
	return step, nil
}

// ClearFailure lifts the latched failure after a successful recovery and
// forces the next force call to rebuild (fresh ownership, lists, and plans
// across the repaired fleet). rewindSteps records how far the supervisor
// rewound the integrator (0 for retriable failures) — it lands in the
// recovery's timer record.
func (r *RemoteRuntime) ClearFailure(rewindSteps int) {
	r.err = nil
	r.started = false
	if r.rec != nil {
		r.rec.RewindSteps = rewindSteps
		r.recClear = time.Now()
	}
}
