package domain

import (
	"math/rand/v2"
	"testing"

	"repro/internal/data"
	"repro/internal/md"
)

// runTrajectory advances an NVE trajectory on a fresh clone of the water box
// under a decomposed runtime and returns the simulation (caller reads
// positions/forces/energy). Identical velocity seeding everywhere.
func runTrajectory(t *testing.T, opts RuntimeOptions, steps int, tempK float64) *md.DecomposedSim {
	t.Helper()
	m := tinyModel(t)
	sys := data.WaterBox(rand.New(rand.NewPCG(31, 32)), 3, 3, 3)
	rt, err := NewRuntime(m, sys, opts)
	if err != nil {
		t.Fatalf("grid %v skin %g: %v", opts.Grid, opts.Skin, err)
	}
	sim := md.NewDecomposedSim(sys, rt, 0.5)
	sim.InitVelocities(tempK, rand.New(rand.NewPCG(33, 34)))
	sim.Run(steps)
	return sim
}

// TestRuntimeTrajectoryBitwiseAcrossGridsAndSkins is the central property of
// the persistent runtime: NVE trajectories are bit-identical to the
// single-rank path for every rank grid and every Verlet skin — the
// canonical slot ordering makes the decomposition exact, not approximately
// correct. The trajectory is long and hot enough to trigger several
// rebuilds, so the rebuild schedule and migrations are covered too.
func TestRuntimeTrajectoryBitwiseAcrossGridsAndSkins(t *testing.T) {
	const steps, temp = 40, 600.0
	base := runTrajectory(t, RuntimeOptions{Grid: [3]int{1, 1, 1}, Skin: 0.5}, steps, temp)
	defer base.Close()
	variants := []RuntimeOptions{
		{Grid: [3]int{1, 1, 1}, Skin: 0},                      // rebuild every step
		{Grid: [3]int{1, 1, 1}, Skin: 0.8},                    // different rebuild cadence
		{Grid: [3]int{2, 1, 1}, Skin: 0.5},                    // split one axis
		{Grid: [3]int{2, 1, 1}, Skin: 0.25},                   // split + different skin
		{Grid: [3]int{2, 2, 2}, Skin: 0.5},                    // full 8-rank grid
		{Grid: [3]int{2, 2, 2}, Skin: 0.5, WorkersPerRank: 2}, // chunked eval inside ranks
		// The communication-hiding pipeline must not change a single bit:
		// same variants with the overlapped schedule.
		{Grid: [3]int{1, 1, 1}, Skin: 0.5, Overlap: true},
		{Grid: [3]int{2, 1, 1}, Skin: 0.5, Overlap: true},
		{Grid: [3]int{2, 1, 1}, Skin: 0.25, Overlap: true},
		{Grid: [3]int{2, 2, 2}, Skin: 0.5, Overlap: true},
		{Grid: [3]int{2, 2, 2}, Skin: 0.5, WorkersPerRank: 2, Overlap: true},
		{Grid: [3]int{2, 2, 2}, Skin: 0, Overlap: true}, // overlap + rebuild every step
	}
	for _, opts := range variants {
		sim := runTrajectory(t, opts, steps, temp)
		if sim.Energy != base.Energy {
			t.Errorf("grid %v skin %g: energy %.17g != base %.17g", opts.Grid, opts.Skin, sim.Energy, base.Energy)
		}
		for i := range base.Sys.Pos {
			if sim.Sys.Pos[i] != base.Sys.Pos[i] {
				t.Errorf("grid %v skin %g: position of atom %d diverged: %v vs %v",
					opts.Grid, opts.Skin, i, sim.Sys.Pos[i], base.Sys.Pos[i])
				break
			}
			if sim.Forces[i] != base.Forces[i] {
				t.Errorf("grid %v skin %g: force on atom %d diverged", opts.Grid, opts.Skin, i)
				break
			}
		}
		sim.Close()
	}
}

// TestRuntimeMatchesSingleRankSim checks the satellite identity in its
// md-level form: a DecomposedSim on a rank grid reproduces a single-rank
// md.Sim (runtime-backed InPlacePotential through the ordinary NewSim path)
// bit for bit.
func TestRuntimeMatchesSingleRankSim(t *testing.T) {
	m := tinyModel(t)
	sysA := data.WaterBox(rand.New(rand.NewPCG(41, 42)), 3, 3, 3)
	rtA, err := NewRuntime(m, sysA, RuntimeOptions{Grid: [3]int{1, 1, 1}, Skin: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	defer rtA.Close()
	simA := md.NewSim(sysA, rtA, 0.5) // plain Sim, in-place fast path
	simA.InitVelocities(500, rand.New(rand.NewPCG(43, 44)))

	sysB := data.WaterBox(rand.New(rand.NewPCG(41, 42)), 3, 3, 3)
	rtB, err := NewRuntime(m, sysB, RuntimeOptions{Grid: [3]int{2, 2, 1}, Skin: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	simB := md.NewDecomposedSim(sysB, rtB, 0.5)
	defer simB.Close()
	simB.InitVelocities(500, rand.New(rand.NewPCG(43, 44)))

	simA.Run(25)
	simB.Run(25)
	if simA.Energy != simB.Energy {
		t.Fatalf("energies diverged: %.17g vs %.17g", simA.Energy, simB.Energy)
	}
	for i := range sysA.Pos {
		if sysA.Pos[i] != sysB.Pos[i] {
			t.Fatalf("positions diverged at atom %d", i)
		}
	}
}

// TestRuntimeMigration drives a hot trajectory with a tight skin so atoms
// provably cross subdomain boundaries mid-run: the runtime must observe
// migrations (ownership changes at rebuilds) and still match the
// single-rank trajectory exactly.
func TestRuntimeMigration(t *testing.T) {
	const steps, temp = 80, 1500.0
	base := runTrajectory(t, RuntimeOptions{Grid: [3]int{1, 1, 1}, Skin: 0.3}, steps, temp)
	defer base.Close()
	sim := runTrajectory(t, RuntimeOptions{Grid: [3]int{2, 1, 1}, Skin: 0.3}, steps, temp)
	defer sim.Close()

	st := sim.Runtime.(*Runtime).Stats()
	if st.Rebuilds < 3 {
		t.Fatalf("expected several rebuilds on a hot trajectory, got %d", st.Rebuilds)
	}
	if st.Migrations == 0 {
		t.Fatalf("expected atoms to cross subdomain boundaries (rebuilds=%d)", st.Rebuilds)
	}
	for i := range base.Sys.Pos {
		if sim.Sys.Pos[i] != base.Sys.Pos[i] {
			t.Fatalf("trajectory diverged at atom %d after migrations", i)
		}
	}
}

// TestRuntimeStepZeroAllocSteadyState pins the steady-state contract: with
// warm lists and no rebuild trigger, a decomposed step performs zero heap
// allocations across all rank workers — with the bulk-synchronous schedule
// and with the overlap pipeline (async exchange, split reduction, pipelined
// ready callbacks) alike.
func TestRuntimeStepZeroAllocSteadyState(t *testing.T) {
	for _, overlap := range []bool{false, true} {
		name := "sync"
		if overlap {
			name = "overlap"
		}
		t.Run(name, func(t *testing.T) {
			m := tinyModel(t)
			sys := data.WaterBox(rand.New(rand.NewPCG(51, 52)), 3, 3, 3)
			rt, err := NewRuntime(m, sys, RuntimeOptions{Grid: [3]int{2, 1, 1}, Skin: 0.5, Overlap: overlap})
			if err != nil {
				t.Fatal(err)
			}
			defer rt.Close()
			forces := make([][3]float64, sys.NumAtoms())
			delivered := 0
			ready := func(atoms []int32) { delivered += len(atoms) }
			rt.EnergyForcesOverlap(sys, forces, ready) // first build
			rt.EnergyForcesOverlap(sys, forces, ready) // warm arenas
			rebuilds := rt.Stats().Rebuilds
			delivered = 0
			allocs := testing.AllocsPerRun(20, func() {
				rt.EnergyForcesOverlap(sys, forces, ready)
			})
			if got := rt.Stats().Rebuilds; got != rebuilds {
				t.Fatalf("positions are static but lists were rebuilt (%d -> %d)", rebuilds, got)
			}
			if allocs != 0 {
				t.Errorf("steady-state Runtime step allocates %.1f allocs/op, want 0", allocs)
			}
			// AllocsPerRun executes runs+1 calls; every atom must have been
			// delivered exactly once per call.
			if want := 21 * sys.NumAtoms(); delivered != want {
				t.Errorf("ready delivered %d atom entries, want %d", delivered, want)
			}
		})
	}
}

// TestRuntimeValidation covers the runtime-specific invariants beyond the
// legacy Options checks.
func TestRuntimeValidation(t *testing.T) {
	m := tinyModel(t)
	sys := data.WaterBox(rand.New(rand.NewPCG(61, 62)), 3, 3, 3)
	if _, err := NewRuntime(m, sys, RuntimeOptions{Grid: [3]int{3, 1, 1}, Skin: 0.5}); err == nil {
		t.Fatal("halo+skin wider than the subdomain must be rejected")
	}
	if _, err := NewRuntime(m, sys, RuntimeOptions{Grid: [3]int{1, 1, 1}, Skin: -0.1}); err == nil {
		t.Fatal("negative skin must be rejected")
	}
	rt, err := NewRuntime(m, sys, RuntimeOptions{Grid: [3]int{2, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if rt.NumRanks() != 2 {
		t.Fatalf("NumRanks = %d, want 2", rt.NumRanks())
	}
	rt.Close()
	rt.Close() // idempotent
}

// TestRuntimeEmptyRank pins the empty-subdomain case: a rank that owns no
// atoms (vacuum gap) must center no pairs — it must not fall into the
// builder's "CenterLimit 0 = all atoms" convention and double-count other
// ranks' work.
func TestRuntimeEmptyRank(t *testing.T) {
	m := tinyModel(t)
	rng := rand.New(rand.NewPCG(71, 72))
	sys := data.WaterBox(rng, 3, 3, 3)
	// Stretch the box along x: all atoms stay in [0, 9.32), the second
	// subdomain of a 2x1x1 grid is pure vacuum.
	sys.Cell[0] *= 2
	eSerial, fSerial := m.EnergyForces(sys)

	e, f, st, err := Evaluate(sys, m, Options{Grid: [3]int{2, 1, 1}, Halo: 3.0})
	if err != nil {
		t.Fatal(err)
	}
	if diff := e - eSerial; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("energy with an empty rank: %.12g vs serial %.12g", e, eSerial)
	}
	for i := range fSerial {
		for k := 0; k < 3; k++ {
			if d := f[i][k] - fSerial[i][k]; d > 1e-9 || d < -1e-9 {
				t.Fatalf("force mismatch at atom %d with an empty rank", i)
			}
		}
	}
	if st.MaxOwned != sys.NumAtoms() {
		t.Fatalf("one rank should own all %d atoms, MaxOwned=%d", sys.NumAtoms(), st.MaxOwned)
	}
}

// validatePartition checks the interior/frontier split of every rank
// against the canonical slot layout: the two blocks are disjoint, cover the
// rank's whole canonical pair list, map onto the global slot space exactly
// once (no duplicates, no drops), interior pairs reference no ghost data,
// and every frontier center has at least one ghost neighbor. It also checks
// the split reduction plan covers every owned atom exactly once.
func validatePartition(t *testing.T, rt *Runtime) {
	t.Helper()
	slotSeen := make([]int, rt.nPairs)
	for _, rk := range rt.ranks {
		p := &rk.pairs
		if rk.nInterior < 0 || rk.nInterior > p.Len() {
			t.Fatalf("rank %d: nInterior %d out of range [0,%d]", rk.id, rk.nInterior, p.Len())
		}
		if rk.intView.Len()+rk.frontView.Len() != p.Len() {
			t.Fatalf("rank %d: interior %d + frontier %d != %d pairs",
				rk.id, rk.intView.Len(), rk.frontView.Len(), p.Len())
		}
		for z := 0; z < p.Len(); z++ {
			slotSeen[rk.slotOf[z]]++
			if z < rk.nInterior {
				if p.J[z] >= rk.nOwned {
					t.Fatalf("rank %d: interior pair %d references ghost neighbor", rk.id, z)
				}
				if rt.interiorSlot[rk.slotOf[z]] != true {
					t.Fatalf("rank %d: interior pair %d not marked in the slot classification", rk.id, z)
				}
			} else if rt.interiorSlot[rk.slotOf[z]] {
				t.Fatalf("rank %d: frontier pair %d marked interior in the slot classification", rk.id, z)
			}
		}
		// Every frontier center block must touch at least one ghost.
		for blo := rk.nInterior; blo < p.Len(); {
			bhi := blo + 1
			for bhi < p.Len() && p.I[bhi] == p.I[blo] {
				bhi++
			}
			hasGhost := false
			for z := blo; z < bhi; z++ {
				if p.J[z] >= rk.nOwned {
					hasGhost = true
				}
			}
			if !hasGhost {
				t.Fatalf("rank %d: frontier center %d has no ghost neighbor", rk.id, p.I[blo])
			}
			blo = bhi
		}
		// Split reduction plan: owned atoms covered exactly once.
		if len(rk.redInterior)+len(rk.redFrontier) != rk.nOwned {
			t.Fatalf("rank %d: reduction plan covers %d+%d atoms, owns %d",
				rk.id, len(rk.redInterior), len(rk.redFrontier), rk.nOwned)
		}
	}
	for s, c := range slotSeen {
		if c != 1 {
			t.Fatalf("slot %d assigned %d times (interior+frontier must cover the canonical list exactly)", s, c)
		}
	}
	// Ready lists partition the atom set.
	if len(rt.readyInterior)+len(rt.readyFrontier) != rt.n {
		t.Fatalf("ready lists cover %d+%d atoms of %d",
			len(rt.readyInterior), len(rt.readyFrontier), rt.n)
	}
}

// TestRuntimePartitionProperty is the partition property test of the
// overlap pipeline: across rank grids, skins, and halo overrides — and
// through boundary-crossing migrations on a hot trajectory — every rank's
// interior and frontier blocks together are exactly its canonical pair
// list, projected onto the global slot space with no duplicate and no drop.
func TestRuntimePartitionProperty(t *testing.T) {
	m := tinyModel(t)
	cases := []RuntimeOptions{
		{Grid: [3]int{1, 1, 1}, Skin: 0.5, Overlap: true},
		{Grid: [3]int{2, 1, 1}, Skin: 0.5, Overlap: true},
		{Grid: [3]int{2, 1, 1}, Skin: 0.25},
		{Grid: [3]int{2, 2, 2}, Skin: 0.5, Overlap: true},
		{Grid: [3]int{2, 1, 1}, Skin: 0.5, Halo: 2.0, Overlap: true}, // halo override (under-import ablation)
		{Grid: [3]int{2, 2, 1}, Skin: 0.4, Halo: 3.5, Overlap: true}, // halo override above the cutoff
	}
	for _, opts := range cases {
		sys := data.WaterBox(rand.New(rand.NewPCG(91, 92)), 3, 3, 3)
		rt, err := NewRuntime(m, sys, opts)
		if err != nil {
			t.Fatalf("grid %v halo %g: %v", opts.Grid, opts.Halo, err)
		}
		sim := md.NewDecomposedSim(sys, rt, 0.5)
		sim.InitVelocities(1200, rand.New(rand.NewPCG(93, 94))) // hot: forces migrations
		validatePartition(t, rt)                                // after the first build
		preMig := rt.Stats().Migrations
		sim.Run(60)
		validatePartition(t, rt) // after rebuilds mid-trajectory
		if opts.Grid != [3]int{1, 1, 1} && rt.Stats().Migrations == preMig {
			t.Logf("grid %v halo %g: no migrations observed (partition still validated)", opts.Grid, opts.Halo)
		}
		sim.Close()
	}
}

// TestRuntimeOverlapProperties pins the pipeline bookkeeping: interior plus
// frontier pair work matches the total, phase timers advance, the sync
// schedule exposes (essentially all of) the exchange wall, and the ready
// batches partition the atoms identically in both modes.
func TestRuntimeOverlapProperties(t *testing.T) {
	m := tinyModel(t)
	for _, overlap := range []bool{false, true} {
		sys := data.WaterBox(rand.New(rand.NewPCG(81, 82)), 3, 3, 3)
		rt, err := NewRuntime(m, sys, RuntimeOptions{Grid: [3]int{2, 2, 1}, Skin: 0.5, Overlap: overlap})
		if err != nil {
			t.Fatal(err)
		}
		forces := make([][3]float64, sys.NumAtoms())
		var batches [][]int32
		ready := func(atoms []int32) {
			cp := make([]int32, len(atoms))
			copy(cp, atoms)
			batches = append(batches, cp)
		}
		for i := 0; i < 5; i++ {
			batches = batches[:0]
			rt.EnergyForcesOverlap(sys, forces, ready)
			if len(batches) != 2 {
				t.Fatalf("overlap=%v: got %d ready batches, want 2", overlap, len(batches))
			}
			if len(batches[0])+len(batches[1]) != sys.NumAtoms() {
				t.Fatalf("overlap=%v: batches deliver %d+%d atoms of %d",
					overlap, len(batches[0]), len(batches[1]), sys.NumAtoms())
			}
		}
		st := rt.Stats()
		if st.InteriorPairs < 0 || st.InteriorPairs > st.PairWork {
			t.Fatalf("overlap=%v: InteriorPairs %d out of [0,%d]", overlap, st.InteriorPairs, st.PairWork)
		}
		if st.CommWallNs <= 0 || st.FrontierNs <= 0 || st.ReduceNs <= 0 {
			t.Fatalf("overlap=%v: phase timers did not advance: %+v", overlap, st)
		}
		// Interior time is self-timed on the ranks: zero is honest when the
		// grid leaves no interior region, positive otherwise.
		if st.InteriorPairs > 0 && st.InteriorNs <= 0 {
			t.Fatalf("overlap=%v: %d interior pairs but no interior time", overlap, st.InteriorPairs)
		}
		// Falsifiable accounting guard (the [0,1] range alone is clamped at
		// the source): under the bulk-synchronous schedule the exposed wait
		// spans the entire pack wall — send, pack, and receive — so the
		// fraction must come out exactly 0; any mode mix-up in the
		// ExchangeWaitNs/CommWallNs accumulation breaks this.
		if !overlap {
			if f := st.OverlapFraction(); f != 0 {
				t.Fatalf("bulk-synchronous schedule must expose the whole exchange, got fraction %g", f)
			}
		} else if f := st.OverlapFraction(); f < 0 || f > 1 {
			t.Fatalf("overlap fraction %g out of [0,1]", f)
		}
		rt.Close()
	}
}
