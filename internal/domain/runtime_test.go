package domain

import (
	"math/rand/v2"
	"testing"

	"repro/internal/data"
	"repro/internal/md"
)

// runTrajectory advances an NVE trajectory on a fresh clone of the water box
// under a decomposed runtime and returns the simulation (caller reads
// positions/forces/energy). Identical velocity seeding everywhere.
func runTrajectory(t *testing.T, opts RuntimeOptions, steps int, tempK float64) *md.DecomposedSim {
	t.Helper()
	m := tinyModel(t)
	sys := data.WaterBox(rand.New(rand.NewPCG(31, 32)), 3, 3, 3)
	rt, err := NewRuntime(m, sys, opts)
	if err != nil {
		t.Fatalf("grid %v skin %g: %v", opts.Grid, opts.Skin, err)
	}
	sim := md.NewDecomposedSim(sys, rt, 0.5)
	sim.InitVelocities(tempK, rand.New(rand.NewPCG(33, 34)))
	sim.Run(steps)
	return sim
}

// TestRuntimeTrajectoryBitwiseAcrossGridsAndSkins is the central property of
// the persistent runtime: NVE trajectories are bit-identical to the
// single-rank path for every rank grid and every Verlet skin — the
// canonical slot ordering makes the decomposition exact, not approximately
// correct. The trajectory is long and hot enough to trigger several
// rebuilds, so the rebuild schedule and migrations are covered too.
func TestRuntimeTrajectoryBitwiseAcrossGridsAndSkins(t *testing.T) {
	const steps, temp = 40, 600.0
	base := runTrajectory(t, RuntimeOptions{Grid: [3]int{1, 1, 1}, Skin: 0.5}, steps, temp)
	defer base.Close()
	variants := []RuntimeOptions{
		{Grid: [3]int{1, 1, 1}, Skin: 0},                      // rebuild every step
		{Grid: [3]int{1, 1, 1}, Skin: 0.8},                    // different rebuild cadence
		{Grid: [3]int{2, 1, 1}, Skin: 0.5},                    // split one axis
		{Grid: [3]int{2, 1, 1}, Skin: 0.25},                   // split + different skin
		{Grid: [3]int{2, 2, 2}, Skin: 0.5},                    // full 8-rank grid
		{Grid: [3]int{2, 2, 2}, Skin: 0.5, WorkersPerRank: 2}, // chunked eval inside ranks
	}
	for _, opts := range variants {
		sim := runTrajectory(t, opts, steps, temp)
		if sim.Energy != base.Energy {
			t.Errorf("grid %v skin %g: energy %.17g != base %.17g", opts.Grid, opts.Skin, sim.Energy, base.Energy)
		}
		for i := range base.Sys.Pos {
			if sim.Sys.Pos[i] != base.Sys.Pos[i] {
				t.Errorf("grid %v skin %g: position of atom %d diverged: %v vs %v",
					opts.Grid, opts.Skin, i, sim.Sys.Pos[i], base.Sys.Pos[i])
				break
			}
			if sim.Forces[i] != base.Forces[i] {
				t.Errorf("grid %v skin %g: force on atom %d diverged", opts.Grid, opts.Skin, i)
				break
			}
		}
		sim.Close()
	}
}

// TestRuntimeMatchesSingleRankSim checks the satellite identity in its
// md-level form: a DecomposedSim on a rank grid reproduces a single-rank
// md.Sim (runtime-backed InPlacePotential through the ordinary NewSim path)
// bit for bit.
func TestRuntimeMatchesSingleRankSim(t *testing.T) {
	m := tinyModel(t)
	sysA := data.WaterBox(rand.New(rand.NewPCG(41, 42)), 3, 3, 3)
	rtA, err := NewRuntime(m, sysA, RuntimeOptions{Grid: [3]int{1, 1, 1}, Skin: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	defer rtA.Close()
	simA := md.NewSim(sysA, rtA, 0.5) // plain Sim, in-place fast path
	simA.InitVelocities(500, rand.New(rand.NewPCG(43, 44)))

	sysB := data.WaterBox(rand.New(rand.NewPCG(41, 42)), 3, 3, 3)
	rtB, err := NewRuntime(m, sysB, RuntimeOptions{Grid: [3]int{2, 2, 1}, Skin: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	simB := md.NewDecomposedSim(sysB, rtB, 0.5)
	defer simB.Close()
	simB.InitVelocities(500, rand.New(rand.NewPCG(43, 44)))

	simA.Run(25)
	simB.Run(25)
	if simA.Energy != simB.Energy {
		t.Fatalf("energies diverged: %.17g vs %.17g", simA.Energy, simB.Energy)
	}
	for i := range sysA.Pos {
		if sysA.Pos[i] != sysB.Pos[i] {
			t.Fatalf("positions diverged at atom %d", i)
		}
	}
}

// TestRuntimeMigration drives a hot trajectory with a tight skin so atoms
// provably cross subdomain boundaries mid-run: the runtime must observe
// migrations (ownership changes at rebuilds) and still match the
// single-rank trajectory exactly.
func TestRuntimeMigration(t *testing.T) {
	const steps, temp = 80, 1500.0
	base := runTrajectory(t, RuntimeOptions{Grid: [3]int{1, 1, 1}, Skin: 0.3}, steps, temp)
	defer base.Close()
	sim := runTrajectory(t, RuntimeOptions{Grid: [3]int{2, 1, 1}, Skin: 0.3}, steps, temp)
	defer sim.Close()

	st := sim.Runtime.(*Runtime).Stats()
	if st.Rebuilds < 3 {
		t.Fatalf("expected several rebuilds on a hot trajectory, got %d", st.Rebuilds)
	}
	if st.Migrations == 0 {
		t.Fatalf("expected atoms to cross subdomain boundaries (rebuilds=%d)", st.Rebuilds)
	}
	for i := range base.Sys.Pos {
		if sim.Sys.Pos[i] != base.Sys.Pos[i] {
			t.Fatalf("trajectory diverged at atom %d after migrations", i)
		}
	}
}

// TestRuntimeStepZeroAllocSteadyState pins the steady-state contract: with
// warm lists and no rebuild trigger, a decomposed step performs zero heap
// allocations across all rank workers.
func TestRuntimeStepZeroAllocSteadyState(t *testing.T) {
	m := tinyModel(t)
	sys := data.WaterBox(rand.New(rand.NewPCG(51, 52)), 3, 3, 3)
	rt, err := NewRuntime(m, sys, RuntimeOptions{Grid: [3]int{2, 1, 1}, Skin: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	forces := make([][3]float64, sys.NumAtoms())
	rt.EnergyForcesInto(sys, forces) // first build
	rt.EnergyForcesInto(sys, forces) // warm arenas
	rebuilds := rt.Stats().Rebuilds
	allocs := testing.AllocsPerRun(20, func() {
		rt.EnergyForcesInto(sys, forces)
	})
	if got := rt.Stats().Rebuilds; got != rebuilds {
		t.Fatalf("positions are static but lists were rebuilt (%d -> %d)", rebuilds, got)
	}
	if allocs != 0 {
		t.Errorf("steady-state Runtime step allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestRuntimeValidation covers the runtime-specific invariants beyond the
// legacy Options checks.
func TestRuntimeValidation(t *testing.T) {
	m := tinyModel(t)
	sys := data.WaterBox(rand.New(rand.NewPCG(61, 62)), 3, 3, 3)
	if _, err := NewRuntime(m, sys, RuntimeOptions{Grid: [3]int{3, 1, 1}, Skin: 0.5}); err == nil {
		t.Fatal("halo+skin wider than the subdomain must be rejected")
	}
	if _, err := NewRuntime(m, sys, RuntimeOptions{Grid: [3]int{1, 1, 1}, Skin: -0.1}); err == nil {
		t.Fatal("negative skin must be rejected")
	}
	rt, err := NewRuntime(m, sys, RuntimeOptions{Grid: [3]int{2, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if rt.NumRanks() != 2 {
		t.Fatalf("NumRanks = %d, want 2", rt.NumRanks())
	}
	rt.Close()
	rt.Close() // idempotent
}

// TestRuntimeEmptyRank pins the empty-subdomain case: a rank that owns no
// atoms (vacuum gap) must center no pairs — it must not fall into the
// builder's "CenterLimit 0 = all atoms" convention and double-count other
// ranks' work.
func TestRuntimeEmptyRank(t *testing.T) {
	m := tinyModel(t)
	rng := rand.New(rand.NewPCG(71, 72))
	sys := data.WaterBox(rng, 3, 3, 3)
	// Stretch the box along x: all atoms stay in [0, 9.32), the second
	// subdomain of a 2x1x1 grid is pure vacuum.
	sys.Cell[0] *= 2
	eSerial, fSerial := m.EnergyForces(sys)

	e, f, st, err := Evaluate(sys, m, Options{Grid: [3]int{2, 1, 1}, Halo: 3.0})
	if err != nil {
		t.Fatal(err)
	}
	if diff := e - eSerial; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("energy with an empty rank: %.12g vs serial %.12g", e, eSerial)
	}
	for i := range fSerial {
		for k := 0; k < 3; k++ {
			if d := f[i][k] - fSerial[i][k]; d > 1e-9 || d < -1e-9 {
				t.Fatalf("force mismatch at atom %d with an empty rank", i)
			}
		}
	}
	if st.MaxOwned != sys.NumAtoms() {
		t.Fatalf("one rank should own all %d atoms, MaxOwned=%d", sys.NumAtoms(), st.MaxOwned)
	}
}
