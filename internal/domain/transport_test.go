package domain

import (
	"bytes"
	"context"
	"math/rand/v2"
	"net"
	"testing"

	"repro/internal/atoms"
	"repro/internal/data"
	"repro/internal/md"
	"repro/internal/transport"
)

// newLocalTCPGroup builds an n-rank TCP world on ephemeral localhost ports,
// all inside this process, composed into one Transport via transport.Group
// — the exact wire path of a multi-node run, minus process boundaries.
func newLocalTCPGroup(t *testing.T, n int) transport.Transport {
	t.Helper()
	listeners := make([]net.Listener, n)
	hosts := make([]string, n)
	for r := 0; r < n; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[r] = ln
		hosts[r] = ln.Addr().String()
	}
	members := make([]transport.Transport, n)
	for r := 0; r < n; r++ {
		tr, err := transport.NewTCP(transport.TCPConfig{
			Rank:     r,
			Hosts:    hosts,
			Listener: listeners[r],
		})
		if err != nil {
			t.Fatal(err)
		}
		members[r] = tr
	}
	return transport.NewGroup(members...)
}

// TestRuntimeTrajectoryBitwiseAcrossTransports is the transport-layer
// variant of the central bitwise property: the trajectory must not depend
// on which wire the exchanges travel. Positions and rows move as IEEE-754
// bit patterns and land in canonical slots, so the in-process channel
// transport, real TCP sockets on localhost, and the fault-injection
// wrapper (both transparent and actively dropping/duplicating/delaying)
// must all produce identical bits on every rank grid.
func TestRuntimeTrajectoryBitwiseAcrossTransports(t *testing.T) {
	const steps, temp = 30, 600.0
	grids := [][3]int{{1, 1, 1}, {2, 1, 1}, {2, 2, 2}}
	for _, grid := range grids {
		nr := grid[0] * grid[1] * grid[2]
		base := runTrajectory(t, RuntimeOptions{Grid: grid, Skin: 0.5}, steps, temp)
		variants := []struct {
			name string
			tr   transport.Transport
		}{
			{"tcp", newLocalTCPGroup(t, nr)},
			{"fault-noop", transport.NewFault(transport.NewChan(nr), transport.NoFaults())},
			{"fault-chaos", transport.NewFault(transport.NewChan(nr), transport.FaultPlan{
				Seed: 12345, Drop: 0.05, Dup: 0.05, Delay: 0.10, KillRank: -1,
			})},
		}
		for _, v := range variants {
			sim := runTrajectory(t, RuntimeOptions{Grid: grid, Skin: 0.5, Transport: v.tr}, steps, temp)
			if sim.Energy != base.Energy {
				t.Errorf("grid %v over %s: energy %.17g != chan %.17g", grid, v.name, sim.Energy, base.Energy)
			}
			for i := range base.Sys.Pos {
				if sim.Sys.Pos[i] != base.Sys.Pos[i] {
					t.Errorf("grid %v over %s: position of atom %d diverged", grid, v.name, i)
					break
				}
				if sim.Forces[i] != base.Forces[i] {
					t.Errorf("grid %v over %s: force on atom %d diverged", grid, v.name, i)
					break
				}
			}
			sim.Close()
		}
		base.Close()
	}
}

// TestRuntimeRankDeathRecovery exercises the full failure path: a seeded
// fault plan kills a rank mid-trajectory, the surviving ranks detect the
// death without hanging a barrier, the master surfaces the failure through
// Runtime.Err, and Restore + checkpoint rewind reproduces the uninterrupted
// trajectory bit for bit (rebuilds are invisible to the physics, so the
// recovered run re-enters the exact same orbit).
func TestRuntimeRankDeathRecovery(t *testing.T) {
	const (
		grid      = "2x1x1"
		steps     = 40
		ckptAt    = 20
		killTick  = 30 // runtime force-call tick (construction is tick 1)
		temp      = 600.0
		seed      = 7
		timestepF = 0.5
	)
	m := tinyModel(t)

	newSim := func(tr transport.Transport) (*md.Simulation, *Runtime, *atoms.System) {
		sys := data.WaterBox(rand.New(rand.NewPCG(31, 32)), 3, 3, 3)
		rt, err := NewRuntime(m, sys, RuntimeOptions{Grid: [3]int{2, 1, 1}, Skin: 0.5, Transport: tr})
		if err != nil {
			t.Fatal(err)
		}
		sim, err := md.NewSimulation(sys, rt,
			md.WithTimestep(timestepF), md.WithSeed(seed), md.WithTemperature(temp),
			md.WithThermostat(nil)) // NVE: recovery must be bitwise, not statistical
		if err != nil {
			t.Fatal(err)
		}
		return sim, rt, sys
	}

	// Reference: uninterrupted run.
	ref, _, refSys := newSim(nil)
	defer ref.Close()
	if err := ref.Run(context.Background(), steps); err != nil {
		t.Fatal(err)
	}
	refRep := ref.Report()

	// Faulted run: rank 1 dies at the scheduled tick.
	fault := transport.NewFault(transport.NewChan(2), transport.FaultPlan{
		Seed: 99, KillRank: 1, KillAtStep: killTick,
	})
	sim, rt, simSys := newSim(fault)
	defer sim.Close()

	var ckpt bytes.Buffer
	if err := sim.Run(context.Background(), ckptAt); err != nil {
		t.Fatal(err)
	}
	if err := sim.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}

	// Step into the failure. The integrator keeps calling the runtime; once
	// the kill fires, Err latches and force calls short-circuit.
	died := false
	for i := ckptAt; i < steps; i++ {
		sim.Step()
		if rt.Err() != nil {
			died = true
			break
		}
	}
	if !died {
		t.Fatalf("scheduled kill at tick %d never surfaced through Runtime.Err", killTick)
	}
	if stats := fault.Stats(); stats.Kills != 1 {
		t.Fatalf("fault stats record %d kills, want 1", stats.Kills)
	}

	// Recover: revive the transport, then rewind the integrator. Restore
	// must come first — Resume re-evaluates forces, which needs live ranks.
	if err := rt.Restore(); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if err := sim.Resume(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if err := sim.Run(context.Background(), steps-ckptAt); err != nil {
		t.Fatal(err)
	}
	if rt.Err() != nil {
		t.Fatalf("recovered run failed again: %v", rt.Err())
	}

	rep := sim.Report()
	if rep.Step != refRep.Step {
		t.Fatalf("recovered run ended at step %d, reference at %d", rep.Step, refRep.Step)
	}
	if rep.PotentialEnergy != refRep.PotentialEnergy || rep.TotalEnergy != refRep.TotalEnergy {
		t.Errorf("recovered energies diverged: E_pot %.17g vs %.17g, E_tot %.17g vs %.17g",
			rep.PotentialEnergy, refRep.PotentialEnergy, rep.TotalEnergy, refRep.TotalEnergy)
	}
	for i := range refSys.Pos {
		if simSys.Pos[i] != refSys.Pos[i] {
			t.Errorf("recovered position of atom %d diverged: %v vs %v", i, simSys.Pos[i], refSys.Pos[i])
			break
		}
	}
}

// TestRuntimeRestoreRequiresReviver pins the error contract: Restore on a
// transport that cannot revive dead ranks reports it instead of silently
// resuming over a corpse.
func TestRuntimeRestoreRequiresReviver(t *testing.T) {
	m := tinyModel(t)
	sys := data.WaterBox(rand.New(rand.NewPCG(31, 32)), 3, 3, 3)
	rt, err := NewRuntime(m, sys, RuntimeOptions{Grid: [3]int{2, 1, 1}, Skin: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	// No dead ranks: Restore is a no-op clearing of state, reviver or not.
	if err := rt.Restore(); err != nil {
		t.Fatalf("Restore with no dead ranks: %v", err)
	}
}
