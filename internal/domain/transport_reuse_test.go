package domain

import (
	"math/rand/v2"
	"testing"

	"repro/internal/data"
	"repro/internal/transport"
)

// TestRuntimeReuseStepZeroAllocSteadyState extends the steady-state
// zero-allocation contract to the gated step: with static positions every
// center stays under the bound, and the all-cached decomposed step must not
// touch the heap. (Declared before the TCP-backed tests of this file so no
// freshly torn-down socket goroutines can pollute the allocation count.)
func TestRuntimeReuseStepZeroAllocSteadyState(t *testing.T) {
	m := tinyModel(t)
	sys := data.WaterBox(rand.New(rand.NewPCG(51, 52)), 3, 3, 3)
	rt, err := NewRuntime(m, sys, RuntimeOptions{Grid: [3]int{2, 1, 1}, Skin: 0.5, ReuseEps: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	forces := make([][3]float64, sys.NumAtoms())
	rt.EnergyForcesInto(sys, forces)
	rt.EnergyForcesInto(sys, forces)
	if allocs := testing.AllocsPerRun(20, func() {
		rt.EnergyForcesInto(sys, forces)
	}); allocs != 0 {
		t.Errorf("steady-state gated step allocates %.1f allocs/op, want 0", allocs)
	}
	st := rt.Stats()
	if st.PairSteps <= 0 {
		t.Fatalf("reuse counters did not advance: %+v", st)
	}
	if 1-float64(st.ActivePairs)/float64(st.PairSteps) <= 0.5 {
		t.Fatalf("static positions should be served almost entirely from cache: %+v", st)
	}
}

// TestRuntimeReuseTrajectoryBitwise extends the central bitwise property to
// the temporal-reuse engine: at eps > 0 the active-center decision is
// computed from grid-invariant master state, so the gated trajectory must
// not depend on the rank grid or on the wire the exchanges travel — chan,
// real TCP sockets, and the chaos-injecting fault wrapper must all produce
// identical bits, and those bits must match across grids too.
func TestRuntimeReuseTrajectoryBitwise(t *testing.T) {
	const steps, temp, eps = 30, 600.0, 0.05
	base := runTrajectory(t, RuntimeOptions{Grid: [3]int{1, 1, 1}, Skin: 0.5, ReuseEps: eps}, steps, temp)
	defer base.Close()

	// The run must genuinely exercise the gate.
	st := base.Runtime.(*Runtime).Stats()
	if st.PairSteps <= 0 || st.ActivePairs <= 0 {
		t.Fatalf("degenerate reuse counters: %+v", st)
	}

	grids := [][3]int{{2, 1, 1}, {2, 2, 2}}
	for _, grid := range grids {
		nr := grid[0] * grid[1] * grid[2]
		variants := []struct {
			name string
			tr   transport.Transport
		}{
			{"chan", nil},
			{"tcp", newLocalTCPGroup(t, nr)},
			{"fault-chaos", transport.NewFault(transport.NewChan(nr), transport.FaultPlan{
				Seed: 4242, Drop: 0.05, Dup: 0.05, Delay: 0.10, KillRank: -1,
			})},
		}
		for _, v := range variants {
			sim := runTrajectory(t, RuntimeOptions{
				Grid: grid, Skin: 0.5, ReuseEps: eps, Transport: v.tr,
			}, steps, temp)
			if sim.Energy != base.Energy {
				t.Errorf("grid %v over %s: energy %.17g != base %.17g", grid, v.name, sim.Energy, base.Energy)
			}
			for i := range base.Sys.Pos {
				if sim.Sys.Pos[i] != base.Sys.Pos[i] {
					t.Errorf("grid %v over %s: position of atom %d diverged", grid, v.name, i)
					break
				}
				if sim.Forces[i] != base.Forces[i] {
					t.Errorf("grid %v over %s: force on atom %d diverged", grid, v.name, i)
					break
				}
			}
			sim.Close()
		}
	}
}

// TestRuntimeReuseEpsZeroBitwise pins the exactness anchor at the runtime
// level: ReuseEps = 0 must be bit-identical to the plain runtime on every
// grid (the facade relies on this to make WithReuse(0) a true no-op).
func TestRuntimeReuseEpsZeroBitwise(t *testing.T) {
	const steps, temp = 30, 600.0
	for _, grid := range [][3]int{{1, 1, 1}, {2, 1, 1}, {2, 2, 2}} {
		plain := runTrajectory(t, RuntimeOptions{Grid: grid, Skin: 0.5}, steps, temp)
		gated := runTrajectory(t, RuntimeOptions{Grid: grid, Skin: 0.5, ReuseEps: 0}, steps, temp)
		if plain.Energy != gated.Energy {
			t.Errorf("grid %v: eps=0 energy %.17g != plain %.17g", grid, gated.Energy, plain.Energy)
		}
		for i := range plain.Sys.Pos {
			if plain.Sys.Pos[i] != gated.Sys.Pos[i] {
				t.Errorf("grid %v: eps=0 position of atom %d diverged", grid, i)
				break
			}
		}
		plain.Close()
		gated.Close()
	}
}
