package domain

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/transport"
)

// errRecoverInterrupt marks a phase cut short because a KindRecover epoch
// frame arrived mid-phase: the driver has declared a new generation, so
// waiting for the current phase's remaining frames (possibly from a corpse
// the transport never got to declare dead) would hang forever. The rank
// server treats it as a recoverable abort, not a fatal error.
var errRecoverInterrupt = errors.New("domain: phase interrupted by recovery epoch")

// This file is the runtime's attachment to the pluggable transport: the
// rebuild-time exchange-plan swap and the two per-step framed exchanges
// (forward ghost positions, reverse force rows) the comm goroutines serve.
//
// Plans make per-step payloads self-describing by position instead of by
// metadata: at every rebuild, rank d sends rank s the global atom ids it
// needs forwarded — in d's ghost-arena order (KindFwdPlan) — and rank s
// sends rank d the canonical pair slots it will push rows for — in s's
// ascending local pair order (KindRowPlan). A step then moves pure payload:
// s packs positions in exactly the order d asked for, d scatters payload k
// to its k-th planned arena slot; likewise for rows into canonical global
// slots. One frame per link per phase, staged through reusable Frame
// buffers, so the steady state allocates nothing on the chan transport.
//
// Failure: a comm goroutine that observes a KindDeath notice (or a
// DeadError from Send/Recv) marks the peer in deadRank, forfeits the
// pending expectation so no phase ever hangs, and latches commErr; the
// master surfaces the first failure through Runtime.Err after the step's
// barriers. Recovery is Runtime.Restore — revive the transport ranks and
// force a rebuild — plus rewinding the integrator to a checkpoint; results
// are bit-identical to the uninterrupted run because trajectories are
// independent of the rebuild schedule.

// Err returns the first rank failure observed by a comm goroutine, or nil.
// Once non-nil, steps short-circuit (forces and energy go stale) until
// Restore clears the failure.
func (r *Runtime) Err() error { return r.err }

// checkFailure latches the first per-rank transport error into r.err. It
// runs on the master after phase barriers, so the rank fields are settled.
func (r *Runtime) checkFailure() {
	if r.err != nil {
		return
	}
	for _, rk := range r.ranks {
		if rk.commErr != nil {
			r.err = rk.commErr
			return
		}
	}
}

// Restore recovers the runtime after a rank failure: dead ranks are revived
// on the transport (which must implement transport.Reviver), the latched
// errors are cleared, and the next step is forced to rebuild — re-deriving
// membership, neighbor lists, and exchange plans from current positions.
// Rebuilds do not perturb trajectories (skin-shell pairs contribute exactly
// zero), so a Restore followed by resuming the integrator from a checkpoint
// reproduces the uninterrupted run bit for bit.
//
// Call Restore before rewinding the integrator state: the restore path
// itself performs no evaluation, but the next force call must find a clean
// transport.
func (r *Runtime) Restore() error {
	var rv transport.Reviver
	for i := range r.deadRank {
		if !r.deadRank[i].Load() {
			continue
		}
		if rv == nil {
			var ok bool
			if rv, ok = r.tr.(transport.Reviver); !ok {
				return fmt.Errorf("domain: transport %T cannot revive dead rank %d", r.tr, i)
			}
		}
		if err := rv.Revive(i); err != nil {
			return fmt.Errorf("domain: revive rank %d: %w", i, err)
		}
		// The dead rank's in-memory replica store died with it: reset it so
		// the revived incarnation starts empty, like a fresh process would.
		// Survivors keep the shards they hold for the dead rank — that is
		// the redundancy recovery reads.
		r.ranks[i].repl.reset()
		r.deadRank[i].Store(false)
	}
	for _, rk := range r.ranks {
		rk.commErr = nil
	}
	r.err = nil
	r.started = false // force a rebuild: lists and exchange plans re-derive
	return nil
}

// LinkStats returns the transport's measured per-link statistics (empty for
// transports that measure nothing, like the in-process channels). These are
// the numbers perfmodel.CalibrateMachineTransport feeds into the cluster
// model so allegro-scale predicts multi-node step time from real links.
func (r *Runtime) LinkStats() []transport.LinkStats {
	if sr, ok := r.tr.(transport.StatsReporter); ok {
		return sr.LinkStats()
	}
	return nil
}

// noteErr latches this rank's first transport failure.
func (rk *rank) noteErr(err error) {
	if rk.commErr == nil && err != nil {
		rk.commErr = err
	}
}

// noteDeath records a death notice: the rank is marked globally dead and
// the failure latched (a dead peer makes this run unrecoverable without
// Restore, even when the victim is not this rank).
func (rk *rank) noteDeath(dead int) {
	rt := rk.rt
	if dead >= 0 && dead < len(rt.deadRank) {
		rt.deadRank[dead].Store(true)
	}
	rk.noteErr(&transport.DeadError{Rank: dead})
}

// derivePlans recomputes the rank's local halves of the exchange plans from
// the freshly built ghost list and canonical pair slots (rebuild only).
func (rk *rank) derivePlans() {
	rt := rk.rt
	nr := len(rt.ranks)
	rk.selfGhostIdx = rk.selfGhostIdx[:0]
	rk.selfGhostAtom = rk.selfGhostAtom[:0]
	for d := 0; d < nr; d++ {
		rk.fwdNeed[d] = rk.fwdNeed[d][:0]
		rk.fwdArena[d] = rk.fwdArena[d][:0]
		rk.rowSendT[d] = rk.rowSendT[d][:0]
		rk.rowPlan[d] = rk.rowPlan[d][:0]
	}
	// Forward plan: every ghost is either a self-owned periodic image
	// (staged locally) or an import from its owning rank, in arena order.
	for t := rk.nOwned; t < len(rk.gOf); t++ {
		g := rk.gOf[t]
		o := int(rt.owner[g])
		idx := int32(t - rk.nOwned)
		if o == rk.id {
			rk.selfGhostIdx = append(rk.selfGhostIdx, idx)
			rk.selfGhostAtom = append(rk.selfGhostAtom, g)
		} else {
			rk.fwdNeed[o] = append(rk.fwdNeed[o], g)
			rk.fwdArena[o] = append(rk.fwdArena[o], idx)
		}
	}
	// Row plan: pairs whose ghost neighbor is owned elsewhere push their
	// row to the owner, in ascending local pair order (which the receiver
	// replays positionally). Interior pairs never reference ghosts, but
	// scanning the whole list keeps this independent of the partition.
	p := &rk.pairs
	for t := 0; t < p.Len(); t++ {
		j := p.J[t]
		if j < rk.nOwned {
			continue
		}
		g := rk.gOf[j]
		o := int(rt.owner[g])
		if o == rk.id {
			continue
		}
		rk.rowSendT[o] = append(rk.rowSendT[o], int32(t))
		rk.rowPlan[o] = append(rk.rowPlan[o], rk.slotOf[t], g)
	}
}

// execPlanExchange derives this rank's plan halves and swaps them with
// every peer: one KindFwdPlan and one KindRowPlan per link, both tagged
// with the rebuild tick. Plans are exchanged even when empty so every rank
// expects exactly two frames per live peer.
func (rk *rank) execPlanExchange() {
	rt := rk.rt
	rk.derivePlans()
	nr := len(rt.ranks)
	if nr == 1 {
		return
	}
	tick := rt.rebuildTick
	f := &rk.sendF
	for d := 0; d < nr; d++ {
		if d == rk.id || rt.deadRank[d].Load() {
			continue
		}
		f.Reset(transport.KindFwdPlan, d, tick)
		copy(f.EnsureInts(len(rk.fwdNeed[d])), rk.fwdNeed[d])
		if err := rk.ep.Send(f); err != nil {
			rk.handleSendErr(d, err)
			continue
		}
		f.Reset(transport.KindRowPlan, d, tick)
		copy(f.EnsureInts(len(rk.rowPlan[d])), rk.rowPlan[d])
		if err := rk.ep.Send(f); err != nil {
			rk.handleSendErr(d, err)
		}
	}
	// Expect a FwdPlan and a RowPlan from every live peer. seen encodes
	// two bits per peer via two passes of the shared scratch: run the
	// receive loop over a combined count with per-kind bookkeeping.
	pending := 0
	for s := 0; s < nr; s++ {
		alive := s != rk.id && !rt.deadRank[s].Load()
		rk.seen[s] = !alive // seen == true means "nothing more expected"
		rk.planBits[s] = 0
		if alive {
			pending += 2
			rk.sendFwd[s] = rk.sendFwd[s][:0]
			rk.rowRecv[s] = rk.rowRecv[s][:0]
		}
	}
	for pending > 0 {
		if err := rk.recvExpect(transport.KindFwdPlan, transport.KindRowPlan); err != nil {
			rk.noteErr(err)
			return
		}
		g := &rk.recvF
		s := int(g.Src)
		switch g.Kind {
		case transport.KindFwdPlan:
			if g.Step != tick || s < 0 || s >= nr || rk.seen[s] || rk.planGot(s, 0) {
				continue
			}
			rk.sendFwd[s] = append(rk.sendFwd[s][:0], g.Ints...)
			rk.planMark(s, 0)
			pending--
		case transport.KindRowPlan:
			if g.Step != tick || s < 0 || s >= nr || rk.seen[s] || rk.planGot(s, 1) {
				continue
			}
			rk.rowRecv[s] = append(rk.rowRecv[s][:0], g.Ints...)
			rk.planMark(s, 1)
			pending--
		case transport.KindDeath:
			pending -= rk.forfeit(s)
			if rk.commErr != nil && s == rk.id {
				return // our own endpoint is dead; nothing more will arrive
			}
		case transport.KindRecover:
			rk.stashData() // park the epoch frame for the serve loop
			rk.noteErr(errRecoverInterrupt)
			return
		default:
			rk.stashData() // a fast peer's ghost frame; control noise drops
		}
	}
}

// planGot/planMark/forfeit track which plan kinds have arrived per peer
// during execPlanExchange, using a small bitmask scratch.
func (rk *rank) planGot(s, kind int) bool { return rk.planBits[s]&(1<<kind) != 0 }
func (rk *rank) planMark(s, kind int) {
	rk.planBits[s] |= 1 << kind
	if rk.planBits[s] == 3 {
		rk.seen[s] = true
	}
}

// forfeit marks a peer dead mid-phase and returns how many of its expected
// frames were still outstanding (so the receive loop's pending count stays
// exact and the phase cannot hang on a corpse).
func (rk *rank) forfeit(s int) int {
	rk.noteDeath(s)
	nr := len(rk.rt.ranks)
	if s < 0 || s >= nr || rk.seen[s] {
		return 0
	}
	rk.seen[s] = true
	out := 2
	if rk.planGot(s, 0) {
		out--
	}
	if rk.planGot(s, 1) {
		out--
	}
	return out
}

// execExchangeGhosts is the forward exchange (cmdPack): stage self-owned
// periodic images directly, push each peer the positions it planned for as
// one KindGhostPos frame, and scatter arriving frames into the current half
// of the double-buffered arena. packNs records the post-to-staged wall,
// which the overlap pipeline hides behind the interior block.
func (rk *rank) execExchangeGhosts() {
	rt := rk.rt
	buf := rk.ghost[rt.parity]
	for k, idx := range rk.selfGhostIdx {
		buf[idx] = rt.pw[rk.selfGhostAtom[k]]
	}
	nr := len(rt.ranks)
	if nr > 1 {
		tick := rt.stepTick
		f := &rk.sendF
		for d := 0; d < nr; d++ {
			if d == rk.id || len(rk.sendFwd[d]) == 0 {
				continue
			}
			if rt.deadRank[d].Load() {
				rk.noteDeath(d)
				continue
			}
			f.Reset(transport.KindGhostPos, d, tick)
			vecs := f.EnsureVecs(len(rk.sendFwd[d]))
			for k, g := range rk.sendFwd[d] {
				vecs[k] = rt.pw[g]
			}
			if err := rk.ep.Send(f); err != nil {
				rk.handleSendErr(d, err)
			}
		}
		pending := 0
		for s := 0; s < nr; s++ {
			expect := s != rk.id && len(rk.fwdNeed[s]) > 0 && !rt.deadRank[s].Load()
			rk.seen[s] = !expect
			if expect {
				pending++
			}
		}
		for pending > 0 {
			if err := rk.recvExpect(transport.KindGhostPos, transport.KindInvalid); err != nil {
				rk.noteErr(err)
				break
			}
			g := &rk.recvF
			s := int(g.Src)
			switch g.Kind {
			case transport.KindGhostPos:
				if g.Step != tick || s < 0 || s >= nr || rk.seen[s] {
					continue // stale step or fault-injected duplicate
				}
				idxs := rk.fwdArena[s]
				if len(g.Vecs) != len(idxs) {
					rk.noteErr(fmt.Errorf("domain: rank %d: ghost frame from %d carries %d positions, plan expects %d",
						rk.id, s, len(g.Vecs), len(idxs)))
					continue
				}
				for k, idx := range idxs {
					buf[idx] = g.Vecs[k]
				}
				rk.seen[s] = true
				pending--
			case transport.KindDeath:
				rk.noteDeath(s)
				if s >= 0 && s < nr && !rk.seen[s] {
					rk.seen[s] = true
					pending--
				}
				if s == rk.id {
					pending = 0 // our own endpoint died; drain no further
				}
			case transport.KindRecover:
				rk.stashData()
				rk.noteErr(errRecoverInterrupt)
				pending = 0
			default:
				rk.stashData()
			}
		}
	}
	rk.packNs = time.Since(rt.postTime).Nanoseconds()
}

// execExchangeRows is the reverse exchange (cmdExchangeRows): push every
// peer the force rows of pairs whose ghost neighbor it owns — ascending
// local pair order, exactly the KindRowPlan it holds — and scatter arriving
// rows into their canonical global slots. In-process receivers overwrite
// the slots with bitwise-identical values the sender's eval already wrote;
// across processes the received copy is the only source. Either way the
// frontier reduction reads settled slots.
func (rk *rank) execExchangeRows() {
	rt := rk.rt
	nr := len(rt.ranks)
	if nr == 1 {
		return
	}
	tick := rt.stepTick
	f := &rk.sendF
	for d := 0; d < nr; d++ {
		if d == rk.id || len(rk.rowSendT[d]) == 0 {
			continue
		}
		if rt.deadRank[d].Load() {
			rk.noteDeath(d)
			continue
		}
		f.Reset(transport.KindRows, d, tick)
		vecs := f.EnsureVecs(len(rk.rowSendT[d]))
		for k, t := range rk.rowSendT[d] {
			vecs[k] = rk.rowsBuf[t]
		}
		if err := rk.ep.Send(f); err != nil {
			rk.handleSendErr(d, err)
		}
	}
	pending := 0
	for s := 0; s < nr; s++ {
		expect := s != rk.id && len(rk.rowRecv[s]) > 0 && !rt.deadRank[s].Load()
		rk.seen[s] = !expect
		if expect {
			pending++
		}
	}
	for pending > 0 {
		if err := rk.recvExpect(transport.KindRows, transport.KindInvalid); err != nil {
			rk.noteErr(err)
			return
		}
		g := &rk.recvF
		s := int(g.Src)
		switch g.Kind {
		case transport.KindRows:
			if g.Step != tick || s < 0 || s >= nr || rk.seen[s] {
				continue
			}
			plan := rk.rowRecv[s]
			if 2*len(g.Vecs) != len(plan) {
				rk.noteErr(fmt.Errorf("domain: rank %d: row frame from %d carries %d rows, plan expects %d",
					rk.id, s, len(g.Vecs), len(plan)/2))
				continue
			}
			for k, v := range g.Vecs {
				rt.rows[plan[2*k]] = v
			}
			rk.seen[s] = true
			pending--
		case transport.KindDeath:
			rk.noteDeath(s)
			if s >= 0 && s < nr && !rk.seen[s] {
				rk.seen[s] = true
				pending--
			}
			if s == rk.id {
				return
			}
		case transport.KindRecover:
			rk.stashData()
			rk.noteErr(errRecoverInterrupt)
			return
		default:
			rk.stashData()
		}
	}
}

// handleSendErr classifies a Send failure: a DeadError marks the peer (or
// this rank itself) dead so subsequent phases skip it; anything else is
// latched as-is.
func (rk *rank) handleSendErr(dst int, err error) {
	if rank, ok := transport.IsDead(err); ok {
		rk.noteDeath(rank)
		return
	}
	_ = dst
	rk.noteErr(err)
}

// recvExpect fills rk.recvF with the next frame a phase consuming kinds a/b
// can act on: parked frames of those kinds (or death notices) first, in
// arrival order, then the endpoint. In-process the stash is always empty
// and this is exactly ep.Recv.
func (rk *rank) recvExpect(a, b transport.Kind) error {
	for i, f := range rk.stash {
		if f.Kind == a || f.Kind == b || f.Kind == transport.KindDeath {
			transport.CopyFrame(&rk.recvF, f)
			rk.stash = append(rk.stash[:i], rk.stash[i+1:]...)
			return nil
		}
	}
	return rk.ep.Recv(&rk.recvF)
}

// stashData parks rk.recvF for a later phase if it is a cross-phase data
// frame: a fast remote peer racing ahead (plans, ghosts, rows) or — on a
// rank process, whose serve loop has no global barrier against the driver —
// a driver frame pipelined behind the one being processed (owned positions
// sent right after a rebuild's layout broadcast). Control and unknown
// frames are dropped.
func (rk *rank) stashData() {
	switch rk.recvF.Kind {
	case transport.KindFwdPlan, transport.KindRowPlan, transport.KindGhostPos, transport.KindRows,
		transport.KindRebuild, transport.KindLayout, transport.KindOwnedPos, transport.KindShutdown,
		transport.KindReplica, transport.KindReplicaReq, transport.KindRecover:
		cp := new(transport.Frame)
		transport.CopyFrame(cp, &rk.recvF)
		rk.stash = append(rk.stash, cp)
	}
}
