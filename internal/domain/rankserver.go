package domain

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/atoms"
	"repro/internal/core"
	"repro/internal/transport"
)

// abortError marks a phase failure that is recoverable at the fleet level —
// a peer died mid-phase, or the phase's preconditions are gone (aborted
// rebuild left no valid plans). Serve NACKs the driver with a KindAbort at
// the phase tick and keeps serving; only driver death and transport
// breakage are fatal to a rank process.
type abortError struct {
	tick uint64
	dead int // dead peer rank, -1 when unknown
}

func (e *abortError) Error() string {
	return fmt.Sprintf("phase %d aborted (dead peer %d)", e.tick, e.dead)
}

// errAbandoned marks a phase cut short by a KindRecover epoch frame: the
// driver is not waiting for this phase anymore, so no NACK is sent — the
// serve loop just processes the parked epoch frame next.
var errAbandoned = errors.New("rankd: phase abandoned by recovery epoch")

// RankServer is the rank-process half of the remote protocol: one subdomain
// worker hosted in its own OS process (cmd/allegro-rankd), serving the
// driver's rebuild/step frames over a transport endpoint. It reuses the
// in-process rank phases verbatim — membership, canonical neighbor lists,
// slot assignment, the peer plan swap, both framed exchanges, evaluation,
// and the slot-ordered reduction all run through the same code the
// goroutine ranks run — hosted in a headless Runtime shell that holds the
// global arrays (positions, ownership, slot layout) the phases read. The
// shell has no worker goroutines and no master step loop: the driver plays
// the master, and the global arrays are populated from its frames instead
// of from sibling ranks. Because every derived quantity (wrap, ownership,
// slots, reduction order, energy slots) comes from the shared arithmetic,
// a distributed trajectory is bit-identical to the in-process one.
type RankServer struct {
	id     int
	nr     int // grid ranks; the driver is transport rank nr
	ep     transport.Endpoint
	logf   func(format string, args ...any)
	rt     *Runtime
	rk     *rank
	nOwned int

	// reduceAll lists every owned local index: a rank process always reduces
	// all of its atoms in one pass (the split interior/frontier schedule is a
	// latency optimization of the in-process pipeline, not of the protocol).
	reduceAll []int32

	sendF transport.Frame
}

// NewRankServer blocks on the endpoint until the driver's KindConfig frame
// arrives, builds the rank state it describes, and acknowledges. logf (when
// non-nil) receives progress lines.
func NewRankServer(ep transport.Endpoint, logf func(format string, args ...any)) (*RankServer, error) {
	s := &RankServer{id: ep.Rank(), ep: ep, logf: logf}
	var f transport.Frame
	for {
		if err := ep.Recv(&f); err != nil {
			return nil, fmt.Errorf("rankd %d: waiting for config: %w", s.id, err)
		}
		if f.Kind == transport.KindConfig {
			break
		}
		if f.Kind == transport.KindShutdown {
			return nil, fmt.Errorf("rankd %d: shut down before configuration", s.id)
		}
		// Hellos, heartbeats, peers racing ahead: ignore until configured.
	}
	var wire remoteWire
	if err := json.Unmarshal(f.Bytes, &wire); err != nil {
		return nil, fmt.Errorf("rankd %d: decode config: %w", s.id, err)
	}
	if err := s.build(&wire); err != nil {
		return nil, err
	}
	// The ack echoes the config frame's tick: 0 at the initial rendezvous,
	// the fleet generation when a replacement rejoins a running fleet.
	ack := &s.sendF
	ack.Reset(transport.KindConfig, s.nr, f.Step)
	if err := ep.Send(ack); err != nil {
		return nil, fmt.Errorf("rankd %d: config ack: %w", s.id, err)
	}
	s.logln("configured: grid %v, %d atoms, subdomain rank %d/%d, generation %d",
		wire.Grid, len(wire.Species), s.id, s.nr, f.Step)
	return s, nil
}

func (s *RankServer) logln(format string, args ...any) {
	if s.logf != nil {
		s.logf(format, args...)
	}
}

// build assembles the headless Runtime shell and this process's rank from
// the driver's configuration.
func (s *RankServer) build(wire *remoteWire) error {
	m, err := core.UnmarshalModel(wire.Model)
	if err != nil {
		return fmt.Errorf("rankd %d: decode model: %w", s.id, err)
	}
	n := len(wire.Species)
	sys := atoms.NewSystem(n)
	copy(sys.Species, wire.Species)
	sys.Cell = wire.Cell
	sys.PBC = true

	halo := wire.Halo
	if halo == 0 {
		halo = m.Cuts.Max()
	}
	opts := RuntimeOptions{
		Grid: wire.Grid, Skin: wire.Skin, Halo: halo,
		WorkersPerRank: wire.Workers,
		Compiled:       core.CompiledMode(wire.Compiled),
		RefKernels:     wire.RefKernels,
	}
	if err := validateRuntime(sys, opts); err != nil {
		return fmt.Errorf("rankd %d: %w", s.id, err)
	}
	nr := wire.Grid[0] * wire.Grid[1] * wire.Grid[2]
	if s.id < 0 || s.id >= nr {
		return fmt.Errorf("rankd %d: endpoint rank outside grid of %d ranks", s.id, nr)
	}
	s.nr = nr

	rt := &Runtime{
		model: m, sys: sys, opts: opts, grid: wire.Grid,
		halo: halo, skin: wire.Skin,
		n:      n,
		pw:     make([][3]float64, n),
		refPos: make([][3]float64, n),
		owner:  make([]int32, n),

		pairCnt:   make([]int32, n),
		pairStart: make([]int32, n+1),
		adjPtr:    make([]int32, n+1),

		forces:   make([][3]float64, n),
		ranks:    make([]*rank, nr),
		deadRank: make([]atomic.Bool, nr),
	}
	for k := 0; k < 3; k++ {
		rt.sub[k] = sys.Cell[k] / float64(wire.Grid[k])
	}
	wpr := wire.Workers
	if wpr <= 0 {
		wpr = 1
	}
	g := wire.Grid
	cz := s.id % g[2]
	cy := (s.id / g[2]) % g[1]
	cx := s.id / (g[1] * g[2])
	rk := &rank{rt: rt, id: s.id, scratch: core.NewEvalScratch(), local: atoms.NewSystem(0)}
	coord := [3]int{cx, cy, cz}
	for k := 0; k < 3; k++ {
		rk.lo[k] = float64(coord[k]) * rt.sub[k]
		rk.hi[k] = rk.lo[k] + rt.sub[k]
	}
	rk.builder.Workers = wpr
	rk.builder.Skin = wire.Skin
	rk.scratch.Workers = wpr
	rk.scratch.Compiled = opts.Compiled
	rk.scratch.RefKernels = opts.RefKernels
	rk.ep = s.ep
	rk.seen = make([]bool, nr)
	rk.planBits = make([]uint8, nr)
	rk.fwdNeed = make([][]int32, nr)
	rk.fwdArena = make([][]int32, nr)
	rk.sendFwd = make([][]int32, nr)
	rk.rowSendT = make([][]int32, nr)
	rk.rowPlan = make([][]int32, nr)
	rk.rowRecv = make([][]int32, nr)
	rk.repl = newReplStore()
	rt.ranks[s.id] = rk
	s.rt, s.rk = rt, rk
	return nil
}

// Serve runs the rank's frame loop until a shutdown frame or a failure.
// Peer and driver frames racing ahead of the current phase are parked in
// the rank's stash by the phase receive loops and consumed here in order.
// A peer's death is survivable: the interrupted phase is NACKed to the
// driver (KindAbort) and the rank waits for the recovery epoch.
func (s *RankServer) Serve() error {
	rk := s.rk
	for {
		if err := s.recvServe(); err != nil {
			return fmt.Errorf("rankd %d: %w", s.id, err)
		}
		f := &rk.recvF
		switch f.Kind {
		case transport.KindRebuild:
			if err := s.settle(s.handleRebuild(f)); err != nil {
				return err
			}
		case transport.KindOwnedPos:
			if err := s.settle(s.handleStep(f)); err != nil {
				return err
			}
		case transport.KindShutdown:
			s.logln("shutdown at step %d", s.rt.stepTick)
			return nil
		case transport.KindDeath:
			if int(f.Src) == s.nr {
				return fmt.Errorf("rankd %d: driver died", s.id)
			}
			rk.noteDeath(int(f.Src))
			s.logln("peer %d died; awaiting recovery epoch", int(f.Src))
		case transport.KindRecover:
			if err := s.handleRecover(f); err != nil {
				return err
			}
		case transport.KindReplica:
			s.handleReplica(f)
		case transport.KindReplicaReq:
			if err := s.handleReplicaReq(f); err != nil {
				return err
			}
		default:
			// A fast peer already serving the next step can land its ghost
			// frame here, before this rank's owned positions arrive (links
			// are FIFO, but only per peer) — park it for the coming phase.
			// Hellos, duplicate configs, and stale control frames drop.
			rk.stashData()
		}
	}
}

// settle converts a phase handler's outcome into serve-loop control flow:
// nil and abandoned phases continue serving; an abortError is NACKed to the
// driver at the phase tick and the rank keeps serving; anything else is
// fatal for the rank process.
func (s *RankServer) settle(err error) error {
	if err == nil || errors.Is(err, errAbandoned) {
		return nil
	}
	var ab *abortError
	if !errors.As(err, &ab) {
		return err
	}
	rk := s.rk
	rk.commErr = nil
	out := &s.sendF
	out.Reset(transport.KindAbort, s.nr, ab.tick)
	out.EnsureInts(1)[0] = int32(ab.dead)
	if serr := s.ep.Send(out); serr != nil {
		return fmt.Errorf("rankd %d: send abort: %w", s.id, serr)
	}
	s.logln("aborted phase %d (dead peer %d); awaiting recovery", ab.tick, ab.dead)
	return nil
}

// settlePhaseComm classifies a latched phase comm error: a recovery-epoch
// interrupt abandons the phase (the epoch frame is already parked in the
// stash), a peer death aborts it at the given tick. Either way the plans
// must not serve another step until the post-recovery rebuild.
func (s *RankServer) settlePhaseComm(tick uint64) error {
	rk := s.rk
	err := rk.commErr
	rk.commErr = nil
	s.rt.started = false
	if errors.Is(err, errRecoverInterrupt) {
		return errAbandoned
	}
	return &abortError{tick: tick, dead: s.firstDead()}
}

// firstDead reports the lowest currently-marked dead rank, or -1.
func (s *RankServer) firstDead() int {
	for r := range s.rt.deadRank {
		if s.rt.deadRank[r].Load() {
			return r
		}
	}
	return -1
}

// recvServe fills rk.recvF with the next frame the serve loop dispatches
// on, draining the phase stash (in arrival order) before the endpoint.
func (s *RankServer) recvServe() error {
	rk := s.rk
	for i, f := range rk.stash {
		switch f.Kind {
		case transport.KindRebuild, transport.KindOwnedPos, transport.KindShutdown,
			transport.KindDeath, transport.KindRecover, transport.KindReplica,
			transport.KindReplicaReq:
			transport.CopyFrame(&rk.recvF, f)
			rk.stash = append(rk.stash[:i], rk.stash[i+1:]...)
			return nil
		}
	}
	return s.ep.Recv(&rk.recvF)
}

// handleRecover opens a new fleet generation on this rank: the old epoch's
// failure state (dead-rank marks, latched comm error, stale phase frames)
// is discarded, parked replica shards are kept, and the epoch frame is
// acknowledged back to the driver at its generation tick. The rebuild flag
// is dropped so a stray position frame from the old epoch can never be
// served against recovery-invalidated plans.
func (s *RankServer) handleRecover(f *transport.Frame) error {
	rt, rk := s.rt, s.rk
	gen := f.Step
	for r := range rt.deadRank {
		rt.deadRank[r].Store(false)
	}
	rk.commErr = nil
	rt.started = false
	kept := 0
	for _, pf := range rk.stash {
		if pf.Kind == transport.KindReplica {
			s.storeReplica(pf)
			kept++
		}
	}
	rk.stash = rk.stash[:0]
	ack := &s.sendF
	ack.Reset(transport.KindRecover, s.nr, gen)
	if err := s.ep.Send(ack); err != nil {
		return fmt.Errorf("rankd %d: recover ack: %w", s.id, err)
	}
	s.logln("recovery epoch %d opened (%d parked replica shards kept)", gen, kept)
	return nil
}

// handleReplica stores a replication shard. Frames from the driver carry
// this rank's own shard (owner = self) and are forwarded to the buddy rank,
// completing the redundancy-2 contract; frames from a peer carry that
// peer's shard.
func (s *RankServer) handleReplica(f *transport.Frame) {
	rt, rk := s.rt, s.rk
	if !s.storeReplica(f) {
		s.logln("dropping malformed replica frame from %d", int(f.Src))
		return
	}
	if int(f.Src) != s.nr || s.nr == 1 {
		return
	}
	buddy := buddyOf(s.id, s.nr)
	if rt.deadRank[buddy].Load() {
		return
	}
	n := len(f.Ints)
	out := &s.sendF
	packReplica(out, buddy, f.Step, f.Ints, f.Vecs[:n], f.Vecs[n:])
	if err := s.ep.Send(out); err != nil {
		rk.handleSendErr(buddy, err)
		rk.commErr = nil // a dead buddy is survivable; the mark is enough
	}
}

// storeReplica puts a KindReplica frame's shard into the local store,
// resolving the owner: driver-sent frames carry this rank's own shard.
func (s *RankServer) storeReplica(f *transport.Frame) bool {
	owner := int(f.Src)
	if owner == s.nr {
		owner = s.id
	}
	if owner < 0 || owner >= s.nr {
		return false
	}
	return s.rk.repl.unpackReplica(f, int32(owner))
}

// handleReplicaReq replies to the driver's state-recovery probe with every
// shard this rank holds, echoing the request tick.
func (s *RankServer) handleReplicaReq(f *transport.Frame) error {
	out := &s.sendF
	packReplicaRep(out, s.nr, f.Step, s.rk.repl.shards())
	if err := s.ep.Send(out); err != nil {
		return fmt.Errorf("rankd %d: send replica shards: %w", s.id, err)
	}
	return nil
}

// handleRebuild runs this rank's half of a rebuild: import the broadcast
// ownership and positions, rebuild membership/lists, return the per-center
// pair counts, wait for the slot layout, then assign slots, swap exchange
// plans with the peers, and derive the local reduction adjacency.
func (s *RankServer) handleRebuild(f *transport.Frame) error {
	rt, rk := s.rt, s.rk
	if len(f.Ints) != rt.n || len(f.Vecs) != rt.n {
		return fmt.Errorf("rankd %d: rebuild frame carries %d owners / %d positions, system has %d atoms",
			s.id, len(f.Ints), len(f.Vecs), rt.n)
	}
	rt.rebuildTick = f.Step
	copy(rt.owner, f.Ints)
	copy(rt.pw, f.Vecs)
	for i := range rt.pairCnt {
		rt.pairCnt[i] = 0
	}
	rk.execRebuild()
	s.nOwned = rk.nOwned
	s.reduceAll = s.reduceAll[:0]
	for t := 0; t < rk.nOwned; t++ {
		s.reduceAll = append(s.reduceAll, int32(t))
	}

	// Per-center counts back to the driver, owned-ascending (gOf order).
	out := &s.sendF
	out.Reset(transport.KindCounts, s.nr, rt.rebuildTick)
	ints := out.EnsureInts(rk.nOwned)
	for t := 0; t < rk.nOwned; t++ {
		ints[t] = rt.pairCnt[rk.gOf[t]]
	}
	if err := s.ep.Send(out); err != nil {
		return fmt.Errorf("rankd %d: send counts: %w", s.id, err)
	}

	// The global slot layout comes back once the driver has every rank's
	// counts; peer plan frames racing ahead park in the stash.
	for {
		if err := rk.recvExpect(transport.KindLayout, transport.KindInvalid); err != nil {
			return fmt.Errorf("rankd %d: waiting for layout: %w", s.id, err)
		}
		g := &rk.recvF
		if g.Kind == transport.KindLayout && g.Step == rt.rebuildTick {
			break
		}
		if g.Kind == transport.KindDeath {
			if int(g.Src) == s.nr {
				return fmt.Errorf("rankd %d: driver died during rebuild", s.id)
			}
			rk.noteDeath(int(g.Src))
			continue // the plan swap below will observe the death
		}
		if g.Kind == transport.KindRecover {
			// The driver gave up on this rebuild and opened a recovery
			// epoch: abandon the phase and let the serve loop process the
			// parked epoch frame.
			rk.stashData()
			rk.commErr = nil
			rt.started = false
			return errAbandoned
		}
		rk.stashData()
	}
	if len(rk.recvF.Ints) != rt.n+1 {
		return fmt.Errorf("rankd %d: layout frame carries %d offsets, want %d", s.id, len(rk.recvF.Ints), rt.n+1)
	}
	copy(rt.pairStart, rk.recvF.Ints)
	rt.nPairs = int(rt.pairStart[rt.n])
	if cap(rt.pairGI) < rt.nPairs {
		rt.pairGI = make([]int32, rt.nPairs)
		rt.pairGJ = make([]int32, rt.nPairs)
		rt.rows = make([][3]float64, rt.nPairs)
		rt.pairE = make([]float64, rt.nPairs)
		rt.interiorSlot = make([]bool, rt.nPairs)
	}
	rt.pairGI = rt.pairGI[:rt.nPairs]
	rt.pairGJ = rt.pairGJ[:rt.nPairs]
	rt.rows = rt.rows[:rt.nPairs]
	rt.pairE = rt.pairE[:rt.nPairs]
	rt.interiorSlot = rt.interiorSlot[:rt.nPairs]

	rk.execSlots()
	rk.execPlanExchange()
	if rk.commErr != nil {
		return s.settlePhaseComm(rt.rebuildTick)
	}
	s.buildLocalAdjacency()
	rt.started = true
	s.logln("rebuild %d: %d owned, %d ghosts, %d pairs", rt.rebuildTick, rk.nOwned, rk.nGhosts, rk.pairs.Len())
	return nil
}

// buildLocalAdjacency derives, for every atom this rank owns, the signed
// slot references contributing to its force, in ascending slot order —
// exactly the sub-ranges of the master's global adjacency that execReduce
// reads here. Center references come from this rank's own pairs (centers
// are owned); neighbor references come from own pairs whose neighbor this
// rank owns (directly or as a self-ghost image) plus the row plans peers
// registered at the plan swap (their pairs whose ghost neighbor lives
// here). Every global slot contributes exactly one center and one neighbor
// reference somewhere, so the union is the master's list; sorting by
// (atom, slot, side) reproduces the master's per-atom order (ascending
// slot, center half before neighbor half).
func (s *RankServer) buildLocalAdjacency() {
	rt, rk := s.rt, s.rk
	refs := make([]int64, 0, 2*rk.pairs.Len())
	pack := func(atom int32, ref int32) int64 { return int64(atom)<<32 | int64(ref) }
	p := &rk.pairs
	for t := 0; t < p.Len(); t++ {
		gi := rk.gOf[p.I[t]]
		refs = append(refs, pack(gi, rk.slotOf[t]<<1))
		gj := rk.gOf[p.J[t]]
		if rt.owner[gj] == int32(rk.id) {
			refs = append(refs, pack(gj, rk.slotOf[t]<<1|1))
		}
	}
	for src := 0; src < s.nr; src++ {
		plan := rk.rowRecv[src]
		for k := 0; k+1 < len(plan); k += 2 {
			refs = append(refs, pack(plan[k+1], plan[k]<<1|1))
		}
	}
	sort.Slice(refs, func(a, b int) bool { return refs[a] < refs[b] })

	if cap(rt.adj) < len(refs) {
		rt.adj = make([]int32, len(refs))
	}
	rt.adj = rt.adj[:len(refs)]
	for i := range rt.adjPtr {
		rt.adjPtr[i] = 0
	}
	for i, r := range refs {
		rt.adj[i] = int32(r & 0xFFFFFFFF)
		rt.adjPtr[int(r>>32)+1]++
	}
	for a := 0; a < rt.n; a++ {
		rt.adjPtr[a+1] += rt.adjPtr[a]
	}
}

// handleStep runs one force evaluation: import owned positions, exchange
// ghosts with the peers, evaluate both blocks, exchange reverse rows,
// reduce, and return forces plus slot-ordered pair energies to the driver.
func (s *RankServer) handleStep(f *transport.Frame) error {
	rt, rk := s.rt, s.rk
	if !rt.started {
		// No valid plans — a prior phase aborted or a recovery epoch
		// invalidated them. NACK so the driver latches at this tick.
		return &abortError{tick: f.Step, dead: s.firstDead()}
	}
	if len(f.Vecs) != s.nOwned {
		return fmt.Errorf("rankd %d: position frame carries %d atoms, rank owns %d", s.id, len(f.Vecs), s.nOwned)
	}
	rt.stepTick = f.Step
	for t, v := range f.Vecs {
		rt.pw[rk.gOf[t]] = v
	}
	rt.parity ^= 1
	rt.postTime = time.Now()
	rk.execExchangeGhosts()
	rk.evalIntNs = rk.timeEval(0, rk.nInterior, &rk.intView)
	rk.evalFrontNs = rk.timeEval(rk.nInterior, rk.pairs.Len(), &rk.frontView)
	rk.execExchangeRows()
	if rk.commErr != nil {
		return s.settlePhaseComm(rt.stepTick)
	}
	rk.execReduce(s.reduceAll)

	out := &s.sendF
	out.Reset(transport.KindForces, s.nr, rt.stepTick)
	vecs := out.EnsureVecs(s.nOwned)
	nSlots := 0
	for t := 0; t < s.nOwned; t++ {
		g := rk.gOf[t]
		vecs[t] = rt.forces[g]
		nSlots += int(rt.pairStart[g+1] - rt.pairStart[g])
	}
	sc := out.EnsureScalars(nSlots)
	k := 0
	for t := 0; t < s.nOwned; t++ {
		g := rk.gOf[t]
		for slot := rt.pairStart[g]; slot < rt.pairStart[g+1]; slot++ {
			sc[k] = rt.pairE[slot]
			k++
		}
	}
	if err := s.ep.Send(out); err != nil {
		return fmt.Errorf("rankd %d: send forces: %w", s.id, err)
	}
	return nil
}

// Close releases the rank's pools. The endpoint is left to the caller.
func (s *RankServer) Close() {
	if s.rk != nil {
		s.rk.builder.Close()
		s.rk.scratch.Close()
	}
}
