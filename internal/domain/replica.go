package domain

import (
	"fmt"
	"sort"

	"repro/internal/transport"
)

// Peer-redundant in-memory replication: every rank streams its owned-atom
// state (positions and velocities at a replication point) to a buddy rank,
// so when a rank dies its last-replicated state can be reassembled from the
// survivors' memory without touching disk. The store keeps the two newest
// replication points per owner, which guarantees a complete older point
// survives even when a death interrupts the newest broadcast halfway.

// buddyOf returns the rank that holds rank r's replica shard: each rank
// streams its state to its successor in rank order.
func buddyOf(r, nr int) int { return (r + 1) % nr }

// predOf returns the rank whose replica shard rank r holds.
func predOf(r, nr int) int { return (r - 1 + nr) % nr }

// replShard is one rank's owned-atom snapshot at a replication point. All
// slices are owned copies (frames are reused by the transport).
type replShard struct {
	step  uint64
	owner int32
	ids   []int32
	pos   [][3]float64
	vel   [][3]float64
}

// replStore holds the replica shards one rank (or the driver) keeps in
// memory: per owner, the two newest distinct replication points, newest
// first. put is idempotent — a duplicate (owner, step) delivery overwrites
// in place, which is what makes fault-injected duplicate replica frames
// harmless.
type replStore struct {
	byOwner map[int32][]replShard
}

func newReplStore() *replStore {
	return &replStore{byOwner: make(map[int32][]replShard)}
}

func (s *replStore) reset() {
	s.byOwner = make(map[int32][]replShard)
}

// drop forgets every shard owned by the given rank — called when that rank
// dies and rejoins, since its pre-death self-shard is no longer meaningful.
func (s *replStore) drop(owner int32) {
	delete(s.byOwner, owner)
}

// put stores an owned copy of the shard data, keeping the two newest
// distinct steps per owner.
func (s *replStore) put(step uint64, owner int32, ids []int32, pos, vel [][3]float64) {
	have := s.byOwner[owner]
	for i := range have {
		if have[i].step == step {
			have[i] = cloneShard(step, owner, ids, pos, vel)
			return
		}
	}
	have = append(have, cloneShard(step, owner, ids, pos, vel))
	sort.Slice(have, func(i, j int) bool { return have[i].step > have[j].step })
	if len(have) > 2 {
		have = have[:2]
	}
	s.byOwner[owner] = have
}

// shards returns every stored shard (order unspecified).
func (s *replStore) shards() []replShard {
	var out []replShard
	for _, have := range s.byOwner {
		out = append(out, have...)
	}
	return out
}

func cloneShard(step uint64, owner int32, ids []int32, pos, vel [][3]float64) replShard {
	sh := replShard{
		step:  step,
		owner: owner,
		ids:   make([]int32, len(ids)),
		pos:   make([][3]float64, len(pos)),
		vel:   make([][3]float64, len(vel)),
	}
	copy(sh.ids, ids)
	copy(sh.pos, pos)
	copy(sh.vel, vel)
	return sh
}

// packReplica fills f as a KindReplica frame: Ints = global ids, Vecs =
// positions then velocities.
func packReplica(f *transport.Frame, dst int, step uint64, ids []int32, pos, vel [][3]float64) {
	f.Reset(transport.KindReplica, dst, step)
	copy(f.EnsureInts(len(ids)), ids)
	vecs := f.EnsureVecs(2 * len(ids))
	copy(vecs[:len(ids)], pos)
	copy(vecs[len(ids):], vel)
}

// unpackReplica copies a KindReplica frame into the store under the given
// owner. Returns false on a malformed payload.
func (s *replStore) unpackReplica(f *transport.Frame, owner int32) bool {
	n := len(f.Ints)
	if len(f.Vecs) != 2*n {
		return false
	}
	s.put(f.Step, owner, f.Ints, f.Vecs[:n], f.Vecs[n:])
	return true
}

// packReplicaRep packs every shard of the store into one KindReplicaRep
// frame: Ints = [nShards, then per shard owner and nIds, then all ids
// concatenated]; Scalars = per-shard steps (exact: steps are far below
// 2^53); Vecs = concatenated per-shard pos||vel.
func packReplicaRep(f *transport.Frame, dst int, tick uint64, shards []replShard) {
	f.Reset(transport.KindReplicaRep, dst, tick)
	nIds, nVecs := 0, 0
	for _, sh := range shards {
		nIds += len(sh.ids)
		nVecs += len(sh.pos) + len(sh.vel)
	}
	ints := f.EnsureInts(1 + 2*len(shards) + nIds)
	scalars := f.EnsureScalars(len(shards))
	vecs := f.EnsureVecs(nVecs)
	ints[0] = int32(len(shards))
	p, v := 1+2*len(shards), 0
	for i, sh := range shards {
		ints[1+2*i] = sh.owner
		ints[2+2*i] = int32(len(sh.ids))
		scalars[i] = float64(sh.step)
		copy(ints[p:], sh.ids)
		p += len(sh.ids)
		copy(vecs[v:], sh.pos)
		v += len(sh.pos)
		copy(vecs[v:], sh.vel)
		v += len(sh.vel)
	}
}

// unpackReplicaRep decodes a KindReplicaRep frame into owned shards.
// Returns nil, false on a malformed payload.
func unpackReplicaRep(f *transport.Frame) ([]replShard, bool) {
	if len(f.Ints) < 1 {
		return nil, false
	}
	n := int(f.Ints[0])
	if n < 0 || len(f.Ints) < 1+2*n || len(f.Scalars) != n {
		return nil, false
	}
	shards := make([]replShard, 0, n)
	p, v := 1+2*n, 0
	for i := 0; i < n; i++ {
		owner := f.Ints[1+2*i]
		nIds := int(f.Ints[2+2*i])
		if nIds < 0 || p+nIds > len(f.Ints) || v+2*nIds > len(f.Vecs) {
			return nil, false
		}
		shards = append(shards, cloneShard(
			uint64(f.Scalars[i]), owner,
			f.Ints[p:p+nIds], f.Vecs[v:v+nIds], f.Vecs[v+nIds:v+2*nIds]))
		p += nIds
		v += 2 * nIds
	}
	if p != len(f.Ints) || v != len(f.Vecs) {
		return nil, false
	}
	return shards, true
}

// Replicate records a replication point: every rank stores its own
// owned-atom shard of pos/vel (full global arrays, typically the
// integrator's raw positions and velocities at MD step `step`) and streams
// it to its buddy rank. After a successful Replicate, any single rank death
// can be recovered from the survivors' memory via RecoverState. A one-rank
// world has no peer to buddy with, so the master keeps the replica itself.
func (r *Runtime) Replicate(step uint64, pos, vel [][3]float64) error {
	if r.closed {
		return fmt.Errorf("domain: Replicate on a closed runtime")
	}
	if r.err != nil {
		return r.err
	}
	if !r.started {
		return fmt.Errorf("domain: Replicate before the first step")
	}
	if len(pos) != r.n || len(vel) != r.n {
		return fmt.Errorf("domain: Replicate buffer length mismatch (%d/%d positions, need %d)",
			len(pos), len(vel), r.n)
	}
	r.replStep, r.replSrcPos, r.replSrcVel = step, pos, vel
	r.dispatchComm(cmdReplicate)
	r.replSrcPos, r.replSrcVel = nil, nil
	if len(r.ranks) == 1 {
		rk := r.ranks[0]
		r.masterRepl.put(step, 0, rk.gOf[:rk.nOwned], pos, vel)
	}
	r.checkFailure()
	return r.err
}

// RecoverState reassembles the newest complete replication point from the
// survivors' replica stores into pos and vel (full global arrays) and
// returns its step. Call it while the dead-rank marks are still set —
// before Restore — since a dead rank's own store does not count: its memory
// is considered lost with the process it models.
func (r *Runtime) RecoverState(pos, vel [][3]float64) (uint64, bool) {
	if len(pos) != r.n || len(vel) != r.n {
		return 0, false
	}
	var shards []replShard
	for _, rk := range r.ranks {
		if r.deadRank[rk.id].Load() {
			continue
		}
		shards = append(shards, rk.repl.shards()...)
	}
	shards = append(shards, r.masterRepl.shards()...)
	return assembleReplicas(shards, pos, vel)
}

// execReplicate is the comm-goroutine half of Replicate (cmdReplicate):
// gather this rank's owned shard, store it, send it to the buddy, and wait
// for the predecessor's shard. Replica frames are idempotent by (owner,
// step), so fault-injected duplicates and delayed strays from earlier
// replication points are harmless.
func (rk *rank) execReplicate() {
	rt := rk.rt
	nr := len(rt.ranks)
	step := rt.replStep
	ids := rk.gOf[:rk.nOwned]
	if cap(rk.replPos) < rk.nOwned {
		rk.replPos = make([][3]float64, rk.nOwned)
		rk.replVel = make([][3]float64, rk.nOwned)
	}
	rk.replPos = rk.replPos[:rk.nOwned]
	rk.replVel = rk.replVel[:rk.nOwned]
	for k, g := range ids {
		rk.replPos[k] = rt.replSrcPos[g]
		rk.replVel[k] = rt.replSrcVel[g]
	}
	rk.repl.put(step, int32(rk.id), ids, rk.replPos, rk.replVel)
	if nr == 1 {
		return
	}
	buddy := buddyOf(rk.id, nr)
	if rt.deadRank[buddy].Load() {
		rk.noteDeath(buddy)
	} else {
		packReplica(&rk.sendF, buddy, step, ids, rk.replPos, rk.replVel)
		if err := rk.ep.Send(&rk.sendF); err != nil {
			rk.handleSendErr(buddy, err)
		}
	}
	pred := predOf(rk.id, nr)
	expect := !rt.deadRank[pred].Load()
	for expect {
		if err := rk.recvExpect(transport.KindReplica, transport.KindInvalid); err != nil {
			rk.noteErr(err)
			return
		}
		g := &rk.recvF
		s := int(g.Src)
		switch g.Kind {
		case transport.KindReplica:
			if s < 0 || s >= nr {
				continue
			}
			if !rk.repl.unpackReplica(g, int32(s)) {
				rk.noteErr(fmt.Errorf("domain: rank %d: malformed replica frame from %d", rk.id, s))
				return
			}
			if s == pred && g.Step == step {
				expect = false
			}
		case transport.KindDeath:
			rk.noteDeath(s)
			if s == pred || s == rk.id {
				expect = false
			}
		case transport.KindRecover:
			rk.stashData()
			rk.noteErr(errRecoverInterrupt)
			expect = false
		default:
			rk.stashData()
		}
	}
}

// assembleReplicas picks the newest replication point whose shards cover
// every atom and scatters it into pos and vel (full global arrays). Returns
// the step of the chosen point, or ok=false when no complete point exists.
func assembleReplicas(shards []replShard, pos, vel [][3]float64) (uint64, bool) {
	n := len(pos)
	bySstep := make(map[uint64][]replShard)
	for _, sh := range shards {
		bySstep[sh.step] = append(bySstep[sh.step], sh)
	}
	steps := make([]uint64, 0, len(bySstep))
	for st := range bySstep {
		steps = append(steps, st)
	}
	sort.Slice(steps, func(i, j int) bool { return steps[i] > steps[j] })
	seen := make([]bool, n)
	for _, st := range steps {
		for i := range seen {
			seen[i] = false
		}
		covered := 0
		ok := true
		for _, sh := range bySstep[st] {
			for _, id := range sh.ids {
				if id < 0 || int(id) >= n {
					ok = false
					break
				}
				if !seen[id] {
					seen[id] = true
					covered++
				}
			}
			if !ok {
				break
			}
		}
		if !ok || covered != n {
			continue
		}
		// Complete point: scatter. Duplicate shards for the same owner carry
		// identical data, so overwrite order does not matter.
		for _, sh := range bySstep[st] {
			for k, id := range sh.ids {
				pos[id] = sh.pos[k]
				vel[id] = sh.vel[k]
			}
		}
		return st, true
	}
	return 0, false
}
