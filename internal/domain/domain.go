// Package domain implements LAMMPS-style spatial domain decomposition for
// strictly local potentials: the periodic box is split into a 3-D grid of
// subdomains ("ranks", realized as goroutines communicating over channels
// in place of MPI), each rank evaluates the potential for the ordered pairs
// *centered* on its owned atoms using ghost copies of boundary atoms from
// neighboring subdomains, and ghost force contributions are communicated
// back to their owners (LAMMPS "reverse communication").
//
// Because Allegro's receptive field never grows with depth, a ghost halo of
// one cutoff radius is exactly sufficient — the property that lets the paper
// scale to 5120 GPUs. The package supports a configurable halo multiplier so
// the message-passing ablation (a NequIP-style model needs L x cutoff of
// halo) can be demonstrated quantitatively.
package domain

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/atoms"
)

// CenterPotential evaluates energy and forces counting only interactions
// centered on atoms i with owned[i] == true. For a strictly local,
// pair-centered energy decomposition (Allegro's E = sum_ij E_ij with ij
// grouped by center i), summing centered evaluations over a partition of
// ownership reproduces the serial result exactly.
type CenterPotential interface {
	EnergyForcesCentered(sys *atoms.System, owned []bool) (float64, [][3]float64)
}

// Options configures a decomposition.
type Options struct {
	// Grid is the number of subdomains per dimension.
	Grid [3]int
	// Halo is the ghost-import distance (>= the potential's cutoff for
	// correctness; the MPNN ablation uses multiples of the cutoff).
	Halo float64
}

// Validate checks decomposition invariants against a system.
func (o *Options) Validate(sys *atoms.System) error {
	if !sys.PBC {
		return fmt.Errorf("domain: decomposition requires a periodic system")
	}
	for k := 0; k < 3; k++ {
		if o.Grid[k] < 1 {
			return fmt.Errorf("domain: grid dimension %d must be >= 1", k)
		}
		sub := sys.Cell[k] / float64(o.Grid[k])
		if o.Halo > sub {
			return fmt.Errorf("domain: halo %.2f exceeds subdomain width %.2f along %d (grid too fine)", o.Halo, sub, k)
		}
	}
	if o.Halo <= 0 {
		return fmt.Errorf("domain: halo must be positive")
	}
	return nil
}

// NumRanks returns the total rank count.
func (o *Options) NumRanks() int { return o.Grid[0] * o.Grid[1] * o.Grid[2] }

// rankResult is what each rank sends back on its channel.
type rankResult struct {
	rank   int
	energy float64
	// force contributions keyed by global atom index.
	idx    []int
	forces [][3]float64
	// statistics
	owned, ghosts int
}

// Stats summarizes one decomposed evaluation.
type Stats struct {
	Energy     float64
	MaxOwned   int
	MaxGhosts  int
	TotalGhost int
}

// Evaluate computes energy and forces of sys under pot using the
// decomposition described by opts. Rank evaluations run concurrently on
// goroutines; the reduction is deterministic (rank-ordered).
func Evaluate(sys *atoms.System, pot CenterPotential, opts Options) (float64, [][3]float64, Stats, error) {
	if err := opts.Validate(sys); err != nil {
		return 0, nil, Stats{}, err
	}
	wrapped := sys.Clone()
	wrapped.Wrap()
	n := wrapped.NumAtoms()
	r := opts.NumRanks()

	// Subdomain geometry.
	var sub [3]float64
	for k := 0; k < 3; k++ {
		sub[k] = wrapped.Cell[k] / float64(opts.Grid[k])
	}
	rankOf := func(p [3]float64) int {
		var c [3]int
		for k := 0; k < 3; k++ {
			c[k] = int(p[k] / sub[k])
			if c[k] >= opts.Grid[k] {
				c[k] = opts.Grid[k] - 1
			}
			if c[k] < 0 {
				c[k] = 0
			}
		}
		return (c[0]*opts.Grid[1]+c[1])*opts.Grid[2] + c[2]
	}
	owner := make([]int, n)
	for i := 0; i < n; i++ {
		owner[i] = rankOf(wrapped.Pos[i])
	}

	results := make(chan rankResult, r)
	for rank := 0; rank < r; rank++ {
		go func(rank int) {
			results <- evaluateRank(wrapped, pot, opts, sub, owner, rank)
		}(rank)
	}
	collected := make([]rankResult, 0, r)
	for i := 0; i < r; i++ {
		collected = append(collected, <-results)
	}
	sort.Slice(collected, func(a, b int) bool { return collected[a].rank < collected[b].rank })

	forces := make([][3]float64, n)
	var st Stats
	for _, res := range collected {
		st.Energy += res.energy
		for t, gi := range res.idx {
			for k := 0; k < 3; k++ {
				forces[gi][k] += res.forces[t][k]
			}
		}
		if res.owned > st.MaxOwned {
			st.MaxOwned = res.owned
		}
		if res.ghosts > st.MaxGhosts {
			st.MaxGhosts = res.ghosts
		}
		st.TotalGhost += res.ghosts
	}
	return st.Energy, forces, st, nil
}

// evaluateRank builds the local (owned + ghost) sub-system and evaluates the
// potential centered on owned atoms.
func evaluateRank(sys *atoms.System, pot CenterPotential, opts Options, sub [3]float64, owner []int, rank int) rankResult {
	g := opts.Grid
	cz := rank % g[2]
	cy := (rank / g[2]) % g[1]
	cx := rank / (g[1] * g[2])
	var lo, hi [3]float64
	coord := [3]int{cx, cy, cz}
	for k := 0; k < 3; k++ {
		lo[k] = float64(coord[k]) * sub[k]
		hi[k] = lo[k] + sub[k]
	}

	// Owned atoms first, then ghost images within the halo of the box.
	var localIdx []int
	var localPos [][3]float64
	for i := 0; i < sys.NumAtoms(); i++ {
		if owner[i] == rank {
			localIdx = append(localIdx, i)
			localPos = append(localPos, sys.Pos[i])
		}
	}
	nOwned := len(localIdx)
	// Ghost import: check all 27 periodic images of every atom against the
	// halo-expanded box. (An O(N*27) scan per rank; a production code uses
	// neighbor-rank exchanges, but the imported set is identical.)
	for i := 0; i < sys.NumAtoms(); i++ {
		for sx := -1; sx <= 1; sx++ {
			for sy := -1; sy <= 1; sy++ {
				for sz := -1; sz <= 1; sz++ {
					img := [3]float64{
						sys.Pos[i][0] + float64(sx)*sys.Cell[0],
						sys.Pos[i][1] + float64(sy)*sys.Cell[1],
						sys.Pos[i][2] + float64(sz)*sys.Cell[2],
					}
					if owner[i] == rank && sx == 0 && sy == 0 && sz == 0 {
						continue // the owned copy itself
					}
					inside := true
					for k := 0; k < 3; k++ {
						if img[k] < lo[k]-opts.Halo || img[k] >= hi[k]+opts.Halo {
							inside = false
							break
						}
					}
					if inside {
						localIdx = append(localIdx, i)
						localPos = append(localPos, img)
					}
				}
			}
		}
	}

	local := atoms.NewSystem(len(localIdx))
	for t, gi := range localIdx {
		local.Species[t] = sys.Species[gi]
		local.Pos[t] = localPos[t]
	}
	ownedMask := make([]bool, len(localIdx))
	for t := 0; t < nOwned; t++ {
		ownedMask[t] = true
	}
	e, f := pot.EnergyForcesCentered(local, ownedMask)
	res := rankResult{rank: rank, energy: e, owned: nOwned, ghosts: len(localIdx) - nOwned}
	// Forward owned forces and reverse-communicate ghost contributions.
	for t, gi := range localIdx {
		if f[t][0] != 0 || f[t][1] != 0 || f[t][2] != 0 {
			res.idx = append(res.idx, gi)
			res.forces = append(res.forces, f[t])
		}
	}
	return res
}

// Potential adapts a decomposed evaluation to the md.Potential interface so
// an MD loop runs each force call across the rank grid — the paper's
// LAMMPS-driven production pattern.
type Potential struct {
	Pot  CenterPotential
	Opts Options
}

// EnergyForces evaluates through the decomposition. Errors (which indicate
// a misconfigured grid, not a runtime condition) panic.
func (p *Potential) EnergyForces(sys *atoms.System) (float64, [][3]float64) {
	e, f, _, err := Evaluate(sys, p.Pot, p.Opts)
	if err != nil {
		panic("domain: " + err.Error())
	}
	return e, f
}

// HaloVolumeFraction returns the analytic ratio of imported ghost volume to
// owned volume for a cubic subdomain of edge a and halo h:
// ((a+2h)^3 - a^3)/a^3. This drives the communication model in
// internal/cluster and quantifies why a receptive field of L*cutoff (MPNN)
// is catastrophically more expensive than one cutoff (Allegro).
func HaloVolumeFraction(edge, halo float64) float64 {
	a3 := edge * edge * edge
	e := edge + 2*halo
	return (e*e*e - a3) / a3
}

// RequiredHalo returns the ghost-import distance a model needs: cutoff for a
// strictly local model, layers*cutoff for an MPNN with the given number of
// message-passing layers.
func RequiredHalo(cutoff float64, mpLayers int) float64 {
	if mpLayers < 1 {
		mpLayers = 1
	}
	return cutoff * float64(mpLayers)
}

// ReceptiveAtoms estimates the number of atoms inside the receptive sphere
// of radius h at number density rho (the paper's water example: 96 atoms at
// 6 A vs 20,834 at 36 A).
func ReceptiveAtoms(h, rho float64) float64 {
	return 4.0 / 3.0 * math.Pi * h * h * h * rho
}
