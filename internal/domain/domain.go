// Package domain implements LAMMPS-style spatial domain decomposition for
// strictly local potentials: the periodic box is split into a 3-D grid of
// subdomains ("ranks", realized as long-lived goroutines communicating over
// preallocated channels in place of MPI), each rank evaluates the potential
// for the ordered pairs *centered* on its owned atoms using ghost copies of
// boundary atoms from neighboring subdomains, and ghost force contributions
// are communicated back to their owners (LAMMPS "reverse communication").
//
// Because Allegro's receptive field never grows with depth, a ghost halo of
// one cutoff radius is exactly sufficient — the property that lets the paper
// scale to 5120 GPUs. The package supports a configurable halo so the
// message-passing ablation (a NequIP-style model needs L x cutoff of halo)
// can be demonstrated quantitatively.
//
// The production path is the persistent Runtime: rank workers that keep
// their neighbor lists (with a Verlet skin), ghost-exchange plans, and
// evaluation arenas alive across MD steps, re-deriving them only when the
// skin/2 displacement trigger fires. Evaluate is the one-shot convenience
// wrapper over a transient Runtime.
package domain

import (
	"math"

	"repro/internal/atoms"
	"repro/internal/core"
)

// CenterPotential evaluates energy and forces counting only interactions
// centered on atoms i with owned[i] == true. For a strictly local,
// pair-centered energy decomposition (Allegro's E = sum_ij E_ij with ij
// grouped by center i), summing centered evaluations over a partition of
// ownership reproduces the serial result exactly. core.Model implements it;
// the partition-identity tests rest on this interface.
type CenterPotential interface {
	EnergyForcesCentered(sys *atoms.System, owned []bool) (float64, [][3]float64)
}

// Options configures a one-shot decomposed evaluation (see RuntimeOptions
// for the persistent runtime).
type Options struct {
	// Grid is the number of subdomains per dimension.
	Grid [3]int
	// Halo is the ghost-import distance (>= the potential's cutoff for
	// correctness; the MPNN ablation uses multiples of the cutoff).
	Halo float64
}

// Validate checks decomposition invariants against a system.
func (o *Options) Validate(sys *atoms.System) error {
	return validateRuntime(sys, RuntimeOptions{Grid: o.Grid, Halo: o.Halo})
}

// NumRanks returns the total rank count.
func (o *Options) NumRanks() int { return o.Grid[0] * o.Grid[1] * o.Grid[2] }

// Stats summarizes one decomposed evaluation.
type Stats struct {
	Energy     float64
	MaxOwned   int
	MaxGhosts  int
	TotalGhost int
}

// Evaluate computes energy and forces of sys under m using the
// decomposition described by opts: it constructs a Runtime, runs one step,
// and tears it down, so the one-shot API shares the persistent code path
// exactly. Steady-state loops should hold a Runtime (or use
// allegro.NewDecomposedSim) instead.
func Evaluate(sys *atoms.System, m *core.Model, opts Options) (float64, [][3]float64, Stats, error) {
	rt, err := NewRuntime(m, sys, RuntimeOptions{Grid: opts.Grid, Halo: opts.Halo})
	if err != nil {
		return 0, nil, Stats{}, err
	}
	defer rt.Close()
	e, forces := rt.EnergyForces(sys)
	st := rt.Stats()
	return e, forces, Stats{Energy: e, MaxOwned: st.MaxOwned, MaxGhosts: st.MaxGhosts, TotalGhost: st.TotalGhost}, nil
}

// Potential adapts a decomposed evaluation to the md.Potential interface.
// It lazily constructs a Runtime on first use (rebuilding it if pointed at
// a different system), so repeated force calls reuse the persistent rank
// workers.
//
// Deprecated: construct the Runtime directly (NewRuntime, or
// allegro.NewDecomposedSim for MD): it exposes the zero-allocation
// md.InPlacePotential path, the Verlet skin, and Close. Potential cannot
// release its rank workers deterministically.
type Potential struct {
	Pot  *core.Model
	Opts Options

	rt  *Runtime
	sys *atoms.System
}

// EnergyForces evaluates through the decomposition. Errors (which indicate
// a misconfigured grid, not a runtime condition) panic.
func (p *Potential) EnergyForces(sys *atoms.System) (float64, [][3]float64) {
	if p.rt == nil || p.sys != sys {
		if p.rt != nil {
			p.rt.Close()
		}
		rt, err := NewRuntime(p.Pot, sys, RuntimeOptions{Grid: p.Opts.Grid, Halo: p.Opts.Halo})
		if err != nil {
			panic("domain: " + err.Error())
		}
		p.rt, p.sys = rt, sys
	}
	return p.rt.EnergyForces(sys)
}

// Close releases the underlying runtime's rank workers, if any.
func (p *Potential) Close() {
	if p.rt != nil {
		p.rt.Close()
		p.rt, p.sys = nil, nil
	}
}

// HaloVolumeFraction returns the analytic ratio of imported ghost volume to
// owned volume for a cubic subdomain of edge a and halo h:
// ((a+2h)^3 - a^3)/a^3. This drives the communication model in
// internal/cluster and quantifies why a receptive field of L*cutoff (MPNN)
// is catastrophically more expensive than one cutoff (Allegro).
func HaloVolumeFraction(edge, halo float64) float64 {
	a3 := edge * edge * edge
	e := edge + 2*halo
	return (e*e*e - a3) / a3
}

// RequiredHalo returns the ghost-import distance a model needs: cutoff for a
// strictly local model, layers*cutoff for an MPNN with the given number of
// message-passing layers. The Runtime adds its Verlet skin on top of this
// base distance, so skin reuse never shrinks the physical halo.
func RequiredHalo(cutoff float64, mpLayers int) float64 {
	if mpLayers < 1 {
		mpLayers = 1
	}
	return cutoff * float64(mpLayers)
}

// ReceptiveAtoms estimates the number of atoms inside the receptive sphere
// of radius h at number density rho (the paper's water example: 96 atoms at
// 6 A vs 20,834 at 36 A).
func ReceptiveAtoms(h, rho float64) float64 {
	return 4.0 / 3.0 * math.Pi * h * h * h * rho
}
