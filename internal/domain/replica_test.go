package domain

import (
	"math/rand/v2"
	"testing"

	"repro/internal/data"
	"repro/internal/md"
	"repro/internal/transport"
)

func TestReplicaFrameRoundTrip(t *testing.T) {
	ids := []int32{4, 7, 1}
	pos := [][3]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	vel := [][3]float64{{-1, 0, 1}, {0.5, -0.5, 0}, {2, 2, 2}}
	var f transport.Frame
	packReplica(&f, 3, 42, ids, pos, vel)
	if f.Kind != transport.KindReplica || f.Step != 42 || int(f.Dst) != 3 {
		t.Fatalf("packed header %v step %d dst %d", f.Kind, f.Step, f.Dst)
	}
	st := newReplStore()
	if !st.unpackReplica(&f, 2) {
		t.Fatal("well-formed replica frame rejected")
	}
	sh := st.shards()
	if len(sh) != 1 || sh[0].owner != 2 || sh[0].step != 42 {
		t.Fatalf("stored shards %+v", sh)
	}
	for k := range ids {
		if sh[0].ids[k] != ids[k] || sh[0].pos[k] != pos[k] || sh[0].vel[k] != vel[k] {
			t.Fatalf("shard entry %d corrupted", k)
		}
	}
	// Malformed: vec payload not twice the id count.
	f.Vecs = f.Vecs[:len(f.Vecs)-1]
	if st.unpackReplica(&f, 2) {
		t.Fatal("malformed replica frame accepted")
	}
}

func TestReplicaRepFrameRoundTrip(t *testing.T) {
	shards := []replShard{
		cloneShard(10, 0, []int32{0, 2}, [][3]float64{{1, 1, 1}, {2, 2, 2}}, [][3]float64{{3, 3, 3}, {4, 4, 4}}),
		cloneShard(15, 1, []int32{1}, [][3]float64{{5, 5, 5}}, [][3]float64{{6, 6, 6}}),
		cloneShard(15, 0, nil, nil, nil), // empty shard survives the trip too
	}
	var f transport.Frame
	packReplicaRep(&f, 4, 99, shards)
	if f.Kind != transport.KindReplicaRep || f.Step != 99 {
		t.Fatalf("packed header %v step %d", f.Kind, f.Step)
	}
	got, ok := unpackReplicaRep(&f)
	if !ok || len(got) != len(shards) {
		t.Fatalf("unpack: ok=%v, %d shards, want %d", ok, len(got), len(shards))
	}
	for i, sh := range shards {
		g := got[i]
		if g.step != sh.step || g.owner != sh.owner || len(g.ids) != len(sh.ids) {
			t.Fatalf("shard %d header diverged: %+v vs %+v", i, g, sh)
		}
		for k := range sh.ids {
			if g.ids[k] != sh.ids[k] || g.pos[k] != sh.pos[k] || g.vel[k] != sh.vel[k] {
				t.Fatalf("shard %d entry %d corrupted", i, k)
			}
		}
	}
	// Truncated payloads must be rejected, not mis-scattered.
	bad := f
	bad.Ints = bad.Ints[:len(bad.Ints)-1]
	if _, ok := unpackReplicaRep(&bad); ok {
		t.Fatal("truncated ids accepted")
	}
	bad = f
	bad.Vecs = bad.Vecs[:len(bad.Vecs)-1]
	if _, ok := unpackReplicaRep(&bad); ok {
		t.Fatal("truncated vecs accepted")
	}
}

// TestReplStoreKeepsTwoNewestIdempotently pins the redundancy window: per
// owner the store holds the two newest distinct replication points — so a
// death mid-broadcast always leaves a complete older point — and duplicate
// (owner, step) deliveries overwrite in place rather than evicting.
func TestReplStoreKeepsTwoNewestIdempotently(t *testing.T) {
	st := newReplStore()
	put := func(step uint64, x float64) {
		st.put(step, 0, []int32{0}, [][3]float64{{x, 0, 0}}, [][3]float64{{0, x, 0}})
	}
	put(10, 1)
	put(20, 2)
	put(20, 2) // duplicate delivery
	put(15, 3) // older than both: evicted immediately
	put(30, 4) // evicts 15's survivor (10)
	sh := st.shards()
	if len(sh) != 2 {
		t.Fatalf("store holds %d shards, want 2", len(sh))
	}
	steps := map[uint64]float64{}
	for _, s := range sh {
		steps[s.step] = s.pos[0][0]
	}
	if steps[20] != 2 || steps[30] != 4 {
		t.Fatalf("kept points %v, want steps 20 and 30", steps)
	}
	st.drop(0)
	if len(st.shards()) != 0 {
		t.Fatal("drop left shards behind")
	}
}

// TestAssembleReplicasPicksNewestCompletePoint: reassembly must skip a newer
// but incomplete replication point (a death interrupted its broadcast) in
// favor of the newest point whose shards cover every atom.
func TestAssembleReplicasPicksNewestCompletePoint(t *testing.T) {
	mk := func(step uint64, owner int32, ids []int32, x float64) replShard {
		pos := make([][3]float64, len(ids))
		vel := make([][3]float64, len(ids))
		for k := range ids {
			pos[k] = [3]float64{x, float64(ids[k]), 0}
			vel[k] = [3]float64{0, x, float64(ids[k])}
		}
		return cloneShard(step, owner, ids, pos, vel)
	}
	shards := []replShard{
		mk(10, 0, []int32{0, 1}, 1),
		mk(10, 1, []int32{2, 3}, 1),
		mk(20, 0, []int32{0, 1}, 2), // step 20 is missing owner 1's half
	}
	pos := make([][3]float64, 4)
	vel := make([][3]float64, 4)
	step, ok := assembleReplicas(shards, pos, vel)
	if !ok || step != 10 {
		t.Fatalf("assembled step %d (ok=%v), want complete point 10", step, ok)
	}
	for i := 0; i < 4; i++ {
		if pos[i] != [3]float64{1, float64(i), 0} || vel[i] != [3]float64{0, 1, float64(i)} {
			t.Fatalf("atom %d scattered wrong: pos %v vel %v", i, pos[i], vel[i])
		}
	}
	// No complete point at all: reassembly refuses rather than guessing.
	if _, ok := assembleReplicas(shards[2:], pos, vel); ok {
		t.Fatal("incomplete coverage assembled")
	}
	// Out-of-range ids invalidate the point.
	if _, ok := assembleReplicas([]replShard{mk(5, 0, []int32{0, 9}, 1)}, pos, vel); ok {
		t.Fatal("out-of-range id accepted")
	}
}

// TestRuntimeChaosRecoveryBitwise is the in-process half of the elastic
// recovery property: under seeded chaos kills (and a manual kill), the
// supervise loop — recover state from the survivors' buddy shards, restore
// the fleet, rewind the integrator to the replication point — reproduces
// the failure-free trajectory bit for bit on every multi-rank grid. (A
// single in-process rank exchanges nothing, so there is no wire on which a
// death could be observed; the remote variant covers 1x1x1.) NVE
// throughout: the thermostat RNG is not replicated, so determinism is only
// defined without one.
func TestRuntimeChaosRecoveryBitwise(t *testing.T) {
	const (
		steps    = 40
		replEach = 5
		temp     = 600.0
	)
	type variant struct {
		name string
		tr   transport.Transport
		kill func(step int) // manual kill hook, nil under scheduled chaos
	}
	m := tinyModel(t)
	grids := [][3]int{{2, 1, 1}, {2, 2, 2}}
	for _, grid := range grids {
		nr := grid[0] * grid[1] * grid[2]
		base := runTrajectory(t, RuntimeOptions{Grid: grid, Skin: 0.5}, steps, temp)

		manual := transport.NewChan(nr)
		killed := false // fire once: the replay passes step 17 again
		variants := []variant{
			{"chan-manual", manual, func(step int) {
				if step == 17 && !killed {
					killed = true
					manual.(transport.Killer).Kill(nr - 1)
				}
			}},
			{"fault-chaos", transport.NewFault(transport.NewChan(nr), transport.FaultPlan{
				Seed: 1234, KillRank: -1,
				ChaosKills: 2, ChaosFirst: 15, ChaosEvery: 20, ChaosRanks: nr,
			}), nil},
		}

		for _, v := range variants {
			sys := data.WaterBox(rand.New(rand.NewPCG(31, 32)), 3, 3, 3)
			rt, err := NewRuntime(m, sys, RuntimeOptions{Grid: grid, Skin: 0.5, Transport: v.tr})
			if err != nil {
				t.Fatalf("grid %v %s: %v", grid, v.name, err)
			}
			sim := md.NewDecomposedSim(sys, rt, 0.5)
			sim.InitVelocities(temp, rand.New(rand.NewPCG(33, 34)))

			pos := make([][3]float64, len(sys.Pos))
			vel := make([][3]float64, len(sys.Pos))
			recoveries := 0
			recover := func() {
				t.Helper()
				for rt.Err() != nil {
					// Dead-rank marks are still set: RecoverState must not
					// count the casualty's own store.
					step, ok := rt.RecoverState(pos, vel)
					if !ok {
						t.Fatalf("grid %v %s: no complete replication point at step %d", grid, v.name, sim.StepNum)
					}
					rewind := sim.StepNum - int(step)
					if rewind < 0 || rewind > 2*replEach {
						t.Fatalf("grid %v %s: rewound %d steps past the replication window", grid, v.name, rewind)
					}
					if err := rt.Restore(); err != nil {
						t.Fatalf("grid %v %s: Restore: %v", grid, v.name, err)
					}
					sim.SetState(int(step), pos, vel)
					recoveries++
					if recoveries > 8 {
						t.Fatalf("grid %v %s: recovery loop did not converge", grid, v.name)
					}
				}
			}

			if err := rt.Replicate(0, sys.Pos, sim.Vel); err != nil {
				recover()
			}
			for sim.StepNum < steps {
				if v.kill != nil {
					v.kill(sim.StepNum)
				}
				sim.Step()
				if rt.Err() != nil {
					recover()
					continue
				}
				if sim.StepNum%replEach == 0 {
					if err := rt.Replicate(uint64(sim.StepNum), sys.Pos, sim.Vel); err != nil {
						recover()
					}
				}
			}

			if recoveries == 0 {
				t.Fatalf("grid %v %s: no kill ever fired — the property was not exercised", grid, v.name)
			}
			if sim.Energy != base.Energy {
				t.Errorf("grid %v %s: energy %.17g != clean %.17g after %d recoveries",
					grid, v.name, sim.Energy, base.Energy, recoveries)
			}
			for i := range base.Sys.Pos {
				if sim.Sys.Pos[i] != base.Sys.Pos[i] {
					t.Errorf("grid %v %s: position of atom %d diverged after recovery", grid, v.name, i)
					break
				}
				if sim.Forces[i] != base.Forces[i] {
					t.Errorf("grid %v %s: force on atom %d diverged after recovery", grid, v.name, i)
					break
				}
			}
			sim.Close()
		}
		base.Close()
	}
}
