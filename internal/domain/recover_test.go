package domain

import (
	"math/rand/v2"
	"net"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/md"
	"repro/internal/transport"
)

// rankProc is one rank-server "process": a goroutine with its own exit
// channel, so the harness can wait for a specific incarnation to die before
// admitting its replacement (a real supervisor waits on the OS process).
type rankProc struct {
	done chan error
}

func startRankProc(ep transport.Endpoint) *rankProc {
	p := &rankProc{done: make(chan error, 1)}
	go func() {
		srv, err := NewRankServer(ep, nil)
		if err != nil {
			p.done <- err
			return
		}
		defer srv.Close()
		p.done <- srv.Serve()
	}()
	return p
}

// superviseRecovery drives one full driver-side recovery: wait for the dead
// incarnation to exit, quiesce the fleet into a new generation, admit the
// replacement (respawn), reship config, and — for failures that consumed
// per-step state — reassemble the last replication point and rewind the
// integrator. Mirrors cmd/allegro-md's supervisor loop.
func superviseRecovery(t *testing.T, rr *RemoteRuntime, sim *md.DecomposedSim, procs []*rankProc, respawn func(dead int) *rankProc, replEach int) {
	t.Helper()
	for round := 0; rr.Err() != nil; round++ {
		if round > 4 {
			t.Fatalf("recovery did not converge: %v", rr.Err())
		}
		rf, ok := AsRankFailure(rr.Err())
		if !ok || rf.Rank < 0 || rf.Rank >= len(procs) {
			t.Fatalf("unrecoverable failure: %v", rr.Err())
		}
		dead := rf.Rank
		select {
		case <-procs[dead].done:
			// The dead incarnation has exited; its endpoint is free.
		case <-time.After(15 * time.Second):
			t.Fatalf("rank %d's dead server never exited", dead)
		}
		if err := rr.Quiesce(dead); err != nil {
			t.Fatalf("Quiesce(%d): %v", dead, err)
		}
		procs[dead] = respawn(dead)
		if err := rr.Rejoin(dead, 20*time.Second); err != nil {
			t.Fatalf("Rejoin(%d): %v", dead, err)
		}
		if rf.Phase == PhaseStep || rf.Phase == PhaseRebuild {
			// The integrator advanced on stale forces (a rebuild failure
			// happens inside a force call too): rewind to the newest
			// complete replication point — and never past it.
			n := len(sim.Sys.Pos)
			pos := make([][3]float64, n)
			vel := make([][3]float64, n)
			step, err := rr.RecoverState(dead, pos, vel)
			if err != nil {
				t.Fatalf("RecoverState(%d): %v", dead, err)
			}
			rewind := sim.StepNum - int(step)
			if rewind < 0 || rewind > 2*replEach {
				t.Fatalf("rewound %d steps, outside the replication window [0, %d]", rewind, 2*replEach)
			}
			rr.ClearFailure(rewind)
			sim.SetState(int(step), pos, vel)
		} else {
			rr.ClearFailure(0)
		}
	}
}

// runSupervised advances the trajectory to `steps` under the supervisor,
// replicating every replEach steps and invoking kill at each step boundary.
func runSupervised(t *testing.T, rr *RemoteRuntime, sim *md.DecomposedSim, steps, replEach int, kill func(step int), procs []*rankProc, respawn func(dead int) *rankProc) {
	t.Helper()
	replicate := func() {
		if err := rr.Replicate(uint64(sim.StepNum), sim.Sys.Pos, sim.Vel); err != nil {
			superviseRecovery(t, rr, sim, procs, respawn, replEach)
		}
	}
	replicate()
	for sim.StepNum < steps {
		if kill != nil {
			kill(sim.StepNum)
		}
		sim.Step()
		if rr.Err() != nil {
			superviseRecovery(t, rr, sim, procs, respawn, replEach)
			continue
		}
		if sim.StepNum%replEach == 0 {
			replicate()
		}
	}
}

// TestRemoteRuntimeElasticRecoveryBitwise is the remote half of the elastic
// recovery property, on every rank grid: a rank server is killed
// mid-trajectory, a fresh replacement is admitted into a new generation
// (config reshipped, state reassembled from the survivors' buddy shards —
// no disk), and the finished trajectory is bit-identical to the
// failure-free run. The recovery timers must record exactly one recovery.
func TestRemoteRuntimeElasticRecoveryBitwise(t *testing.T) {
	const (
		steps    = 40
		replEach = 5
		killAt   = 17
		temp     = 600.0
	)
	m := tinyModel(t)
	for _, grid := range [][3]int{{1, 1, 1}, {2, 1, 1}, {2, 2, 2}} {
		nr := grid[0] * grid[1] * grid[2]
		base := runTrajectory(t, RuntimeOptions{Grid: grid, Skin: 0.5}, steps, temp)

		tr := transport.NewChan(nr + 1)
		endpoint := func(r int) transport.Endpoint {
			ep, err := tr.Endpoint(r)
			if err != nil {
				t.Fatal(err)
			}
			return ep
		}
		procs := make([]*rankProc, nr)
		for r := range procs {
			procs[r] = startRankProc(endpoint(r))
		}
		sys := data.WaterBox(rand.New(rand.NewPCG(31, 32)), 3, 3, 3)
		rr, err := NewRemoteRuntime(m, sys, RemoteOptions{Grid: grid, Skin: 0.5, Transport: tr})
		if err != nil {
			t.Fatalf("grid %v: %v", grid, err)
		}
		sim := md.NewDecomposedSim(sys, rr, 0.5)
		sim.InitVelocities(temp, rand.New(rand.NewPCG(33, 34)))

		victim := nr - 1
		killed := false
		kill := func(step int) {
			if step == killAt && !killed {
				killed = true
				tr.(transport.Killer).Kill(victim)
			}
		}
		respawn := func(dead int) *rankProc { return startRankProc(endpoint(dead)) }
		runSupervised(t, rr, sim, steps, replEach, kill, procs, respawn)

		if sim.Energy != base.Energy {
			t.Errorf("grid %v: energy %.17g != clean %.17g", grid, sim.Energy, base.Energy)
		}
		for i := range base.Sys.Pos {
			if sim.Sys.Pos[i] != base.Sys.Pos[i] {
				t.Errorf("grid %v: position of atom %d diverged after replacement", grid, i)
				break
			}
			if sim.Forces[i] != base.Forces[i] {
				t.Errorf("grid %v: force on atom %d diverged after replacement", grid, i)
				break
			}
		}
		recs := rr.Recoveries()
		if len(recs) != 1 {
			t.Fatalf("grid %v: %d recoveries recorded, want 1", grid, len(recs))
		}
		rec := recs[0]
		if rec.DeadRank != victim || rec.Generation != 1 || rr.Generation() != 1 {
			t.Errorf("grid %v: recovery record %+v (generation %d), want dead rank %d at generation 1",
				grid, rec, rr.Generation(), victim)
		}
		if rec.RewindSteps < 0 || rec.RewindSteps > 2*replEach {
			t.Errorf("grid %v: rewound %d steps, outside [0, %d]", grid, rec.RewindSteps, 2*replEach)
		}
		if rec.QuiesceNs <= 0 || rec.RestoreNs <= 0 || rec.ResumeNs <= 0 {
			t.Errorf("grid %v: recovery timers not populated: %+v", grid, rec)
		}

		rr.Close()
		for r := range procs {
			if err := <-procs[r].done; err != nil {
				t.Errorf("grid %v: rank server %d: %v", grid, r, err)
			}
		}
		base.Close()
	}
}

// TestRemoteRuntimeElasticRecoveryOverTCP runs the replacement flow over
// real sockets: the victim's transport is closed (its process "dies"), the
// survivors detect the silence by heartbeat, and the replacement rejoins on
// the same address with a bumped generation — so any pre-death frames still
// buffered on old connections are provably fenced. Bitwise against the
// in-process run, like everything else.
func TestRemoteRuntimeElasticRecoveryOverTCP(t *testing.T) {
	const (
		steps    = 30
		replEach = 5
		killAt   = 13
		temp     = 600.0
	)
	grid := [3]int{2, 1, 1}
	nr := 2
	m := tinyModel(t)
	base := runTrajectory(t, RuntimeOptions{Grid: grid, Skin: 0.5}, steps, temp)
	defer base.Close()

	listeners := make([]net.Listener, nr+1)
	hosts := make([]string, nr+1)
	for r := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[r] = ln
		hosts[r] = ln.Addr().String()
	}
	mk := func(rank int, ln net.Listener, gen uint64) transport.Transport {
		tr, err := transport.NewTCP(transport.TCPConfig{
			Rank: rank, Hosts: hosts, Listener: ln, Generation: gen,
			// Fast failure detection: short heartbeats, few dial retries.
			HeartbeatEvery:   20 * time.Millisecond,
			HeartbeatTimeout: 250 * time.Millisecond,
			DialRetries:      3,
			DialBackoff:      20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tr.Close() })
		return tr
	}
	members := make([]transport.Transport, nr+1)
	for r := range members {
		members[r] = mk(r, listeners[r], 0)
	}
	tr := transport.NewGroup(members...)

	procs := make([]*rankProc, nr)
	for r := range procs {
		ep, err := members[r].Endpoint(r)
		if err != nil {
			t.Fatal(err)
		}
		procs[r] = startRankProc(ep)
	}
	sys := data.WaterBox(rand.New(rand.NewPCG(31, 32)), 3, 3, 3)
	rr, err := NewRemoteRuntime(m, sys, RemoteOptions{Grid: grid, Skin: 0.5, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	sim := md.NewDecomposedSim(sys, rr, 0.5)
	sim.InitVelocities(temp, rand.New(rand.NewPCG(33, 34)))

	victim := 1
	killed := false
	kill := func(step int) {
		if step == killAt && !killed {
			killed = true
			members[victim].Close() // the rank process dies, sockets and all
		}
	}
	respawn := func(dead int) *rankProc {
		// Rebind the dead rank's address (the OS may lag releasing it) and
		// come up in the fleet's new generation, like a restarted rankd
		// launched with -generation.
		var ln net.Listener
		deadline := time.Now().Add(10 * time.Second)
		for {
			var err error
			ln, err = net.Listen("tcp", hosts[dead])
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("rebind %s: %v", hosts[dead], err)
			}
			time.Sleep(50 * time.Millisecond)
		}
		nt := mk(dead, ln, rr.Generation())
		ep, err := nt.Endpoint(dead)
		if err != nil {
			t.Fatal(err)
		}
		return startRankProc(ep)
	}
	runSupervised(t, rr, sim, steps, replEach, kill, procs, respawn)

	if sim.Energy != base.Energy {
		t.Errorf("energy %.17g != clean %.17g", sim.Energy, base.Energy)
	}
	for i := range base.Sys.Pos {
		if sim.Sys.Pos[i] != base.Sys.Pos[i] {
			t.Errorf("position of atom %d diverged after TCP replacement", i)
			break
		}
	}
	recs := rr.Recoveries()
	if len(recs) != 1 || recs[0].DeadRank != victim || rr.Generation() != 1 {
		t.Fatalf("recoveries %+v (generation %d), want one recovery of rank %d at generation 1",
			recs, rr.Generation(), victim)
	}

	rr.Close()
	for r := range procs {
		if err := <-procs[r].done; err != nil {
			t.Errorf("rank server %d: %v", r, err)
		}
	}
}
