// Package par provides the bounded, persistent worker pool shared by the
// parallel evaluation pipeline (cell-list neighbor builds, sharded force
// reductions). Pools keep their goroutines alive between dispatches and
// communicate over buffered channels of ints, so steady-state dispatch
// performs no heap allocations — the property the zero-allocation force
// path is built on.
package par

import "runtime"

// Workers resolves a requested worker count: values <= 0 select
// runtime.GOMAXPROCS(0); the result is clamped to [1, max] (max <= 0 means
// no upper clamp).
func Workers(requested, max int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if max > 0 && w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Pool is a bounded set of persistent worker goroutines executing indexed
// jobs. The zero value is ready to use; goroutines are spawned lazily on
// the first parallel Run and released by Close. A Pool is owned by one
// dispatching goroutine (the job bodies themselves run concurrently).
//
// To keep dispatch allocation-free, callers should hoist the job closure:
// build it once (reading per-dispatch state through captured pointers) and
// pass the same func value to every Run.
type Pool struct {
	fn      func(int)
	jobs    chan int
	done    chan struct{}
	spawned int
}

// chanCap bounds in-flight jobs; larger dispatches still complete (the
// producer blocks until workers free slots), it only caps buffering.
const chanCap = 256

// Run executes fn(0) … fn(chunks-1), running up to `chunks` bodies
// concurrently on the pool (the dispatcher itself runs chunk 0). It returns
// after every body has finished. With chunks <= 1 the call is a plain
// serial loop and touches no pool state.
func (p *Pool) Run(chunks int, fn func(int)) {
	if chunks <= 1 {
		if chunks == 1 {
			fn(0)
		}
		return
	}
	if p.jobs == nil {
		p.jobs = make(chan int, chanCap)
		p.done = make(chan struct{}, chanCap)
	}
	for p.spawned < chunks-1 {
		go workerLoop(p, p.jobs, p.done)
		p.spawned++
	}
	p.fn = fn
	for ci := 1; ci < chunks; ci++ {
		p.jobs <- ci
	}
	fn(0)
	for ci := 1; ci < chunks; ci++ {
		<-p.done
	}
	p.fn = nil
}

// workerLoop is the long-lived body of one pool goroutine. The channels are
// passed in (not read from the Pool) so Close can nil the fields without
// racing workers that have not yet been scheduled; p.fn reads are ordered
// by the jobs send / done receive pair.
func workerLoop(p *Pool, jobs chan int, done chan struct{}) {
	for ci := range jobs {
		p.fn(ci)
		done <- struct{}{}
	}
}

// Close releases the worker goroutines. The Pool remains usable afterwards
// (a later parallel Run restarts it). Pools that never ran a parallel
// dispatch have nothing to release.
func (p *Pool) Close() {
	if p.jobs != nil {
		close(p.jobs)
		p.jobs = nil
		p.done = nil
		p.spawned = 0
	}
}
