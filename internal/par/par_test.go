package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0, 0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0,0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(8, 3); got != 3 {
		t.Fatalf("Workers(8,3) = %d, want 3", got)
	}
	if got := Workers(-2, 0); got < 1 {
		t.Fatalf("Workers(-2,0) = %d, want >= 1", got)
	}
	if got := Workers(5, 0); got != 5 {
		t.Fatalf("Workers(5,0) = %d, want 5", got)
	}
}

func TestPoolRunsEveryIndexOnce(t *testing.T) {
	var p Pool
	defer p.Close()
	for _, chunks := range []int{1, 2, 5, 16, 40} {
		counts := make([]int64, chunks)
		p.Run(chunks, func(i int) { atomic.AddInt64(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("chunks=%d: index %d ran %d times", chunks, i, c)
			}
		}
	}
}

func TestPoolReusableAfterClose(t *testing.T) {
	var p Pool
	var n atomic.Int64
	p.Run(4, func(int) { n.Add(1) })
	p.Close()
	p.Run(4, func(int) { n.Add(1) })
	p.Close()
	if n.Load() != 8 {
		t.Fatalf("ran %d jobs, want 8", n.Load())
	}
}

func TestPoolSteadyStateAllocs(t *testing.T) {
	var p Pool
	defer p.Close()
	var sink atomic.Int64
	fn := func(i int) { sink.Add(int64(i)) } // hoisted once, as documented
	p.Run(4, fn)
	if allocs := testing.AllocsPerRun(20, func() { p.Run(4, fn) }); allocs > 0 {
		t.Errorf("steady-state dispatch allocates %.1f allocs/op, want 0", allocs)
	}
}
