package plan

import (
	"fmt"
	"sort"

	"repro/internal/tensor"
	"repro/internal/tensor/kern"
)

// Builder records one forward pass into a Program: each method mirrors the
// corresponding ad.Tape operation, assigns the output a register in the
// contiguous slab, and appends a fused op record. The compiler (core's
// compilePlan) drives it through the exact statement sequence of the tape
// forward pass, which is what makes replay bit-identical.
type Builder struct {
	p       *Program
	slabTop int
	gradTop int
	maxLin  int // largest m*k over linear ops: sizes the shared scratch
}

// NewBuilder starts a program for Z pairs over N atoms under the model's
// (Compute, Store, Final) precision triple.
func NewBuilder(z, nAtoms int, compute, store, final tensor.Precision) *Builder {
	return &Builder{p: &Program{
		Z: z, N: nAtoms,
		compute: compute, store: store, final: final,
	}}
}

// val assigns a register of n elements, with a gradient slot when diff.
func (b *Builder) val(n int, diff bool) Reg {
	r := Reg{Off: b.slabTop, GOff: -1, N: n}
	b.slabTop += n
	if diff {
		r.GOff = b.gradTop
		b.gradTop += n
	}
	return r
}

// zeroed marks a register's forward span for pre-replay zeroing.
func (b *Builder) zeroed(r Reg) {
	b.p.zeroSpans = append(b.p.zeroSpans, span{off: r.Off, n: r.N})
}

func (b *Builder) push(o op) Reg {
	b.p.ops = append(b.p.ops, o)
	return o.out
}

// InputRvec declares the [Z,3] pair-displacement leaf (the force root).
func (b *Builder) InputRvec() Reg {
	b.p.rvec = b.val(3*b.p.Z, true)
	return b.p.rvec
}

// InputOneHot declares the [Z,2S] species one-hot leaf (non-differentiable;
// refilled from Inputs.TI/TJ each replay).
func (b *Builder) InputOneHot(s int) Reg {
	b.p.species = s
	b.p.oneHot = b.val(2*s*b.p.Z, false)
	b.zeroed(b.p.oneHot)
	return b.p.oneHot
}

// Norm records r = |rvec| ([Z,1]; no store rounding, like the tape).
func (b *Builder) Norm(x Reg) Reg {
	return b.push(op{kind: opNorm, x: x, out: b.val(b.p.Z, true), z: b.p.Z})
}

// PolyCutoff records the polynomial envelope with exponent pp over the
// per-pair cutoffs of Inputs.Cut.
func (b *Builder) PolyCutoff(r Reg, pp int) Reg {
	fp := float64(pp)
	o := op{kind: opPolyCutoff, x: r, out: b.val(b.p.Z, true), z: b.p.Z,
		fp: fp, c1: (fp + 1) * (fp + 2) / 2, c2: fp * (fp + 2), c3: fp * (fp + 1) / 2}
	b.zeroed(o.out)
	return b.push(o)
}

// Bessel records the nb-function sine-Bessel radial basis [Z,nb].
func (b *Builder) Bessel(r Reg, nb int) Reg {
	return b.push(op{kind: opBessel, x: r, out: b.val(b.p.Z*nb, true), z: b.p.Z, nb: nb})
}

// SphHarm records the spherical-harmonic embedding [Z,dim] together with its
// analytic gradient table (always computed: inference differentiates the
// pair vectors).
func (b *Builder) SphHarm(rvec Reg, lmax, dim int) Reg {
	o := op{kind: opSphHarm, x: rvec, out: b.val(b.p.Z*dim, true),
		y: b.val(b.p.Z*dim*3, false), z: b.p.Z, lmax: lmax, c: dim}
	if len(b.p.sphBuf) < dim {
		b.p.sphBuf = make([]float64, dim)
		b.p.sphGBuf = make([][3]float64, dim)
	}
	return b.push(o)
}

// MulBroadcast records y = x * s with one trailing broadcast dimension
// (rows blocks of c elements; s has rows entries).
func (b *Builder) MulBroadcast(x, s Reg, rows, c int) Reg {
	return b.push(op{kind: opMulBroadcast, x: x, y: s, out: b.val(rows*c, true), rows: rows, c: c})
}

// Concat2 records the two-input row concatenation the Allegro graph uses.
func (b *Builder) Concat2(a, bb Reg, rows, ca, cb int) Reg {
	return b.push(op{kind: opConcat2, x: a, y: bb, out: b.val(rows*(ca+cb), true),
		rows: rows, ca: ca, cb: cb, adiff: a.GOff >= 0, bdiff: bb.GOff >= 0})
}

// Linear records y = x W^T (+ bias) for x [m,k] and W [n,k] (an nn linear
// layer with out=n). W and bias reference the live model parameters; the
// narrow-compute weight rounding is folded once at Finish.
func (b *Builder) Linear(x Reg, w, bias *tensor.Tensor, m int) Reg {
	n, k := w.Shape[0], w.Shape[1]
	o := op{kind: opLinear, x: x, out: b.val(m*n, true), wT: w, m: m, k: k, n: n}
	if bias != nil {
		o.bias = bias.Data
	}
	if mk := m * k; mk > b.maxLin {
		b.maxLin = mk
	}
	return b.push(o)
}

// SiLU records the elementwise x*sigmoid(x).
func (b *Builder) SiLU(x Reg) Reg {
	return b.push(op{kind: opSiLU, x: x, out: b.val(x.N, true)})
}

// OuterMul records V0[z,u,:] = s[z,u] * y[z,:].
func (b *Builder) OuterMul(s, y Reg, z, u, c int) Reg {
	return b.push(op{kind: opOuterMul, x: s, y: y, out: b.val(z*u*c, true), z: z, u: u, c: c})
}

// EnvSum records the neighbor-environment scatter sum [N,u,c] over the
// centers of Inputs.I, scaled by the environment normalization.
func (b *Builder) EnvSum(w, y Reg, u, c int, scale float64) Reg {
	o := op{kind: opEnvSum, x: w, y: y, out: b.val(b.p.N*u*c, true),
		z: b.p.Z, u: u, c: c, alpha: scale}
	b.zeroed(o.out)
	return b.push(o)
}

// Gather records the per-pair gather of center rows (rowLen elements each)
// by Inputs.I.
func (b *Builder) Gather(x Reg, rowLen int) Reg {
	return b.push(op{kind: opGather, x: x, out: b.val(b.p.Z*rowLen, true), c: rowLen})
}

// TP records the fused equivariant tensor product over the layer's
// weight-folded entry table (Inputs.Fused[layer], packed form for narrow
// compute). Only the accumulating F64 contraction needs its output
// pre-zeroed; the narrow kernel overwrites every block.
func (b *Builder) TP(x, y Reg, layer, zu, w1, w2, w3 int) Reg {
	o := op{kind: opTP, x: x, y: y, out: b.val(zu*w3, true),
		layer: layer, zu: zu, w1: w1, w2: w2, w3: w3}
	if b.p.compute == tensor.F64 {
		b.zeroed(o.out)
	}
	return b.push(o)
}

// SliceLast records x[..., lo:lo+width] for rows blocks of last elements.
func (b *Builder) SliceLast(x Reg, rows, width, last, lo int) Reg {
	return b.push(op{kind: opSlice, x: x, out: b.val(rows*width, true),
		rows: rows, c: width, last: last, lo: lo})
}

// Copy records the reshape copy (the tape's copy-semantics Reshape).
func (b *Builder) Copy(x Reg) Reg {
	return b.push(op{kind: opCopy, x: x, out: b.val(x.N, true)})
}

// Add records a + b (equal shapes).
func (b *Builder) Add(a, bb Reg) Reg {
	if a.N != bb.N {
		panic(fmt.Sprintf("plan: Add length mismatch %d vs %d", a.N, bb.N))
	}
	return b.push(op{kind: opAdd, x: a, y: bb, out: b.val(a.N, true)})
}

// Scale records c*x; finalQ additionally applies the Final-precision
// rounding in place (the tape's quantize-before-reduction step).
func (b *Builder) Scale(x Reg, c float64, finalQ bool) Reg {
	return b.push(op{kind: opScale, x: x, out: b.val(x.N, true), alpha: c, finalQ: finalQ})
}

// WeightedSumAll records the sigma-weighted energy reduction (the root; its
// adjoint seed is 1).
func (b *Builder) WeightedSumAll(x Reg) Reg {
	r := b.push(op{kind: opWeightedSum, x: x, out: b.val(1, false)})
	b.p.energy = r
	return r
}

// SetPairE marks the per-pair energy register harvested by row evaluations.
func (b *Builder) SetPairE(r Reg) { b.p.pairE = r }

// gradConsumers appends the gradient offsets of an op's differentiated
// inputs — the registers its backward accumulates into.
func gradConsumers(o *op, dst []int) []int {
	switch o.kind {
	case opMulBroadcast, opOuterMul, opEnvSum, opTP, opAdd:
		dst = append(dst, o.x.GOff, o.y.GOff)
	case opConcat2:
		if o.adiff {
			dst = append(dst, o.x.GOff)
		}
		if o.bdiff {
			dst = append(dst, o.y.GOff)
		}
	default:
		dst = append(dst, o.x.GOff)
	}
	return dst
}

// Finish allocates the slabs and scratch, builds the tensor headers the
// matmul kernels run over, pre-rounds the frozen weights for narrow compute,
// resolves the static optimizations (single-consumer direct backward,
// provably no-op store rounding), and returns the executable program.
func (b *Builder) Finish() *Program {
	p := b.p
	p.slab = make([]float64, b.slabTop)
	p.grad = make([]float64, b.gradTop)
	p.bwd = make([]float64, b.maxLin)
	if p.compute != tensor.F64 {
		p.f32a = make([]float32, b.maxLin)
	}

	// Consumer counts per gradient region: a linear whose input gradient is
	// accumulated by that linear alone can matmul straight into it.
	uses := map[int]int{}
	var scratch []int
	for i := range p.ops {
		scratch = gradConsumers(&p.ops[i], scratch[:0])
		for _, g := range scratch {
			uses[g]++
		}
	}

	// Narrow-compute outputs are exact float32 values; storing them at F32
	// re-rounds them to themselves, so the sweep is statically elided.
	f32Exact := p.compute != tensor.F64 && p.store == tensor.F32

	direct := map[int]int{} // grad offset -> region length, skipped in the pre-clear
	tile64Len := 0          // F64 tile-fusion buffer: tileRows times the widest fused k
	for i := range p.ops {
		o := &p.ops[i]
		switch o.kind {
		case opTP:
			o.noQuant = f32Exact
		case opSiLU:
			// SiLU→Linear fusion: the activation goes straight into the
			// matmul's operand path when the linear is its sole consumer.
			// Under narrow compute both kernel sets fuse (whole-slab fill for
			// the reference kernels, tile streaming for kern); under F64 only
			// the kern tile path can (the reference F64 matmul reads the
			// SiLU's slab output), so the flag is separate and the unfused
			// records stay fully functional.
			if i+1 < len(p.ops) &&
				p.ops[i+1].kind == opLinear && p.ops[i+1].x.Off == o.out.Off &&
				uses[o.out.GOff] == 1 {
				if p.compute != tensor.F64 {
					o.fused = true
					p.ops[i+1].fused = true
				} else {
					o.fuse64 = true
					p.ops[i+1].fuse64 = true
				}
				p.ops[i+1].sx = o.x
			}
		case opLinear:
			o.noQuant = f32Exact // only consulted on the bias-free path
			o.direct = uses[o.x.GOff] == 1
			o.xT = tensor.FromSlice(p.slab[o.x.Off:o.x.Off+o.x.N], o.m, o.k)
			o.outT = tensor.FromSlice(p.slab[o.out.Off:o.out.Off+o.out.N], o.m, o.n)
			o.goutT = tensor.FromSlice(p.grad[o.out.GOff:o.out.GOff+o.out.N], o.m, o.n)
			if o.direct {
				o.scrT = tensor.FromSlice(p.grad[o.x.GOff:o.x.GOff+o.x.N], o.m, o.k)
				direct[o.x.GOff] = o.x.N
			} else {
				o.scrT = tensor.FromSlice(p.bwd[:o.m*o.k], o.m, o.k)
			}
			if p.compute != tensor.F64 {
				o.rw = make([]float32, len(o.wT.Data))
				tensor.RoundSliceTo(o.rw, o.wT.Data, p.compute)
				o.pw = kern.PackPanelB32(o.rw, o.n, o.k)
			} else {
				o.pw64 = kern.PackPanelB64(o.wT.Data, o.n, o.k)
				if o.fuse64 && tileRows*o.k > tile64Len {
					tile64Len = tileRows * o.k
				}
			}
		}
	}
	if tile64Len > 0 {
		p.tile64 = make([]float64, tile64Len)
	}
	p.gradZero = complementSpans(len(p.grad), direct)

	p.forceRows = tensor.FromSlice(p.grad[p.rvec.GOff:p.rvec.GOff+p.rvec.N], p.Z, 3)
	return p
}

// complementSpans returns [0,total) minus the excluded regions, merged into
// maximal runs (the gradient pre-clear set).
func complementSpans(total int, excluded map[int]int) []span {
	offs := make([]int, 0, len(excluded))
	for off := range excluded {
		offs = append(offs, off)
	}
	sort.Ints(offs)
	var out []span
	cur := 0
	for _, off := range offs {
		if off > cur {
			out = append(out, span{off: cur, n: off - cur})
		}
		cur = off + excluded[off]
	}
	if cur < total {
		out = append(out, span{off: cur, n: total - cur})
	}
	return out
}
