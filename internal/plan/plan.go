// Package plan implements the compiled inference engine: record-once/replay
// execution plans that retire the per-step autodiff tape from the MD hot
// path. The paper's speed at scale comes from treating inference as a fixed,
// fused computation — custom fused tensor-product kernels and a frozen
// (Final, Weights, Compute) mixed-precision pipeline — rather than a general
// autodiff graph; a Program is the Go analogue: the Allegro forward pass is
// recorded once per (model, chunk-shape) into a flat array of op records
// with pre-assigned offsets into one contiguous activation slab, plus the
// hand-scheduled analytic backward as a second flat pass over the same
// records. Replay walks the two arrays with a kind switch — no Value or
// Tape objects, no graph walk, no per-op dispatch through interfaces, no
// per-call weight re-rounding or TPEntry re-folding — and performs zero
// heap allocations at every precision.
//
// Replay is bit-identical to the tape path: every op record mirrors the
// corresponding ad.Tape operation's arithmetic (same kernels, same rounding
// points, same accumulation order), and the backward mirrors the pooled ops
// of ad/backops.go with the weight-gradient branches statically removed
// (weights are frozen during inference, so their adjoints are dead work).
//
// A Program is compiled for one exact shape (Z pairs, N atoms) and one
// model; core caches Programs per shape and invalidates them when the
// parameter version moves (see core's plan cache). Like an EvalScratch, a
// Program belongs to one evaluation context and is not safe for concurrent
// use.
package plan

import (
	"math"
	"time"

	"repro/internal/o3"
	"repro/internal/tensor"
	"repro/internal/tensor/kern"
)

// Reg is a register of the plan: a span of the forward slab and, for
// differentiated values, the matching span of the gradient slab.
type Reg struct {
	Off  int // forward slab offset
	GOff int // gradient slab offset; -1 when not differentiated
	N    int // element count
}

// Inputs carries the per-call data of one replay: the pair geometry and
// species pattern (the only things that change between calls of the same
// shape), the model's current energy scale, and the frozen-weight fused
// tensor-product tables.
type Inputs struct {
	Vec     [][3]float64     // pair displacement vectors (len Z)
	Cut     []float64        // per-pair ordered cutoffs (len Z)
	I       []int            // pair center atoms (len Z)
	TI, TJ  []int            // species indices of center / neighbor (len Z)
	Scale   float64          // model energy scale sigma
	Fused   [][]o3.TPEntry   // per-layer weight-folded TP entry tables
	Fused32 [][]o3.TPEntry32 // packed form (required for narrow compute)
	// FusedS / Fused32S are stable C-sorted copies of the tables above, the
	// operand form of the blocked forward contraction kernels (the backward
	// always walks the unsorted path-major tables — sorting would reorder the
	// gX/gY accumulation). When nil, the forward falls back to the unblocked
	// kernels; results are bit-identical either way.
	FusedS   [][]o3.TPEntry
	Fused32S [][]o3.TPEntry32
}

// opKind enumerates the fused op records. The executor dispatches with a
// switch — the flat-array replacement for the tape's backOp interface.
type opKind uint8

const (
	opNorm opKind = iota
	opPolyCutoff
	opBessel
	opSphHarm
	opMulBroadcast
	opConcat2
	opLinear
	opSiLU
	opOuterMul
	opEnvSum
	opGather
	opTP
	opSlice
	opCopy
	opAdd
	opScale
	opWeightedSum
)

// op is one fused record: operand registers plus the precomputed dims,
// constants, weight references, and prebuilt tensor headers its kernels
// need. Records are laid out in execution order; the backward pass walks
// them in reverse.
type op struct {
	kind      opKind
	x, y, out Reg

	// Linear: prebuilt headers over the slab/grad/scratch regions so the
	// tensor matmul kernels run without per-call shape assembly.
	xT, outT, wT, scrT, goutT *tensor.Tensor
	bias                      []float64
	rw                        []float32 // pre-rounded weights (narrow compute)
	pw                        []float32 // rw repacked into kern column panels
	pw64                      []float64 // F64 weights repacked into kern panels
	m, k, n                   int       // batch, in, out

	rows, c, last, lo int  // broadcast / slice / gather dims
	ca, cb            int  // concat widths
	adiff, bdiff      bool // concat input differentiability
	// direct marks a linear whose input has exactly one consumer: its
	// backward matmul writes the (un-precleared) gradient region directly,
	// skipping the scratch add pass. Bit-identical: the region's only other
	// state would be the zero fill, and 0 + s == s for every matmul row sum
	// (the kernel's skip-zero accumulation never produces -0).
	direct bool
	// noQuant marks outputs whose store rounding is a statically provable
	// no-op: float32-accumulated values under F32 storage.
	noQuant bool
	// fused marks a SiLU→Linear pair under narrow compute: the SiLU writes
	// its store-rounded, compute-rounded values straight into the matmul's
	// float32 operand buffer (its f64 slab value is dead — inference
	// backward reads only the SiLU *input*), and the linear skips its
	// operand rounding pass. The value chain (activation → store round →
	// tile-load round) is unchanged, element for element. With the kern
	// kernels the pair goes further: the SiLU record becomes a no-op and the
	// linear streams the activation tile by tile (tileRows rows of sx at a
	// time) through a hot operand buffer into the packed-panel matmul.
	fused bool
	// fuse64 is the F64-compute form of the same pairing, legal only with
	// the kern kernels (the reference F64 matmul reads the SiLU's slab
	// output, so under refKernels the pair runs unfused as before).
	fuse64 bool
	// sx is the SiLU input register of a fused pair — the operand the
	// linear's tile loop activates from.
	sx Reg

	alpha  float64 // scale constant / env-sum normalization
	finalQ bool    // apply the Final-precision rounding after the op

	layer          int // index into Inputs.Fused
	zu, w1, w2, w3 int // TP block count and layout widths
	z, u           int
	nb, lmax       int

	fp, c1, c2, c3 float64 // polynomial cutoff constants
}

// span is a forward-slab range zeroed before each replay (accumulating or
// sparsely written regions; everything else is fully overwritten).
type span struct{ off, n int }

// Program is a compiled (model, shape) execution plan plus its replay state.
type Program struct {
	Z, N int

	compute, store, final tensor.Precision

	ops       []op
	slab      []float64
	grad      []float64
	zeroSpans []span
	// gradZero is the pre-replay zero set of the gradient slab: every
	// differentiated register except the regions direct backward matmuls
	// fully overwrite.
	gradZero []span

	f32a   []float32 // activation rounding scratch (narrow matmuls)
	tile64 []float64 // F64 tile-fusion operand buffer (fuse64 linears)
	bwd    []float64 // linear-backward matmul scratch

	// refKernels switches replay back to the pre-kern reference kernels
	// (unpacked matmuls, unblocked contractions, whole-slab SiLU fusion).
	// Both settings produce bit-identical results; the toggle exists so the
	// BENCH_simd harness can measure reference vs kern on the same machine
	// and plan.
	refKernels bool

	sphBuf  []float64
	sphGBuf [][3]float64

	rvec    Reg
	oneHot  Reg
	pairE   Reg
	energy  Reg
	species int // S: one-hot width is 2S

	forceRows *tensor.Tensor // [Z,3] header over grad(rvec)
}

// Energy returns the scalar network energy of the last replay (before
// per-species shifts and ZBL, exactly like the tape's root value).
func (p *Program) Energy() float64 { return p.slab[p.energy.Off] }

// ForceRows returns the [Z,3] pair-vector adjoint of the last replay — the
// same rows the tape path reads from rvec.Grad(). The header is owned by the
// program and overwritten by the next Execute.
func (p *Program) ForceRows() *tensor.Tensor { return p.forceRows }

// PairEnergies returns the per-pair energies of the last replay (after the
// cutoff envelope and Final-precision rounding, before the sigma scale),
// aliasing program storage.
func (p *Program) PairEnergies() []float64 {
	return p.slab[p.pairE.Off : p.pairE.Off+p.pairE.N]
}

// SlabFloats reports the program's activation+gradient footprint in float64
// words (diagnostics/tests).
func (p *Program) SlabFloats() int { return len(p.slab) + len(p.grad) }

// NumOps returns the number of fused op records (diagnostics/tests).
func (p *Program) NumOps() int { return len(p.ops) }

// SetRefKernels selects between the kern microkernels (false, the default)
// and the pre-kern reference kernels (true). The two settings are
// bit-identical; see the refKernels field.
func (p *Program) SetRefKernels(v bool) { p.refKernels = v }

// tileRows is the activation tile height of the fused SiLU→Linear streaming
// path: the linear activates tileRows rows of its SiLU input into a hot
// operand buffer and hands them to the packed row kernel at full register-
// tile height. Small enough that buffer plus panel stay cache-resident,
// large enough to amortize the panel sweep.
const tileRows = 32

// prepare clears the accumulating spans and fills the input registers: pair
// displacements and the species one-hot.
func (p *Program) prepare(in *Inputs) {
	for _, s := range p.gradZero {
		clear(p.grad[s.off : s.off+s.n])
	}
	for _, s := range p.zeroSpans {
		clear(p.slab[s.off : s.off+s.n])
	}

	rv := p.slab[p.rvec.Off : p.rvec.Off+p.rvec.N]
	for i, v := range in.Vec {
		rv[3*i] = v[0]
		rv[3*i+1] = v[1]
		rv[3*i+2] = v[2]
	}
	if p.oneHot.N > 0 {
		oh := p.slab[p.oneHot.Off : p.oneHot.Off+p.oneHot.N]
		w := 2 * p.species
		for z := 0; z < p.Z; z++ {
			oh[z*w+in.TI[z]] = 1
			oh[z*w+p.species+in.TJ[z]] = 1
		}
	}
}

// Execute replays the plan for one set of inputs: fills the input registers,
// runs the forward records in order, then the analytic backward in reverse.
// It performs no heap allocations.
func (p *Program) Execute(in *Inputs) {
	p.prepare(in)
	for i := range p.ops {
		p.forward(&p.ops[i], in)
	}
	for i := len(p.ops) - 1; i >= 0; i-- {
		p.backward(&p.ops[i], in)
	}
}

// KernelProfile is a per-kernel-class wall-time breakdown of one or more
// replays, accumulated by ExecuteProfiled (the allegro-bench -kernels
// instrumentation).
type KernelProfile struct {
	Linear  time.Duration // forward matmuls (incl. fused activation tiles)
	TP      time.Duration // forward tensor-product contractions
	BwdLin  time.Duration // backward matmuls
	BwdTP   time.Duration // backward contractions
	EnvRows time.Duration // env scatter/gather + outer-mul rows (fwd+bwd)
	Radial  time.Duration // norm/cutoff/Bessel/spherical rows (fwd+bwd)
	Other   time.Duration // everything else (broadcasts, copies, reductions)
	Replays int
}

// Total returns the summed kernel time of the profile.
func (kp *KernelProfile) Total() time.Duration {
	return kp.Linear + kp.TP + kp.BwdLin + kp.BwdTP + kp.EnvRows + kp.Radial + kp.Other
}

func (kp *KernelProfile) add(kind opKind, fwd bool, d time.Duration) {
	switch kind {
	case opLinear, opSiLU:
		if fwd {
			kp.Linear += d
		} else {
			kp.BwdLin += d
		}
	case opTP:
		if fwd {
			kp.TP += d
		} else {
			kp.BwdTP += d
		}
	case opEnvSum, opGather, opOuterMul:
		kp.EnvRows += d
	case opNorm, opPolyCutoff, opBessel, opSphHarm:
		kp.Radial += d
	default:
		kp.Other += d
	}
}

// ExecuteProfiled is Execute with per-op timing folded into kp. The timer
// calls add measurable overhead on the smallest ops, so it is a diagnostic
// entry point, not the hot path.
func (p *Program) ExecuteProfiled(in *Inputs, kp *KernelProfile) {
	p.prepare(in)
	for i := range p.ops {
		t0 := time.Now()
		p.forward(&p.ops[i], in)
		kp.add(p.ops[i].kind, true, time.Since(t0))
	}
	for i := len(p.ops) - 1; i >= 0; i-- {
		t0 := time.Now()
		p.backward(&p.ops[i], in)
		kp.add(p.ops[i].kind, false, time.Since(t0))
	}
	kp.Replays++
}

// fwdOf returns the forward values of a register.
func (p *Program) fwdOf(r Reg) []float64 { return p.slab[r.Off : r.Off+r.N] }

// gradOf returns the gradient slot of a register (r.GOff must be >= 0).
func (p *Program) gradOf(r Reg) []float64 { return p.grad[r.GOff : r.GOff+r.N] }

// quant rounds xs to precision q in place (no-op for F64), the slab analogue
// of the tape's store() step with the per-element dispatch hoisted out.
func quant(xs []float64, q tensor.Precision) {
	switch q {
	case tensor.F64:
	case tensor.F32:
		for i, v := range xs {
			xs[i] = float64(float32(v))
		}
	default:
		for i, v := range xs {
			xs[i] = tensor.RoundTF32(v)
		}
	}
}

// siluRound32 fills a narrow-compute matmul operand buffer with the fused
// SiLU→Linear activation chain: SiLU, then the store rounding, then the
// tile-load rounding, collapsed into one specialized loop per precision
// pair. Shared by the reference (whole-slab, fast=false: the pre-kern branchy
// rounder) and kern (tile-streamed, fast=true: the bit-identical branch-free
// RoundTF32Fast) fusion paths, so the per-element values agree by
// construction either way.
func siluRound32(ra []float32, x []float64, compute, store tensor.Precision, fast bool) {
	switch {
	case compute == tensor.TF32 && store == tensor.F32:
		if fast {
			for i, v := range x {
				ra[i] = float32(tensor.RoundTF32Fast(float64(float32(v / (1 + math.Exp(-v))))))
			}
		} else {
			for i, v := range x {
				ra[i] = float32(tensor.RoundTF32(float64(float32(v / (1 + math.Exp(-v))))))
			}
		}
	case store == tensor.TF32 || compute == tensor.TF32:
		// TF32 storage followed by any tile rounding, and TF32 tiles over
		// unrounded (F64) storage, both collapse to a single TF32 projection
		// (idempotent).
		if fast {
			for i, v := range x {
				ra[i] = float32(tensor.RoundTF32Fast(v / (1 + math.Exp(-v))))
			}
		} else {
			for i, v := range x {
				ra[i] = float32(tensor.RoundTF32(v / (1 + math.Exp(-v))))
			}
		}
	default: // F32 tiles over F32 or F64 storage: one conversion does both
		for i, v := range x {
			ra[i] = float32(v / (1 + math.Exp(-v)))
		}
	}
}

// siluQuant64 is the F64-compute form: SiLU followed by the store rounding,
// exactly the value the unfused opSiLU leaves in its slab register.
func siluQuant64(dst []float64, x []float64, store tensor.Precision) {
	switch store {
	case tensor.F64:
		for i, v := range x {
			dst[i] = v / (1 + math.Exp(-v))
		}
	case tensor.F32:
		for i, v := range x {
			dst[i] = float64(float32(v / (1 + math.Exp(-v))))
		}
	default:
		for i, v := range x {
			dst[i] = tensor.RoundTF32(v / (1 + math.Exp(-v)))
		}
	}
}

// forward executes one op record. Each case mirrors the arithmetic of the
// corresponding ad.Tape op exactly (same kernels, same rounding points), so
// replay matches the tape bit for bit.
func (p *Program) forward(o *op, in *Inputs) {
	switch o.kind {
	case opNorm:
		x := p.fwdOf(o.x)
		y := p.fwdOf(o.out)
		for i := 0; i < o.z; i++ {
			r0, r1, r2 := x[3*i], x[3*i+1], x[3*i+2]
			y[i] = math.Sqrt(r0*r0 + r1*r1 + r2*r2)
		}

	case opPolyCutoff:
		r := p.fwdOf(o.x)
		y := p.fwdOf(o.out) // pre-zeroed
		for i := 0; i < o.z; i++ {
			x := r[i] / in.Cut[i]
			if x >= 1 {
				continue
			}
			xp := math.Pow(x, o.fp)
			y[i] = 1 - o.c1*xp + o.c2*xp*x - o.c3*xp*x*x
		}
		quant(y, p.store)

	case opBessel:
		r := p.fwdOf(o.x)
		y := p.fwdOf(o.out)
		for i := 0; i < o.z; i++ {
			rv := r[i]
			rc := in.Cut[i]
			pref := math.Sqrt(2/rc) / rv
			for n := 1; n <= o.nb; n++ {
				y[i*o.nb+n-1] = pref * math.Sin(float64(n)*math.Pi*rv/rc)
			}
		}
		quant(y, p.store)

	case opSphHarm:
		x := p.fwdOf(o.x)
		y := p.fwdOf(o.out)
		gtab := p.fwdOf(o.y) // analytic gradient table [Z, dim*3]
		dim := o.c
		buf := p.sphBuf[:dim]
		gbuf := p.sphGBuf[:dim]
		for i := 0; i < o.z; i++ {
			r := [3]float64{x[3*i], x[3*i+1], x[3*i+2]}
			o3.SphHarmGrad(o.lmax, r, buf, gbuf)
			row := gtab[i*dim*3 : (i+1)*dim*3]
			for c, g := range gbuf {
				row[3*c] = g[0]
				row[3*c+1] = g[1]
				row[3*c+2] = g[2]
			}
			copy(y[i*dim:(i+1)*dim], buf)
		}
		quant(y, p.store)

	case opMulBroadcast:
		x := p.fwdOf(o.x)
		s := p.fwdOf(o.y)
		y := p.fwdOf(o.out)
		c := o.c
		switch p.store {
		case tensor.F64:
			for r := 0; r < o.rows; r++ {
				sv := s[r]
				for j := 0; j < c; j++ {
					y[r*c+j] = x[r*c+j] * sv
				}
			}
		case tensor.F32:
			for r := 0; r < o.rows; r++ {
				sv := s[r]
				for j := 0; j < c; j++ {
					y[r*c+j] = float64(float32(x[r*c+j] * sv))
				}
			}
		default:
			for r := 0; r < o.rows; r++ {
				sv := s[r]
				for j := 0; j < c; j++ {
					y[r*c+j] = tensor.RoundTF32(x[r*c+j] * sv)
				}
			}
		}

	case opConcat2:
		a := p.fwdOf(o.x)
		bb := p.fwdOf(o.y)
		y := p.fwdOf(o.out)
		ca, cb := o.ca, o.cb
		tot := ca + cb
		for i := 0; i < o.rows; i++ {
			copy(y[i*tot:i*tot+ca], a[i*ca:(i+1)*ca])
			copy(y[i*tot+ca:(i+1)*tot], bb[i*cb:(i+1)*cb])
		}

	case opLinear:
		y := p.fwdOf(o.out)
		switch p.compute {
		case tensor.F64:
			switch {
			case p.refKernels || o.pw64 == nil:
				tensor.MatMulTInto(o.outT, o.xT, o.wT, tensor.F64)
			case o.fuse64:
				// Tile-fused SiLU→Linear: activate tileRows rows of the SiLU
				// input at a time into the hot buffer and run them at full
				// register-tile height. Per-row results are independent, so
				// tiling doesn't change any output bit.
				x := p.fwdOf(o.sx)
				for i0 := 0; i0 < o.m; i0 += tileRows {
					rows := o.m - i0
					if rows > tileRows {
						rows = tileRows
					}
					buf := p.tile64[:rows*o.k]
					siluQuant64(buf, x[i0*o.k:(i0+rows)*o.k], p.store)
					kern.MatMulTPacked64Rows(y, buf, o.pw64, i0, rows, o.k, o.n)
				}
			default:
				kern.MatMulTPacked64(y, p.fwdOf(o.x), o.pw64, o.m, o.k, o.n)
			}
		default:
			switch {
			case p.refKernels || o.pw == nil:
				ra := p.f32a[:o.m*o.k]
				if !o.fused { // fused: the preceding SiLU already filled ra
					tensor.RoundSliceTo(ra, p.fwdOf(o.x), p.compute)
				}
				tensor.MatMulTRounded(y, ra, o.rw, o.m, o.k, o.n)
			case o.fused:
				// Same tile streaming as the F64 branch, with the fused pair's
				// store-then-compute rounding applied per tile (identical
				// per-element value chain to the whole-slab fill).
				x := p.fwdOf(o.sx)
				for i0 := 0; i0 < o.m; i0 += tileRows {
					rows := o.m - i0
					if rows > tileRows {
						rows = tileRows
					}
					buf := p.f32a[:rows*o.k]
					siluRound32(buf, x[i0*o.k:(i0+rows)*o.k], p.compute, p.store, true)
					kern.MatMulTPacked32Rows(y, buf, o.pw, i0, rows, o.k, o.n)
				}
			default:
				ra := p.f32a[:o.m*o.k]
				tensor.RoundSliceToFast(ra, p.fwdOf(o.x), p.compute)
				kern.MatMulTPacked32(y, ra, o.pw, o.m, o.k, o.n)
			}
		}
		if o.bias != nil {
			// Bias add fused with the store rounding in one pass: the tape's
			// unrounded add followed by a quantize sweep rounds the same sums.
			n := o.n
			switch p.store {
			case tensor.F64:
				for i := 0; i < o.m; i++ {
					row := y[i*n : (i+1)*n]
					for j, bv := range o.bias {
						row[j] += bv
					}
				}
			case tensor.F32:
				for i := 0; i < o.m; i++ {
					row := y[i*n : (i+1)*n]
					for j, bv := range o.bias {
						row[j] = float64(float32(row[j] + bv))
					}
				}
			default:
				for i := 0; i < o.m; i++ {
					row := y[i*n : (i+1)*n]
					for j, bv := range o.bias {
						row[j] = tensor.RoundTF32(row[j] + bv)
					}
				}
			}
		} else if !o.noQuant {
			quant(y, p.store)
		}

	case opSiLU:
		x := p.fwdOf(o.x)
		if o.fuse64 && !p.refKernels {
			// The following linear streams this activation through its row
			// tiles; nothing to do here.
			return
		}
		if o.fused {
			if !p.refKernels {
				// Tile-streamed by the following linear.
				return
			}
			// Reference form of the fusion: emit the store-rounded then
			// tile-rounded float32 operands for the whole slab at once.
			siluRound32(p.f32a[:len(x)], x, p.compute, p.store, false)
			return
		}
		y := p.fwdOf(o.out)
		for i, v := range x {
			y[i] = v / (1 + math.Exp(-v))
		}
		quant(y, p.store)

	case opOuterMul:
		s := p.fwdOf(o.x)
		yv := p.fwdOf(o.y)
		out := p.fwdOf(o.out)
		z, u, c := o.z, o.u, o.c
		for zi := 0; zi < z; zi++ {
			yRow := yv[zi*c : (zi+1)*c]
			for ui := 0; ui < u; ui++ {
				sv := s[zi*u+ui]
				dst := out[(zi*u+ui)*c : (zi*u+ui+1)*c]
				switch p.store {
				case tensor.F64:
					for j, v := range yRow {
						dst[j] = sv * v
					}
				case tensor.F32:
					for j, v := range yRow {
						dst[j] = float64(float32(sv * v))
					}
				default:
					for j, v := range yRow {
						dst[j] = tensor.RoundTF32(sv * v)
					}
				}
			}
		}

	case opEnvSum:
		w := p.fwdOf(o.x)
		yv := p.fwdOf(o.y)
		out := p.fwdOf(o.out) // pre-zeroed
		z, u, c := o.z, o.u, o.c
		for zi := 0; zi < z; zi++ {
			i := in.I[zi]
			yRow := yv[zi*c : (zi+1)*c]
			for ui := 0; ui < u; ui++ {
				wv := o.alpha * w[zi*u+ui]
				dst := out[(i*u+ui)*c : (i*u+ui+1)*c]
				for j, v := range yRow {
					dst[j] += wv * v
				}
			}
		}
		quant(out, p.store)

	case opGather:
		x := p.fwdOf(o.x)
		y := p.fwdOf(o.out)
		rl := o.c
		for zi, i := range in.I {
			copy(y[zi*rl:(zi+1)*rl], x[i*rl:(i+1)*rl])
		}

	case opTP:
		out := p.fwdOf(o.out)
		if p.compute == tensor.F64 {
			if !p.refKernels && in.FusedS != nil {
				// Batched over BBLK pair-channel blocks per table sweep; the
				// stable C-sort keeps every accumulator's addend order.
				o3.ContractEntriesBlocked(out, p.fwdOf(o.x), p.fwdOf(o.y),
					o.zu, o.w1, o.w2, o.w3, in.FusedS[o.layer])
			} else {
				// Pre-zeroed: the F64 contraction accumulates in place.
				o3.ContractEntries(out, p.fwdOf(o.x), p.fwdOf(o.y),
					o.zu, o.w1, o.w2, o.w3, in.Fused[o.layer], tensor.F64)
			}
		} else {
			if !p.refKernels && in.Fused32S != nil {
				o3.ContractEntries32Blocked(out, p.fwdOf(o.x), p.fwdOf(o.y),
					o.zu, o.w1, o.w2, o.w3, in.Fused32S[o.layer], p.compute == tensor.TF32)
			} else {
				// Fully overwrites each block (no pre-zero), packed weights.
				o3.ContractEntries32(out, p.fwdOf(o.x), p.fwdOf(o.y),
					o.zu, o.w1, o.w2, o.w3, in.Fused32[o.layer], p.compute == tensor.TF32)
			}
		}
		if !o.noQuant {
			quant(out, p.store)
		}

	case opSlice:
		x := p.fwdOf(o.x)
		y := p.fwdOf(o.out)
		for r := 0; r < o.rows; r++ {
			copy(y[r*o.c:(r+1)*o.c], x[r*o.last+o.lo:r*o.last+o.lo+o.c])
		}

	case opCopy:
		copy(p.fwdOf(o.out), p.fwdOf(o.x))

	case opAdd:
		a := p.fwdOf(o.x)
		bb := p.fwdOf(o.y)
		y := p.fwdOf(o.out)
		switch p.store {
		case tensor.F64:
			for i := range y {
				y[i] = a[i] + bb[i]
			}
		case tensor.F32:
			for i := range y {
				y[i] = float64(float32(a[i] + bb[i]))
			}
		default:
			for i := range y {
				y[i] = tensor.RoundTF32(a[i] + bb[i])
			}
		}

	case opScale:
		x := p.fwdOf(o.x)
		y := p.fwdOf(o.out)
		switch p.store {
		case tensor.F64:
			for i, v := range x {
				y[i] = v * o.alpha
			}
		case tensor.F32:
			for i, v := range x {
				y[i] = float64(float32(v * o.alpha))
			}
		default:
			for i, v := range x {
				y[i] = tensor.RoundTF32(v * o.alpha)
			}
		}
		if o.finalQ {
			quant(y, p.final)
		}

	case opWeightedSum:
		x := p.fwdOf(o.x)
		s := 0.0
		for _, v := range x {
			s += in.Scale * v
		}
		p.slab[o.out.Off] = s
	}
}

// backward runs one op record's adjoint, mirroring the pooled backward ops
// of ad/backops.go with the frozen-weight branches removed. Gradients
// accumulate in float64, exactly like the tape.
func (p *Program) backward(o *op, in *Inputs) {
	switch o.kind {
	case opNorm:
		x := p.fwdOf(o.x)
		y := p.fwdOf(o.out)
		g := p.gradOf(o.out)
		gx := p.gradOf(o.x)
		for i := 0; i < o.z; i++ {
			d := y[i]
			if d == 0 {
				continue
			}
			gv := g[i] / d
			gx[3*i] += gv * x[3*i]
			gx[3*i+1] += gv * x[3*i+1]
			gx[3*i+2] += gv * x[3*i+2]
		}

	case opPolyCutoff:
		r := p.fwdOf(o.x)
		g := p.gradOf(o.out)
		gx := p.gradOf(o.x)
		for i := 0; i < o.z; i++ {
			rc := in.Cut[i]
			x := r[i] / rc
			if x >= 1 {
				continue
			}
			xpm := math.Pow(x, o.fp-1)
			df := (-o.c1*o.fp*xpm + o.c2*(o.fp+1)*xpm*x - o.c3*(o.fp+2)*xpm*x*x) / rc
			gx[i] += g[i] * df
		}

	case opBessel:
		r := p.fwdOf(o.x)
		g := p.gradOf(o.out)
		gx := p.gradOf(o.x)
		for i := 0; i < o.z; i++ {
			rv := r[i]
			rc := in.Cut[i]
			pref := math.Sqrt(2 / rc)
			acc := 0.0
			for n := 1; n <= o.nb; n++ {
				k := float64(n) * math.Pi / rc
				db := pref * (k*math.Cos(k*rv)/rv - math.Sin(k*rv)/(rv*rv))
				acc += g[i*o.nb+n-1] * db
			}
			gx[i] += acc
		}

	case opSphHarm:
		g := p.gradOf(o.out)
		gx := p.gradOf(o.x)
		gtab := p.fwdOf(o.y)
		dim := o.c
		for i := 0; i < o.z; i++ {
			gRow := gx[3*i : 3*i+3]
			vg := g[i*dim : (i+1)*dim]
			gi := gtab[i*dim*3 : (i+1)*dim*3]
			for c := 0; c < dim; c++ {
				gc := vg[c]
				if gc == 0 {
					continue
				}
				gRow[0] += gc * gi[3*c]
				gRow[1] += gc * gi[3*c+1]
				gRow[2] += gc * gi[3*c+2]
			}
		}

	case opMulBroadcast:
		x := p.fwdOf(o.x)
		s := p.fwdOf(o.y)
		g := p.gradOf(o.out)
		gx := p.gradOf(o.x)
		gs := p.gradOf(o.y)
		c := o.c
		for r := 0; r < o.rows; r++ {
			sv := s[r]
			for j := 0; j < c; j++ {
				gx[r*c+j] += g[r*c+j] * sv
			}
		}
		for r := 0; r < o.rows; r++ {
			acc := 0.0
			for j := 0; j < c; j++ {
				acc += g[r*c+j] * x[r*c+j]
			}
			gs[r] += acc
		}

	case opConcat2:
		g := p.gradOf(o.out)
		ca, cb := o.ca, o.cb
		tot := ca + cb
		if o.adiff {
			ga := p.gradOf(o.x)
			for i := 0; i < o.rows; i++ {
				src := g[i*tot : i*tot+ca]
				dst := ga[i*ca : (i+1)*ca]
				for j, gv := range src {
					dst[j] += gv
				}
			}
		}
		if o.bdiff {
			gb := p.gradOf(o.y)
			for i := 0; i < o.rows; i++ {
				src := g[i*tot+ca : (i+1)*tot]
				dst := gb[i*cb : (i+1)*cb]
				for j, gv := range src {
					dst[j] += gv
				}
			}
		}

	case opLinear:
		// gx += g W, mirroring linearOp's two-phase accumulate; when the
		// input has a single consumer, scrT aliases the gradient region and
		// the add pass (0 + s == s) is gone. The kern path shares each W row
		// across four gradient rows (bit-identical — see MatMulBlocked64).
		if !p.refKernels {
			kern.MatMulBlocked64(o.scrT.Data, o.goutT.Data, o.wT.Data, o.m, o.n, o.k)
		} else {
			tensor.MatMulInto(o.scrT, o.goutT, o.wT, tensor.F64)
		}
		if !o.direct {
			gx := p.gradOf(o.x)
			for i, v := range o.scrT.Data {
				gx[i] += v
			}
		}

	case opSiLU:
		x := p.fwdOf(o.x)
		g := p.gradOf(o.out)
		gx := p.gradOf(o.x)
		for i, xv := range x {
			s := 1 / (1 + math.Exp(-xv))
			gx[i] += g[i] * s * (1 + xv*(1-s))
		}

	case opOuterMul:
		s := p.fwdOf(o.x)
		yv := p.fwdOf(o.y)
		g := p.gradOf(o.out)
		gs := p.gradOf(o.x)
		gy := p.gradOf(o.y)
		z, u, c := o.z, o.u, o.c
		for zi := 0; zi < z; zi++ {
			yRow := yv[zi*c : (zi+1)*c]
			for ui := 0; ui < u; ui++ {
				acc := 0.0
				gb := g[(zi*u+ui)*c : (zi*u+ui+1)*c]
				for j, v := range yRow {
					acc += gb[j] * v
				}
				gs[zi*u+ui] += acc
			}
		}
		for zi := 0; zi < z; zi++ {
			gRow := gy[zi*c : (zi+1)*c]
			for ui := 0; ui < u; ui++ {
				sv := s[zi*u+ui]
				gb := g[(zi*u+ui)*c : (zi*u+ui+1)*c]
				for j := range gRow {
					gRow[j] += gb[j] * sv
				}
			}
		}

	case opEnvSum:
		w := p.fwdOf(o.x)
		yv := p.fwdOf(o.y)
		g := p.gradOf(o.out)
		gw := p.gradOf(o.x)
		gy := p.gradOf(o.y)
		z, u, c := o.z, o.u, o.c
		for zi := 0; zi < z; zi++ {
			i := in.I[zi]
			yRow := yv[zi*c : (zi+1)*c]
			for ui := 0; ui < u; ui++ {
				gb := g[(i*u+ui)*c : (i*u+ui+1)*c]
				acc := 0.0
				for j, v := range yRow {
					acc += gb[j] * v
				}
				gw[zi*u+ui] += o.alpha * acc
			}
			gyRow := gy[zi*c : (zi+1)*c]
			for ui := 0; ui < u; ui++ {
				wv := o.alpha * w[zi*u+ui]
				gb := g[(i*u+ui)*c : (i*u+ui+1)*c]
				for j := range gyRow {
					gyRow[j] += gb[j] * wv
				}
			}
		}

	case opGather:
		g := p.gradOf(o.out)
		gx := p.gradOf(o.x)
		rl := o.c
		for zi, i := range in.I {
			src := g[zi*rl : (zi+1)*rl]
			dst := gx[i*rl : (i+1)*rl]
			for j, gv := range src {
				dst[j] += gv
			}
		}

	case opTP:
		if !p.refKernels {
			// Batched over BBLK blocks per sweep of the same *unsorted*
			// path-major table the reference walks (the backward must not
			// sort — see BackwardFusedEntriesBlocked).
			o3.BackwardFusedEntriesBlocked(p.gradOf(o.x), p.gradOf(o.y),
				p.fwdOf(o.x), p.fwdOf(o.y), p.gradOf(o.out),
				o.zu, o.w1, o.w2, o.w3, in.Fused[o.layer])
		} else {
			o3.BackwardFusedEntries(p.gradOf(o.x), p.gradOf(o.y),
				p.fwdOf(o.x), p.fwdOf(o.y), p.gradOf(o.out),
				o.zu, o.w1, o.w2, o.w3, in.Fused[o.layer])
		}

	case opSlice:
		g := p.gradOf(o.out)
		gx := p.gradOf(o.x)
		for r := 0; r < o.rows; r++ {
			src := g[r*o.c : (r+1)*o.c]
			dst := gx[r*o.last+o.lo : r*o.last+o.lo+o.c]
			for j, gv := range src {
				dst[j] += gv
			}
		}

	case opCopy:
		g := p.gradOf(o.out)
		gx := p.gradOf(o.x)
		for i, gv := range g {
			gx[i] += gv
		}

	case opAdd:
		g := p.gradOf(o.out)
		ga := p.gradOf(o.x)
		gb := p.gradOf(o.y)
		for i, gv := range g {
			ga[i] += gv
		}
		for i, gv := range g {
			gb[i] += gv
		}

	case opScale:
		g := p.gradOf(o.out)
		gx := p.gradOf(o.x)
		for i, gv := range g {
			gx[i] += gv * o.alpha
		}

	case opWeightedSum:
		// The root adjoint is seeded with exactly 1, so each pair energy's
		// gradient is 1*sigma — the same product the tape's weightedSumOp
		// accumulates.
		gx := p.gradOf(o.x)
		for i := range gx {
			gx[i] += in.Scale
		}
	}
}
