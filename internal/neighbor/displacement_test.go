package neighbor

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/atoms"
	"repro/internal/units"
)

// TestAccumulateEnvBoundSound pins the soundness contract of the reuse gate:
// after perturbing atoms and accumulating the bound over several sub-steps,
// every center's accumulated env bound dominates the true change of each of
// its pair distances relative to the starting configuration.
func TestAccumulateEnvBoundSound(t *testing.T) {
	species := []units.Species{units.H, units.O}
	rng := rand.New(rand.NewPCG(31, 32))
	sys := randomPeriodic(rng, 180, 14, species)
	cuts := PaperBioCutoffs(atoms.NewSpeciesIndex(species))

	var bld Builder
	bld.Skin = 1.0
	defer bld.Close()
	var p Pairs
	bld.BuildInto(&p, sys, cuts)

	n := sys.NumAtoms()
	start := make([][3]float64, n)
	prev := make([][3]float64, n)
	copy(start, sys.Pos)
	copy(prev, sys.Pos)

	r0 := make([]float64, p.NumReal)
	copy(r0, p.Dist)

	d := make([]float64, n)
	env := make([]float64, n)
	for step := 0; step < 4; step++ {
		for i := range sys.Pos {
			for k := 0; k < 3; k++ {
				sys.Pos[i][k] += (rng.Float64() - 0.5) * 0.1
			}
		}
		StepDisplacements(sys.Pos, prev, d)
		p.AccumulateEnvBound(d, env)
		copy(prev, sys.Pos)
	}

	for z := 0; z < p.NumReal; z++ {
		v := sys.Displacement(p.I[z], p.J[z])
		r := math.Sqrt(v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
		if change := math.Abs(r - r0[z]); change > env[p.I[z]]+1e-12 {
			t.Fatalf("pair %d distance changed %g > env bound %g of center %d",
				z, change, env[p.I[z]], p.I[z])
		}
	}
}

// TestAccumulateEnvBoundGrouping checks the per-center max against a
// brute-force reference on the builder's grouped pair order.
func TestAccumulateEnvBoundGrouping(t *testing.T) {
	species := []units.Species{units.H}
	rng := rand.New(rand.NewPCG(7, 9))
	sys := randomPeriodic(rng, 60, 10, species)
	cuts := NewCutoffTable(atoms.NewSpeciesIndex(species), 4.0)
	p := Build(sys, cuts)

	n := sys.NumAtoms()
	d := make([]float64, n)
	for i := range d {
		d[i] = rng.Float64()
	}
	env := make([]float64, n)
	p.AccumulateEnvBound(d, env)

	want := make([]float64, n)
	copy(want, d)
	nbrMax := make([]float64, n)
	for z := 0; z < p.NumReal; z++ {
		if dj := d[p.J[z]]; dj > nbrMax[p.I[z]] {
			nbrMax[p.I[z]] = dj
		}
	}
	for i := range want {
		want[i] += nbrMax[i]
		if env[i] != want[i] {
			t.Fatalf("center %d: env %g, want %g", i, env[i], want[i])
		}
	}
}
