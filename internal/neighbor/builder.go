package neighbor

import (
	"math"

	"repro/internal/atoms"
	"repro/internal/par"
)

// Builder constructs pair lists with reusable scratch buffers and a bounded
// worker pool, the single-node analogue of the paper's allocation-stable
// LAMMPS plugin: after the first build on a given system size, repeated
// builds perform no heap allocations, and the cell scan is parallelized over
// contiguous atom ranges so the merged pair order is identical for any
// worker count.
//
// A Builder is owned by a single evaluation pipeline (an MD loop, an
// EvalScratch); it must not be shared between goroutines. The zero value is
// ready to use with Workers defaulting to runtime.GOMAXPROCS(0).
type Builder struct {
	// Workers bounds the number of concurrent chunk builders. Values <= 0
	// select runtime.GOMAXPROCS(0). With Workers > 1 the Builder keeps a
	// persistent pool of worker goroutines fed over channels, so
	// steady-state builds stay allocation-free at any worker count; call
	// Close when discarding a parallel Builder to release the pool.
	Workers int

	// Skin is the Verlet-list skin: pairs are admitted out to their ordered
	// cutoff plus Skin, while Pairs.Cut still records the true cutoff. A
	// skin list built at one configuration stays a superset of every exact
	// cutoff list until an atom has moved Skin/2, so MD loops can reuse it
	// across steps; pairs in the skin shell (Dist >= Cut) sit exactly on or
	// beyond the cutoff envelope and contribute exactly zero energy and
	// force. Zero disables the skin.
	Skin float64

	// CenterLimit restricts which atoms act as pair centers: only atoms
	// with index < CenterLimit are scanned as centers (all atoms remain
	// visible as neighbors). Domain-decomposition ranks lay out their local
	// systems owned-atoms-first and set CenterLimit to the owned count, so
	// ghost-centered pairs are never built. Values <= 0 mean all atoms.
	// The same owned-prefix convention classifies neighbors as ghosts in
	// PartitionInterior, the interior/frontier split of the overlap
	// pipeline.
	CenterLimit int

	// Reusable per-build scratch.
	tIdx      []int        // species index per atom
	pos       [][3]float64 // wrapped positions for binning
	cellIdx   []int32      // flat cell index per atom
	cellPtr   []int32      // counting-sort cell offsets, len ncells+1
	cellAtoms []int32      // atom indices grouped by cell, ascending per cell
	shards    []shard      // per-chunk pair outputs

	// PartitionInterior scratch (stable center-block gather).
	partI, partJ      []int
	partVec           [][3]float64
	partDist, partCut []float64

	// Per-build state shared with worker goroutines (set before jobs are
	// dispatched, read-only while they run; the pool's channel handshakes
	// order the accesses).
	sys    *atoms.System
	cuts   *CutoffTable
	rcMax  float64
	binned bool
	nb     [3]int

	// Persistent worker pool (lazily started on the first parallel build)
	// and the hoisted job closure handed to it (created once so dispatch
	// stays allocation-free).
	pool    par.Pool
	chunkFn func(int)
}

// shard is one chunk's private pair output in structure-of-arrays form.
type shard struct {
	lo, hi int // atom range [lo,hi)
	i, j   []int
	vec    [][3]float64
	dist   []float64
	cut    []float64
}

func (s *shard) reset(lo, hi int) {
	s.lo, s.hi = lo, hi
	s.i = s.i[:0]
	s.j = s.j[:0]
	s.vec = s.vec[:0]
	s.dist = s.dist[:0]
	s.cut = s.cut[:0]
}

func (s *shard) add(i, j int, d [3]float64, r, rc float64) {
	s.i = append(s.i, i)
	s.j = append(s.j, j)
	s.vec = append(s.vec, d)
	s.dist = append(s.dist, r)
	s.cut = append(s.cut, rc)
}

// effectiveWorkers resolves the worker count for n atoms.
func (b *Builder) effectiveWorkers(n int) int {
	return par.Workers(b.Workers, n)
}

// Reset truncates the pair arrays, keeping capacity for reuse.
func (p *Pairs) Reset(nAtoms int) {
	p.I = p.I[:0]
	p.J = p.J[:0]
	p.Vec = p.Vec[:0]
	p.Dist = p.Dist[:0]
	p.Cut = p.Cut[:0]
	p.NumReal = 0
	p.NAtoms = nAtoms
}

// BuildInto constructs the ordered pair list for sys into p, reusing p's
// storage and the builder's scratch. The resulting pair order — ascending
// center atom, then the serial 27-cell scan order — does not depend on the
// worker count, so decompositions and force reductions built on top of it
// are reproducible.
func (b *Builder) BuildInto(p *Pairs, sys *atoms.System, cuts *CutoffTable) {
	n := sys.NumAtoms()
	p.Reset(n)
	b.sys = sys
	b.cuts = cuts
	b.rcMax = cuts.Max() + b.Skin

	// Resolve species indices once.
	if cap(b.tIdx) < n {
		b.tIdx = make([]int, n)
	}
	b.tIdx = b.tIdx[:n]
	for i, sp := range sys.Species {
		b.tIdx[i] = cuts.Index.Index(sp)
	}

	b.binned = useCellList(sys, b.rcMax)
	if b.binned {
		b.bin()
	}

	centers := n
	if b.CenterLimit > 0 && b.CenterLimit < n {
		centers = b.CenterLimit
	}
	nw := b.effectiveWorkers(centers)
	if cap(b.shards) < nw {
		grown := make([]shard, nw)
		copy(grown, b.shards)
		b.shards = grown
	}
	b.shards = b.shards[:nw]
	chunk := (centers + nw - 1) / nw
	for ci := 0; ci < nw; ci++ {
		lo := ci * chunk
		hi := lo + chunk
		if hi > centers {
			hi = centers
		}
		b.shards[ci].reset(lo, hi)
	}
	if nw == 1 {
		b.runChunk(0)
	} else {
		if b.chunkFn == nil {
			b.chunkFn = b.runChunk
		}
		b.pool.Run(nw, b.chunkFn)
	}

	// Deterministic merge in chunk order.
	total := 0
	for ci := range b.shards {
		total += len(b.shards[ci].i)
	}
	p.I = growInts(p.I, total)
	p.J = growInts(p.J, total)
	p.Vec = growVecs(p.Vec, total)
	p.Dist = growFloats(p.Dist, total)
	p.Cut = growFloats(p.Cut, total)
	off := 0
	for ci := range b.shards {
		s := &b.shards[ci]
		copy(p.I[off:], s.i)
		copy(p.J[off:], s.j)
		copy(p.Vec[off:], s.vec)
		copy(p.Dist[off:], s.dist)
		copy(p.Cut[off:], s.cut)
		off += len(s.i)
	}
	p.NumReal = total
	b.sys, b.cuts = nil, nil
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growVecs(s [][3]float64, n int) [][3]float64 {
	if cap(s) < n {
		return make([][3]float64, n)
	}
	return s[:n]
}

// bin computes the cell geometry, wraps positions, and counting-sorts atoms
// into flat cell arrays (no per-cell slices, no map: the scratch is reused
// verbatim across MD steps).
func (b *Builder) bin() {
	sys, rc := b.sys, b.rcMax
	n := sys.NumAtoms()
	var lo, hi [3]float64
	if sys.PBC {
		hi = sys.Cell
	} else {
		lo = sys.Pos[0]
		hi = sys.Pos[0]
		for _, p := range sys.Pos {
			for k := 0; k < 3; k++ {
				lo[k] = math.Min(lo[k], p[k])
				hi[k] = math.Max(hi[k], p[k])
			}
		}
		for k := 0; k < 3; k++ {
			hi[k] += 1e-9
		}
	}
	var cw [3]float64
	for k := 0; k < 3; k++ {
		ext := hi[k] - lo[k]
		b.nb[k] = int(ext / rc)
		if b.nb[k] < 1 {
			b.nb[k] = 1
		}
		cw[k] = ext / float64(b.nb[k])
	}
	if cap(b.pos) < n {
		b.pos = make([][3]float64, n)
	}
	b.pos = b.pos[:n]
	copy(b.pos, sys.Pos)
	if sys.PBC {
		// Bin wrapped copies; displacements below still apply minimum image.
		for i := range b.pos {
			for k := 0; k < 3; k++ {
				l := sys.Cell[k]
				b.pos[i][k] -= l * math.Floor(b.pos[i][k]/l)
			}
		}
	}
	if cap(b.cellIdx) < n {
		b.cellIdx = make([]int32, n)
	}
	b.cellIdx = b.cellIdx[:n]
	ncells := b.nb[0] * b.nb[1] * b.nb[2]
	if cap(b.cellPtr) < ncells+1 {
		b.cellPtr = make([]int32, ncells+1)
	}
	b.cellPtr = b.cellPtr[:ncells+1]
	for c := range b.cellPtr {
		b.cellPtr[c] = 0
	}
	for i := range b.pos {
		var c [3]int
		for k := 0; k < 3; k++ {
			c[k] = int((b.pos[i][k] - lo[k]) / cw[k])
			if c[k] >= b.nb[k] {
				c[k] = b.nb[k] - 1
			}
			if c[k] < 0 {
				c[k] = 0
			}
		}
		idx := int32((c[0]*b.nb[1]+c[1])*b.nb[2] + c[2])
		b.cellIdx[i] = idx
		b.cellPtr[idx+1]++
	}
	for c := 1; c <= ncells; c++ {
		b.cellPtr[c] += b.cellPtr[c-1]
	}
	if cap(b.cellAtoms) < n {
		b.cellAtoms = make([]int32, n)
	}
	b.cellAtoms = b.cellAtoms[:n]
	// Fill ascending so atoms within each cell keep ascending index order
	// (the same order the serial map-based implementation produced).
	fill := b.cellPtr[:ncells] // running write offsets; restored below
	for i := range b.cellIdx {
		c := b.cellIdx[i]
		b.cellAtoms[fill[c]] = int32(i)
		fill[c]++
	}
	// fill aliased cellPtr[0:ncells] and advanced each entry by its count:
	// cellPtr[c] now holds the *end* of cell c, i.e. the start of cell c+1.
	// Shift back down to restore start offsets.
	for c := ncells; c > 0; c-- {
		b.cellPtr[c] = b.cellPtr[c-1]
	}
	b.cellPtr[0] = 0
}

// Close releases the worker pool. The Builder remains usable afterwards (a
// later parallel build restarts the pool). Builders that never ran a
// parallel build have nothing to release.
func (b *Builder) Close() { b.pool.Close() }

// runChunk builds the pair list for the chunk's atom range into its shard.
func (b *Builder) runChunk(ci int) {
	s := &b.shards[ci]
	if b.binned {
		b.scanCells(s)
	} else {
		b.scanAll(s)
	}
}

// scanAll is the O(N^2) minimum-image path for small or aperiodic systems.
func (b *Builder) scanAll(s *shard) {
	sys := b.sys
	n := sys.NumAtoms()
	for i := s.lo; i < s.hi; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			b.visit(s, i, j, sys.Displacement(i, j))
		}
	}
}

// scanCells scans the 27 neighboring cells of each atom in the chunk.
func (b *Builder) scanCells(s *shard) {
	sys := b.sys
	nbx, nby, nbz := b.nb[0], b.nb[1], b.nb[2]
	for i := s.lo; i < s.hi; i++ {
		c := int(b.cellIdx[i])
		cz := c % nbz
		cy := (c / nbz) % nby
		cx := c / (nby * nbz)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for dz := -1; dz <= 1; dz++ {
					jx, jy, jz := cx+dx, cy+dy, cz+dz
					if sys.PBC {
						jx = ((jx % nbx) + nbx) % nbx
						jy = ((jy % nby) + nby) % nby
						jz = ((jz % nbz) + nbz) % nbz
					} else if jx < 0 || jx >= nbx || jy < 0 || jy >= nby || jz < 0 || jz >= nbz {
						continue
					}
					cj := (jx*nby+jy)*nbz + jz
					for _, j32 := range b.cellAtoms[b.cellPtr[cj]:b.cellPtr[cj+1]] {
						j := int(j32)
						if j == i {
							continue
						}
						d := [3]float64{
							b.pos[j][0] - b.pos[i][0],
							b.pos[j][1] - b.pos[i][1],
							b.pos[j][2] - b.pos[i][2],
						}
						if sys.PBC {
							for k := 0; k < 3; k++ {
								l := sys.Cell[k]
								d[k] -= l * math.Round(d[k]/l)
							}
						}
						b.visit(s, i, j, d)
					}
				}
			}
		}
	}
}

// visit applies the ordered per-species-pair cutoff test (inflated by the
// Verlet skin) and records the pair in the chunk's shard. The recorded
// cutoff is the true ordered cutoff: skin pairs carry Dist >= Cut and a
// zero cutoff envelope.
func (b *Builder) visit(s *shard, i, j int, d [3]float64) {
	r2 := d[0]*d[0] + d[1]*d[1] + d[2]*d[2]
	if r2 > b.rcMax*b.rcMax || r2 == 0 {
		return
	}
	r := math.Sqrt(r2)
	if rc := b.cuts.Rc[b.tIdx[i]][b.tIdx[j]]; r < rc+b.Skin {
		s.add(i, j, d, r, rc)
	}
}
