package neighbor

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"

	"repro/internal/atoms"
	"repro/internal/units"
)

// randomPeriodic builds a random periodic system of n atoms drawn from the
// given species in a cubic box of the given edge.
func randomPeriodic(rng *rand.Rand, n int, edge float64, species []units.Species) *atoms.System {
	sys := atoms.NewSystem(n)
	sys.PBC = true
	sys.Cell = [3]float64{edge, edge, edge}
	for i := 0; i < n; i++ {
		sys.Species[i] = species[rng.IntN(len(species))]
		// Positions deliberately outside [0,edge) too: builds must wrap.
		for k := 0; k < 3; k++ {
			sys.Pos[i][k] = (rng.Float64()*3 - 1) * edge
		}
	}
	return sys
}

// pairKey is a canonical sortable representation of one pair.
type pairKey struct {
	i, j int
	dist float64
}

func sortedPairs(p *Pairs) []pairKey {
	keys := make([]pairKey, p.NumReal)
	for z := 0; z < p.NumReal; z++ {
		keys[z] = pairKey{p.I[z], p.J[z], p.Dist[z]}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].i != keys[b].i {
			return keys[a].i < keys[b].i
		}
		if keys[a].j != keys[b].j {
			return keys[a].j < keys[b].j
		}
		return keys[a].dist < keys[b].dist
	})
	return keys
}

// TestBuilderWorkerCountInvariance is the property test of the parallel
// build: on random periodic systems, workers=1 and workers=N produce
// identical pair lists — not only as sorted sets but element-for-element,
// because chunked shards merge in atom order.
func TestBuilderWorkerCountInvariance(t *testing.T) {
	species := []units.Species{units.H, units.C, units.O}
	rng := rand.New(rand.NewPCG(42, 7))
	for trial := 0; trial < 8; trial++ {
		n := 32 + rng.IntN(200)
		edge := 9.0 + 6*rng.Float64()
		sys := randomPeriodic(rng, n, edge, species)
		cuts := PaperBioCutoffs(atoms.NewSpeciesIndex(species))

		serial := Builder{Workers: 1}
		var pSerial Pairs
		serial.BuildInto(&pSerial, sys, cuts)

		for _, workers := range []int{2, 3, 7, 16} {
			par := Builder{Workers: workers}
			var pPar Pairs
			par.BuildInto(&pPar, sys, cuts)
			par.Close()
			if pPar.NumReal != pSerial.NumReal {
				t.Fatalf("trial %d workers=%d: %d pairs vs %d serial",
					trial, workers, pPar.NumReal, pSerial.NumReal)
			}
			for z := 0; z < pSerial.NumReal; z++ {
				if pPar.I[z] != pSerial.I[z] || pPar.J[z] != pSerial.J[z] ||
					pPar.Vec[z] != pSerial.Vec[z] || pPar.Dist[z] != pSerial.Dist[z] ||
					pPar.Cut[z] != pSerial.Cut[z] {
					t.Fatalf("trial %d workers=%d: pair %d differs from serial", trial, workers, z)
				}
			}
			if err := pPar.Validate(); err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, workers, err)
			}
		}
	}
}

// TestBuilderMatchesBuild checks the Builder against the package-level Build
// on small aperiodic systems (the O(N^2) path) as well.
func TestBuilderMatchesBuild(t *testing.T) {
	species := []units.Species{units.H, units.O}
	rng := rand.New(rand.NewPCG(5, 11))
	sys := atoms.NewSystem(40)
	for i := range sys.Species {
		sys.Species[i] = species[rng.IntN(2)]
		for k := 0; k < 3; k++ {
			sys.Pos[i][k] = rng.Float64() * 12
		}
	}
	cuts := NewCutoffTable(atoms.NewSpeciesIndex(species), 4.0)
	ref := Build(sys, cuts)
	for _, workers := range []int{1, 4} {
		b := Builder{Workers: workers}
		var p Pairs
		b.BuildInto(&p, sys, cuts)
		got := sortedPairs(&p)
		want := sortedPairs(ref)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d pairs vs %d reference", workers, len(got), len(want))
		}
		for z := range got {
			if got[z] != want[z] {
				t.Fatalf("workers=%d: pair %d mismatch: %v vs %v", workers, z, got[z], want[z])
			}
		}
	}
}

// TestBuilderSteadyStateAllocs asserts the zero-allocation contract: after a
// warm-up build, repeated builds on same-size systems allocate nothing.
func TestBuilderSteadyStateAllocs(t *testing.T) {
	species := []units.Species{units.H, units.O}
	rng := rand.New(rand.NewPCG(9, 3))
	sys := randomPeriodic(rng, 300, 14, species)
	cuts := PaperBioCutoffs(atoms.NewSpeciesIndex(species))
	for _, workers := range []int{1, 4} {
		b := Builder{Workers: workers}
		defer b.Close()
		var p Pairs
		b.BuildInto(&p, sys, cuts) // warm-up sizes the scratch
		allocs := testing.AllocsPerRun(20, func() {
			// Positions drift slightly, as in MD; counts stay stable.
			for i := range sys.Pos {
				sys.Pos[i][0] += 1e-7
			}
			b.BuildInto(&p, sys, cuts)
		})
		if allocs > 0 {
			t.Errorf("workers=%d: steady-state BuildInto allocates %.1f allocs/op, want 0", workers, allocs)
		}
	}
}

// TestBuilderReuseAcrossSizes checks that a Builder survives system-size
// changes (scratch regrows, results stay correct).
func TestBuilderReuseAcrossSizes(t *testing.T) {
	species := []units.Species{units.H, units.C, units.O}
	rng := rand.New(rand.NewPCG(1, 2))
	b := Builder{Workers: 3}
	defer b.Close()
	var p Pairs
	for _, n := range []int{20, 500, 64, 257} {
		sys := randomPeriodic(rng, n, 13, species)
		cuts := PaperBioCutoffs(atoms.NewSpeciesIndex(species))
		b.BuildInto(&p, sys, cuts)
		want := Build(sys, cuts)
		if p.NumReal != want.NumReal {
			t.Fatalf("n=%d: %d pairs vs %d fresh", n, p.NumReal, want.NumReal)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// TestBuildOrderStable pins the contract that Build's pair order is
// ascending in the center atom (chunk merges depend on it).
func TestBuildOrderStable(t *testing.T) {
	species := []units.Species{units.H, units.O}
	rng := rand.New(rand.NewPCG(8, 8))
	sys := randomPeriodic(rng, 150, 12, species)
	cuts := PaperBioCutoffs(atoms.NewSpeciesIndex(species))
	p := Build(sys, cuts)
	for z := 1; z < p.NumReal; z++ {
		if p.I[z] < p.I[z-1] {
			t.Fatalf("pair %d: center %d after center %d", z, p.I[z], p.I[z-1])
		}
	}
}

func BenchmarkBuilderSteadyState(b *testing.B) {
	species := []units.Species{units.H, units.O}
	rng := rand.New(rand.NewPCG(3, 4))
	sys := randomPeriodic(rng, 1000, 21, species)
	cuts := PaperBioCutoffs(atoms.NewSpeciesIndex(species))
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			bld := Builder{Workers: workers}
			defer bld.Close()
			var p Pairs
			bld.BuildInto(&p, sys, cuts)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bld.BuildInto(&p, sys, cuts)
			}
			b.ReportMetric(float64(p.NumReal)*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
		})
	}
}

// TestBuilderSkinSuperset pins the Verlet-skin contract: a skin build is a
// superset of the exact build, extra pairs all sit in the skin shell
// (Dist >= Cut), and Cut still records the true ordered cutoff.
func TestBuilderSkinSuperset(t *testing.T) {
	species := []units.Species{units.H, units.O}
	rng := rand.New(rand.NewPCG(21, 22))
	// Edge large enough that the exact and the skin build both take the
	// cell-list path (identical displacement arithmetic, comparable bits).
	sys := randomPeriodic(rng, 260, 16, species)
	cuts := PaperBioCutoffs(atoms.NewSpeciesIndex(species))

	exact := Build(sys, cuts)
	skin := 0.7
	var bld Builder
	bld.Skin = skin
	defer bld.Close()
	var p Pairs
	bld.BuildInto(&p, sys, cuts)
	if err := p.ValidateSkin(skin, sys, cuts); err != nil {
		t.Fatal(err)
	}
	// The cut-verification arm must actually bite: corrupt one skin pair's
	// recorded cutoff and expect ValidateSkin to reject it.
	for z := 0; z < p.NumReal; z++ {
		if p.Dist[z] >= p.Cut[z] { // a skin-shell pair
			saved := p.Cut[z]
			p.Cut[z] = p.Dist[z] + 1e-6 // plausible distance-wise, wrong table-wise
			if err := p.ValidateSkin(skin, sys, cuts); err == nil {
				t.Fatalf("ValidateSkin accepted corrupted Cut on skin pair %d", z)
			}
			p.Cut[z] = saved
			break
		}
	}
	if p.NumReal <= exact.NumReal {
		t.Fatalf("skin list (%d pairs) should exceed exact list (%d)", p.NumReal, exact.NumReal)
	}
	type vecKey struct {
		i, j int
		vec  [3]float64
	}
	inExact := map[vecKey]bool{}
	for z := 0; z < exact.NumReal; z++ {
		inExact[vecKey{exact.I[z], exact.J[z], exact.Vec[z]}] = true
	}
	found := 0
	for z := 0; z < p.NumReal; z++ {
		k := vecKey{p.I[z], p.J[z], p.Vec[z]}
		if inExact[k] {
			found++
			continue
		}
		if p.Dist[z] < p.Cut[z] {
			t.Fatalf("extra pair %d inside the true cutoff: dist %g < cut %g", z, p.Dist[z], p.Cut[z])
		}
	}
	if found != exact.NumReal {
		t.Fatalf("skin list covers %d of %d exact pairs", found, exact.NumReal)
	}
}

// TestBuilderCenterLimit pins the owned-centers contract used by the domain
// runtime: with CenterLimit k, exactly the pairs centered on atoms < k are
// built, identical to the unrestricted list filtered by center.
func TestBuilderCenterLimit(t *testing.T) {
	species := []units.Species{units.H, units.O}
	rng := rand.New(rand.NewPCG(23, 24))
	sys := randomPeriodic(rng, 120, 12, species)
	cuts := PaperBioCutoffs(atoms.NewSpeciesIndex(species))

	full := Build(sys, cuts)
	limit := 47
	keep := make([]bool, sys.NumAtoms())
	for i := 0; i < limit; i++ {
		keep[i] = true
	}
	want := full.FilterCenters(keep)

	var bld Builder
	bld.CenterLimit = limit
	defer bld.Close()
	var p Pairs
	bld.BuildInto(&p, sys, cuts)
	if p.NumReal != want.NumReal {
		t.Fatalf("center-limited build has %d pairs, want %d", p.NumReal, want.NumReal)
	}
	for z := 0; z < p.NumReal; z++ {
		if p.I[z] != want.I[z] || p.J[z] != want.J[z] || p.Vec[z] != want.Vec[z] {
			t.Fatalf("pair %d differs from filtered reference", z)
		}
	}
}
