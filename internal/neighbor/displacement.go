package neighbor

import "math"

// StepDisplacements fills d with the per-atom displacement magnitudes
// |cur[i] - prev[i]|. Positions are compared unwrapped (the MD loop drifts
// positions continuously and only the pair-vector refresh applies minimum
// image), so the magnitudes bound the true change of every pair distance the
// atom participates in: |r_ij(cur) - r_ij(prev)| <= d[i] + d[j] by the
// triangle inequality.
func StepDisplacements(cur, prev [][3]float64, d []float64) {
	for i := range d {
		dx := cur[i][0] - prev[i][0]
		dy := cur[i][1] - prev[i][1]
		dz := cur[i][2] - prev[i][2]
		d[i] = math.Sqrt(dx*dx + dy*dy + dz*dz)
	}
}

// AccumulateEnvBound adds one step's per-center environment-displacement
// bound to env: for every center i,
//
//	env[i] += d[i] + max over pairs (i,j) of d[j],
//
// where d holds per-atom displacement magnitudes since the previous force
// evaluation. env[i] therefore accumulates an upper bound on how far center
// i's environment has drifted (every pair distance of center i has changed
// by at most env[i]) since env[i] was last reset to zero — the soundness
// contract of the temporal-reuse gate: a center whose accumulated bound
// stays under ε may reuse its cached per-pair rows with per-pair geometry
// error at most ε.
//
// Real pairs must be grouped by ascending center, which is the order
// Builder.BuildInto guarantees. Atoms that currently have no pairs only
// accrue their own displacement.
func (p *Pairs) AccumulateEnvBound(d, env []float64) {
	for i, di := range d {
		env[i] += di
	}
	z := 0
	for z < p.NumReal {
		i := p.I[z]
		m := 0.0
		for z < p.NumReal && p.I[z] == i {
			if dj := d[p.J[z]]; dj > m {
				m = dj
			}
			z++
		}
		env[i] += m
	}
}
