package neighbor

import (
	"math/rand/v2"
	"testing"

	"repro/internal/atoms"
	"repro/internal/units"
)

// partKey identifies one pair independently of its list position (the exact
// displacement disambiguates multiple periodic images of the same (i,j)).
type partKey struct {
	i, j int
	vec  [3]float64
}

func partKeys(p *Pairs) map[partKey]int {
	m := make(map[partKey]int)
	for z := 0; z < p.NumReal; z++ {
		m[partKey{p.I[z], p.J[z], p.Vec[z]}]++
	}
	return m
}

func partSystem(seed uint64) *atoms.System {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	return randomPeriodic(rng, 160, 9.0, []units.Species{units.H, units.O})
}

func partCuts() *CutoffTable {
	return PaperBioCutoffs(atoms.NewSpeciesIndex([]units.Species{units.H, units.O}))
}

// TestPartitionInteriorExactSplit is the list-level form of the partition
// property: interior plus frontier is exactly the original canonical list —
// no duplicates, no drops — the interior block references no ghost
// neighbors, every frontier center has at least one, and center blocks stay
// contiguous.
func TestPartitionInteriorExactSplit(t *testing.T) {
	sys := partSystem(17)
	cuts := partCuts()
	for _, limit := range []int{0, sys.NumAtoms() / 3, sys.NumAtoms() / 2, sys.NumAtoms()} {
		b := Builder{CenterLimit: limit}
		var p Pairs
		b.BuildInto(&p, sys, cuts)
		before := partKeys(&p)
		total := p.NumReal

		nInt := b.PartitionInterior(&p)
		if p.NumReal != total {
			t.Fatalf("limit %d: partition changed the pair count %d -> %d", limit, total, p.NumReal)
		}
		after := partKeys(&p)
		if len(after) != len(before) {
			t.Fatalf("limit %d: pair multiset changed (%d vs %d distinct)", limit, len(after), len(before))
		}
		for k, c := range before {
			if after[k] != c {
				t.Fatalf("limit %d: pair %v count %d -> %d (duplicate or drop)", limit, k, c, after[k])
			}
		}

		ghostsExist := limit > 0 && limit < p.NAtoms
		if !ghostsExist && nInt != total {
			t.Fatalf("limit %d: no ghosts but interior %d != total %d", limit, nInt, total)
		}
		// Interior block: no ghost neighbors anywhere.
		if ghostsExist {
			for z := 0; z < nInt; z++ {
				if p.J[z] >= limit {
					t.Fatalf("limit %d: interior pair %d references ghost neighbor %d", limit, z, p.J[z])
				}
			}
		}
		// Frontier block: center-block granular, each block holding >= 1 ghost.
		for blo := nInt; blo < total; {
			bhi := blo + 1
			for bhi < total && p.I[bhi] == p.I[blo] {
				bhi++
			}
			hasGhost := false
			for z := blo; z < bhi; z++ {
				if p.J[z] >= limit {
					hasGhost = true
				}
			}
			if !hasGhost {
				t.Fatalf("limit %d: frontier center %d has no ghost neighbor", limit, p.I[blo])
			}
			blo = bhi
		}
		// Center blocks stay contiguous across the whole list.
		seen := make(map[int]bool)
		for blo := 0; blo < total; {
			bhi := blo + 1
			for bhi < total && p.I[bhi] == p.I[blo] {
				bhi++
			}
			if seen[p.I[blo]] {
				t.Fatalf("limit %d: center %d split across blocks", limit, p.I[blo])
			}
			seen[p.I[blo]] = true
			blo = bhi
		}
	}
}

// TestPartitionInteriorStable pins stability: within each class, pairs keep
// the relative order the canonical build produced (required for the slot
// assignment keyed on contiguous per-center blocks to stay unchanged).
func TestPartitionInteriorStable(t *testing.T) {
	sys := partSystem(19)
	limit := sys.NumAtoms() / 2
	b := Builder{CenterLimit: limit}
	var ref Pairs
	b.BuildInto(&ref, sys, partCuts())
	orig := make([]partKey, ref.NumReal)
	for z := range orig {
		orig[z] = partKey{ref.I[z], ref.J[z], ref.Vec[z]}
	}
	nInt := b.PartitionInterior(&ref)

	// Walk the original order and check each class appears as a subsequence.
	intPos, frontPos := 0, nInt
	for _, k := range orig {
		if intPos < nInt && (partKey{ref.I[intPos], ref.J[intPos], ref.Vec[intPos]}) == k {
			intPos++
			continue
		}
		if frontPos < ref.NumReal && (partKey{ref.I[frontPos], ref.J[frontPos], ref.Vec[frontPos]}) == k {
			frontPos++
			continue
		}
		t.Fatalf("pair %v out of stable order (interior at %d/%d, frontier at %d/%d)",
			k, intPos, nInt, frontPos, ref.NumReal)
	}
	if intPos != nInt || frontPos != ref.NumReal {
		t.Fatalf("stable walk did not consume both classes: %d/%d interior, %d/%d frontier",
			intPos, nInt, frontPos, ref.NumReal)
	}
}

// TestPartitionInteriorSteadyStateAllocs pins the scratch-reuse contract:
// repeated build+partition cycles on a fixed system size allocate nothing.
func TestPartitionInteriorSteadyStateAllocs(t *testing.T) {
	sys := partSystem(21)
	cuts := partCuts()
	b := Builder{Workers: 1, CenterLimit: sys.NumAtoms() / 2}
	defer b.Close()
	var p Pairs
	b.BuildInto(&p, sys, cuts)
	b.PartitionInterior(&p)
	allocs := testing.AllocsPerRun(10, func() {
		b.BuildInto(&p, sys, cuts)
		b.PartitionInterior(&p)
	})
	if allocs != 0 {
		t.Errorf("steady-state build+partition allocates %.1f allocs/op, want 0", allocs)
	}
}
