package neighbor

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/atoms"
	"repro/internal/units"
)

func waterLikeBox(rng *rand.Rand, n int, l float64) *atoms.System {
	sys := atoms.NewSystem(n)
	sys.PBC = true
	sys.Cell = [3]float64{l, l, l}
	for i := 0; i < n; i++ {
		sys.Pos[i] = [3]float64{rng.Float64() * l, rng.Float64() * l, rng.Float64() * l}
		if i%3 == 0 {
			sys.Species[i] = units.O
		} else {
			sys.Species[i] = units.H
		}
	}
	return sys
}

func defaultIdx() *atoms.SpeciesIndex {
	return atoms.NewSpeciesIndex([]units.Species{units.H, units.C, units.N, units.O})
}

func TestCutoffTable(t *testing.T) {
	idx := defaultIdx()
	ct := NewCutoffTable(idx, 4.0)
	ct.Set(units.H, units.C, 1.25)
	if ct.Get(units.H, units.C) != 1.25 {
		t.Fatal("ordered cutoff not set")
	}
	if ct.Get(units.C, units.H) != 4.0 {
		t.Fatal("reverse ordered cutoff must stay at default")
	}
	if ct.Max() != 4.0 {
		t.Fatalf("Max = %v", ct.Max())
	}
}

func TestPaperBioCutoffs(t *testing.T) {
	ct := PaperBioCutoffs(defaultIdx())
	if ct.Get(units.H, units.H) != 3.0 || ct.Get(units.H, units.C) != 1.25 ||
		ct.Get(units.O, units.H) != 3.0 || ct.Get(units.C, units.H) != 4.0 {
		t.Fatal("paper cutoff table wrong")
	}
}

func TestBruteForceMatchesCellList(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	idx := defaultIdx()
	ct := NewCutoffTable(idx, 3.5)
	// Big enough box to trigger cell lists (>= 3*rc per dim).
	sys := waterLikeBox(rng, 300, 12.0)
	p := Build(sys, ct)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Brute force reference.
	type key struct{ i, j int }
	seen := map[key]bool{}
	for z := 0; z < p.NumReal; z++ {
		k := key{p.I[z], p.J[z]}
		if seen[k] {
			t.Fatalf("duplicate pair %v", k)
		}
		seen[k] = true
	}
	count := 0
	for i := 0; i < sys.NumAtoms(); i++ {
		for j := 0; j < sys.NumAtoms(); j++ {
			if i == j {
				continue
			}
			r := sys.Distance(i, j)
			if r < ct.Get(sys.Species[i], sys.Species[j]) {
				count++
				if !seen[key{i, j}] {
					t.Fatalf("missing pair (%d,%d) at r=%g", i, j, r)
				}
			}
		}
	}
	if count != p.NumReal {
		t.Fatalf("pair count %d != brute force %d", p.NumReal, count)
	}
}

func TestSmallBoxFallsBackToN2(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	idx := defaultIdx()
	ct := NewCutoffTable(idx, 4.0)
	sys := waterLikeBox(rng, 48, 7.0) // < 3*rc: must use minimum-image O(N^2)
	p := Build(sys, ct)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumReal == 0 {
		t.Fatal("expected pairs in dense box")
	}
}

func TestOrderedCutoffsReducePairs(t *testing.T) {
	// The paper reports ~3x fewer ordered pairs in liquid water with the
	// reduced hydrogen cutoffs; verify a substantial reduction.
	rng := rand.New(rand.NewPCG(5, 6))
	idx := defaultIdx()
	sys := waterLikeBox(rng, 384, 15.6) // roughly water number density
	full := NewCutoffTable(idx, 4.0)
	reduced := PaperBioCutoffs(idx)
	pf := Build(sys, full)
	pr := Build(sys, reduced)
	ratio := float64(pf.NumReal) / float64(pr.NumReal)
	if ratio < 1.5 {
		t.Fatalf("per-species cutoffs reduced pairs only by %.2fx", ratio)
	}
	// Ordered asymmetry: H->C pairs obey 1.25 A while C->H keeps 4.0 A.
	for z := 0; z < pr.NumReal; z++ {
		si, sj := sys.Species[pr.I[z]], sys.Species[pr.J[z]]
		if si == units.H && sj == units.H && pr.Dist[z] >= 3.0 {
			t.Fatal("H-H pair beyond 3.0 A admitted")
		}
	}
}

func TestNonPeriodicMolecule(t *testing.T) {
	idx := defaultIdx()
	ct := NewCutoffTable(idx, 2.0)
	sys := atoms.NewSystem(3)
	sys.Species = []units.Species{units.O, units.H, units.H}
	sys.Pos[0] = [3]float64{0, 0, 0}
	sys.Pos[1] = [3]float64{0.96, 0, 0}
	sys.Pos[2] = [3]float64{-0.24, 0.93, 0}
	p := Build(sys, ct)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumReal != 6 { // all ordered pairs within 2 A
		t.Fatalf("water molecule pairs = %d, want 6", p.NumReal)
	}
}

func TestMinimumImageAcrossBoundary(t *testing.T) {
	idx := defaultIdx()
	ct := NewCutoffTable(idx, 2.0)
	sys := atoms.NewSystem(2)
	sys.PBC = true
	sys.Cell = [3]float64{10, 10, 10}
	sys.Species = []units.Species{units.O, units.O}
	sys.Pos[0] = [3]float64{0.2, 5, 5}
	sys.Pos[1] = [3]float64{9.9, 5, 5} // 0.3 A across the boundary
	p := Build(sys, ct)
	if p.NumReal != 2 {
		t.Fatalf("expected wrap-around pair, got %d", p.NumReal)
	}
	if math.Abs(p.Dist[0]-0.3) > 1e-9 {
		t.Fatalf("minimum-image distance %g, want 0.3", p.Dist[0])
	}
}

func TestPadAddsInertPairs(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	idx := defaultIdx()
	ct := NewCutoffTable(idx, 3.5)
	sys := waterLikeBox(rng, 100, 11.0)
	p := Build(sys, ct)
	real := p.NumReal
	p.Pad(1.05)
	if p.Len() < int(math.Ceil(1.05*float64(real))) {
		t.Fatalf("Pad did not reach target: %d real, %d total", real, p.Len())
	}
	for z := real; z < p.Len(); z++ {
		if p.Dist[z] < p.Cut[z] {
			t.Fatal("padding pair would contribute energy (dist < cutoff)")
		}
	}
	if p.NumReal != real {
		t.Fatal("Pad must not change NumReal")
	}
}

func TestAvgNeighbors(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	idx := defaultIdx()
	ct := NewCutoffTable(idx, 4.0)
	sys := waterLikeBox(rng, 384, 15.6)
	p := Build(sys, ct)
	avg := p.AvgNeighbors()
	if avg < 5 || avg > 50 {
		t.Fatalf("average neighbor count %g implausible for water density", avg)
	}
}

func TestSystemWrapAndVolume(t *testing.T) {
	sys := atoms.NewSystem(1)
	sys.PBC = true
	sys.Cell = [3]float64{5, 5, 5}
	sys.Pos[0] = [3]float64{-1, 6, 2}
	sys.Wrap()
	want := [3]float64{4, 1, 2}
	for k := 0; k < 3; k++ {
		if math.Abs(sys.Pos[0][k]-want[k]) > 1e-12 {
			t.Fatalf("Wrap -> %v, want %v", sys.Pos[0], want)
		}
	}
	if sys.Volume() != 125 {
		t.Fatalf("Volume = %v", sys.Volume())
	}
}

func TestSymmetricCutoffPairSymmetryProperty(t *testing.T) {
	// With a uniform cutoff table, pair (i,j) exists iff (j,i) exists, with
	// exactly opposite displacement vectors.
	rng := rand.New(rand.NewPCG(11, 12))
	idx := defaultIdx()
	ct := NewCutoffTable(idx, 3.5)
	sys := waterLikeBox(rng, 150, 11.5)
	p := Build(sys, ct)
	type key struct{ i, j int }
	vecs := map[key][3]float64{}
	for z := 0; z < p.NumReal; z++ {
		vecs[key{p.I[z], p.J[z]}] = p.Vec[z]
	}
	for k, v := range vecs {
		rv, ok := vecs[key{k.j, k.i}]
		if !ok {
			t.Fatalf("pair (%d,%d) present but reverse missing", k.i, k.j)
		}
		for d := 0; d < 3; d++ {
			if math.Abs(v[d]+rv[d]) > 1e-12 {
				t.Fatalf("displacements not antisymmetric for (%d,%d)", k.i, k.j)
			}
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	idx := defaultIdx()
	ct := PaperBioCutoffs(idx)
	sys := waterLikeBox(rng, 120, 11.0)
	p1 := Build(sys, ct)
	p2 := Build(sys, ct)
	if p1.NumReal != p2.NumReal {
		t.Fatal("nondeterministic pair count")
	}
	for z := 0; z < p1.NumReal; z++ {
		if p1.I[z] != p2.I[z] || p1.J[z] != p2.J[z] {
			t.Fatal("nondeterministic pair order")
		}
	}
}
