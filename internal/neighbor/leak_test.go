package neighbor

import (
	"math/rand/v2"
	"runtime"
	"testing"
	"time"

	"repro/internal/atoms"
	"repro/internal/units"
)

func TestBuildDoesNotLeakGoroutines(t *testing.T) {
	species := []units.Species{units.H, units.O}
	rng := rand.New(rand.NewPCG(9, 3))
	sys := randomPeriodic(rng, 300, 14, species)
	cuts := PaperBioCutoffs(atoms.NewSpeciesIndex(species))
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		Build(sys, cuts)
	}
	time.Sleep(50 * time.Millisecond) // let closed workers exit
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines grew %d -> %d across 50 Build calls", before, after)
	}
}
