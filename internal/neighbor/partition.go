package neighbor

// PartitionInterior stably reorders the real pairs of p so that the
// **interior block** comes first: the pairs of every center whose complete
// environment references only owned atoms (neighbor index < CenterLimit).
// The remaining pairs — centers with at least one ghost neighbor — form the
// **frontier block**. It returns the interior pair count.
//
// This is the list-level form of the communication-hiding split used by the
// domain runtime: an interior center's environment sum, and therefore every
// row it produces, is independent of ghost data, so its block can be
// evaluated while the ghost-position exchange is still in flight; frontier
// blocks wait for arrival. The geometric intuition is the depth rule — a
// center deeper than halo+skin from every subdomain face cannot reach a
// ghost — but the list test is exact where the depth rule is conservative.
//
// The partition is center-block granular and stable: each center's pairs
// stay contiguous and keep their relative (canonical) order, and within
// each class the centers keep their relative order. Slot assignments keyed
// on the global center are therefore unchanged — only the local traversal
// order moves. CenterLimit plays its generalized role here: beyond
// restricting which atoms act as centers during a build, it marks the
// owned-atom prefix of the local index space, which is what classifies a
// neighbor as a ghost. CenterLimit <= 0 (or covering all atoms) means no
// ghosts exist and the whole list is interior.
//
// Padding pairs (beyond NumReal) are left in place at the tail. The
// builder's partition scratch is reused across calls, so steady repetitions
// on a fixed system size allocate nothing.
func (b *Builder) PartitionInterior(p *Pairs) int {
	n := p.NumReal
	limit := b.CenterLimit
	if n == 0 {
		return 0
	}
	if limit <= 0 || limit >= p.NAtoms {
		return n // no ghost atoms: every center is interior
	}
	b.partI = growInts(b.partI, n)
	b.partJ = growInts(b.partJ, n)
	b.partVec = growVecs(b.partVec, n)
	b.partDist = growFloats(b.partDist, n)
	b.partCut = growFloats(b.partCut, n)
	copy(b.partI, p.I[:n])
	copy(b.partJ, p.J[:n])
	copy(b.partVec, p.Vec[:n])
	copy(b.partDist, p.Dist[:n])
	copy(b.partCut, p.Cut[:n])

	write := 0
	emit := func(wantInterior bool) {
		for blo := 0; blo < n; {
			bhi := blo + 1
			for bhi < n && b.partI[bhi] == b.partI[blo] {
				bhi++
			}
			interior := true
			for t := blo; t < bhi; t++ {
				if b.partJ[t] >= limit {
					interior = false
					break
				}
			}
			if interior == wantInterior {
				copy(p.I[write:], b.partI[blo:bhi])
				copy(p.J[write:], b.partJ[blo:bhi])
				copy(p.Vec[write:], b.partVec[blo:bhi])
				copy(p.Dist[write:], b.partDist[blo:bhi])
				copy(p.Cut[write:], b.partCut[blo:bhi])
				write += bhi - blo
			}
			blo = bhi
		}
	}
	emit(true)
	nInterior := write
	emit(false)
	return nInterior
}
