// Package neighbor builds ordered neighbor-pair lists with cell-list
// binning, periodic boundary conditions, and the paper's
// per-ordered-species-pair cutoffs (Sec. V-B4). It also implements the 5%
// input padding with "fake" far-apart pairs that defeats allocator churn in
// the LAMMPS plugin (Sec. V-C, Fig. 5).
package neighbor

import (
	"fmt"
	"math"

	"repro/internal/atoms"
	"repro/internal/units"
)

// CutoffTable holds the cutoff radius for each *ordered* species pair
// (i-species, j-species). Ordered means Rc[H][C] may be smaller than
// Rc[C][H]: C-centered pairs can see H out to the larger radius while H-C
// pairs are restricted, which reduces pair count at negligible accuracy
// cost.
type CutoffTable struct {
	Index *atoms.SpeciesIndex
	Rc    [][]float64
}

// NewCutoffTable builds a table with a uniform default cutoff.
func NewCutoffTable(idx *atoms.SpeciesIndex, def float64) *CutoffTable {
	n := idx.Len()
	t := &CutoffTable{Index: idx, Rc: make([][]float64, n)}
	for i := range t.Rc {
		t.Rc[i] = make([]float64, n)
		for j := range t.Rc[i] {
			t.Rc[i][j] = def
		}
	}
	return t
}

// Set assigns the cutoff for the ordered pair (center si, neighbor sj).
func (t *CutoffTable) Set(si, sj units.Species, rc float64) {
	t.Rc[t.Index.Index(si)][t.Index.Index(sj)] = rc
}

// Get returns the cutoff for the ordered pair (center si, neighbor sj).
func (t *CutoffTable) Get(si, sj units.Species) float64 {
	return t.Rc[t.Index.Index(si)][t.Index.Index(sj)]
}

// Max returns the largest cutoff in the table (the binning radius).
func (t *CutoffTable) Max() float64 {
	m := 0.0
	for _, row := range t.Rc {
		for _, v := range row {
			if v > m {
				m = v
			}
		}
	}
	return m
}

// PaperBioCutoffs returns the production cutoff table of Sec. VI-D: default
// 4.0 A with reduced hydrogen-centered pairs H-H 3.0, H-C 1.25, H-O 1.25 and
// O-H 3.0 (ordered).
func PaperBioCutoffs(idx *atoms.SpeciesIndex) *CutoffTable {
	t := NewCutoffTable(idx, 4.0)
	set := func(a, b units.Species, rc float64) {
		if idx.Contains(a) && idx.Contains(b) {
			t.Set(a, b, rc)
		}
	}
	set(units.H, units.H, 3.0)
	set(units.H, units.C, 1.25)
	set(units.H, units.O, 1.25)
	set(units.O, units.H, 3.0)
	return t
}

// Pairs is an ordered neighbor list in structure-of-arrays form. Pair z goes
// from center I[z] to neighbor J[z] with minimum-image displacement Vec[z]
// (r_J - r_I), distance Dist[z], and the ordered cutoff Cut[z] that admitted
// it. NumReal counts genuine pairs; entries beyond NumReal are padding.
type Pairs struct {
	I, J    []int
	Vec     [][3]float64
	Dist    []float64
	Cut     []float64
	NumReal int
	NAtoms  int
}

// Len returns the total pair count including padding.
func (p *Pairs) Len() int { return len(p.I) }

// Build constructs the ordered pair list for sys under the cutoff table.
// Both directions of each geometric pair are considered independently
// against their ordered cutoffs. The build runs on a transient Builder with
// up to runtime.GOMAXPROCS workers; callers in steady-state loops should
// hold their own Builder and use BuildInto to reuse its scratch.
func Build(sys *atoms.System, cuts *CutoffTable) *Pairs {
	var b Builder
	defer b.Close() // release the transient pool's goroutines
	p := &Pairs{}
	b.BuildInto(p, sys, cuts)
	return p
}

// useCellList reports whether binning is applicable: periodic box at least
// 3 cells wide per dimension (otherwise the O(N^2) minimum-image path runs).
func useCellList(sys *atoms.System, rc float64) bool {
	if !sys.PBC {
		return sys.NumAtoms() > 512 // large molecules still benefit
	}
	for k := 0; k < 3; k++ {
		if sys.Cell[k] < 3*rc {
			return false
		}
	}
	return true
}

// Pad grows the pair list to at least ceil(factor * NumReal) entries by
// appending fake pairs between two virtual atoms far beyond every cutoff,
// mirroring the 5% Kokkos buffer padding that stabilizes PyTorch allocator
// behaviour. Fake pairs have zero cutoff envelope and therefore contribute
// nothing to energies or forces; they exist so input shapes stay constant
// across MD steps.
func (p *Pairs) Pad(factor float64) {
	if factor <= 1 {
		return
	}
	p.PadTo(int(math.Ceil(factor * float64(p.NumReal))))
}

// PadTo grows the pair list with fake pairs until it holds exactly target
// entries (no-op if it is already at least that long). Padding to a running
// maximum keeps input shapes constant across MD steps, which is what lets
// arena-backed evaluation reuse its storage layout verbatim.
func (p *Pairs) PadTo(target int) {
	for p.Len() < target {
		rc := 1.0
		if p.NumReal > 0 {
			rc = p.Cut[0]
		}
		p.I = append(p.I, 0)
		p.J = append(p.J, 0)
		// Distance placed just inside the admitting cutoff times 0.999999
		// would still contribute; instead fake pairs sit at 0.999*rc with a
		// cutoff entry equal to the distance so the envelope is exactly 0.
		d := rc * 0.999
		p.Vec = append(p.Vec, [3]float64{d, 0, 0})
		p.Dist = append(p.Dist, d)
		p.Cut = append(p.Cut, d) // r == rc => envelope exactly 0
	}
}

// FilterCenters returns a new pair list keeping only real pairs whose
// center atom satisfies keep[I[z]] — the pair subset a domain-decomposition
// rank owns. Padding is dropped.
func (p *Pairs) FilterCenters(keep []bool) *Pairs {
	out := &Pairs{NAtoms: p.NAtoms}
	for z := 0; z < p.NumReal; z++ {
		if !keep[p.I[z]] {
			continue
		}
		out.I = append(out.I, p.I[z])
		out.J = append(out.J, p.J[z])
		out.Vec = append(out.Vec, p.Vec[z])
		out.Dist = append(out.Dist, p.Dist[z])
		out.Cut = append(out.Cut, p.Cut[z])
	}
	out.NumReal = len(out.I)
	return out
}

// AvgNeighbors returns the mean number of (real) neighbors per atom, the
// normalization constant for Allegro's environment sums.
func (p *Pairs) AvgNeighbors() float64 {
	if p.NAtoms == 0 {
		return 0
	}
	return float64(p.NumReal) / float64(p.NAtoms)
}

// Validate checks structural invariants of an exact-cutoff list; tests call
// it after construction. Verlet-skin lists (Builder.Skin > 0) admit pairs
// out to Cut+skin and must be checked with ValidateSkin instead.
func (p *Pairs) Validate() error { return p.ValidateSkin(0, nil, nil) }

// ValidateSkin checks structural invariants allowing pair distances up to
// Cut+skin (the Verlet shell). When sys and cuts are non-nil it additionally
// verifies that every real pair's recorded Cut equals the builder's true
// ordered cutoff cuts.Rc[species(I)][species(J)] — skin pairs in particular
// must carry the genuine cutoff (and a zero envelope), not the inflated
// admission radius, because the temporal-reuse displacement bound and the
// PolyCutoff clamp both depend on it.
func (p *Pairs) ValidateSkin(skin float64, sys *atoms.System, cuts *CutoffTable) error {
	if len(p.J) != len(p.I) || len(p.Vec) != len(p.I) || len(p.Dist) != len(p.I) || len(p.Cut) != len(p.I) {
		return fmt.Errorf("neighbor: ragged pair arrays")
	}
	for z := 0; z < p.NumReal; z++ {
		if p.I[z] < 0 || p.I[z] >= p.NAtoms || p.J[z] < 0 || p.J[z] >= p.NAtoms {
			return fmt.Errorf("neighbor: pair %d references atom out of range", z)
		}
		if p.I[z] == p.J[z] {
			return fmt.Errorf("neighbor: self pair at %d", z)
		}
		if p.Dist[z] >= p.Cut[z]+skin {
			return fmt.Errorf("neighbor: pair %d beyond its cutoff+skin (%g >= %g+%g)", z, p.Dist[z], p.Cut[z], skin)
		}
		if sys != nil && cuts != nil {
			want := cuts.Rc[cuts.Index.Index(sys.Species[p.I[z]])][cuts.Index.Index(sys.Species[p.J[z]])]
			if p.Cut[z] != want {
				return fmt.Errorf("neighbor: pair %d records cutoff %g, ordered table says %g", z, p.Cut[z], want)
			}
		}
		v := p.Vec[z]
		r := math.Sqrt(v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
		if math.Abs(r-p.Dist[z]) > 1e-9 {
			return fmt.Errorf("neighbor: pair %d distance inconsistent", z)
		}
	}
	return nil
}
